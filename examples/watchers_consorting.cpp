// The WATCHERS consorting-router flaw, live (dissertation §3.1, Fig. 3.3).
//
// Path a-b-c-d-e. Routers c and d collude: c drops every transit packet
// but claims (in its flooded counter snapshot) to have forwarded them all
// to d; d keeps honest receive counters but stays silent. In the original
// protocol the (c,d) counter inconsistency makes b and e skip the
// conservation-of-flow test for both — the attack is invisible to every
// correct router. The dissertation's fix (expect an announcement for every
// remote inconsistency; silence implicates the adjacent neighbor) restores
// completeness. This example runs both variants back to back.
#include <cstdio>

#include "attacks/attacks.hpp"
#include "detection/watchers.hpp"
#include "routing/install.hpp"
#include "traffic/sources.hpp"

using namespace fatih;
using util::Duration;
using util::NodeId;
using util::SimTime;

namespace {

std::size_t run(bool fixed) {
  sim::Network net(3);
  for (const char* name : {"a", "b", "c", "d", "e"}) net.add_router(name);
  sim::LinkConfig link;
  link.bandwidth_bps = 1e8;
  link.delay = Duration::millis(1);
  for (NodeId i = 0; i + 1 < 5; ++i) net.connect(i, i + 1, link);
  auto tables = std::make_shared<routing::RoutingTables>(routing::Topology::from_network(net));
  routing::install_static_routes(net, *tables);
  detection::PathCache paths(tables);

  detection::WatchersConfig cfg;
  cfg.clock = detection::RoundClock{SimTime::origin(), Duration::seconds(1)};
  cfg.fixed = fixed;
  cfg.rounds = 3;
  detection::WatchersEngine engine(net, paths, cfg);

  // a sends to e through the colluding pair.
  traffic::CbrSource::Config cbr;
  cbr.src = 0;
  cbr.dst = 4;
  cbr.flow_id = 1;
  cbr.rate_pps = 200;
  cbr.start = SimTime::from_seconds(0.05);
  cbr.stop = SimTime::from_seconds(2.9);
  traffic::CbrSource source(net, cbr);

  // c (=2) drops everything...
  attacks::FlowMatch match;
  net.router(2).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 1.0, SimTime::from_seconds(1), 7));
  // ...and lies in its snapshot: whatever it received from b, it claims to
  // have forwarded to d.
  engine.set_snapshot_mutator(2, [](detection::WatchersSnapshot& snap) {
    for (const auto& [key, count] : snap.recv) {
      if (std::get<0>(key) != 1) continue;
      const auto dst = std::get<2>(key);
      if (dst == 2) continue;
      auto cls = std::get<1>(key) == detection::WatchersClass::kSourced
                     ? detection::WatchersClass::kTransit
                     : std::get<1>(key);
      if (dst == 3) cls = detection::WatchersClass::kDestined;
      snap.send[{NodeId{3}, cls, dst}] = count;
    }
  });
  // Both conspirators refuse to announce detections.
  engine.set_silent(2);
  engine.set_silent(3);

  engine.start();
  net.sim().run_until(SimTime::from_seconds(5));

  std::size_t correct_detections = 0;
  for (const auto& s : engine.suspicions()) {
    if (s.reporter == 2 || s.reporter == 3) continue;  // liars don't count
    if (s.segment.contains(2) || s.segment.contains(3)) {
      ++correct_detections;
      std::printf("    %s\n", s.to_string().c_str());
    }
  }
  return correct_detections;
}

}  // namespace

int main() {
  std::printf("-- WATCHERS vs consorting routers (c drops, lies; d stays silent) --\n\n");
  std::printf("original protocol:\n");
  const std::size_t flawed = run(false);
  if (flawed == 0) {
    std::printf("    (no correct router ever suspects c or d — the flaw)\n");
  }
  std::printf("\nwith the dissertation's fix:\n");
  const std::size_t fixed = run(true);
  std::printf("\nverdict: flawed=%zu detections, fixed=%zu detections %s\n", flawed, fixed,
              flawed == 0 && fixed > 0 ? "[flaw reproduced, fix works]" : "");
  return 0;
}
