// The dissertation's chapter-3 survey, live: one identical attack — a
// compromised mid-path router dropping 50% of a flow — run against every
// detection protocol in the library, printing what each one reports.
//
//   WATCHERS        conservation of flow per router       (§3.1)
//   HSER            per-hop authentication + acks         (§3.2)
//   HERZBERG e2e    per-packet end-to-end acks            (§3.3)
//   SecTrace        hop-by-hop source validation          (§3.6)
//   PERLMAN_d       per-hop acks to the source            (§3.7)
//   ZHANG           Poisson-model loss threshold          (§3.12)
//   Protocol Pi2    per-segment-node summaries + flooding (§5.1)
//   Protocol Pik+2  segment-end summaries                 (§5.2)
//   Protocol chi    queue-replay congestion-aware         (ch. 6)
#include <cstdio>
#include <memory>

#include "attacks/attacks.hpp"
#include "detection/chi.hpp"
#include "detection/herzberg.hpp"
#include "detection/perlman.hpp"
#include "detection/pi2.hpp"
#include "detection/pik2.hpp"
#include "detection/hser.hpp"
#include "detection/sectrace.hpp"
#include "detection/watchers.hpp"
#include "detection/zhang.hpp"
#include "routing/install.hpp"
#include "traffic/sources.hpp"

using namespace fatih;
using namespace fatih::detection;
using util::Duration;
using util::NodeId;
using util::SimTime;

namespace {

// One shared scenario: line r0..r4, flow 1 at 200 pps, r2 drops 50% of it
// from t = 2 s.
struct Scenario {
  sim::Network net{4242};
  crypto::KeyRegistry keys{99};
  std::shared_ptr<routing::RoutingTables> tables;
  std::unique_ptr<PathCache> paths;
  std::unique_ptr<traffic::CbrSource> source;

  Scenario() {
    for (int i = 0; i < 5; ++i) net.add_router("r" + std::to_string(i));
    sim::LinkConfig link;
    link.bandwidth_bps = 1e8;
    link.delay = Duration::millis(1);
    for (NodeId i = 0; i + 1 < 5; ++i) net.connect(i, i + 1, link);
    tables = std::make_shared<routing::RoutingTables>(routing::Topology::from_network(net));
    routing::install_static_routes(net, *tables);
    paths = std::make_unique<PathCache>(tables);
    for (NodeId i = 0; i < 5; ++i) {
      net.router(i).set_processing_delay(Duration::micros(20), Duration::micros(10));
    }
    traffic::CbrSource::Config c;
    c.src = 0;
    c.dst = 4;
    c.flow_id = 1;
    c.rate_pps = 200;
    c.start = SimTime::from_seconds(0.1);
    c.stop = SimTime::from_seconds(5.9);
    source = std::make_unique<traffic::CbrSource>(net, c);
  }

  void arm_attack() {
    attacks::FlowMatch match;
    match.flow_ids = {1};
    net.router(2).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
        match, 0.5, SimTime::from_seconds(2), 7));
  }

  void run() { net.sim().run_until(SimTime::from_seconds(8)); }
};

void report(const char* name, const std::vector<Suspicion>& suspicions) {
  if (suspicions.empty()) {
    std::printf("  %-14s no detection\n", name);
    return;
  }
  // First suspicion is representative; count the rest.
  std::printf("  %-14s %zu suspicion(s); first: %s suspects %s (%s)\n", name,
              suspicions.size(), util::node_name(suspicions.front().reporter).c_str(),
              suspicions.front().segment.to_string().c_str(),
              suspicions.front().cause.c_str());
}

detection::RoundClock one_second_rounds() {
  return detection::RoundClock{SimTime::origin(), Duration::seconds(1)};
}

}  // namespace

int main() {
  std::printf("-- one attack, every detector: r2 drops 50%% of flow 1 from t=2s --\n\n");

  {
    Scenario s;
    WatchersConfig cfg;
    cfg.clock = one_second_rounds();
    cfg.rounds = 5;
    WatchersEngine engine(s.net, *s.paths, cfg);
    engine.start();
    s.arm_attack();
    s.run();
    report("WATCHERS", engine.suspicions());
  }
  {
    Scenario s;
    HserConfig cfg;
    cfg.flow_id = 2;  // HSER owns its sending side; use a parallel flow
    HserDetector det(s.net, s.keys, {0, 1, 2, 3, 4}, cfg);
    for (int i = 0; i < 800; ++i) {
      s.net.sim().schedule_at(SimTime::from_seconds(0.1 + 0.005 * i),
                              [&det, i] { det.send(static_cast<std::uint32_t>(i), 500); });
    }
    attacks::FlowMatch match2;
    match2.flow_ids = {2};
    s.net.router(2).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
        match2, 0.5, SimTime::from_seconds(2), 7));
    s.run();
    report("HSER", det.suspicions());
  }
  {
    Scenario s;
    HerzbergConfig cfg;
    cfg.flow_id = 1;
    HerzbergDetector det(s.net, s.keys, {0, 1, 2, 3, 4}, cfg);
    s.arm_attack();
    s.run();
    report("HERZBERG", det.suspicions());
  }
  {
    Scenario s;
    SecTraceConfig cfg;
    cfg.clock = one_second_rounds();
    cfg.flow_id = 1;
    SecTraceDetector det(s.net, s.keys, *s.paths, {0, 1, 2, 3, 4}, cfg);
    det.start();
    s.arm_attack();
    s.run();
    report("SecTrace", det.suspicions());
  }
  {
    Scenario s;
    PerlmanConfig cfg;
    cfg.flow_id = 1;
    PerlmanDetector det(s.net, s.keys, {0, 1, 2, 3, 4}, cfg);
    s.arm_attack();
    s.run();
    report("PERLMAN_d", det.suspicions());
  }
  {
    Scenario s;
    ZhangConfig cfg;
    cfg.clock = one_second_rounds();
    cfg.learning_rounds = 2;
    cfg.rounds = 6;
    ZhangDetector det(s.net, s.keys, *s.paths, 2, 3, cfg);
    det.start();
    s.arm_attack();
    s.run();
    report("ZHANG", det.suspicions());
  }
  {
    Scenario s;
    Pi2Config cfg;
    cfg.clock = one_second_rounds();
    cfg.rounds = 5;
    Pi2Engine engine(s.net, s.keys, *s.paths, {0, 1, 2, 3, 4}, cfg);
    engine.start();
    s.arm_attack();
    s.run();
    report("Pi2", engine.suspicions());
  }
  {
    Scenario s;
    Pik2Config cfg;
    cfg.clock = one_second_rounds();
    cfg.rounds = 5;
    Pik2Engine engine(s.net, s.keys, *s.paths, {0, 1, 2, 3, 4}, cfg);
    engine.start();
    s.arm_attack();
    s.run();
    report("Pi(k+2)", engine.suspicions());
  }
  {
    Scenario s;
    ChiConfig cfg;
    cfg.clock = one_second_rounds();
    cfg.learning_rounds = 2;
    cfg.rounds = 6;
    QueueValidator validator(s.net, s.keys, *s.paths, 2, 3, cfg);
    validator.start();
    s.arm_attack();
    s.run();
    report("Protocol chi", validator.suspicions());
  }

  std::printf(
      "\nAll nine localize the fault to a segment containing r2 — with very\n"
      "different state, message and assumption budgets (see DESIGN.md and the\n"
      "tab3_1/tab5_1 benches), and very different robustness to smarter\n"
      "adversaries (see the collusion and framing tests).\n");
  return 0;
}
