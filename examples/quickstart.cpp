// Quickstart: build a small network, attach the Pi(k+2) detector, break a
// router, watch it get caught.
//
//   $ ./quickstart
//
// Walkthrough of the public API:
//   1. sim::Network        — routers, duplex links, static routes
//   2. traffic::CbrSource  — data-plane load
//   3. detection::Pik2Engine — the practical detector from the paper
//   4. attacks::RateDropAttack — a compromised router
//   5. Suspicion handling  — what you would feed into the response layer
#include <cstdio>

#include "attacks/attacks.hpp"
#include "detection/pik2.hpp"
#include "routing/install.hpp"
#include "traffic/sources.hpp"

using namespace fatih;
using util::Duration;
using util::NodeId;
using util::SimTime;

int main() {
  std::printf("-- quickstart: detecting a malicious router in 5 hops --\n\n");

  // 1. A line of five routers: r0 - r1 - r2 - r3 - r4.
  sim::Network net(/*seed=*/1);
  for (int i = 0; i < 5; ++i) net.add_router("r" + std::to_string(i));
  sim::LinkConfig link;
  link.bandwidth_bps = 1e8;                 // 100 Mbps
  link.delay = Duration::millis(1);
  link.queue_limit_bytes = 64000;
  for (NodeId i = 0; i + 1 < 5; ++i) net.connect(i, i + 1, link);

  // Static routing (stable state); the library computes loop-free,
  // deterministic shortest paths and installs them on every router.
  auto tables = std::make_shared<routing::RoutingTables>(routing::Topology::from_network(net));
  routing::install_static_routes(net, *tables);

  // 2. 200 packets/s from r0 to r4 for four seconds.
  traffic::CbrSource::Config cbr;
  cbr.src = 0;
  cbr.dst = 4;
  cbr.flow_id = 1;
  cbr.rate_pps = 200;
  cbr.start = SimTime::from_seconds(0.1);
  cbr.stop = SimTime::from_seconds(3.9);
  traffic::CbrSource source(net, cbr);

  // 3. The Pi(k+2) detector: 1-second validation rounds, k = 1 (segments
  // of three routers, monitored by their end points).
  crypto::KeyRegistry keys(/*master_seed=*/42);
  detection::PathCache paths(tables);
  detection::Pik2Config cfg;
  cfg.clock = detection::RoundClock{SimTime::origin(), Duration::seconds(1)};
  cfg.k = 1;
  cfg.rounds = 4;
  detection::Pik2Engine engine(net, keys, paths, {0, 1, 2, 3, 4}, cfg);
  engine.set_suspicion_handler([](const detection::Suspicion& s) {
    std::printf("  !! %s\n", s.to_string().c_str());
  });
  engine.start();

  // 4. Compromise r2: from t=2s it silently drops every packet of flow 1.
  attacks::FlowMatch match;
  match.flow_ids = {1};
  net.router(2).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, /*fraction=*/1.0, SimTime::from_seconds(2), /*seed=*/7));
  std::printf("r2 is compromised from t=2s (drops all of flow 1)\n\n");

  // 5. Run and report.
  net.sim().run_until(SimTime::from_seconds(6));

  std::printf("\n%zu suspicion(s) raised; packets r2 maliciously dropped: %llu\n",
              engine.suspicions().size(),
              static_cast<unsigned long long>(net.router(2).malicious_drops()));
  for (const auto& s : engine.suspicions()) {
    std::printf("  suspected segment %s (reporter %s)\n", s.segment.to_string().c_str(),
                util::node_name(s.reporter).c_str());
  }
  std::printf("\nEvery suspected segment contains r2 (precision k+2 = 3): feed these\n"
              "into routing::LinkStateRouting::announce_suspicion to route around it\n"
              "(see the fatih_abilene example).\n");
  return 0;
}
