// Protocol chi in one sitting: congestion is not malice.
//
// A bottleneck queue is pushed into genuine congestive loss by bursty
// traffic while chi validates it. Then a compromised router starts
// dropping a victim's packets only when the queue is 90% full — the kind
// of attack a static loss threshold cannot separate from congestion — and
// chi flags it within a couple of rounds.
#include <cstdio>

#include "attacks/attacks.hpp"
#include "detection/chi.hpp"
#include "routing/install.hpp"
#include "traffic/sources.hpp"

using namespace fatih;
using util::Duration;
using util::NodeId;
using util::SimTime;

int main() {
  std::printf("-- Protocol chi: telling malice from congestion --\n\n");

  sim::Network net(17);
  crypto::KeyRegistry keys(5);
  const NodeId s1 = net.add_router("s1").id();
  const NodeId s2 = net.add_router("s2").id();
  const NodeId r = net.add_router("r").id();
  const NodeId rd = net.add_router("rd").id();
  sim::LinkConfig edge;
  edge.bandwidth_bps = 1e8;
  edge.delay = Duration::millis(1);
  sim::LinkConfig core;
  core.bandwidth_bps = 1e7;  // the bottleneck
  core.delay = Duration::millis(2);
  core.queue_limit_bytes = 50000;
  net.connect(s1, r, edge);
  net.connect(s2, r, edge);
  net.connect(r, rd, core);
  auto tables = std::make_shared<routing::RoutingTables>(routing::Topology::from_network(net));
  routing::install_static_routes(net, *tables);
  detection::PathCache paths(tables);
  for (NodeId n : {s1, s2, r, rd}) {
    net.router(n).set_processing_delay(Duration::micros(20), Duration::micros(50));
  }

  // Victim flow + bursty background that overflows the bottleneck.
  traffic::CbrSource::Config c;
  c.src = s1;
  c.dst = rd;
  c.flow_id = 1;
  c.rate_pps = 500;
  c.start = SimTime::from_seconds(0.05);
  c.stop = SimTime::from_seconds(19.5);
  traffic::CbrSource victim(net, c);
  traffic::OnOffSource::Config o;
  o.src = s2;
  o.dst = rd;
  o.flow_id = 2;
  o.on_rate_pps = 1300;
  o.mean_on = Duration::millis(150);
  o.mean_off = Duration::millis(250);
  o.start = SimTime::from_seconds(0.05);
  o.stop = SimTime::from_seconds(19.5);
  traffic::OnOffSource bursts(net, o);

  detection::ChiConfig cfg;
  cfg.clock = detection::RoundClock{SimTime::origin(), Duration::seconds(1)};
  cfg.learning_rounds = 3;
  cfg.rounds = 20;
  detection::QueueValidator validator(net, keys, paths, r, rd, cfg);
  validator.set_suspicion_handler([](const detection::Suspicion& s) {
    std::printf("  !! %s\n", s.to_string().c_str());
  });
  validator.start();

  // The attack begins at t=10s: drop the victim only when queue >= 90%.
  attacks::FlowMatch match;
  match.flow_ids = {1};
  net.router(r).set_forward_filter(std::make_shared<attacks::QueueThresholdDropAttack>(
      match, 0.9, 1.0, SimTime::from_seconds(10), 3));
  std::printf("rounds 0-2: calibration; rounds 3-9: clean congestion;\n");
  std::printf("round 10+: r drops victim packets whenever its queue is 90%% full\n\n");

  net.sim().run_until(SimTime::from_seconds(22));

  std::printf("\nround-by-round: drops seen / explained as congestive / suspicious\n");
  for (const auto& rs : validator.rounds()) {
    std::printf("  round %2lld: %4llu / %4llu / %4llu %s\n",
                static_cast<long long>(rs.round),
                static_cast<unsigned long long>(rs.drops),
                static_cast<unsigned long long>(rs.congestive),
                static_cast<unsigned long long>(rs.suspicious),
                rs.alarmed ? "<- ALARM" : "");
  }
  std::printf("\ncalibrated noise: mu=%.0fB sigma=%.0fB; a static threshold would\n",
              validator.mu(), validator.sigma());
  std::printf("have to tolerate the hundreds of congestive drops above — and would\n");
  std::printf("then miss this attack entirely (see bench/fig6_10_chi_vs_threshold).\n");
  return 0;
}
