// Fatih on Abilene: the full prototype pipeline (dissertation §5.3).
//
// Distributed link-state routing converges from a cold start, Fatih is
// commissioned with 5-second validation rounds, the Kansas City router is
// then compromised, and the system detects, floods signed alerts, and
// reroutes traffic around the suspected path-segments — narrated on
// stderr via the library's logger and summarized on stdout.
#include <cstdio>

#include "attacks/attacks.hpp"
#include "fatih/fatih.hpp"
#include "routing/topologies.hpp"
#include "traffic/sources.hpp"
#include "util/log.hpp"

using namespace fatih;
using util::Duration;
using util::NodeId;
using util::SimTime;

int main() {
  util::set_log_level(util::LogLevel::kInfo);
  std::printf("-- Fatih on the Abilene backbone --\n\n");

  sim::Network net(2024);
  crypto::KeyRegistry keys(99);
  for (NodeId n = 0; n <= routing::kNewYork; ++n) net.add_router(routing::abilene_name(n));
  for (const auto& l : routing::abilene_links()) {
    sim::LinkConfig link;
    link.delay = Duration::millis(l.delay_ms);
    link.metric = l.delay_ms;
    link.bandwidth_bps = 1e8;
    net.connect(l.a, l.b, link);
  }

  routing::LinkStateConfig lcfg;  // Zebra-like timers, scaled down a bit
  lcfg.hello_interval = Duration::seconds(2);
  lcfg.spf_delay = Duration::seconds(1);
  lcfg.spf_hold = Duration::seconds(2);
  routing::LinkStateRouting lsr(net, keys, lcfg);

  system::FatihConfig fcfg;
  fcfg.detection.clock = detection::RoundClock{SimTime::from_seconds(15), Duration::seconds(5)};
  fcfg.detection.k = 1;
  fcfg.detection.thresholds.max_lost_fraction = 0.05;
  fcfg.detection.thresholds.max_lost_packets = 2;
  system::FatihSystem fatih(net, keys, lsr, fcfg);

  lsr.start();
  net.sim().schedule_at(SimTime::from_seconds(15), [&] {
    auto tables = std::make_shared<routing::RoutingTables>(routing::abilene_topology());
    std::vector<NodeId> terminals;
    for (NodeId n = 0; n <= routing::kNewYork; ++n) terminals.push_back(n);
    fatih.commission(tables, terminals);
  });

  // Coast-to-coast traffic.
  traffic::CbrSource::Config c;
  c.src = routing::kSunnyvale;
  c.dst = routing::kNewYork;
  c.flow_id = 1;
  c.rate_pps = 200;
  c.start = SimTime::from_seconds(16);
  c.stop = SimTime::from_seconds(58);
  traffic::CbrSource east(net, c);
  c.src = routing::kNewYork;
  c.dst = routing::kSunnyvale;
  c.flow_id = 2;
  traffic::CbrSource west(net, c);

  system::RttProbe probe(net, routing::kNewYork, routing::kSunnyvale, 900,
                         Duration::millis(500));
  probe.start(SimTime::from_seconds(16));

  // Compromise Kansas City at t=30s.
  attacks::FlowMatch all_data;
  net.sim().schedule_at(SimTime::from_seconds(30), [&] {
    std::printf("t=30s: KansasCity compromised (drops 20%% of transit traffic)\n");
    net.router(routing::kKansasCity)
        .set_forward_filter(std::make_shared<attacks::RateDropAttack>(
            all_data, 0.20, SimTime::from_seconds(30), 5));
  });

  net.sim().run_until(SimTime::from_seconds(60));

  std::printf("\nsuspicions raised: %zu\n", fatih.suspicions().size());
  for (const auto& s : fatih.suspicions()) std::printf("  %s\n", s.to_string().c_str());
  std::printf("\nbanned segments at Sunnyvale:\n");
  for (const auto& seg : lsr.banned_segments(routing::kSunnyvale)) {
    std::printf("  %s\n", seg.to_string().c_str());
  }

  double before = 0;
  double after = 0;
  std::size_t nb = 0;
  std::size_t na = 0;
  for (const auto& s : probe.samples()) {
    if (s.when < SimTime::from_seconds(29)) {
      before += s.rtt_seconds;
      ++nb;
    } else if (s.when > SimTime::from_seconds(50)) {
      after += s.rtt_seconds;
      ++na;
    }
  }
  if (nb > 0 && na > 0) {
    std::printf("\nRTT NewYork<->Sunnyvale: %.1f ms before, %.1f ms after rerouting\n",
                1000 * before / static_cast<double>(nb), 1000 * after / static_cast<double>(na));
    std::printf("(the 25 ms northern path was replaced by the 28 ms southern path)\n");
  }
  return 0;
}
