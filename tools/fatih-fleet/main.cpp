// fatih-fleet: crash-tolerant multi-process scenario sweep driver.
//
// The same binary plays both roles. As the supervisor (`sweep`) it
// fork/execs itself (`worker <name>`) once per scenario, bounded by
// --jobs slots, watching every child with a wall-clock deadline: a worker
// that exits nonzero is retried with backoff up to --retries, a worker
// that overruns its deadline is SIGKILLed and retried the same way, and a
// scenario whose retry budget runs out is recorded in the corpus with
// status "crash" or "timeout" instead of aborting the sweep — the corpus
// always aggregates deterministically (records sorted by name) no matter
// which workers died. As the worker it materializes one ScenarioSpec,
// runs it to completion and writes its corpus record as JSON.
//
// `--inject-crash` / `--inject-hang` enqueue probe workers that fail on
// purpose (exercised by the fleet_smoke ctest and the CI fleet job): the
// sweep must survive both, record them, and still exit 0 — drift against
// the --golden corpus is the only failing condition.
#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "scenario/corpus.hpp"
#include "scenario/drift.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/snapshot.hpp"
#include "scenario/spec.hpp"

namespace {

namespace sc = fatih::scenario;

using Clock = std::chrono::steady_clock;

constexpr const char* kInjectCrash = "inject_crash";
constexpr const char* kInjectHang = "inject_hang";

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now().time_since_epoch())
      .count();
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

int usage() {
  std::fprintf(stderr,
               "usage: fatih-fleet <command>\n"
               "  list                          print builtin scenario names\n"
               "  print <name>                  print a builtin's canonical spec text\n"
               "  run <name>                    run one scenario in-process, corpus to stdout\n"
               "  worker <name> --out FILE      (internal) run one scenario, record to FILE\n"
               "  sweep [opts] [names...]       supervise a worker per scenario\n"
               "    --jobs N          parallel worker slots (default 2)\n"
               "    --threads N       worker-thread override for sharded scenarios\n"
               "                      (digests are thread-invariant; use with --golden\n"
               "                      for a shard differential sweep)\n"
               "    --timeout-ms T    per-worker wall-clock budget (default 120000)\n"
               "    --hang-timeout-ms T  budget for the inject_hang probe only\n"
               "    --retries R       relaunch budget after crash/timeout (default 1)\n"
               "    --out FILE        write the aggregated corpus JSON here\n"
               "    --golden FILE     compare against this corpus; drift fails the sweep\n"
               "    --inject-crash    add a worker that exits nonzero on purpose\n"
               "    --inject-hang     add a worker that never exits on purpose\n"
               "    (no names = every builtin scenario)\n"
               "  bisect <golden.json> <fresh.json>  report drift + first divergent windows\n");
  return 2;
}

// --------------------------------------------------------------- worker role

int cmd_worker(const std::string& name, const std::string& out_path, unsigned threads) {
  if (name == kInjectCrash) _exit(3);
  if (name == kInjectHang) {
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
  }
  const sc::ScenarioSpec* spec = sc::find_scenario(name);
  if (spec == nullptr) {
    std::fprintf(stderr, "fatih-fleet: unknown scenario '%s'\n", name.c_str());
    return 2;
  }
  sc::Corpus corpus;
  corpus.upsert(sc::to_record(sc::run_scenario(*spec, threads)));
  if (!write_file(out_path, sc::to_json(corpus))) {
    std::fprintf(stderr, "fatih-fleet: cannot write %s\n", out_path.c_str());
    return 2;
  }
  return 0;
}

// ----------------------------------------------------------- supervisor role

struct SweepOptions {
  int jobs = 2;
  std::int64_t timeout_ms = 120'000;
  std::int64_t hang_timeout_ms = -1;  ///< -1: same as timeout_ms
  int retries = 1;
  unsigned threads = 0;  ///< sharded-spec worker override (0 = spec.shards)
  std::string out_path{};
  std::string golden_path{};
  std::vector<std::string> names{};
};

struct Job {
  std::string name;
  int attempts = 0;            ///< launches so far
  std::int64_t not_before = 0; ///< backoff gate (ms on the steady clock)
};

struct Running {
  pid_t pid = -1;
  Job job{};
  std::int64_t deadline_ms = 0;
  std::string out_path{};
};

pid_t launch_worker(const std::string& name, const std::string& out_path, unsigned threads) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  // Child: re-enter this binary in worker mode.
  const std::string threads_str = std::to_string(threads);
  if (threads > 0) {
    execl("/proc/self/exe", "fatih-fleet", "worker", name.c_str(), "--out", out_path.c_str(),
          "--threads", threads_str.c_str(), static_cast<char*>(nullptr));
  } else {
    execl("/proc/self/exe", "fatih-fleet", "worker", name.c_str(), "--out", out_path.c_str(),
          static_cast<char*>(nullptr));
  }
  _exit(127);
}

/// Records a terminal failure ("crash"/"timeout") with zeroed results —
/// the partial corpus keeps the failure visible instead of dropping it.
sc::CorpusRecord failure_record(const Job& job, const char* status) {
  sc::CorpusRecord rec;
  rec.name = job.name;
  rec.status = status;
  rec.attempts = static_cast<std::uint32_t>(job.attempts);
  const sc::ScenarioSpec* spec = sc::find_scenario(job.name);
  if (spec != nullptr) rec.spec_hash = sc::spec_hash(*spec);
  return rec;
}

int cmd_sweep(const SweepOptions& opt) {
  std::deque<Job> queue;
  for (const std::string& name : opt.names) queue.push_back(Job{name, 0, 0});

  sc::Corpus corpus;
  std::vector<Running> running;
  std::size_t launched = 0;

  const auto deadline_for = [&](const std::string& name) {
    const std::int64_t budget =
        (name == kInjectHang && opt.hang_timeout_ms >= 0) ? opt.hang_timeout_ms
                                                          : opt.timeout_ms;
    return now_ms() + budget;
  };

  const auto requeue_or_record = [&](Job job, const char* status) {
    if (job.attempts <= opt.retries) {
      // Exponential-ish backoff: 100ms, 200ms, 400ms, ...
      job.not_before = now_ms() + (100LL << (job.attempts - 1));
      std::fprintf(stderr, "fleet: %s attempt %d failed (%s), retrying\n", job.name.c_str(),
                   job.attempts, status);
      queue.push_back(std::move(job));
    } else {
      std::fprintf(stderr, "fleet: %s failed terminally (%s after %d attempts)\n",
                   job.name.c_str(), status, job.attempts);
      corpus.upsert(failure_record(job, status));
    }
  };

  while (!queue.empty() || !running.empty()) {
    // Fill free slots with launchable jobs (skipping backoff holds).
    for (std::size_t scan = queue.size();
         scan > 0 && running.size() < static_cast<std::size_t>(opt.jobs); --scan) {
      Job job = std::move(queue.front());
      queue.pop_front();
      if (job.not_before > now_ms()) {
        queue.push_back(std::move(job));
        continue;
      }
      ++job.attempts;
      Running r;
      r.job = job;
      r.out_path = "fleet_worker_" + std::to_string(launched++) + "_" + job.name + ".json";
      std::remove(r.out_path.c_str());
      r.pid = launch_worker(job.name, r.out_path, opt.threads);
      if (r.pid < 0) {
        requeue_or_record(std::move(job), "crash");
        continue;
      }
      r.deadline_ms = deadline_for(job.name);
      running.push_back(std::move(r));
    }

    for (std::size_t i = 0; i < running.size();) {
      Running& r = running[i];
      int status = 0;
      const pid_t got = waitpid(r.pid, &status, WNOHANG);
      if (got == r.pid) {
        const bool ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        std::string text;
        sc::Corpus single;
        std::string err;
        if (ok && read_file(r.out_path, text) && sc::from_json(text, single, err) &&
            single.records.size() == 1) {
          sc::CorpusRecord rec = single.records.front();
          rec.attempts = static_cast<std::uint32_t>(r.job.attempts);
          corpus.upsert(std::move(rec));
        } else {
          requeue_or_record(r.job, "crash");
        }
        std::remove(r.out_path.c_str());
        running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      if (got == 0 && now_ms() > r.deadline_ms) {
        kill(r.pid, SIGKILL);
        waitpid(r.pid, &status, 0);
        std::remove(r.out_path.c_str());
        requeue_or_record(r.job, "timeout");
        running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      ++i;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  const std::string json = sc::to_json(corpus);
  if (!opt.out_path.empty() && !write_file(opt.out_path, json)) {
    std::fprintf(stderr, "fatih-fleet: cannot write %s\n", opt.out_path.c_str());
    return 2;
  }
  if (opt.out_path.empty()) std::fputs(json.c_str(), stdout);

  if (!opt.golden_path.empty()) {
    std::string golden_text;
    sc::Corpus golden;
    std::string err;
    if (!read_file(opt.golden_path, golden_text) ||
        !sc::from_json(golden_text, golden, err)) {
      std::fprintf(stderr, "fatih-fleet: cannot load golden corpus %s: %s\n",
                   opt.golden_path.c_str(), err.c_str());
      return 2;
    }
    // A subset sweep is only accountable for the scenarios it ran; a
    // swept scenario whose worker died still has a (non-ok) record, so
    // the comparison cannot be dodged by crashing.
    std::erase_if(golden.records, [&](const sc::CorpusRecord& rec) {
      return std::find(opt.names.begin(), opt.names.end(), rec.name) == opt.names.end();
    });
    const sc::DriftReport report = sc::compare_corpus(golden, corpus);
    std::fputs(sc::describe(report).c_str(), stderr);
    if (!report.clean()) return 1;
  }
  return 0;
}

// -------------------------------------------------------------- other roles

int cmd_list() {
  for (const sc::ScenarioSpec& s : sc::builtin_scenarios()) {
    std::printf("%s\n", s.name.c_str());
  }
  return 0;
}

int cmd_print(const std::string& name) {
  const sc::ScenarioSpec* spec = sc::find_scenario(name);
  if (spec == nullptr) {
    std::fprintf(stderr, "fatih-fleet: unknown scenario '%s'\n", name.c_str());
    return 2;
  }
  std::fputs(sc::encode(*spec).c_str(), stdout);
  return 0;
}

int cmd_run(const std::string& name) {
  const sc::ScenarioSpec* spec = sc::find_scenario(name);
  if (spec == nullptr) {
    std::fprintf(stderr, "fatih-fleet: unknown scenario '%s'\n", name.c_str());
    return 2;
  }
  sc::Corpus corpus;
  corpus.upsert(sc::to_record(sc::run_scenario(*spec)));
  std::fputs(sc::to_json(corpus).c_str(), stdout);
  return 0;
}

int cmd_bisect(const std::string& golden_path, const std::string& fresh_path) {
  std::string text;
  std::string err;
  sc::Corpus golden;
  sc::Corpus fresh;
  if (!read_file(golden_path, text) || !sc::from_json(text, golden, err)) {
    std::fprintf(stderr, "fatih-fleet: cannot load %s: %s\n", golden_path.c_str(), err.c_str());
    return 2;
  }
  if (!read_file(fresh_path, text) || !sc::from_json(text, fresh, err)) {
    std::fprintf(stderr, "fatih-fleet: cannot load %s: %s\n", fresh_path.c_str(), err.c_str());
    return 2;
  }
  const sc::DriftReport report = sc::compare_corpus(golden, fresh);
  std::fputs(sc::describe(report).c_str(), stdout);
  return report.clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  const std::string& cmd = args[0];

  if (cmd == "list") return cmd_list();
  if (cmd == "print" && args.size() == 2) return cmd_print(args[1]);
  if (cmd == "run" && args.size() == 2) return cmd_run(args[1]);
  if (cmd == "bisect" && args.size() == 3) return cmd_bisect(args[1], args[2]);

  if (cmd == "worker") {
    std::string name;
    std::string out_path;
    unsigned threads = 0;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--out" && i + 1 < args.size()) {
        out_path = args[++i];
      } else if (args[i] == "--threads" && i + 1 < args.size()) {
        threads = static_cast<unsigned>(std::stoul(args[++i]));
      } else if (name.empty()) {
        name = args[i];
      } else {
        return usage();
      }
    }
    if (name.empty() || out_path.empty()) return usage();
    return cmd_worker(name, out_path, threads);
  }

  if (cmd == "sweep") {
    SweepOptions opt;
    bool inject_crash = false;
    bool inject_hang = false;
    for (std::size_t i = 1; i < args.size(); ++i) {
      const std::string& a = args[i];
      const auto next = [&]() -> std::string {
        return i + 1 < args.size() ? args[++i] : std::string();
      };
      if (a == "--jobs") opt.jobs = std::stoi(next());
      else if (a == "--threads") opt.threads = static_cast<unsigned>(std::stoul(next()));
      else if (a == "--timeout-ms") opt.timeout_ms = std::stoll(next());
      else if (a == "--hang-timeout-ms") opt.hang_timeout_ms = std::stoll(next());
      else if (a == "--retries") opt.retries = std::stoi(next());
      else if (a == "--out") opt.out_path = next();
      else if (a == "--golden") opt.golden_path = next();
      else if (a == "--inject-crash") inject_crash = true;
      else if (a == "--inject-hang") inject_hang = true;
      else if (!a.empty() && a[0] == '-') return usage();
      else opt.names.push_back(a);
    }
    if (opt.jobs < 1) opt.jobs = 1;
    if (opt.names.empty()) {
      for (const sc::ScenarioSpec& s : sc::builtin_scenarios()) opt.names.push_back(s.name);
    }
    if (inject_crash) opt.names.emplace_back(kInjectCrash);
    if (inject_hang) opt.names.emplace_back(kInjectHang);
    return cmd_sweep(opt);
  }

  return usage();
}
