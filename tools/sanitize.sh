#!/usr/bin/env bash
# ASan+UBSan build-and-ctest, the sanitized half of the tier-1 verify flow:
#   tools/sanitize.sh [ctest-args...]
# Builds into build-asan/ (separate from the normal build/) and runs the
# full suite under both sanitizers, failing on any report.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DFATIH_SANITIZE=ON
cmake --build build-asan -j"$(nproc)"
cd build-asan
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --output-on-failure -j"$(nproc)" "$@"
