#!/usr/bin/env bash
# Static-analysis driver: runs the three analyzers with the exact arguments
# CI's static-analysis job uses, so a clean local run means a clean CI run.
#
#   tools/lint.sh [build-dir]       (default: build)
#
#   1. fatih-lint   determinism/invariant rules over src/, bench/, tests/
#                   (tools/fatih-lint; built here if missing). Runs three
#                   times — full text report, R10-R12 evidence-chain JSON,
#                   and the --graph-dot call-graph dump — sharing one
#                   symbol-extraction cache so the tree is tokenized once.
#   2. clang-tidy   checks from the checked-in .clang-tidy, driven over
#                   compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS is
#                   always on)
#   3. cppcheck     warning/performance/portability over src/
#
# clang-tidy and cppcheck are optional locally: when not installed they are
# skipped with a warning (CI installs both). fatih-lint always runs.
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
status=0

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target fatih-lint >/dev/null

FATIH_LINT="$BUILD_DIR/tools/fatih-lint/fatih-lint"
SYMCACHE="$BUILD_DIR/fatih-lint-symcache"
mkdir -p "$SYMCACHE"

echo "== fatih-lint =="
"$FATIH_LINT" --root . --cache-dir "$SYMCACHE" src bench tests || status=1

# Interprocedural evidence chains (R10-R12) as machine-readable JSON, plus
# the Graphviz call graph — both reuse the extraction cache warmed above.
"$FATIH_LINT" --root . --cache-dir "$SYMCACHE" --enable-only R10,R11,R12 \
  --json src bench tests > "$BUILD_DIR/fatih-lint-chains.json" || status=1
"$FATIH_LINT" --root . --cache-dir "$SYMCACHE" --enable-only R10,R11,R12 \
  --graph-dot "$BUILD_DIR/fatih-symgraph.dot" src bench tests >/dev/null || status=1
echo "evidence chains: $BUILD_DIR/fatih-lint-chains.json"
echo "call graph:      $BUILD_DIR/fatih-symgraph.dot"

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy =="
  # Sources only; headers are covered through their including TUs.
  find src -name '*.cpp' | sort | xargs clang-tidy -p "$BUILD_DIR" --quiet \
    --warnings-as-errors='*' || status=1
else
  echo "warning: clang-tidy not installed; skipping (CI runs it)" >&2
fi

if command -v cppcheck >/dev/null 2>&1; then
  echo "== cppcheck =="
  cppcheck --enable=warning,performance,portability --std=c++20 \
    --language=c++ --inline-suppr --error-exitcode=1 --quiet \
    -I src src || status=1
else
  echo "warning: cppcheck not installed; skipping (CI runs it)" >&2
fi

exit "$status"
