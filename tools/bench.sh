#!/usr/bin/env bash
# Benchmark driver: builds the Release (-O3 -DNDEBUG) tree and regenerates
# the committed BENCH_*.json artifacts from the repo root:
#   tools/bench.sh              # perf_core + reliable_control
#   tools/bench.sh perf_core    # just the named benches
# Perf numbers are only meaningful from this preset — never cite a
# RelWithDebInfo or sanitizer build.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHES=("$@")
if [ ${#BENCHES[@]} -eq 0 ]; then
  BENCHES=(perf_core reliable_control churn)
fi

cmake --preset release
cmake --build --preset release -j"$(nproc)" --target "${BENCHES[@]}"

# Benches write their BENCH_<name>.json into the CWD; run from the root so
# the artifacts land next to the sources and get committed.
for b in "${BENCHES[@]}"; do
  echo "== running $b =="
  "build-release/bench/$b"
done
