// fatih-lint — determinism and invariant static analysis.
//
// Every reproducibility claim this repo makes (byte-identical suspicion
// sets, byte-identical trace/metrics artifacts, byte-identical BENCH_*
// regeneration) rests on the codebase never smuggling in a nondeterminism
// source. This tool makes those invariants machine-checked: it tokenizes
// the C++ sources (comments and string literals blanked, line structure
// preserved) and applies twelve rules, each individually toggleable:
//
//   R1 no-wallclock          wall-clock time sources outside util/time
//   R2 no-ambient-rng        ambient / default-seeded randomness
//   R3 no-unordered-iteration  iterating hash containers (order is
//                              pointer/seed dependent; lookups are fine)
//   R4 no-pointer-keyed-order  ordered containers / sort comparators
//                              keyed on raw pointer values
//   R5 no-iostream           std::cout/cerr in src/ (use util/log or the
//                              trace sink)
//   R6 trace-event-init      trace/metric event structs with fields that
//                              lack initializers, or partial brace-inits
//                              (uninit bytes break byte-identical output)
//   R7 no-include-cycles     #include cycles and module layering
//                              violations across src/
//   R8 simd-containment      raw SIMD vector types (__m128i/__m256i/...)
//                              outside src/crypto/ — kernels stay behind
//                              the runtime-dispatched batch API so every
//                              other layer has exactly one code path
//   R9 thread-containment    raw threading primitives (std::thread,
//                              std::mutex, std::atomic, thread_local, ...)
//                              outside src/sim/shard* — all concurrency
//                              lives in the shard runtime, whose barrier
//                              discipline keeps digests worker-invariant
//
// R10–R12 are *interprocedural*: they run over the cross-TU call graph
// extracted by tools/fatih-lint/symgraph (same token stream, no compiler),
// and their diagnostics carry a machine-readable source→sink call chain:
//
//   R10 determinism-taint    a wall-clock / ambient-RNG / unordered-
//                              iteration source (the R1–R3 patterns, with
//                              *no* path exemptions — laundering through
//                              util/time counts) inside a function from
//                              which a digest/codec sink is reachable:
//                              state_fingerprint, pending_fingerprint,
//                              StateDigest construction, summary/
//                              fingerprint hashing, wire encode/decode,
//                              to_json/to_jsonl
//   R11 float-free-digest    float/double declarations or casts in any
//                              function reachable into a digest/wire-codec
//                              sink, or float/double fields in serialized
//                              event structs — FP rounding is ISA- and
//                              flag-dependent, which would silently break
//                              the shard and SIMD differential suites
//   R12 hot-path-allocation  heap allocation (new, make_unique/shared,
//                              owning std::string/std::vector
//                              construction) in any function reachable
//                              from the forwarding/dispatch hot-path
//                              roots: Simulator::run*, Node::forward*/
//                              receive*, Interface transmit, queue
//                              admission, the SipHash batch flush
//
// Inline suppression:  // fatih-lint: allow(<rule>) <justification>
// The window is exactly two lines: the comment's own line and the next
// line. A violation two lines below the comment is NOT covered — move the
// comment onto (or directly above) the offending line. A suppression
// without a justification is itself a violation (bare-suppression).
//
// The analysis is lexical by design: no compiler, no new dependencies,
// deterministic output. Heuristics err toward silence (a named rule fires
// only on patterns it can prove lexically, and a call edge exists only
// when the callee identifier is visible at the call site — function
// pointers and std::function taint nothing); the suppression mechanism
// covers the rest.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "symgraph.hpp"

namespace fatih::lint {

enum class Rule : std::uint8_t {
  kNoWallclock = 0,       // R1
  kNoAmbientRng,          // R2
  kNoUnorderedIteration,  // R3
  kNoPointerKeyedOrder,   // R4
  kNoIostream,            // R5
  kTraceEventInit,        // R6
  kNoIncludeCycles,       // R7
  kSimdContainment,       // R8
  kThreadContainment,     // R9
  kDeterminismTaint,      // R10 (interprocedural)
  kFloatFreeDigest,       // R11 (interprocedural)
  kHotPathAllocation,     // R12 (interprocedural)
  kBareSuppression,       // meta-rule: allow() without a justification
};
inline constexpr std::size_t kRuleCount = 13;

/// Stable kebab-case rule name ("no-wallclock").
[[nodiscard]] const char* rule_name(Rule r);
/// Short id ("R1".."R9", "R0" for the suppression meta-rule).
[[nodiscard]] const char* rule_id(Rule r);
/// Accepts a name or id, case-insensitive. Returns false on unknown.
[[nodiscard]] bool parse_rule(std::string_view s, Rule& out);

struct Config {
  std::array<bool, kRuleCount> enabled{};
  Config() { enabled.fill(true); }
  [[nodiscard]] bool on(Rule r) const { return enabled[static_cast<std::size_t>(r)]; }
  void set(Rule r, bool v) { enabled[static_cast<std::size_t>(r)] = v; }
};

/// One input file. `path` is repo-relative with '/' separators; the rule
/// scoping (src/ vs bench/ vs tests/, util/time exemptions, module
/// layering) keys off it.
struct SourceFile {
  std::string path;
  std::string content;
};

/// One hop of an interprocedural evidence chain. chain[0] is the flagged
/// site (its line is the source/allocation line); each later hop is the
/// caller one level up, with `line` the call site in that caller's file;
/// the last hop is the digest sink (R10/R11) or hot-path root (R12).
struct ChainHop {
  std::string function;  ///< qualified name ("Simulator::run")
  std::string file;
  std::size_t line = 0;
};

struct Diagnostic {
  std::string file;
  std::size_t line = 0;
  Rule rule = Rule::kNoWallclock;
  std::string message;
  std::vector<ChainHop> chain;  ///< non-empty only for R10–R12 function findings
};

struct Report {
  std::vector<Diagnostic> diagnostics;  ///< sorted by (file, line, rule)
  std::size_t suppressed = 0;           ///< justified-suppression hits
  std::size_t files_scanned = 0;
};

/// Runs every enabled rule over the file set. Deterministic: output
/// depends only on (files, cfg), never on filesystem or iteration order.
[[nodiscard]] Report lint_files(const std::vector<SourceFile>& files, const Config& cfg);

/// Extended analysis entry point: lint_files plus symbol-graph control.
struct AnalyzeOptions {
  Config cfg{};
  /// Non-empty: reuse/populate the per-file symbol extraction cache in
  /// this directory (created if missing). Keyed by FNV-1a content hash,
  /// so cached and uncached runs are byte-identical (pinned by test).
  std::string cache_dir{};
  /// Always build and return the call graph, even if no interprocedural
  /// rule is enabled (for --graph-dot).
  bool want_graph = false;
};

struct AnalyzeResult {
  Report report;
  symgraph::Graph graph;  ///< populated iff want_graph or R10–R12 ran
};

[[nodiscard]] AnalyzeResult analyze(const std::vector<SourceFile>& files,
                                    const AnalyzeOptions& opts);

/// The linter's lexical preprocessing, exported for the symbol-graph
/// pipeline: comments and string/char literal contents blanked to spaces,
/// line structure and code offsets preserved.
[[nodiscard]] std::string strip_to_code(const std::string& content);

/// Machine-readable report; shape pinned by tests/lint/lint_test.cpp.
[[nodiscard]] std::string to_json(const Report& r);
/// Human-readable "file:line: [rule] message" lines plus a summary.
[[nodiscard]] std::string to_text(const Report& r);

}  // namespace fatih::lint
