// fatih-lint — determinism and invariant static analysis.
//
// Every reproducibility claim this repo makes (byte-identical suspicion
// sets, byte-identical trace/metrics artifacts, byte-identical BENCH_*
// regeneration) rests on the codebase never smuggling in a nondeterminism
// source. This tool makes those invariants machine-checked: it tokenizes
// the C++ sources (comments and string literals blanked, line structure
// preserved) and applies nine rules, each individually toggleable:
//
//   R1 no-wallclock          wall-clock time sources outside util/time
//   R2 no-ambient-rng        ambient / default-seeded randomness
//   R3 no-unordered-iteration  iterating hash containers (order is
//                              pointer/seed dependent; lookups are fine)
//   R4 no-pointer-keyed-order  ordered containers / sort comparators
//                              keyed on raw pointer values
//   R5 no-iostream           std::cout/cerr in src/ (use util/log or the
//                              trace sink)
//   R6 trace-event-init      trace/metric event structs with fields that
//                              lack initializers, or partial brace-inits
//                              (uninit bytes break byte-identical output)
//   R7 no-include-cycles     #include cycles and module layering
//                              violations across src/
//   R8 simd-containment      raw SIMD vector types (__m128i/__m256i/...)
//                              outside src/crypto/ — kernels stay behind
//                              the runtime-dispatched batch API so every
//                              other layer has exactly one code path
//   R9 thread-containment    raw threading primitives (std::thread,
//                              std::mutex, std::atomic, thread_local, ...)
//                              outside src/sim/shard* — all concurrency
//                              lives in the shard runtime, whose barrier
//                              discipline keeps digests worker-invariant
//
// Inline suppression:  // fatih-lint: allow(<rule>) <justification>
// applies to its own line and the next line. A suppression without a
// justification is itself a violation (bare-suppression).
//
// The analysis is lexical by design: no compiler, no new dependencies,
// deterministic output. Heuristics err toward silence (a named rule fires
// only on patterns it can prove lexically); the suppression mechanism
// covers the rest.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fatih::lint {

enum class Rule : std::uint8_t {
  kNoWallclock = 0,       // R1
  kNoAmbientRng,          // R2
  kNoUnorderedIteration,  // R3
  kNoPointerKeyedOrder,   // R4
  kNoIostream,            // R5
  kTraceEventInit,        // R6
  kNoIncludeCycles,       // R7
  kSimdContainment,       // R8
  kThreadContainment,     // R9
  kBareSuppression,       // meta-rule: allow() without a justification
};
inline constexpr std::size_t kRuleCount = 10;

/// Stable kebab-case rule name ("no-wallclock").
[[nodiscard]] const char* rule_name(Rule r);
/// Short id ("R1".."R9", "R0" for the suppression meta-rule).
[[nodiscard]] const char* rule_id(Rule r);
/// Accepts a name or id, case-insensitive. Returns false on unknown.
[[nodiscard]] bool parse_rule(std::string_view s, Rule& out);

struct Config {
  std::array<bool, kRuleCount> enabled{};
  Config() { enabled.fill(true); }
  [[nodiscard]] bool on(Rule r) const { return enabled[static_cast<std::size_t>(r)]; }
  void set(Rule r, bool v) { enabled[static_cast<std::size_t>(r)] = v; }
};

/// One input file. `path` is repo-relative with '/' separators; the rule
/// scoping (src/ vs bench/ vs tests/, util/time exemptions, module
/// layering) keys off it.
struct SourceFile {
  std::string path;
  std::string content;
};

struct Diagnostic {
  std::string file;
  std::size_t line = 0;
  Rule rule = Rule::kNoWallclock;
  std::string message;
};

struct Report {
  std::vector<Diagnostic> diagnostics;  ///< sorted by (file, line, rule)
  std::size_t suppressed = 0;           ///< justified-suppression hits
  std::size_t files_scanned = 0;
};

/// Runs every enabled rule over the file set. Deterministic: output
/// depends only on (files, cfg), never on filesystem or iteration order.
[[nodiscard]] Report lint_files(const std::vector<SourceFile>& files, const Config& cfg);

/// Machine-readable report; shape pinned by tests/lint/lint_test.cpp.
[[nodiscard]] std::string to_json(const Report& r);
/// Human-readable "file:line: [rule] message" lines plus a summary.
[[nodiscard]] std::string to_text(const Report& r);

}  // namespace fatih::lint
