#include "symgraph.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace fatih::lint::symgraph {

namespace {

// Small lexical helpers over the blanked code. Deliberately local copies
// (the linter keeps its own in lint.cpp): both sides are tiny, and the
// extraction contract is the *blanked text*, not the linter's internals.

bool ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
}

bool space_char(char c) { return c == ' ' || c == '\t' || c == '\n' || c == '\r'; }

std::size_t next_nonspace(const std::string& s, std::size_t p) {
  while (p < s.size() && space_char(s[p])) ++p;
  return p;
}

std::size_t prev_nonspace(const std::string& s, std::size_t p) {
  while (p > 0) {
    --p;
    if (!space_char(s[p])) return p;
  }
  return std::string::npos;
}

std::string read_ident(const std::string& s, std::size_t pos) {
  std::size_t e = pos;
  while (e < s.size() && ident_char(s[e])) ++e;
  return s.substr(pos, e - pos);
}

std::string read_ident_before(const std::string& s, std::size_t end) {
  std::size_t b = end;
  while (b > 0 && ident_char(s[b - 1])) --b;
  return s.substr(b, end - b);
}

std::size_t match_bracket(const std::string& s, std::size_t pos) {
  const char open = s[pos];
  const char close = open == '(' ? ')' : open == '{' ? '}' : ']';
  int depth = 0;
  for (std::size_t i = pos; i < s.size(); ++i) {
    if (s[i] == open) ++depth;
    else if (s[i] == close) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string::npos;
}

/// `pos` points at '<'; returns offset just past the matching '>', or npos
/// (a ';' before balance means it was a comparison, not template args).
std::size_t skip_template_args(const std::string& s, std::size_t pos) {
  int depth = 0;
  for (std::size_t i = pos; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    else if (s[i] == '>') {
      --depth;
      if (depth == 0) return i + 1;
    } else if (s[i] == ';') {
      return std::string::npos;
    }
  }
  return std::string::npos;
}

/// Identifiers that can precede '(' without being a function name or a
/// call: control flow, casts, storage words. Erring toward inclusion here
/// only silences the extractor, never corrupts it.
bool is_keyword(const std::string& w) {
  static const std::set<std::string> kKeywords = {
      "if",           "else",         "for",          "while",       "do",
      "switch",       "case",         "default",      "return",      "break",
      "continue",     "goto",         "sizeof",       "alignof",     "alignas",
      "decltype",     "typeid",       "new",          "delete",      "catch",
      "try",          "throw",        "operator",     "template",    "typename",
      "using",        "namespace",    "static_assert", "constexpr",  "consteval",
      "constinit",    "const",        "volatile",     "static",      "inline",
      "extern",       "friend",       "virtual",      "explicit",    "public",
      "private",      "protected",    "struct",       "class",       "enum",
      "union",        "co_return",    "co_await",     "co_yield",    "requires",
      "noexcept",     "this",         "assert",       "static_cast", "dynamic_cast",
      "const_cast",   "reinterpret_cast", "defined",  "and",         "or",
      "not",          "auto",         "void",         "int",         "bool",
      "char",         "short",        "long",         "unsigned",    "signed",
      "float",        "double"};
  return kKeywords.count(w) != 0;
}

/// Statement keywords after which an identifier+'(' is a call, not a
/// declaration (`return helper(x)` vs `Type helper(x)`).
bool is_statement_keyword(const std::string& w) {
  return w == "return" || w == "else" || w == "case" || w == "do" || w == "throw" ||
         w == "co_return" || w == "co_await" || w == "co_yield" || w == "and" || w == "or" ||
         w == "not";
}

/// After the parameter list of a candidate definition, scans specifiers
/// (const/noexcept/override/..., trailing return, ctor init list) and
/// returns the offset of the body '{', or npos if this is a declaration
/// or not a function at all. Err-toward-silence: anything unrecognized is
/// npos.
std::size_t find_body_brace(const std::string& s, std::size_t p) {
  p = next_nonspace(s, p);
  while (p < s.size() && ident_char(s[p])) {
    const std::string w = read_ident(s, p);
    if (w != "const" && w != "noexcept" && w != "override" && w != "final" && w != "mutable" &&
        w != "try" && w != "requires" && w != "volatile" && w != "constexpr")
      return std::string::npos;
    p = next_nonspace(s, p + w.size());
    if (p < s.size() && s[p] == '(') {  // noexcept(...) / requires(...)
      const std::size_t e = match_bracket(s, p);
      if (e == std::string::npos) return std::string::npos;
      p = next_nonspace(s, e + 1);
    }
  }
  if (p >= s.size()) return std::string::npos;
  if (s[p] == '{') return p;
  if (s[p] == '-' && p + 1 < s.size() && s[p + 1] == '>') {
    // Trailing return type: skip type tokens until the body brace.
    p += 2;
    while (p < s.size()) {
      if (s[p] == '{') return p;
      if (s[p] == ';' || s[p] == '=') return std::string::npos;
      if (s[p] == '<') {
        const std::size_t e = skip_template_args(s, p);
        if (e == std::string::npos) return std::string::npos;
        p = e;
        continue;
      }
      if (s[p] == '(') {
        const std::size_t e = match_bracket(s, p);
        if (e == std::string::npos) return std::string::npos;
        p = e + 1;
        continue;
      }
      ++p;
    }
    return std::string::npos;
  }
  if (s[p] == ':' && (p + 1 >= s.size() || s[p + 1] != ':')) {
    // Constructor init list: `: member_(a), Base{b} {`.
    p = next_nonspace(s, p + 1);
    while (true) {
      if (p >= s.size() || !ident_char(s[p])) return std::string::npos;
      p += read_ident(s, p).size();
      while (p + 1 < s.size() && s[p] == ':' && s[p + 1] == ':') {
        p += 2;
        if (p >= s.size() || !ident_char(s[p])) return std::string::npos;
        p += read_ident(s, p).size();
      }
      p = next_nonspace(s, p);
      if (p < s.size() && s[p] == '<') {
        const std::size_t e = skip_template_args(s, p);
        if (e == std::string::npos) return std::string::npos;
        p = next_nonspace(s, e);
      }
      if (p >= s.size() || (s[p] != '(' && s[p] != '{')) return std::string::npos;
      const std::size_t e = match_bracket(s, p);
      if (e == std::string::npos) return std::string::npos;
      p = next_nonspace(s, e + 1);
      if (p < s.size() && s[p] == ',') {
        p = next_nonspace(s, p + 1);
        continue;
      }
      break;
    }
    if (p < s.size() && s[p] == '{') return p;
    return std::string::npos;
  }
  return std::string::npos;
}

/// Counts written arguments between `open` ('(') and its match. Top-level
/// commas delimit; nested (), {}, [] groups are skipped. '<' is NOT
/// treated as a group (at expression level it is usually a comparison; a
/// template-id argument miscounts toward a dropped edge, which is the
/// quiet direction). Whitespace-only parens are zero arguments.
std::uint32_t count_call_args(const std::string& s, std::size_t open, std::size_t close) {
  std::uint32_t commas = 0;
  bool any = false;
  int round = 0, brace = 0, square = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    const char c = s[i];
    if (c == '(') ++round;
    else if (c == ')') --round;
    else if (c == '{') ++brace;
    else if (c == '}') --brace;
    else if (c == '[') ++square;
    else if (c == ']') --square;
    else if (c == ',' && round == 0 && brace == 0 && square == 0) ++commas;
    if (!space_char(c)) any = true;
  }
  return any ? commas + 1 : 0;
}

/// Parameter-list arity for a definition: [min, max] written-argument
/// counts. Defaults (`= expr` at top level) widen min downward; `...`
/// (packs / C varargs) unbounds max. Unlike call sites, '<' groups ARE
/// skipped here — `std::map<K, V> m` is a single parameter, and top-level
/// comparisons cannot appear in a parameter list.
void count_params(const std::string& s, std::size_t open, std::size_t close,
                  std::uint32_t& min_args, std::uint32_t& max_args) {
  min_args = max_args = 0;
  {  // `f()` and C-style `f(void)` both declare zero parameters.
    std::size_t b = next_nonspace(s, open + 1);
    std::size_t e = close;
    while (e > b && space_char(s[e - 1])) --e;
    if (b >= e || s.compare(b, e - b, "void") == 0) return;
  }
  std::uint32_t params = 0, defaulted = 0;
  bool cur_defaulted = false, variadic = false;
  int round = 0, brace = 0, square = 0, angle = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    const char c = s[i];
    if (c == '(') ++round;
    else if (c == ')') --round;
    else if (c == '{') ++brace;
    else if (c == '}') --brace;
    else if (c == '[') ++square;
    else if (c == '<') ++angle;
    else if (c == '>' && angle > 0 && s[i - 1] != '-') --angle;
    else if (c == ']') --square;
    const bool top = round == 0 && brace == 0 && square == 0 && angle == 0;
    if (top && c == ',') {
      ++params;
      if (cur_defaulted) ++defaulted;
      cur_defaulted = false;
      continue;
    }
    if (top && c == '=' && s[i - 1] != '=' && s[i - 1] != '!' && s[i - 1] != '<' &&
        s[i - 1] != '>' && (i + 1 >= s.size() || s[i + 1] != '='))
      cur_defaulted = true;
    if (top && c == '.' && i + 2 < close && s[i + 1] == '.' && s[i + 2] == '.') variadic = true;
  }
  ++params;
  if (cur_defaulted) ++defaulted;
  // A variadic list accepts a wide range; disable the lower bound rather
  // than risk dropping a legal call edge over the `...` pseudo-parameter.
  min_args = variadic ? 0 : params - defaulted;
  max_args = variadic ? kAnyArity : params;
}

struct LineTable {
  std::vector<std::size_t> starts;
  explicit LineTable(const std::string& s) {
    starts.push_back(0);
    for (std::size_t i = 0; i < s.size(); ++i)
      if (s[i] == '\n') starts.push_back(i + 1);
  }
  [[nodiscard]] std::uint32_t line_of(std::size_t pos) const {
    const auto it = std::upper_bound(starts.begin(), starts.end(), pos);
    return static_cast<std::uint32_t>(it - starts.begin());
  }
};

/// Scans one function body for call sites and appends them to out.calls.
void extract_calls(const std::string& s, const LineTable& lines, std::uint32_t caller,
                   std::size_t begin, std::size_t end, FileSyms& out) {
  std::size_t i = begin;
  while (i < end) {
    const char c = s[i];
    if (!ident_char(c) || (i > 0 && ident_char(s[i - 1]))) {
      ++i;
      continue;
    }
    if (c >= '0' && c <= '9') {  // numeric literal, not an identifier
      while (i < end && (ident_char(s[i]) || s[i] == '\'')) ++i;
      continue;
    }
    const std::string word = read_ident(s, i);
    const std::size_t word_begin = i;
    const std::size_t word_end = i + word.size();
    i = word_end;
    if (is_keyword(word)) continue;
    std::size_t q = next_nonspace(s, word_end);
    if (q < end && s[q] == '<') {
      const std::size_t e = skip_template_args(s, q);
      if (e == std::string::npos || e > end) continue;
      q = next_nonspace(s, e);
    }
    if (q >= end || s[q] != '(') continue;

    bool member = false;
    std::string qualifier;
    const std::size_t pv = prev_nonspace(s, word_begin);
    if (pv != std::string::npos) {
      if (s[pv] == '.') {
        member = true;
      } else if (s[pv] == '>' && pv > 0 && s[pv - 1] == '-') {
        member = true;
      } else if (s[pv] == '~') {
        continue;  // destructor call
      } else if (s[pv] == ':' && pv > 0 && s[pv - 1] == ':') {
        const std::size_t qe = prev_nonspace(s, pv - 1);
        if (qe != std::string::npos && ident_char(s[qe]))
          qualifier = read_ident_before(s, qe + 1);
        if (qualifier == "std") continue;  // std:: calls are not graph nodes
      } else if (ident_char(s[pv])) {
        // `Type name(...)`: a declaration unless the preceding identifier
        // is a statement keyword (`return name(...)`).
        if (!is_statement_keyword(read_ident_before(s, pv + 1))) continue;
      }
    }
    const std::size_t close = match_bracket(s, q);
    if (close == std::string::npos || close > end) continue;
    out.calls.push_back({caller, word, qualifier, member, lines.line_of(word_begin),
                         count_call_args(s, q, close)});
  }
}

}  // namespace

FileSyms extract_symbols(const std::string& path, const std::string& blanked) {
  FileSyms out;
  out.path = path;
  const std::string& s = blanked;
  const LineTable lines(s);

  // Innermost enclosing struct/class; entries apply while depth >= .depth.
  struct ScopeEntry {
    std::string name;
    int depth;
  };
  std::vector<ScopeEntry> scopes;
  int depth = 0;

  std::size_t i = 0;
  while (i < s.size()) {
    const char c = s[i];
    if (c == '{') {
      ++depth;
      ++i;
      continue;
    }
    if (c == '}') {
      --depth;
      while (!scopes.empty() && scopes.back().depth > depth) scopes.pop_back();
      ++i;
      continue;
    }
    if (!ident_char(c) || (i > 0 && ident_char(s[i - 1]))) {
      ++i;
      continue;
    }
    if (c >= '0' && c <= '9') {
      while (i < s.size() && (ident_char(s[i]) || s[i] == '\'')) ++i;
      continue;
    }
    const std::string word = read_ident(s, i);
    const std::size_t word_begin = i;
    const std::size_t word_end = i + word.size();
    if (word == "struct" || word == "class") {
      // Not `enum class`: that opens an enumerator list, not a scope.
      bool enum_class = false;
      const std::size_t pv = prev_nonspace(s, word_begin);
      if (pv != std::string::npos && ident_char(s[pv]))
        enum_class = read_ident_before(s, pv + 1) == "enum";
      const std::size_t q = next_nonspace(s, word_end);
      if (!enum_class && q < s.size() && ident_char(s[q])) {
        const std::string name = read_ident(s, q);
        // Forward-scan for the class body '{' (a ';' first means a forward
        // declaration). Base clauses may carry template args and alignas.
        std::size_t r = q + name.size();
        while (r < s.size() && s[r] != '{' && s[r] != ';' && s[r] != '}') {
          if (s[r] == '<') {
            const std::size_t e = skip_template_args(s, r);
            if (e == std::string::npos) break;
            r = e;
            continue;
          }
          if (s[r] == '(') {
            const std::size_t e = match_bracket(s, r);
            if (e == std::string::npos) break;
            r = e + 1;
            continue;
          }
          ++r;
        }
        if (r < s.size() && s[r] == '{') scopes.push_back({name, depth + 1});
      }
      i = word_end;
      continue;
    }
    if (is_keyword(word)) {
      i = word_end;
      continue;
    }

    // Candidate definition name. Member access / destructors are never
    // definitions we record; an explicit `Cls::` prefix qualifies one.
    std::string qualifier;
    const std::size_t pv = prev_nonspace(s, word_begin);
    if (pv != std::string::npos) {
      if (s[pv] == '.' || s[pv] == '~' || (s[pv] == '>' && pv > 0 && s[pv - 1] == '-')) {
        i = word_end;
        continue;
      }
      if (s[pv] == ':' && pv > 0 && s[pv - 1] == ':') {
        const std::size_t qe = prev_nonspace(s, pv - 1);
        if (qe == std::string::npos || !ident_char(s[qe])) {
          i = word_end;
          continue;
        }
        qualifier = read_ident_before(s, qe + 1);
      }
    }
    std::size_t q = next_nonspace(s, word_end);
    if (q < s.size() && s[q] == '<') {
      const std::size_t e = skip_template_args(s, q);
      if (e == std::string::npos) {
        i = word_end;
        continue;
      }
      q = next_nonspace(s, e);
    }
    if (q >= s.size() || s[q] != '(') {
      i = word_end;
      continue;
    }
    const std::size_t params_end = match_bracket(s, q);
    if (params_end == std::string::npos) {
      i = word_end;
      continue;
    }
    const std::size_t body = find_body_brace(s, params_end + 1);
    if (body == std::string::npos) {
      i = word_end;
      continue;
    }
    const std::size_t body_end = match_bracket(s, body);
    if (body_end == std::string::npos) {
      i = word_end;
      continue;
    }
    std::string qualified;
    if (!qualifier.empty()) qualified = qualifier + "::" + word;
    else if (!scopes.empty()) qualified = scopes.back().name + "::" + word;
    else qualified = word;
    std::uint32_t min_args = 0, max_args = 0;
    count_params(s, q, params_end, min_args, max_args);
    out.functions.push_back({word, std::move(qualified), lines.line_of(word_begin),
                             static_cast<std::uint32_t>(body),
                             static_cast<std::uint32_t>(body_end), min_args, max_args});
    i = body_end + 1;  // bodies are scanned by the call pass, below
  }

  for (std::uint32_t fi = 0; fi < out.functions.size(); ++fi) {
    const SymFunction& fn = out.functions[fi];
    extract_calls(s, lines, fi, fn.body_begin + 1, fn.body_end, out);
  }
  return out;
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string encode_syms(const FileSyms& syms) {
  std::ostringstream os;
  os << "fatih-symcache 1\n";
  os << "path " << syms.path << "\n";
  for (const SymFunction& f : syms.functions) {
    os << "fn " << f.line << " " << f.body_begin << " " << f.body_end << " " << f.min_args << " "
       << f.max_args << " " << f.name << " " << f.qualified << "\n";
  }
  for (const SymCall& c : syms.calls) {
    os << "call " << c.caller << " " << c.line << " " << (c.member ? 1 : 0) << " " << c.argc
       << " " << c.name << " " << (c.qualifier.empty() ? "-" : c.qualifier) << "\n";
  }
  return os.str();
}

bool decode_syms(std::string_view text, FileSyms& out) {
  out = FileSyms{};
  std::istringstream is{std::string(text)};
  std::string line;
  if (!std::getline(is, line) || line != "fatih-symcache 1") return false;
  if (!std::getline(is, line) || line.rfind("path ", 0) != 0) return false;
  out.path = line.substr(5);
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "fn") {
      SymFunction f;
      ls >> f.line >> f.body_begin >> f.body_end >> f.min_args >> f.max_args >> f.name >>
          f.qualified;
      if (ls.fail() || f.name.empty() || f.qualified.empty()) return false;
      out.functions.push_back(std::move(f));
    } else if (kind == "call") {
      SymCall c;
      int member = 0;
      std::string qual;
      ls >> c.caller >> c.line >> member >> c.argc >> c.name >> qual;
      if (ls.fail() || c.name.empty() || qual.empty() || member < 0 || member > 1) return false;
      if (c.caller >= out.functions.size()) return false;
      c.member = member == 1;
      c.qualifier = qual == "-" ? std::string() : qual;
      out.calls.push_back(std::move(c));
    } else {
      return false;
    }
  }
  return true;
}

FileSyms extract_symbols_cached(const std::string& path, const std::string& content,
                                const std::string& blanked, const std::string& cache_dir) {
  namespace fs = std::filesystem;
  std::string key_bytes = path;
  key_bytes.push_back('\0');
  key_bytes += content;
  const std::uint64_t key = fnv1a64(key_bytes);
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.syms", static_cast<unsigned long long>(key));
  const fs::path entry = fs::path(cache_dir) / name;

  std::error_code ec;
  if (fs::exists(entry, ec)) {
    std::ifstream in(entry, std::ios::binary);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      FileSyms cached;
      if (decode_syms(ss.str(), cached) && cached.path == path) return cached;
    }
  }
  FileSyms fresh = extract_symbols(path, blanked);
  std::ofstream outf(entry, std::ios::binary | std::ios::trunc);
  if (outf) {
    const std::string enc = encode_syms(fresh);
    outf.write(enc.data(), static_cast<std::streamsize>(enc.size()));
  }
  return fresh;
}

Graph build_graph(const std::vector<FileSyms>& files) {
  Graph g;
  // Deterministic node order regardless of input order: sort file refs by
  // path, then nodes by (qualified, file, line).
  std::vector<const FileSyms*> sorted;
  sorted.reserve(files.size());
  for (const FileSyms& f : files) sorted.push_back(&f);
  std::sort(sorted.begin(), sorted.end(),
            [](const FileSyms* a, const FileSyms* b) { return a->path < b->path; });

  struct Ref {
    const FileSyms* file;
    std::uint32_t idx;
  };
  std::vector<Ref> refs;
  for (const FileSyms* f : sorted)
    for (std::uint32_t i = 0; i < f->functions.size(); ++i) refs.push_back({f, i});
  std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    const SymFunction& fa = a.file->functions[a.idx];
    const SymFunction& fb = b.file->functions[b.idx];
    if (fa.qualified != fb.qualified) return fa.qualified < fb.qualified;
    if (a.file->path != b.file->path) return a.file->path < b.file->path;
    return fa.line < fb.line;
  });

  std::map<std::pair<const FileSyms*, std::uint32_t>, std::uint32_t> node_of;
  g.nodes.reserve(refs.size());
  for (const Ref& r : refs) {
    const std::uint32_t idx = static_cast<std::uint32_t>(g.nodes.size());
    node_of[{r.file, r.idx}] = idx;
    g.nodes.push_back({r.file->functions[r.idx], r.file->path, {}});
    const Graph::Node& n = g.nodes.back();
    g.by_name[n.fn.name].push_back(idx);
    g.by_qualified[n.fn.qualified].push_back(idx);
    if (n.fn.qualified != n.fn.name) g.methods_by_name[n.fn.name].push_back(idx);
  }

  for (const FileSyms* f : sorted) {
    for (const SymCall& c : f->calls) {
      const auto cit = node_of.find({f, c.caller});
      if (cit == node_of.end()) continue;
      const std::uint32_t caller_node = cit->second;
      const std::vector<std::uint32_t>* candidates = nullptr;
      if (!c.qualifier.empty()) {
        const auto it = g.by_qualified.find(c.qualifier + "::" + c.name);
        if (it != g.by_qualified.end()) candidates = &it->second;
      } else if (c.member) {
        const auto it = g.methods_by_name.find(c.name);
        if (it != g.methods_by_name.end()) candidates = &it->second;
      } else {
        // Unqualified lookup: a bare call inside a method binds to the
        // caller's own class method when one exists, mirroring C++ name
        // lookup; only otherwise does it fan out to every same-named
        // function in the repo.
        const std::string& cq = g.nodes[caller_node].fn.qualified;
        const std::size_t sep = cq.rfind("::");
        if (sep != std::string::npos) {
          const auto it = g.by_qualified.find(cq.substr(0, sep + 2) + c.name);
          if (it != g.by_qualified.end()) candidates = &it->second;
        }
        if (candidates == nullptr) {
          const auto it = g.by_name.find(c.name);
          if (it != g.by_name.end()) candidates = &it->second;
        }
      }
      if (candidates == nullptr) continue;  // unresolved: conservatively silent
      for (const std::uint32_t callee : *candidates) {
        // Arity filter: the written argument count must fit the callee's
        // parameter count ([min, max]; defaults widen, packs unbound).
        const SymFunction& fn = g.nodes[callee].fn;
        if (c.argc < fn.min_args || (fn.max_args != kAnyArity && c.argc > fn.max_args)) continue;
        g.nodes[caller_node].callees.emplace_back(callee, c.line);
      }
    }
  }
  for (Graph::Node& n : g.nodes) {
    std::sort(n.callees.begin(), n.callees.end());
    // Dedup by callee, keeping the first (lowest-line) call site as the
    // evidence line for the edge.
    n.callees.erase(std::unique(n.callees.begin(), n.callees.end(),
                                [](const auto& a, const auto& b) { return a.first == b.first; }),
                    n.callees.end());
  }
  return g;
}

std::string to_dot(const Graph& g) {
  std::ostringstream os;
  os << "digraph fatih_symgraph {\n";
  os << "  rankdir=LR;\n";
  os << "  node [shape=box, fontsize=9];\n";
  auto key = [&](std::uint32_t i) {
    const Graph::Node& n = g.nodes[i];
    std::ostringstream k;
    k << n.fn.qualified << "@" << n.file << ":" << n.fn.line;
    return k.str();
  };
  for (std::uint32_t i = 0; i < g.nodes.size(); ++i) {
    const Graph::Node& n = g.nodes[i];
    os << "  \"" << key(i) << "\" [label=\"" << n.fn.qualified << "\\n" << n.file << ":"
       << n.fn.line << "\"];\n";
  }
  for (std::uint32_t i = 0; i < g.nodes.size(); ++i) {
    for (const auto& [callee, line] : g.nodes[i].callees) {
      os << "  \"" << key(i) << "\" -> \"" << key(callee) << "\" [label=\"" << line << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace fatih::lint::symgraph
