// fatih-lint symbol graph — cross-TU call-graph extraction on top of the
// linter's lexical token stream (comments and string literals blanked; no
// compiler dependency, deterministic output).
//
// The per-file pattern rules (R1..R9) police nondeterminism *where it is
// written*; the interprocedural rules (R10..R12) need to know where it
// *flows*. This module supplies the substrate: it extracts function
// definitions and call sites from each file independently, then links them
// into a repo-wide call graph keyed by qualified name, with per-edge
// file:line evidence so every reachability verdict can cite a concrete
// chain.
//
// Extraction heuristics (soundness posture: err toward silence — a missed
// edge makes a rule quieter, never noisier):
//
//   * A function definition is `name(params) <specifiers> {` at class or
//     namespace scope. Method definitions are qualified by the innermost
//     enclosing `struct`/`class` (or an explicit `Cls::` prefix for
//     out-of-line definitions); namespaces do not qualify. Destructors,
//     `operator` overloads and lambdas are not extracted.
//   * A call site is `name(` / `name<...>(` inside a recorded body. The
//     written qualifier is preserved: `Cls::f(` records qualifier "Cls",
//     `obj.f(` / `p->f(` record a member call, a bare `f(` records an
//     unqualified call. `std::` calls and declaration-looking forms
//     (`Type var(...)`) are dropped.
//   * Linking is conservative: an explicitly qualified call binds only to
//     exact `Cls::name` matches; a member call binds to every *method*
//     named `name`; an unqualified call binds to the caller's own class
//     method when one exists (mirroring C++ unqualified lookup), else to
//     every function named `name` (methods and free functions alike —
//     overloads all get an edge). Every candidate is arity-filtered: an
//     edge survives only if the written argument count fits the callee's
//     [min, max] parameter count (defaults widen min, packs/varargs
//     unbound max). Calls through function pointers or `std::function`
//     have no callee identifier and are ignored, never resolved and never
//     fatal.
//
// Extraction is per-file and content-addressed, so results can be cached
// across analyzer invocations: the cache key is FNV-1a over
// `path + '\0' + content`, and the cache codec round-trips byte-exactly
// (cached and uncached runs produce identical graphs, pinned by test).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace fatih::lint::symgraph {

/// Sentinel for "any number of arguments" (parameter pack / C varargs).
inline constexpr std::uint32_t kAnyArity = 0xffffffffu;

/// One function definition found in a file.
struct SymFunction {
  std::string name;       ///< terminal name ("forward")
  std::string qualified;  ///< "Node::forward" for methods, else == name
  std::uint32_t line = 0;          ///< 1-based line of the name token
  std::uint32_t body_begin = 0;    ///< offset of '{' in the blanked code
  std::uint32_t body_end = 0;      ///< offset of the matching '}'
  std::uint32_t min_args = 0;      ///< params without defaults
  std::uint32_t max_args = 0;      ///< all params; kAnyArity if variadic
};

/// One call site inside a recorded function body.
struct SymCall {
  std::uint32_t caller = 0;  ///< index into FileSyms::functions
  std::string name;          ///< callee terminal name as written
  std::string qualifier;     ///< explicit "Cls" for `Cls::f(`, else empty
  bool member = false;       ///< written as `obj.f(` / `p->f(`
  std::uint32_t line = 0;    ///< 1-based line of the call
  std::uint32_t argc = 0;    ///< written argument count at the call site
};

/// Symbols of one file: the unit of extraction and of caching.
struct FileSyms {
  std::string path;
  std::vector<SymFunction> functions;  ///< in definition order
  std::vector<SymCall> calls;          ///< in body-scan order
};

/// Extracts definitions and call sites from one file. `blanked` is the
/// linter's preprocessed code (comments/strings blanked, line structure
/// preserved); `path` is the repo-relative path recorded in the result.
[[nodiscard]] FileSyms extract_symbols(const std::string& path, const std::string& blanked);

/// FNV-1a 64-bit over bytes; the extraction-cache content key.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

/// Deterministic line-oriented cache codec. decode returns false (and
/// leaves `out` unspecified) on any malformed input — a stale or truncated
/// cache entry falls back to fresh extraction, never to wrong symbols.
[[nodiscard]] std::string encode_syms(const FileSyms& syms);
[[nodiscard]] bool decode_syms(std::string_view text, FileSyms& out);

/// Cached extraction: looks up `cache_dir/<fnv1a64(path\0content)>.syms`,
/// falling back to extract_symbols(path, blanked) and writing the entry
/// back on a miss. `cache_dir` must exist; I/O failures degrade to
/// uncached extraction.
[[nodiscard]] FileSyms extract_symbols_cached(const std::string& path,
                                              const std::string& content,
                                              const std::string& blanked,
                                              const std::string& cache_dir);

/// The linked repo-wide call graph. Nodes are sorted by (qualified, file,
/// line); edges are per-node, sorted by callee index, deduplicated to the
/// first (lowest-line) call site — the evidence line for that edge.
struct Graph {
  struct Node {
    SymFunction fn;
    std::string file;
    /// (callee node index, 1-based call-site line in `file`).
    std::vector<std::pair<std::uint32_t, std::uint32_t>> callees;
  };
  std::vector<Node> nodes;
  /// Terminal name -> node indices (ascending). Methods and free
  /// functions both appear; `methods_by_name` holds only qualified ones.
  std::map<std::string, std::vector<std::uint32_t>> by_name;
  std::map<std::string, std::vector<std::uint32_t>> methods_by_name;
  std::map<std::string, std::vector<std::uint32_t>> by_qualified;
};

/// Links per-file symbols into one graph. Deterministic: depends only on
/// the (path, symbols) multiset, never on input order.
[[nodiscard]] Graph build_graph(const std::vector<FileSyms>& files);

/// Graphviz rendering, deterministically sorted (nodes by qualified name,
/// then file:line; edges by caller then callee). Evidence chains and the
/// module layering can be inspected by eye via `fatih-lint --graph-dot`.
[[nodiscard]] std::string to_dot(const Graph& g);

}  // namespace fatih::lint::symgraph
