#include "lint.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace fatih::lint {

namespace {

// ------------------------------------------------------------------ lexical

bool ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
}

bool space_char(char c) { return c == ' ' || c == '\t' || c == '\n' || c == '\r'; }

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && space_char(s[b])) ++b;
  while (e > b && space_char(s[e - 1])) --e;
  return std::string(s.substr(b, e - b));
}

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

// ------------------------------------------------------- per-file structures

struct Suppression {
  std::uint32_t rules = 0;  ///< bitmask over Rule values
  bool justified = false;
};

/// A source file after lexical preprocessing: comments and string/char
/// literal *contents* blanked to spaces (line structure and code offsets
/// preserved), suppression comments and #include targets extracted.
struct FileCtx {
  const SourceFile* src = nullptr;
  std::string code;
  std::vector<std::size_t> line_start;               ///< offset of each line
  std::map<std::size_t, Suppression> suppressions;   ///< by 1-based line
  std::vector<std::pair<std::size_t, std::string>> includes;  ///< (line, target)
  std::vector<Diagnostic> pre_diags;  ///< bare/unknown suppression findings

  [[nodiscard]] std::size_t line_of(std::size_t pos) const {
    auto it = std::upper_bound(line_start.begin(), line_start.end(), pos);
    return static_cast<std::size_t>(it - line_start.begin());
  }
};

void parse_suppression_comment(FileCtx& ctx, std::size_t line, std::string_view comment) {
  // comment is the text after "//". Syntax:
  //   fatih-lint: allow(rule[,rule...]) <justification>
  const std::string_view tag = "fatih-lint:";
  std::size_t at = comment.find(tag);
  if (at == std::string_view::npos) return;
  std::string_view rest = comment.substr(at + tag.size());
  std::size_t open = rest.find("allow(");
  if (open == std::string_view::npos) return;
  std::size_t close = rest.find(')', open);
  if (close == std::string_view::npos) return;
  std::string_view list = rest.substr(open + 6, close - open - 6);
  std::string justification = trim(rest.substr(close + 1));

  Suppression supp;
  supp.justified = !justification.empty();
  std::size_t start = 0;
  bool any_unknown = false;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    std::string_view item = comma == std::string_view::npos ? list.substr(start)
                                                            : list.substr(start, comma - start);
    const std::string name = trim(item);
    if (!name.empty()) {
      Rule r;
      if (parse_rule(name, r)) {
        supp.rules |= 1u << static_cast<unsigned>(r);
      } else {
        any_unknown = true;
        ctx.pre_diags.push_back({ctx.src->path, line, Rule::kBareSuppression,
                                 "suppression names unknown rule '" + name + "'", {}});
      }
    }
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  if (!supp.justified) {
    ctx.pre_diags.push_back({ctx.src->path, line, Rule::kBareSuppression,
                             "suppression without a justification: write "
                             "'// fatih-lint: allow(<rule>) <why this is safe>'",
                             {}});
    return;  // a bare allow() does not suppress anything
  }
  if (any_unknown && supp.rules == 0) return;
  auto [it, inserted] = ctx.suppressions.emplace(line, supp);
  if (!inserted) {
    it->second.rules |= supp.rules;
    it->second.justified = it->second.justified && supp.justified;
  }
}

/// Blanks comments and the contents of string/char literals (keeping the
/// quotes), records suppression comments and #include targets.
FileCtx preprocess(const SourceFile& src) {
  FileCtx ctx;
  ctx.src = &src;
  const std::string& in = src.content;
  std::string out = in;
  ctx.line_start.push_back(0);
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '\n') ctx.line_start.push_back(i + 1);
  }

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State st = State::kCode;
  std::string raw_delim;           // for R"delim( ... )delim"
  std::size_t comment_begin = 0;   // offset where current // comment started
  auto blank = [&](std::size_t i) {
    if (out[i] != '\n') out[i] = ' ';
  };

  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char n = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (st) {
      case State::kCode:
        if (c == '/' && n == '/') {
          st = State::kLineComment;
          comment_begin = i + 2;
          blank(i);
        } else if (c == '/' && n == '*') {
          st = State::kBlockComment;
          blank(i);
        } else if (c == '"') {
          // Raw string literal? Preceded by R (with optional encoding prefix).
          if (i > 0 && in[i - 1] == 'R' && (i < 2 || !ident_char(in[i - 2]))) {
            raw_delim.clear();
            std::size_t j = i + 1;
            while (j < in.size() && in[j] != '(') raw_delim += in[j++];
            st = State::kRawString;
            // keep the opening quote; blank from i+1 handled by state
          } else {
            st = State::kString;
          }
        } else if (c == '\'') {
          // Digit separator (1'000'000) is not a char literal.
          if (i > 0 && ident_char(in[i - 1]) && i + 1 < in.size() && ident_char(in[i + 1])) {
            break;
          }
          st = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          const std::size_t line = ctx.line_of(comment_begin);
          parse_suppression_comment(
              ctx, line, std::string_view(in).substr(comment_begin, i - comment_begin));
          st = State::kCode;
        } else {
          blank(i);
        }
        break;
      case State::kBlockComment:
        if (c == '*' && n == '/') {
          blank(i);
          blank(i + 1);
          ++i;
          st = State::kCode;
        } else {
          blank(i);
        }
        break;
      case State::kString:
        if (c == '\\') {
          blank(i);
          if (i + 1 < in.size()) blank(++i);
        } else if (c == '"') {
          st = State::kCode;
        } else {
          blank(i);
        }
        break;
      case State::kChar:
        if (c == '\\') {
          blank(i);
          if (i + 1 < in.size()) blank(++i);
        } else if (c == '\'') {
          st = State::kCode;
        } else {
          blank(i);
        }
        break;
      case State::kRawString: {
        const std::string closer = ")" + raw_delim + "\"";
        if (in.compare(i, closer.size(), closer) == 0) {
          i += closer.size() - 1;
          st = State::kCode;
        } else {
          blank(i);
        }
        break;
      }
    }
  }
  if (st == State::kLineComment) {
    const std::size_t line = ctx.line_of(comment_begin);
    parse_suppression_comment(ctx, line,
                              std::string_view(in).substr(comment_begin));
  }
  ctx.code = std::move(out);

  // #include "..." targets, from the raw content (string stripping above
  // blanks the path, so read the original).
  for (std::size_t li = 0; li < ctx.line_start.size(); ++li) {
    const std::size_t b = ctx.line_start[li];
    const std::size_t e = li + 1 < ctx.line_start.size() ? ctx.line_start[li + 1] : in.size();
    std::string_view lv = std::string_view(in).substr(b, e - b);
    std::size_t p = 0;
    while (p < lv.size() && (lv[p] == ' ' || lv[p] == '\t')) ++p;
    if (p >= lv.size() || lv[p] != '#') continue;
    ++p;
    while (p < lv.size() && (lv[p] == ' ' || lv[p] == '\t')) ++p;
    if (!starts_with(lv.substr(p), "include")) continue;
    p += 7;
    while (p < lv.size() && (lv[p] == ' ' || lv[p] == '\t')) ++p;
    if (p >= lv.size() || lv[p] != '"') continue;
    const std::size_t q = lv.find('"', p + 1);
    if (q == std::string_view::npos) continue;
    ctx.includes.emplace_back(li + 1, std::string(lv.substr(p + 1, q - p - 1)));
  }
  return ctx;
}

// ----------------------------------------------------------- token scanning

std::size_t find_word(const std::string& s, std::string_view w, std::size_t from) {
  while (true) {
    const std::size_t p = s.find(w.data(), from, w.size());
    if (p == std::string::npos) return std::string::npos;
    const bool left_ok = p == 0 || !ident_char(s[p - 1]);
    const bool right_ok = p + w.size() >= s.size() || !ident_char(s[p + w.size()]);
    if (left_ok && right_ok) return p;
    from = p + 1;
  }
}

std::size_t next_nonspace(const std::string& s, std::size_t p) {
  while (p < s.size() && space_char(s[p])) ++p;
  return p;
}

std::size_t prev_nonspace(const std::string& s, std::size_t p) {
  // Returns the index of the previous non-space char, or npos.
  while (p > 0) {
    --p;
    if (!space_char(s[p])) return p;
  }
  return std::string::npos;
}

enum class Qual { kNone, kStd, kOther };

/// How the identifier starting at `pos` is qualified: `std::x`, `y::x` /
/// `obj.x` / `ptr->x`, or unqualified.
Qual qualifier_before(const std::string& s, std::size_t pos) {
  std::size_t p = prev_nonspace(s, pos);
  if (p == std::string::npos) return Qual::kNone;
  if (s[p] == '.') return Qual::kOther;
  if (s[p] == '>' && p > 0 && s[p - 1] == '-') return Qual::kOther;
  if (s[p] == ':' && p > 0 && s[p - 1] == ':') {
    std::size_t q = prev_nonspace(s, p - 1);
    if (q == std::string::npos) return Qual::kOther;
    std::size_t e = q + 1;
    while (q > 0 && ident_char(s[q - 1])) --q;
    return s.substr(q, e - q) == "std" ? Qual::kStd : Qual::kOther;
  }
  return Qual::kNone;
}

/// `pos` points at '<'; returns the offset just past the matching '>', or
/// npos if unbalanced.
std::size_t skip_template_args(const std::string& s, std::size_t pos) {
  int depth = 0;
  for (std::size_t i = pos; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    else if (s[i] == '>') {
      --depth;
      if (depth == 0) return i + 1;
    } else if (s[i] == ';') {
      return std::string::npos;  // statement ended: was a comparison
    }
  }
  return std::string::npos;
}

/// `pos` points at an opener ('(' / '{' / '['); returns offset of matching
/// closer, or npos.
std::size_t match_bracket(const std::string& s, std::size_t pos) {
  const char open = s[pos];
  const char close = open == '(' ? ')' : open == '{' ? '}' : ']';
  int depth = 0;
  for (std::size_t i = pos; i < s.size(); ++i) {
    if (s[i] == open) ++depth;
    else if (s[i] == close) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string::npos;
}

std::string read_ident(const std::string& s, std::size_t pos) {
  std::size_t e = pos;
  while (e < s.size() && ident_char(s[e])) ++e;
  return s.substr(pos, e - pos);
}

/// Reads the identifier ending at `end` (exclusive), scanning backwards.
std::string read_ident_before(const std::string& s, std::size_t end) {
  std::size_t b = end;
  while (b > 0 && ident_char(s[b - 1])) --b;
  return s.substr(b, end - b);
}

// -------------------------------------------------- nondeterminism collectors
//
// The R1/R2/R3 pattern scans, factored out so the per-file rules and the
// interprocedural taint rule (R10) share one implementation. Collectors
// return raw hit positions with *no* path exemptions — exemption policy
// belongs to the rule consuming the hits (R1 exempts bench/ and
// src/util/time; R10 deliberately exempts nothing, so a wall-clock read
// laundered through util/time still taints a digest).

enum class SourceKind : std::uint8_t {
  kClockName,      ///< chrono clock type / C time API name
  kClockCall,      ///< bare time()/clock() call
  kRandCall,       ///< rand()/srand() call
  kRngDevice,      ///< random_device / default_random_engine mention
  kDefaultSeeded,  ///< default-constructed standard engine
};

struct TaintHit {
  std::size_t pos = 0;
  SourceKind kind = SourceKind::kClockName;
  std::string name;
};

std::vector<TaintHit> wallclock_hits(const std::string& s) {
  std::vector<TaintHit> out;
  static constexpr std::string_view kClockNames[] = {
      "system_clock", "steady_clock", "high_resolution_clock",
      "gettimeofday", "clock_gettime", "timespec_get", "localtime", "gmtime"};
  for (std::string_view w : kClockNames) {
    for (std::size_t p = find_word(s, w, 0); p != std::string::npos;
         p = find_word(s, w, p + 1)) {
      out.push_back({p, SourceKind::kClockName, std::string(w)});
    }
  }
  // Bare (or std::) C calls time(...) / clock(...). Qualified calls like
  // ChurnNet::clock() or sim.time() are someone else's deterministic API.
  for (std::string_view w : {std::string_view("time"), std::string_view("clock")}) {
    for (std::size_t p = find_word(s, w, 0); p != std::string::npos;
         p = find_word(s, w, p + 1)) {
      if (next_nonspace(s, p + w.size()) >= s.size() ||
          s[next_nonspace(s, p + w.size())] != '(')
        continue;
      const Qual q = qualifier_before(s, p);
      if (q == Qual::kOther) continue;
      if (q == Qual::kNone) {
        // `RoundClock clock()` is a function *declaration* named clock,
        // not a call: a preceding identifier that isn't a statement
        // keyword means a return type.
        const std::size_t before = prev_nonspace(s, p);
        if (before != std::string::npos && ident_char(s[before])) {
          const std::string prev = read_ident_before(s, before + 1);
          if (prev != "return" && prev != "else" && prev != "case" && prev != "co_return")
            continue;
        }
      }
      out.push_back({p, SourceKind::kClockCall, std::string(w)});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TaintHit& a, const TaintHit& b) { return a.pos < b.pos; });
  return out;
}

std::vector<TaintHit> rng_hits(const std::string& s) {
  std::vector<TaintHit> out;
  for (std::string_view w : {std::string_view("rand"), std::string_view("srand")}) {
    for (std::size_t p = find_word(s, w, 0); p != std::string::npos;
         p = find_word(s, w, p + 1)) {
      const std::size_t after = next_nonspace(s, p + w.size());
      if (after >= s.size() || s[after] != '(') continue;
      if (qualifier_before(s, p) == Qual::kOther) continue;
      out.push_back({p, SourceKind::kRandCall, std::string(w)});
    }
  }
  for (std::string_view w :
       {std::string_view("random_device"), std::string_view("default_random_engine")}) {
    for (std::size_t p = find_word(s, w, 0); p != std::string::npos;
         p = find_word(s, w, p + 1)) {
      out.push_back({p, SourceKind::kRngDevice, std::string(w)});
    }
  }
  static constexpr std::string_view kEngines[] = {
      "mt19937",       "mt19937_64",    "minstd_rand", "minstd_rand0", "ranlux24_base",
      "ranlux48_base", "ranlux24",      "ranlux48",    "knuth_b"};
  for (std::string_view w : kEngines) {
    for (std::size_t p = find_word(s, w, 0); p != std::string::npos;
         p = find_word(s, w, p + 1)) {
      std::size_t after = next_nonspace(s, p + w.size());
      if (after >= s.size()) continue;
      bool default_seeded = false;
      if (s[after] == '(' || s[after] == '{') {
        const std::size_t close = match_bracket(s, after);
        default_seeded =
            close != std::string::npos && trim(s.substr(after + 1, close - after - 1)).empty();
      } else if (ident_char(s[after])) {
        const std::string var = read_ident(s, after);
        std::size_t q = next_nonspace(s, after + var.size());
        if (q < s.size()) {
          if (s[q] == ';' || s[q] == ',' || s[q] == ')') {
            default_seeded = true;  // declaration with no seed argument
          } else if (s[q] == '(' || s[q] == '{') {
            const std::size_t close = match_bracket(s, q);
            default_seeded =
                close != std::string::npos && trim(s.substr(q + 1, close - q - 1)).empty();
          }
        }
      }
      if (default_seeded) out.push_back({p, SourceKind::kDefaultSeeded, std::string(w)});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TaintHit& a, const TaintHit& b) { return a.pos < b.pos; });
  return out;
}

struct IterHit {
  std::size_t pos = 0;
  std::string name;       ///< container variable
  std::string iter_word;  ///< "begin"/"cbegin"/"rbegin", empty for range-for
};

std::vector<IterHit> unordered_iter_hits(const std::string& s,
                                         const std::set<std::string>& tracked) {
  std::vector<IterHit> out;
  if (tracked.empty()) return out;
  // Range-for: for (decl : expr)
  for (std::size_t p = find_word(s, "for", 0); p != std::string::npos;
       p = find_word(s, "for", p + 1)) {
    const std::size_t open = next_nonspace(s, p + 3);
    if (open >= s.size() || s[open] != '(') continue;
    const std::size_t close = match_bracket(s, open);
    if (close == std::string::npos) continue;
    // find ':' at paren depth 1 that is not part of '::'
    std::size_t colon = std::string::npos;
    int depth = 0;
    for (std::size_t i = open; i <= close; ++i) {
      if (s[i] == '(' || s[i] == '[' || s[i] == '{') ++depth;
      else if (s[i] == ')' || s[i] == ']' || s[i] == '}') --depth;
      else if (s[i] == ':' && depth == 1) {
        const bool dbl = (i > 0 && s[i - 1] == ':') || (i + 1 < s.size() && s[i + 1] == ':');
        if (!dbl) {
          colon = i;
          break;
        }
      }
    }
    if (colon == std::string::npos) continue;
    const std::string expr = trim(s.substr(colon + 1, close - colon - 1));
    if (expr.empty() || !ident_char(expr.back())) continue;  // call result etc.
    const std::string name = read_ident_before(expr, expr.size());
    if (!tracked.count(name)) continue;
    out.push_back({p, name, std::string()});
  }
  // Explicit iterator walks. Only the begin() family: iteration always
  // needs a begin, while a lone end() is the idiomatic find() != end()
  // lookup — which the rule explicitly allows.
  static constexpr std::string_view kIters[] = {"begin", "cbegin", "rbegin"};
  for (std::string_view w : kIters) {
    for (std::size_t p = find_word(s, w, 0); p != std::string::npos;
         p = find_word(s, w, p + 1)) {
      const std::size_t after = next_nonspace(s, p + w.size());
      if (after >= s.size() || s[after] != '(') continue;
      std::size_t q = prev_nonspace(s, p);
      if (q == std::string::npos) continue;
      if (s[q] == '.') {
        // fallthrough
      } else if (s[q] == '>' && q > 0 && s[q - 1] == '-') {
        --q;
      } else {
        continue;
      }
      const std::size_t recv_end = prev_nonspace(s, q);
      if (recv_end == std::string::npos || !ident_char(s[recv_end])) continue;
      const std::string name = read_ident_before(s, recv_end + 1);
      if (!tracked.count(name)) continue;
      out.push_back({p, name, std::string(w)});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const IterHit& a, const IterHit& b) { return a.pos < b.pos; });
  return out;
}

// ------------------------------------------------------------------- linter

class Linter {
 public:
  Linter(const std::vector<SourceFile>& files, AnalyzeOptions opts) : opts_(std::move(opts)), cfg_(opts_.cfg) {
    ctxs_.reserve(files.size());
    for (const SourceFile& f : files) ctxs_.push_back(preprocess(f));
  }

  Report run() {
    const bool interproc = cfg_.on(Rule::kDeterminismTaint) ||
                           cfg_.on(Rule::kFloatFreeDigest) ||
                           cfg_.on(Rule::kHotPathAllocation);
    if (interproc || opts_.want_graph) build_symbols();
    if (cfg_.on(Rule::kNoUnorderedIteration) || cfg_.on(Rule::kDeterminismTaint))
      compute_tracked_unordered();

    for (FileCtx& ctx : ctxs_) {
      if (cfg_.on(Rule::kBareSuppression))
        for (Diagnostic& d : ctx.pre_diags) report_.diagnostics.push_back(std::move(d));
      if (cfg_.on(Rule::kNoWallclock)) rule_wallclock(ctx);
      if (cfg_.on(Rule::kNoAmbientRng)) rule_ambient_rng(ctx);
      if (cfg_.on(Rule::kNoPointerKeyedOrder)) rule_pointer_keyed(ctx);
      if (cfg_.on(Rule::kNoIostream)) rule_iostream(ctx);
      if (cfg_.on(Rule::kSimdContainment)) rule_simd_containment(ctx);
      if (cfg_.on(Rule::kThreadContainment)) rule_thread_containment(ctx);
    }
    if (cfg_.on(Rule::kNoUnorderedIteration)) rule_unordered_iteration();
    if (cfg_.on(Rule::kTraceEventInit)) rule_trace_event_init();
    if (cfg_.on(Rule::kNoIncludeCycles)) rule_include_graph();
    if (cfg_.on(Rule::kDeterminismTaint)) rule_determinism_taint();
    if (cfg_.on(Rule::kFloatFreeDigest)) rule_float_free_digest();
    if (cfg_.on(Rule::kHotPathAllocation)) rule_hot_path_allocation();

    report_.files_scanned = ctxs_.size();
    std::sort(report_.diagnostics.begin(), report_.diagnostics.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                if (a.file != b.file) return a.file < b.file;
                if (a.line != b.line) return a.line < b.line;
                if (a.rule != b.rule) return a.rule < b.rule;
                return a.message < b.message;
              });
    // Two flagged tokens on one line can produce indistinguishable
    // diagnostics (e.g. two `double` words); report each site once.
    report_.diagnostics.erase(
        std::unique(report_.diagnostics.begin(), report_.diagnostics.end(),
                    [](const Diagnostic& a, const Diagnostic& b) {
                      return a.file == b.file && a.line == b.line && a.rule == b.rule &&
                             a.message == b.message;
                    }),
        report_.diagnostics.end());
    return std::move(report_);
  }

  [[nodiscard]] symgraph::Graph take_graph() { return std::move(graph_); }

 private:
  void emit(const FileCtx& ctx, std::size_t line, Rule rule, std::string msg) {
    emit_chain(ctx, line, rule, std::move(msg), {});
  }

  void emit_chain(const FileCtx& ctx, std::size_t line, Rule rule, std::string msg,
                  std::vector<ChainHop> chain) {
    // A suppression comment covers exactly its own line and the one below
    // it (the two-line window pinned by tests/lint).
    const std::uint32_t bit = 1u << static_cast<unsigned>(rule);
    for (std::size_t l = line > 1 ? line - 1 : line; l <= line; ++l) {
      auto it = ctx.suppressions.find(l);
      if (it != ctx.suppressions.end() && (it->second.rules & bit) != 0 && it->second.justified) {
        ++report_.suppressed;
        return;
      }
    }
    Diagnostic d{ctx.src->path, line, rule, std::move(msg), {}};
    d.chain = std::move(chain);
    report_.diagnostics.push_back(std::move(d));
  }

  // R1 ----------------------------------------------------------------------
  void rule_wallclock(const FileCtx& ctx) {
    const std::string& path = ctx.src->path;
    if (starts_with(path, "bench/") || starts_with(path, "src/util/time.")) return;
    for (const TaintHit& h : wallclock_hits(ctx.code)) {
      if (h.kind == SourceKind::kClockName) {
        emit(ctx, ctx.line_of(h.pos), Rule::kNoWallclock,
             "wall-clock source '" + h.name +
                 "' is banned outside src/util/time and bench/; drive everything from "
                 "util::SimTime");
      } else {
        emit(ctx, ctx.line_of(h.pos), Rule::kNoWallclock,
             "call to '" + h.name +
                 "()' reads the wall clock; banned outside src/util/time and bench/");
      }
    }
  }

  // R2 ----------------------------------------------------------------------
  void rule_ambient_rng(const FileCtx& ctx) {
    const std::string& path = ctx.src->path;
    if (starts_with(path, "src/util/rng.")) return;
    for (const TaintHit& h : rng_hits(ctx.code)) {
      switch (h.kind) {
        case SourceKind::kRandCall:
          emit(ctx, ctx.line_of(h.pos), Rule::kNoAmbientRng,
               "'" + h.name +
                   "()' draws from ambient global state; use an explicitly seeded util::Rng");
          break;
        case SourceKind::kRngDevice:
          emit(ctx, ctx.line_of(h.pos), Rule::kNoAmbientRng,
               "'" + h.name +
                   "' is nondeterministic (or implementation-defined); use util::Rng with an "
                   "explicit seed");
          break;
        default:
          emit(ctx, ctx.line_of(h.pos), Rule::kNoAmbientRng,
               "default-seeded '" + h.name +
                   "' produces an unpinned stream; seed it explicitly (prefer util::Rng)");
      }
    }
  }

  // R3 ----------------------------------------------------------------------
  /// Stem (path minus extension) so declarations in foo.hpp cover the
  /// iterations in foo.cpp.
  static std::string stem_of(const std::string& path) {
    const std::size_t dot = path.rfind('.');
    const std::size_t slash = path.rfind('/');
    if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) return path;
    return path.substr(0, dot);
  }

  /// Pass 1 of R3 (shared with R10): variables/members declared with an
  /// unordered container type, grouped by file stem.
  void compute_tracked_unordered() {
    static constexpr std::string_view kUnordered[] = {
        "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
    for (const FileCtx& ctx : ctxs_) {
      const std::string& s = ctx.code;
      std::set<std::string>& tracked = tracked_by_stem_[stem_of(ctx.src->path)];
      for (std::string_view w : kUnordered) {
        for (std::size_t p = find_word(s, w, 0); p != std::string::npos;
             p = find_word(s, w, p + 1)) {
          std::size_t q = next_nonspace(s, p + w.size());
          if (q >= s.size() || s[q] != '<') continue;
          q = skip_template_args(s, q);
          if (q == std::string::npos) continue;
          q = next_nonspace(s, q);
          while (q < s.size() && (s[q] == '&' || s[q] == '*')) q = next_nonspace(s, q + 1);
          if (q >= s.size() || !ident_char(s[q])) continue;
          const std::string name = read_ident(s, q);
          const std::size_t after = next_nonspace(s, q + name.size());
          if (after < s.size() && s[after] == '(') continue;  // function declarator
          tracked.insert(name);
        }
      }
    }
  }

  void rule_unordered_iteration() {
    for (const FileCtx& ctx : ctxs_) {
      const std::set<std::string>& tracked = tracked_by_stem_[stem_of(ctx.src->path)];
      for (const IterHit& h : unordered_iter_hits(ctx.code, tracked)) {
        if (h.iter_word.empty()) {
          emit(ctx, ctx.line_of(h.pos), Rule::kNoUnorderedIteration,
               "range-for over unordered container '" + h.name +
                   "': iteration order is hash/pointer dependent; use util::FlatMap / std::map "
                   "or iterate a sorted snapshot");
        } else {
          emit(ctx, ctx.line_of(h.pos), Rule::kNoUnorderedIteration,
               "'" + h.name + "." + h.iter_word +
                   "()' iterates an unordered container: order is hash/pointer dependent; use "
                   "util::FlatMap / std::map or a sorted snapshot");
        }
      }
    }
  }

  // R4 ----------------------------------------------------------------------
  void rule_pointer_keyed(const FileCtx& ctx) {
    const std::string& s = ctx.code;
    struct Container {
      std::string_view name;
      bool need_std;
    };
    static constexpr Container kOrdered[] = {
        {"map", true},     {"set", true},     {"multimap", true},
        {"multiset", true}, {"FlatMap", false}, {"FlatSet", false}};
    for (const Container& c : kOrdered) {
      for (std::size_t p = find_word(s, c.name, 0); p != std::string::npos;
           p = find_word(s, c.name, p + 1)) {
        if (c.need_std && qualifier_before(s, p) != Qual::kStd) continue;
        std::size_t q = next_nonspace(s, p + c.name.size());
        if (q >= s.size() || s[q] != '<') continue;
        // First template argument at depth 1.
        int depth = 0;
        std::size_t arg_begin = q + 1, arg_end = std::string::npos;
        for (std::size_t i = q; i < s.size(); ++i) {
          if (s[i] == '<') ++depth;
          else if (s[i] == '>') {
            --depth;
            if (depth == 0) {
              arg_end = i;
              break;
            }
          } else if (s[i] == ',' && depth == 1) {
            arg_end = i;
            break;
          } else if (s[i] == ';') {
            break;  // comparison, not a template
          }
        }
        if (arg_end == std::string::npos) continue;
        const std::string key = trim(s.substr(arg_begin, arg_end - arg_begin));
        if (key.find('*') == std::string::npos) continue;
        emit(ctx, ctx.line_of(p), Rule::kNoPointerKeyedOrder,
             "ordered container keyed on a raw pointer ('" + std::string(c.name) + "<" + key +
                 ", ...>'): allocation addresses vary run to run; key on a stable id instead");
      }
    }
    // sort(..., [](T* a, T* b) { return a < b; }) style comparators.
    static constexpr std::string_view kSorts[] = {"sort", "stable_sort", "partial_sort",
                                                  "nth_element"};
    for (std::string_view w : kSorts) {
      for (std::size_t p = find_word(s, w, 0); p != std::string::npos;
           p = find_word(s, w, p + 1)) {
        const std::size_t open = next_nonspace(s, p + w.size());
        if (open >= s.size() || s[open] != '(') continue;
        const std::size_t close = match_bracket(s, open);
        if (close == std::string::npos) continue;
        // Lambda inside the call argument list.
        for (std::size_t lb = s.find('[', open); lb != std::string::npos && lb < close;
             lb = s.find('[', lb + 1)) {
          const std::size_t rb = match_bracket(s, lb);
          if (rb == std::string::npos || rb > close) break;
          const std::size_t lp = next_nonspace(s, rb + 1);
          if (lp >= s.size() || s[lp] != '(') continue;
          const std::size_t rp = match_bracket(s, lp);
          if (rp == std::string::npos || rp > close) continue;
          // Pointer-typed parameter names.
          std::set<std::string> ptr_params;
          std::size_t start = lp + 1;
          for (std::size_t i = lp + 1; i <= rp; ++i) {
            if (s[i] == ',' || i == rp) {
              const std::string param = trim(s.substr(start, i - start));
              if (param.find('*') != std::string::npos && !param.empty() &&
                  ident_char(param.back())) {
                ptr_params.insert(read_ident_before(param, param.size()));
              }
              start = i + 1;
            }
          }
          if (ptr_params.empty()) continue;
          std::size_t bb = next_nonspace(s, rp + 1);
          while (bb < s.size() && s[bb] != '{' && s[bb] != ';' && s[bb] != ')') ++bb;
          if (bb >= s.size() || s[bb] != '{') continue;
          const std::size_t be = match_bracket(s, bb);
          if (be == std::string::npos) continue;
          // name < name / name > name between two pointer params.
          for (std::size_t i = bb + 1; i < be; ++i) {
            if (s[i] != '<' && s[i] != '>') continue;
            if (i + 1 < s.size() && (s[i + 1] == s[i] || s[i + 1] == '=')) continue;
            if (s[i] == '>' && s[i - 1] == '-') continue;
            const std::size_t le = prev_nonspace(s, i);
            if (le == std::string::npos || !ident_char(s[le])) continue;
            const std::string lhs = read_ident_before(s, le + 1);
            const std::size_t rb2 = next_nonspace(s, i + 1);
            if (rb2 >= s.size() || !ident_char(s[rb2])) continue;
            const std::string rhs = read_ident(s, rb2);
            if (ptr_params.count(lhs) && ptr_params.count(rhs)) {
              emit(ctx, ctx.line_of(i), Rule::kNoPointerKeyedOrder,
                   "sort comparator orders by raw pointer value ('" + lhs + " " + s[i] + " " +
                       rhs + "'): allocation addresses vary run to run; compare a stable key");
              break;
            }
          }
        }
      }
    }
  }

  // R5 ----------------------------------------------------------------------
  void rule_iostream(const FileCtx& ctx) {
    const std::string& path = ctx.src->path;
    if (!starts_with(path, "src/") || starts_with(path, "src/util/log.")) return;
    const std::string& s = ctx.code;
    for (std::string_view w :
         {std::string_view("cout"), std::string_view("cerr"), std::string_view("clog")}) {
      for (std::size_t p = find_word(s, w, 0); p != std::string::npos;
           p = find_word(s, w, p + 1)) {
        if (qualifier_before(s, p) != Qual::kStd) continue;
        emit(ctx, ctx.line_of(p), Rule::kNoIostream,
             "'std::" + std::string(w) +
                 "' in src/: library code must stay silent on hot paths; route output through "
                 "util::log or the obs trace sink");
      }
    }
  }

  // R8 ----------------------------------------------------------------------
  /// Raw SIMD vector types are an implementation detail of the batch-hash
  /// kernels. Everywhere else consumes them through the dispatched API
  /// (crypto::siphash24_fixed_batch and friends), which keeps exactly one
  /// code path per layer — the property the byte-identical dispatch tests
  /// rely on. Intrinsics leaking into sim/ or detection/ would fork the
  /// hot path per ISA and silently void those tests.
  void rule_simd_containment(const FileCtx& ctx) {
    const std::string& path = ctx.src->path;
    if (starts_with(path, "src/crypto/")) return;
    const std::string& s = ctx.code;
    static constexpr std::string_view kVecTypes[] = {
        "__m128i", "__m128",  "__m128d", "__m256i", "__m256",
        "__m256d", "__m512i", "__m512",  "__m512d"};
    for (std::string_view w : kVecTypes) {
      for (std::size_t p = find_word(s, w, 0); p != std::string::npos;
           p = find_word(s, w, p + 1)) {
        emit(ctx, ctx.line_of(p), Rule::kSimdContainment,
             "raw SIMD vector type '" + std::string(w) +
                 "' outside src/crypto/: consume the runtime-dispatched batch API "
                 "(crypto::siphash24_fixed_batch) instead of forking a per-ISA code path");
      }
    }
  }

  // R9 ----------------------------------------------------------------------
  /// All concurrency lives in the shard runtime (src/sim/shard*): its
  /// window barrier and fixed PoP partition are what make digests
  /// worker-count-invariant. A stray mutex or atomic anywhere else means
  /// shared mutable state the barrier proof never covered — flag every
  /// std-qualified threading primitive (and thread_local storage) outside
  /// that containment boundary.
  void rule_thread_containment(const FileCtx& ctx) {
    const std::string& path = ctx.src->path;
    if (starts_with(path, "src/sim/shard")) return;
    const std::string& s = ctx.code;
    static constexpr std::string_view kPrimitives[] = {
        "thread",         "jthread",
        "mutex",          "recursive_mutex",
        "timed_mutex",    "shared_mutex",
        "condition_variable", "condition_variable_any",
        "atomic",         "atomic_flag",
        "lock_guard",     "unique_lock",
        "scoped_lock",    "shared_lock",
        "future",         "promise",
        "async",          "packaged_task",
        "barrier",        "latch",
        "counting_semaphore", "binary_semaphore",
        "call_once",      "once_flag",
        "stop_token",     "stop_source"};
    for (std::string_view w : kPrimitives) {
      for (std::size_t p = find_word(s, w, 0); p != std::string::npos;
           p = find_word(s, w, p + 1)) {
        if (qualifier_before(s, p) != Qual::kStd) continue;
        emit(ctx, ctx.line_of(p), Rule::kThreadContainment,
             "threading primitive 'std::" + std::string(w) +
                 "' outside src/sim/shard*: concurrency is confined to the shard "
                 "runtime, whose barrier discipline keeps digests worker-invariant");
      }
    }
    for (std::size_t p = find_word(s, "thread_local", 0); p != std::string::npos;
         p = find_word(s, "thread_local", p + 1)) {
      if (qualifier_before(s, p) != Qual::kNone) continue;
      emit(ctx, ctx.line_of(p), Rule::kThreadContainment,
           "'thread_local' storage outside src/sim/shard*: per-thread state makes "
           "results depend on the worker count, breaking digest invariance");
    }
  }

  // R6 ----------------------------------------------------------------------
  /// R6 name predicate: structs ending in "Event", "Evidence", "Spec" or
  /// "Snapshot" (with a non-empty prefix) plus the evidence-layer verdict
  /// records. All of them end up serialized — trace sinks, signed control
  /// payloads, the conviction ledger, scenario recipes and checkpoint
  /// snapshots — so uninitialized bytes break byte-identical runs.
  static bool event_like(const std::string& name) {
    if (name != "Event" && ends_with(name, "Event")) return true;
    if (name != "Evidence" && ends_with(name, "Evidence")) return true;
    if (name != "Spec" && ends_with(name, "Spec")) return true;
    if (name != "Snapshot" && ends_with(name, "Snapshot")) return true;
    return name == "Suspicion" || name == "Conviction" || name == "Accusation";
  }

  /// Event-like structs are serialized aggregates: every field needs an
  /// initializer and brace-constructions must not be partial, or the
  /// uninitialized bytes/fields break byte-identical serialization.
  void rule_trace_event_init() {
    std::map<std::string, std::size_t> field_count;
    for (const FileCtx& ctx : ctxs_) {
      const std::string& s = ctx.code;
      for (std::size_t p = find_word(s, "struct", 0); p != std::string::npos;
           p = find_word(s, "struct", p + 1)) {
        const std::size_t np = next_nonspace(s, p + 6);
        if (np >= s.size() || !ident_char(s[np])) continue;
        const std::string name = read_ident(s, np);
        if (!event_like(name)) continue;
        std::size_t q = next_nonspace(s, np + name.size());
        if (q < s.size() && s[q] == ':') {  // base clause
          while (q < s.size() && s[q] != '{' && s[q] != ';') ++q;
        }
        if (q >= s.size() || s[q] != '{') continue;  // forward declaration
        const std::size_t body_end = match_bracket(s, q);
        if (body_end == std::string::npos) continue;
        std::size_t fields = 0;
        // Statements at depth 0 inside the body.
        int depth = 0, parens = 0;
        std::size_t stmt_begin = q + 1;
        for (std::size_t i = q + 1; i < body_end; ++i) {
          const char c = s[i];
          if (c == '{') ++depth;
          else if (c == '}') {
            --depth;
            // End of a function body not followed by ';' starts a fresh
            // statement; a '};' (enum / nested type / brace-init field)
            // keeps its statement text so the keyword filters see it.
            if (depth == 0 && (next_nonspace(s, i + 1) >= body_end || s[next_nonspace(s, i + 1)] != ';'))
              stmt_begin = i + 1;
          } else if (c == '(') ++parens;
          else if (c == ')') --parens;
          else if (c == ':' && depth == 0 && parens == 0) {
            const bool dbl = s[i - 1] == ':' || s[i + 1] == ':';
            if (!dbl) {
              // access specifier "public:" etc. — restart statement
              stmt_begin = i + 1;
            }
          } else if (c == ';' && depth == 0 && parens == 0) {
            const std::string stmt = trim(s.substr(stmt_begin, i - stmt_begin));
            stmt_begin = i + 1;
            if (stmt.empty()) continue;
            const std::string first = read_ident(stmt, 0);
            if (first == "using" || first == "typedef" || first == "static" ||
                first == "friend" || first == "struct" || first == "class" ||
                first == "enum" || first == "template" || first == "virtual" ||
                first == "explicit" || first == "operator" || first == "public" ||
                first == "private" || first == "protected")
              continue;
            if (stmt.find('(') != std::string::npos) continue;  // function decl
            ++fields;
            if (stmt.find('=') != std::string::npos || stmt.find('{') != std::string::npos)
              continue;  // brace-or-equal initializer present
            std::string decl = stmt;
            while (!decl.empty() && (decl.back() == ']' || decl.back() == ')')) {
              const std::size_t ob = decl.rfind(decl.back() == ']' ? '[' : '(');
              if (ob == std::string::npos) break;
              decl = trim(decl.substr(0, ob));
            }
            const std::string fname =
                decl.empty() || !ident_char(decl.back()) ? stmt : read_ident_before(decl, decl.size());
            emit(ctx, ctx.line_of(stmt_begin - 1), Rule::kTraceEventInit,
                 "field '" + fname + "' of event struct '" + name +
                     "' has no initializer: uninitialized bytes break byte-identical "
                     "serialization; add '{}' or a default value");
          }
        }
        auto [it, inserted] = field_count.emplace(name, fields);
        if (!inserted) it->second = std::max(it->second, fields);
      }
    }
    // Partial brace constructions: Name{a, b} with fewer initializers than
    // fields ({}/full init are fine — value-init is deterministic).
    for (const FileCtx& ctx : ctxs_) {
      const std::string& s = ctx.code;
      for (const auto& [name, fields] : field_count) {
        if (fields == 0) continue;
        for (std::size_t p = find_word(s, name, 0); p != std::string::npos;
             p = find_word(s, name, p + 1)) {
          const std::size_t before = prev_nonspace(s, p);
          if (before != std::string::npos && ident_char(s[before])) {
            const std::string prev = read_ident_before(s, before + 1);
            if (prev == "struct" || prev == "class" || prev == "enum") continue;
          }
          std::size_t q = next_nonspace(s, p + name.size());
          if (q < s.size() && ident_char(s[q])) {  // TraceEvent ev{...}
            const std::string var = read_ident(s, q);
            q = next_nonspace(s, q + var.size());
          }
          if (q >= s.size() || s[q] != '{') continue;
          const std::size_t close = match_bracket(s, q);
          if (close == std::string::npos) continue;
          const std::string inner = trim(s.substr(q + 1, close - q - 1));
          if (inner.empty()) continue;  // value-init: all fields zeroed
          std::size_t count = 1;
          int depth = 0;
          for (std::size_t i = q + 1; i < close; ++i) {
            if (s[i] == '{' || s[i] == '(' || s[i] == '[' || s[i] == '<') ++depth;
            else if (s[i] == '}' || s[i] == ')' || s[i] == ']' || s[i] == '>') --depth;
            else if (s[i] == ',' && depth == 0) ++count;
          }
          if (count >= fields) continue;
          emit(ctx, ctx.line_of(p), Rule::kTraceEventInit,
               "'" + name + "{...}' initializes " + std::to_string(count) + " of " +
                   std::to_string(fields) +
                   " fields; partial aggregate init of an event struct invites divergence — "
                   "initialize every field (or use {})");
        }
      }
    }
  }

  // R7 ----------------------------------------------------------------------
  static std::string module_of(const std::string& path) {
    if (!starts_with(path, "src/")) return {};
    const std::size_t slash = path.find('/', 4);
    if (slash == std::string::npos) return {};
    return path.substr(4, slash - 4);
  }

  void rule_include_graph() {
    // Layering contract for src/ modules. A module may include itself and
    // anything in its allow-list; everything else is a violation. The table
    // mirrors DESIGN.md "Static analysis & determinism enforcement".
    static const std::map<std::string, std::set<std::string>> kAllowed = {
        {"util", {}},
        {"obs", {"util"}},
        {"crypto", {"util"}},
        {"sim", {"util", "obs"}},
        {"routing", {"util", "obs", "crypto", "sim"}},
        {"traffic", {"util", "obs", "sim"}},
        // attacks/ sits ABOVE detection/ since the Byzantine control-plane
        // families forge signed detection payloads (keys + wire formats).
        {"attacks",
         {"util", "obs", "crypto", "sim", "routing", "traffic", "validation", "detection"}},
        {"validation", {"util", "obs", "crypto", "sim"}},
        {"detection",
         {"util", "obs", "crypto", "sim", "routing", "traffic", "validation"}},
        {"fatih",
         {"util", "obs", "crypto", "sim", "routing", "traffic", "validation", "detection",
          "attacks"}},
        // scenario/ materializes complete experiments, so it sees the whole
        // stack below it (but not fatih/, the CLI layer).
        {"scenario",
         {"util", "obs", "crypto", "sim", "routing", "traffic", "validation", "detection",
          "attacks"}},
    };
    std::map<std::string, const FileCtx*> by_path;
    for (const FileCtx& ctx : ctxs_) by_path[ctx.src->path] = &ctx;

    // Layering: every offending include line is reported (suppressible
    // individually).
    for (const FileCtx& ctx : ctxs_) {
      const std::string mod = module_of(ctx.src->path);
      if (mod.empty()) continue;
      auto allowed = kAllowed.find(mod);
      for (const auto& [line, target] : ctx.includes) {
        const std::size_t slash = target.find('/');
        if (slash == std::string::npos) continue;
        const std::string tmod = target.substr(0, slash);
        if (tmod == mod || !kAllowed.count(tmod)) continue;
        if (allowed != kAllowed.end() && allowed->second.count(tmod)) continue;
        if (allowed == kAllowed.end()) continue;  // unknown module: no contract
        emit(ctx, line, Rule::kNoIncludeCycles,
             "layering violation: " + mod + "/ must not include " + tmod + "/ (" + target +
                 "); the " + mod + "/ layer sits below " + tmod + "/ in the module DAG");
      }
    }

    // File-level include cycles (covers within-module cycles the layering
    // table cannot see). DFS over the resolved graph, files in sorted order
    // for deterministic reporting; each cycle reported once.
    std::map<std::string, std::vector<std::pair<std::size_t, std::string>>> edges;
    for (const FileCtx& ctx : ctxs_) {
      if (!starts_with(ctx.src->path, "src/")) continue;
      for (const auto& [line, target] : ctx.includes) {
        const std::string resolved = "src/" + target;
        if (by_path.count(resolved)) edges[ctx.src->path].emplace_back(line, resolved);
      }
    }
    std::set<std::string> done;
    std::set<std::set<std::string>> reported_cycles;
    for (const auto& [root, _] : edges) {
      if (done.count(root)) continue;
      // Iterative DFS with an explicit path for cycle reconstruction.
      std::vector<std::string> path_stack;
      std::set<std::string> on_stack;
      std::vector<std::pair<std::string, std::size_t>> work;  // node, next edge idx
      work.emplace_back(root, 0);
      path_stack.push_back(root);
      on_stack.insert(root);
      while (!work.empty()) {
        auto& [node, idx] = work.back();
        const auto eit = edges.find(node);
        if (eit == edges.end() || idx >= eit->second.size()) {
          done.insert(node);
          on_stack.erase(node);
          path_stack.pop_back();
          work.pop_back();
          continue;
        }
        const auto& [line, next] = eit->second[idx++];
        if (on_stack.count(next)) {
          // Cycle: next .. path_stack.back()
          auto begin = std::find(path_stack.begin(), path_stack.end(), next);
          std::set<std::string> members(begin, path_stack.end());
          if (reported_cycles.insert(members).second) {
            const std::string& first = *members.begin();
            std::string chain;
            for (auto it = begin; it != path_stack.end(); ++it) chain += *it + " -> ";
            chain += next;
            // Anchor the diagnostic on the lexicographically first member's
            // offending include line so suppression placement is stable.
            const FileCtx* fctx = by_path.at(node);
            std::size_t at_line = line;
            if (by_path.count(first)) {
              for (const auto& [l, t] : edges[first]) {
                if (members.count(t) || t == next) {
                  fctx = by_path.at(first);
                  at_line = l;
                  break;
                }
              }
            }
            emit(*fctx, at_line, Rule::kNoIncludeCycles, "include cycle: " + chain);
          }
          continue;
        }
        if (done.count(next)) continue;
        work.emplace_back(next, 0);
        path_stack.push_back(next);
        on_stack.insert(next);
      }
    }
  }

  // ----------------------------------------------- interprocedural (R10–R12)

  static constexpr std::uint32_t kNoNode = 0xffffffffu;

  void build_symbols() {
    if (!opts_.cache_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(opts_.cache_dir, ec);
    }
    std::vector<symgraph::FileSyms> syms;
    syms.reserve(ctxs_.size());
    for (const FileCtx& ctx : ctxs_) {
      if (!opts_.cache_dir.empty()) {
        syms.push_back(symgraph::extract_symbols_cached(ctx.src->path, ctx.src->content,
                                                        ctx.code, opts_.cache_dir));
      } else {
        syms.push_back(symgraph::extract_symbols(ctx.src->path, ctx.code));
      }
    }
    graph_ = symgraph::build_graph(syms);
    for (std::uint32_t i = 0; i < graph_.nodes.size(); ++i)
      nodes_by_file_[graph_.nodes[i].file].push_back(i);
    for (auto& [file, nodes] : nodes_by_file_)
      std::sort(nodes.begin(), nodes.end(), [this](std::uint32_t a, std::uint32_t b) {
        return graph_.nodes[a].fn.body_begin < graph_.nodes[b].fn.body_begin;
      });
  }

  /// Graph node whose body span contains `pos` in `path`, or kNoNode.
  [[nodiscard]] std::uint32_t node_at(const std::string& path, std::size_t pos) const {
    const auto it = nodes_by_file_.find(path);
    if (it == nodes_by_file_.end()) return kNoNode;
    for (const std::uint32_t idx : it->second) {
      const symgraph::SymFunction& fn = graph_.nodes[idx].fn;
      if (pos > fn.body_begin && pos < fn.body_end) return idx;
    }
    return kNoNode;
  }

  /// Transitive-callee closure with BFS-tree parents: everything the seed
  /// functions execute, plus enough bookkeeping to reconstruct one
  /// deterministic seed→node call chain per member.
  struct Closure {
    std::vector<char> in;
    std::vector<std::uint32_t> parent;       ///< BFS-tree caller, kNoNode at seeds
    std::vector<std::uint32_t> parent_line;  ///< call-site line in the parent's file
  };

  [[nodiscard]] Closure reach_callees(const std::vector<std::uint32_t>& seeds) const {
    Closure c;
    c.in.assign(graph_.nodes.size(), 0);
    c.parent.assign(graph_.nodes.size(), kNoNode);
    c.parent_line.assign(graph_.nodes.size(), 0);
    std::vector<std::uint32_t> queue;
    for (const std::uint32_t s : seeds) {
      if (!c.in[s]) {
        c.in[s] = 1;
        queue.push_back(s);
      }
    }
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::uint32_t u = queue[head];
      for (const auto& [v, line] : graph_.nodes[u].callees) {
        if (c.in[v]) continue;
        c.in[v] = 1;
        c.parent[v] = u;
        c.parent_line[v] = line;
        queue.push_back(v);
      }
    }
    return c;
  }

  /// chain[0] = the flagged node at its source/allocation line; each later
  /// hop is the BFS-tree caller with its call-site line; the last hop is
  /// the seed (digest sink or hot-path root).
  [[nodiscard]] std::vector<ChainHop> chain_for(const Closure& c, std::uint32_t node,
                                                std::size_t site_line) const {
    std::vector<ChainHop> chain;
    chain.push_back({graph_.nodes[node].fn.qualified, graph_.nodes[node].file, site_line});
    std::uint32_t u = node;
    while (c.parent[u] != kNoNode) {
      const std::uint32_t p = c.parent[u];
      chain.push_back({graph_.nodes[p].fn.qualified, graph_.nodes[p].file,
                       static_cast<std::size_t>(c.parent_line[u])});
      u = p;
    }
    return chain;
  }

  /// Digest / wire-codec sink functions. Everything these call is "what a
  /// digest can see". `include_output` adds the serialized-artifact sinks
  /// (to_json/to_jsonl) — R10 guards those too, R11 does not (deterministic
  /// decimal formatting of doubles in output artifacts is allowed).
  [[nodiscard]] bool is_digest_sink(const symgraph::Graph::Node& n, bool include_output) const {
    if (!starts_with(n.file, "src/")) return false;
    static const std::set<std::string> kNames = {
        "state_fingerprint",  "pending_fingerprint", "state_hash",
        "digest",             "make_digest",         "encode",
        "decode",             "spec_hash",           "packet_fingerprint",
        "hash_batch",         "rng_fingerprint",     "detector_fingerprint"};
    if (kNames.count(n.fn.name)) return true;
    if (include_output && (n.fn.name == "to_json" || n.fn.name == "to_jsonl")) return true;
    const std::size_t cc = n.fn.qualified.rfind("::");
    return cc != std::string::npos && ends_with(n.fn.qualified.substr(0, cc), "Digest");
  }

  [[nodiscard]] std::vector<std::uint32_t> digest_seeds(bool include_output) const {
    std::vector<std::uint32_t> seeds;
    for (std::uint32_t i = 0; i < graph_.nodes.size(); ++i)
      if (is_digest_sink(graph_.nodes[i], include_output)) seeds.push_back(i);
    return seeds;
  }

  /// Forwarding/dispatch hot-path roots (R12): the per-packet code the
  /// PR 2 / PR 7 allocation-free wins measured.
  [[nodiscard]] std::vector<std::uint32_t> hot_path_roots() const {
    struct RootPat {
      std::string_view cls_suffix;
      std::string_view name_prefix;
    };
    static constexpr RootPat kRoots[] = {
        {"Simulator", "run"},
        {"Node", "forward"},
        {"Node", "receive"},
        {"Router", "receive"},
        {"Host", "receive"},
        {"Interface", "send"},
        {"Interface", "try_transmit"},
        {"Interface", "start_transmit"},
        {"Interface", "complete_propagation"},
        {"Queue", "enqueue"},
        {"Queue", "dequeue"},
        {"SummaryGenerator", "flush"},
        {"FingerprintHasher", "hash_batch"}};
    std::vector<std::uint32_t> seeds;
    for (std::uint32_t i = 0; i < graph_.nodes.size(); ++i) {
      const symgraph::Graph::Node& n = graph_.nodes[i];
      if (!starts_with(n.file, "src/")) continue;
      const std::size_t cc = n.fn.qualified.rfind("::");
      if (cc == std::string::npos) continue;
      const std::string cls = n.fn.qualified.substr(0, cc);
      for (const RootPat& r : kRoots) {
        if (ends_with(cls, r.cls_suffix) && starts_with(n.fn.name, r.name_prefix)) {
          seeds.push_back(i);
          break;
        }
      }
    }
    return seeds;
  }

  // R10 ---------------------------------------------------------------------
  void rule_determinism_taint() {
    const Closure cls = reach_callees(digest_seeds(/*include_output=*/true));
    for (const FileCtx& ctx : ctxs_) {
      const std::string& path = ctx.src->path;
      if (!starts_with(path, "src/")) continue;
      const std::string& s = ctx.code;
      struct SrcHit {
        std::size_t pos;
        std::string desc;
      };
      std::vector<SrcHit> hits;
      for (const TaintHit& h : wallclock_hits(s))
        hits.push_back({h.pos, "wall-clock read '" + h.name + "'"});
      for (const TaintHit& h : rng_hits(s)) {
        switch (h.kind) {
          case SourceKind::kRandCall:
            hits.push_back({h.pos, "ambient RNG call '" + h.name + "()'"});
            break;
          case SourceKind::kRngDevice:
            hits.push_back({h.pos, "nondeterministic engine '" + h.name + "'"});
            break;
          default:
            hits.push_back({h.pos, "default-seeded engine '" + h.name + "'"});
        }
      }
      for (const IterHit& h : unordered_iter_hits(s, tracked_by_stem_[stem_of(path)]))
        hits.push_back({h.pos, "unordered-container iteration over '" + h.name + "'"});
      for (const SrcHit& h : hits) {
        const std::uint32_t node = node_at(path, h.pos);
        if (node == kNoNode || !cls.in[node]) continue;
        std::vector<ChainHop> chain = chain_for(cls, node, ctx.line_of(h.pos));
        const std::string sink = chain.back().function;
        const std::size_t hops = chain.size() - 1;
        emit_chain(ctx, ctx.line_of(h.pos), Rule::kDeterminismTaint,
                   h.desc + " in '" + graph_.nodes[node].fn.qualified +
                       "' taints digest/codec sink '" + sink + "' (" + std::to_string(hops) +
                       "-hop call chain); every digest input must derive from seeded, "
                       "ordered state",
                   std::move(chain));
      }
    }
  }

  // R11 ---------------------------------------------------------------------
  void rule_float_free_digest() {
    const Closure cls = reach_callees(digest_seeds(/*include_output=*/false));
    for (const FileCtx& ctx : ctxs_) {
      const std::string& path = ctx.src->path;
      if (!starts_with(path, "src/")) continue;
      const std::string& s = ctx.code;
      const auto nit = nodes_by_file_.find(path);
      if (nit != nodes_by_file_.end()) {
        for (const std::uint32_t idx : nit->second) {
          if (!cls.in[idx]) continue;
          const symgraph::SymFunction& fn = graph_.nodes[idx].fn;
          // Scan from the signature line through the body end, so FP
          // parameter and return types count, not just local declarations.
          const std::size_t begin = ctx.line_start[fn.line - 1];
          for (std::string_view w : {std::string_view("float"), std::string_view("double")}) {
            for (std::size_t p = find_word(s, w, begin);
                 p != std::string::npos && p < fn.body_end; p = find_word(s, w, p + 1)) {
              std::vector<ChainHop> chain = chain_for(cls, idx, ctx.line_of(p));
              const std::string sink = chain.back().function;
              std::string msg = "'";
              msg += w;
              msg += "' in '" + fn.qualified + "', which digest/codec sink '" + sink +
                     "' reaches: FP rounding is ISA- and flag-dependent; keep "
                     "everything a digest can see in integer or fixed-point math";
              emit_chain(ctx, ctx.line_of(p), Rule::kFloatFreeDigest, std::move(msg),
                         std::move(chain));
            }
          }
        }
      }
      // Serialized event structs must be FP-free regardless of reachability:
      // their fields go straight through codecs and golden artifacts.
      for (std::size_t p = find_word(s, "struct", 0); p != std::string::npos;
           p = find_word(s, "struct", p + 1)) {
        const std::size_t np = next_nonspace(s, p + 6);
        if (np >= s.size() || !ident_char(s[np])) continue;
        const std::string name = read_ident(s, np);
        if (!event_like(name)) continue;
        std::size_t q = next_nonspace(s, np + name.size());
        if (q < s.size() && s[q] == ':') {  // base clause
          while (q < s.size() && s[q] != '{' && s[q] != ';') ++q;
        }
        if (q >= s.size() || s[q] != '{') continue;  // forward declaration
        const std::size_t body_end = match_bracket(s, q);
        if (body_end == std::string::npos) continue;
        for (std::string_view w : {std::string_view("float"), std::string_view("double")}) {
          for (std::size_t fp = find_word(s, w, q); fp != std::string::npos && fp < body_end;
               fp = find_word(s, w, fp + 1)) {
            const std::size_t after = next_nonspace(s, fp + w.size());
            std::string field;
            if (after < s.size() && ident_char(s[after])) field = read_ident(s, after);
            emit(ctx, ctx.line_of(fp), Rule::kFloatFreeDigest,
                 "serialized event struct '" + name + "' uses '" + std::string(w) + "'" +
                     (field.empty() ? std::string() : " ('" + field + "')") +
                     ": FP bytes are ISA- and flag-dependent; store a fixed-point or "
                     "integer encoding");
          }
        }
      }
    }
  }

  // R12 ---------------------------------------------------------------------
  [[nodiscard]] static std::vector<std::pair<std::size_t, std::string>> alloc_hits(
      const std::string& s, std::size_t begin, std::size_t end) {
    std::vector<std::pair<std::size_t, std::string>> out;
    for (std::size_t p = find_word(s, "new", begin); p != std::string::npos && p < end;
         p = find_word(s, "new", p + 1)) {
      const std::size_t before = prev_nonspace(s, p);
      if (before != std::string::npos && ident_char(s[before]) &&
          read_ident_before(s, before + 1) == "operator")
        continue;  // operator-new declaration, not an allocation
      std::size_t after = next_nonspace(s, p + 3);
      if (after >= end || (!ident_char(s[after]) && s[after] != '(' && s[after] != '['))
        continue;
      if (s[after] == '(') {
        // `new (buf) T` is placement new — construction into existing
        // storage, not a heap allocation. `new (std::nothrow) T` is the
        // one parenthesized form that still allocates.
        const std::size_t close = match_bracket(s, after);
        if (close == std::string::npos) continue;
        if (s.substr(after, close - after + 1).find("nothrow") == std::string::npos) continue;
        after = next_nonspace(s, close + 1);
        if (after >= end || !ident_char(s[after])) continue;
      }
      const std::string type = ident_char(s[after]) ? read_ident(s, after) : std::string();
      out.emplace_back(p, type.empty() ? std::string("'new'") : "'new " + type + "'");
    }
    for (std::string_view w :
         {std::string_view("make_unique"), std::string_view("make_shared")}) {
      for (std::size_t p = find_word(s, w, begin); p != std::string::npos && p < end;
           p = find_word(s, w, p + 1)) {
        const std::size_t after = next_nonspace(s, p + w.size());
        if (after >= end || (s[after] != '<' && s[after] != '(')) continue;
        out.emplace_back(p, "'std::" + std::string(w) + "'");
      }
    }
    // Owning std::string/std::vector value construction. References,
    // pointers and function declarators do not allocate; push_back/reserve
    // on a preallocated container is deliberately not flagged.
    for (std::string_view w : {std::string_view("string"), std::string_view("vector")}) {
      for (std::size_t p = find_word(s, w, begin); p != std::string::npos && p < end;
           p = find_word(s, w, p + 1)) {
        if (qualifier_before(s, p) != Qual::kStd) continue;
        std::size_t q = next_nonspace(s, p + w.size());
        if (q < end && s[q] == '<') {
          q = skip_template_args(s, q);
          if (q == std::string::npos || q > end) continue;
          q = next_nonspace(s, q);
        }
        if (q >= end || !ident_char(s[q])) continue;
        const std::string var = read_ident(s, q);
        const std::size_t after = next_nonspace(s, q + var.size());
        if (after < end && s[after] == '(') continue;  // function declarator
        out.emplace_back(p, "owning std::" + std::string(w) + " '" + var + "'");
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  void rule_hot_path_allocation() {
    const Closure cls = reach_callees(hot_path_roots());
    for (const FileCtx& ctx : ctxs_) {
      const std::string& path = ctx.src->path;
      if (!starts_with(path, "src/")) continue;
      const auto nit = nodes_by_file_.find(path);
      if (nit == nodes_by_file_.end()) continue;
      for (const std::uint32_t idx : nit->second) {
        if (!cls.in[idx]) continue;
        const symgraph::SymFunction& fn = graph_.nodes[idx].fn;
        for (const auto& [pos, desc] : alloc_hits(ctx.code, fn.body_begin + 1, fn.body_end)) {
          std::vector<ChainHop> chain = chain_for(cls, idx, ctx.line_of(pos));
          const std::string root = chain.back().function;
          emit_chain(ctx, ctx.line_of(pos), Rule::kHotPathAllocation,
                     "heap allocation (" + desc + ") in '" + fn.qualified +
                         "', reachable from hot-path root '" + root +
                         "': the forwarding/dispatch path is allocation-free in steady "
                         "state; preallocate or use the pooled slabs",
                     std::move(chain));
        }
      }
    }
  }

  AnalyzeOptions opts_;
  const Config& cfg_;
  std::vector<FileCtx> ctxs_;
  Report report_;
  symgraph::Graph graph_;
  std::map<std::string, std::vector<std::uint32_t>> nodes_by_file_;
  std::map<std::string, std::set<std::string>> tracked_by_stem_;
};

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* rule_name(Rule r) {
  switch (r) {
    case Rule::kNoWallclock: return "no-wallclock";
    case Rule::kNoAmbientRng: return "no-ambient-rng";
    case Rule::kNoUnorderedIteration: return "no-unordered-iteration";
    case Rule::kNoPointerKeyedOrder: return "no-pointer-keyed-order";
    case Rule::kNoIostream: return "no-iostream-in-hot-path";
    case Rule::kTraceEventInit: return "trace-event-init";
    case Rule::kNoIncludeCycles: return "no-include-cycles";
    case Rule::kSimdContainment: return "simd-containment";
    case Rule::kThreadContainment: return "thread-containment";
    case Rule::kDeterminismTaint: return "determinism-taint";
    case Rule::kFloatFreeDigest: return "float-free-digest";
    case Rule::kHotPathAllocation: return "hot-path-allocation";
    case Rule::kBareSuppression: return "bare-suppression";
  }
  return "?";
}

const char* rule_id(Rule r) {
  switch (r) {
    case Rule::kNoWallclock: return "R1";
    case Rule::kNoAmbientRng: return "R2";
    case Rule::kNoUnorderedIteration: return "R3";
    case Rule::kNoPointerKeyedOrder: return "R4";
    case Rule::kNoIostream: return "R5";
    case Rule::kTraceEventInit: return "R6";
    case Rule::kNoIncludeCycles: return "R7";
    case Rule::kSimdContainment: return "R8";
    case Rule::kThreadContainment: return "R9";
    case Rule::kDeterminismTaint: return "R10";
    case Rule::kFloatFreeDigest: return "R11";
    case Rule::kHotPathAllocation: return "R12";
    case Rule::kBareSuppression: return "R0";
  }
  return "?";
}

bool parse_rule(std::string_view s, Rule& out) {
  const std::string n = lower(s);
  for (std::size_t i = 0; i < kRuleCount; ++i) {
    const Rule r = static_cast<Rule>(i);
    if (n == rule_name(r) || n == lower(rule_id(r))) {
      out = r;
      return true;
    }
  }
  return false;
}

Report lint_files(const std::vector<SourceFile>& files, const Config& cfg) {
  AnalyzeOptions opts;
  opts.cfg = cfg;
  return Linter(files, std::move(opts)).run();
}

AnalyzeResult analyze(const std::vector<SourceFile>& files, const AnalyzeOptions& opts) {
  Linter linter(files, opts);
  AnalyzeResult res;
  res.report = linter.run();
  res.graph = linter.take_graph();
  return res;
}

std::string strip_to_code(const std::string& content) {
  const SourceFile tmp{std::string(), content};
  return preprocess(tmp).code;
}

std::string to_json(const Report& r) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"tool\": \"fatih-lint\",\n";
  os << "  \"schema_version\": 2,\n";
  os << "  \"files_scanned\": " << r.files_scanned << ",\n";
  os << "  \"violation_count\": " << r.diagnostics.size() << ",\n";
  os << "  \"suppressed_count\": " << r.suppressed << ",\n";
  os << "  \"violations\": [";
  for (std::size_t i = 0; i < r.diagnostics.size(); ++i) {
    const Diagnostic& d = r.diagnostics[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"file\": \"" << json_escape(d.file) << "\", \"line\": " << d.line
       << ", \"rule\": \"" << rule_name(d.rule) << "\", \"id\": \"" << rule_id(d.rule)
       << "\", \"message\": \"" << json_escape(d.message) << "\"";
    if (!d.chain.empty()) {
      // Evidence chain: hop 0 is the flagged site, each later hop the
      // caller one level up, the last hop the sink/root.
      os << ", \"chain\": [";
      for (std::size_t j = 0; j < d.chain.size(); ++j) {
        const ChainHop& h = d.chain[j];
        os << (j == 0 ? "" : ", ") << "{\"function\": \"" << json_escape(h.function)
           << "\", \"file\": \"" << json_escape(h.file) << "\", \"line\": " << h.line << "}";
      }
      os << "]";
    }
    os << "}";
  }
  os << (r.diagnostics.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

std::string to_text(const Report& r) {
  std::ostringstream os;
  for (const Diagnostic& d : r.diagnostics) {
    os << d.file << ":" << d.line << ": [" << rule_name(d.rule) << "] " << d.message << "\n";
    for (std::size_t j = 0; j < d.chain.size(); ++j) {
      const ChainHop& h = d.chain[j];
      os << "    #" << j << " " << h.function << " (" << h.file << ":" << h.line << ")\n";
    }
  }
  os << "fatih-lint: " << r.diagnostics.size() << " violation(s), " << r.suppressed
     << " suppressed, " << r.files_scanned << " file(s) scanned\n";
  return os.str();
}

}  // namespace fatih::lint
