// fatih-lint CLI: walks the given trees, lints every C++ source, prints
// text or JSON diagnostics. Exit status: 0 clean, 1 violations, 2 usage /
// I/O error.
//
//   fatih-lint [--root DIR] [--json] [--disable RULE[,RULE...]]
//              [--enable-only RULE[,RULE...]] [--list-rules]
//              [--graph-dot FILE] [--cache-dir DIR] [paths...]
//
// Paths default to `src bench tests` relative to --root (default: cwd).
// tests/lint/fixtures/ is always excluded: it is the deliberately-broken
// self-test corpus.
//
// --graph-dot FILE writes the extracted cross-TU call graph (the substrate
// of rules R10–R12) as deterministically sorted Graphviz, for inspecting
// evidence chains and layering by hand. --cache-dir DIR reuses per-file
// symbol extraction across invocations, keyed by FNV-1a content hash.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
using fatih::lint::Config;
using fatih::lint::Rule;

namespace {

bool has_source_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" || ext == ".cxx";
}

bool parse_rule_list(const std::string& list, std::vector<Rule>& out) {
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string item =
        comma == std::string::npos ? list.substr(start) : list.substr(start, comma - start);
    if (!item.empty()) {
      Rule r;
      if (!fatih::lint::parse_rule(item, r)) {
        std::fprintf(stderr, "fatih-lint: unknown rule '%s' (try --list-rules)\n", item.c_str());
        return false;
      }
      out.push_back(r);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: fatih-lint [--root DIR] [--json] [--disable RULES] "
               "[--enable-only RULES] [--list-rules] [--graph-dot FILE] "
               "[--cache-dir DIR] [paths...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  bool json = false;
  Config cfg;
  std::vector<std::string> roots;
  std::string graph_dot;
  std::string cache_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--root") {
      if (++i >= argc) return usage();
      root = argv[i];
    } else if (arg == "--graph-dot") {
      if (++i >= argc) return usage();
      graph_dot = argv[i];
    } else if (arg == "--cache-dir") {
      if (++i >= argc) return usage();
      cache_dir = argv[i];
    } else if (arg == "--disable") {
      if (++i >= argc) return usage();
      std::vector<Rule> rules;
      if (!parse_rule_list(argv[i], rules)) return 2;
      for (Rule r : rules) cfg.set(r, false);
    } else if (arg == "--enable-only") {
      if (++i >= argc) return usage();
      std::vector<Rule> rules;
      if (!parse_rule_list(argv[i], rules)) return 2;
      cfg.enabled.fill(false);
      cfg.set(Rule::kBareSuppression, true);
      for (Rule r : rules) cfg.set(r, true);
    } else if (arg == "--list-rules") {
      for (std::size_t r = 0; r < fatih::lint::kRuleCount; ++r) {
        const Rule rule = static_cast<Rule>(r);
        std::printf("%-4s %s\n", fatih::lint::rule_id(rule), fatih::lint::rule_name(rule));
      }
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) roots = {"src", "bench", "tests"};

  std::vector<fatih::lint::SourceFile> files;
  for (const std::string& sub : roots) {
    const fs::path dir = root / sub;
    std::error_code ec;
    if (!fs::exists(dir, ec)) {
      std::fprintf(stderr, "fatih-lint: no such path: %s\n", dir.string().c_str());
      return 2;
    }
    if (fs::is_regular_file(dir, ec)) {
      std::ifstream in(dir, std::ios::binary);
      std::ostringstream ss;
      ss << in.rdbuf();
      files.push_back({fs::relative(dir, root).generic_string(), ss.str()});
      continue;
    }
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end; it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file() || !has_source_extension(it->path())) continue;
      const std::string rel = fs::relative(it->path(), root).generic_string();
      // The fixture corpus is deliberately full of violations.
      if (rel.find("lint/fixtures/") != std::string::npos) continue;
      std::ifstream in(it->path(), std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "fatih-lint: cannot read %s\n", rel.c_str());
        return 2;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      files.push_back({rel, ss.str()});
    }
  }

  fatih::lint::AnalyzeOptions opts;
  opts.cfg = cfg;
  opts.cache_dir = cache_dir;
  opts.want_graph = !graph_dot.empty();
  const fatih::lint::AnalyzeResult result = fatih::lint::analyze(files, opts);
  if (!graph_dot.empty()) {
    std::ofstream dot(graph_dot, std::ios::binary | std::ios::trunc);
    if (!dot) {
      std::fprintf(stderr, "fatih-lint: cannot write %s\n", graph_dot.c_str());
      return 2;
    }
    const std::string rendered = fatih::lint::symgraph::to_dot(result.graph);
    dot.write(rendered.data(), static_cast<std::streamsize>(rendered.size()));
  }
  const fatih::lint::Report& report = result.report;
  const std::string out = json ? fatih::lint::to_json(report) : fatih::lint::to_text(report);
  std::fwrite(out.data(), 1, out.size(), stdout);
  return report.diagnostics.empty() ? 0 : 1;
}
