// Shared experiment harness for the Protocol chi evaluation benches
// (dissertation §6.4 emulation and §6.5 RED experiments, Figs. 6.5-6.16).
//
// Topology is Fig. 6.4's: source routers feed router r whose output queue
// toward rd is the monitored bottleneck. Traffic is a mix of long-lived
// TCP flows (congestion-controlled, bursty loss) and on-off UDP
// background; the victim is a dedicated flow, plus a TCP connection
// attempt for the SYN-drop attacks.
#pragma once

#include <cstdio>
#include <memory>
#include <vector>

#include "attacks/attacks.hpp"
#include "detection/chi.hpp"
#include "routing/install.hpp"
#include "traffic/sources.hpp"
#include "traffic/tcp.hpp"

namespace fatih::bench {

using util::Duration;
using util::NodeId;
using util::SimTime;

struct ChiExperiment {
  sim::Network net;
  crypto::KeyRegistry keys{98765};
  std::shared_ptr<routing::RoutingTables> tables;
  std::unique_ptr<detection::PathCache> paths;
  std::unique_ptr<detection::QueueValidator> validator;
  std::vector<std::unique_ptr<traffic::CbrSource>> cbr;
  std::vector<std::unique_ptr<traffic::OnOffSource>> onoff;
  std::vector<std::unique_ptr<traffic::TcpFlow>> tcp;
  NodeId s1, s2, r, rd;
  double duration_s;

  /// `red`: bottleneck queue discipline. `rounds` of 1 s each.
  explicit ChiExperiment(bool red, std::int64_t rounds, std::uint64_t seed = 607,
                         std::int64_t learning_rounds = 3)
      : net(seed), duration_s(static_cast<double>(rounds)) {
    s1 = net.add_router("s1").id();
    s2 = net.add_router("s2").id();
    r = net.add_router("r").id();
    rd = net.add_router("rd").id();
    sim::LinkConfig edge;
    edge.bandwidth_bps = 1e8;
    edge.delay = Duration::millis(1);
    sim::LinkConfig core;
    core.bandwidth_bps = 1e7;
    core.delay = Duration::millis(2);
    core.queue_limit_bytes = 50000;
    if (red) {
      core.queue = sim::QueueKind::kRed;
      core.red.weight = 0.002;
      core.red.min_threshold = 15000;
      core.red.max_threshold = 45000;
      core.red.max_probability = 0.1;
      core.red.gentle = true;
      core.red.byte_limit = 90000;
      core.red.mean_packet_size = 1000;
      core.red.drain_rate = 1e7 / 8;
    }
    net.connect(s1, r, edge);
    net.connect(s2, r, edge);
    net.connect(r, rd, core);
    tables = std::make_shared<routing::RoutingTables>(routing::Topology::from_network(net));
    routing::install_static_routes(net, *tables);
    paths = std::make_unique<detection::PathCache>(tables);
    for (NodeId n : {s1, s2, r, rd}) {
      net.router(n).set_processing_delay(Duration::micros(20), Duration::micros(50));
    }

    detection::ChiConfig cfg;
    cfg.clock = detection::RoundClock{SimTime::origin(), Duration::seconds(1)};
    cfg.settle = Duration::millis(400);
    cfg.grace = Duration::millis(200);
    cfg.learning_rounds = learning_rounds;
    cfg.rounds = rounds;
    validator = std::make_unique<detection::QueueValidator>(net, keys, *paths, r, rd, cfg);
  }

  /// Standard traffic mix: one victim CBR flow (flow 1 from s1), two
  /// long-lived TCP flows and an on-off burst source to drive congestion.
  void standard_traffic(bool heavy_congestion) {
    add_cbr(s1, 1, 300);
    traffic::TcpConfig tc;
    tc.mss_bytes = 960;
    tcp.push_back(std::make_unique<traffic::TcpFlow>(net, s1, rd, 10, tc));
    tcp.back()->start(SimTime::from_seconds(0.2));
    tcp.push_back(std::make_unique<traffic::TcpFlow>(net, s2, rd, 11, tc));
    tcp.back()->start(SimTime::from_seconds(0.4));
    if (heavy_congestion) {
      traffic::OnOffSource::Config o;
      o.src = s2;
      o.dst = rd;
      o.flow_id = 2;
      o.on_rate_pps = 1100;
      o.mean_on = Duration::millis(200);
      o.mean_off = Duration::millis(200);
      o.start = SimTime::from_seconds(0.05);
      o.stop = SimTime::from_seconds(duration_s - 0.5);
      onoff.push_back(std::make_unique<traffic::OnOffSource>(net, o));
    }
  }

  void add_cbr(NodeId src, std::uint32_t flow, double pps) {
    traffic::CbrSource::Config c;
    c.src = src;
    c.dst = rd;
    c.flow_id = flow;
    c.rate_pps = pps;
    c.start = SimTime::from_seconds(0.05);
    c.stop = SimTime::from_seconds(duration_s - 0.5);
    cbr.push_back(std::make_unique<traffic::CbrSource>(net, c));
  }

  void run() {
    validator->start();
    net.sim().run_until(SimTime::from_seconds(duration_s + 2.0));
  }

  /// Prints the per-round table in the style of the Fig. 6.5-6.16 plots:
  /// losses seen, how many the queue model explains, the residual, the
  /// test confidences, and whether the round alarmed.
  void print_rounds(bool red) const {
    std::printf("%-6s %8s %8s %7s %7s %7s %9s %9s %7s\n", "round", "entries", "exits",
                "drops", "cong", "susp", red ? "E[drops]" : "c_single",
                red ? "maxflowZ" : "c_comb", "alarm");
    for (const auto& rs : validator->rounds()) {
      std::printf("%-6lld %8llu %8llu %7llu %7llu %7llu %9.3f %9.3f %7s%s\n",
                  static_cast<long long>(rs.round),
                  static_cast<unsigned long long>(rs.entries),
                  static_cast<unsigned long long>(rs.exits),
                  static_cast<unsigned long long>(rs.drops),
                  static_cast<unsigned long long>(rs.congestive),
                  static_cast<unsigned long long>(rs.suspicious),
                  red ? rs.red_expected_drops : rs.max_single_confidence,
                  red ? rs.red_max_flow_z : rs.combined_confidence,
                  rs.alarmed ? "ALARM" : "-",
                  rs.round < 3 ? "  (learning)" : "");
    }
  }

  void print_verdict(bool attack_present, double attack_start_s) {
    std::size_t false_alarms = 0;
    std::size_t hits = 0;
    for (const auto& rs : validator->rounds()) {
      if (!rs.alarmed) continue;
      const double t = static_cast<double>(rs.round);
      if (attack_present && t >= attack_start_s - 1) {
        ++hits;
      } else {
        ++false_alarms;
      }
    }
    std::printf("\ncalibration: mu=%.1fB sigma=%.1fB; ground truth: %llu malicious drops\n",
                validator->mu(), validator->sigma(),
                static_cast<unsigned long long>(net.router(r).malicious_drops()));
    if (attack_present) {
      std::printf("verdict: %zu alarmed rounds during attack, %zu false alarms%s\n", hits,
                  false_alarms, hits > 0 && false_alarms == 0 ? "  [DETECTED]" : "");
    } else {
      std::printf("verdict: %zu false alarms%s\n", false_alarms,
                  false_alarms == 0 ? "  [CLEAN]" : "");
    }
  }
};

}  // namespace fatih::bench
