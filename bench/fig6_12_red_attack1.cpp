// Figure 6.12 reproduction: RED attack 1 — drop the selected flow
// whenever the RED average queue size exceeds 45,000 bytes (= max_th, the
// regime where RED drops legitimately).
#include "bench/chi_fixture.hpp"

int main() {
  std::printf("== Figure 6.12: RED attack 1 - drop victims when avg queue > 45000B ==\n\n");
  fatih::bench::ChiExperiment exp(/*red=*/true, /*rounds=*/26);
  exp.standard_traffic(/*heavy_congestion=*/true);
  exp.add_cbr(exp.s1, 3, 400);
  fatih::attacks::FlowMatch match;
  match.flow_ids = {1};
  exp.net.router(exp.r).set_forward_filter(
      std::make_shared<fatih::attacks::RedAvgThresholdDropAttack>(
          match, 45000.0, 1.0, fatih::util::SimTime::from_seconds(8), 13));
  exp.run();
  exp.print_rounds(true);
  exp.print_verdict(/*attack_present=*/true, 8);
  return 0;
}
