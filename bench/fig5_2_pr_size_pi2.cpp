// Figure 5.2 reproduction: size of Pr (path-segments monitored per router)
// for Protocol Pi2 as a function of the AdjacentFault(k) bound, on
// Rocketfuel-statistics-matched Sprintlink-like and EBONE-like topologies.
//
// Paper shape to match: |Pr| grows steeply with k (the theoretical bound
// is O(k * R^(k+1))) but stays far below it; e.g. for Sprintlink at k=2
// the average is a few hundred, the max a few thousand.
#include <cstdio>

#include "bench/pr_stats.hpp"

using namespace fatih;
using namespace fatih::bench;

namespace {

void run(const routing::IspProfile& profile, std::uint64_t seed) {
  const routing::Topology topo = routing::synthetic_isp(profile, seed);
  double mean_degree = static_cast<double>(topo.edge_count()) /
                       static_cast<double>(topo.node_count());
  std::printf("# %s: %zu routers, %zu links, mean degree %.2f\n", profile.name.c_str(),
              topo.node_count(), topo.edge_count() / 2, mean_degree);
  const auto paths = all_used_paths(topo);
  std::printf("%-4s %10s %10s %10s\n", "k", "max|Pr|", "avg|Pr|", "med|Pr|");
  for (std::size_t k = 1; k <= 8; ++k) {
    const auto counts = count_pr(paths, topo.node_count(), k);
    const auto stats = summarize(counts.pi2);
    std::printf("%-4zu %10zu %10.1f %10.1f\n", k, stats.max, stats.average, stats.median);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== Figure 5.2: |Pr| per router under Protocol Pi2 ==\n\n");
  run(routing::sprintlink_profile(), 42);
  run(routing::ebone_profile(), 42);
  return 0;
}
