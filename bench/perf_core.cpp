// Core hot-path benchmark: event engine, forwarding macro, fingerprints.
//
// Measures the three layers the allocation-free overhaul touched:
//
//  1. Event-engine micro — schedule/dispatch churn and cancel/re-arm churn,
//     run LIVE against both the pooled engine and the embedded frozen copy
//     of the legacy engine (bench/legacy_simulator.hpp), same binary, same
//     flags, so the ratio is apples-to-apples on the machine at hand.
//  2. Forwarding macro — the Abilene no-attack scenario under every
//     chapter-5/6 experiment. The legacy engine cannot run this scenario
//     live (Network owns a sim::Simulator), so the committed JSON carries
//     the seed baseline measured at the seed commit alongside today's
//     number; the event/forward counts must stay byte-identical to the
//     seed's, which the run re-checks.
//  3. Fingerprints — cached-schedule fixed-length SipHash vs the seed's
//     per-call general path, verified bit-identical while timed.
//
// `perf_core --smoke` runs a seconds-scale subset that exercises every
// code path and asserts the invariants (legacy/pooled dispatch equality,
// macro determinism) without writing the JSON; ctest runs it under the
// "bench" label. The full run emits BENCH_perf_core.json in the current
// directory (run from the repo root to commit it, via tools/bench.sh).
#include <algorithm>
#include <cstdio>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/legacy_simulator.hpp"
#include "bench/perf_scenarios.hpp"
#include "crypto/siphash.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "validation/fingerprint.hpp"

using namespace fatih;
using namespace fatih::bench;

namespace {

// Seed-engine macro baseline, measured at the seed commit (efc732b, the
// priority_queue + unordered_map engine) with the identical scenario and
// Release flags on the reference machine. The counts are deterministic and
// must reproduce on any machine; the wall numbers are that machine's.
constexpr double kMacroSimSeconds = 10.0;
constexpr std::uint64_t kSeedMacroForwarded = 639360;
constexpr std::uint64_t kSeedMacroDelivered = 199800;
constexpr std::uint64_t kSeedMacroDispatched = 1918090;
constexpr double kSeedMacroWallS = 0.355;

// Committed scalar fingerprint row (the seed path measured on the
// reference machine): the batch rows report their speedup against it.
constexpr double kSeedFingerprintPerSec = 2.82461e7;

struct MicroRow {
  std::size_t width = 0;  ///< chains or flows
  MicroResult legacy;
  MicroResult pooled;
  [[nodiscard]] double ratio() const {
    return legacy.wall_s > 0 && pooled.events_per_sec() > 0
               ? pooled.events_per_sec() / legacy.events_per_sec()
               : 0.0;
  }
};

struct FingerprintResult {
  std::uint64_t hashes = 0;
  double legacy_wall_s = 0.0;
  double cached_wall_s = 0.0;
  [[nodiscard]] double legacy_fps() const { return hashes / legacy_wall_s; }
  [[nodiscard]] double cached_fps() const { return hashes / cached_wall_s; }
  [[nodiscard]] double ratio() const { return legacy_wall_s / cached_wall_s; }
};

/// Same two paths with the key ROTATING across 64 keys — the shape the
/// per-segment roles actually see. This row exists to explain the ~1.03x
/// hot-key result: if that were an artifact of the compiler hoisting the
/// seed path's key expansion out of the single-key loop, rotating keys
/// would widen the gap. It does not (SipHash key expansion is four XORs),
/// so ~1.03x is the honest per-call win of the fixed-length path and the
/// real headroom is lane parallelism (fingerprint_batch below).
struct ColdKeyResult {
  std::uint64_t hashes = 0;
  double legacy_wall_s = 0.0;
  double cached_wall_s = 0.0;
  [[nodiscard]] double legacy_fps() const { return hashes / legacy_wall_s; }
  [[nodiscard]] double cached_fps() const { return hashes / cached_wall_s; }
  [[nodiscard]] double ratio() const { return legacy_wall_s / cached_wall_s; }
};

/// One SIMD dispatch level of the batched fingerprint kernel.
struct BatchRow {
  crypto::SimdLevel level = crypto::SimdLevel::kScalar;
  std::size_t lanes = 1;
  std::uint64_t hashes = 0;
  double wall_s = 0.0;
  [[nodiscard]] double per_sec() const { return hashes / wall_s; }
};

[[nodiscard]] const char* level_name(crypto::SimdLevel level) {
  switch (level) {
    case crypto::SimdLevel::kScalar: return "scalar";
    case crypto::SimdLevel::kSse2: return "sse2";
    case crypto::SimdLevel::kAvx2: return "avx2";
    case crypto::SimdLevel::kAvx512: return "avx512";
  }
  return "?";
}

/// The seed's fingerprint shape: rebuild the invariant view and run the
/// general variable-length SipHash with per-call key expansion.
[[nodiscard]] validation::Fingerprint legacy_fingerprint(crypto::SipKey key,
                                                         const sim::Packet& p) {
  struct InvariantView {
    std::uint32_t src, dst, flow_id, seq, ack;
    std::uint8_t proto, flags;
    std::uint16_t pad;
    std::uint32_t size_bytes;
    std::uint64_t payload_tag;
  };
  InvariantView v{};
  v.src = p.hdr.src;
  v.dst = p.hdr.dst;
  v.flow_id = p.hdr.flow_id;
  v.seq = p.hdr.seq;
  v.ack = p.hdr.ack;
  v.proto = static_cast<std::uint8_t>(p.hdr.proto);
  v.flags = p.hdr.flags;
  v.size_bytes = p.size_bytes;
  v.payload_tag = p.payload_tag;
  return crypto::siphash24(key, &v, sizeof(v));
}

FingerprintResult fingerprint_micro(std::uint64_t hashes) {
  const crypto::SipKey key{0x0123456789ABCDEFULL, 0xFEDCBA9876543210ULL};
  const validation::FingerprintHasher hasher(key);
  sim::Packet p;
  p.hdr.src = 3;
  p.hdr.dst = 9;
  p.hdr.flow_id = 7;
  p.size_bytes = 1000;
  auto legacy_pass = [&](std::uint64_t* sink) {
    WallTimer t;
    for (std::uint64_t i = 0; i < hashes; ++i) {
      p.hdr.seq = static_cast<std::uint32_t>(i);
      p.payload_tag = i * 0x9E3779B97F4A7C15ULL;
      *sink ^= legacy_fingerprint(key, p);
    }
    return t.seconds();
  };
  auto cached_pass = [&](std::uint64_t* sink) {
    WallTimer t;
    for (std::uint64_t i = 0; i < hashes; ++i) {
      p.hdr.seq = static_cast<std::uint32_t>(i);
      p.payload_tag = i * 0x9E3779B97F4A7C15ULL;
      *sink ^= hasher(p);
    }
    return t.seconds();
  };
  FingerprintResult out;
  out.hashes = hashes;
  out.legacy_wall_s = out.cached_wall_s = 1e300;
  // Alternate repetitions and keep the best of each: the two loops are
  // identical apart from the hash call, so min-of-3 cancels warm-up and
  // scheduling noise instead of charging it to whichever ran first.
  std::uint64_t sink_legacy = 0;
  std::uint64_t sink_cached = 0;
  for (int rep = 0; rep < 3; ++rep) {
    sink_legacy = 0;
    sink_cached = 0;
    out.legacy_wall_s = std::min(out.legacy_wall_s, legacy_pass(&sink_legacy));
    out.cached_wall_s = std::min(out.cached_wall_s, cached_pass(&sink_cached));
  }
  if (sink_legacy != sink_cached) {
    std::fprintf(stderr, "FATAL: cached fingerprint path diverged from the seed path\n");
    std::exit(1);
  }
  return out;
}

ColdKeyResult fingerprint_cold_key_micro(std::uint64_t hashes) {
  constexpr std::size_t kKeys = 64;
  std::vector<crypto::SipKey> keys;
  std::vector<validation::FingerprintHasher> hashers;
  for (std::size_t k = 0; k < kKeys; ++k) {
    const crypto::SipKey key{0x0123456789ABCDEFULL ^ (k * 0x9E3779B97F4A7C15ULL),
                             0xFEDCBA9876543210ULL ^ (k * 0xC2B2AE3D27D4EB4FULL)};
    keys.push_back(key);
    hashers.emplace_back(key);
  }
  sim::Packet p;
  p.hdr.src = 3;
  p.hdr.dst = 9;
  p.hdr.flow_id = 7;
  p.size_bytes = 1000;
  auto legacy_pass = [&](std::uint64_t* sink) {
    WallTimer t;
    for (std::uint64_t i = 0; i < hashes; ++i) {
      p.hdr.seq = static_cast<std::uint32_t>(i);
      p.payload_tag = i * 0x9E3779B97F4A7C15ULL;
      *sink ^= legacy_fingerprint(keys[i % kKeys], p);
    }
    return t.seconds();
  };
  auto cached_pass = [&](std::uint64_t* sink) {
    WallTimer t;
    for (std::uint64_t i = 0; i < hashes; ++i) {
      p.hdr.seq = static_cast<std::uint32_t>(i);
      p.payload_tag = i * 0x9E3779B97F4A7C15ULL;
      *sink ^= hashers[i % kKeys](p);
    }
    return t.seconds();
  };
  ColdKeyResult out;
  out.hashes = hashes;
  out.legacy_wall_s = out.cached_wall_s = 1e300;
  std::uint64_t sink_legacy = 0;
  std::uint64_t sink_cached = 0;
  for (int rep = 0; rep < 3; ++rep) {
    sink_legacy = 0;
    sink_cached = 0;
    out.legacy_wall_s = std::min(out.legacy_wall_s, legacy_pass(&sink_legacy));
    out.cached_wall_s = std::min(out.cached_wall_s, cached_pass(&sink_cached));
  }
  if (sink_legacy != sink_cached) {
    std::fprintf(stderr, "FATAL: cold-key cached path diverged from the seed path\n");
    std::exit(1);
  }
  return out;
}

/// Batched kernel at every dispatch level the CPU (and build) can reach,
/// digests cross-checked against the scalar level while timed.
std::vector<BatchRow> fingerprint_batch_micro(std::uint64_t hashes) {
  const crypto::SipKey key{0x0123456789ABCDEFULL, 0xFEDCBA9876543210ULL};
  const validation::FingerprintHasher hasher(key);
  constexpr std::size_t kBlock = 4096;
  std::vector<validation::PacketInvariant> views;
  views.reserve(kBlock);
  sim::Packet p;
  p.hdr.src = 3;
  p.hdr.dst = 9;
  p.hdr.flow_id = 7;
  p.size_bytes = 1000;
  for (std::size_t i = 0; i < kBlock; ++i) {
    p.hdr.seq = static_cast<std::uint32_t>(i);
    p.payload_tag = i * 0x9E3779B97F4A7C15ULL;
    views.push_back(validation::PacketInvariant::from_packet(p));
  }
  std::vector<validation::Fingerprint> digests(kBlock);
  const std::uint64_t blocks = std::max<std::uint64_t>(1, hashes / kBlock);

  std::vector<BatchRow> rows;
  std::uint64_t scalar_sink = 0;
  constexpr crypto::SimdLevel kLevels[] = {crypto::SimdLevel::kScalar, crypto::SimdLevel::kSse2,
                                           crypto::SimdLevel::kAvx2, crypto::SimdLevel::kAvx512};
  for (const crypto::SimdLevel level : kLevels) {
    const crypto::SimdLevel old_cap = crypto::set_simd_level_cap(level);
    if (crypto::simd_level() != level) {
      crypto::set_simd_level_cap(old_cap);  // CPU or build cannot reach it
      continue;
    }
    BatchRow r;
    r.level = level;
    r.lanes = crypto::simd_batch_width();
    r.hashes = blocks * kBlock;
    r.wall_s = 1e300;
    std::uint64_t sink = 0;
    for (int rep = 0; rep < 3; ++rep) {
      sink = 0;
      WallTimer t;
      for (std::uint64_t b = 0; b < blocks; ++b) {
        hasher.hash_batch(views.data(), kBlock, digests.data());
        for (const validation::Fingerprint d : digests) sink ^= d;
      }
      r.wall_s = std::min(r.wall_s, t.seconds());
    }
    crypto::set_simd_level_cap(old_cap);
    if (level == crypto::SimdLevel::kScalar) {
      scalar_sink = sink;
    } else if (sink != scalar_sink) {
      std::fprintf(stderr, "FATAL: %s batch digests diverged from scalar\n", level_name(level));
      std::exit(1);
    }
    rows.push_back(r);
  }
  return rows;
}

void print_micro(const char* name, const char* width_label, const std::vector<MicroRow>& rows) {
  std::printf("%s\n", name);
  std::printf("  %-8s | %14s | %14s | %6s\n", width_label, "legacy ev/s", "pooled ev/s",
              "ratio");
  for (const auto& r : rows) {
    std::printf("  %-8zu | %14.3e | %14.3e | %5.2fx\n", r.width, r.legacy.events_per_sec(),
                r.pooled.events_per_sec(), r.ratio());
  }
}

/// Tracing-enabled rerun of the macro: same scenario with a full TraceSink
/// and MetricsRegistry attached, so BENCH_perf_core.json carries the cost
/// of observation alongside the plain number.
struct TraceOverhead {
  MacroResult macro;
  std::uint64_t events_offered = 0;
  std::uint64_t events_recorded = 0;
  std::uint64_t metric_enqueued = 0;
};

void write_json(const std::vector<MicroRow>& dispatch, const std::vector<MicroRow>& cancel,
                const FingerprintResult& fp, const ColdKeyResult& cold,
                const std::vector<BatchRow>& batch, const MacroResult& macro,
                const TraceOverhead& traced, bool counts_match) {
  std::ofstream f("BENCH_perf_core.json");
  f << "{\n"
    << "  \"bench\": \"perf_core\",\n"
    << "  \"note\": \"micro rows compare the pooled engine against the frozen seed engine "
       "live in one binary; the macro seed baseline was measured at the seed commit "
       "(efc732b) on the reference machine\",\n";
  auto micro_array = [&f](const char* key, const char* width, const std::vector<MicroRow>& rows,
                          bool trailing_comma) {
    f << "  \"" << key << "\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const MicroRow& r = rows[i];
      f << "    {\"" << width << "\": " << r.width << ", \"events\": " << r.pooled.events
        << ", \"legacy_events_per_sec\": " << r.legacy.events_per_sec()
        << ", \"pooled_events_per_sec\": " << r.pooled.events_per_sec()
        << ", \"speedup\": " << r.ratio() << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    f << "  ]" << (trailing_comma ? "," : "") << "\n";
  };
  micro_array("dispatch_churn", "chains", dispatch, true);
  micro_array("cancel_reschedule_churn", "flows", cancel, true);
  f << "  \"fingerprint\": {\"hashes\": " << fp.hashes
    << ", \"legacy_per_sec\": " << fp.legacy_fps() << ", \"cached_per_sec\": " << fp.cached_fps()
    << ", \"speedup\": " << fp.ratio()
    << ", \"note\": \"~1x is the honest per-call win of the fixed-length path: "
       "fingerprint_cold_key rotates 64 keys and the ratio does not move, so the seed path's "
       "per-call key expansion (four XORs) was never the cost; the headroom is lane "
       "parallelism, see fingerprint_batch\"},\n";
  f << "  \"fingerprint_cold_key\": {\"hashes\": " << cold.hashes << ", \"keys\": 64"
    << ", \"legacy_per_sec\": " << cold.legacy_fps()
    << ", \"cached_per_sec\": " << cold.cached_fps() << ", \"speedup\": " << cold.ratio()
    << "},\n";
  f << "  \"fingerprint_batch\": [\n";
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const BatchRow& r = batch[i];
    f << "    {\"level\": \"" << level_name(r.level) << "\", \"lanes\": " << r.lanes
      << ", \"hashes\": " << r.hashes << ", \"per_sec\": " << r.per_sec()
      << ", \"speedup_vs_seed_row\": " << r.per_sec() / kSeedFingerprintPerSec << "}"
      << (i + 1 < batch.size() ? "," : "") << "\n";
  }
  f << "  ],\n";
  f << "  \"macro_abilene_no_attack\": {\n"
    << "    \"sim_seconds\": " << kMacroSimSeconds << ",\n"
    << "    \"seed_baseline\": {\"forwarded\": " << kSeedMacroForwarded
    << ", \"delivered\": " << kSeedMacroDelivered << ", \"dispatched\": " << kSeedMacroDispatched
    << ", \"wall_s\": " << kSeedMacroWallS
    << ", \"forwards_per_sec\": " << kSeedMacroForwarded / kSeedMacroWallS << "},\n"
    << "    \"pooled\": {\"forwarded\": " << macro.forwarded
    << ", \"delivered\": " << macro.delivered << ", \"dispatched\": " << macro.dispatched
    << ", \"wall_s\": " << macro.wall_s << ", \"forwards_per_sec\": " << macro.forwards_per_sec()
    << "},\n"
    << "    \"speedup\": " << macro.forwards_per_sec() / (kSeedMacroForwarded / kSeedMacroWallS)
    << ",\n"
    << "    \"counts_match_seed\": " << (counts_match ? "true" : "false") << "\n"
    << "  },\n"
    << "  \"macro_trace_overhead\": {\n"
    << "    \"note\": \"same macro with a TraceSink + MetricsRegistry attached (all "
       "categories on); untraced builds/runs pay only a null-pointer test per touch-point\",\n"
    << "    \"wall_s\": " << traced.macro.wall_s
    << ",\n    \"delta_vs_untraced\": " << (traced.macro.wall_s / macro.wall_s - 1.0)
    << ",\n    \"events_offered\": " << traced.events_offered
    << ",\n    \"events_recorded\": " << traced.events_recorded
    << ",\n    \"counts_match_untraced\": "
    << ((traced.macro.forwarded == macro.forwarded && traced.macro.delivered == macro.delivered &&
         traced.macro.dispatched == macro.dispatched)
            ? "true"
            : "false")
    << "\n  }\n}\n";
}

/// `--macro`: just the Abilene macro, best of 3, no JSON — the iteration
/// loop for forwarding-path work (the full run spends minutes in micros).
int run_macro_only() {
  MacroResult macro;
  for (int rep = 0; rep < 3; ++rep) {
    const MacroResult m = abilene_no_attack_macro(kMacroSimSeconds);
    if (rep == 0 || m.wall_s < macro.wall_s) macro = m;
  }
  std::printf("abilene macro: forwarded=%llu dispatched=%llu wall=%.3fs -> %.3e fwd/s "
              "(seed %.2fx, pr2 row %.2fx)\n",
              static_cast<unsigned long long>(macro.forwarded),
              static_cast<unsigned long long>(macro.dispatched), macro.wall_s,
              macro.forwards_per_sec(),
              macro.forwards_per_sec() / (kSeedMacroForwarded / kSeedMacroWallS),
              macro.forwards_per_sec() / 3.43303e6);
  return macro.forwarded == kSeedMacroForwarded && macro.dispatched == kSeedMacroDispatched ? 0
                                                                                            : 1;
}

int run(bool smoke) {
  const std::uint64_t micro_events = smoke ? 50'000 : 2'000'000;
  const std::uint64_t micro_acks = smoke ? 25'000 : 1'000'000;
  const std::uint64_t fp_hashes = smoke ? 200'000 : 20'000'000;
  const double macro_sim_s = smoke ? 0.5 : kMacroSimSeconds;
  const std::vector<std::size_t> widths = smoke ? std::vector<std::size_t>{64}
                                                : std::vector<std::size_t>{64, 512, 4096};

  std::printf("== perf_core%s: event engine / forwarding / fingerprint hot paths ==\n\n",
              smoke ? " (smoke)" : "");

  // Best-of-N with alternating engines: scheduling noise lands on both
  // sides instead of whichever ran first, so the committed ratios are
  // reproducible run to run.
  const int reps = smoke ? 1 : 3;
  auto best = [](MicroResult& slot, MicroResult r) {
    if (slot.wall_s == 0.0 || r.wall_s < slot.wall_s) slot = r;
  };

  std::vector<MicroRow> dispatch;
  for (std::size_t w : widths) {
    MicroRow r;
    r.width = w;
    for (int rep = 0; rep < reps; ++rep) {
      best(r.legacy, dispatch_churn<LegacySimulator>(micro_events, w));
      best(r.pooled, dispatch_churn<sim::Simulator>(micro_events, w));
    }
    if (r.legacy.events != r.pooled.events) {
      std::fprintf(stderr, "FATAL: dispatch_churn engines disagree (%llu vs %llu events)\n",
                   static_cast<unsigned long long>(r.legacy.events),
                   static_cast<unsigned long long>(r.pooled.events));
      return 1;
    }
    dispatch.push_back(r);
  }
  print_micro("dispatch_churn (self-rescheduling timer chains)", "chains", dispatch);

  std::vector<MicroRow> cancel;
  for (std::size_t w : widths) {
    MicroRow r;
    r.width = w;
    for (int rep = 0; rep < reps; ++rep) {
      best(r.legacy, cancel_reschedule_churn<LegacySimulator>(micro_acks, w));
      best(r.pooled, cancel_reschedule_churn<sim::Simulator>(micro_acks, w));
    }
    if (r.legacy.events != r.pooled.events) {
      std::fprintf(stderr, "FATAL: cancel_churn engines disagree\n");
      return 1;
    }
    cancel.push_back(r);
  }
  print_micro("\ncancel_reschedule_churn (RTO re-arm per ack)", "flows", cancel);

  const FingerprintResult fp = fingerprint_micro(fp_hashes);
  std::printf("\nfingerprints (hot key): %.3e/s seed path, %.3e/s cached path (%.2fx)\n",
              fp.legacy_fps(), fp.cached_fps(), fp.ratio());

  const ColdKeyResult cold = fingerprint_cold_key_micro(fp_hashes);
  std::printf("fingerprints (cold key, 64 keys): %.3e/s seed path, %.3e/s cached path (%.2fx)\n",
              cold.legacy_fps(), cold.cached_fps(), cold.ratio());

  const std::vector<BatchRow> batch = fingerprint_batch_micro(fp_hashes);
  std::printf("fingerprint batch kernels (vs committed seed row %.3e/s):\n",
              kSeedFingerprintPerSec);
  for (const BatchRow& r : batch) {
    std::printf("  %-6s | %2zu lanes | %10.3e/s | %5.2fx\n", level_name(r.level), r.lanes,
                r.per_sec(), r.per_sec() / kSeedFingerprintPerSec);
  }

  MacroResult macro;
  for (int rep = 0; rep < reps; ++rep) {
    const MacroResult m = abilene_no_attack_macro(macro_sim_s);
    if (rep > 0 && (m.forwarded != macro.forwarded || m.dispatched != macro.dispatched)) {
      std::fprintf(stderr, "FATAL: macro run is not deterministic across repetitions\n");
      return 1;
    }
    if (rep == 0 || m.wall_s < macro.wall_s) macro = m;
  }
  std::printf("\nabilene no-attack macro (%.1fs sim): forwarded=%llu delivered=%llu "
              "dispatched=%llu wall=%.3fs -> %.3e fwd/s, %.3e ev/s\n",
              macro_sim_s, static_cast<unsigned long long>(macro.forwarded),
              static_cast<unsigned long long>(macro.delivered),
              static_cast<unsigned long long>(macro.dispatched), macro.wall_s,
              macro.forwards_per_sec(), macro.events_per_sec());

  // Tracing-enabled rerun: identical scenario with the full observability
  // layer attached. The macro counts MUST come out identical — attaching a
  // sink may cost wall time but never changes what the simulation does.
  TraceOverhead traced;
#if !FATIH_TRACE
  traced.macro = macro;  // compiled out: nothing to attach, delta is zero
  std::printf("traced macro: skipped (FATIH_TRACE compiled out)\n");
#else
  for (int rep = 0; rep < reps; ++rep) {
    obs::TraceSink sink;
    obs::MetricsRegistry metrics;
    const MacroResult m = abilene_no_attack_macro(macro_sim_s, &sink, &metrics);
    if (rep == 0 || m.wall_s < traced.macro.wall_s) {
      traced.macro = m;
      traced.events_offered = sink.offered();
      traced.events_recorded = sink.recorded();
      traced.metric_enqueued = metrics.counter_value("sim.enqueued");
    }
  }
  if (traced.macro.forwarded != macro.forwarded || traced.macro.delivered != macro.delivered ||
      traced.macro.dispatched != macro.dispatched) {
    std::fprintf(stderr, "FATAL: attaching the trace sink changed the macro counts\n");
    return 1;
  }
  if (traced.metric_enqueued == 0 || traced.events_offered == 0) {
    std::fprintf(stderr, "FATAL: traced macro recorded no observability data\n");
    return 1;
  }
  std::printf("traced macro: wall=%.3fs (%+.1f%% vs untraced), %llu trace events offered, "
              "%llu retained\n",
              traced.macro.wall_s, (traced.macro.wall_s / macro.wall_s - 1.0) * 100.0,
              static_cast<unsigned long long>(traced.events_offered),
              static_cast<unsigned long long>(traced.events_recorded));
#endif

  bool counts_match = true;
  if (!smoke) {
    counts_match = macro.forwarded == kSeedMacroForwarded &&
                   macro.delivered == kSeedMacroDelivered &&
                   macro.dispatched == kSeedMacroDispatched;
    if (!counts_match) {
      // A count drift means the engine overhaul changed simulation
      // behaviour — that is a correctness bug, not a perf regression.
      std::fprintf(stderr, "FATAL: macro counts diverged from the seed baseline\n");
      return 1;
    }
    std::printf("macro counts byte-identical to seed baseline; seed wall %.3fs -> %.2fx\n",
                kSeedMacroWallS, kSeedMacroWallS / macro.wall_s);
    write_json(dispatch, cancel, fp, cold, batch, macro, traced, counts_match);
    std::printf("\nwrote BENCH_perf_core.json\n");
  } else {
    std::printf("\nsmoke OK (engines agree, fingerprint paths bit-identical, "
                "tracing count-neutral)\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--macro") return run_macro_only();
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  return run(smoke);
}
