// Figure 6.11 reproduction: RED bottleneck, no attack. RED's random early
// drops are legitimate; the validator's replayed per-packet drop
// probabilities must account for them without alarms.
#include "bench/chi_fixture.hpp"

int main() {
  std::printf("== Figure 6.11: RED bottleneck, no attack ==\n\n");
  fatih::bench::ChiExperiment exp(/*red=*/true, /*rounds=*/100);
  exp.standard_traffic(/*heavy_congestion=*/true);
  exp.add_cbr(exp.s1, 3, 400);  // keep the RED average in the active band
  exp.run();
  exp.print_rounds(true);
  exp.print_verdict(/*attack_present=*/false, 0);
  return 0;
}
