// §7.2 / Appendix A reproduction: state size and bandwidth of the summary
// exchange mechanisms — shipping raw fingerprints vs Bloom-filter digests
// vs characteristic-polynomial set reconciliation — as a function of the
// per-round traffic volume and the difference size.
//
// Paper claim to match: set reconciliation is bandwidth-optimal (O(d)
// field elements for difference d, independent of set size); Bloom
// filters are cheap but inexact; raw fingerprints cost 8 bytes per packet.
#include <cstdio>
#include <set>

#include "util/rng.hpp"
#include "validation/bloom.hpp"
#include "validation/reconcile.hpp"

using namespace fatih;
using namespace fatih::validation;

int main() {
  std::printf("== §7.2 / Appendix A: summary exchange bandwidth ==\n\n");
  std::printf("%-10s %-6s | %12s %12s %14s | %8s %10s\n", "packets", "diff", "raw(B)",
              "bloom(B)", "reconcile(B)", "bloomErr", "reconExact");

  util::Rng rng(7);
  for (std::size_t n : {1000UL, 10000UL, 50000UL}) {
    for (std::size_t d : {2UL, 10UL, 50UL}) {
      // Build A (sender) and B = A minus d dropped packets.
      std::vector<std::uint64_t> a;
      a.reserve(n);
      std::set<std::uint64_t> uniq;
      while (uniq.size() < n) uniq.insert(to_field(rng.next_u64()));
      a.assign(uniq.begin(), uniq.end());
      std::vector<std::uint64_t> b(a.begin(), a.end() - static_cast<std::ptrdiff_t>(d));

      // Raw fingerprints: 8 B per packet.
      const std::size_t raw_bytes = 8 * n;

      // Bloom: sized at ~10 bits/element, 4 hashes.
      BloomFilter fa(n * 10, 4);
      BloomFilter fb(n * 10, 4);
      for (auto v : a) fa.insert(v);
      for (auto v : b) fb.insert(v);
      const auto est = BloomFilter::estimate_symmetric_difference(fa, fb);
      const double bloom_err =
          est ? std::abs(*est - static_cast<double>(d)) : static_cast<double>(d);

      // Reconciliation: d + 4 evaluation points of 8 B each.
      const auto points = evaluation_points(d + 4);
      const auto evals = char_poly_evaluations(a, points);
      const auto result = reconcile(b, evals, a.size(), points, d + 2);
      const bool exact = result.has_value() && result->only_remote.size() == d &&
                         result->only_local.empty();
      const std::size_t recon_bytes = 8 * points.size() + 8;  // evals + count

      std::printf("%-10zu %-6zu | %12zu %12zu %14zu | %8.1f %10s\n", n, d, raw_bytes,
                  fa.byte_size(), recon_bytes, bloom_err, exact ? "yes" : "NO");
    }
  }
  std::printf("\nExpected shape: reconciliation bytes depend only on d; Bloom is\n"
              "~1.25 B/packet with estimation error; raw grows 8 B/packet.\n");
  return 0;
}
