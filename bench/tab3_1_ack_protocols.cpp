// §2.4/§3.3 design-space reproduction: the time-vs-communication trade-off
// among the per-packet acknowledgement protocols the dissertation surveys
// (HERZBERG end-to-end / checkpoint / hop-by-hop, and PERLMAN_d), across
// path lengths.
//
// Expected shape (§3.3): end-to-end has optimal message complexity (one
// ack per packet) but detection time growing with the remaining path;
// hop-by-hop detects in O(1) hops but costs O(L) messages per packet;
// checkpoints interpolate. PERLMAN_d matches hop-by-hop's costs — and the
// dissertation separately shows it is not even accurate under collusion
// (see perlman_test.cpp).
#include <cstdio>
#include <memory>

#include "attacks/attacks.hpp"
#include "detection/herzberg.hpp"
#include "detection/perlman.hpp"
#include "routing/install.hpp"
#include "tests/detection/test_net.hpp"
#include "traffic/sources.hpp"

using namespace fatih;
using namespace fatih::detection;
using util::Duration;
using util::SimTime;

namespace {

struct Result {
  double acks_per_packet = 0;
  double detect_latency_ms = -1;
};

Result run_herzberg(std::size_t length, HerzbergConfig::Mode mode) {
  Result r;
  HerzbergConfig cfg;
  cfg.mode = mode;
  cfg.per_hop_bound = Duration::millis(5);
  cfg.checkpoint_spacing = 3;
  cfg.flow_id = 1;

  // Pass 1 (clean): steady-state ack overhead per data packet.
  {
    testing::LineNet line(length);
    routing::Path path;
    for (util::NodeId i = 0; i < length; ++i) path.push_back(i);
    HerzbergDetector det(line.net, line.keys, path, cfg);
    line.add_cbr(0, static_cast<util::NodeId>(length - 1), 1, 100, SimTime::from_seconds(0.1),
                 SimTime::from_seconds(2.9));
    line.net.sim().run_until(SimTime::from_seconds(4));
    r.acks_per_packet = static_cast<double>(det.ack_messages_sent()) /
                        static_cast<double>(det.data_packets_seen());
  }

  // Pass 2 (attacked): detection latency from attack onset.
  {
    testing::LineNet line(length);
    routing::Path path;
    for (util::NodeId i = 0; i < length; ++i) path.push_back(i);
    HerzbergDetector det(line.net, line.keys, path, cfg);
    line.add_cbr(0, static_cast<util::NodeId>(length - 1), 1, 100, SimTime::from_seconds(0.1),
                 SimTime::from_seconds(2.9));
    const util::NodeId villain = static_cast<util::NodeId>(length / 2);
    attacks::FlowMatch match;
    match.flow_ids = {1};
    line.net.router(villain).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
        match, 1.0, SimTime::from_seconds(1.5), 7));
    line.net.sim().run_until(SimTime::from_seconds(4));
    if (det.first_detection_time() < SimTime::infinity()) {
      r.detect_latency_ms =
          (det.first_detection_time() - SimTime::from_seconds(1.5)).to_millis();
    }
  }
  return r;
}

Result run_perlman(std::size_t length) {
  Result r;
  PerlmanConfig cfg;
  cfg.per_hop_bound = Duration::millis(5);
  cfg.flow_id = 1;

  {  // clean overhead pass
    testing::LineNet line(length);
    routing::Path path;
    for (util::NodeId i = 0; i < length; ++i) path.push_back(i);
    PerlmanDetector det(line.net, line.keys, path, cfg);
    std::size_t sent = 0;
    line.net.router(0).add_forward_tap(
        [&sent](const sim::Packet& p, util::NodeId, std::size_t, SimTime) {
          if (!p.is_control() && p.hdr.flow_id == 1) ++sent;
        });
    line.add_cbr(0, static_cast<util::NodeId>(length - 1), 1, 100, SimTime::from_seconds(0.1),
                 SimTime::from_seconds(2.9));
    line.net.sim().run_until(SimTime::from_seconds(4));
    r.acks_per_packet =
        static_cast<double>(det.ack_messages_sent()) / static_cast<double>(sent);
  }
  {  // attacked latency pass
    testing::LineNet line(length);
    routing::Path path;
    for (util::NodeId i = 0; i < length; ++i) path.push_back(i);
    PerlmanDetector det(line.net, line.keys, path, cfg);
    line.add_cbr(0, static_cast<util::NodeId>(length - 1), 1, 100, SimTime::from_seconds(0.1),
                 SimTime::from_seconds(2.9));
    const util::NodeId villain = static_cast<util::NodeId>(length / 2);
    attacks::FlowMatch match;
    match.flow_ids = {1};
    line.net.router(villain).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
        match, 1.0, SimTime::from_seconds(1.5), 7));
    line.net.sim().run_until(SimTime::from_seconds(4));
    if (!det.suspicions().empty()) {
      r.detect_latency_ms =
          (det.suspicions().front().interval.end - SimTime::from_seconds(1.5)).to_millis();
    }
  }
  return r;
}

}  // namespace

int main() {
  std::printf("== §3.3 trade-off: ack protocols, acks/packet and detection latency ==\n\n");
  std::printf("%-8s | %-22s | %-22s | %-22s | %-22s\n", "pathlen", "HERZBERG e2e",
              "HERZBERG checkpoint(3)", "HERZBERG hop-by-hop", "PERLMAN_d");
  std::printf("%-8s | %10s %11s | %10s %11s | %10s %11s | %10s %11s\n", "", "acks/pkt",
              "detect(ms)", "acks/pkt", "detect(ms)", "acks/pkt", "detect(ms)", "acks/pkt",
              "detect(ms)");
  for (std::size_t length : {4UL, 6UL, 8UL, 10UL}) {
    const Result e2e = run_herzberg(length, HerzbergConfig::Mode::kEndToEnd);
    const Result cp = run_herzberg(length, HerzbergConfig::Mode::kCheckpoint);
    const Result hop = run_herzberg(length, HerzbergConfig::Mode::kHopByHop);
    const Result perl = run_perlman(length);
    std::printf("%-8zu | %10.2f %11.1f | %10.2f %11.1f | %10.2f %11.1f | %10.2f %11.1f\n",
                length, e2e.acks_per_packet, e2e.detect_latency_ms, cp.acks_per_packet,
                cp.detect_latency_ms, hop.acks_per_packet, hop.detect_latency_ms,
                perl.acks_per_packet, perl.detect_latency_ms);
  }
  std::printf(
      "\nExpected shape (§3.3): acks/pkt constant (~1) for e2e, ~L/3 for\n"
      "checkpoints, ~L-1 for hop-by-hop and PERLMAN_d. Checkpoint detection\n"
      "latency stays roughly constant (bounded by the inter-checkpoint\n"
      "distance) while the source-timed variants grow with the path — the\n"
      "time/communication trade-off HERZBERG_optimal interpolates.\n");
  return 0;
}
