// Ablation: Pi(k+2) summary-exchange bandwidth under the three mechanisms
// the dissertation discusses — full fingerprint lists (§2.4.1
// conservation of content), subsampling (§5.2.1), and Appendix-A set
// reconciliation — at increasing traffic rates, with a 10%-dropper to
// confirm detection power is preserved.
#include <cstdio>
#include <memory>

#include "attacks/attacks.hpp"
#include "detection/pik2.hpp"
#include "tests/detection/test_net.hpp"

using namespace fatih;
using namespace fatih::detection;
using util::Duration;
using util::SimTime;

namespace {

struct Outcome {
  std::uint64_t bytes = 0;
  bool detected = false;
  bool clean_false_positive = false;
};

Outcome run(double pps, SummaryCompression compression, std::uint32_t sample_keep,
            bool attack) {
  testing::LineNet line(6, testing::fast_link(), attack ? 2 : 3);
  Pik2Config cfg;
  cfg.clock = RoundClock{SimTime::origin(), Duration::seconds(1)};
  cfg.k = 1;
  cfg.collect_settle = Duration::millis(150);
  cfg.exchange_timeout = Duration::millis(300);
  cfg.policy = TvPolicy::kContent;
  cfg.compression = compression;
  cfg.reconcile_bound = 48;
  cfg.sample_keep_per_256 = sample_keep;
  cfg.thresholds.max_lost_packets = 2;
  cfg.rounds = 6;
  Pik2Engine engine(line.net, line.keys, *line.paths, line.terminals(), cfg);
  line.add_cbr(0, 5, 1, pps, SimTime::from_seconds(0.05), SimTime::from_seconds(5.9));
  engine.start();
  if (attack) {
    attacks::FlowMatch match;
    match.flow_ids = {1};
    line.net.router(3).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
        match, 0.10, SimTime::from_seconds(2), 13));
  }
  line.net.sim().run_until(SimTime::from_seconds(8));
  Outcome out;
  out.bytes = engine.exchange_bytes();
  if (attack) {
    for (const auto& s : engine.suspicions()) {
      if (s.segment.contains(3)) out.detected = true;
    }
  } else {
    out.clean_false_positive = !engine.suspicions().empty();
  }
  return out;
}

}  // namespace

int main() {
  std::printf("== Pi(k+2) exchange bandwidth: full vs sampled vs Bloom vs reconciled ==\n\n");
  std::printf("%-8s | %-22s | %-22s | %-22s | %-22s\n", "pps", "full fingerprints",
              "sampled 1/4 (§5.2.1)", "Bloom digest (§2.4.1)", "reconciled (App. A)");
  std::printf("%-8s | %10s %11s | %10s %11s | %10s %11s | %10s %11s\n", "", "bytes/6rnd",
              "detects10%", "bytes/6rnd", "detects10%", "bytes/6rnd", "detects10%",
              "bytes/6rnd", "detects10%");
  for (double pps : {100.0, 400.0, 1000.0}) {
    const Outcome full = run(pps, SummaryCompression::kFull, 256, true);
    const Outcome samp = run(pps, SummaryCompression::kFull, 64, true);
    const Outcome bloom = run(pps, SummaryCompression::kBloom, 256, true);
    const Outcome recon = run(pps, SummaryCompression::kReconcile, 256, true);
    std::printf("%-8.0f | %10llu %11s | %10llu %11s | %10llu %11s | %10llu %11s\n", pps,
                static_cast<unsigned long long>(full.bytes), full.detected ? "yes" : "NO",
                static_cast<unsigned long long>(samp.bytes), samp.detected ? "yes" : "NO",
                static_cast<unsigned long long>(bloom.bytes), bloom.detected ? "yes" : "NO",
                static_cast<unsigned long long>(recon.bytes), recon.detected ? "yes" : "NO");
  }
  // Clean-run sanity: no mechanism may false-positive.
  bool any_fp = false;
  for (double pps : {100.0, 1000.0}) {
    any_fp |= run(pps, SummaryCompression::kFull, 256, false).clean_false_positive;
    any_fp |= run(pps, SummaryCompression::kFull, 64, false).clean_false_positive;
    any_fp |= run(pps, SummaryCompression::kBloom, 256, false).clean_false_positive;
    any_fp |= run(pps, SummaryCompression::kReconcile, 256, false).clean_false_positive;
  }
  std::printf("\nclean-run false positives across all mechanisms: %s\n",
              any_fp ? "SOME (unexpected)" : "none");
  std::printf("Expected shape: full summaries grow linearly with the rate;\n"
              "sampling divides by the sampling factor; Bloom costs ~1.25 B per\n"
              "packet (approximate diff); reconciliation is flat (O(d) per segment\n"
              "per round) — Appendix A's bandwidth optimality inside the protocol.\n");
  return 0;
}
