// Byzantine control-plane hardening matrix: {Pi2, Pi(k+2), chi} x
// {forgery, replay, equivocation, framing, collusion}. Each cell is an
// independent small deterministic scenario with the conviction layer
// attached; per cell the bench records
//   * whether the attack class was DETECTED (class-specific signal:
//     bad-MAC rejects for forgery, stale rejects for replay, an
//     equivocation-proof conviction, a forged-evidence conviction of the
//     accuser, or data-plane suspicions naming the colluders),
//   * whether the designated attacker was convicted, and
//   * the headline invariant: ZERO honest convictions — no cell's attack,
//     single liar or colluding pair, ever convicts a correct router.
// Emits BENCH_byzantine_control.json; `--smoke` asserts the invariants and
// skips the artifact (ctest's bench-smoke pass).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "attacks/attacks.hpp"
#include "attacks/byzantine.hpp"
#include "detection/chi.hpp"
#include "detection/evidence.hpp"
#include "detection/pi2.hpp"
#include "detection/pik2.hpp"
#include "obs/trace.hpp"
#include "routing/install.hpp"
#include "routing/spf.hpp"
#include "traffic/sources.hpp"

using namespace fatih;
using namespace fatih::detection;
using util::Duration;
using util::NodeId;
using util::SimTime;

namespace {

struct Cell {
  const char* protocol = "";
  const char* attack = "";
  bool detected = false;
  bool attacker_convicted = false;
  std::uint64_t honest_convictions = 0;
  ByzantineStats guard;
  std::uint64_t accusations_accepted = 0;
  std::size_t suspicions = 0;
};

/// Convictions naming anyone outside the cell's designated attacker set.
std::uint64_t honest_convictions(const ConvictionEngine& conv,
                                 std::initializer_list<NodeId> attackers) {
  std::uint64_t n = 0;
  for (const Conviction& c : conv.convictions()) {
    if (std::find(attackers.begin(), attackers.end(), c.accused) == attackers.end()) ++n;
  }
  return n;
}

bool convicted_with_basis(const ConvictionEngine& conv, NodeId who, const char* basis) {
  for (const Conviction& c : conv.convictions()) {
    if (c.accused == who && c.basis == basis) return true;
  }
  return false;
}

bool any_suspicion_contains(const std::vector<Suspicion>& suspicions, NodeId who) {
  return std::any_of(suspicions.begin(), suspicions.end(),
                     [who](const Suspicion& s) { return s.segment.contains(who); });
}

sim::LinkConfig cell_link(double metric = 1) {
  sim::LinkConfig l;
  l.bandwidth_bps = 1e8;
  l.delay = Duration::millis(2);
  l.queue_limit_bytes = 64000;
  l.metric = metric;
  return l;
}

// ------------------------------------------------------------------- Pi2
// r0-r1-r2-r3-r4 line (the data path) plus a high-cost spur r2-r5, so the
// flood gives r2 THREE router neighbors: enough independent precision-1
// witnesses for a quorum conviction when r2 emits attributable garbage.

constexpr double kPi2Epoch = 2.0;
constexpr double kPi2End = 9.5;

struct Pi2Cell {
  sim::Network net{91};
  crypto::KeyRegistry keys{4242};
  std::shared_ptr<routing::RoutingTables> tables;
  std::unique_ptr<PathCache> paths;
  std::unique_ptr<ConvictionEngine> conviction;
  std::unique_ptr<Pi2Engine> engine;
  std::vector<std::unique_ptr<traffic::CbrSource>> sources;
  RoundClock clock{SimTime::from_seconds(kPi2Epoch), Duration::seconds(1)};

  Pi2Cell() {
    for (int i = 0; i < 6; ++i) net.add_router(util::node_name(i));
    for (NodeId i = 0; i + 1 < 5; ++i) net.connect(i, i + 1, cell_link());
    net.connect(2, 5, cell_link(100));
    tables = std::make_shared<routing::RoutingTables>(routing::Topology::from_network(net));
    routing::install_static_routes(net, *tables);
    paths = std::make_unique<PathCache>(tables);
    for (NodeId i = 0; i < 6; ++i) {
      net.router(i).set_processing_delay(Duration::micros(20), Duration::micros(10));
    }
    conviction = std::make_unique<ConvictionEngine>(net, keys);

    Pi2Config cfg;
    cfg.clock = clock;
    cfg.k = 1;
    cfg.collect_settle = Duration::millis(200);
    cfg.evaluate_settle = Duration::millis(400);
    cfg.policy = TvPolicy::kContentOrder;
    cfg.thresholds.max_lost_packets = 2;
    cfg.rounds = 6;
    engine = std::make_unique<Pi2Engine>(net, keys, *paths, std::vector<NodeId>{0, 4}, cfg);
    engine->set_conviction_engine(conviction.get());
    engine->start();

    for (auto [src, dst, flow] :
         {std::tuple<NodeId, NodeId, std::uint32_t>{0, 4, 1}, {4, 0, 2}}) {
      traffic::CbrSource::Config c;
      c.src = src;
      c.dst = dst;
      c.flow_id = flow;
      c.rate_pps = 150;
      c.start = SimTime::from_seconds(kPi2Epoch);
      c.stop = SimTime::from_seconds(7.5);
      sources.push_back(std::make_unique<traffic::CbrSource>(net, c));
    }
  }

  Cell finish(const char* attack, std::initializer_list<NodeId> attackers) {
    net.sim().run_until(SimTime::from_seconds(kPi2End));
    Cell out;
    out.protocol = "pi2";
    out.attack = attack;
    out.honest_convictions = honest_convictions(*conviction, attackers);
    out.guard = engine->guard_stats();
    out.accusations_accepted = conviction->accusations_accepted();
    out.suspicions = engine->suspicions().size();
    return out;
  }
};

Cell pi2_forgery() {
  Pi2Cell c;
  attacks::ForgedControlInjector::Config fc;
  fc.at = 2;
  fc.victim = 1;
  fc.kind = kKindSummaryFlood;
  fc.segment = c.engine->monitored_by(1).front();
  fc.clock = c.clock;
  fc.start = SimTime::from_seconds(4.05);
  fc.period = Duration::seconds(1);
  fc.shots = 3;
  attacks::ForgedControlInjector inj(c.net, c.keys, fc);
  Cell out = c.finish("forgery", {2});
  // Three honest neighbors (r1, r3, r5) each reject the unverifiable copy
  // and vote against the hop that handed it over: a witness-quorum
  // conviction of the forger, with the claimed victim untouched.
  out.detected = out.guard.rejected_bad_mac > 0;
  out.attacker_convicted = convicted_with_basis(*c.conviction, 2, "witness-quorum");
  return out;
}

Cell pi2_replay() {
  Pi2Cell c;
  attacks::StaleReplayAttack::Config rc;
  rc.at = 2;
  rc.kinds = {kKindSummaryFlood};
  rc.delay = Duration::seconds(3);
  rc.active_from = SimTime::from_seconds(3.0);
  rc.max_captures = 8;
  attacks::StaleReplayAttack replay(c.net, rc);
  Cell out = c.finish("replay", {2});
  out.detected = out.guard.rejected_stale > 0 && replay.replayed() > 0;
  out.attacker_convicted = c.conviction->convicted(2);
  return out;
}

Cell pi2_equivocation() {
  Pi2Cell c;
  c.net.sim().schedule_at(SimTime::from_seconds(kPi2Epoch + 3.0 + 0.25), [&c] {
    SegmentSummary fake;
    fake.reporter = 2;
    fake.segment = c.engine->monitored_by(2).front();
    fake.round = 2;
    fake.content = {0xDEADu, 0xBEEFu, 0xF00Du};
    c.engine->inject_summary(2, fake);  // conflicts with the genuine flood
  });
  Cell out = c.finish("equivocation", {2});
  out.attacker_convicted = convicted_with_basis(*c.conviction, 2, "equivocation-proof");
  out.detected = out.attacker_convicted;
  return out;
}

Cell pi2_framing() {
  Pi2Cell c;
  attacks::FalseAccusationAttack::Config fc;
  fc.accusers = {1};
  fc.victim = 3;
  fc.detector = static_cast<std::uint8_t>(obs::TraceSource::kPi2);
  fc.clock = c.clock;
  fc.start = SimTime::from_seconds(4.1);
  fc.period = Duration::seconds(1);
  fc.shots = 3;
  fc.forge_evidence = true;
  attacks::FalseAccusationAttack framing(c.net, c.keys, *c.conviction, fc);
  Cell out = c.finish("framing", {1});
  // The fabricated proof cannot verify under the victim's key, and the
  // accusation is signed: shipping it convicts the accuser.
  out.attacker_convicted = convicted_with_basis(*c.conviction, 1, "forged-evidence");
  out.detected = out.attacker_convicted && !c.conviction->convicted(3);
  return out;
}

Cell pi2_collusion() {
  Pi2Cell c;
  attacks::FlowMatch match;
  match.flow_ids = {1};
  c.net.router(2).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 0.25, SimTime::from_seconds(4.0), 5));
  attacks::FalseAccusationAttack::Config fc;
  fc.accusers = {2, 3};  // the colluding pair deflects toward honest r1
  fc.victim = 1;
  fc.detector = static_cast<std::uint8_t>(obs::TraceSource::kPi2);
  fc.clock = c.clock;
  fc.start = SimTime::from_seconds(4.1);
  fc.period = Duration::seconds(1);
  fc.shots = 3;
  attacks::FalseAccusationAttack deflect(c.net, c.keys, *c.conviction, fc);
  Cell out = c.finish("collusion", {2, 3});
  // TV still catches the dropper; the pair's two votes stay below the
  // quorum of three, so their cover-up never convicts r1.
  out.detected = any_suspicion_contains(c.engine->suspicions(), 2) &&
                 !c.conviction->convicted(1);
  out.attacker_convicted = c.conviction->convicted(2) || c.conviction->convicted(3);
  return out;
}

// --------------------------------------------------------------- Pi(k+2)
// r0-r1-r2-r3-r4 line, terminals {0,4}: the 3-segment exchanges transit
// interior hops, which is what the tamper/replay cells compromise.

constexpr double kPik2Epoch = 2.0;
constexpr double kPik2End = 9.5;

struct Pik2Cell {
  sim::Network net{92};
  crypto::KeyRegistry keys{4243};
  std::shared_ptr<routing::RoutingTables> tables;
  std::unique_ptr<PathCache> paths;
  std::unique_ptr<ConvictionEngine> conviction;
  std::unique_ptr<Pik2Engine> engine;
  std::vector<std::unique_ptr<traffic::CbrSource>> sources;
  RoundClock clock{SimTime::from_seconds(kPik2Epoch), Duration::seconds(1)};

  Pik2Cell() {
    for (int i = 0; i < 5; ++i) net.add_router(util::node_name(i));
    for (NodeId i = 0; i + 1 < 5; ++i) net.connect(i, i + 1, cell_link());
    tables = std::make_shared<routing::RoutingTables>(routing::Topology::from_network(net));
    routing::install_static_routes(net, *tables);
    paths = std::make_unique<PathCache>(tables);
    for (NodeId i = 0; i < 5; ++i) {
      net.router(i).set_processing_delay(Duration::micros(20), Duration::micros(10));
    }
    conviction = std::make_unique<ConvictionEngine>(net, keys);

    Pik2Config cfg;
    cfg.clock = clock;
    cfg.k = 1;
    cfg.collect_settle = Duration::millis(200);
    cfg.exchange_timeout = Duration::millis(400);
    cfg.policy = TvPolicy::kContentOrder;
    cfg.thresholds.max_lost_packets = 2;
    cfg.rounds = 6;
    engine = std::make_unique<Pik2Engine>(net, keys, *paths, std::vector<NodeId>{0, 4}, cfg);
    engine->set_conviction_engine(conviction.get());
    engine->start();

    for (auto [src, dst, flow] :
         {std::tuple<NodeId, NodeId, std::uint32_t>{0, 4, 1}, {4, 0, 2}}) {
      traffic::CbrSource::Config c;
      c.src = src;
      c.dst = dst;
      c.flow_id = flow;
      c.rate_pps = 150;
      c.start = SimTime::from_seconds(kPik2Epoch);
      c.stop = SimTime::from_seconds(7.5);
      sources.push_back(std::make_unique<traffic::CbrSource>(net, c));
    }
  }

  Cell finish(const char* attack, std::initializer_list<NodeId> attackers) {
    net.sim().run_until(SimTime::from_seconds(kPik2End));
    Cell out;
    out.protocol = "pik2";
    out.attack = attack;
    out.honest_convictions = honest_convictions(*conviction, attackers);
    out.guard = engine->guard_stats();
    out.accusations_accepted = conviction->accusations_accepted();
    out.suspicions = engine->suspicions().size();
    return out;
  }
};

Cell pik2_forgery() {
  Pik2Cell c;
  attacks::ControlTamperAttack::Config tc;
  tc.kinds = {kKindSegmentSummary};
  tc.active_from = SimTime::from_seconds(4.0);
  tc.seed = 7;
  auto tamper = std::make_shared<attacks::ControlTamperAttack>(tc);
  c.net.router(2).set_forward_filter(tamper);
  Cell out = c.finish("forgery", {2});
  // The r1<->r3 exchange transits r2; the mutated copy fails its MAC at
  // the far end, and the missed exchange raises the segment containing r2.
  out.detected = out.guard.rejected_bad_mac > 0 && tamper->tampered() > 0 &&
                 any_suspicion_contains(c.engine->suspicions(), 2);
  out.attacker_convicted = c.conviction->convicted(2);
  return out;
}

Cell pik2_replay() {
  Pik2Cell c;
  attacks::StaleReplayAttack::Config rc;
  rc.at = 2;
  rc.kinds = {kKindSegmentSummary};
  rc.delay = Duration::seconds(3);
  rc.active_from = SimTime::from_seconds(4.0);
  rc.max_captures = 8;
  attacks::StaleReplayAttack replay(c.net, rc);
  Cell out = c.finish("replay", {2});
  out.detected = out.guard.rejected_stale > 0 && replay.replayed() > 0;
  out.attacker_convicted = c.conviction->convicted(2);
  return out;
}

Cell pik2_equivocation() {
  Pik2Cell c;
  c.net.sim().schedule_at(SimTime::from_seconds(kPik2Epoch + 3.0 + 0.3), [&c] {
    SegmentSummary fake;
    fake.reporter = 2;
    fake.segment = c.engine->monitored_by(2).front();
    fake.round = 2;
    fake.content = {0xDEADu, 0xBEEFu, 0xF00Du};
    c.engine->inject_summary(2, fake);  // conflicts with the genuine exchange
  });
  Cell out = c.finish("equivocation", {2});
  out.attacker_convicted = convicted_with_basis(*c.conviction, 2, "equivocation-proof");
  out.detected = out.attacker_convicted;
  return out;
}

Cell pik2_framing() {
  Pik2Cell c;
  attacks::FalseAccusationAttack::Config fc;
  fc.accusers = {3};
  fc.victim = 1;
  fc.detector = static_cast<std::uint8_t>(obs::TraceSource::kPik2);
  fc.clock = c.clock;
  fc.start = SimTime::from_seconds(4.1);
  fc.period = Duration::seconds(1);
  fc.shots = 3;
  fc.forge_evidence = true;
  attacks::FalseAccusationAttack framing(c.net, c.keys, *c.conviction, fc);
  Cell out = c.finish("framing", {3});
  out.attacker_convicted = convicted_with_basis(*c.conviction, 3, "forged-evidence");
  out.detected = out.attacker_convicted && !c.conviction->convicted(1);
  return out;
}

Cell pik2_collusion() {
  Pik2Cell c;
  attacks::FlowMatch match;
  match.flow_ids = {1};
  c.net.router(2).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 0.25, SimTime::from_seconds(4.0), 5));
  attacks::FalseAccusationAttack::Config fc;
  fc.accusers = {2, 3};
  fc.victim = 1;
  fc.detector = static_cast<std::uint8_t>(obs::TraceSource::kPik2);
  fc.clock = c.clock;
  fc.start = SimTime::from_seconds(4.1);
  fc.period = Duration::seconds(1);
  fc.shots = 3;
  attacks::FalseAccusationAttack deflect(c.net, c.keys, *c.conviction, fc);
  Cell out = c.finish("collusion", {2, 3});
  out.detected = any_suspicion_contains(c.engine->suspicions(), 2) &&
                 !c.conviction->convicted(1);
  out.attacker_convicted = c.conviction->convicted(2) || c.conviction->convicted(3);
  return out;
}

// ------------------------------------------------------------------- chi
// r0-r1-r2 line; the validator at r2 watches r1's queue toward r2, with
// r0 the reporting neighbor whose reports transit r1.

constexpr double kChiEpoch = 1.0;
constexpr double kChiEnd = 11.5;

struct ChiCell {
  sim::Network net{93};
  crypto::KeyRegistry keys{4244};
  std::shared_ptr<routing::RoutingTables> tables;
  std::unique_ptr<PathCache> paths;
  std::unique_ptr<ConvictionEngine> conviction;
  std::unique_ptr<ChiEngine> engine;
  QueueValidator* validator = nullptr;
  std::vector<std::unique_ptr<traffic::CbrSource>> sources;
  RoundClock clock{SimTime::from_seconds(kChiEpoch), Duration::seconds(1)};

  ChiCell() {
    for (int i = 0; i < 3; ++i) net.add_router(util::node_name(i));
    for (NodeId i = 0; i + 1 < 3; ++i) net.connect(i, i + 1, cell_link());
    tables = std::make_shared<routing::RoutingTables>(routing::Topology::from_network(net));
    routing::install_static_routes(net, *tables);
    paths = std::make_unique<PathCache>(tables);
    for (NodeId i = 0; i < 3; ++i) {
      net.router(i).set_processing_delay(Duration::micros(20), Duration::micros(10));
    }
    conviction = std::make_unique<ConvictionEngine>(net, keys);

    ChiConfig cfg;
    cfg.clock = clock;
    cfg.settle = Duration::millis(400);
    cfg.grace = Duration::millis(200);
    cfg.learning_rounds = 3;
    cfg.rounds = 9;
    engine = std::make_unique<ChiEngine>(net, keys, *paths, cfg);
    validator = &engine->monitor_queue(1, 2);
    engine->set_conviction_engine(conviction.get());
    engine->start();

    traffic::CbrSource::Config c;
    c.src = 0;
    c.dst = 2;
    c.flow_id = 1;
    c.rate_pps = 300;
    c.start = SimTime::from_seconds(kChiEpoch);
    c.stop = SimTime::from_seconds(10.5);
    sources.push_back(std::make_unique<traffic::CbrSource>(net, c));
  }

  Cell finish(const char* attack, std::initializer_list<NodeId> attackers) {
    net.sim().run_until(SimTime::from_seconds(kChiEnd));
    Cell out;
    out.protocol = "chi";
    out.attack = attack;
    out.honest_convictions = honest_convictions(*conviction, attackers);
    out.guard = validator->guard_stats();
    out.accusations_accepted = conviction->accusations_accepted();
    out.suspicions = validator->suspicions().size();
    return out;
  }
};

Cell chi_forgery() {
  ChiCell c;
  attacks::ControlTamperAttack::Config tc;
  tc.kinds = {kKindChiReport};
  tc.active_from = SimTime::from_seconds(5.5);
  tc.seed = 7;
  auto tamper = std::make_shared<attacks::ControlTamperAttack>(tc);
  c.net.router(1).set_forward_filter(tamper);
  Cell out = c.finish("forgery", {1});
  // r0's reports transit r1 and arrive unverifiable; the withheld report
  // raises {r0, r1} — the pair containing the tamperer.
  out.detected = out.guard.rejected_bad_mac > 0 && tamper->tampered() > 0 &&
                 any_suspicion_contains(c.validator->suspicions(), 1);
  out.attacker_convicted = c.conviction->convicted(1);
  return out;
}

Cell chi_replay() {
  ChiCell c;
  attacks::StaleReplayAttack::Config rc;
  rc.at = 1;
  rc.kinds = {kKindChiReport};
  rc.delay = Duration::seconds(3);
  rc.active_from = SimTime::from_seconds(5.5);
  rc.max_captures = 8;
  attacks::StaleReplayAttack replay(c.net, rc);
  Cell out = c.finish("replay", {1});
  // A replayed report is an honest signer's old statement: it is dropped
  // and counted, never converted into a suspicion of the signer.
  out.detected = out.guard.rejected_stale > 0 && replay.replayed() > 0;
  out.attacker_convicted = c.conviction->convicted(1);
  return out;
}

Cell chi_equivocation() {
  ChiCell c;
  c.net.sim().schedule_at(c.clock.interval_of(5).end + Duration::millis(200), [&c] {
    ChiReport fake;
    fake.reporter = 0;
    fake.queue_owner = 1;
    fake.queue_peer = 2;
    fake.round = 5;
    fake.part = 0;
    fake.parts = 1;
    ChiRecord junk;
    junk.fp = 0x123456789ULL;
    junk.size_bytes = 700;
    junk.flow_id = 3;
    junk.ts = c.clock.interval_of(5).begin + Duration::millis(10);
    fake.records.push_back(junk);
    c.validator->inject_report(0, fake);  // conflicts with r0's shipped part
  });
  Cell out = c.finish("equivocation", {0});
  out.attacker_convicted = convicted_with_basis(*c.conviction, 0, "equivocation-proof");
  out.detected = out.attacker_convicted;
  return out;
}

Cell chi_framing() {
  ChiCell c;
  const RoundClock clock = c.clock;
  // Lying neighbor r0 pads its report with phantom entries, trying to pin
  // "drops" on honest r1. Every unexplained drop traces back to r0's
  // report alone, so the suspicion names {r0, r1} — never r1 by itself —
  // and a single witness can't convict.
  c.validator->set_report_mutator(0, [clock](ChiReport& r) {
    if (r.round < 5 || r.part != 0) return true;
    for (std::uint32_t i = 0; i < 20; ++i) {
      ChiRecord phantom;
      phantom.fp = 0xF00D0000ULL + i;
      phantom.size_bytes = 900;
      phantom.flow_id = 7;
      phantom.ts = clock.interval_of(r.round).begin + Duration::millis(5 * (i + 1));
      r.records.push_back(phantom);
    }
    return true;
  });
  Cell out = c.finish("framing", {0});
  const auto& suspicions = c.validator->suspicions();
  out.detected = !suspicions.empty() &&
                 std::all_of(suspicions.begin(), suspicions.end(),
                             [](const Suspicion& s) { return s.segment.contains(0U); }) &&
                 !c.conviction->convicted(1);
  out.attacker_convicted = c.conviction->convicted(0);
  return out;
}

Cell chi_collusion() {
  ChiCell c;
  attacks::FalseAccusationAttack::Config fc;
  fc.accusers = {0, 2};
  fc.victim = 1;
  fc.detector = static_cast<std::uint8_t>(obs::TraceSource::kChi);
  fc.clock = c.clock;
  fc.start = SimTime::from_seconds(6.0);
  fc.period = Duration::seconds(1);
  fc.shots = 3;
  attacks::FalseAccusationAttack deflect(c.net, c.keys, *c.conviction, fc);
  Cell out = c.finish("collusion", {0, 2});
  // Both colluders' votes land in the ledger, but two distinct witnesses
  // stay below the quorum of three: the sandwiched honest router survives.
  out.detected = out.accusations_accepted >= 2 && !c.conviction->convicted(1);
  out.attacker_convicted = c.conviction->convicted(0) || c.conviction->convicted(2);
  return out;
}

// --------------------------------------------------------------- harness

void write_json(const std::vector<Cell>& cells) {
  std::uint64_t honest_total = 0;
  std::size_t detected_cells = 0;
  for (const Cell& c : cells) {
    honest_total += c.honest_convictions;
    detected_cells += c.detected ? 1 : 0;
  }
  std::ofstream f("BENCH_byzantine_control.json");
  f << "{\n"
    << "  \"bench\": \"byzantine_control\",\n"
    << "  \"scenario\": \"control-plane attack matrix {pi2, pik2, chi} x {forgery, replay, "
       "equivocation, framing, collusion}, conviction layer attached\",\n"
    << "  \"honest_convictions_total\": " << honest_total << ",\n"
    << "  \"cells_detected\": " << detected_cells << ",\n"
    << "  \"cells_total\": " << cells.size() << ",\n"
    << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    f << "    {\"protocol\": \"" << c.protocol << "\", \"attack\": \"" << c.attack
      << "\", \"detected\": " << (c.detected ? "true" : "false")
      << ", \"attacker_convicted\": " << (c.attacker_convicted ? "true" : "false")
      << ", \"honest_convictions\": " << c.honest_convictions
      << ", \"accepted\": " << c.guard.accepted
      << ", \"rejected_bad_mac\": " << c.guard.rejected_bad_mac
      << ", \"rejected_signer_mismatch\": " << c.guard.rejected_signer_mismatch
      << ", \"rejected_malformed\": " << c.guard.rejected_malformed
      << ", \"rejected_stale\": " << c.guard.rejected_stale
      << ", \"rejected_future\": " << c.guard.rejected_future
      << ", \"accusations_accepted\": " << c.accusations_accepted
      << ", \"suspicions\": " << c.suspicions << "}" << (i + 1 < cells.size() ? "," : "")
      << "\n";
  }
  f << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf("== Byzantine control plane: attack matrix vs conviction soundness ==\n\n");

  std::vector<Cell> cells;
  cells.push_back(pi2_forgery());
  cells.push_back(pi2_replay());
  cells.push_back(pi2_equivocation());
  cells.push_back(pi2_framing());
  cells.push_back(pi2_collusion());
  cells.push_back(pik2_forgery());
  cells.push_back(pik2_replay());
  cells.push_back(pik2_equivocation());
  cells.push_back(pik2_framing());
  cells.push_back(pik2_collusion());
  cells.push_back(chi_forgery());
  cells.push_back(chi_replay());
  cells.push_back(chi_equivocation());
  cells.push_back(chi_framing());
  cells.push_back(chi_collusion());

  std::printf("%-6s %-13s %-9s %-10s %-7s %s\n", "proto", "attack", "detected", "convicted",
              "honest", "rejects (mac/sign/mal/stale/fut)");
  for (const Cell& c : cells) {
    std::printf("%-6s %-13s %-9s %-10s %-7llu %llu/%llu/%llu/%llu/%llu\n", c.protocol, c.attack,
                c.detected ? "yes" : "NO", c.attacker_convicted ? "yes" : "no",
                static_cast<unsigned long long>(c.honest_convictions),
                static_cast<unsigned long long>(c.guard.rejected_bad_mac),
                static_cast<unsigned long long>(c.guard.rejected_signer_mismatch),
                static_cast<unsigned long long>(c.guard.rejected_malformed),
                static_cast<unsigned long long>(c.guard.rejected_stale),
                static_cast<unsigned long long>(c.guard.rejected_future));
  }

  bool ok = true;
  const auto check = [&ok](bool cond, const char* what) {
    if (!cond) {
      std::printf("SMOKE FAILURE: %s\n", what);
      ok = false;
    }
  };
  for (const Cell& c : cells) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s/%s: honest router convicted", c.protocol, c.attack);
    check(c.honest_convictions == 0, buf);
    std::snprintf(buf, sizeof(buf), "%s/%s: attack not detected", c.protocol, c.attack);
    check(c.detected, buf);
  }
  // The strong per-class guarantees: self-incriminating attacks convict
  // their author.
  const auto cell = [&cells](const char* proto, const char* attack) -> const Cell& {
    for (const Cell& c : cells) {
      if (std::strcmp(c.protocol, proto) == 0 && std::strcmp(c.attack, attack) == 0) return c;
    }
    static const Cell none;
    return none;
  };
  check(cell("pi2", "forgery").attacker_convicted, "pi2 forger escaped the witness quorum");
  for (const char* proto : {"pi2", "pik2", "chi"}) {
    check(cell(proto, "equivocation").attacker_convicted, "equivocator escaped its proof");
  }
  check(cell("pi2", "framing").attacker_convicted, "pi2 forged-evidence accuser escaped");
  check(cell("pik2", "framing").attacker_convicted, "pik2 forged-evidence accuser escaped");
  if (!ok) return 1;

  if (!smoke) {
    write_json(cells);
    std::printf("\nwrote BENCH_byzantine_control.json\n");
  }
  std::printf("\nExpected shape: every cell detects its attack class (MAC rejects for\n"
              "forgery, watermark rejects for replay, proofs for equivocation) and the\n"
              "headline holds — zero honest convictions: a single liar or a colluding\n"
              "pair can suspect but never convict a correct router.\n");
  return ok ? 0 : 1;
}
