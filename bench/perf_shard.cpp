// Sharded-engine macro benchmark: full Sprintlink (315 routers / 972
// links / 45 PoPs) under a many-flow traffic matrix, swept over worker
// thread counts {1, 2, 4, 8, 16}.
//
// The sharded engine's contract is that the StateDigest is worker-count
// invariant, so every timed run doubles as a differential check: any row
// whose digest diverges from the 1-thread baseline fails the bench. The
// speedup column is therefore an honest apples-to-apples ratio — same
// spec, same digests, different thread counts.
//
// `perf_shard --smoke` runs a seconds-scale subset (short horizon,
// threads {1, 2}) asserting the differential invariant; ctest runs it
// under the "bench" and "shard" labels. The full run emits
// BENCH_shard.json in the current directory. The JSON records
// hardware_threads: speedups saturate at the machine's core count, so a
// committed file from a small box shows flat rows — re-run on ≥8 cores
// to reproduce the scaling headline.
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "topo/generator.hpp"

using namespace fatih;

namespace {

constexpr std::int64_t kSecond = 1'000'000'000;

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Full-Sprintlink spec with a hub-to-hub traffic matrix: one CBR flow per
/// PoP pair drawn from a fixed stride pattern, plus the chi-feed flows the
/// registry scenarios use, all Pi(k+2)-monitored across five terminals.
scenario::ScenarioSpec shard_spec(std::int64_t duration_ns, std::size_t flow_count) {
  const topo::TopoParams params = topo::sprintlink();
  const topo::GeneratedTopology g = topo::generate(params);

  scenario::ScenarioSpec s;
  s.name = "perf_shard_sprintlink";
  s.topology = scenario::TopologyKind::kGenerated;
  s.topo.routers = params.routers;
  s.topo.links = params.links;
  s.topo.pops = params.pops;
  s.topo.max_degree = params.max_degree;
  s.topo.seed = params.seed;
  s.topo.intra_delay_ns = params.intra_delay_ns;
  s.topo.inter_delay_ns = params.inter_delay_ns;
  s.seed = 77;
  s.duration_ns = duration_ns;
  s.shards = 4;
  s.detector.kind = scenario::DetectorKind::kPik2;
  s.detector.tau_ns = kSecond;
  s.detector.rounds = duration_ns / kSecond;
  s.detector.terminals = {g.chi_feed, g.pop_hub[5], g.pop_hub[15], g.pop_hub[25],
                          g.pop_hub[35]};

  for (std::size_t i = 0; i < flow_count; ++i) {
    scenario::FlowSpec f;
    f.kind = scenario::FlowKind::kCbr;
    const std::uint32_t a = static_cast<std::uint32_t>(i) % g.pops();
    std::uint32_t b = (static_cast<std::uint32_t>(i) * 7 + 11) % g.pops();
    if (b == a) b = (b + 1) % g.pops();
    f.src = g.pop_hub[a];
    f.dst = g.pop_hub[b];
    f.flow_id = static_cast<std::uint32_t>(i) + 1;
    f.rate_mpps = (120 + 10 * (static_cast<std::int64_t>(i) % 8)) * 1000;  // 120-190 pps
    f.start_ns = 0;
    f.stop_ns = duration_ns;
    s.flows.push_back(f);
  }
  return s;
}

struct Row {
  unsigned threads = 0;
  double wall_s = 0.0;
  std::uint64_t dispatched = 0;
  [[nodiscard]] double events_per_sec() const {
    return wall_s > 0 ? static_cast<double>(dispatched) / wall_s : 0.0;
  }
};

struct Baseline {
  scenario::StateDigest digest{};
  std::vector<std::string> suspicions{};
};

/// One timed run; fills `base` on the first call and checks against it on
/// every later one. Returns false on digest divergence.
bool timed_run(const scenario::ScenarioSpec& spec, unsigned threads, Baseline& base,
               bool& have_base, Row& out) {
  const WallTimer timer;
  scenario::ScenarioRun run(spec, threads);
  run.run_to(run.end_time_ns());
  out.wall_s = timer.seconds();
  out.threads = threads;
  const scenario::StateDigest d = run.digest();
  out.dispatched = d.dispatched;
  if (!have_base) {
    base.digest = d;
    base.suspicions = run.suspicion_strings();
    have_base = true;
    return true;
  }
  if (!(d == base.digest) || run.suspicion_strings() != base.suspicions) {
    std::fprintf(stderr, "FATAL: digest diverged at %u threads\n", threads);
    return false;
  }
  return true;
}

void write_json(const scenario::ScenarioSpec& spec, long hw_threads,
                const std::vector<Row>& rows) {
  std::ofstream out("BENCH_shard.json", std::ios::binary | std::ios::trunc);
  out << "{\n";
  out << "  \"bench\": \"perf_shard\",\n";
  out << "  \"hardware_threads\": " << hw_threads << ",\n";
  out << "  \"scenario\": {\n";
  out << "    \"name\": \"" << spec.name << "\",\n";
  out << "    \"routers\": " << spec.topo.routers << ",\n";
  out << "    \"links\": " << spec.topo.links << ",\n";
  out << "    \"pops\": " << spec.topo.pops << ",\n";
  out << "    \"shards\": " << spec.shards << ",\n";
  out << "    \"flows\": " << spec.flows.size() << ",\n";
  out << "    \"duration_ns\": " << spec.duration_ns << "\n";
  out << "  },\n";
  out << "  \"digest_invariant\": true,\n";
  out << "  \"rows\": [";
  const double base_wall = rows.empty() ? 0.0 : rows.front().wall_s;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s\n    {\"threads\": %u, \"wall_s\": %.4f, \"events_per_sec\": %.4e, "
                  "\"speedup_vs_1\": %.3f}",
                  i == 0 ? "" : ",", r.threads, r.wall_s, r.events_per_sec(),
                  r.wall_s > 0 ? base_wall / r.wall_s : 0.0);
    out << buf;
  }
  out << "\n  ],\n";
  out << "  \"note\": \"digests byte-identical across every row; speedup saturates at "
         "hardware_threads — regenerate on a >=8-core machine for the scaling headline\"\n";
  out << "}\n";
}

int run(bool smoke) {
  const std::int64_t duration = smoke ? 1 * kSecond : 5 * kSecond;
  const std::size_t flows = smoke ? 12 : 45;
  const std::vector<unsigned> sweep =
      smoke ? std::vector<unsigned>{1, 2} : std::vector<unsigned>{1, 2, 4, 8, 16};
  const long hw_threads = sysconf(_SC_NPROCESSORS_ONLN);

  std::printf("== perf_shard%s: Sprintlink %u routers / %zu flows, %lld s sim, "
              "%ld hardware threads ==\n\n",
              smoke ? " (smoke)" : "", topo::sprintlink().routers, flows,
              static_cast<long long>(duration / kSecond), hw_threads);

  const scenario::ScenarioSpec spec = shard_spec(duration, flows);
  Baseline base;
  bool have_base = false;
  std::vector<Row> rows;
  for (unsigned threads : sweep) {
    Row r;
    if (!timed_run(spec, threads, base, have_base, r)) return 1;
    rows.push_back(r);
    std::printf("  %2u thread(s): wall=%.3fs  %.3e ev/s  speedup %.2fx\n", r.threads,
                r.wall_s, r.events_per_sec(),
                r.wall_s > 0 ? rows.front().wall_s / r.wall_s : 0.0);
  }
  if (base.digest.dispatched == 0 || base.digest.delivered == 0) {
    std::fprintf(stderr, "FATAL: bench scenario moved no traffic\n");
    return 1;
  }

  if (smoke) {
    std::printf("\nsmoke OK (digests byte-identical across the thread sweep)\n");
  } else {
    write_json(spec, hw_threads, rows);
    std::printf("\nwrote BENCH_shard.json\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  return run(smoke);
}
