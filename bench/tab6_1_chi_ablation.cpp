// Ablation of Protocol chi's design choices (the knobs DESIGN.md calls
// out): length of the trusted calibration period and the magnitude of the
// router's processing jitter. For each cell: the calibrated sigma, false
// alarms on a clean congested run, and whether the queue-90%-gated attack
// is still caught.
//
// Expected shape: more calibration tightens sigma estimates; more jitter
// widens sigma (costing single-packet sensitivity) but never costs
// correctness — detection degrades gracefully, false alarms stay at zero.
#include "bench/chi_fixture.hpp"

using namespace fatih;
using namespace fatih::bench;

namespace {

struct Cell {
  double sigma = 0;
  std::size_t false_alarms = 0;
  bool detects = false;
};

Cell run_cell(std::int64_t learning_rounds, Duration jitter) {
  Cell cell;
  {  // clean congested run
    ChiExperiment exp(false, 16, 607, learning_rounds);
    for (NodeId n : {exp.s1, exp.s2, exp.r, exp.rd}) {
      exp.net.router(n).set_processing_delay(Duration::micros(20), jitter);
    }
    exp.standard_traffic(true);
    exp.run();
    cell.sigma = exp.validator->sigma();
    for (const auto& rs : exp.validator->rounds()) {
      if (rs.alarmed) ++cell.false_alarms;
    }
  }
  {  // attacked run
    ChiExperiment exp(false, 16, 607, learning_rounds);
    for (NodeId n : {exp.s1, exp.s2, exp.r, exp.rd}) {
      exp.net.router(n).set_processing_delay(Duration::micros(20), jitter);
    }
    exp.standard_traffic(true);
    fatih::attacks::FlowMatch match;
    match.flow_ids = {1};
    exp.net.router(exp.r).set_forward_filter(
        std::make_shared<fatih::attacks::QueueThresholdDropAttack>(
            match, 0.9, 1.0, SimTime::from_seconds(learning_rounds + 3.0), 13));
    exp.run();
    for (const auto& rs : exp.validator->rounds()) {
      if (rs.alarmed && rs.round >= learning_rounds + 2) cell.detects = true;
    }
  }
  return cell;
}

}  // namespace

int main() {
  std::printf("== Protocol chi ablation: calibration length x processing jitter ==\n\n");
  std::printf("%-10s %-12s | %10s %12s %10s\n", "learnRnds", "jitter(us)", "sigma(B)",
              "falseAlarms", "catchesQ90");
  for (std::int64_t learning : {2L, 3L, 6L}) {
    for (std::int64_t jitter_us : {0L, 50L, 200L}) {
      const Cell cell = run_cell(learning, Duration::micros(jitter_us));
      std::printf("%-10lld %-12lld | %10.1f %12zu %10s\n",
                  static_cast<long long>(learning), static_cast<long long>(jitter_us),
                  cell.sigma, cell.false_alarms, cell.detects ? "yes" : "NO");
    }
  }
  std::printf("\nExpected: zero false alarms everywhere; sigma grows with jitter;\n"
              "the queue-gated attack stays detected across the sweep.\n");
  return 0;
}
