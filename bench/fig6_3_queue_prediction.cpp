// Figure 6.3 reproduction: simulation of Protocol chi's queue prediction.
// The prediction error X = qact - qpred is collected during a long
// calibration run under congestion-heavy traffic and shown as a histogram
// with a normality check — the dissertation's central-limit argument
// ("Indeed, this turns out to be the case", §6.2.1).
#include "bench/chi_fixture.hpp"

#include <vector>

#include "util/stats.hpp"

int main() {
  std::printf("== Figure 6.3: queue prediction error distribution ==\n\n");
  fatih::bench::ChiExperiment exp(/*red=*/false, /*rounds=*/20, /*seed=*/607,
                                  /*learning_rounds=*/18);
  std::vector<double> samples;
  exp.validator->set_error_sample_hook([&](double x) { samples.push_back(x); });
  exp.standard_traffic(/*heavy_congestion=*/true);
  exp.run();

  const auto& es = exp.validator->error_stats();
  std::printf("samples=%zu  mean=%.1fB  sigma=%.1fB  min=%.0fB  max=%.0fB\n\n", es.count(),
              es.mean(), es.stddev(), es.min(), es.max());

  const double lo = es.mean() - 4 * es.stddev() - 1;
  const double hi = es.mean() + 4 * es.stddev() + 1;
  fatih::util::Histogram hist(lo, hi, 33);
  for (double x : samples) hist.add(x);
  std::size_t peak = 1;
  for (std::size_t i = 0; i < hist.bins(); ++i) peak = std::max(peak, hist.bin_count(i));
  std::printf("%-12s %8s\n", "error(B)", "count");
  for (std::size_t i = 0; i < hist.bins(); ++i) {
    if (hist.bin_count(i) == 0) continue;
    const int bar = static_cast<int>(50.0 * static_cast<double>(hist.bin_count(i)) /
                                     static_cast<double>(peak));
    std::printf("%-12.0f %8zu  %.*s\n", hist.bin_center(i), hist.bin_count(i), bar,
                "##################################################");
  }
  std::printf("\nThe error concentrates in a tight band around zero (fractions of\n"
              "one packet), supporting the N(mu, sigma) model the detection tests\n"
              "are built on (dissertation §6.2.1).\n");
  return 0;
}
