// Figure 6.8 reproduction: Attack 3 — as attack 2 but triggered at 95%
// queue occupancy: an even finer margin between malice and congestion.
#include "bench/chi_fixture.hpp"

int main() {
  std::printf("== Figure 6.8: attack 3 - drop victims when queue >= 95%% full ==\n\n");
  fatih::bench::ChiExperiment exp(/*red=*/false, /*rounds=*/24);
  exp.standard_traffic(/*heavy_congestion=*/true);
  fatih::attacks::FlowMatch match;
  match.flow_ids = {1};
  exp.net.router(exp.r).set_forward_filter(
      std::make_shared<fatih::attacks::QueueThresholdDropAttack>(
          match, 0.95, 1.0, fatih::util::SimTime::from_seconds(8), 13));
  exp.run();
  exp.print_rounds(false);
  exp.print_verdict(/*attack_present=*/true, 8);
  return 0;
}
