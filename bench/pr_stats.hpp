// Shared |Pr| accounting for the Fig. 5.2 / 5.4 and Table 5.1 benches.
//
// Counts, for every router, how many distinct path-segments it must
// monitor under Protocol Pi2 (member of segment) and Protocol Pi(k+2)
// (end of segment), over the in-use shortest paths of a topology.
#pragma once

#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "routing/segments.hpp"
#include "routing/spf.hpp"
#include "routing/topologies.hpp"
#include "util/stats.hpp"

namespace fatih::bench {

struct PrStats {
  std::size_t max = 0;
  double average = 0;
  double median = 0;
};

struct PrCounts {
  std::vector<std::size_t> pi2;   // per router
  std::vector<std::size_t> pik2;  // per router
};

/// All-pairs in-use paths of a topology (computed once per topology).
inline std::vector<routing::Path> all_used_paths(const routing::Topology& topo) {
  const routing::RoutingTables tables(topo);
  std::vector<util::NodeId> terminals;
  for (util::NodeId n = 0; n < topo.node_count(); ++n) terminals.push_back(n);
  return tables.all_paths(terminals);
}

/// Enumerates segments once and attributes them to the routers that
/// monitor them (linear in total segment length, unlike calling
/// SegmentIndex::pr_* per router).
inline PrCounts count_pr(const std::vector<routing::Path>& paths, std::size_t node_count,
                         std::size_t k) {
  const routing::SegmentIndex index(paths, k);

  PrCounts counts;
  counts.pi2.assign(node_count, 0);
  counts.pik2.assign(node_count, 0);
  for (const auto& seg : index.all_pi2_segments()) {
    for (util::NodeId r : seg.nodes()) ++counts.pi2[r];
  }
  for (const auto& seg : index.all_pik2_segments()) {
    ++counts.pik2[seg.front()];
    if (seg.back() != seg.front()) ++counts.pik2[seg.back()];
  }
  return counts;
}

inline PrStats summarize(const std::vector<std::size_t>& per_router) {
  PrStats out;
  std::vector<double> xs;
  xs.reserve(per_router.size());
  double sum = 0;
  for (std::size_t c : per_router) {
    out.max = std::max(out.max, c);
    sum += static_cast<double>(c);
    xs.push_back(static_cast<double>(c));
  }
  out.average = xs.empty() ? 0 : sum / static_cast<double>(xs.size());
  out.median = util::median(xs).value_or(0);
  return out;
}

}  // namespace fatih::bench
