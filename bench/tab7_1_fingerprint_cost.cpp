// §7.1 "Computing Fingerprints": micro-benchmarks of the per-packet work
// the protocols add to the forwarding path — keyed fingerprinting (the
// UHASH-class cost the dissertation discusses), MAC computation, Bloom
// digest insertion, and characteristic-polynomial evaluation per packet.
#include <benchmark/benchmark.h>

#include "crypto/mac.hpp"
#include "crypto/siphash.hpp"
#include "validation/bloom.hpp"
#include "validation/fingerprint.hpp"
#include "validation/reconcile.hpp"

namespace {

using namespace fatih;

sim::Packet sample_packet(std::uint64_t i) {
  sim::Packet p;
  p.hdr.src = 1;
  p.hdr.dst = 9;
  p.hdr.flow_id = static_cast<std::uint32_t>(i & 0xFF);
  p.hdr.seq = static_cast<std::uint32_t>(i);
  p.hdr.proto = sim::Protocol::kTcp;
  p.size_bytes = 1000;
  p.payload_tag = i * 0x9E3779B97F4A7C15ULL;
  return p;
}

void BM_PacketFingerprint(benchmark::State& state) {
  constexpr crypto::SipKey key{11, 22};
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(validation::packet_fingerprint(key, sample_packet(i++)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PacketFingerprint);

void BM_PacketFingerprintBatch(benchmark::State& state) {
  // The SIMD-batched admission path: Arg selects the dispatch level
  // (0=scalar, 1=SSE2, 2=AVX2, 3=AVX-512); levels the CPU or build cannot
  // reach are skipped. Digests are identical across levels by construction
  // (siphash_batch_test pins that), so this table is pure throughput.
  constexpr crypto::SipKey key{11, 22};
  const auto cap = static_cast<crypto::SimdLevel>(state.range(0));
  const auto old_cap = crypto::set_simd_level_cap(cap);
  if (crypto::simd_level() != cap) {
    crypto::set_simd_level_cap(old_cap);
    state.SkipWithError("dispatch level unavailable on this CPU/build");
    return;
  }
  const validation::FingerprintHasher hasher(key);
  constexpr std::size_t kBlock = 1024;
  std::vector<validation::PacketInvariant> views;
  views.reserve(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    views.push_back(validation::PacketInvariant::from_packet(sample_packet(i)));
  }
  std::vector<validation::Fingerprint> digests(kBlock);
  for (auto _ : state) {
    hasher.hash_batch(views.data(), kBlock, digests.data());
    benchmark::DoNotOptimize(digests.data());
  }
  crypto::set_simd_level_cap(old_cap);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBlock));
}
BENCHMARK(BM_PacketFingerprintBatch)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_SipHashPayload(benchmark::State& state) {
  // Hashing a full payload of the given size (software fallback if header
  // fields alone are not enough).
  constexpr crypto::SipKey key{11, 22};
  std::vector<std::byte> payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::siphash24(key, payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SipHashPayload)->Arg(64)->Arg(256)->Arg(1000)->Arg(1500);

void BM_MacOverSummary(benchmark::State& state) {
  constexpr crypto::SipKey key{31, 32};
  std::vector<std::byte> summary(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::compute_mac(key, summary));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MacOverSummary)->Arg(1024)->Arg(16384);

void BM_BloomInsert(benchmark::State& state) {
  validation::BloomFilter filter(1 << 16, 4);
  std::uint64_t i = 0;
  for (auto _ : state) {
    filter.insert(i++ * 0x9E3779B97F4A7C15ULL);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BloomInsert);

void BM_CharPolyPerPacket(benchmark::State& state) {
  // Incremental characteristic-polynomial maintenance: one field
  // multiplication per evaluation point per packet.
  const auto points = validation::evaluation_points(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint64_t> acc(points.size(), 1);
  std::uint64_t i = 1;
  for (auto _ : state) {
    const std::uint64_t elem = validation::to_field(i++ * 0x9E3779B97F4A7C15ULL);
    for (std::size_t j = 0; j < points.size(); ++j) {
      acc[j] = validation::gf::mul(acc[j], validation::gf::sub(points[j], elem));
    }
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CharPolyPerPacket)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
