// Shared workloads for the perf_core benchmark.
//
// The micro scenarios are templated over the engine type so the same
// driver measures both the current pooled engine and the embedded copy of
// the legacy (priority_queue + unordered_map) engine it replaced; the
// macro scenario is the Abilene no-attack forwarding path, the substrate
// under every chapter-5/6 experiment. Wall time is the one place this
// project touches a real clock — simulated time stays bit-reproducible,
// and these numbers never feed back into any simulation.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/install.hpp"
#include "routing/spf.hpp"
#include "routing/topologies.hpp"
#include "sim/network.hpp"
#include "traffic/sources.hpp"
#include "util/time.hpp"

namespace fatih::bench {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

struct MicroResult {
  std::uint64_t events = 0;  ///< events dispatched
  double wall_s = 0.0;
  [[nodiscard]] double events_per_sec() const { return wall_s > 0 ? events / wall_s : 0.0; }
};

/// Pure schedule/dispatch churn: `chains` self-rescheduling timers run
/// until `total_events` have been dispatched. Exercises the slab reuse and
/// heap discipline with zero cancellations.
template <typename Engine>
MicroResult dispatch_churn(std::uint64_t total_events, std::size_t chains) {
  Engine sim;
  std::uint64_t dispatched = 0;
  struct Chain {
    Engine* sim;
    std::uint64_t* dispatched;
    std::uint64_t limit;
    util::Duration period;
    void fire() {
      if (++*dispatched >= limit) return;
      sim->schedule_in(period, [this] { fire(); });
    }
  };
  std::vector<Chain> cs(chains);
  for (std::size_t i = 0; i < chains; ++i) {
    cs[i] = Chain{&sim, &dispatched, total_events, util::Duration::micros(100 + i)};
    sim.schedule_at(util::SimTime::from_nanos(static_cast<std::int64_t>(i)),
                    [&c = cs[i]] { c.fire(); });
  }
  WallTimer t;
  sim.run();
  return MicroResult{dispatched, t.seconds()};
}

/// TCP-retransmit-style churn: each flow keeps one pending RTO timer that
/// every "ack" cancels and re-arms further out, so the vast majority of
/// scheduled events never fire. This is the workload that grew the legacy
/// engine's heap without bound (tombstone accumulation).
template <typename Engine>
MicroResult cancel_reschedule_churn(std::uint64_t total_acks, std::size_t flows) {
  Engine sim;
  std::uint64_t acks = 0;
  struct Flow {
    Engine* sim;
    std::uint64_t* acks;
    std::uint64_t limit;
    util::Duration ack_period;
    std::uint64_t rto = 0;
    bool rto_armed = false;
    void on_ack() {
      if (rto_armed) sim->cancel(rto);
      rto = sim->schedule_in(util::Duration::millis(200), [this] { rto_armed = false; });
      rto_armed = true;
      if (++*acks >= limit) return;
      sim->schedule_in(ack_period, [this] { on_ack(); });
    }
  };
  std::vector<Flow> fs(flows);
  for (std::size_t i = 0; i < flows; ++i) {
    fs[i] = Flow{&sim, &acks, total_acks, util::Duration::micros(50 + i)};
    fs[i].rto_armed = false;
    sim.schedule_at(util::SimTime::from_nanos(static_cast<std::int64_t>(i)),
                    [&f = fs[i]] { f.on_ack(); });
  }
  WallTimer t;
  sim.run();
  return MicroResult{acks, t.seconds()};
}

struct MacroResult {
  std::uint64_t forwarded = 0;   ///< router forward operations
  std::uint64_t delivered = 0;   ///< packets that reached their destination
  std::uint64_t dispatched = 0;  ///< simulator events
  double wall_s = 0.0;
  [[nodiscard]] double forwards_per_sec() const { return wall_s > 0 ? forwarded / wall_s : 0.0; }
  [[nodiscard]] double events_per_sec() const { return wall_s > 0 ? dispatched / wall_s : 0.0; }
};

/// The Abilene no-attack forwarding macro: 11 PoPs, static shortest-path
/// routes, bidirectional coast-to-coast and regional CBR flows, forward
/// taps installed on every router (the summary-generator attachment shape)
/// so the tap chain is part of what is measured.
///
/// Passing a sink/registry attaches the observability layer for the whole
/// run (the tracing-overhead measurement); the macro counts must come out
/// identical either way — tracing observes, it never perturbs.
inline MacroResult abilene_no_attack_macro(double sim_seconds, obs::TraceSink* sink = nullptr,
                                           obs::MetricsRegistry* metrics = nullptr) {
  sim::Network net{20260805};
  for (util::NodeId n = 0; n <= routing::kNewYork; ++n) {
    net.add_router(routing::abilene_name(n));
  }
  for (const auto& l : routing::abilene_links()) {
    sim::LinkConfig link;
    link.delay = util::Duration::millis(l.delay_ms);
    link.metric = l.delay_ms;
    link.bandwidth_bps = 1e9;
    link.queue_limit_bytes = 256000;
    net.connect(l.a, l.b, link);
  }
  routing::RoutingTables tables(routing::Topology::from_network(net));
  routing::install_static_routes(net, tables);
  for (util::NodeId n = 0; n <= routing::kNewYork; ++n) {
    net.router(n).set_processing_delay(util::Duration::micros(20), util::Duration::micros(10));
  }
  if (sink != nullptr || metrics != nullptr) net.attach_observability(sink, metrics);

  MacroResult out;
  for (util::NodeId n = 0; n <= routing::kNewYork; ++n) {
    net.router(n).add_forward_tap(
        [&out](const sim::Packet&, util::NodeId, std::size_t, util::SimTime) {
          ++out.forwarded;
        });
    net.router(n).add_local_handler(
        [&out](const sim::Packet&, util::NodeId, util::SimTime) { ++out.delivered; });
  }

  const std::pair<util::NodeId, util::NodeId> pairs[] = {
      {routing::kSeattle, routing::kNewYork},    {routing::kSunnyvale, routing::kWashington},
      {routing::kLosAngeles, routing::kAtlanta}, {routing::kDenver, routing::kChicago},
      {routing::kHouston, routing::kIndianapolis}};
  std::vector<std::unique_ptr<traffic::CbrSource>> sources;
  std::uint32_t flow = 1;
  for (const auto& [a, b] : pairs) {
    for (const auto& [src, dst] : {std::pair{a, b}, std::pair{b, a}}) {
      traffic::CbrSource::Config cfg;
      cfg.src = src;
      cfg.dst = dst;
      cfg.flow_id = flow++;
      cfg.payload_bytes = 960;
      cfg.rate_pps = 2000.0;
      cfg.start = util::SimTime::from_seconds(0.01);
      cfg.stop = util::SimTime::from_seconds(sim_seconds);
      sources.push_back(std::make_unique<traffic::CbrSource>(net, cfg));
    }
  }

  WallTimer t;
  net.sim().run_until(util::SimTime::from_seconds(sim_seconds + 1.0));
  out.wall_s = t.seconds();
  out.dispatched = net.sim().events_dispatched();
  return out;
}

}  // namespace fatih::bench
