// §6.4.3 reproduction: Protocol chi vs the static-threshold baseline.
//
// The dissertation's argument: any static loss threshold faces a dilemma —
//   * set it low enough to catch focused attacks and it false-positives
//     under ordinary congestion;
//   * set it high enough to be congestion-safe and focused attacks (SYN
//     dropping, queue-occupancy-gated dropping) sail through.
// Protocol chi, which predicts each congestive loss, does both jobs.
//
// Three scenarios on the same topology/traffic mix:
//   A: congestion only (no attack)      -> want NO alarms
//   B: SYN-drop attack under congestion -> want alarms
//   C: queue>=90% gated victim dropping -> want alarms
// Each static threshold T alarms when a round loses more than T packets.
#include "bench/chi_fixture.hpp"

#include "detection/threshold.hpp"

using namespace fatih;
using namespace fatih::bench;

namespace {

struct Outcome {
  std::size_t clean_false_alarm_rounds = 0;  // scenario A
  bool detects_syn = false;                  // scenario B
  bool detects_q90 = false;                  // scenario C
};

// Per-round loss counts for each scenario, captured once; thresholds are
// then evaluated offline against the same counts (exactly what a static
// detector would do), while chi runs its own verdicts in-line.
struct Scenario {
  std::vector<std::uint64_t> losses_per_round;   // observed at the queue
  std::vector<bool> chi_alarm_per_round;
  double attack_start = -1;
};

Scenario run_scenario(int which) {
  ChiExperiment exp(/*red=*/false, /*rounds=*/20, /*seed=*/1000 + which);
  exp.standard_traffic(/*heavy_congestion=*/true);
  std::unique_ptr<traffic::TcpFlow> victim;
  if (which == 1) {
    attacks::FlowMatch match;
    match.syn_only = true;
    exp.net.router(exp.r).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
        match, 1.0, util::SimTime::from_seconds(8), 13));
    victim = std::make_unique<traffic::TcpFlow>(exp.net, exp.s2, exp.rd, 50,
                                                traffic::TcpConfig{});
    victim->start(util::SimTime::from_seconds(9));
  } else if (which == 2) {
    attacks::FlowMatch match;
    match.flow_ids = {1};
    exp.net.router(exp.r).set_forward_filter(
        std::make_shared<attacks::QueueThresholdDropAttack>(
            match, 0.90, 1.0, util::SimTime::from_seconds(8), 13));
  }
  exp.run();
  Scenario out;
  out.attack_start = which == 0 ? -1 : 8;
  for (const auto& rs : exp.validator->rounds()) {
    out.losses_per_round.push_back(rs.drops);
    out.chi_alarm_per_round.push_back(rs.alarmed && rs.round >= 3);
  }
  return out;
}

}  // namespace

int main() {
  std::printf("== §6.4.3: Protocol chi vs static thresholds ==\n\n");
  const Scenario clean = run_scenario(0);
  const Scenario syn = run_scenario(1);
  const Scenario q90 = run_scenario(2);

  std::printf("%-22s %18s %12s %12s\n", "detector", "falseAlarms(clean)", "catchesSYN",
              "catchesQ90");
  for (std::uint64_t threshold : {5ULL, 10ULL, 25ULL, 50ULL, 100ULL, 250ULL, 500ULL}) {
    std::size_t fp = 0;
    for (std::size_t i = 3; i < clean.losses_per_round.size(); ++i) {
      if (clean.losses_per_round[i] > threshold) ++fp;
    }
    auto detects = [&](const Scenario& s) {
      // Attack drops add on top of congestion; a static detector flags a
      // round iff total losses exceed the threshold AFTER attack start,
      // but it would also have flagged pre-attack rounds the same way —
      // detection only counts if post-attack rounds exceed while matched
      // clean rounds would not (otherwise it is indistinguishable noise).
      bool any = false;
      for (std::size_t i = 8; i < s.losses_per_round.size(); ++i) {
        const std::uint64_t baseline =
            i < clean.losses_per_round.size() ? clean.losses_per_round[i] : 0;
        if (s.losses_per_round[i] > threshold && baseline <= threshold) any = true;
      }
      return any;
    };
    std::printf("static threshold %-5llu %18zu %12s %12s\n",
                static_cast<unsigned long long>(threshold), fp,
                detects(syn) ? "yes" : "NO", detects(q90) ? "yes" : "NO");
  }

  std::size_t chi_fp = 0;
  for (bool a : clean.chi_alarm_per_round) {
    if (a) ++chi_fp;
  }
  auto chi_detects = [](const Scenario& s) {
    for (std::size_t i = 8; i < s.chi_alarm_per_round.size(); ++i) {
      if (s.chi_alarm_per_round[i]) return true;
    }
    return false;
  };
  std::printf("%-22s %18zu %12s %12s\n", "Protocol chi", chi_fp,
              chi_detects(syn) ? "yes" : "NO", chi_detects(q90) ? "yes" : "NO");
  std::printf("\nExpected shape: every threshold row fails at least one column;\n"
              "the chi row is clean on the left and detects on the right.\n");
  return 0;
}
