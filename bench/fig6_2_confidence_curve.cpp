// Figure 6.2 reproduction: the confidence value of the single-packet-loss
// test, c_single = P(X <= qlimit - qpred - ps - mu) for X ~ N(0, sigma)
// — the probability that the queue had room for the dropped packet, i.e.
// that the drop was malicious.
//
// The curve is plotted against the predicted queue occupancy at the drop,
// for a 50,000-byte queue, a 1,000-byte packet, and several calibrated
// noise levels sigma.
#include <cstdio>

#include "util/stats.hpp"

int main() {
  std::printf("== Figure 6.2: single-packet-loss confidence curve ==\n\n");
  const double qlimit = 50000;
  const double ps = 1000;
  const double mu = 0;
  const double sigmas[] = {250, 1000, 4000};
  std::printf("%-12s", "qpred(B)");
  for (double s : sigmas) std::printf("  c(sigma=%-5.0f)", s);
  std::printf("\n");
  for (double qpred = 40000; qpred <= 50500; qpred += 500) {
    std::printf("%-12.0f", qpred);
    for (double sigma : sigmas) {
      const double headroom = qlimit - qpred - ps;
      std::printf("  %14.4f", fatih::util::normal_cdf((headroom - mu) / sigma));
    }
    std::printf("\n");
  }
  std::printf("\nReading: a drop with predicted occupancy well below qlimit-ps is\n"
              "malicious with near-certainty; the transition sharpens as the\n"
              "calibrated prediction noise sigma shrinks.\n");
  return 0;
}
