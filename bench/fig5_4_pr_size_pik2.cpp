// Figure 5.4 reproduction: size of Pr per router for Protocol Pi(k+2) as
// a function of k, on the same topologies as Fig. 5.2.
//
// Paper shape to match: values far below Pi2's (Fig. 5.2) because only
// segment ENDS monitor, and |Pr| is bounded by O(min(R^(k+1), N)) — it
// saturates as k grows (Sprintlink maxes out near ~350 and flattens).
#include <cstdio>

#include "bench/pr_stats.hpp"

using namespace fatih;
using namespace fatih::bench;

namespace {

void run(const routing::IspProfile& profile, std::uint64_t seed) {
  const routing::Topology topo = routing::synthetic_isp(profile, seed);
  std::printf("# %s: %zu routers, %zu links\n", profile.name.c_str(), topo.node_count(),
              topo.edge_count() / 2);
  const auto paths = all_used_paths(topo);
  std::printf("%-4s %10s %10s %10s\n", "k", "max|Pr|", "avg|Pr|", "med|Pr|");
  for (std::size_t k = 1; k <= 8; ++k) {
    const auto counts = count_pr(paths, topo.node_count(), k);
    const auto stats = summarize(counts.pik2);
    std::printf("%-4zu %10zu %10.1f %10.1f\n", k, stats.max, stats.average, stats.median);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== Figure 5.4: |Pr| per router under Protocol Pi(k+2) ==\n\n");
  run(routing::sprintlink_profile(), 42);
  run(routing::ebone_profile(), 42);
  return 0;
}
