// Frozen copy of the event engine this PR replaced (priority_queue +
// unordered_map<EventId, std::function>), kept verbatim from the seed so
// bench/perf_core can measure legacy-vs-pooled live in the same binary
// with identical compiler flags. Not used by any simulation code.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/time.hpp"

namespace fatih::bench {

using LegacyEventId = std::uint64_t;

/// The seed's event loop, API-compatible with the workloads in
/// perf_scenarios.hpp.
class LegacySimulator {
 public:
  LegacySimulator() = default;
  LegacySimulator(const LegacySimulator&) = delete;
  LegacySimulator& operator=(const LegacySimulator&) = delete;

  [[nodiscard]] util::SimTime now() const { return now_; }

  LegacyEventId schedule_at(util::SimTime t, std::function<void()> fn) {
    // Requests for the past run "now": simulated time never moves backward.
    if (t < now_) t = now_;
    const LegacyEventId id = next_id_++;
    queue_.push(Event{t, next_seq_++, id});
    callbacks_.emplace(id, std::move(fn));
    return id;
  }

  LegacyEventId schedule_in(util::Duration d, std::function<void()> fn) {
    return schedule_at(now_ + d, std::move(fn));
  }

  void cancel(LegacyEventId id) { callbacks_.erase(id); }

  void run_until(util::SimTime limit) {
    while (!queue_.empty()) {
      const Event ev = queue_.top();
      if (ev.at > limit) break;
      queue_.pop();
      auto it = callbacks_.find(ev.id);
      if (it == callbacks_.end()) continue;  // cancelled
      auto fn = std::move(it->second);
      callbacks_.erase(it);
      now_ = ev.at;
      ++dispatched_;
      fn();
    }
    if (limit != util::SimTime::infinity() && now_ < limit) now_ = limit;
  }

  void run() { run_until(util::SimTime::infinity()); }

  [[nodiscard]] std::uint64_t events_dispatched() const { return dispatched_; }

  /// Pending entries in the time queue, including tombstones — the stat
  /// that exhibits the unbounded growth the pooled engine fixes.
  [[nodiscard]] std::size_t queue_size() const { return queue_.size(); }

 private:
  struct Event {
    util::SimTime at;
    std::uint64_t seq;  // FIFO tie-break
    LegacyEventId id;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  util::SimTime now_;
  std::uint64_t next_seq_ = 0;
  LegacyEventId next_id_ = 1;
  std::uint64_t dispatched_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  std::unordered_map<LegacyEventId, std::function<void()>> callbacks_;
};

}  // namespace fatih::bench
