// Topology-churn resilience on Abilene: a correlated two-link flap severs
// the northern coast-to-coast path mid-experiment while Kansas City is
// compromised (drops 20% of the victim flow). Measures:
//   * reconvergence time for the failure and the repair (max over routers
//     of last_route_change minus the event time),
//   * detection rounds invalidated by the reconvergence (Pi(k+2)),
//   * detection latency before the flap and after the repair, and
//   * that no false suspicion is ever raised — every suspicion must name
//     the compromised router.
// Emits BENCH_churn.json in the current directory (run from the repo root
// to commit it). `--smoke` runs the same scenario, asserts the invariants,
// and skips the JSON artifact (ctest's bench-smoke pass).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <vector>

#include "attacks/attacks.hpp"
#include "detection/pik2.hpp"
#include "detection/route_epochs.hpp"
#include "detection/spec.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "routing/link_state.hpp"
#include "routing/topologies.hpp"
#include "sim/churn.hpp"
#include "traffic/sources.hpp"

using namespace fatih;
using namespace fatih::detection;
using util::Duration;
using util::NodeId;
using util::SimTime;

namespace {

constexpr double kAttackStartS = 12.0;
constexpr double kFlapDownS = 20.4;
constexpr double kFlapUpS = 24.4;
constexpr double kEndS = 31.0;

struct Outcome {
  double reconvergence_down_s = -1.0;
  double reconvergence_up_s = -1.0;
  std::uint64_t rounds_invalidated = 0;
  std::size_t epochs_pushed = 0;
  double detection_latency_before_s = -1.0;  ///< first KC suspicion - attack start
  double detection_latency_after_s = -1.0;   ///< first KC suspicion past repair - repair
  std::size_t suspicions_total = 0;
  std::size_t false_suspicions = 0;  ///< suspicions not naming Kansas City
};

Outcome run() {
  using namespace fatih::routing;
  sim::Network net{77};
  crypto::KeyRegistry keys{2025};

  // The bench is a thin consumer of the trace sink: reconvergence comes
  // from kRouteChange events, detection latency from kSuspicion events.
  // Per-packet categories are disabled so the ring retains the control-
  // plane story end to end.
  obs::TraceConfig tcfg;
  tcfg.capacity = 1 << 16;
  tcfg.enabled[static_cast<std::size_t>(obs::TraceCategory::kQueue)] = false;
  tcfg.enabled[static_cast<std::size_t>(obs::TraceCategory::kDrop)] = false;
  obs::TraceSink sink(tcfg);
  obs::MetricsRegistry metrics;
  net.attach_observability(&sink, &metrics);
  for (NodeId n = 0; n <= kNewYork; ++n) net.add_router(abilene_name(n));
  for (const auto& l : abilene_links()) {
    sim::LinkConfig link;
    link.delay = Duration::millis(l.delay_ms);
    link.metric = l.delay_ms;
    link.bandwidth_bps = 1e8;
    net.connect(l.a, l.b, link);
  }
  for (NodeId n = 0; n <= kNewYork; ++n) {
    net.router(n).set_processing_delay(Duration::micros(20), Duration::micros(10));
  }

  LinkStateConfig lcfg;
  lcfg.hello_interval = Duration::millis(200);
  lcfg.dead_interval = Duration::millis(800);
  lcfg.spf_delay = Duration::millis(100);
  lcfg.spf_hold = Duration::millis(200);
  lcfg.lsa_min_interval = Duration::millis(50);
  LinkStateRouting lsr(net, keys, lcfg);

  auto tables = std::make_shared<RoutingTables>(abilene_topology());
  PathCache paths(tables);
  RouteEpochKeeper keeper(net, lsr, paths, Duration::millis(1300));

  std::vector<double> changes;  ///< route-change times (s), for reconvergence
#if !FATIH_TRACE
  // Instrumentation compiled out: fall back to the direct hook so the
  // smoke invariants stay checkable in a -DFATIH_TRACE=0 build.
  lsr.add_route_change_hook(
      [&changes](NodeId, SimTime when) { changes.push_back(when.seconds()); });
#endif
  lsr.start();

  Pik2Config cfg;
  cfg.clock = RoundClock{SimTime::from_seconds(10), Duration::seconds(1)};
  cfg.k = 1;
  cfg.collect_settle = Duration::millis(200);
  cfg.exchange_timeout = Duration::millis(400);
  cfg.policy = TvPolicy::kContentOrder;
  cfg.thresholds.max_lost_packets = 2;
  cfg.rounds = 20;
  Pik2Engine engine(net, keys, paths, {kSunnyvale, kNewYork}, cfg);

  Outcome out;
#if !FATIH_TRACE
  engine.set_suspicion_handler([&out, &net](const Suspicion& s) {
    if (!s.segment.contains(kKansasCity)) return;
    const double now = net.sim().now().seconds();
    if (out.detection_latency_before_s < 0 && now < kFlapDownS) {
      out.detection_latency_before_s = now - kAttackStartS;
    }
    if (out.detection_latency_after_s < 0 && now > kFlapUpS) {
      out.detection_latency_after_s = now - kFlapUpS;
    }
  });
#endif
  engine.start();

  // Coast-to-coast traffic over the northern path, through Kansas City.
  std::vector<std::unique_ptr<traffic::CbrSource>> sources;
  for (auto [src, dst, flow] : {std::tuple<NodeId, NodeId, std::uint32_t>{kSunnyvale, kNewYork, 1},
                                {kNewYork, kSunnyvale, 2}}) {
    traffic::CbrSource::Config c;
    c.src = src;
    c.dst = dst;
    c.flow_id = flow;
    c.rate_pps = 200;
    c.start = SimTime::from_seconds(11);
    c.stop = SimTime::from_seconds(kEndS - 1);
    sources.push_back(std::make_unique<traffic::CbrSource>(net, c));
  }

  // Kansas City drops 20% of the victim flow.
  attacks::FlowMatch match;
  match.flow_ids = {1};
  net.router(kKansasCity)
      .set_forward_filter(std::make_shared<attacks::RateDropAttack>(
          match, 0.2, SimTime::from_seconds(kAttackStartS), 5));

  // Correlated fiber cut Sunnyvale—Denver—KansasCity (the northern path's
  // western half) down for 4 s; the reroute avoids Kansas City entirely.
  sim::ChurnSchedule churn;
  churn.srlg({{kSunnyvale, kDenver}, {kDenver, kKansasCity}}, SimTime::from_seconds(kFlapDownS),
             SimTime::from_seconds(kFlapUpS));
  churn.arm(net);

  net.sim().run_until(SimTime::from_seconds(kEndS));

#if FATIH_TRACE
  // Replay the trace instead of having installed bespoke hooks: route
  // changes carry the reconvergence story, and the i-th kSuspicion event
  // carries the raise time of the i-th engine suspicion (both append in
  // emit order, so the zip is exact).
  const obs::Timeline timeline(sink, routing::abilene_name);
  for (const auto& ev :
       timeline.select(obs::TraceCategory::kRoute, obs::TraceCode::kRouteChange)) {
    changes.push_back(ev.at.seconds());
  }
  const auto raised = timeline.select(obs::TraceCategory::kSuspicion);
#endif
  const auto& suspicions = engine.suspicions();
  for (std::size_t i = 0; i < suspicions.size(); ++i) {
    const Suspicion& s = suspicions[i];
    if (!s.segment.contains(kKansasCity)) {
      ++out.false_suspicions;
      std::printf("false suspicion: %s\n", s.to_string().c_str());
      continue;
    }
#if FATIH_TRACE
    if (i >= raised.size()) continue;
    const double when = raised[i].at.seconds();
    if (out.detection_latency_before_s < 0 && when < kFlapDownS) {
      out.detection_latency_before_s = when - kAttackStartS;
    }
    if (out.detection_latency_after_s < 0 && when > kFlapUpS) {
      out.detection_latency_after_s = when - kFlapUpS;
    }
#endif
  }

  const auto reconv = [&changes](double event, double window_end) {
    double last = -1.0;
    for (double t : changes) {
      if (t > event && t <= window_end) last = std::max(last, t - event);
    }
    return last;
  };
  out.reconvergence_down_s = reconv(kFlapDownS, kFlapDownS + 2.0);
  out.reconvergence_up_s = reconv(kFlapUpS, kFlapUpS + 2.0);
  out.rounds_invalidated = engine.counters().rounds_invalidated;
  out.epochs_pushed = keeper.epochs_pushed();
  out.suspicions_total = suspicions.size();
  return out;
}

void write_json(const Outcome& r) {
  std::ofstream f("BENCH_churn.json");
  f << "{\n"
    << "  \"bench\": \"churn\",\n"
    << "  \"scenario\": \"Abilene Pi(k+2), Kansas City drops 20% of flow 1 from t=12s; "
       "SRLG cut Sunnyvale-Denver-KansasCity at t=20.4s, repaired t=24.4s\",\n"
    << "  \"reconvergence_down_s\": " << r.reconvergence_down_s << ",\n"
    << "  \"reconvergence_up_s\": " << r.reconvergence_up_s << ",\n"
    << "  \"rounds_invalidated\": " << r.rounds_invalidated << ",\n"
    << "  \"epochs_pushed\": " << r.epochs_pushed << ",\n"
    << "  \"detection_latency_before_flap_s\": " << r.detection_latency_before_s << ",\n"
    << "  \"detection_latency_after_flap_s\": " << r.detection_latency_after_s << ",\n"
    << "  \"suspicions_total\": " << r.suspicions_total << ",\n"
    << "  \"false_suspicions\": " << r.false_suspicions << "\n"
    << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf("== Topology churn on Abilene: reconvergence vs detection ==\n\n");
  const Outcome r = run();
  std::printf("reconvergence (down): %.3f s\n", r.reconvergence_down_s);
  std::printf("reconvergence (up):   %.3f s\n", r.reconvergence_up_s);
  std::printf("epochs pushed:        %zu\n", r.epochs_pushed);
  std::printf("rounds invalidated:   %llu\n",
              static_cast<unsigned long long>(r.rounds_invalidated));
  std::printf("detection latency before flap: %.3f s\n", r.detection_latency_before_s);
  std::printf("detection latency after repair: %.3f s\n", r.detection_latency_after_s);
  std::printf("suspicions: %zu total, %zu false\n", r.suspicions_total, r.false_suspicions);

  bool ok = true;
  const auto check = [&ok](bool cond, const char* what) {
    if (!cond) {
      std::printf("SMOKE FAILURE: %s\n", what);
      ok = false;
    }
  };
  check(r.false_suspicions == 0, "a suspicion named a correct router");
  check(r.suspicions_total > 0, "attacker never suspected");
  check(r.rounds_invalidated > 0, "flap invalidated no rounds");
  check(r.epochs_pushed >= 2, "reconvergence pushed no epochs");
  check(r.reconvergence_down_s > 0, "no reroute after the cut");
  check(r.reconvergence_up_s > 0, "no reroute after the repair");
  check(r.detection_latency_before_s >= 0, "not detected before the flap");
  check(r.detection_latency_after_s >= 0, "not detected after the repair");
  if (!ok) return 1;

  if (!smoke) {
    write_json(r);
    std::printf("\nwrote BENCH_churn.json\n");
  }
  std::printf("\nExpected shape: both reconvergences complete within ~1.3 s (dead\n"
              "interval + SPF delay); the straddling rounds are invalidated rather\n"
              "than judged, so the flap produces zero false suspicions; detection\n"
              "pauses while traffic detours around Kansas City and resumes within a\n"
              "couple of rounds of the repair.\n");
  return 0;
}
