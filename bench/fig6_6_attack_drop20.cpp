// Figure 6.6 reproduction: Attack 1 — the compromised router drops 20% of
// the selected (victim) flow from t=8s. Expected: alarms in attack rounds,
// none before.
#include "bench/chi_fixture.hpp"

int main() {
  std::printf("== Figure 6.6: attack 1 - drop 20%% of the selected flow ==\n\n");
  fatih::bench::ChiExperiment exp(/*red=*/false, /*rounds=*/20);
  exp.standard_traffic(/*heavy_congestion=*/true);
  fatih::attacks::FlowMatch match;
  match.flow_ids = {1};
  exp.net.router(exp.r).set_forward_filter(
      std::make_shared<fatih::attacks::RateDropAttack>(
          match, 0.20, fatih::util::SimTime::from_seconds(8), 13));
  exp.run();
  exp.print_rounds(false);
  exp.print_verdict(/*attack_present=*/true, 8);
  return 0;
}
