// Figure 6.15 reproduction: RED attack 4 — only 5% of the victim flow,
// the finest-grained attack in the chapter.
#include "bench/chi_fixture.hpp"

int main() {
  std::printf("== Figure 6.15: RED attack 4 - drop 5%% of victims when avg > 45000B ==\n\n");
  fatih::bench::ChiExperiment exp(/*red=*/true, /*rounds=*/160);
  exp.standard_traffic(/*heavy_congestion=*/true);
  exp.add_cbr(exp.s1, 3, 400);
  fatih::attacks::FlowMatch match;
  match.flow_ids = {1};
  exp.net.router(exp.r).set_forward_filter(
      std::make_shared<fatih::attacks::RedAvgThresholdDropAttack>(
          match, 45000.0, 0.05, fatih::util::SimTime::from_seconds(8), 13));
  exp.run();
  exp.print_rounds(true);
  exp.print_verdict(/*attack_present=*/true, 8);
  return 0;
}
