// State-overhead comparison (dissertation §5.1.1 / §5.2.1 numbers):
// counters per router maintained by WATCHERS (7 per neighbor per
// destination), Protocol Pi2 (one counter per monitored segment, under the
// WATCHERS-equivalent conservation-of-flow summary) and Protocol Pi(k+2)
// (two counters per monitored segment, one per direction).
//
// Published reference points (measured Sprintlink map): WATCHERS ~13,605
// average / 99,225 max; Pi2 at k=2: 216 avg / 2,172 max; Pi(k+2) at k=2:
// 232 avg / 496 max; at k=7: 616 avg / 626 max. Our topology is a
// degree-matched synthetic graph, so the shape (orders of magnitude and
// the Pi(k+2) saturation) is the comparable quantity.
#include <algorithm>
#include <cstdio>

#include "bench/pr_stats.hpp"

using namespace fatih;
using namespace fatih::bench;

namespace {

void run(const routing::IspProfile& profile, std::uint64_t seed) {
  const routing::Topology topo = routing::synthetic_isp(profile, seed);
  const std::size_t n = topo.node_count();
  std::printf("# %s: %zu routers, %zu links\n", profile.name.c_str(), n,
              topo.edge_count() / 2);

  // WATCHERS: 7 counters x degree x destinations.
  double watchers_avg = 0;
  std::size_t watchers_max = 0;
  for (util::NodeId r = 0; r < n; ++r) {
    const std::size_t counters = 7 * topo.degree(r) * n;
    watchers_avg += static_cast<double>(counters);
    watchers_max = std::max(watchers_max, counters);
  }
  watchers_avg /= static_cast<double>(n);
  std::printf("%-22s %12s %12s\n", "protocol", "avg", "max");
  std::printf("%-22s %12.0f %12zu\n", "WATCHERS", watchers_avg, watchers_max);

  const auto paths = all_used_paths(topo);
  for (std::size_t k : {std::size_t{2}, std::size_t{7}}) {
    const auto counts = count_pr(paths, n, k);
    const auto pi2 = summarize(counts.pi2);
    const auto pik2 = summarize(counts.pik2);
    // One counter per directed monitored segment (the paper's "two
    // counters per path-segment, one for each direction" — our |Pr|
    // already counts the two directions separately).
    std::printf("Pi2     (k=%zu)         %12.0f %12zu\n", k, pi2.average, pi2.max);
    std::printf("Pi(k+2) (k=%zu)         %12.0f %12zu\n", k, pik2.average, pik2.max);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== Table (SS5.1.1/5.2.1): per-router counter state ==\n\n");
  run(routing::sprintlink_profile(), 42);
  run(routing::ebone_profile(), 42);
  return 0;
}
