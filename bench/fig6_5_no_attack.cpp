// Figure 6.5 reproduction: no attack. TCP + bursty UDP drive the
// drop-tail bottleneck into genuine congestive loss; Protocol chi must
// explain every drop and raise no alarms.
#include "bench/chi_fixture.hpp"

int main() {
  std::printf("== Figure 6.5: drop-tail bottleneck, no attack ==\n\n");
  fatih::bench::ChiExperiment exp(/*red=*/false, /*rounds=*/60);
  exp.standard_traffic(/*heavy_congestion=*/true);
  exp.run();
  exp.print_rounds(false);
  exp.print_verdict(/*attack_present=*/false, 0);
  return 0;
}
