// Control-plane resilience: Pi2 detection latency and control-byte
// overhead with and without the reliable (ack/retransmit) summary
// transport, at 0/5/20% uniform control-plane link loss. The scenario is
// the acceptance case from the robustness work: a 5-router line, r2
// drops 20% of the victim flow from t=1s, 1 s rounds, 4 rounds.
//
// Expected shape: with the channel off, summaries die with the lossy
// links and detection degrades or fails as loss grows; with it on,
// retransmissions buy back detection at the price of extra control
// bytes (payload retries + acks). Emits BENCH_reliable_control.json in
// the current directory (run from the repo root to commit it).
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "attacks/attacks.hpp"
#include "detection/pi2.hpp"
#include "detection/reliable.hpp"
#include "tests/detection/test_net.hpp"

using namespace fatih;
using namespace fatih::detection;
using util::Duration;
using util::SimTime;

namespace {

constexpr util::NodeId kAttacker = 2;
constexpr double kAttackStart = 1.0;

struct Outcome {
  double control_loss = 0.0;
  bool reliable = false;
  bool detected = false;
  double detection_latency_s = -1.0;  ///< first tv-failed naming r2, minus attack start
  std::uint64_t flood_copies = 0;
  std::uint64_t flood_bytes = 0;
  std::uint64_t channel_payload_bytes = 0;
  std::uint64_t channel_ack_bytes = 0;
  std::uint64_t channel_retransmits = 0;
  std::uint64_t channel_failures = 0;
  std::uint64_t withheld_suspicions = 0;
  std::uint64_t suspicions_total = 0;
};

Outcome run(double control_loss, bool reliable) {
  testing::LineNet line(5);
  Pi2Config cfg;
  cfg.clock = RoundClock{SimTime::origin(), Duration::seconds(1)};
  cfg.collect_settle = Duration::millis(150);
  cfg.evaluate_settle = Duration::millis(500);
  cfg.policy = TvPolicy::kContentOrder;
  cfg.rounds = 4;
  if (reliable) {
    cfg.reliable.enabled = true;
    cfg.reliable.initial_rto = Duration::millis(25);
    cfg.reliable.min_rto = Duration::millis(10);
    cfg.reliable.max_rto = Duration::millis(100);
    cfg.reliable.max_retries = 7;
  }
  Pi2Engine engine(line.net, line.keys, *line.paths, line.terminals(), cfg);
  line.add_cbr(0, 4, 1, 200, SimTime::from_seconds(0.05), SimTime::from_seconds(3.9));
  line.add_cbr(4, 0, 2, 150, SimTime::from_seconds(0.05), SimTime::from_seconds(3.9));
  Outcome out;
  out.control_loss = control_loss;
  out.reliable = reliable;
  engine.set_suspicion_handler([&out, &line](const Suspicion& s) {
    if (!out.detected && s.cause == "tv-failed" && s.segment.contains(kAttacker)) {
      out.detected = true;
      out.detection_latency_s = line.net.sim().now().seconds() - kAttackStart;
    }
  });
  engine.start();
  std::unique_ptr<attacks::ControlLinkFaults> faults;
  if (control_loss > 0) {
    attacks::ControlLinkFaults::Config loss;
    loss.drop_fraction = control_loss;
    loss.seed = 42;
    faults = std::make_unique<attacks::ControlLinkFaults>(line.net, loss);
  }
  attacks::FlowMatch match;
  match.flow_ids = {1};
  line.net.router(kAttacker).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 0.2, SimTime::from_seconds(kAttackStart), 99));
  line.net.sim().run_until(SimTime::from_seconds(6.5));
  out.flood_copies = engine.flood().copies_sent();
  out.flood_bytes = engine.flood().bytes_sent();
  if (engine.channel() != nullptr) {
    const auto& s = engine.channel()->stats();
    out.channel_payload_bytes = s.payload_bytes;
    out.channel_ack_bytes = s.ack_bytes;
    out.channel_retransmits = s.retransmits;
    out.channel_failures = s.failures;
  }
  out.suspicions_total = engine.suspicions().size();
  for (const auto& s : engine.suspicions()) {
    out.withheld_suspicions += s.cause == "withheld-summary";
  }
  return out;
}

void write_json(const std::vector<Outcome>& rows) {
  std::ofstream f("BENCH_reliable_control.json");
  f << "{\n"
    << "  \"bench\": \"reliable_control\",\n"
    << "  \"scenario\": \"line5 Pi2, r2 drops 20% of flow 1 from t=1s, "
       "1s rounds x4, uniform control-plane link loss\",\n"
    << "  \"configs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Outcome& r = rows[i];
    f << "    {\"control_loss\": " << r.control_loss
      << ", \"reliable\": " << (r.reliable ? "true" : "false")
      << ", \"detected\": " << (r.detected ? "true" : "false")
      << ", \"detection_latency_s\": " << r.detection_latency_s
      << ", \"flood_copies\": " << r.flood_copies << ", \"flood_bytes\": " << r.flood_bytes
      << ", \"channel_payload_bytes\": " << r.channel_payload_bytes
      << ", \"channel_ack_bytes\": " << r.channel_ack_bytes
      << ", \"channel_retransmits\": " << r.channel_retransmits
      << ", \"channel_failures\": " << r.channel_failures
      << ", \"withheld_summary_suspicions\": " << r.withheld_suspicions
      << ", \"suspicions_total\": " << r.suspicions_total << "}"
      << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
}

}  // namespace

int main() {
  std::printf("== Reliable control transport: Pi2 latency and overhead vs control loss ==\n\n");
  std::printf("%-6s | %-8s | %-8s | %-9s | %12s | %14s | %11s | %9s | %8s\n", "loss", "reliable",
              "detected", "latency_s", "flood bytes", "channel bytes", "retransmits", "failures",
              "withheld");
  std::vector<Outcome> rows;
  for (double loss : {0.0, 0.05, 0.2}) {
    for (bool reliable : {false, true}) {
      const Outcome r = run(loss, reliable);
      std::printf("%-6.2f | %-8s | %-8s | %9.3f | %12llu | %14llu | %11llu | %9llu | %8llu\n",
                  r.control_loss, r.reliable ? "on" : "off", r.detected ? "yes" : "NO",
                  r.detection_latency_s, static_cast<unsigned long long>(r.flood_bytes),
                  static_cast<unsigned long long>(r.channel_payload_bytes + r.channel_ack_bytes),
                  static_cast<unsigned long long>(r.channel_retransmits),
                  static_cast<unsigned long long>(r.channel_failures),
                  static_cast<unsigned long long>(r.withheld_suspicions));
      rows.push_back(r);
    }
  }
  write_json(rows);
  std::printf("\nwrote BENCH_reliable_control.json\n");
  std::printf("Expected shape: flood redundancy keeps the attacker detectable either\n"
              "way, but with the channel off, rising loss starves routers of summaries\n"
              "(withheld-summary counts grow: degraded, partial verdicts). With it on,\n"
              "retransmissions restore every summary; the cost is the retry+ack bytes.\n");
  return 0;
}
