// Figure 6.16 reproduction: RED attack 5 — SYN-targeting under RED. With
// the average below min_th the legitimate drop probability is exactly
// zero, so each dropped SYN is individually damning.
#include "bench/chi_fixture.hpp"

int main() {
  std::printf("== Figure 6.16: RED attack 5 - drop the victim's SYN packets ==\n\n");
  fatih::bench::ChiExperiment exp(/*red=*/true, /*rounds=*/20);
  exp.standard_traffic(/*heavy_congestion=*/false);
  fatih::attacks::FlowMatch match;
  match.syn_only = true;
  exp.net.router(exp.r).set_forward_filter(
      std::make_shared<fatih::attacks::RateDropAttack>(
          match, 1.0, fatih::util::SimTime::from_seconds(8), 13));
  fatih::traffic::TcpFlow victim(exp.net, exp.s2, exp.rd, 50, {});
  victim.start(fatih::util::SimTime::from_seconds(9));
  exp.run();
  exp.print_rounds(true);
  exp.print_verdict(/*attack_present=*/true, 9);
  std::printf("victim connected: %s after %u SYN retransmissions\n",
              victim.connected() ? "yes" : "NO", victim.syn_retransmits());
  return 0;
}
