// Figure 6.13 reproduction: RED attack 2 — threshold raised to 54,000
// bytes: the attacker only strikes when RED is already dropping
// aggressively (gentle region).
#include "bench/chi_fixture.hpp"

int main() {
  std::printf("== Figure 6.13: RED attack 2 - drop victims when avg queue > 54000B ==\n\n");
  fatih::bench::ChiExperiment exp(/*red=*/true, /*rounds=*/26);
  exp.standard_traffic(/*heavy_congestion=*/true);
  exp.add_cbr(exp.s1, 3, 500);
  fatih::attacks::FlowMatch match;
  match.flow_ids = {1};
  exp.net.router(exp.r).set_forward_filter(
      std::make_shared<fatih::attacks::RedAvgThresholdDropAttack>(
          match, 54000.0, 1.0, fatih::util::SimTime::from_seconds(8), 13));
  exp.run();
  exp.print_rounds(true);
  exp.print_verdict(/*attack_present=*/true, 8);
  return 0;
}
