// Figure 5.7 reproduction: "Fatih in progress" on the Abilene topology.
//
// Storyline (paper timings in parentheses):
//   * link-state routing converges from a cold start (~55 s with 10 s
//     hellos), after which a stable Sunnyvale-Denver-KansasCity-
//     Indianapolis-Chicago-NewYork path carries coast-to-coast traffic at
//     ~50 ms RTT (25 ms one-way);
//   * Fatih is commissioned with tau = 5 s validation rounds and k = 1;
//   * at t ~= 117 s the Kansas City router is compromised and drops 20%
//     of its transit traffic;
//   * the terminal routers of the monitored path-segments around Kansas
//     City detect at the end of the current validation round (~3 s),
//     flood signed alerts, and after the OSPF spf-delay (5 s) + hold
//     (10 s) the suspected segments are excluded (~135 s);
//   * traffic shifts to the southern path: RTT becomes ~56 ms (28 ms
//     one-way), and Kansas City keeps forwarding only traffic on paths
//     where no anomaly was observed.
#include <cstdio>
#include <map>
#include <vector>

#include "attacks/attacks.hpp"
#include "fatih/fatih.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "routing/topologies.hpp"
#include "traffic/sources.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

using namespace fatih;
using util::Duration;
using util::NodeId;
using util::SimTime;

int main() {
  std::printf("== Figure 5.7: Fatih timeline on Abilene ==\n\n");

  sim::Network net{20250707};
  crypto::KeyRegistry keys{555};

  // One recorder for the whole experiment: detections, alerts, reroutes
  // and the storyline markers all land in the trace sink, and the printed
  // timeline is a filtered replay (obs::Timeline) instead of bespoke
  // hook-built event vectors. Per-packet categories stay off so the ring
  // keeps the 200-second control-plane story.
  obs::TraceConfig tcfg;
  tcfg.capacity = 1 << 16;
  tcfg.enabled[static_cast<std::size_t>(obs::TraceCategory::kQueue)] = false;
  tcfg.enabled[static_cast<std::size_t>(obs::TraceCategory::kDrop)] = false;
  obs::TraceSink sink(tcfg);
  obs::MetricsRegistry metrics;
  net.attach_observability(&sink, &metrics);
  for (NodeId n = 0; n <= routing::kNewYork; ++n) net.add_router(routing::abilene_name(n));
  for (const auto& l : routing::abilene_links()) {
    sim::LinkConfig link;
    link.delay = Duration::millis(l.delay_ms);
    link.metric = l.delay_ms;
    link.bandwidth_bps = 1e8;
    net.connect(l.a, l.b, link);
  }

  // Paper-faithful control-plane timers.
  routing::LinkStateConfig lcfg;
  lcfg.hello_interval = Duration::seconds(10);
  lcfg.spf_delay = Duration::seconds(5);
  lcfg.spf_hold = Duration::seconds(10);
  routing::LinkStateRouting lsr(net, keys, lcfg);

  system::FatihConfig fcfg;
  fcfg.detection.clock = detection::RoundClock{SimTime::from_seconds(60), Duration::seconds(5)};
  fcfg.detection.k = 1;
  fcfg.detection.collect_settle = Duration::millis(400);
  fcfg.detection.exchange_timeout = Duration::seconds(1);
  fcfg.detection.thresholds.max_lost_fraction = 0.05;
  fcfg.detection.thresholds.max_lost_packets = 2;
  system::FatihSystem fatih(net, keys, lsr, fcfg);

  lsr.start();
  net.sim().schedule_at(SimTime::from_seconds(60), [&] {
    auto tables = std::make_shared<routing::RoutingTables>(routing::abilene_topology());
    std::vector<NodeId> terminals;
    for (NodeId n = 0; n <= routing::kNewYork; ++n) terminals.push_back(n);
    fatih.commission(tables, terminals);
    sink.annotate(net.sim().now(), "COMMISSION Fatih (tau=5s, k=1)");
  });

  // Coast-to-coast traffic crossing Kansas City.
  std::vector<std::unique_ptr<traffic::CbrSource>> sources;
  auto add_cbr = [&](NodeId src, NodeId dst, std::uint32_t flow, double pps) {
    traffic::CbrSource::Config c;
    c.src = src;
    c.dst = dst;
    c.flow_id = flow;
    c.rate_pps = pps;
    c.start = SimTime::from_seconds(62);
    c.stop = SimTime::from_seconds(198);
    sources.push_back(std::make_unique<traffic::CbrSource>(net, c));
  };
  add_cbr(routing::kSunnyvale, routing::kNewYork, 1, 150);
  add_cbr(routing::kNewYork, routing::kSunnyvale, 2, 150);
  add_cbr(routing::kLosAngeles, routing::kChicago, 3, 80);
  add_cbr(routing::kSeattle, routing::kWashington, 4, 80);

  // RTT probe New York <-> Sunnyvale (the plotted series).
  system::RttProbe probe(net, routing::kNewYork, routing::kSunnyvale, 900,
                         Duration::millis(500));
  probe.start(SimTime::from_seconds(62));

  // The attack: Kansas City drops 20% of transit traffic from t=117 s.
  attacks::FlowMatch match;  // all data traffic
  net.sim().schedule_at(SimTime::from_seconds(117), [&] {
    net.router(routing::kKansasCity)
        .set_forward_filter(std::make_shared<attacks::RateDropAttack>(
            match, 0.20, SimTime::from_seconds(117), 99));
    sink.annotate(net.sim().now(), "ATTACK KansasCity drops 20% transit");
  });

  net.sim().run_until(SimTime::from_seconds(200));

  // Convergence report.
  bool all_converged = true;
  for (NodeId n = 0; n <= routing::kNewYork; ++n) {
    if (!lsr.converged(n)) all_converged = false;
  }
  std::printf("routing converged on all 11 PoPs: %s\n\n", all_converged ? "yes" : "NO");

  // Filtered replay of the trace: every detection and storyline marker,
  // alerts at one representative router (Sunnyvale), and the post-alert
  // reroutes at the key western routers.
  std::vector<obs::TraceEvent> picked;
  for (const auto& ev : sink.events()) {
    switch (ev.category) {
      case obs::TraceCategory::kSuspicion:
      case obs::TraceCategory::kAnnotation:
        picked.push_back(ev);
        break;
      case obs::TraceCategory::kRoute:
        if (ev.code == obs::TraceCode::kAlertAccepted && ev.a == routing::kSunnyvale) {
          picked.push_back(ev);
        }
        if (ev.code == obs::TraceCode::kRouteChange &&
            (ev.a == routing::kSunnyvale || ev.a == routing::kDenver) &&
            ev.at > SimTime::from_seconds(100)) {
          picked.push_back(ev);
        }
        break;
      default:
        break;
    }
  }
  const obs::Timeline timeline(picked, routing::abilene_name);
  const auto entries = timeline.entries({obs::TraceCategory::kSuspicion,
                                         obs::TraceCategory::kAnnotation,
                                         obs::TraceCategory::kRoute});

  std::printf("-- event timeline --\n");
#if !FATIH_TRACE
  std::printf("  (tracing compiled out: timeline empty)\n");
#endif
  std::size_t printed = 0;
  for (const auto& ev : entries) {
    std::printf("t=%8.3fs  %s\n", ev.at.seconds(), ev.label.c_str());
    if (++printed > 40) {
      std::printf("  ... (%zu more events)\n", entries.size() - printed);
      break;
    }
  }

  // RTT series in 5-second buckets (the Fig. 5.7 latency curve).
  std::printf("\n-- RTT NewYork <-> Sunnyvale (5 s buckets) --\n");
  std::printf("%-10s %10s %8s\n", "t(s)", "rtt(ms)", "samples");
  std::map<int, util::RunningStats> buckets;
  for (const auto& s : probe.samples()) {
    buckets[static_cast<int>(s.when.seconds() / 5) * 5].add(s.rtt_seconds * 1000.0);
  }
  for (const auto& [t, stats] : buckets) {
    std::printf("%-10d %10.2f %8zu\n", t, stats.mean(), stats.count());
  }

  // Headline numbers, straight off the timeline.
  const auto first_detect = timeline.first(obs::TraceCategory::kSuspicion);
  const auto last_reroute =
      timeline.last(obs::TraceCategory::kRoute, obs::TraceCode::kRouteChange);
  const double detect_t = first_detect ? first_detect->at.seconds() : -1;
  const double reroute_t = last_reroute ? last_reroute->at.seconds() : -1;
  double rtt_before = 0;
  double rtt_after = 0;
  for (const auto& [t, stats] : buckets) {
    if (t >= 80 && t < 115) rtt_before = stats.mean();
    if (t >= 160) rtt_after = stats.mean();
  }
  std::printf("\n-- summary (paper reference in parens) --\n");
  std::printf("attack at t=117s; first detection at t=%.1fs  (paper: ~3s after attack)\n",
              detect_t);
  std::printf("last reroute at t=%.1fs                     (paper: ~135s)\n", reroute_t);
  std::printf("RTT before: %.1f ms (paper: 50 ms)   RTT after: %.1f ms (paper: 56 ms)\n",
              rtt_before, rtt_after);
  return 0;
}
