// Figure 6.9 reproduction: Attack 4 — target a host trying to open a
// connection by dropping its SYN packets. A tiny number of lost packets
// with an outsized effect (3 s+ retransmission timeouts); only per-packet
// precision catches it.
#include "bench/chi_fixture.hpp"

int main() {
  std::printf("== Figure 6.9: attack 4 - drop the victim's SYN packets ==\n\n");
  fatih::bench::ChiExperiment exp(/*red=*/false, /*rounds=*/20);
  exp.standard_traffic(/*heavy_congestion=*/false);  // light load: drops are unambiguous
  fatih::attacks::FlowMatch match;
  match.syn_only = true;
  exp.net.router(exp.r).set_forward_filter(
      std::make_shared<fatih::attacks::RateDropAttack>(
          match, 1.0, fatih::util::SimTime::from_seconds(8), 13));
  // Victim host tries to connect (and keeps retrying) from t=9s.
  fatih::traffic::TcpFlow victim(exp.net, exp.s2, exp.rd, 50, {});
  victim.start(fatih::util::SimTime::from_seconds(9));
  exp.run();
  exp.print_rounds(false);
  exp.print_verdict(/*attack_present=*/true, 9);
  std::printf("victim connected: %s after %u SYN retransmissions\n",
              victim.connected() ? "yes" : "NO", victim.syn_retransmits());
  return 0;
}
