// Figure 6.7 reproduction: Attack 2 — drop the selected flow only when
// the queue is 90% full, hiding inside plausible congestion. chi's
// per-packet occupancy prediction still sees ~10% headroom.
#include "bench/chi_fixture.hpp"

int main() {
  std::printf("== Figure 6.7: attack 2 - drop victims when queue >= 90%% full ==\n\n");
  fatih::bench::ChiExperiment exp(/*red=*/false, /*rounds=*/24);
  exp.standard_traffic(/*heavy_congestion=*/true);
  fatih::attacks::FlowMatch match;
  match.flow_ids = {1};
  exp.net.router(exp.r).set_forward_filter(
      std::make_shared<fatih::attacks::QueueThresholdDropAttack>(
          match, 0.90, 1.0, fatih::util::SimTime::from_seconds(8), 13));
  exp.run();
  exp.print_rounds(false);
  exp.print_verdict(/*attack_present=*/true, 8);
  return 0;
}
