// Scenario codec and registry: canonical round-trips, line-numbered
// rejection of malformed specs, and the builtin corpus invariants.
#include "scenario/registry.hpp"
#include "scenario/spec.hpp"

#include <gtest/gtest.h>

#include <set>

namespace fatih::scenario {
namespace {

TEST(SpecCodec, EveryBuiltinRoundTripsCanonically) {
  for (const ScenarioSpec& spec : builtin_scenarios()) {
    const std::string text = encode(spec);
    ScenarioSpec decoded;
    std::string error;
    ASSERT_TRUE(decode(text, decoded, error)) << spec.name << ": " << error;
    // Canonical form: decode(encode(s)) re-encodes byte-identically.
    EXPECT_EQ(encode(decoded), text) << spec.name;
    EXPECT_EQ(spec_hash(decoded), spec_hash(spec)) << spec.name;
  }
}

TEST(SpecCodec, ToleratesCommentsAndBlankLines) {
  const ScenarioSpec& spec = builtin_scenarios().front();
  std::string text = encode(spec);
  text.insert(text.find('\n') + 1, "# a comment\n\n");
  ScenarioSpec decoded;
  std::string error;
  ASSERT_TRUE(decode(text, decoded, error)) << error;
  EXPECT_EQ(encode(decoded), encode(spec));
}

TEST(SpecCodec, RejectsMissingHeader) {
  ScenarioSpec out;
  std::string error;
  EXPECT_FALSE(decode("name x\n", out, error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
}

TEST(SpecCodec, RejectsUnknownStatementWithLineNumber) {
  ScenarioSpec out;
  std::string error;
  EXPECT_FALSE(decode("scenario v1\nname x\nbogus 1\n", out, error));
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
}

TEST(SpecCodec, RejectsBadEnumAndBadInteger) {
  ScenarioSpec out;
  std::string error;
  EXPECT_FALSE(decode("scenario v1\nname x\ntopology moebius\n", out, error));
  EXPECT_FALSE(decode("scenario v1\nname x\nseed twelve\n", out, error));
}

TEST(SpecCodec, RejectsMissingName) {
  ScenarioSpec out;
  std::string error;
  EXPECT_FALSE(decode("scenario v1\nseed 1\n", out, error));
}

TEST(SpecCodec, HashDistinguishesScenarios) {
  std::set<std::uint64_t> hashes;
  for (const ScenarioSpec& spec : builtin_scenarios()) hashes.insert(spec_hash(spec));
  EXPECT_EQ(hashes.size(), builtin_scenarios().size());
}

TEST(Registry, SortedAndSearchable) {
  const auto& all = builtin_scenarios();
  ASSERT_FALSE(all.empty());
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].name, all[i].name);
  }
  EXPECT_EQ(find_scenario(all.front().name), &all.front());
  EXPECT_EQ(find_scenario("no_such_scenario"), nullptr);
}

TEST(Registry, CoversEveryProtocolAndTopology) {
  std::set<DetectorKind> detectors;
  std::set<TopologyKind> topologies;
  for (const ScenarioSpec& spec : builtin_scenarios()) {
    detectors.insert(spec.detector.kind);
    topologies.insert(spec.topology);
  }
  EXPECT_EQ(detectors.size(), 3u);
  EXPECT_EQ(topologies.size(), 4u);
}

}  // namespace
}  // namespace fatih::scenario
