// Checkpoint/restore robustness: run-to-T-then-restore must be
// byte-identical to a straight run for every protocol, and damaged
// snapshots must be rejected with the precise error, never half-restored.
#include "scenario/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "util/hash.hpp"

namespace fatih::scenario {
namespace {

void expect_same_result(const ScenarioResult& a, const ScenarioResult& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.spec_hash, b.spec_hash);
  EXPECT_EQ(a.forwarded, b.forwarded);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.dispatched, b.dispatched);
  EXPECT_EQ(a.final_digest, b.final_digest);
  EXPECT_EQ(a.suspicions, b.suspicions);
  ASSERT_EQ(a.checkpoints.size(), b.checkpoints.size());
  for (std::size_t i = 0; i < a.checkpoints.size(); ++i) {
    EXPECT_EQ(a.checkpoints[i], b.checkpoints[i]) << "checkpoint " << i;
  }
}

/// Rewrites the trailing checksum after a deliberate byte edit, so the
/// mutation reaches the check under test instead of tripping the
/// integrity check first.
void refresh_checksum(std::vector<std::uint8_t>& bytes) {
  const std::size_t body = bytes.size() - 8;
  const std::uint64_t sum = util::fnv1a64(bytes.data(), body);
  for (int i = 0; i < 8; ++i) {
    bytes[body + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(sum >> (8 * i));
  }
}

/// The three protocols' representative attack scenarios.
const char* kProtocolScenarios[] = {"line4_pi2_drop", "line4_pik2_drop",
                                    "chi_droptail_drop20"};

TEST(SnapshotRoundTrip, RestoreResumesByteIdenticallyForEveryProtocol) {
  for (const char* name : kProtocolScenarios) {
    SCOPED_TRACE(name);
    const ScenarioSpec* spec = find_scenario(name);
    ASSERT_NE(spec, nullptr);
    const ScenarioResult straight = run_scenario(*spec);

    // Run halfway, snapshot through the wire format, restore, finish.
    ScenarioRun half(*spec);
    half.run_to(half.end_time_ns() / 2);
    const std::vector<std::uint8_t> bytes = encode_snapshot(take_snapshot(half));

    ScenarioSnapshot decoded;
    SnapshotError error = SnapshotError::kNone;
    ASSERT_TRUE(decode_snapshot(bytes, decoded, error)) << snapshot_error_name(error);

    std::unique_ptr<ScenarioRun> restored;
    ASSERT_TRUE(restore_run(decoded, restored, error)) << snapshot_error_name(error);
    expect_same_result(restored->finish(), straight);

    // The run that was snapshotted also finishes identically.
    expect_same_result(half.finish(), straight);
  }
}

TEST(SnapshotRoundTrip, SnapshotCarriesSuspicionsRaisedSoFar) {
  const ScenarioSpec* spec = find_scenario("line4_pik2_drop");
  ASSERT_NE(spec, nullptr);
  ScenarioRun run(*spec);
  run.run_to(run.end_time_ns());
  const ScenarioSnapshot snap = take_snapshot(run);
  EXPECT_EQ(snap.suspicions, run.suspicion_strings());
  EXPECT_FALSE(snap.suspicions.empty());
  EXPECT_EQ(snap.digest.suspicion_count, snap.suspicions.size());
}

class SnapshotRejection : public ::testing::Test {
 protected:
  void SetUp() override {
    const ScenarioSpec* spec = find_scenario("line4_pik2_clean");
    ASSERT_NE(spec, nullptr);
    ScenarioRun run(*spec);
    run.run_to(1'500'000'000);
    snap_ = take_snapshot(run);
    bytes_ = encode_snapshot(snap_);
  }

  [[nodiscard]] SnapshotError decode_error(const std::vector<std::uint8_t>& bytes) const {
    ScenarioSnapshot out;
    SnapshotError error = SnapshotError::kNone;
    EXPECT_FALSE(decode_snapshot(bytes, out, error));
    return error;
  }

  ScenarioSnapshot snap_{};
  std::vector<std::uint8_t> bytes_{};
};

TEST_F(SnapshotRejection, TruncatedAtEveryPrefixLength) {
  for (const std::size_t keep : {std::size_t{0}, std::size_t{3}, std::size_t{16},
                                 bytes_.size() / 2, bytes_.size() - 1}) {
    std::vector<std::uint8_t> cut(bytes_.begin(),
                                  bytes_.begin() + static_cast<std::ptrdiff_t>(keep));
    ScenarioSnapshot out;
    SnapshotError error = SnapshotError::kNone;
    EXPECT_FALSE(decode_snapshot(cut, out, error)) << "kept " << keep;
    // Very short prefixes are kTruncated; longer ones may first fail the
    // checksum — either way the snapshot is refused.
    EXPECT_TRUE(error == SnapshotError::kTruncated ||
                error == SnapshotError::kChecksumMismatch)
        << snapshot_error_name(error);
  }
}

TEST_F(SnapshotRejection, BadMagic) {
  std::vector<std::uint8_t> bad = bytes_;
  bad[0] = 'X';
  EXPECT_EQ(decode_error(bad), SnapshotError::kBadMagic);
}

TEST_F(SnapshotRejection, CorruptedByteAnywhereFailsChecksum) {
  for (const std::size_t at : {std::size_t{5}, bytes_.size() / 3, bytes_.size() - 9}) {
    std::vector<std::uint8_t> bad = bytes_;
    bad[at] ^= 0x40;
    EXPECT_EQ(decode_error(bad), SnapshotError::kChecksumMismatch) << "byte " << at;
  }
}

TEST_F(SnapshotRejection, WrongVersionIsDetectedDistinctly) {
  std::vector<std::uint8_t> bad = bytes_;
  bad[4] = static_cast<std::uint8_t>(kSnapshotVersion + 1);
  // Recompute the trailer so the version check — not the integrity check —
  // is what rejects it.
  refresh_checksum(bad);
  EXPECT_EQ(decode_error(bad), SnapshotError::kBadVersion);
}

TEST_F(SnapshotRejection, UndecodableEmbeddedSpecRefusesRestore) {
  ScenarioSnapshot bad = snap_;
  bad.spec_text = "scenario v1\nbogus statement\n";
  std::unique_ptr<ScenarioRun> out;
  SnapshotError error = SnapshotError::kNone;
  EXPECT_FALSE(restore_run(bad, out, error));
  EXPECT_EQ(error, SnapshotError::kBadSpec);
  EXPECT_EQ(out, nullptr);
}

TEST_F(SnapshotRejection, MismatchedSpecDivergesOnReplay) {
  // A valid spec that is not the snapshotted one: replay reaches T with a
  // different digest and the restore must refuse to resume.
  ScenarioSnapshot bad = snap_;
  bad.spec_text = encode(*find_scenario("line4_pik2_drop"));
  std::unique_ptr<ScenarioRun> out;
  SnapshotError error = SnapshotError::kNone;
  EXPECT_FALSE(restore_run(bad, out, error));
  EXPECT_EQ(error, SnapshotError::kStateDiverged);
  EXPECT_EQ(out, nullptr);
}

TEST_F(SnapshotRejection, TamperedDigestDivergesOnReplay) {
  ScenarioSnapshot bad = snap_;
  bad.digest.forwarded ^= 1;
  std::unique_ptr<ScenarioRun> out;
  SnapshotError error = SnapshotError::kNone;
  EXPECT_FALSE(restore_run(bad, out, error));
  EXPECT_EQ(error, SnapshotError::kStateDiverged);
}

}  // namespace
}  // namespace fatih::scenario
