// Corpus codec and drift detection: deterministic JSON round-trips,
// golden-vs-fresh comparison policy, and checkpoint bisection localizing
// the first divergent round window.
#include "scenario/drift.hpp"

#include <gtest/gtest.h>

#include <string>

#include "scenario/corpus.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace fatih::scenario {
namespace {

Corpus small_corpus() {
  Corpus corpus;
  for (const char* name : {"line4_pik2_clean", "line4_pik2_drop"}) {
    const ScenarioSpec* spec = find_scenario(name);
    EXPECT_NE(spec, nullptr);
    corpus.upsert(to_record(run_scenario(*spec)));
  }
  return corpus;
}

TEST(CorpusCodec, JsonRoundTripsExactly) {
  const Corpus corpus = small_corpus();
  const std::string json = to_json(corpus);
  Corpus decoded;
  std::string error;
  ASSERT_TRUE(from_json(json, decoded, error)) << error;
  EXPECT_EQ(decoded.version, corpus.version);
  ASSERT_EQ(decoded.records.size(), corpus.records.size());
  for (std::size_t i = 0; i < corpus.records.size(); ++i) {
    EXPECT_EQ(decoded.records[i], corpus.records[i]) << corpus.records[i].name;
  }
  // Canonical: re-encoding reproduces the bytes.
  EXPECT_EQ(to_json(decoded), json);
}

TEST(CorpusCodec, RejectsMalformedJson) {
  Corpus out;
  std::string error;
  EXPECT_FALSE(from_json("", out, error));
  EXPECT_FALSE(from_json("{\"version\": 1", out, error));
  EXPECT_FALSE(from_json("{\"version\": 1, \"bogus\": 2}", out, error));
  EXPECT_FALSE(from_json("{\"version\": 1} trailing", out, error));
}

TEST(CorpusCodec, UpsertKeepsRecordsSortedAndReplaces) {
  Corpus corpus;
  CorpusRecord b;
  b.name = "bbb";
  CorpusRecord a;
  a.name = "aaa";
  corpus.upsert(b);
  corpus.upsert(a);
  ASSERT_EQ(corpus.records.size(), 2u);
  EXPECT_EQ(corpus.records[0].name, "aaa");
  a.forwarded = 7;
  corpus.upsert(a);
  ASSERT_EQ(corpus.records.size(), 2u);
  EXPECT_EQ(corpus.records[0].forwarded, 7u);
}

TEST(Drift, IdenticalCorporaAreClean) {
  const Corpus corpus = small_corpus();
  const DriftReport report = compare_corpus(corpus, corpus);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.compared, corpus.records.size());
}

TEST(Drift, FreshOnlyRecordsAreIgnored) {
  Corpus golden = small_corpus();
  Corpus fresh = golden;
  CorpusRecord probe;
  probe.name = "inject_crash";
  probe.status = "crash";
  fresh.upsert(probe);
  EXPECT_TRUE(compare_corpus(golden, fresh).clean());
}

TEST(Drift, MissingAndFailedFreshRecordsAreDrift) {
  const Corpus golden = small_corpus();
  Corpus fresh = golden;
  fresh.records.pop_back();
  DriftReport report = compare_corpus(golden, fresh);
  ASSERT_EQ(report.divergences.size(), 1u);
  EXPECT_NE(report.divergences[0].reason.find("missing"), std::string::npos);

  fresh = golden;
  fresh.records.back().status = "timeout";
  report = compare_corpus(golden, fresh);
  ASSERT_EQ(report.divergences.size(), 1u);
  EXPECT_NE(report.divergences[0].reason.find("timeout"), std::string::npos);
}

TEST(Drift, GoldenFailureRecordPinsTheFailureMode) {
  Corpus golden;
  CorpusRecord rec;
  rec.name = "inject_crash";
  rec.status = "crash";
  golden.upsert(rec);
  Corpus fresh = golden;
  EXPECT_TRUE(compare_corpus(golden, fresh).clean());
  fresh.records[0].status = "ok";
  EXPECT_FALSE(compare_corpus(golden, fresh).clean());
}

TEST(Drift, PerturbedScenarioIsFlaggedAndBisected) {
  const ScenarioSpec* base = find_scenario("line4_pik2_drop");
  ASSERT_NE(base, nullptr);
  Corpus golden;
  golden.upsert(to_record(run_scenario(*base)));

  // Same scenario name, attack armed a second later: histories agree up
  // to 1.5 s, so the checkpoints at 1 s match and the 2 s ones differ —
  // the bisection must pin the divergence to the (1 s, 2 s] round.
  ScenarioSpec perturbed = *base;
  ASSERT_EQ(perturbed.attacks.size(), 1u);
  perturbed.attacks[0].active_from_ns += 1'000'000'000;
  Corpus fresh;
  fresh.upsert(to_record(run_scenario(perturbed)));

  const DriftReport report = compare_corpus(golden, fresh);
  ASSERT_EQ(report.divergences.size(), 1u);
  const Divergence& d = report.divergences[0];
  EXPECT_EQ(d.name, base->name);
  ASSERT_TRUE(d.window.found) << d.reason;
  EXPECT_EQ(d.window.from_ns, 1'000'000'000);
  EXPECT_EQ(d.window.to_ns, 2'000'000'000);
}

TEST(Bisection, SyntheticTrails) {
  const auto cp = [](std::int64_t t, std::uint64_t digest) { return Checkpoint{t, digest}; };
  const std::vector<Checkpoint> golden = {cp(1, 10), cp(2, 20), cp(3, 30), cp(4, 40)};

  // Identical trails: no divergence.
  EXPECT_FALSE(first_divergent_window(golden, golden).found);

  // Diverges at the third checkpoint.
  DivergenceWindow w =
      first_divergent_window(golden, {cp(1, 10), cp(2, 20), cp(3, 31), cp(4, 41)});
  ASSERT_TRUE(w.found);
  EXPECT_EQ(w.from_ns, 2);
  EXPECT_EQ(w.to_ns, 3);

  // Diverges immediately: window opens at construction time.
  w = first_divergent_window(golden, {cp(1, 11)});
  ASSERT_TRUE(w.found);
  EXPECT_EQ(w.from_ns, 0);
  EXPECT_EQ(w.to_ns, 1);

  // Agreeing prefix, one trail longer: divergence at the first extra entry.
  w = first_divergent_window(golden, {cp(1, 10), cp(2, 20)});
  ASSERT_TRUE(w.found);
  EXPECT_EQ(w.from_ns, 2);
  EXPECT_EQ(w.to_ns, 3);

  // Empty vs empty: nothing to say.
  EXPECT_FALSE(first_divergent_window({}, {}).found);

  // Non-monotone disagreement (a corrupted corpus, not a real replay —
  // only the middle checkpoint differs): the linear fallback must still
  // localize the first divergence instead of reporting no window.
  w = first_divergent_window(golden, {cp(1, 10), cp(2, 21), cp(3, 30), cp(4, 40)});
  ASSERT_TRUE(w.found);
  EXPECT_EQ(w.from_ns, 1);
  EXPECT_EQ(w.to_ns, 2);
}

TEST(Drift, DescribeMentionsWindowAndName) {
  Corpus golden = small_corpus();
  Corpus fresh = golden;
  fresh.records[0].final_digest ^= 1;
  const DriftReport report = compare_corpus(golden, fresh);
  const std::string text = describe(report);
  EXPECT_NE(text.find(fresh.records[0].name), std::string::npos) << text;
  EXPECT_NE(describe(DriftReport{}).find("clean"), std::string::npos);
}

}  // namespace
}  // namespace fatih::scenario
