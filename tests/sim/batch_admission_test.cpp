// Batched queue admission and the idle-transmitter fast path: the
// semantics of enqueue_batch / pass_through / Interface::send_batch must
// be indistinguishable from per-packet admission (same verdicts, same
// arrival times), and the rearm_current scheduling primitive must fire at
// exactly the times repeated schedule_in calls would.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/queue.hpp"
#include "sim/simulator.hpp"

namespace fatih::sim {
namespace {

using util::Duration;
using util::NodeId;
using util::SimTime;

Packet packet_of(std::uint32_t size, std::uint64_t uid = 0) {
  Packet p;
  p.size_bytes = size;
  p.uid = uid;
  return p;
}

TEST(DropTailQueue, PassThroughOnlyWhenEmptyAndFitting) {
  DropTailQueue q(2000);
  EXPECT_TRUE(q.pass_through(packet_of(1000), {}));
  EXPECT_TRUE(q.pass_through(packet_of(2000), {}));  // exact fit
  EXPECT_FALSE(q.pass_through(packet_of(2001), {}));
  // Control packets bypass the byte limit, exactly as enqueue admits them.
  Packet ctl = packet_of(5000);
  ctl.hdr.proto = Protocol::kControl;
  EXPECT_TRUE(q.pass_through(ctl, {}));
  // Occupied queue: never pass through (FIFO order would be violated).
  q.enqueue(packet_of(100), {});
  EXPECT_FALSE(q.pass_through(packet_of(100), {}));
}

TEST(DropTailQueue, EnqueueBatchMatchesSequentialEnqueue) {
  // Same offers through both paths must give identical verdicts and
  // identical final queue state.
  std::vector<Packet> offers;
  for (std::uint64_t i = 0; i < 10; ++i) {
    offers.push_back(packet_of(i % 3 == 2 ? 1500 : 400, i));
  }
  DropTailQueue seq(3000);
  std::vector<EnqueueResult> want;
  for (const auto& p : offers) want.push_back(seq.enqueue(p, {}));

  DropTailQueue batched(3000);
  std::vector<EnqueueResult> got(offers.size());
  batched.enqueue_batch(offers, {}, got.data());
  EXPECT_EQ(got, want);
  EXPECT_EQ(batched.byte_length(), seq.byte_length());
  EXPECT_EQ(batched.packet_count(), seq.packet_count());
  // Surviving packets come out in the same order.
  for (;;) {
    auto a = seq.dequeue({});
    auto b = batched.dequeue({});
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a.has_value()) break;
    EXPECT_EQ(a->uid, b->uid);
  }
}

// Two routers connected by one duplex link (same shape as network_test).
struct Pair {
  Network net{1};
  Router* a;
  Router* b;

  explicit Pair(LinkConfig cfg = {}) {
    a = &net.add_router("a");
    b = &net.add_router("b");
    net.connect(a->id(), b->id(), cfg);
    a->set_route(b->id(), 0);
    b->set_route(a->id(), 0);
    a->set_processing_delay(Duration::micros(10), {});
    b->set_processing_delay(Duration::micros(10), {});
  }

  Packet make(NodeId src, NodeId dst, std::uint32_t payload) {
    PacketHeader hdr;
    hdr.src = src;
    hdr.dst = dst;
    return net.make_packet(hdr, payload);
  }
};

TEST(Interface, SendBatchMatchesSequentialSendTiming) {
  // The same burst, shipped via send_batch on one network and via N
  // individual sends on another, must arrive at identical times and in
  // identical order.
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e6;
  cfg.delay = Duration::millis(1);

  auto run = [&](bool batched) {
    Pair p(cfg);
    std::vector<std::pair<std::uint64_t, SimTime>> arrivals;
    p.b->add_local_handler([&](const Packet& pkt, NodeId, SimTime now) {
      arrivals.emplace_back(pkt.uid, now);
    });
    p.net.sim().schedule_at(SimTime::origin(), [&] {
      std::vector<Packet> burst;
      for (int i = 0; i < 5; ++i) burst.push_back(p.make(p.a->id(), p.b->id(), 960));
      Interface* out = p.a->interface_to(p.b->id());
      if (batched) {
        std::vector<EnqueueResult> results(burst.size());
        out->send_batch(burst, results.data());
        for (const auto r : results) EXPECT_EQ(r, EnqueueResult::kAccepted);
      } else {
        for (const auto& pkt : burst) EXPECT_EQ(out->send(pkt), EnqueueResult::kAccepted);
      }
    });
    p.net.sim().run();
    return arrivals;
  };

  const auto sequential = run(false);
  const auto batched = run(true);
  ASSERT_EQ(sequential.size(), 5u);
  // uids differ between the two networks (independent counters), but the
  // arrival times and relative order must match exactly.
  ASSERT_EQ(batched.size(), sequential.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(batched[i].second, sequential[i].second) << "packet " << i;
  }
}

TEST(Interface, SendBatchDropsOverflowTail) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e6;
  cfg.delay = Duration::millis(1);
  cfg.queue_limit_bytes = 2000;  // room for exactly two 1000-byte packets
  Pair p(cfg);
  std::size_t delivered = 0;
  p.b->add_local_handler([&](const Packet&, NodeId, SimTime) { ++delivered; });
  std::vector<EnqueueResult> results(6);
  p.net.sim().schedule_at(SimTime::origin(), [&] {
    std::vector<Packet> burst;
    for (int i = 0; i < 6; ++i) burst.push_back(p.make(p.a->id(), p.b->id(), 960));
    p.a->interface_to(p.b->id())->send_batch(burst, results.data());
  });
  p.net.sim().run();
  // A batch is admitted in one instant, before the transmitter drains
  // anything, so the byte limit caps the whole burst at two packets —
  // identical to six back-to-back sends at the same timestamp.
  EXPECT_EQ(results[0], EnqueueResult::kAccepted);
  EXPECT_EQ(results[1], EnqueueResult::kAccepted);
  EXPECT_EQ(results[2], EnqueueResult::kDroppedFull);
  EXPECT_EQ(results[3], EnqueueResult::kDroppedFull);
  EXPECT_EQ(results[4], EnqueueResult::kDroppedFull);
  EXPECT_EQ(results[5], EnqueueResult::kDroppedFull);
  EXPECT_EQ(delivered, 2u);
}

TEST(Interface, LastAdmitDepthTracksBothPaths) {
  // Enqueue taps read last_admit_depth_bytes() (the pass-through fast path
  // never parks the packet in the queue object, so queue().byte_length()
  // would under-report). The depth must include the admitted packet on
  // every admission path.
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e6;
  cfg.delay = Duration::millis(1);
  Pair p(cfg);
  Interface* out = p.a->interface_to(p.b->id());
  std::vector<std::size_t> depths;
  out->add_enqueue_tap(
      [&](const Packet&, SimTime) { depths.push_back(out->last_admit_depth_bytes()); });
  p.net.sim().schedule_at(SimTime::origin(), [&] {
    // First send: idle transmitter, pass-through; depth = its own bytes.
    // Next two: transmitter busy, genuinely queued; depth accumulates.
    p.a->originate(p.make(p.a->id(), p.b->id(), 960));
    p.a->originate(p.make(p.a->id(), p.b->id(), 960));
    p.a->originate(p.make(p.a->id(), p.b->id(), 960));
  });
  p.net.sim().run();
  ASSERT_EQ(depths.size(), 3u);
  EXPECT_EQ(depths[0], 1000u);
  EXPECT_EQ(depths[1], 1000u);  // first queued packet, queue was empty
  EXPECT_EQ(depths[2], 2000u);
}

TEST(Simulator, RearmCurrentMatchesScheduleInTimes) {
  // A self-rearming event must fire at exactly the times the equivalent
  // schedule_in chain produces, and keep its callable alive across
  // firings.
  std::vector<SimTime> rearm_times;
  std::vector<SimTime> chain_times;
  {
    Simulator sim;
    int remaining = 5;
    sim.schedule_in(Duration::millis(10), [&] {
      rearm_times.push_back(sim.now());
      if (--remaining > 0) sim.rearm_current(Duration::millis(10));
    });
    sim.run();
  }
  {
    Simulator sim;
    int remaining = 5;
    std::function<void()> tick = [&] {
      chain_times.push_back(sim.now());
      if (--remaining > 0) sim.schedule_in(Duration::millis(10), [&] { tick(); });
    };
    sim.schedule_in(Duration::millis(10), [&] { tick(); });
    sim.run();
  }
  EXPECT_EQ(rearm_times, chain_times);
  ASSERT_EQ(rearm_times.size(), 5u);
}

TEST(Simulator, RearmCurrentInterleavesWithOtherEvents) {
  // Rearmed events keep FIFO fairness with fresh events scheduled for the
  // same instant: the (time, seq) stream is identical to schedule_in's.
  Simulator sim;
  std::vector<int> order;
  int fires = 0;
  sim.schedule_in(Duration::millis(1), [&] {
    order.push_back(0);
    if (++fires < 3) {
      // Fresh event for the same future instant, scheduled BEFORE the
      // rearm: it must fire first there (lower seq).
      sim.schedule_in(Duration::millis(1), [&] { order.push_back(1); });
      sim.rearm_current(Duration::millis(1));
    }
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1, 0}));
}

}  // namespace
}  // namespace fatih::sim
