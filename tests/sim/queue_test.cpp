#include "sim/queue.hpp"

#include <gtest/gtest.h>

namespace fatih::sim {
namespace {

Packet packet_of(std::uint32_t size, std::uint64_t uid = 0) {
  Packet p;
  p.size_bytes = size;
  p.uid = uid;
  return p;
}

TEST(DropTailQueue, AcceptsUpToLimit) {
  DropTailQueue q(3000);
  EXPECT_EQ(q.enqueue(packet_of(1000), {}), EnqueueResult::kAccepted);
  EXPECT_EQ(q.enqueue(packet_of(1000), {}), EnqueueResult::kAccepted);
  EXPECT_EQ(q.enqueue(packet_of(1000), {}), EnqueueResult::kAccepted);
  EXPECT_EQ(q.byte_length(), 3000U);
  EXPECT_EQ(q.packet_count(), 3U);
}

TEST(DropTailQueue, RejectsOverflow) {
  DropTailQueue q(2500);
  EXPECT_EQ(q.enqueue(packet_of(1000), {}), EnqueueResult::kAccepted);
  EXPECT_EQ(q.enqueue(packet_of(1000), {}), EnqueueResult::kAccepted);
  EXPECT_EQ(q.enqueue(packet_of(1000), {}), EnqueueResult::kDroppedFull);
  EXPECT_EQ(q.byte_length(), 2000U);
  // A smaller packet that fits is still accepted after a drop.
  EXPECT_EQ(q.enqueue(packet_of(400), {}), EnqueueResult::kAccepted);
}

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q(100000);
  for (std::uint64_t i = 0; i < 10; ++i) q.enqueue(packet_of(100, i), {});
  for (std::uint64_t i = 0; i < 10; ++i) {
    auto p = q.dequeue({});
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->uid, i);
  }
  EXPECT_FALSE(q.dequeue({}).has_value());
}

TEST(DropTailQueue, ByteAccountingOnDequeue) {
  DropTailQueue q(10000);
  q.enqueue(packet_of(700), {});
  q.enqueue(packet_of(300), {});
  EXPECT_EQ(q.byte_length(), 1000U);
  q.dequeue({});
  EXPECT_EQ(q.byte_length(), 300U);
  q.dequeue({});
  EXPECT_EQ(q.byte_length(), 0U);
}

TEST(DropTailQueue, ExactFit) {
  DropTailQueue q(1000);
  EXPECT_EQ(q.enqueue(packet_of(1000), {}), EnqueueResult::kAccepted);
  EXPECT_EQ(q.enqueue(packet_of(1), {}), EnqueueResult::kDroppedFull);
}

TEST(DropTailQueue, EmptyDequeueIsNull) {
  DropTailQueue q(1000);
  EXPECT_FALSE(q.dequeue({}).has_value());
}

}  // namespace
}  // namespace fatih::sim
