#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/churn.hpp"
#include "sim/node.hpp"

namespace fatih::sim {
namespace {

using util::Duration;
using util::NodeId;
using util::SimTime;

// Two routers connected by one duplex link.
struct Pair {
  Network net{1};
  Router* a;
  Router* b;

  explicit Pair(LinkConfig cfg = {}) {
    a = &net.add_router("a");
    b = &net.add_router("b");
    net.connect(a->id(), b->id(), cfg);
    a->set_route(b->id(), 0);
    b->set_route(a->id(), 0);
    a->set_processing_delay(Duration::micros(10), {});
    b->set_processing_delay(Duration::micros(10), {});
  }

  Packet make(NodeId src, NodeId dst, std::uint32_t payload) {
    PacketHeader hdr;
    hdr.src = src;
    hdr.dst = dst;
    return net.make_packet(hdr, payload);
  }
};

TEST(Network, PacketDeliveredWithCorrectLatency) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e6;  // 1 MB/s
  cfg.delay = Duration::millis(5);
  Pair p(cfg);

  SimTime arrival;
  p.b->add_local_handler([&](const Packet&, NodeId, SimTime now) { arrival = now; });
  const Packet pkt = p.make(p.a->id(), p.b->id(), 960);  // 1000B wire
  p.net.sim().schedule_at(SimTime::origin(), [&] { p.a->originate(pkt); });
  p.net.sim().run();
  // tx = 1000B / 1MBps = 1ms; total = 1ms + 5ms.
  EXPECT_EQ(arrival, SimTime::origin() + Duration::millis(6));
}

TEST(Network, SerializationSerializesBackToBack) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e6;
  cfg.delay = Duration::millis(1);
  Pair p(cfg);
  std::vector<SimTime> arrivals;
  p.b->add_local_handler([&](const Packet&, NodeId, SimTime now) { arrivals.push_back(now); });
  p.net.sim().schedule_at(SimTime::origin(), [&] {
    p.a->originate(p.make(p.a->id(), p.b->id(), 960));
    p.a->originate(p.make(p.a->id(), p.b->id(), 960));
  });
  p.net.sim().run();
  ASSERT_EQ(arrivals.size(), 2U);
  // Second packet waits for the first's 1 ms serialization.
  EXPECT_EQ(arrivals[1] - arrivals[0], Duration::millis(1));
}

TEST(Network, TtlExpiryDropsPacket) {
  Pair p;
  bool delivered = false;
  DropReason reason{};
  bool dropped = false;
  p.b->add_local_handler([&](const Packet&, NodeId, SimTime) { delivered = true; });
  p.a->add_drop_tap([&](const Packet&, SimTime, DropReason r) {
    dropped = true;
    reason = r;
  });
  Packet pkt = p.make(p.a->id(), p.b->id(), 100);
  pkt.hdr.ttl = 1;  // decrements to 0 at the first router
  p.net.sim().schedule_at(SimTime::origin(), [&] { p.a->originate(pkt); });
  p.net.sim().run();
  EXPECT_FALSE(delivered);
  EXPECT_TRUE(dropped);
  EXPECT_EQ(reason, DropReason::kTtlExpired);
}

TEST(Network, NoRouteDrops) {
  Pair p;
  p.a->clear_routes();
  bool dropped = false;
  p.a->add_drop_tap([&](const Packet&, SimTime, DropReason r) {
    dropped = r == DropReason::kNoRoute;
  });
  p.net.sim().schedule_at(SimTime::origin(),
                          [&] { p.a->originate(p.make(p.a->id(), p.b->id(), 100)); });
  p.net.sim().run();
  EXPECT_TRUE(dropped);
}

TEST(Network, CongestionDropFiresTap) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e4;  // very slow: 10 kB/s
  cfg.queue_limit_bytes = 2000;
  Pair p(cfg);
  int congestion_drops = 0;
  p.a->interface(0).add_drop_tap([&](const Packet&, SimTime, DropReason r) {
    if (r == DropReason::kCongestion) ++congestion_drops;
  });
  p.net.sim().schedule_at(SimTime::origin(), [&] {
    for (int i = 0; i < 10; ++i) p.a->originate(p.make(p.a->id(), p.b->id(), 960));
  });
  p.net.sim().run();
  EXPECT_GT(congestion_drops, 0);
}

TEST(Network, PolicyRouteOverridesDefault) {
  // Triangle a-b-c; b's policy for traffic from a diverts to c.
  Network net(2);
  auto& a = net.add_router("a");
  auto& b = net.add_router("b");
  auto& c = net.add_router("c");
  auto& d = net.add_router("d");
  net.connect(a.id(), b.id(), {});
  net.connect(b.id(), c.id(), {});
  net.connect(b.id(), d.id(), {});
  a.set_route(d.id(), 0);                    // a -> b
  b.set_route(d.id(), b.interface_to(d.id())->index());  // default: b -> d
  b.set_policy_route(a.id(), d.id(), b.interface_to(c.id())->index());  // policy: via c
  bool via_c = false;
  c.add_receive_tap([&](const Packet&, NodeId, SimTime) { via_c = true; });

  PacketHeader hdr;
  hdr.src = a.id();
  hdr.dst = d.id();
  const Packet pkt = net.make_packet(hdr, 100);
  net.sim().schedule_at(SimTime::origin(), [&] { a.originate(pkt); });
  net.sim().run();
  EXPECT_TRUE(via_c);
}

TEST(Network, PolicyDropSuppressesFallback) {
  Pair p;
  p.a->set_policy_drop(p.a->id(), p.b->id());
  bool delivered = false;
  bool no_route = false;
  p.b->add_local_handler([&](const Packet&, NodeId, SimTime) { delivered = true; });
  p.a->add_drop_tap([&](const Packet&, SimTime, DropReason r) {
    no_route = r == DropReason::kNoRoute;
  });
  p.net.sim().schedule_at(SimTime::origin(),
                          [&] { p.a->originate(p.make(p.a->id(), p.b->id(), 100)); });
  p.net.sim().run();
  EXPECT_FALSE(delivered);
  EXPECT_TRUE(no_route);
}

TEST(Network, HostSendsThroughGateway) {
  Network net(3);
  auto& r = net.add_router("r");
  auto& h1 = net.add_host("h1");
  auto& h2 = net.add_host("h2");
  net.connect(h1.id(), r.id(), {});
  net.connect(h2.id(), r.id(), {});
  r.set_route(h1.id(), r.interface_to(h1.id())->index());
  r.set_route(h2.id(), r.interface_to(h2.id())->index());

  bool delivered = false;
  h2.add_local_handler([&](const Packet&, NodeId, SimTime) { delivered = true; });
  PacketHeader hdr;
  hdr.src = h1.id();
  hdr.dst = h2.id();
  const Packet pkt = net.make_packet(hdr, 100);
  net.sim().schedule_at(SimTime::origin(), [&] { h1.send(pkt); });
  net.sim().run();
  EXPECT_TRUE(delivered);
}

TEST(Network, HostsDoNotForwardTransit) {
  // a - h - b: h is a host in the middle; transit traffic must die there.
  Network net(4);
  auto& a = net.add_router("a");
  auto& h = net.add_host("h");
  auto& b = net.add_router("b");
  net.connect(a.id(), h.id(), {});
  net.connect(h.id(), b.id(), {});
  a.set_route(b.id(), 0);
  bool delivered = false;
  b.add_local_handler([&](const Packet&, NodeId, SimTime) { delivered = true; });
  PacketHeader hdr;
  hdr.src = a.id();
  hdr.dst = b.id();
  const Packet pkt = net.make_packet(hdr, 100);
  net.sim().schedule_at(SimTime::origin(), [&] { a.originate(pkt); });
  net.sim().run();
  EXPECT_FALSE(delivered);
}

// Forward filter that drops everything after a time.
struct DropAllFilter : ForwardFilter {
  ForwardDecision on_forward(const Packet&, NodeId, const Interface&, Router&) override {
    return ForwardDecision::drop();
  }
};

TEST(Network, ForwardFilterDropCountsAsMalicious) {
  Pair p;
  p.a->set_forward_filter(std::make_shared<DropAllFilter>());
  bool malicious = false;
  p.a->add_drop_tap([&](const Packet&, SimTime, DropReason r) {
    malicious = r == DropReason::kMalicious;
  });
  p.net.sim().schedule_at(SimTime::origin(),
                          [&] { p.a->originate(p.make(p.a->id(), p.b->id(), 100)); });
  p.net.sim().run();
  EXPECT_TRUE(malicious);
  EXPECT_EQ(p.a->malicious_drops(), 1U);
  EXPECT_TRUE(p.a->compromised());
}

struct TamperFilter : ForwardFilter {
  ForwardDecision on_forward(const Packet& p, NodeId, const Interface&, Router&) override {
    ForwardDecision d;
    Packet copy = p;
    copy.payload_tag ^= 0xFFULL;
    d.replacement = copy;
    return d;
  }
};

TEST(Network, ForwardFilterCanModifyPayload) {
  Pair p;
  const Packet pkt = p.make(p.a->id(), p.b->id(), 100);
  const std::uint64_t original_tag = pkt.payload_tag;
  p.a->set_forward_filter(std::make_shared<TamperFilter>());
  std::uint64_t seen_tag = 0;
  p.b->add_local_handler([&](const Packet& q, NodeId, SimTime) { seen_tag = q.payload_tag; });
  p.net.sim().schedule_at(SimTime::origin(), [&] { p.a->originate(pkt); });
  p.net.sim().run();
  EXPECT_EQ(seen_tag, original_tag ^ 0xFFULL);
}

TEST(Network, ProcessingJitterBoundedAndVariable) {
  LinkConfig cfg;
  cfg.delay = Duration::millis(1);
  cfg.bandwidth_bps = 1e9;
  Network net(5);
  auto& a = net.add_router("a");
  auto& b = net.add_router("b");
  auto& c = net.add_router("c");
  net.connect(a.id(), b.id(), cfg);
  net.connect(b.id(), c.id(), cfg);
  a.set_route(c.id(), 0);
  b.set_route(c.id(), b.interface_to(c.id())->index());
  b.set_processing_delay(Duration::micros(20), Duration::micros(100));

  std::vector<SimTime> arrivals;
  c.add_local_handler([&](const Packet&, NodeId, SimTime now) { arrivals.push_back(now); });
  net.sim().schedule_at(SimTime::origin(), [&] {
    for (int i = 0; i < 50; ++i) {
      PacketHeader hdr;
      hdr.src = a.id();
      hdr.dst = c.id();
      Packet pkt = net.make_packet(hdr, 0);
      net.sim().schedule_at(SimTime::from_seconds(i * 0.01), [&a, pkt] { a.originate(pkt); });
    }
  });
  net.sim().run();
  ASSERT_EQ(arrivals.size(), 50U);
  // Latency varies (jitter), but within the configured bound.
  std::set<std::int64_t> latencies;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const auto lat = arrivals[i] - SimTime::from_seconds(i * 0.01);
    latencies.insert(lat.count_nanos());
    EXPECT_GE(lat, Duration::millis(2) + Duration::micros(20));
    EXPECT_LE(lat, Duration::millis(2) + Duration::micros(120) + Duration::micros(5));
  }
  EXPECT_GT(latencies.size(), 10U);
}

TEST(Network, MakePacketAssignsUniqueUids) {
  Network net(6);
  net.add_router("a");
  PacketHeader hdr;
  std::set<std::uint64_t> uids;
  for (int i = 0; i < 100; ++i) uids.insert(net.make_packet(hdr, 0).uid);
  EXPECT_EQ(uids.size(), 100U);
}

TEST(Network, LinkDownDropsQueuedAndInFlight) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e5;  // 100 kB/s: 1000B takes 10 ms to serialize
  cfg.delay = Duration::millis(5);
  Pair p(cfg);
  int delivered = 0;
  int link_drops = 0;
  p.b->add_local_handler([&](const Packet&, NodeId, SimTime) { ++delivered; });
  p.a->interface(0).add_drop_tap([&](const Packet&, SimTime, DropReason r) {
    if (r == DropReason::kLinkDown) ++link_drops;
  });
  p.net.sim().schedule_at(SimTime::origin(), [&] {
    for (int i = 0; i < 4; ++i) p.a->originate(p.make(p.a->id(), p.b->id(), 960));
  });
  // Cut while the first packet is still serializing: it and the queued
  // three all die with kLinkDown; nothing crosses.
  p.net.sim().schedule_at(SimTime::origin() + Duration::millis(2),
                          [&] { p.net.set_link_up(p.a->id(), p.b->id(), false); });
  p.net.sim().run_until(SimTime::from_seconds(1));
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(link_drops, 4);
  EXPECT_FALSE(p.net.link_usable(p.a->id(), p.b->id()));

  // Repair; traffic flows again.
  p.net.set_link_up(p.a->id(), p.b->id(), true);
  p.net.sim().schedule_at(SimTime::from_seconds(1.1),
                          [&] { p.a->originate(p.make(p.a->id(), p.b->id(), 960)); });
  p.net.sim().run_until(SimTime::from_seconds(2));
  EXPECT_EQ(delivered, 1);
  EXPECT_TRUE(p.net.link_usable(p.a->id(), p.b->id()));
}

TEST(Network, CrashedRouterBlackholesAndLosesSoftState) {
  // a - b - c: crash b mid-run; transit traffic dies at b, and a restarted
  // b has lost its routing state (packets die with kNoRoute until routes
  // are reinstalled).
  Network net(9);
  auto& a = net.add_router("a");
  auto& b = net.add_router("b");
  auto& c = net.add_router("c");
  net.connect(a.id(), b.id(), {});
  net.connect(b.id(), c.id(), {});
  a.set_route(c.id(), 0);
  b.set_route(c.id(), b.interface_to(c.id())->index());
  int delivered = 0;
  int node_drops = 0;
  int no_route = 0;
  c.add_local_handler([&](const Packet&, NodeId, SimTime) { ++delivered; });
  b.add_drop_tap([&](const Packet&, SimTime, DropReason r) {
    if (r == DropReason::kNodeDown) ++node_drops;
    if (r == DropReason::kNoRoute) ++no_route;
  });
  auto send = [&](double at) {
    PacketHeader hdr;
    hdr.src = a.id();
    hdr.dst = c.id();
    const Packet pkt = net.make_packet(hdr, 100);
    net.sim().schedule_at(SimTime::from_seconds(at), [&a, pkt] { a.originate(pkt); });
  };
  send(0.1);  // delivered
  net.sim().schedule_at(SimTime::from_seconds(0.5), [&] { net.crash_router(b.id()); });
  send(0.6);  // dies at crashed b
  net.sim().schedule_at(SimTime::from_seconds(1.0), [&] { net.restart_router(b.id()); });
  send(1.1);  // b is up but amnesiac: no route to c
  net.sim().run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(node_drops, 1);
  EXPECT_EQ(no_route, 1);
  EXPECT_TRUE(net.node_up(b.id()));
}

TEST(Network, StatusHooksFireOnChurn) {
  Pair p;
  std::vector<std::pair<bool, SimTime>> link_events;
  std::vector<std::pair<bool, SimTime>> node_events;
  p.net.add_link_status_hook([&](NodeId, NodeId, bool up, SimTime at) {
    link_events.emplace_back(up, at);
  });
  p.net.add_node_status_hook(
      [&](NodeId, bool up, SimTime at) { node_events.emplace_back(up, at); });
  p.net.sim().schedule_at(SimTime::from_seconds(1),
                          [&] { p.net.set_link_up(p.a->id(), p.b->id(), false); });
  p.net.sim().schedule_at(SimTime::from_seconds(2),
                          [&] { p.net.set_link_up(p.a->id(), p.b->id(), true); });
  p.net.sim().schedule_at(SimTime::from_seconds(3), [&] { p.net.crash_router(p.a->id()); });
  p.net.sim().schedule_at(SimTime::from_seconds(4), [&] { p.net.restart_router(p.a->id()); });
  p.net.sim().run();
  ASSERT_EQ(link_events.size(), 2U);
  EXPECT_FALSE(link_events[0].first);
  EXPECT_EQ(link_events[0].second, SimTime::from_seconds(1));
  EXPECT_TRUE(link_events[1].first);
  ASSERT_EQ(node_events.size(), 2U);
  EXPECT_FALSE(node_events[0].first);
  EXPECT_TRUE(node_events[1].first);
}

TEST(Network, ChurnScheduleArmsAndExportsIntervals) {
  Pair p;
  ChurnSchedule churn;
  churn.link_flap(p.a->id(), p.b->id(), SimTime::from_seconds(1), Duration::seconds(1),
                  Duration::seconds(4), 2);
  churn.router_crash(p.a->id(), SimTime::from_seconds(10));
  churn.arm(p.net);
  p.net.sim().run_until(SimTime::from_seconds(1.5));
  EXPECT_FALSE(p.net.link_usable(p.a->id(), p.b->id()));
  p.net.sim().run_until(SimTime::from_seconds(2.5));
  EXPECT_TRUE(p.net.link_usable(p.a->id(), p.b->id()));
  p.net.sim().run_until(SimTime::from_seconds(5.5));
  EXPECT_FALSE(p.net.link_usable(p.a->id(), p.b->id()));  // second flap cycle
  p.net.sim().run_until(SimTime::from_seconds(11));
  EXPECT_FALSE(p.net.node_up(p.a->id()));

  // Two flap cycles pair up; the unrepaired crash runs to the horizon.
  const auto intervals =
      churn.churn_intervals(Duration::seconds(1), SimTime::from_seconds(20));
  ASSERT_EQ(intervals.size(), 3U);
  EXPECT_EQ(intervals[0].begin, SimTime::from_seconds(1));
  EXPECT_EQ(intervals[0].end, SimTime::from_seconds(3));  // repair at 2 + settle 1
  EXPECT_EQ(intervals[1].begin, SimTime::from_seconds(5));
  EXPECT_EQ(intervals[1].end, SimTime::from_seconds(7));
  EXPECT_EQ(intervals[2].begin, SimTime::from_seconds(10));
  EXPECT_EQ(intervals[2].end, SimTime::from_seconds(20));  // never repaired
}

TEST(Network, AdjacencyExportMatchesLinks) {
  Network net(7);
  auto& a = net.add_router("a");
  auto& b = net.add_router("b");
  LinkConfig cfg;
  cfg.metric = 9;
  net.connect(a.id(), b.id(), cfg);
  ASSERT_EQ(net.adjacencies().size(), 2U);
  EXPECT_EQ(net.adjacencies()[0].metric, 9U);
  EXPECT_EQ(net.adjacencies()[0].from, a.id());
  EXPECT_EQ(net.adjacencies()[1].from, b.id());
}

}  // namespace
}  // namespace fatih::sim
