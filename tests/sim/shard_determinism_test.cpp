// Differential harness for the sharded event engine: the StateDigest of a
// sharded scenario must be byte-identical at every worker-thread count
// (the partition is by PoP, workers only execute disjoint PoP sets) and
// across repeated runs. Covers all three protocols — Pi2, Pi(k+2) and chi
// — on generated Rocketfuel-scale graphs, sweeping shard/thread counts
// {1, 2, 4, 16}, plus a sharded-vs-spec-hash stability check so the fleet
// corpus keys stay stable.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace fatih::scenario {
namespace {

constexpr unsigned kThreadSweep[] = {1, 2, 4, 16};

/// Runs `spec` to completion with `threads` workers and returns the final
/// digest plus every round-boundary checkpoint.
struct RunTrace {
  StateDigest final;
  std::vector<Checkpoint> checkpoints;
  std::vector<std::string> suspicions;
  std::uint64_t forwarded = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dispatched = 0;
};

RunTrace run_with_threads(const ScenarioSpec& spec, unsigned threads) {
  ScenarioRun run(spec, threads);
  run.run_to(run.end_time_ns());
  RunTrace t;
  t.final = run.digest();
  t.checkpoints = run.checkpoints();
  t.suspicions = run.suspicion_strings();
  t.forwarded = t.final.forwarded;
  t.delivered = t.final.delivered;
  t.dispatched = t.final.dispatched;
  return t;
}

void expect_identical(const RunTrace& base, const RunTrace& other, const char* what) {
  EXPECT_EQ(base.final, other.final) << what;
  ASSERT_EQ(base.checkpoints.size(), other.checkpoints.size()) << what;
  for (std::size_t i = 0; i < base.checkpoints.size(); ++i) {
    EXPECT_EQ(base.checkpoints[i], other.checkpoints[i])
        << what << " checkpoint " << i << " (t=" << base.checkpoints[i].t_ns << ")";
  }
  EXPECT_EQ(base.suspicions, other.suspicions) << what;
  EXPECT_EQ(base.forwarded, other.forwarded) << what;
  EXPECT_EQ(base.delivered, other.delivered) << what;
  EXPECT_EQ(base.dispatched, other.dispatched) << what;
}

const ScenarioSpec& registered(const char* name) {
  const ScenarioSpec* spec = find_scenario(name);
  EXPECT_NE(spec, nullptr) << name;
  return *spec;
}

/// The core differential property: 1 thread vs every other count in the
/// sweep, on the named registered scenario.
void sweep_threads(const char* name) {
  const ScenarioSpec& spec = registered(name);
  ASSERT_GT(spec.shards, 0u) << name << " is not a sharded scenario";
  const RunTrace base = run_with_threads(spec, 1);
  EXPECT_GT(base.dispatched, 0u);
  EXPECT_GT(base.delivered, 0u);
  for (unsigned threads : kThreadSweep) {
    if (threads == 1) continue;
    expect_identical(base, run_with_threads(spec, threads),
                     (std::string(name) + " @" + std::to_string(threads)).c_str());
  }
}

TEST(ShardDeterminism, Pik2EboneThreadSweep) { sweep_threads("gen_ebone_pik2_clean"); }

TEST(ShardDeterminism, Pi2EboneDropThreadSweep) { sweep_threads("gen_ebone_pi2_drop"); }

TEST(ShardDeterminism, Pik2SprintlinkThreadSweep) {
  sweep_threads("gen_sprintlink_pik2_clean");
}

TEST(ShardDeterminism, Pik2SprintlinkDropThreadSweep) {
  sweep_threads("gen_sprintlink_pik2_drop");
}

TEST(ShardDeterminism, ChiSprintlinkThreadSweep) {
  sweep_threads("gen_sprintlink_chi_drop");
}

TEST(ShardDeterminism, Pik2WideThreadSweep) { sweep_threads("gen_wide_pik2_clean"); }

TEST(ShardDeterminism, RunTwiceIsStable) {
  // Same spec, same thread count, fresh processes of everything heap- and
  // pointer-shaped in between: byte-identical digests.
  for (const char* name :
       {"gen_ebone_pik2_clean", "gen_sprintlink_chi_drop", "gen_ebone_pi2_drop"}) {
    const ScenarioSpec& spec = registered(name);
    const RunTrace a = run_with_threads(spec, 4);
    const RunTrace b = run_with_threads(spec, 4);
    expect_identical(a, b, name);
  }
}

TEST(ShardDeterminism, DropScenarioRaisesSuspicion) {
  // The differential property would hold trivially on an idle network;
  // make sure the attacked runs actually detect something at every
  // thread count (covered transitively by expect_identical, asserted
  // here against the 1-thread baseline explicitly).
  const RunTrace t = run_with_threads(registered("gen_sprintlink_pik2_drop"), 1);
  EXPECT_FALSE(t.suspicions.empty());
  const RunTrace chi = run_with_threads(registered("gen_sprintlink_chi_drop"), 1);
  EXPECT_FALSE(chi.suspicions.empty());
}

TEST(ShardDeterminism, ShardCountIsPartOfTheSpecNotTheRun) {
  // Changing the *thread* count must not change the digest; changing the
  // *shard* count (the PoP partition is fixed by the topology, but the
  // spec field selects engine + default workers) must not either, since
  // the partition is by PoP. Sweep spec.shards over the same scenario.
  ScenarioSpec spec = registered("gen_ebone_pik2_clean");
  const RunTrace base = run_with_threads(spec, 1);
  for (std::uint32_t shards : {2u, 16u}) {
    ScenarioSpec s = spec;
    s.shards = shards;
    const RunTrace t = run_with_threads(s, 0);  // 0 = use spec.shards workers
    EXPECT_EQ(base.final.forwarded, t.final.forwarded) << shards;
    EXPECT_EQ(base.final.delivered, t.final.delivered) << shards;
    EXPECT_EQ(base.final.dispatched, t.final.dispatched) << shards;
    EXPECT_EQ(base.final.rng_hash, t.final.rng_hash) << shards;
    EXPECT_EQ(base.final.pending_hash, t.final.pending_hash) << shards;
    EXPECT_EQ(base.final.detector_hash, t.final.detector_hash) << shards;
    EXPECT_EQ(base.suspicions, t.suspicions) << shards;
  }
}

TEST(ShardDeterminism, ClassicEngineStillBitIdenticalOnClassicSpecs) {
  // Guard rail for the refactor: a pre-existing (non-sharded) scenario
  // must produce the same digest through the touched counter/digest code.
  const ScenarioSpec& spec = registered("line4_pik2_drop");
  const ScenarioResult a = run_scenario(spec);
  const ScenarioResult b = run_scenario(spec);
  EXPECT_EQ(a.final_digest, b.final_digest);
  EXPECT_EQ(a.checkpoints, b.checkpoints);
}

}  // namespace
}  // namespace fatih::scenario
