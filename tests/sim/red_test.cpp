#include "sim/red.hpp"

#include <gtest/gtest.h>

namespace fatih::sim {
namespace {

using util::SimTime;

Packet packet_of(std::uint32_t size, std::uint64_t uid = 0) {
  Packet p;
  p.size_bytes = size;
  p.uid = uid;
  return p;
}

RedParams small_params() {
  RedParams p;
  p.weight = 0.2;  // fast EWMA so tests converge quickly
  p.min_threshold = 2000;
  p.max_threshold = 6000;
  p.max_probability = 0.1;
  p.gentle = true;
  p.byte_limit = 12000;
  p.mean_packet_size = 1000;
  p.drain_rate = 1e6;
  return p;
}

TEST(RedState, NoDropBelowMinThreshold) {
  RedState state;
  const auto params = small_params();
  for (int i = 0; i < 100; ++i) {
    const double pa = state.on_arrival(params, 500, SimTime::from_seconds(i * 0.001));
    EXPECT_DOUBLE_EQ(pa, 0.0);
    state.on_outcome(false);
  }
  EXPECT_LT(state.average(), params.min_threshold);
}

TEST(RedState, ProbabilityGrowsBetweenThresholds) {
  RedState state;
  const auto params = small_params();
  // Pump the average up with a persistently full queue.
  double last_pa = 0.0;
  for (int i = 0; i < 50; ++i) {
    last_pa = state.on_arrival(params, 5000, SimTime::from_seconds(i * 0.001));
    state.on_outcome(false);
  }
  EXPECT_GT(state.average(), params.min_threshold);
  EXPECT_GT(last_pa, 0.0);
  EXPECT_LE(last_pa, 1.0);
}

TEST(RedState, ForcedDropAboveGentleRegion) {
  RedState state;
  const auto params = small_params();
  double pa = 0.0;
  for (int i = 0; i < 300; ++i) {
    pa = state.on_arrival(params, 12000, SimTime::from_seconds(i * 0.001));
    state.on_outcome(false);
  }
  // avg -> 12000 = 2 * max_th: in (or beyond) the gentle tail.
  EXPECT_GE(pa, params.max_probability);
}

TEST(RedState, CountIncreasesDropPressure) {
  // p_a = p_b / (1 - count * p_b) grows with consecutive non-drops.
  RedState state;
  const auto params = small_params();
  for (int i = 0; i < 8; ++i) {
    state.on_arrival(params, 4000, SimTime::from_seconds(i * 0.001));
    state.on_outcome(false);
  }
  const double pa1 = state.on_arrival(params, 4000, SimTime::from_seconds(0.06));
  state.on_outcome(false);
  const double pa2 = state.on_arrival(params, 4000, SimTime::from_seconds(0.061));
  EXPECT_GT(pa2, pa1);
}

TEST(RedState, IdleDecayShrinksAverage) {
  RedState state;
  const auto params = small_params();
  for (int i = 0; i < 50; ++i) {
    state.on_arrival(params, 5000, SimTime::from_seconds(i * 0.001));
    state.on_outcome(false);
  }
  const double before = state.average();
  state.on_queue_empty(SimTime::from_seconds(0.05));
  state.on_arrival(params, 0, SimTime::from_seconds(1.0));  // ~1 s idle
  EXPECT_LT(state.average(), before * 0.5);
}

TEST(RedQueue, AcceptsWhenCalm) {
  RedQueue q(small_params(), 42);
  EXPECT_EQ(q.enqueue(packet_of(500), SimTime::origin()), EnqueueResult::kAccepted);
  EXPECT_EQ(q.packet_count(), 1U);
}

TEST(RedQueue, HardLimitEnforced) {
  auto params = small_params();
  params.weight = 0.0001;  // keep the average low so early drop stays off
  RedQueue q(params, 42);
  std::size_t accepted = 0;
  for (int i = 0; i < 20; ++i) {
    if (q.enqueue(packet_of(1000), SimTime::origin()) == EnqueueResult::kAccepted) ++accepted;
  }
  EXPECT_EQ(accepted, params.byte_limit / 1000);
  EXPECT_LE(q.byte_length(), params.byte_limit);
}

TEST(RedQueue, EarlyDropsHappenUnderSustainedLoad) {
  RedQueue q(small_params(), 7);
  std::size_t early = 0;
  // Keep the queue pinned high; drain one packet per two arrivals.
  for (int i = 0; i < 2000; ++i) {
    const auto res = q.enqueue(packet_of(1000), SimTime::from_seconds(i * 1e-4));
    if (res == EnqueueResult::kDroppedRedEarly) ++early;
    if (i % 2 == 0) q.dequeue(SimTime::from_seconds(i * 1e-4));
  }
  EXPECT_GT(early, 0U);
}

TEST(RedQueue, DeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    RedQueue q(small_params(), seed);
    std::vector<int> outcomes;
    for (int i = 0; i < 500; ++i) {
      outcomes.push_back(static_cast<int>(q.enqueue(packet_of(1000),
                                                    SimTime::from_seconds(i * 1e-4))));
      if (i % 2 == 0) q.dequeue(SimTime::from_seconds(i * 1e-4));
    }
    return outcomes;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(RedQueue, FifoOrderPreserved) {
  auto params = small_params();
  params.weight = 0.0001;
  RedQueue q(params, 3);
  for (std::uint64_t i = 0; i < 5; ++i) q.enqueue(packet_of(100, i), SimTime::origin());
  for (std::uint64_t i = 0; i < 5; ++i) {
    auto p = q.dequeue(SimTime::origin());
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->uid, i);
  }
}

}  // namespace
}  // namespace fatih::sim
