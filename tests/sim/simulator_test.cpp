#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace fatih::sim {
namespace {

using util::Duration;
using util::SimTime;

TEST(Simulator, StartsAtOrigin) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::origin());
}

TEST(Simulator, DispatchesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::from_seconds(3), [&] { order.push_back(3); });
  sim.schedule_at(SimTime::from_seconds(1), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::from_seconds(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  const auto t = SimTime::from_seconds(1);
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(t, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, NowAdvancesDuringDispatch) {
  Simulator sim;
  SimTime seen;
  sim.schedule_at(SimTime::from_seconds(5), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, SimTime::from_seconds(5));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  SimTime seen;
  sim.schedule_at(SimTime::from_seconds(2), [&] {
    sim.schedule_in(Duration::seconds(3), [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, SimTime::from_seconds(5));
}

TEST(Simulator, CancelPreventsDispatch) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(SimTime::from_seconds(1), [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterDispatchIsNoop) {
  Simulator sim;
  int count = 0;
  const EventId id = sim.schedule_at(SimTime::from_seconds(1), [&] { ++count; });
  sim.run();
  sim.cancel(id);  // must not crash or corrupt
  EXPECT_EQ(count, 1);
}

TEST(Simulator, RunUntilStopsAtLimitInclusive) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::from_seconds(1), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::from_seconds(2), [&] { order.push_back(2); });
  sim.schedule_at(SimTime::from_seconds(3), [&] { order.push_back(3); });
  sim.run_until(SimTime::from_seconds(2));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), SimTime::from_seconds(2));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_in(Duration::millis(1), recurse);
  };
  sim.schedule_at(SimTime::origin(), recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.events_dispatched(), 100U);
}

TEST(Simulator, PastTimeRequestsRunNow) {
  // schedule_at clamps requests for the past to "now": simulated time
  // never moves backward (matters for engines commissioned mid-run).
  Simulator sim;
  std::vector<double> fired_at;
  sim.schedule_at(SimTime::from_seconds(5), [&] {
    sim.schedule_at(SimTime::from_seconds(1), [&] { fired_at.push_back(sim.now().seconds()); });
  });
  sim.schedule_at(SimTime::from_seconds(7), [&] { fired_at.push_back(sim.now().seconds()); });
  sim.run();
  ASSERT_EQ(fired_at.size(), 2U);
  EXPECT_DOUBLE_EQ(fired_at[0], 5.0);  // clamped, not time-travelled
  EXPECT_DOUBLE_EQ(fired_at[1], 7.0);
}

TEST(Simulator, RunUntilIdlesAtLimitWithEmptyQueue) {
  Simulator sim;
  sim.run_until(SimTime::from_seconds(10));
  EXPECT_EQ(sim.now(), SimTime::from_seconds(10));
}

TEST(Simulator, StaleIdAfterSlotReuseIsNoop) {
  // Cancelling releases the slot; the very next schedule reuses it (LIFO
  // free list). The old handle's generation is stale and must not touch
  // the new occupant.
  Simulator sim;
  bool first = false;
  bool second = false;
  const EventId a = sim.schedule_at(SimTime::from_seconds(1), [&] { first = true; });
  sim.cancel(a);
  const EventId b = sim.schedule_at(SimTime::from_seconds(1), [&] { second = true; });
  EXPECT_NE(a, b);
  sim.cancel(a);  // stale generation: must not cancel b
  sim.cancel(a);  // double-cancel: still a no-op
  sim.cancel(0);  // default-initialized handle is always safe
  sim.run();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
}

// --- Pool-stat guarantees -------------------------------------------------
//
// The allocation-freedom and bounded-memory claims of the pooled engine are
// asserted here against Simulator::pool_stats(), not inferred from timing.

TEST(SimulatorPool, MillionScheduleCancelChurnIsBounded) {
  // Regression for the seed engine, where cancel() only marked a tombstone:
  // the callback registry and the time-ordered queue both grew with every
  // schedule/cancel pair until the run drained. One million churned events
  // must reuse a handful of pooled slots and a lazily-swept heap.
  Simulator sim;
  constexpr int kEvents = 1'000'000;
  int fired = 0;
  for (int i = 0; i < kEvents; ++i) {
    const EventId id =
        sim.schedule_at(SimTime::from_seconds(1 + i % 7), [&] { ++fired; });
    sim.cancel(id);
  }
  const auto stats = sim.pool_stats();
  EXPECT_EQ(stats.slots_in_use, 0U);
  EXPECT_EQ(stats.slots_high_water, 1U);         // never more than one live
  EXPECT_LE(stats.slab_slots, 256U);             // a single slab chunk
  EXPECT_LE(stats.heap_entries, 128U);           // stale entries swept, not hoarded
  EXPECT_GT(stats.heap_sweeps, 0U);
  EXPECT_EQ(stats.callback_heap_allocs, 0U);
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.events_dispatched(), 0U);
}

TEST(SimulatorPool, CancelRearmTimerChurnIsBounded) {
  // The RTO shape: a fleet of pending timers, each cancelled and re-armed
  // over and over (one cancel+schedule per ack). The heap may carry stale
  // entries between sweeps but must stay within a small multiple of the
  // live count.
  Simulator sim;
  constexpr std::size_t kTimers = 512;
  constexpr int kChurn = 200'000;
  std::vector<EventId> ids(kTimers);
  for (std::size_t t = 0; t < kTimers; ++t) {
    ids[t] = sim.schedule_at(SimTime::from_seconds(100 + t), [] {});
  }
  for (int i = 0; i < kChurn; ++i) {
    const std::size_t t = static_cast<std::size_t>(i) % kTimers;
    sim.cancel(ids[t]);
    ids[t] = sim.schedule_at(SimTime::from_seconds(100 + t + i % 13), [] {});
  }
  const auto stats = sim.pool_stats();
  EXPECT_EQ(stats.slots_in_use, kTimers);
  EXPECT_LE(stats.slots_high_water, kTimers + 1);
  EXPECT_LE(stats.slab_slots, kTimers + 256);
  // Sweep policy: compaction runs once stale entries outnumber live ones,
  // so the heap never exceeds 2x live plus the pre-trigger slack.
  EXPECT_LE(stats.heap_entries, 2 * kTimers + 64);
  EXPECT_EQ(stats.callback_heap_allocs, 0U);
}

namespace {
/// Self-rescheduling chain step; a named functor so it can re-schedule a
/// copy of itself (and small enough to stay in the inline buffer).
struct ChainStep {
  Simulator* sim;
  int* remaining;
  void operator()() const {
    if (--*remaining > 0) sim->schedule_in(Duration::micros(10), *this);
  }
};
}  // namespace

TEST(SimulatorPool, SteadyStateDispatchAllocatesNothing) {
  // After warm-up, sustained schedule/dispatch churn must not grow the
  // slab, spill any callback to the heap, or re-reserve heap storage:
  // every event reuses a pooled record and the existing heap capacity.
  Simulator sim;
  constexpr int kChains = 64;
  int remaining = 300'000;
  for (int c = 0; c < kChains; ++c) {
    sim.schedule_at(SimTime::origin() + Duration::micros(c), ChainStep{&sim, &remaining});
  }
  sim.run_until(SimTime::from_seconds(0.01));  // warm-up: slab + heap sized
  const auto warm = sim.pool_stats();
  EXPECT_GT(sim.events_dispatched(), 0U);
  sim.run();
  const auto done = sim.pool_stats();
  // Each of the in-flight chains decrements once more after the shared
  // budget hits zero, so the final count lands in [-kChains+1, 0].
  EXPECT_LE(remaining, 0);
  EXPECT_GT(remaining, -kChains);
  EXPECT_EQ(done.slab_slots, warm.slab_slots);
  EXPECT_EQ(done.heap_capacity, warm.heap_capacity);
  EXPECT_EQ(done.callback_heap_allocs, warm.callback_heap_allocs);
  EXPECT_EQ(done.callback_heap_allocs, 0U);
}

TEST(SimulatorPool, OversizedCallbackSpillsAndStillFires) {
  // Callables beyond kInlineCallbackBytes take the heap path; the stat
  // records the spill and the event must still dispatch correctly.
  Simulator sim;
  struct Big {
    unsigned char pad[Simulator::kInlineCallbackBytes + 64] = {};
    int* hits;
  };
  int hits = 0;
  Big big;
  big.hits = &hits;
  sim.schedule_at(SimTime::from_seconds(1), [big] { ++*big.hits; });
  EXPECT_EQ(sim.pool_stats().callback_heap_allocs, 1U);
  sim.run();
  EXPECT_EQ(hits, 1);
}

TEST(SimulatorPool, CancelledSpilledCallbackIsFreed) {
  // The cancellation path must destroy a heap-spilled callable too (the
  // shared_ptr count proves the destructor ran; ASan would flag the leak).
  Simulator sim;
  auto token = std::make_shared<int>(7);
  struct Big {
    unsigned char pad[Simulator::kInlineCallbackBytes + 64] = {};
    std::shared_ptr<int> token;
  };
  Big big;
  big.token = token;
  const EventId id =
      sim.schedule_at(SimTime::from_seconds(1), [big = std::move(big)] { (void)big; });
  EXPECT_EQ(token.use_count(), 2);
  sim.cancel(id);
  EXPECT_EQ(token.use_count(), 1);
  sim.run();
}

}  // namespace
}  // namespace fatih::sim
