#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fatih::sim {
namespace {

using util::Duration;
using util::SimTime;

TEST(Simulator, StartsAtOrigin) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::origin());
}

TEST(Simulator, DispatchesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::from_seconds(3), [&] { order.push_back(3); });
  sim.schedule_at(SimTime::from_seconds(1), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::from_seconds(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  const auto t = SimTime::from_seconds(1);
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(t, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, NowAdvancesDuringDispatch) {
  Simulator sim;
  SimTime seen;
  sim.schedule_at(SimTime::from_seconds(5), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, SimTime::from_seconds(5));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  SimTime seen;
  sim.schedule_at(SimTime::from_seconds(2), [&] {
    sim.schedule_in(Duration::seconds(3), [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, SimTime::from_seconds(5));
}

TEST(Simulator, CancelPreventsDispatch) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(SimTime::from_seconds(1), [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterDispatchIsNoop) {
  Simulator sim;
  int count = 0;
  const EventId id = sim.schedule_at(SimTime::from_seconds(1), [&] { ++count; });
  sim.run();
  sim.cancel(id);  // must not crash or corrupt
  EXPECT_EQ(count, 1);
}

TEST(Simulator, RunUntilStopsAtLimitInclusive) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::from_seconds(1), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::from_seconds(2), [&] { order.push_back(2); });
  sim.schedule_at(SimTime::from_seconds(3), [&] { order.push_back(3); });
  sim.run_until(SimTime::from_seconds(2));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), SimTime::from_seconds(2));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_in(Duration::millis(1), recurse);
  };
  sim.schedule_at(SimTime::origin(), recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.events_dispatched(), 100U);
}

TEST(Simulator, PastTimeRequestsRunNow) {
  // schedule_at clamps requests for the past to "now": simulated time
  // never moves backward (matters for engines commissioned mid-run).
  Simulator sim;
  std::vector<double> fired_at;
  sim.schedule_at(SimTime::from_seconds(5), [&] {
    sim.schedule_at(SimTime::from_seconds(1), [&] { fired_at.push_back(sim.now().seconds()); });
  });
  sim.schedule_at(SimTime::from_seconds(7), [&] { fired_at.push_back(sim.now().seconds()); });
  sim.run();
  ASSERT_EQ(fired_at.size(), 2U);
  EXPECT_DOUBLE_EQ(fired_at[0], 5.0);  // clamped, not time-travelled
  EXPECT_DOUBLE_EQ(fired_at[1], 7.0);
}

TEST(Simulator, RunUntilIdlesAtLimitWithEmptyQueue) {
  Simulator sim;
  sim.run_until(SimTime::from_seconds(10));
  EXPECT_EQ(sim.now(), SimTime::from_seconds(10));
}

}  // namespace
}  // namespace fatih::sim
