// Unit tests for the observability layer: TraceSink ring/sampling
// semantics, MetricsRegistry handle and snapshot behavior, Timeline
// queries, and the sim-layer wiring (PacketCounters, drop-code mapping).
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"

namespace fatih {
namespace {

using obs::MetricsRegistry;
using obs::PacketCounters;
using obs::TraceCategory;
using obs::TraceCode;
using obs::TraceConfig;
using obs::TraceEvent;
using obs::TraceSink;
using obs::TraceSource;
using util::Duration;
using util::NodeId;
using util::SimTime;

// ----------------------------------------------------------------------
// The kDrop trace-code block must mirror sim::DropReason in order: the
// sim layer maps between them with an offset-preserving switch, and
// Network::attach_observability indexes PacketCounters::drops[] by the
// raw DropReason value.

constexpr int kDropBase = static_cast<int>(TraceCode::kDropCongestion);
static_assert(static_cast<int>(TraceCode::kDropCongestion) ==
              kDropBase + static_cast<int>(sim::DropReason::kCongestion));
static_assert(static_cast<int>(TraceCode::kDropRedEarly) ==
              kDropBase + static_cast<int>(sim::DropReason::kRedEarly));
static_assert(static_cast<int>(TraceCode::kDropMalicious) ==
              kDropBase + static_cast<int>(sim::DropReason::kMalicious));
static_assert(static_cast<int>(TraceCode::kDropTtlExpired) ==
              kDropBase + static_cast<int>(sim::DropReason::kTtlExpired));
static_assert(static_cast<int>(TraceCode::kDropNoRoute) ==
              kDropBase + static_cast<int>(sim::DropReason::kNoRoute));
static_assert(static_cast<int>(TraceCode::kDropLinkFault) ==
              kDropBase + static_cast<int>(sim::DropReason::kLinkFault));
static_assert(static_cast<int>(TraceCode::kDropLinkDown) ==
              kDropBase + static_cast<int>(sim::DropReason::kLinkDown));
static_assert(static_cast<int>(TraceCode::kDropNodeDown) ==
              kDropBase + static_cast<int>(sim::DropReason::kNodeDown));
static_assert(PacketCounters::kDropKinds ==
              static_cast<std::size_t>(sim::DropReason::kNodeDown) + 1);

// ----------------------------------------------------------------------
// TraceSink

TEST(TraceSink, StampsSequenceInEmitOrder) {
  TraceSink sink;
  sink.annotate(SimTime::from_seconds(1), "first");
  sink.annotate(SimTime::from_seconds(2), "second");
  sink.drop(SimTime::from_seconds(3), TraceCode::kDropCongestion, 0, 1, 42);
  const auto evs = sink.events();
  ASSERT_EQ(evs.size(), 3U);
  EXPECT_EQ(evs[0].seq, 0U);
  EXPECT_EQ(evs[1].seq, 1U);
  EXPECT_EQ(evs[2].seq, 2U);
  EXPECT_STREQ(evs[0].note_c_str(), "first");
  EXPECT_EQ(evs[2].category, TraceCategory::kDrop);
  EXPECT_EQ(evs[2].value, 42U);
  EXPECT_EQ(sink.offered(), 3U);
  EXPECT_EQ(sink.recorded(), 3U);
  EXPECT_EQ(sink.overwritten(), 0U);
}

TEST(TraceSink, RingOverwritesOldestPastCapacity) {
  TraceConfig cfg;
  cfg.capacity = 4;
  TraceSink sink(cfg);
  for (int i = 0; i < 10; ++i) {
    sink.round_event(SimTime::from_seconds(i), TraceSource::kPi2, TraceCode::kRoundOpen, i);
  }
  EXPECT_EQ(sink.size(), 4U);
  EXPECT_EQ(sink.recorded(), 10U);
  EXPECT_EQ(sink.overwritten(), 6U);
  const auto evs = sink.events();
  ASSERT_EQ(evs.size(), 4U);
  // Oldest-first: the survivors are rounds 6..9 in order.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(evs[i].round, static_cast<std::int64_t>(6 + i));
    EXPECT_EQ(evs[i].seq, 6 + i);
  }
}

TEST(TraceSink, SamplingKeepsFirstOfEveryN) {
  TraceConfig cfg;
  cfg.sample_every[static_cast<std::size_t>(TraceCategory::kQueue)] = 3;
  TraceSink sink(cfg);
  for (int i = 0; i < 7; ++i) {
    sink.queue_depth(SimTime::from_seconds(i), 0, 1, 100 * i, 0.1 * i);
  }
  EXPECT_EQ(sink.offered(), 7U);
  // Kept: offers 0, 3, 6.
  ASSERT_EQ(sink.recorded(), 3U);
  const auto evs = sink.events();
  EXPECT_EQ(evs[0].value, 0U);
  EXPECT_EQ(evs[1].value, 300U);
  EXPECT_EQ(evs[2].value, 600U);
  // Sampling never perturbs another category.
  sink.annotate(SimTime::from_seconds(8), "x");
  EXPECT_EQ(sink.recorded(), 4U);
}

TEST(TraceSink, DisabledCategoryRecordsNothing) {
  TraceConfig cfg;
  cfg.enabled[static_cast<std::size_t>(TraceCategory::kDrop)] = false;
  TraceSink sink(cfg);
  sink.drop(SimTime::from_seconds(1), TraceCode::kDropNoRoute, 0, 1, 7);
  EXPECT_EQ(sink.offered(), 0U);
  EXPECT_EQ(sink.size(), 0U);
  sink.queue_depth(SimTime::from_seconds(1), 0, 1, 10, 0.5);
  EXPECT_EQ(sink.size(), 1U);
  EXPECT_FALSE(sink.enabled(TraceCategory::kDrop));
  EXPECT_TRUE(sink.enabled(TraceCategory::kQueue));
}

TEST(TraceSink, ClearResetsEverythingButConfig) {
  TraceConfig cfg;
  cfg.capacity = 4;
  TraceSink sink(cfg);
  for (int i = 0; i < 6; ++i) sink.annotate(SimTime::from_seconds(i), "a");
  sink.clear();
  EXPECT_EQ(sink.size(), 0U);
  EXPECT_EQ(sink.offered(), 0U);
  EXPECT_EQ(sink.recorded(), 0U);
  EXPECT_EQ(sink.config().capacity, 4U);
  sink.annotate(SimTime::from_seconds(9), "after");
  const auto evs = sink.events();
  ASSERT_EQ(evs.size(), 1U);
  EXPECT_EQ(evs[0].seq, 0U);  // sequence restarts
}

TEST(TraceSink, NoteTruncatesAtRecordSize) {
  TraceEvent ev;
  const std::string longish(100, 'x');
  ev.set_note(longish.c_str());
  EXPECT_EQ(std::strlen(ev.note_c_str()), ev.note.size() - 1);
  ev.set_note(nullptr);
  EXPECT_STREQ(ev.note_c_str(), "");
}

TEST(TraceSink, JsonlIsDeterministicAndShaped) {
  const auto fill = [](TraceSink& s) {
    s.annotate(SimTime::from_seconds(1.5), "ATTACK on");
    s.suspicion(SimTime::from_seconds(2), TraceSource::kPik2, 0, 1, 3, 3, 5, 0.97, "timeout");
  };
  TraceSink a;
  TraceSink b;
  fill(a);
  fill(b);
  EXPECT_EQ(a.to_jsonl(), b.to_jsonl());
  const std::string out = a.to_jsonl();
  EXPECT_NE(out.find("\"t_ns\":1500000000"), std::string::npos);
  EXPECT_NE(out.find("\"cat\":\"suspicion\""), std::string::npos);
  EXPECT_NE(out.find("\"note\":\"timeout\""), std::string::npos);
  EXPECT_NE(out.find("\"note\":\"ATTACK on\""), std::string::npos);
  // One line per retained event.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

// ----------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistry, HandlesAreCreatedOnceWithStableAddresses) {
  MetricsRegistry reg;
  obs::Counter& c1 = reg.counter("pi2.suspicions");
  c1.inc(3);
  obs::Counter& c2 = reg.counter("pi2.suspicions");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value(), 3U);

  util::Ewma& e1 = reg.ewma("sim.queue.fill_ewma", 0.05);
  // Shape parameters fixed by the first call.
  util::Ewma& e2 = reg.ewma("sim.queue.fill_ewma", 0.9);
  EXPECT_EQ(&e1, &e2);
  EXPECT_DOUBLE_EQ(e2.alpha(), 0.05);

  util::Histogram& h1 = reg.histogram("chi.error", -1.0, 1.0, 10);
  util::Histogram& h2 = reg.histogram("chi.error", 0.0, 5.0, 3);
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bins(), 10U);
}

TEST(MetricsRegistry, FindReturnsNullWhenAbsent) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.find_gauge("nope"), nullptr);
  EXPECT_EQ(reg.find_ewma("nope"), nullptr);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
  EXPECT_EQ(reg.counter_value("nope"), 0U);

  reg.counter("yes").inc(5);
  ASSERT_NE(reg.find_counter("yes"), nullptr);
  EXPECT_EQ(reg.counter_value("yes"), 5U);
}

TEST(MetricsRegistry, SnapshotIsDeterministicAndSorted) {
  const auto fill = [](MetricsRegistry& r) {
    // Insert out of name order; snapshots must sort.
    r.counter("z.last").inc(2);
    r.counter("a.first").inc(1);
    r.gauge("m.middle").set(0.25);
    r.ewma("e.avg", 0.5).add(2.0);
    r.histogram("h.bins", 0.0, 10.0, 2).add(7.5);
  };
  MetricsRegistry r1;
  MetricsRegistry r2;
  fill(r1);
  fill(r2);
  EXPECT_EQ(r1.to_json(), r2.to_json());
  const std::string out = r1.to_json();
  const auto a = out.find("a.first");
  const auto z = out.find("z.last");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, z);
  EXPECT_NE(out.find("m.middle"), std::string::npos);
  EXPECT_NE(out.find("e.avg"), std::string::npos);
  EXPECT_NE(out.find("h.bins"), std::string::npos);
}

#if FATIH_TRACE
TEST(MetricsRegistry, MacroFormsNullCheck) {
  // Both macro forms must be safe with nothing attached...
  obs::Counter* handle = nullptr;
  MetricsRegistry* reg = nullptr;
  FATIH_METRIC(handle, inc());
  FATIH_METRIC_REG(reg, counter("x").inc());
  // ... and effective when attached.
  MetricsRegistry live;
  obs::Counter& c = live.counter("x");
  handle = &c;
  reg = &live;
  FATIH_METRIC(handle, inc(2));
  FATIH_METRIC_REG(reg, counter("x").inc());
  EXPECT_EQ(live.counter_value("x"), 3U);
}
#endif  // FATIH_TRACE

// ----------------------------------------------------------------------
// Timeline

TEST(Timeline, SelectsFiltersAndOrders) {
  TraceSink sink;
  sink.annotate(SimTime::from_seconds(1), "COMMISSION");
  sink.route(SimTime::from_seconds(2), TraceCode::kSpfRun, 0, util::kInvalidNode, 1);
  sink.route(SimTime::from_seconds(3), TraceCode::kRouteChange, 0, util::kInvalidNode, 1);
  sink.route(SimTime::from_seconds(4), TraceCode::kRouteChange, 1, util::kInvalidNode, 1);
  obs::Timeline tl(sink);
  EXPECT_EQ(tl.events().size(), 4U);
  EXPECT_EQ(tl.select(TraceCategory::kRoute).size(), 3U);
  const auto changes = tl.select(TraceCategory::kRoute, TraceCode::kRouteChange);
  ASSERT_EQ(changes.size(), 2U);
  EXPECT_EQ(changes[0].a, 0U);
  EXPECT_EQ(changes[1].a, 1U);
  ASSERT_TRUE(tl.first(TraceCategory::kRoute, TraceCode::kRouteChange).has_value());
  EXPECT_EQ(tl.first(TraceCategory::kRoute, TraceCode::kRouteChange)->at,
            SimTime::from_seconds(3));
  EXPECT_EQ(tl.last(TraceCategory::kRoute, TraceCode::kRouteChange)->at,
            SimTime::from_seconds(4));
  EXPECT_FALSE(tl.first(TraceCategory::kSuspicion).has_value());
}

TEST(Timeline, DescribesWithCustomNames) {
  TraceSink sink;
  sink.suspicion(SimTime::from_seconds(5), TraceSource::kPi2, 0, 1, 1, 1, 4, 0.91, "tv-mismatch");
  sink.route(SimTime::from_seconds(6), TraceCode::kRouteChange, 2);
  obs::Timeline tl(sink, [](NodeId n) { return "node-" + std::to_string(n); });
  const auto evs = tl.events();
  ASSERT_EQ(evs.size(), 2U);
  const std::string detect = tl.describe(evs[0]);
  EXPECT_NE(detect.find("DETECT"), std::string::npos);
  EXPECT_NE(detect.find("node-0"), std::string::npos);
  EXPECT_NE(detect.find("tv-mismatch"), std::string::npos);
  const std::string reroute = tl.describe(evs[1]);
  EXPECT_NE(reroute.find("REROUTE"), std::string::npos);
  EXPECT_NE(reroute.find("node-2"), std::string::npos);
}

TEST(Timeline, EntriesMergeCategoriesInTimeOrder) {
  TraceSink sink;
  sink.annotate(SimTime::from_seconds(1), "ATTACK on");
  sink.route(SimTime::from_seconds(2), TraceCode::kRouteChange, 0);
  sink.suspicion(SimTime::from_seconds(3), TraceSource::kChi, 1, 1, 2, 2, 7, 0.99, "z-test");
  obs::Timeline tl(sink);
  const auto entries = tl.entries(
      {TraceCategory::kAnnotation, TraceCategory::kSuspicion, TraceCategory::kRoute});
  ASSERT_EQ(entries.size(), 3U);
  EXPECT_EQ(entries[0].label, "ATTACK on");
  EXPECT_LE(entries[0].at, entries[1].at);
  EXPECT_LE(entries[1].at, entries[2].at);
  const std::string json = obs::Timeline::to_json(entries);
  EXPECT_NE(json.find("\"t\": 1.000000"), std::string::npos);
  EXPECT_NE(json.find("\"event\": \"ATTACK on\""), std::string::npos);
  EXPECT_EQ(obs::Timeline::to_json({}), "[]");
}

// ----------------------------------------------------------------------
// Sim wiring: attach_observability resolves PacketCounters, the per-packet
// paths count into them, and drops land in the reason-indexed counter.
// Compiled-out builds (-DFATIH_TRACE=0) have no emit points to test.

#if FATIH_TRACE
struct WiredPair {
  sim::Network net{1};
  sim::Router* a;
  sim::Router* b;
  TraceSink sink;
  MetricsRegistry metrics;

  explicit WiredPair(sim::LinkConfig cfg = {}) {
    a = &net.add_router("a");
    b = &net.add_router("b");
    net.connect(a->id(), b->id(), cfg);
    a->set_route(b->id(), 0);
    b->set_route(a->id(), 0);
    net.attach_observability(&sink, &metrics);
  }

  sim::Packet make(std::uint32_t payload) {
    sim::PacketHeader hdr;
    hdr.src = a->id();
    hdr.dst = b->id();
    return net.make_packet(hdr, payload);
  }
};

TEST(SimWiring, PacketPathCountsIntoRegistry) {
  WiredPair p;
  p.net.sim().schedule_at(SimTime::origin(), [&] {
    p.a->originate(p.make(100));
    p.a->originate(p.make(100));
  });
  p.net.sim().run();
  EXPECT_EQ(p.metrics.counter_value("sim.enqueued"), 2U);
  EXPECT_EQ(p.metrics.counter_value("sim.transmitted"), 2U);
  // Queue-depth samples rode along with the enqueues.
  obs::Timeline tl(p.sink);
  EXPECT_EQ(tl.select(TraceCategory::kQueue).size(), 2U);
  const util::Ewma* fill = p.metrics.find_ewma("sim.queue.fill_ewma");
  ASSERT_NE(fill, nullptr);
  EXPECT_EQ(fill->count(), 2U);
}

TEST(SimWiring, DropsLandInReasonIndexedCounterAndTrace) {
  WiredPair p;
  sim::Packet pkt = p.make(100);
  pkt.hdr.ttl = 1;  // expires at the first router
  p.net.sim().schedule_at(SimTime::origin(), [&] { p.a->originate(pkt); });
  p.net.sim().run();
  EXPECT_EQ(p.metrics.counter_value("sim.drop.ttl_expired"), 1U);
  EXPECT_EQ(p.metrics.counter_value("sim.drop.congestion"), 0U);
  obs::Timeline tl(p.sink);
  const auto drop = tl.first(TraceCategory::kDrop);
  ASSERT_TRUE(drop.has_value());
  EXPECT_EQ(drop->code, TraceCode::kDropTtlExpired);
}

TEST(SimWiring, DetachIsSafe) {
  WiredPair p;
  p.net.attach_observability(nullptr, nullptr);
  p.net.sim().schedule_at(SimTime::origin(), [&] { p.a->originate(p.make(100)); });
  p.net.sim().run();  // must not crash; nothing recorded
  EXPECT_EQ(p.sink.size(), 0U);
  EXPECT_EQ(p.metrics.counter_value("sim.enqueued"), 0U);
}
#endif  // FATIH_TRACE

}  // namespace
}  // namespace fatih
