// The observability acceptance test: two identically-seeded runs of the
// churn scenario (all three detection engines, an attacker, a link flap
// on a live link-state fabric) must serialize byte-identical traces and
// metrics snapshots. This is the property that makes the trace sink a
// legitimate test/bench instrument — if observation perturbed the run or
// recorded nondeterministically, figure regeneration and trace-based
// assertions would be meaningless.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "attacks/attacks.hpp"
#include "detection/chi.hpp"
#include "detection/pi2.hpp"
#include "detection/pik2.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "tests/detection/churn_net.hpp"

#if FATIH_TRACE

namespace fatih::detection {
namespace {

using util::Duration;
using util::SimTime;

constexpr std::int64_t kRounds = 14;
constexpr double kEndS = 18.0;

/// Everything one run leaves behind, serialized.
struct RunRecord {
  std::string trace_jsonl;
  std::string metrics_json;
  std::uint64_t trace_recorded = 0;
  DetectorCounters pi2_counters;
  DetectorCounters pik2_counters;
  DetectorCounters chi_counters;
  ReliableChannel::Stats reliable;
};

RunRecord run_once(std::uint64_t seed) {
  obs::TraceSink sink;
  obs::MetricsRegistry metrics;

  testing::ChurnNet n(seed);
  n.net.attach_observability(&sink, &metrics);
  n.add_cbr(0, 2, /*flow=*/1, /*pps=*/400.0, /*start=*/2.05, /*stop=*/16.5);

  attacks::FlowMatch match;
  match.flow_ids = {1};
  n.net.router(1).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 0.3, SimTime::from_seconds(5.5), 99));

  Pi2Config p2;
  p2.clock = testing::ChurnNet::clock();
  p2.k = 1;
  p2.collect_settle = Duration::millis(150);
  p2.evaluate_settle = Duration::millis(300);
  p2.policy = TvPolicy::kContentOrder;
  p2.rounds = kRounds;
  auto pi2 = std::make_unique<Pi2Engine>(n.net, n.keys, *n.paths,
                                         testing::ChurnNet::terminals(), p2);

  Pik2Config pk;
  pk.clock = testing::ChurnNet::clock();
  pk.k = 1;
  pk.collect_settle = Duration::millis(150);
  pk.exchange_timeout = Duration::millis(500);
  pk.policy = TvPolicy::kContentOrder;
  pk.rounds = kRounds;
  pk.reliable.enabled = true;
  auto pik2 = std::make_unique<Pik2Engine>(n.net, n.keys, *n.paths,
                                           testing::ChurnNet::terminals(), pk);

  ChiConfig cc;
  cc.clock = testing::ChurnNet::clock();
  cc.settle = Duration::millis(400);
  cc.grace = Duration::millis(200);
  cc.learning_rounds = 3;
  cc.rounds = kRounds;
  auto chi = std::make_unique<QueueValidator>(n.net, n.keys, *n.paths,
                                              /*owner=*/1, /*peer=*/2, cc);

  testing::ChurnNet::flap_schedule().arm(n.net);
  pi2->start();
  pik2->start();
  chi->start();
  sink.annotate(SimTime::origin(), "COMMISSION");
  n.net.sim().run_until(SimTime::from_seconds(kEndS));

  RunRecord rec;
  rec.trace_jsonl = sink.to_jsonl();
  rec.metrics_json = metrics.to_json();
  rec.trace_recorded = sink.recorded();
  rec.pi2_counters = pi2->counters();
  rec.pik2_counters = pik2->counters();
  rec.chi_counters = chi->counters();
  rec.reliable = pik2->channel()->stats();
  return rec;
}

void expect_counters_eq(const DetectorCounters& x, const DetectorCounters& y) {
  EXPECT_EQ(x.rounds_opened, y.rounds_opened);
  EXPECT_EQ(x.rounds_evaluated, y.rounds_evaluated);
  EXPECT_EQ(x.rounds_invalidated, y.rounds_invalidated);
  EXPECT_EQ(x.suspicions, y.suspicions);
}

TEST(TraceDeterminism, IdenticalSeedsProduceByteIdenticalOutput) {
  const RunRecord r1 = run_once(/*seed=*/7);
  const RunRecord r2 = run_once(/*seed=*/7);

  // Non-vacuous: the scenario actually produced a substantial trace.
  EXPECT_GT(r1.trace_recorded, 100U);
  EXPECT_FALSE(r1.metrics_json.empty());

  // The headline property.
  EXPECT_EQ(r1.trace_jsonl, r2.trace_jsonl);
  EXPECT_EQ(r1.metrics_json, r2.metrics_json);
  EXPECT_EQ(r1.trace_recorded, r2.trace_recorded);
  expect_counters_eq(r1.pi2_counters, r2.pi2_counters);
  expect_counters_eq(r1.pik2_counters, r2.pik2_counters);
  expect_counters_eq(r1.chi_counters, r2.chi_counters);
}

TEST(TraceDeterminism, DifferentSeedsDiverge) {
  // The converse guard: if every seed serialized identically, the
  // determinism assertion above would be vacuous.
  const RunRecord r1 = run_once(/*seed=*/7);
  const RunRecord r2 = run_once(/*seed=*/8);
  EXPECT_NE(r1.trace_jsonl, r2.trace_jsonl);
}

TEST(TraceDeterminism, EveryInstrumentedLayerAppearsInTheTrace) {
  obs::TraceSink sink;
  obs::MetricsRegistry metrics;
  {
    // Re-run once with the sink shared so we can query the live objects.
    testing::ChurnNet n(7);
    n.net.attach_observability(&sink, &metrics);
    n.add_cbr(0, 2, 1, 400.0, 2.05, 16.5);
    attacks::FlowMatch match;
    match.flow_ids = {1};
    n.net.router(1).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
        match, 0.3, SimTime::from_seconds(5.5), 99));
    Pik2Config pk;
    pk.clock = testing::ChurnNet::clock();
    pk.k = 1;
    pk.collect_settle = Duration::millis(150);
    pk.exchange_timeout = Duration::millis(500);
    pk.policy = TvPolicy::kContentOrder;
    pk.rounds = kRounds;
    pk.reliable.enabled = true;
    Pik2Engine pik2(n.net, n.keys, *n.paths, testing::ChurnNet::terminals(), pk);
    testing::ChurnNet::flap_schedule().arm(n.net);
    pik2.start();
    n.net.sim().run_until(SimTime::from_seconds(kEndS));

    // The engine's introspection counters and the registry mirror agree.
    const DetectorCounters& c = pik2.counters();
    EXPECT_EQ(metrics.counter_value("pik2.rounds_opened"), c.rounds_opened);
    EXPECT_EQ(metrics.counter_value("pik2.rounds_evaluated"), c.rounds_evaluated);
    EXPECT_EQ(metrics.counter_value("pik2.rounds_invalidated"), c.rounds_invalidated);
    EXPECT_EQ(metrics.counter_value("pik2.suspicions"), c.suspicions);
    EXPECT_GT(c.rounds_invalidated, 0U);  // the flap straddled rounds

    // Reliable transport counters mirror the channel stats.
    ASSERT_NE(pik2.channel(), nullptr);
    const ReliableChannel::Stats& rs = pik2.channel()->stats();
    EXPECT_EQ(metrics.counter_value("reliable.messages"), rs.messages);
    EXPECT_EQ(metrics.counter_value("reliable.transmissions"), rs.transmissions);
    EXPECT_EQ(metrics.counter_value("reliable.retransmits"), rs.retransmits);
    EXPECT_EQ(metrics.counter_value("reliable.failures"), rs.failures);
    EXPECT_EQ(metrics.counter_value("reliable.acks_received"), rs.acks_received);
    EXPECT_GT(rs.messages, 0U);
  }

  // Every layer that claims instrumentation shows up.
  obs::Timeline tl(sink);
  using obs::TraceCategory;
  using obs::TraceCode;
  EXPECT_TRUE(tl.first(TraceCategory::kQueue).has_value());          // sim enqueue
  EXPECT_TRUE(tl.first(TraceCategory::kDrop).has_value());           // attacker drops
  EXPECT_TRUE(tl.first(TraceCategory::kRoute, TraceCode::kSpfRun).has_value());
  EXPECT_TRUE(tl.first(TraceCategory::kRoute, TraceCode::kLinkDown).has_value());
  EXPECT_TRUE(tl.first(TraceCategory::kRoute, TraceCode::kLinkUp).has_value());
  EXPECT_TRUE(tl.first(TraceCategory::kRoute, TraceCode::kRouteChange).has_value());
  EXPECT_TRUE(tl.first(TraceCategory::kRound, TraceCode::kRoundOpen).has_value());
  EXPECT_TRUE(tl.first(TraceCategory::kRound, TraceCode::kRoundInvalidated).has_value());
  EXPECT_TRUE(tl.first(TraceCategory::kExchange, TraceCode::kExchangeSend).has_value());
  EXPECT_TRUE(tl.first(TraceCategory::kSuspicion).has_value());
  // Registry saw the sim hot path.
  EXPECT_GT(metrics.counter_value("sim.enqueued"), 0U);
  EXPECT_GT(metrics.counter_value("sim.forwarded"), 0U);
  EXPECT_GT(metrics.counter_value("sim.drop.malicious"), 0U);
  EXPECT_GT(metrics.counter_value("routing.spf_runs"), 0U);
}

}  // namespace
}  // namespace fatih::detection

#endif  // FATIH_TRACE
