// Self-test for tools/fatih-lint against the fixture corpus in
// tests/lint/fixtures/. Every rule gets at least one known-bad, one
// known-clean, and one suppressed case; the JSON report shape is pinned
// byte-for-byte so downstream consumers (CI annotations, tools/lint.sh)
// can rely on it.
//
// Fixtures are read from disk but linted under *virtual* repo-relative
// paths (src/lintfix/...), because the rules scope by path: R1/R2 have
// util/time / util/rng exemptions, R5 applies to src/ only, and R7 keys
// module layering off the first directory under src/.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "lint.hpp"

namespace fatih::lint {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture: " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Lints one fixture file under a virtual path.
Report lint_fixture(const std::string& name, const std::string& virtual_path,
                    const Config& cfg = Config{}) {
  return lint_files({{virtual_path, read_fixture(name)}}, cfg);
}

std::vector<std::size_t> lines_of(const Report& r, Rule rule) {
  std::vector<std::size_t> out;
  for (const Diagnostic& d : r.diagnostics)
    if (d.rule == rule) out.push_back(d.line);
  return out;
}

bool all_rule(const Report& r, Rule rule) {
  for (const Diagnostic& d : r.diagnostics)
    if (d.rule != rule) return false;
  return true;
}

// ------------------------------------------------------------ rule metadata

TEST(RuleMeta, NamesAndIdsRoundTrip) {
  for (std::size_t i = 0; i < kRuleCount; ++i) {
    const Rule r = static_cast<Rule>(i);
    Rule parsed;
    ASSERT_TRUE(parse_rule(rule_name(r), parsed)) << rule_name(r);
    EXPECT_EQ(parsed, r);
    ASSERT_TRUE(parse_rule(rule_id(r), parsed)) << rule_id(r);
    EXPECT_EQ(parsed, r);
  }
  Rule parsed;
  EXPECT_TRUE(parse_rule("R3", parsed));  // ids are case-insensitive
  EXPECT_EQ(parsed, Rule::kNoUnorderedIteration);
  EXPECT_FALSE(parse_rule("not-a-rule", parsed));
}

// ------------------------------------------------------------------- R1

TEST(R1Wallclock, FlagsEveryWallclockRead) {
  const Report r = lint_fixture("r1_wallclock_bad.cpp", "src/lintfix/r1_wallclock_bad.cpp");
  EXPECT_TRUE(all_rule(r, Rule::kNoWallclock));
  EXPECT_EQ(lines_of(r, Rule::kNoWallclock), (std::vector<std::size_t>{7, 8, 9, 10}));
  EXPECT_EQ(r.suppressed, 0u);
}

TEST(R1Wallclock, IgnoresDeclarationsAndQualifiedCalls) {
  const Report r = lint_fixture("r1_wallclock_clean.cpp", "src/lintfix/r1_wallclock_clean.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
}

TEST(R1Wallclock, JustifiedSuppressionSilences) {
  const Report r =
      lint_fixture("r1_wallclock_suppressed.cpp", "src/lintfix/r1_wallclock_suppressed.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(R1Wallclock, BenchAndTimeUtilAreExempt) {
  const std::string content = read_fixture("r1_wallclock_bad.cpp");
  EXPECT_TRUE(lint_files({{"bench/lintfix/r1.cpp", content}}, Config{}).diagnostics.empty());
  EXPECT_TRUE(lint_files({{"src/util/time.cpp", content}}, Config{}).diagnostics.empty());
}

// ------------------------------------------------------------------- R2

TEST(R2AmbientRng, FlagsEveryAmbientSource) {
  const Report r = lint_fixture("r2_rng_bad.cpp", "src/lintfix/r2_rng_bad.cpp");
  EXPECT_TRUE(all_rule(r, Rule::kNoAmbientRng));
  EXPECT_EQ(lines_of(r, Rule::kNoAmbientRng), (std::vector<std::size_t>{6, 7, 8, 9, 10}));
}

TEST(R2AmbientRng, AllowsExplicitlySeededEngines) {
  const Report r = lint_fixture("r2_rng_clean.cpp", "src/lintfix/r2_rng_clean.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
}

TEST(R2AmbientRng, JustifiedSuppressionSilences) {
  const Report r = lint_fixture("r2_rng_suppressed.cpp", "src/lintfix/r2_rng_suppressed.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
  EXPECT_EQ(r.suppressed, 1u);
}

// ------------------------------------------------------------------- R3

TEST(R3UnorderedIteration, FlagsRangeForAndBegin) {
  const Report r =
      lint_fixture("r3_unordered_iter_bad.cpp", "src/lintfix/r3_unordered_iter_bad.cpp");
  EXPECT_TRUE(all_rule(r, Rule::kNoUnorderedIteration));
  EXPECT_EQ(lines_of(r, Rule::kNoUnorderedIteration), (std::vector<std::size_t>{12, 15}));
}

TEST(R3UnorderedIteration, AllowsLookupsAndOrderedContainers) {
  const Report r =
      lint_fixture("r3_unordered_iter_clean.cpp", "src/lintfix/r3_unordered_iter_clean.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
}

TEST(R3UnorderedIteration, JustifiedSuppressionSilences) {
  const Report r = lint_fixture("r3_unordered_iter_suppressed.cpp",
                                "src/lintfix/r3_unordered_iter_suppressed.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(R3UnorderedIteration, HeaderDeclarationCoversSourceIteration) {
  // A member declared unordered in foo.hpp is tracked when foo.cpp
  // iterates it (same stem).
  const Report r = lint_files(
      {{"src/lintfix/pair.hpp",
        "#pragma once\n#include <unordered_map>\nstruct P { std::unordered_map<int,int> m_; };\n"},
       {"src/lintfix/pair.cpp",
        "#include \"lintfix/pair.hpp\"\nint f(P& p) {\n  int t = 0;\n  for (auto& kv : p.m_) t "
        "+= kv.second;\n  return t;\n}\n"}},
      Config{});
  ASSERT_EQ(r.diagnostics.size(), 1u) << to_text(r);
  EXPECT_EQ(r.diagnostics[0].rule, Rule::kNoUnorderedIteration);
  EXPECT_EQ(r.diagnostics[0].file, "src/lintfix/pair.cpp");
}

// ------------------------------------------------------------------- R4

TEST(R4PointerKeyedOrder, FlagsPointerKeysAndComparators) {
  const Report r = lint_fixture("r4_pointer_order_bad.cpp", "src/lintfix/r4_pointer_order_bad.cpp");
  EXPECT_TRUE(all_rule(r, Rule::kNoPointerKeyedOrder));
  EXPECT_EQ(lines_of(r, Rule::kNoPointerKeyedOrder), (std::vector<std::size_t>{12, 13, 15}));
}

TEST(R4PointerKeyedOrder, AllowsStableKeysAndFieldComparators) {
  const Report r =
      lint_fixture("r4_pointer_order_clean.cpp", "src/lintfix/r4_pointer_order_clean.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
}

TEST(R4PointerKeyedOrder, JustifiedSuppressionSilences) {
  const Report r = lint_fixture("r4_pointer_order_suppressed.cpp",
                                "src/lintfix/r4_pointer_order_suppressed.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
  EXPECT_EQ(r.suppressed, 1u);
}

// ------------------------------------------------------------------- R5

TEST(R5Iostream, FlagsConsoleStreamsUnderSrc) {
  const Report r = lint_fixture("r5_iostream_bad.cpp", "src/lintfix/r5_iostream_bad.cpp");
  EXPECT_TRUE(all_rule(r, Rule::kNoIostream));
  EXPECT_EQ(lines_of(r, Rule::kNoIostream), (std::vector<std::size_t>{5, 6}));
}

TEST(R5Iostream, OnlyAppliesToSrc) {
  const std::string content = read_fixture("r5_iostream_bad.cpp");
  EXPECT_TRUE(lint_files({{"tests/lintfix/r5.cpp", content}}, Config{}).diagnostics.empty());
  EXPECT_TRUE(lint_files({{"bench/lintfix/r5.cpp", content}}, Config{}).diagnostics.empty());
}

TEST(R5Iostream, AllowsStringStreams) {
  const Report r = lint_fixture("r5_iostream_clean.cpp", "src/lintfix/r5_iostream_clean.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
}

TEST(R5Iostream, JustifiedSuppressionSilences) {
  const Report r =
      lint_fixture("r5_iostream_suppressed.cpp", "src/lintfix/r5_iostream_suppressed.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
  EXPECT_EQ(r.suppressed, 1u);
}

// ------------------------------------------------------------------- R6

TEST(R6TraceEventInit, FlagsUninitFieldsAndPartialBraceInit) {
  const Report r = lint_fixture("r6_event_init_bad.cpp", "src/lintfix/r6_event_init_bad.cpp");
  EXPECT_TRUE(all_rule(r, Rule::kTraceEventInit));
  // Lines 7 and 9: fields without initializers; line 13: FixtureTraceEvent{1, "send"}
  // initializes 2 of 3 fields; lines 17 and 22: uninitialized fields of the
  // evidence-layer structs (*Evidence suffix and the exact-name records).
  EXPECT_EQ(lines_of(r, Rule::kTraceEventInit), (std::vector<std::size_t>{7, 9, 13, 17, 22}));
}

TEST(R6TraceEventInit, AllowsFullInitAndIgnoresNonEventStructs) {
  const Report r = lint_fixture("r6_event_init_clean.cpp", "src/lintfix/r6_event_init_clean.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
}

TEST(R6TraceEventInit, JustifiedSuppressionSilences) {
  const Report r =
      lint_fixture("r6_event_init_suppressed.cpp", "src/lintfix/r6_event_init_suppressed.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(R6TraceEventInit, FlagsSpecAndSnapshotSuffixes) {
  const Report r = lint_fixture("r6_spec_init_bad.cpp", "src/lintfix/r6_spec_init_bad.cpp");
  EXPECT_TRUE(all_rule(r, Rule::kTraceEventInit));
  // Lines 7 and 9: uninitialized *Spec fields; line 13: partial aggregate
  // init; line 17: uninitialized *Snapshot field.
  EXPECT_EQ(lines_of(r, Rule::kTraceEventInit), (std::vector<std::size_t>{7, 9, 13, 17}));
}

TEST(R6TraceEventInit, AllowsFullSpecInitAndBareSuffixNames) {
  const Report r = lint_fixture("r6_spec_init_clean.cpp", "src/lintfix/r6_spec_init_clean.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
}

TEST(R6TraceEventInit, SpecSuppressionSilences) {
  const Report r =
      lint_fixture("r6_spec_init_suppressed.cpp", "src/lintfix/r6_spec_init_suppressed.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
  EXPECT_EQ(r.suppressed, 1u);
}

// ------------------------------------------------------------------- R7

TEST(R7IncludeGraph, DetectsTwoFileCycle) {
  const Report r = lint_files({{"src/lintfix/r7_cycle_a.hpp", read_fixture("r7_cycle_a.hpp")},
                               {"src/lintfix/r7_cycle_b.hpp", read_fixture("r7_cycle_b.hpp")}},
                              Config{});
  ASSERT_EQ(r.diagnostics.size(), 1u) << to_text(r);
  EXPECT_EQ(r.diagnostics[0].rule, Rule::kNoIncludeCycles);
  // Anchored on the lexicographically first member's offending include.
  EXPECT_EQ(r.diagnostics[0].file, "src/lintfix/r7_cycle_a.hpp");
  EXPECT_EQ(r.diagnostics[0].line, 3u);
  EXPECT_NE(r.diagnostics[0].message.find("include cycle"), std::string::npos);
}

TEST(R7IncludeGraph, FlagsLayeringInversion) {
  // sim/ sits below detection/ in the module DAG, so a sim/ header must
  // not include detection/.
  const Report r = lint_fixture("r7_layering_bad.hpp", "src/sim/r7_layering_bad.hpp");
  ASSERT_EQ(r.diagnostics.size(), 1u) << to_text(r);
  EXPECT_EQ(r.diagnostics[0].rule, Rule::kNoIncludeCycles);
  EXPECT_EQ(r.diagnostics[0].line, 4u);
  EXPECT_NE(r.diagnostics[0].message.find("layering violation"), std::string::npos);
}

TEST(R7IncludeGraph, AllowsDagRespectingIncludes) {
  const Report r = lint_fixture("r7_clean.hpp", "src/detection/r7_clean.hpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
}

TEST(R7IncludeGraph, JustifiedSuppressionSilences) {
  const Report r = lint_fixture("r7_suppressed.hpp", "src/sim/r7_suppressed.hpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
  EXPECT_EQ(r.suppressed, 1u);
}

// ------------------------------------------------------------------- R8

TEST(R8SimdContainment, FlagsRawVectorTypesOutsideCrypto) {
  const Report r = lint_fixture("r8_simd_bad.cpp", "src/lintfix/r8_simd_bad.cpp");
  EXPECT_TRUE(all_rule(r, Rule::kSimdContainment));
  EXPECT_EQ(lines_of(r, Rule::kSimdContainment), (std::vector<std::size_t>{6, 7, 8}));
}

TEST(R8SimdContainment, CryptoModuleIsExempt) {
  // The kernels themselves live behind src/crypto/; the rule is about
  // containment, not about the intrinsics existing at all.
  const std::string content = read_fixture("r8_simd_bad.cpp");
  EXPECT_TRUE(lint_files({{"src/crypto/kernels.cpp", content}}, Config{}).diagnostics.empty());
}

TEST(R8SimdContainment, AppliesOutsideSrcToo) {
  // bench/ and tests/ also consume the dispatched API; a raw vector type
  // there forks the code path just the same.
  const std::string content = read_fixture("r8_simd_bad.cpp");
  EXPECT_EQ(lint_files({{"bench/lintfix/r8.cpp", content}}, Config{}).diagnostics.size(), 3u);
}

TEST(R8SimdContainment, AllowsDispatchedApiAndInertMentions) {
  const Report r = lint_fixture("r8_simd_clean.cpp", "src/lintfix/r8_simd_clean.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
}

TEST(R8SimdContainment, JustifiedSuppressionSilences) {
  const Report r = lint_fixture("r8_simd_suppressed.cpp", "src/lintfix/r8_simd_suppressed.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
  EXPECT_EQ(r.suppressed, 1u);
}

// ------------------------------------------------------------------- R9

TEST(R9ThreadContainment, FlagsPrimitivesOutsideShardRuntime) {
  const Report r = lint_fixture("r9_thread_bad.cpp", "src/lintfix/r9_thread_bad.cpp");
  EXPECT_TRUE(all_rule(r, Rule::kThreadContainment));
  EXPECT_EQ(lines_of(r, Rule::kThreadContainment), (std::vector<std::size_t>{6, 7, 8, 9}));
}

TEST(R9ThreadContainment, ShardRuntimeIsExempt) {
  // The worker pool itself lives behind src/sim/shard*; the rule is about
  // containment, not about concurrency existing at all.
  const std::string content = read_fixture("r9_thread_bad.cpp");
  EXPECT_TRUE(lint_files({{"src/sim/shard.cpp", content}}, Config{}).diagnostics.empty());
  EXPECT_TRUE(
      lint_files({{"src/sim/shard_pool.hpp", content}}, Config{}).diagnostics.empty());
}

TEST(R9ThreadContainment, AppliesOutsideSrcToo) {
  // tests/ and bench/ drive the engine through ScenarioRun's thread
  // parameter; hand-rolled threads there dodge the same barrier proof.
  const std::string content = read_fixture("r9_thread_bad.cpp");
  EXPECT_EQ(lint_files({{"tests/lintfix/r9.cpp", content}}, Config{}).diagnostics.size(), 4u);
}

TEST(R9ThreadContainment, AllowsUnqualifiedAndInertMentions) {
  const Report r = lint_fixture("r9_thread_clean.cpp", "src/lintfix/r9_thread_clean.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
}

TEST(R9ThreadContainment, JustifiedSuppressionSilences) {
  const Report r =
      lint_fixture("r9_thread_suppressed.cpp", "src/lintfix/r9_thread_suppressed.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
  EXPECT_EQ(r.suppressed, 1u);
}

// -------------------------------------------------------- suppression rules

TEST(Suppression, BareAllowIsAViolationAndDoesNotSuppress) {
  const Report r = lint_fixture("bare_suppression.cpp", "src/lintfix/bare_suppression.cpp");
  ASSERT_EQ(r.diagnostics.size(), 2u) << to_text(r);
  EXPECT_EQ(r.diagnostics[0].rule, Rule::kBareSuppression);
  EXPECT_EQ(r.diagnostics[0].line, 6u);
  EXPECT_EQ(r.diagnostics[1].rule, Rule::kNoIostream);  // still fires
  EXPECT_EQ(r.diagnostics[1].line, 7u);
  EXPECT_EQ(r.suppressed, 0u);
}

TEST(Suppression, UnknownRuleNameIsFlagged) {
  const Report r = lint_files(
      {{"src/lintfix/unknown.cpp",
        "// fatih-lint: allow(no-such-rule) justified but meaningless\nint x = 0;\n"}},
      Config{});
  ASSERT_EQ(r.diagnostics.size(), 1u) << to_text(r);
  EXPECT_EQ(r.diagnostics[0].rule, Rule::kBareSuppression);
  EXPECT_NE(r.diagnostics[0].message.find("no-such-rule"), std::string::npos);
}

TEST(Suppression, CoversOwnLineOnly) {
  // The suppression window is the comment's line and the next line — a
  // violation two lines down still fires.
  const Report r = lint_files(
      {{"src/lintfix/window.cpp",
        "#include <iostream>\n"
        "// fatih-lint: allow(no-iostream-in-hot-path) only covers the next line\n"
        "int pad = 0;\n"
        "void f() { std::cout << pad; }\n"}},
      Config{});
  ASSERT_EQ(r.diagnostics.size(), 1u) << to_text(r);
  EXPECT_EQ(r.diagnostics[0].rule, Rule::kNoIostream);
  EXPECT_EQ(r.diagnostics[0].line, 4u);
}

// --------------------------------------------------------------- rule toggles

TEST(Config, DisabledRuleDoesNotFire) {
  Config cfg;
  cfg.set(Rule::kNoWallclock, false);
  const Report r =
      lint_fixture("r1_wallclock_bad.cpp", "src/lintfix/r1_wallclock_bad.cpp", cfg);
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
}

TEST(Config, TogglesAreIndependent) {
  Config cfg;
  cfg.set(Rule::kNoIostream, false);
  const Report r = lint_fixture("bare_suppression.cpp", "src/lintfix/bare_suppression.cpp", cfg);
  // The iostream hit is gone but the bare-suppression meta-rule still fires.
  ASSERT_EQ(r.diagnostics.size(), 1u) << to_text(r);
  EXPECT_EQ(r.diagnostics[0].rule, Rule::kBareSuppression);
}

// ------------------------------------------------------------- output shape

TEST(Output, JsonShapeIsPinned) {
  const Report r = lint_files(
      {{"src/lintfix/one.cpp", "#include <iostream>\nvoid f() { std::cerr << 1; }\n"}}, Config{});
  ASSERT_EQ(r.diagnostics.size(), 1u);
  const std::string expected =
      "{\n"
      "  \"tool\": \"fatih-lint\",\n"
      "  \"schema_version\": 2,\n"
      "  \"files_scanned\": 1,\n"
      "  \"violation_count\": 1,\n"
      "  \"suppressed_count\": 0,\n"
      "  \"violations\": [\n"
      "    {\"file\": \"src/lintfix/one.cpp\", \"line\": 2, \"rule\": "
      "\"no-iostream-in-hot-path\", \"id\": \"R5\", \"message\": \"'std::cerr' in src/: library "
      "code must stay silent on hot paths; route output through util::log or the obs trace "
      "sink\"}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(to_json(r), expected);
}

TEST(Output, JsonEmptyViolationsShape) {
  const Report r = lint_files({{"src/lintfix/empty.cpp", "int x = 0;\n"}}, Config{});
  const std::string expected =
      "{\n"
      "  \"tool\": \"fatih-lint\",\n"
      "  \"schema_version\": 2,\n"
      "  \"files_scanned\": 1,\n"
      "  \"violation_count\": 0,\n"
      "  \"suppressed_count\": 0,\n"
      "  \"violations\": []\n"
      "}\n";
  EXPECT_EQ(to_json(r), expected);
}

TEST(Output, TextFormat) {
  const Report r = lint_files(
      {{"src/lintfix/one.cpp", "#include <iostream>\nvoid f() { std::cerr << 1; }\n"}}, Config{});
  const std::string text = to_text(r);
  EXPECT_NE(text.find("src/lintfix/one.cpp:2: [no-iostream-in-hot-path]"), std::string::npos)
      << text;
  EXPECT_NE(text.find("fatih-lint: 1 violation(s), 0 suppressed, 1 file(s) scanned"),
            std::string::npos)
      << text;
}

TEST(Output, DiagnosticsAreSorted) {
  // Two files given in reverse order still report sorted by (file, line).
  const Report r = lint_files(
      {{"src/lintfix/zz.cpp", "#include <iostream>\nvoid g() { std::cout << 2; }\n"},
       {"src/lintfix/aa.cpp", "#include <iostream>\nvoid f() { std::cout << 1; }\n"}},
      Config{});
  ASSERT_EQ(r.diagnostics.size(), 2u);
  EXPECT_EQ(r.diagnostics[0].file, "src/lintfix/aa.cpp");
  EXPECT_EQ(r.diagnostics[1].file, "src/lintfix/zz.cpp");
}

// -------------------------------------------------------------- determinism

TEST(Determinism, SameInputSameReport) {
  std::vector<SourceFile> files;
  for (const char* name :
       {"r1_wallclock_bad.cpp", "r2_rng_bad.cpp", "r3_unordered_iter_bad.cpp",
        "r4_pointer_order_bad.cpp", "r5_iostream_bad.cpp", "r6_event_init_bad.cpp",
        "r8_simd_bad.cpp", "r9_thread_bad.cpp", "bare_suppression.cpp"}) {
    files.push_back({std::string("src/lintfix/") + name, read_fixture(name)});
  }
  const std::string a = to_json(lint_files(files, Config{}));
  const std::string b = to_json(lint_files(files, Config{}));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

// ------------------------------------------------- R10-R12 (interprocedural)

/// A Config with a single rule on (plus the always-on suppression check).
Config only(Rule rule) {
  Config cfg;
  cfg.enabled.fill(false);
  cfg.set(rule, true);
  cfg.set(Rule::kBareSuppression, true);
  return cfg;
}

TEST(R10DeterminismTaint, FlagsSourcesReachableFromDigestSink) {
  const Report r = lint_fixture("r10_taint_bad.cpp", "src/lintfix/r10_taint_bad.cpp",
                                only(Rule::kDeterminismTaint));
  EXPECT_TRUE(all_rule(r, Rule::kDeterminismTaint));
  EXPECT_EQ(lines_of(r, Rule::kDeterminismTaint), (std::vector<std::size_t>{10, 14, 18}));
  for (const Diagnostic& d : r.diagnostics) {
    ASSERT_EQ(d.chain.size(), 2u) << to_text(r);
    EXPECT_EQ(d.chain.front().line, d.line);  // hop 0 is the flagged source
    EXPECT_EQ(d.chain.back().function, "TaintHasher::state_fingerprint");
    EXPECT_EQ(d.chain.back().line, 26u);  // ... at the call site in the sink
  }
}

TEST(R10DeterminismTaint, SilentWhenNoSinkReachesTheSource) {
  const Report r = lint_fixture("r10_taint_clean.cpp", "src/lintfix/r10_taint_clean.cpp",
                                only(Rule::kDeterminismTaint));
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
}

TEST(R10DeterminismTaint, JustifiedSuppressionSilences) {
  const Report r = lint_fixture("r10_taint_suppressed.cpp", "src/lintfix/r10_taint_suppressed.cpp",
                                only(Rule::kDeterminismTaint));
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(R11FloatFreeDigest, FlagsClosureFunctionsAndEventStructs) {
  const Report r = lint_fixture("r11_float_bad.cpp", "src/lintfix/r11_float_bad.cpp",
                                only(Rule::kFloatFreeDigest));
  EXPECT_TRUE(all_rule(r, Rule::kFloatFreeDigest));
  EXPECT_EQ(lines_of(r, Rule::kFloatFreeDigest), (std::vector<std::size_t>{7, 10, 22}));
}

TEST(R11FloatFreeDigest, SilentOutsideTheDigestClosure) {
  const Report r = lint_fixture("r11_float_clean.cpp", "src/lintfix/r11_float_clean.cpp",
                                only(Rule::kFloatFreeDigest));
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
}

TEST(R11FloatFreeDigest, JustifiedSuppressionSilences) {
  const Report r = lint_fixture("r11_float_suppressed.cpp", "src/lintfix/r11_float_suppressed.cpp",
                                only(Rule::kFloatFreeDigest));
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(R12HotPathAllocation, FlagsAllocationsReachableFromRoots) {
  const Report r = lint_fixture("r12_alloc_bad.cpp", "src/lintfix/r12_alloc_bad.cpp",
                                only(Rule::kHotPathAllocation));
  EXPECT_TRUE(all_rule(r, Rule::kHotPathAllocation));
  EXPECT_EQ(lines_of(r, Rule::kHotPathAllocation), (std::vector<std::size_t>{7, 8, 10}));
  for (const Diagnostic& d : r.diagnostics)
    EXPECT_EQ(d.chain.back().function, "FixtureNode::forward_packet");
}

TEST(R12HotPathAllocation, SilentWhenHotPathIsPreallocated) {
  const Report r = lint_fixture("r12_alloc_clean.cpp", "src/lintfix/r12_alloc_clean.cpp",
                                only(Rule::kHotPathAllocation));
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
}

TEST(R12HotPathAllocation, JustifiedSuppressionSilences) {
  const Report r = lint_fixture("r12_alloc_suppressed.cpp", "src/lintfix/r12_alloc_suppressed.cpp",
                                only(Rule::kHotPathAllocation));
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
  EXPECT_EQ(r.suppressed, 1u);
}

// The evidence-chain JSON is the machine-readable contract for R10-R12:
// every hop carries function, file and line, pinned byte-for-byte.
TEST(Output, JsonChainShapeIsPinned) {
  const Report r = lint_files({{"src/chain.cpp",
                                "#include <chrono>\n"
                                "struct M {\n"
                                "  long read_clock() {\n"
                                "    return std::chrono::steady_clock::now()"
                                ".time_since_epoch().count();\n"
                                "  }\n"
                                "};\n"
                                "struct H {\n"
                                "  M m;\n"
                                "  long state_fingerprint() { return m.read_clock(); }\n"
                                "};\n"}},
                              only(Rule::kDeterminismTaint));
  ASSERT_EQ(r.diagnostics.size(), 1u) << to_text(r);
  const std::string expected =
      "{\n"
      "  \"tool\": \"fatih-lint\",\n"
      "  \"schema_version\": 2,\n"
      "  \"files_scanned\": 1,\n"
      "  \"violation_count\": 1,\n"
      "  \"suppressed_count\": 0,\n"
      "  \"violations\": [\n"
      "    {\"file\": \"src/chain.cpp\", \"line\": 4, \"rule\": \"determinism-taint\", "
      "\"id\": \"R10\", \"message\": \"wall-clock read 'steady_clock' in 'M::read_clock' "
      "taints digest/codec sink 'H::state_fingerprint' (1-hop call chain); every digest "
      "input must derive from seeded, ordered state\", \"chain\": "
      "[{\"function\": \"M::read_clock\", \"file\": \"src/chain.cpp\", \"line\": 4}, "
      "{\"function\": \"H::state_fingerprint\", \"file\": \"src/chain.cpp\", \"line\": 9}]}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(to_json(r), expected);
}

// The two-line suppression window (own line + next line) applies to the
// interprocedural ids exactly as to R1-R9.
TEST(Suppression, InterproceduralWindowCoversNextLineOnly) {
  const Report r = lint_files({{"src/lintfix/win.cpp",
                                "struct WinTraceEvent {\n"
                                "  // fatih-lint: allow(float-free-digest) fixture: window\n"
                                "  double covered = 0.0;\n"
                                "  double uncovered = 0.0;\n"
                                "};\n"}},
                              only(Rule::kFloatFreeDigest));
  ASSERT_EQ(r.diagnostics.size(), 1u) << to_text(r);
  EXPECT_EQ(r.diagnostics[0].rule, Rule::kFloatFreeDigest);
  EXPECT_EQ(r.diagnostics[0].line, 4u);  // two lines below the comment: fires
  EXPECT_EQ(r.suppressed, 1u);           // the next-line hit is suppressed
}

TEST(Suppression, InterproceduralWindowCoversOwnLine) {
  const Report r =
      lint_files({{"src/lintfix/win2.cpp",
                   "struct WinNode {\n"
                   "  int* p = nullptr;\n"
                   "  void forward() {\n"
                   "    p = new int;  // fatih-lint: allow(hot-path-allocation) fixture: own line\n"
                   "  }\n"
                   "};\n"}},
                  only(Rule::kHotPathAllocation));
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(Suppression, R10WindowDoesNotReachTwoLinesDown) {
  const Report r = lint_files({{"src/lintfix/win3.cpp",
                                "#include <cstdlib>\n"
                                "struct S {\n"
                                "  // fatih-lint: allow(determinism-taint) fixture: window\n"
                                "  int pad = 0;\n"
                                "  long state_fingerprint() { return rand(); }\n"
                                "};\n"}},
                              only(Rule::kDeterminismTaint));
  ASSERT_EQ(r.diagnostics.size(), 1u) << to_text(r);
  EXPECT_EQ(r.diagnostics[0].line, 5u);
}

// ------------------------------------------------------------- symbol graph

symgraph::Graph graph_of(const std::string& name) {
  const symgraph::FileSyms fs =
      symgraph::extract_symbols("src/" + name, strip_to_code(read_fixture(name)));
  return symgraph::build_graph({fs});
}

int node_index(const symgraph::Graph& g, const std::string& qualified, std::uint32_t line = 0) {
  for (std::size_t i = 0; i < g.nodes.size(); ++i)
    if (g.nodes[i].fn.qualified == qualified && (line == 0 || g.nodes[i].fn.line == line))
      return static_cast<int>(i);
  return -1;
}

/// (callee qualified name, callee definition line) for each edge.
std::vector<std::pair<std::string, std::uint32_t>> callees_of(const symgraph::Graph& g, int idx) {
  std::vector<std::pair<std::string, std::uint32_t>> out;
  for (const auto& [callee, line] : g.nodes[static_cast<std::size_t>(idx)].callees)
    out.emplace_back(g.nodes[callee].fn.qualified, g.nodes[callee].fn.line);
  return out;
}

using Edges = std::vector<std::pair<std::string, std::uint32_t>>;

TEST(Symgraph, OverloadsResolveByArity) {
  const symgraph::Graph g = graph_of("symgraph_overloads.cpp");
  ASSERT_EQ(g.nodes.size(), 4u);
  const int one_arg = node_index(g, "scale", 3);
  const int two_arg = node_index(g, "scale", 4);
  ASSERT_GE(one_arg, 0);
  ASSERT_GE(two_arg, 0);
  EXPECT_EQ(g.nodes[one_arg].fn.min_args, 1u);
  EXPECT_EQ(g.nodes[two_arg].fn.max_args, 2u);
  const int driver = node_index(g, "driver");
  ASSERT_GE(driver, 0);
  // scale(1) binds the 1-arg overload, scale(1, 2) the 2-arg one;
  // 3-arg scale_many gets no edge.
  EXPECT_EQ(callees_of(g, driver), (Edges{{"scale", 3}, {"scale", 4}}));
}

TEST(Symgraph, MemberCallsBindMethodsAndBareCallsPreferOwnClass) {
  const symgraph::Graph g = graph_of("symgraph_methods.cpp");
  ASSERT_EQ(g.nodes.size(), 4u);
  const int advance = node_index(g, "Clock::advance");
  ASSERT_GE(advance, 0);
  // Bare tick() inside Clock::advance binds the class's own method, not
  // the same-named free function.
  EXPECT_EQ(callees_of(g, advance), (Edges{{"Clock::tick", 6}}));
  const int run_all = node_index(g, "Driver::run_all");
  ASSERT_GE(run_all, 0);
  // Driver has no tick(): the member call binds the only method, the bare
  // call fans out to every candidate (documented over-approximation).
  EXPECT_EQ(callees_of(g, run_all), (Edges{{"Clock::tick", 6}, {"tick", 3}}));
}

TEST(Symgraph, FunctionPointerCallsAreIgnoredNotFatal) {
  const symgraph::Graph g = graph_of("symgraph_fnptr.cpp");
  ASSERT_EQ(g.nodes.size(), 2u);
  const int dispatch = node_index(g, "dispatch");
  ASSERT_GE(dispatch, 0);
  EXPECT_TRUE(g.nodes[dispatch].callees.empty());
}

TEST(Symgraph, TemplateDefinitionsAndTemplateIdCallsLink) {
  const symgraph::Graph g = graph_of("symgraph_templates.cpp");
  ASSERT_EQ(g.nodes.size(), 2u);
  const int combine = node_index(g, "combine");
  ASSERT_GE(combine, 0);
  EXPECT_EQ(g.nodes[combine].fn.min_args, 2u);
  EXPECT_EQ(g.nodes[combine].fn.max_args, 2u);
  const int user = node_index(g, "use_combine");
  ASSERT_GE(user, 0);
  // combine<int>(1, 2) and combine(3, 4) dedupe to one edge.
  EXPECT_EQ(callees_of(g, user), (Edges{{"combine", 4}}));
}

TEST(Symgraph, DotDumpIsDeterministicAndNamesEdges) {
  const symgraph::Graph g = graph_of("symgraph_overloads.cpp");
  const std::string dot = symgraph::to_dot(g);
  EXPECT_EQ(dot, symgraph::to_dot(g));
  EXPECT_NE(dot.find("digraph fatih_symgraph"), std::string::npos);
  EXPECT_NE(dot.find("\"driver@src/symgraph_overloads.cpp:6\" -> "
                     "\"scale@src/symgraph_overloads.cpp:3\""),
            std::string::npos)
      << dot;
}

// ------------------------------------------------------------- symbol cache

TEST(SymCache, CodecRoundTripsByteExactly) {
  const symgraph::FileSyms syms =
      symgraph::extract_symbols("src/symgraph_methods.cpp",
                                strip_to_code(read_fixture("symgraph_methods.cpp")));
  const std::string enc = symgraph::encode_syms(syms);
  symgraph::FileSyms back;
  ASSERT_TRUE(symgraph::decode_syms(enc, back));
  EXPECT_EQ(symgraph::encode_syms(back), enc);
  EXPECT_EQ(back.functions.size(), syms.functions.size());
  EXPECT_EQ(back.calls.size(), syms.calls.size());
}

TEST(SymCache, RejectsMalformedEntries) {
  symgraph::FileSyms out;
  EXPECT_FALSE(symgraph::decode_syms("", out));
  EXPECT_FALSE(symgraph::decode_syms("fatih-symcache 99\npath x\n", out));
  EXPECT_FALSE(symgraph::decode_syms("fatih-symcache 1\npath x\nfn bogus\n", out));
  // A call referencing an out-of-range caller index is rejected.
  EXPECT_FALSE(symgraph::decode_syms("fatih-symcache 1\npath x\ncall 7 1 0 2 f -\n", out));
}

TEST(SymCache, CachedAndUncachedRunsAreByteIdentical) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "fatih_lint_symcache_selftest";
  fs::remove_all(dir);
  fs::create_directories(dir);

  std::vector<SourceFile> files;
  for (const char* name : {"r10_taint_bad.cpp", "r11_float_bad.cpp", "r12_alloc_bad.cpp"})
    files.push_back({std::string("src/lintfix/") + name, read_fixture(name)});
  AnalyzeOptions cached;
  cached.cache_dir = dir.string();
  const std::string uncached_json = to_json(analyze(files, AnalyzeOptions{}).report);
  const std::string cold_json = to_json(analyze(files, cached).report);  // populates
  const std::string warm_json = to_json(analyze(files, cached).report);  // reuses
  EXPECT_EQ(cold_json, uncached_json);
  EXPECT_EQ(warm_json, uncached_json);
  EXPECT_NE(uncached_json.find("\"chain\""), std::string::npos);
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, files.size());

  // A corrupted entry must fall back to fresh extraction, not bad symbols.
  std::string key_bytes = files[0].path;
  key_bytes.push_back('\0');
  key_bytes += files[0].content;
  char entry_name[32];
  std::snprintf(entry_name, sizeof(entry_name), "%016llx.syms",
                static_cast<unsigned long long>(symgraph::fnv1a64(key_bytes)));
  {
    std::ofstream corrupt(dir / entry_name, std::ios::binary | std::ios::trunc);
    corrupt << "not a symcache entry";
  }
  EXPECT_EQ(to_json(analyze(files, cached).report), uncached_json);
  fs::remove_all(dir);
}

// Comment/string stripping: rule tokens inside comments and string
// literals must not fire.
TEST(Stripping, CommentsAndStringsAreInert) {
  const Report r = lint_files(
      {{"src/lintfix/inert.cpp",
        "// std::cout << system_clock::now(); rand();\n"
        "/* std::cerr << random_device */\n"
        "const char* s = \"std::cout rand() steady_clock\";\n"
        "const char* raw = R\"(std::cerr srand(1))\";\n"
        "int big = 1'000'000;\n"}},
      Config{});
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
}

}  // namespace
}  // namespace fatih::lint
