// Self-test for tools/fatih-lint against the fixture corpus in
// tests/lint/fixtures/. Every rule gets at least one known-bad, one
// known-clean, and one suppressed case; the JSON report shape is pinned
// byte-for-byte so downstream consumers (CI annotations, tools/lint.sh)
// can rely on it.
//
// Fixtures are read from disk but linted under *virtual* repo-relative
// paths (src/lintfix/...), because the rules scope by path: R1/R2 have
// util/time / util/rng exemptions, R5 applies to src/ only, and R7 keys
// module layering off the first directory under src/.
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "lint.hpp"

namespace fatih::lint {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture: " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Lints one fixture file under a virtual path.
Report lint_fixture(const std::string& name, const std::string& virtual_path,
                    const Config& cfg = Config{}) {
  return lint_files({{virtual_path, read_fixture(name)}}, cfg);
}

std::vector<std::size_t> lines_of(const Report& r, Rule rule) {
  std::vector<std::size_t> out;
  for (const Diagnostic& d : r.diagnostics)
    if (d.rule == rule) out.push_back(d.line);
  return out;
}

bool all_rule(const Report& r, Rule rule) {
  for (const Diagnostic& d : r.diagnostics)
    if (d.rule != rule) return false;
  return true;
}

// ------------------------------------------------------------ rule metadata

TEST(RuleMeta, NamesAndIdsRoundTrip) {
  for (std::size_t i = 0; i < kRuleCount; ++i) {
    const Rule r = static_cast<Rule>(i);
    Rule parsed;
    ASSERT_TRUE(parse_rule(rule_name(r), parsed)) << rule_name(r);
    EXPECT_EQ(parsed, r);
    ASSERT_TRUE(parse_rule(rule_id(r), parsed)) << rule_id(r);
    EXPECT_EQ(parsed, r);
  }
  Rule parsed;
  EXPECT_TRUE(parse_rule("R3", parsed));  // ids are case-insensitive
  EXPECT_EQ(parsed, Rule::kNoUnorderedIteration);
  EXPECT_FALSE(parse_rule("not-a-rule", parsed));
}

// ------------------------------------------------------------------- R1

TEST(R1Wallclock, FlagsEveryWallclockRead) {
  const Report r = lint_fixture("r1_wallclock_bad.cpp", "src/lintfix/r1_wallclock_bad.cpp");
  EXPECT_TRUE(all_rule(r, Rule::kNoWallclock));
  EXPECT_EQ(lines_of(r, Rule::kNoWallclock), (std::vector<std::size_t>{7, 8, 9, 10}));
  EXPECT_EQ(r.suppressed, 0u);
}

TEST(R1Wallclock, IgnoresDeclarationsAndQualifiedCalls) {
  const Report r = lint_fixture("r1_wallclock_clean.cpp", "src/lintfix/r1_wallclock_clean.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
}

TEST(R1Wallclock, JustifiedSuppressionSilences) {
  const Report r =
      lint_fixture("r1_wallclock_suppressed.cpp", "src/lintfix/r1_wallclock_suppressed.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(R1Wallclock, BenchAndTimeUtilAreExempt) {
  const std::string content = read_fixture("r1_wallclock_bad.cpp");
  EXPECT_TRUE(lint_files({{"bench/lintfix/r1.cpp", content}}, Config{}).diagnostics.empty());
  EXPECT_TRUE(lint_files({{"src/util/time.cpp", content}}, Config{}).diagnostics.empty());
}

// ------------------------------------------------------------------- R2

TEST(R2AmbientRng, FlagsEveryAmbientSource) {
  const Report r = lint_fixture("r2_rng_bad.cpp", "src/lintfix/r2_rng_bad.cpp");
  EXPECT_TRUE(all_rule(r, Rule::kNoAmbientRng));
  EXPECT_EQ(lines_of(r, Rule::kNoAmbientRng), (std::vector<std::size_t>{6, 7, 8, 9, 10}));
}

TEST(R2AmbientRng, AllowsExplicitlySeededEngines) {
  const Report r = lint_fixture("r2_rng_clean.cpp", "src/lintfix/r2_rng_clean.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
}

TEST(R2AmbientRng, JustifiedSuppressionSilences) {
  const Report r = lint_fixture("r2_rng_suppressed.cpp", "src/lintfix/r2_rng_suppressed.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
  EXPECT_EQ(r.suppressed, 1u);
}

// ------------------------------------------------------------------- R3

TEST(R3UnorderedIteration, FlagsRangeForAndBegin) {
  const Report r =
      lint_fixture("r3_unordered_iter_bad.cpp", "src/lintfix/r3_unordered_iter_bad.cpp");
  EXPECT_TRUE(all_rule(r, Rule::kNoUnorderedIteration));
  EXPECT_EQ(lines_of(r, Rule::kNoUnorderedIteration), (std::vector<std::size_t>{12, 15}));
}

TEST(R3UnorderedIteration, AllowsLookupsAndOrderedContainers) {
  const Report r =
      lint_fixture("r3_unordered_iter_clean.cpp", "src/lintfix/r3_unordered_iter_clean.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
}

TEST(R3UnorderedIteration, JustifiedSuppressionSilences) {
  const Report r = lint_fixture("r3_unordered_iter_suppressed.cpp",
                                "src/lintfix/r3_unordered_iter_suppressed.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(R3UnorderedIteration, HeaderDeclarationCoversSourceIteration) {
  // A member declared unordered in foo.hpp is tracked when foo.cpp
  // iterates it (same stem).
  const Report r = lint_files(
      {{"src/lintfix/pair.hpp",
        "#pragma once\n#include <unordered_map>\nstruct P { std::unordered_map<int,int> m_; };\n"},
       {"src/lintfix/pair.cpp",
        "#include \"lintfix/pair.hpp\"\nint f(P& p) {\n  int t = 0;\n  for (auto& kv : p.m_) t "
        "+= kv.second;\n  return t;\n}\n"}},
      Config{});
  ASSERT_EQ(r.diagnostics.size(), 1u) << to_text(r);
  EXPECT_EQ(r.diagnostics[0].rule, Rule::kNoUnorderedIteration);
  EXPECT_EQ(r.diagnostics[0].file, "src/lintfix/pair.cpp");
}

// ------------------------------------------------------------------- R4

TEST(R4PointerKeyedOrder, FlagsPointerKeysAndComparators) {
  const Report r = lint_fixture("r4_pointer_order_bad.cpp", "src/lintfix/r4_pointer_order_bad.cpp");
  EXPECT_TRUE(all_rule(r, Rule::kNoPointerKeyedOrder));
  EXPECT_EQ(lines_of(r, Rule::kNoPointerKeyedOrder), (std::vector<std::size_t>{12, 13, 15}));
}

TEST(R4PointerKeyedOrder, AllowsStableKeysAndFieldComparators) {
  const Report r =
      lint_fixture("r4_pointer_order_clean.cpp", "src/lintfix/r4_pointer_order_clean.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
}

TEST(R4PointerKeyedOrder, JustifiedSuppressionSilences) {
  const Report r = lint_fixture("r4_pointer_order_suppressed.cpp",
                                "src/lintfix/r4_pointer_order_suppressed.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
  EXPECT_EQ(r.suppressed, 1u);
}

// ------------------------------------------------------------------- R5

TEST(R5Iostream, FlagsConsoleStreamsUnderSrc) {
  const Report r = lint_fixture("r5_iostream_bad.cpp", "src/lintfix/r5_iostream_bad.cpp");
  EXPECT_TRUE(all_rule(r, Rule::kNoIostream));
  EXPECT_EQ(lines_of(r, Rule::kNoIostream), (std::vector<std::size_t>{5, 6}));
}

TEST(R5Iostream, OnlyAppliesToSrc) {
  const std::string content = read_fixture("r5_iostream_bad.cpp");
  EXPECT_TRUE(lint_files({{"tests/lintfix/r5.cpp", content}}, Config{}).diagnostics.empty());
  EXPECT_TRUE(lint_files({{"bench/lintfix/r5.cpp", content}}, Config{}).diagnostics.empty());
}

TEST(R5Iostream, AllowsStringStreams) {
  const Report r = lint_fixture("r5_iostream_clean.cpp", "src/lintfix/r5_iostream_clean.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
}

TEST(R5Iostream, JustifiedSuppressionSilences) {
  const Report r =
      lint_fixture("r5_iostream_suppressed.cpp", "src/lintfix/r5_iostream_suppressed.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
  EXPECT_EQ(r.suppressed, 1u);
}

// ------------------------------------------------------------------- R6

TEST(R6TraceEventInit, FlagsUninitFieldsAndPartialBraceInit) {
  const Report r = lint_fixture("r6_event_init_bad.cpp", "src/lintfix/r6_event_init_bad.cpp");
  EXPECT_TRUE(all_rule(r, Rule::kTraceEventInit));
  // Lines 7 and 9: fields without initializers; line 13: FixtureTraceEvent{1, "send"}
  // initializes 2 of 3 fields; lines 17 and 22: uninitialized fields of the
  // evidence-layer structs (*Evidence suffix and the exact-name records).
  EXPECT_EQ(lines_of(r, Rule::kTraceEventInit), (std::vector<std::size_t>{7, 9, 13, 17, 22}));
}

TEST(R6TraceEventInit, AllowsFullInitAndIgnoresNonEventStructs) {
  const Report r = lint_fixture("r6_event_init_clean.cpp", "src/lintfix/r6_event_init_clean.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
}

TEST(R6TraceEventInit, JustifiedSuppressionSilences) {
  const Report r =
      lint_fixture("r6_event_init_suppressed.cpp", "src/lintfix/r6_event_init_suppressed.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(R6TraceEventInit, FlagsSpecAndSnapshotSuffixes) {
  const Report r = lint_fixture("r6_spec_init_bad.cpp", "src/lintfix/r6_spec_init_bad.cpp");
  EXPECT_TRUE(all_rule(r, Rule::kTraceEventInit));
  // Lines 7 and 9: uninitialized *Spec fields; line 13: partial aggregate
  // init; line 17: uninitialized *Snapshot field.
  EXPECT_EQ(lines_of(r, Rule::kTraceEventInit), (std::vector<std::size_t>{7, 9, 13, 17}));
}

TEST(R6TraceEventInit, AllowsFullSpecInitAndBareSuffixNames) {
  const Report r = lint_fixture("r6_spec_init_clean.cpp", "src/lintfix/r6_spec_init_clean.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
}

TEST(R6TraceEventInit, SpecSuppressionSilences) {
  const Report r =
      lint_fixture("r6_spec_init_suppressed.cpp", "src/lintfix/r6_spec_init_suppressed.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
  EXPECT_EQ(r.suppressed, 1u);
}

// ------------------------------------------------------------------- R7

TEST(R7IncludeGraph, DetectsTwoFileCycle) {
  const Report r = lint_files({{"src/lintfix/r7_cycle_a.hpp", read_fixture("r7_cycle_a.hpp")},
                               {"src/lintfix/r7_cycle_b.hpp", read_fixture("r7_cycle_b.hpp")}},
                              Config{});
  ASSERT_EQ(r.diagnostics.size(), 1u) << to_text(r);
  EXPECT_EQ(r.diagnostics[0].rule, Rule::kNoIncludeCycles);
  // Anchored on the lexicographically first member's offending include.
  EXPECT_EQ(r.diagnostics[0].file, "src/lintfix/r7_cycle_a.hpp");
  EXPECT_EQ(r.diagnostics[0].line, 3u);
  EXPECT_NE(r.diagnostics[0].message.find("include cycle"), std::string::npos);
}

TEST(R7IncludeGraph, FlagsLayeringInversion) {
  // sim/ sits below detection/ in the module DAG, so a sim/ header must
  // not include detection/.
  const Report r = lint_fixture("r7_layering_bad.hpp", "src/sim/r7_layering_bad.hpp");
  ASSERT_EQ(r.diagnostics.size(), 1u) << to_text(r);
  EXPECT_EQ(r.diagnostics[0].rule, Rule::kNoIncludeCycles);
  EXPECT_EQ(r.diagnostics[0].line, 4u);
  EXPECT_NE(r.diagnostics[0].message.find("layering violation"), std::string::npos);
}

TEST(R7IncludeGraph, AllowsDagRespectingIncludes) {
  const Report r = lint_fixture("r7_clean.hpp", "src/detection/r7_clean.hpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
}

TEST(R7IncludeGraph, JustifiedSuppressionSilences) {
  const Report r = lint_fixture("r7_suppressed.hpp", "src/sim/r7_suppressed.hpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
  EXPECT_EQ(r.suppressed, 1u);
}

// ------------------------------------------------------------------- R8

TEST(R8SimdContainment, FlagsRawVectorTypesOutsideCrypto) {
  const Report r = lint_fixture("r8_simd_bad.cpp", "src/lintfix/r8_simd_bad.cpp");
  EXPECT_TRUE(all_rule(r, Rule::kSimdContainment));
  EXPECT_EQ(lines_of(r, Rule::kSimdContainment), (std::vector<std::size_t>{6, 7, 8}));
}

TEST(R8SimdContainment, CryptoModuleIsExempt) {
  // The kernels themselves live behind src/crypto/; the rule is about
  // containment, not about the intrinsics existing at all.
  const std::string content = read_fixture("r8_simd_bad.cpp");
  EXPECT_TRUE(lint_files({{"src/crypto/kernels.cpp", content}}, Config{}).diagnostics.empty());
}

TEST(R8SimdContainment, AppliesOutsideSrcToo) {
  // bench/ and tests/ also consume the dispatched API; a raw vector type
  // there forks the code path just the same.
  const std::string content = read_fixture("r8_simd_bad.cpp");
  EXPECT_EQ(lint_files({{"bench/lintfix/r8.cpp", content}}, Config{}).diagnostics.size(), 3u);
}

TEST(R8SimdContainment, AllowsDispatchedApiAndInertMentions) {
  const Report r = lint_fixture("r8_simd_clean.cpp", "src/lintfix/r8_simd_clean.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
}

TEST(R8SimdContainment, JustifiedSuppressionSilences) {
  const Report r = lint_fixture("r8_simd_suppressed.cpp", "src/lintfix/r8_simd_suppressed.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
  EXPECT_EQ(r.suppressed, 1u);
}

// ------------------------------------------------------------------- R9

TEST(R9ThreadContainment, FlagsPrimitivesOutsideShardRuntime) {
  const Report r = lint_fixture("r9_thread_bad.cpp", "src/lintfix/r9_thread_bad.cpp");
  EXPECT_TRUE(all_rule(r, Rule::kThreadContainment));
  EXPECT_EQ(lines_of(r, Rule::kThreadContainment), (std::vector<std::size_t>{6, 7, 8, 9}));
}

TEST(R9ThreadContainment, ShardRuntimeIsExempt) {
  // The worker pool itself lives behind src/sim/shard*; the rule is about
  // containment, not about concurrency existing at all.
  const std::string content = read_fixture("r9_thread_bad.cpp");
  EXPECT_TRUE(lint_files({{"src/sim/shard.cpp", content}}, Config{}).diagnostics.empty());
  EXPECT_TRUE(
      lint_files({{"src/sim/shard_pool.hpp", content}}, Config{}).diagnostics.empty());
}

TEST(R9ThreadContainment, AppliesOutsideSrcToo) {
  // tests/ and bench/ drive the engine through ScenarioRun's thread
  // parameter; hand-rolled threads there dodge the same barrier proof.
  const std::string content = read_fixture("r9_thread_bad.cpp");
  EXPECT_EQ(lint_files({{"tests/lintfix/r9.cpp", content}}, Config{}).diagnostics.size(), 4u);
}

TEST(R9ThreadContainment, AllowsUnqualifiedAndInertMentions) {
  const Report r = lint_fixture("r9_thread_clean.cpp", "src/lintfix/r9_thread_clean.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
}

TEST(R9ThreadContainment, JustifiedSuppressionSilences) {
  const Report r =
      lint_fixture("r9_thread_suppressed.cpp", "src/lintfix/r9_thread_suppressed.cpp");
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
  EXPECT_EQ(r.suppressed, 1u);
}

// -------------------------------------------------------- suppression rules

TEST(Suppression, BareAllowIsAViolationAndDoesNotSuppress) {
  const Report r = lint_fixture("bare_suppression.cpp", "src/lintfix/bare_suppression.cpp");
  ASSERT_EQ(r.diagnostics.size(), 2u) << to_text(r);
  EXPECT_EQ(r.diagnostics[0].rule, Rule::kBareSuppression);
  EXPECT_EQ(r.diagnostics[0].line, 6u);
  EXPECT_EQ(r.diagnostics[1].rule, Rule::kNoIostream);  // still fires
  EXPECT_EQ(r.diagnostics[1].line, 7u);
  EXPECT_EQ(r.suppressed, 0u);
}

TEST(Suppression, UnknownRuleNameIsFlagged) {
  const Report r = lint_files(
      {{"src/lintfix/unknown.cpp",
        "// fatih-lint: allow(no-such-rule) justified but meaningless\nint x = 0;\n"}},
      Config{});
  ASSERT_EQ(r.diagnostics.size(), 1u) << to_text(r);
  EXPECT_EQ(r.diagnostics[0].rule, Rule::kBareSuppression);
  EXPECT_NE(r.diagnostics[0].message.find("no-such-rule"), std::string::npos);
}

TEST(Suppression, CoversOwnLineOnly) {
  // The suppression window is the comment's line and the next line — a
  // violation two lines down still fires.
  const Report r = lint_files(
      {{"src/lintfix/window.cpp",
        "#include <iostream>\n"
        "// fatih-lint: allow(no-iostream-in-hot-path) only covers the next line\n"
        "int pad = 0;\n"
        "void f() { std::cout << pad; }\n"}},
      Config{});
  ASSERT_EQ(r.diagnostics.size(), 1u) << to_text(r);
  EXPECT_EQ(r.diagnostics[0].rule, Rule::kNoIostream);
  EXPECT_EQ(r.diagnostics[0].line, 4u);
}

// --------------------------------------------------------------- rule toggles

TEST(Config, DisabledRuleDoesNotFire) {
  Config cfg;
  cfg.set(Rule::kNoWallclock, false);
  const Report r =
      lint_fixture("r1_wallclock_bad.cpp", "src/lintfix/r1_wallclock_bad.cpp", cfg);
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
}

TEST(Config, TogglesAreIndependent) {
  Config cfg;
  cfg.set(Rule::kNoIostream, false);
  const Report r = lint_fixture("bare_suppression.cpp", "src/lintfix/bare_suppression.cpp", cfg);
  // The iostream hit is gone but the bare-suppression meta-rule still fires.
  ASSERT_EQ(r.diagnostics.size(), 1u) << to_text(r);
  EXPECT_EQ(r.diagnostics[0].rule, Rule::kBareSuppression);
}

// ------------------------------------------------------------- output shape

TEST(Output, JsonShapeIsPinned) {
  const Report r = lint_files(
      {{"src/lintfix/one.cpp", "#include <iostream>\nvoid f() { std::cerr << 1; }\n"}}, Config{});
  ASSERT_EQ(r.diagnostics.size(), 1u);
  const std::string expected =
      "{\n"
      "  \"tool\": \"fatih-lint\",\n"
      "  \"schema_version\": 1,\n"
      "  \"files_scanned\": 1,\n"
      "  \"violation_count\": 1,\n"
      "  \"suppressed_count\": 0,\n"
      "  \"violations\": [\n"
      "    {\"file\": \"src/lintfix/one.cpp\", \"line\": 2, \"rule\": "
      "\"no-iostream-in-hot-path\", \"id\": \"R5\", \"message\": \"'std::cerr' in src/: library "
      "code must stay silent on hot paths; route output through util::log or the obs trace "
      "sink\"}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(to_json(r), expected);
}

TEST(Output, JsonEmptyViolationsShape) {
  const Report r = lint_files({{"src/lintfix/empty.cpp", "int x = 0;\n"}}, Config{});
  const std::string expected =
      "{\n"
      "  \"tool\": \"fatih-lint\",\n"
      "  \"schema_version\": 1,\n"
      "  \"files_scanned\": 1,\n"
      "  \"violation_count\": 0,\n"
      "  \"suppressed_count\": 0,\n"
      "  \"violations\": []\n"
      "}\n";
  EXPECT_EQ(to_json(r), expected);
}

TEST(Output, TextFormat) {
  const Report r = lint_files(
      {{"src/lintfix/one.cpp", "#include <iostream>\nvoid f() { std::cerr << 1; }\n"}}, Config{});
  const std::string text = to_text(r);
  EXPECT_NE(text.find("src/lintfix/one.cpp:2: [no-iostream-in-hot-path]"), std::string::npos)
      << text;
  EXPECT_NE(text.find("fatih-lint: 1 violation(s), 0 suppressed, 1 file(s) scanned"),
            std::string::npos)
      << text;
}

TEST(Output, DiagnosticsAreSorted) {
  // Two files given in reverse order still report sorted by (file, line).
  const Report r = lint_files(
      {{"src/lintfix/zz.cpp", "#include <iostream>\nvoid g() { std::cout << 2; }\n"},
       {"src/lintfix/aa.cpp", "#include <iostream>\nvoid f() { std::cout << 1; }\n"}},
      Config{});
  ASSERT_EQ(r.diagnostics.size(), 2u);
  EXPECT_EQ(r.diagnostics[0].file, "src/lintfix/aa.cpp");
  EXPECT_EQ(r.diagnostics[1].file, "src/lintfix/zz.cpp");
}

// -------------------------------------------------------------- determinism

TEST(Determinism, SameInputSameReport) {
  std::vector<SourceFile> files;
  for (const char* name :
       {"r1_wallclock_bad.cpp", "r2_rng_bad.cpp", "r3_unordered_iter_bad.cpp",
        "r4_pointer_order_bad.cpp", "r5_iostream_bad.cpp", "r6_event_init_bad.cpp",
        "r8_simd_bad.cpp", "r9_thread_bad.cpp", "bare_suppression.cpp"}) {
    files.push_back({std::string("src/lintfix/") + name, read_fixture(name)});
  }
  const std::string a = to_json(lint_files(files, Config{}));
  const std::string b = to_json(lint_files(files, Config{}));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

// Comment/string stripping: rule tokens inside comments and string
// literals must not fire.
TEST(Stripping, CommentsAndStringsAreInert) {
  const Report r = lint_files(
      {{"src/lintfix/inert.cpp",
        "// std::cout << system_clock::now(); rand();\n"
        "/* std::cerr << random_device */\n"
        "const char* s = \"std::cout rand() steady_clock\";\n"
        "const char* raw = R\"(std::cerr srand(1))\";\n"
        "int big = 1'000'000;\n"}},
      Config{});
  EXPECT_TRUE(r.diagnostics.empty()) << to_text(r);
}

}  // namespace
}  // namespace fatih::lint
