// Fixture: R6 suppression.
#include <cstdint>

struct FixtureWireEvent {
  // fatih-lint: allow(trace-event-init) fixture: overwritten wholesale by deserialization before any read
  std::uint64_t seq;
  int node = -1;
};
