// Fixture: R5 no-iostream-in-hot-path positives (under a virtual src/ path).
#include <iostream>

void fixture_bad_print(int x) {
  std::cout << "value: " << x << "\n";  // fires
  std::cerr << "oops\n";                // fires
}
