// Fixture: symgraph templates: template definitions and template-id
// calls extract like plain functions.
template <typename T>
T combine(T a, T b) {
  return a + b;
}

int use_combine() { return combine<int>(1, 2) + combine(3, 4); }
