// Fixture: R12 hot-path-allocation positives: allocations in helpers
// reachable from the FixtureNode::forward_packet hot-path root.
#include <memory>
#include <string>

struct PacketBuf {
  int* raw_new() { return new int[16]; }  // fires: 'new'
  std::unique_ptr<int> smart() { return std::make_unique<int>(7); }  // fires: make_unique
  std::string label() {
    std::string out;  // fires: owning std::string
    return out;
  }
};

struct FixtureNode {
  PacketBuf buf;
  void forward_packet() {
    delete[] buf.raw_new();
    buf.smart();
    buf.label();
  }
};
