// Fixture: symgraph method-vs-free disambiguation: a member call binds
// only to methods; a bare call prefers the caller's own class method.
void tick() {}

struct Clock {
  void tick() {}
  void advance() { tick(); }
};

struct Driver {
  Clock c;
  void run_all() {
    c.tick();
    tick();
  }
};
