// Fixture: R4 suppression.
#include <set>

struct FixtureThing {
  int id = 0;
};

bool fixture_identity_set(FixtureThing* t) {
  // fatih-lint: allow(no-pointer-keyed-order) fixture: membership-only set, never iterated or serialized
  std::set<FixtureThing*> seen;
  return seen.count(t) > 0;
}
