// Fixture: R3 no-unordered-iteration positives.
#include <cstddef>
#include <unordered_map>
#include <unordered_set>

std::size_t fixture_bad_iteration() {
  std::unordered_map<int, int> counts;
  std::unordered_set<int> seen;
  counts[1] = 2;
  seen.insert(3);
  std::size_t total = 0;
  for (const auto& [k, v] : counts) {  // fires: range-for over hash map
    total += std::size_t(k + v);
  }
  for (auto it = seen.begin(); it != seen.end(); ++it) {  // fires: begin()
    total += std::size_t(*it);
  }
  return total;
}
