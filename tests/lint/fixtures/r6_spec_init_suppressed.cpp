// Fixture: R6 suppression for a *Spec struct.
#include <cstdint>

struct FixtureLegacySpec {
  // fatih-lint: allow(trace-event-init) fixture: mirrors a third-party POD layout
  std::uint64_t seed;
  int duration = 0;
};
