// Fixture: R1 suppression — justified allow() silences the violation.
#include <chrono>

double fixture_wall_probe() {
  // fatih-lint: allow(no-wallclock) fixture: wall reading never enters simulation state
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
