// Fixture: R8 simd-containment positives (under a virtual src/ path
// outside src/crypto/). Never compiled — linted as text.
#include <cstdint>

void fixture_fork_isa() {
  __m128i a;  // fires
  __m256i b;  // fires
  __m512i c;  // fires
  (void)a;
  (void)b;
  (void)c;
}
