// Fixture: R10 determinism-taint negatives: the tainted helper is never
// called by a digest sink, and the sink's helpers are deterministic.
#include <chrono>

struct FreeMeter {
  unsigned long long sample_clock() {
    auto t = std::chrono::steady_clock::now();  // R1 territory, not R10
    return static_cast<unsigned long long>(t.time_since_epoch().count());
  }
};

struct CleanHasher {
  unsigned long long seed = 7;
  unsigned long long mix() { return seed * 1099511628211ull; }
  unsigned long long state_fingerprint() { return mix(); }
};
