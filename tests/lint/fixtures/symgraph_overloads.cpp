// Fixture: symgraph overload handling: a bare call links every overload
// whose arity fits the written argument count, and nothing else.
int scale(int a) { return a * 2; }
int scale(int a, int b) { return a * b; }
int scale_many(int a, int b, int c) { return a + b + c; }
int driver() { return scale(1) + scale(1, 2); }
