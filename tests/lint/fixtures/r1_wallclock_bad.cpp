// Fixture: R1 no-wallclock positives. Linted under a virtual src/ path;
// every marked line must fire.
#include <chrono>
#include <ctime>

double fixture_elapsed() {
  auto t0 = std::chrono::steady_clock::now();            // fires: steady_clock
  auto t1 = std::chrono::system_clock::now();            // fires: system_clock
  std::time_t raw = time(nullptr);                       // fires: bare time()
  long ticks = clock();                                  // fires: bare clock()
  (void)t1;
  (void)raw;
  return std::chrono::duration<double>(t0.time_since_epoch()).count() + double(ticks);
}
