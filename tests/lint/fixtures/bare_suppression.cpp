// Fixture: a suppression comment with no justification is itself a
// violation, and does NOT silence the rule it names.
#include <iostream>

void fixture_unjustified() {
  // fatih-lint: allow(no-iostream-in-hot-path)
  std::cout << "still flagged\n";
}
