// Fixture: R6 positives for the *Spec / *Snapshot suffixes — scenario
// recipes and checkpoint snapshots are serialized aggregates too.
#include <cstdint>
#include <string>

struct FixtureScenarioSpec {
  std::uint64_t seed;   // fires: no initializer
  std::string name{};   // clean: explicitly initialized
  int duration;         // fires: no initializer
};

FixtureScenarioSpec fixture_make_partial() {
  return FixtureScenarioSpec{1, "clean"};  // fires: 2 of 3 fields initialized
}

struct FixtureRunSnapshot {
  std::uint64_t digest;  // fires: *Snapshot structs are R6-covered too
  std::string spec{};    // clean
};
