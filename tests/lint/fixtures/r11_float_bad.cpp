// Fixture: R11 float-free-digest positives: FP in functions the digest
// sink reaches, and an FP field in a serialized event struct.
#include <cstdint>

struct FpMixer {
  std::uint64_t quantize() {
    double ratio = 0.25;  // fires: double in digest closure
    return static_cast<std::uint64_t>(ratio * 8);
  }
  float bias() { return 0.5f; }  // fires: float return type in closure
};

struct FpState {
  FpMixer mixer;
  std::uint64_t make_digest() {
    return mixer.quantize() + static_cast<std::uint64_t>(mixer.bias());
  }
};

struct FpTraceEvent {
  std::uint64_t value = 0;
  float real = 0.0f;  // fires: FP field in serialized event struct
};
