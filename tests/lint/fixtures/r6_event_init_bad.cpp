// Fixture: R6 trace-event-init positives — event structs whose fields lack
// brace-or-equal initializers, and partial aggregate init at use sites.
#include <cstdint>
#include <string>

struct FixtureTraceEvent {
  std::uint64_t seq;   // fires: no initializer
  std::string kind{};  // clean: explicitly initialized
  int node;            // fires: no initializer
};

FixtureTraceEvent fixture_make_partial() {
  return FixtureTraceEvent{1, "send"};  // fires: 2 of 3 fields initialized
}

struct FixtureForgeryEvidence {
  std::uint64_t round;  // fires: *Evidence structs are R6-covered too
  std::string basis{};  // clean
};

struct Conviction {
  int accused;  // fires: evidence-layer verdict record, matched by name
};
