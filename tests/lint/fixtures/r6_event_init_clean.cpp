// Fixture: R6 negatives — fully initialized event struct, full aggregate
// init and value-init at use sites, and non-event structs ignored entirely.
#include <cstdint>
#include <string>

struct FixtureCleanEvent {
  std::uint64_t seq = 0;
  std::string kind{};
  int node = -1;
};

struct FixturePlainRecord {  // not *Event: R6 does not apply
  int a;
  int b;
};

FixtureCleanEvent fixture_make_full() {
  FixtureCleanEvent zeroed{};                  // value-init: clean
  (void)zeroed;
  return FixtureCleanEvent{7, "recv", 3};      // all fields: clean
}

struct FixtureCleanEvidence {
  std::uint64_t round = 0;  // clean: initialized
};

struct Evidence {  // bare "Evidence" (no prefix): R6 does not apply
  int x;
};

struct SuspicionLike {  // prefix-extended name, not the exact record: ignored
  int y;
};
