// Fixture: R8 negatives — consuming the dispatched batch API is fine, and
// vector-type tokens inside comments and strings are inert: __m512i.
#include <cstdint>

void fixture_use_batch_api(const std::uint8_t* views, std::uint8_t* digests) {
  // crypto::siphash24_fixed_batch hides the __m256i kernels behind the
  // runtime dispatch; callers never name a vector type.
  const char* note = "__m128i stays inside src/crypto/";
  (void)views;
  (void)digests;
  (void)note;
}
