// Fixture: R2 no-ambient-rng positives.
#include <cstdlib>
#include <random>

int fixture_bad_rng() {
  std::random_device rd;                          // fires: hardware entropy
  std::mt19937 gen;                               // fires: default-seeded engine
  std::default_random_engine eng(rd());           // fires: impl-defined engine
  srand(42);                                      // fires: ambient global seed
  return rand() + int(gen()) + int(eng());        // fires: rand()
}
