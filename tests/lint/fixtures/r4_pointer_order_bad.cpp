// Fixture: R4 no-pointer-keyed-order positives.
#include <algorithm>
#include <map>
#include <set>
#include <vector>

struct FixtureThing {
  int id = 0;
};

int fixture_bad_pointer_order(std::vector<FixtureThing*>& things) {
  std::map<FixtureThing*, int> by_ptr;   // fires: pointer-keyed map
  std::set<const FixtureThing*> seen;    // fires: pointer-keyed set
  std::sort(things.begin(), things.end(),
            [](const FixtureThing* a, const FixtureThing* b) { return a < b; });  // fires
  (void)by_ptr;
  (void)seen;
  return 0;
}
