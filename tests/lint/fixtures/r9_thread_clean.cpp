// Fixture: R9 negatives — the word "thread" unqualified, other-qualified
// lookalikes, and mentions in comments and strings are inert: std::mutex.
#include <cstdint>

namespace pool {
struct mutex {};
}  // namespace pool

void fixture_no_primitives(std::uint32_t thread) {
  pool::mutex local;
  const char* note = "std::thread stays inside src/sim/shard*";
  (void)thread;
  (void)local;
  (void)note;
}
