// Fixture: R3 negatives — hash-container *lookups* are fine, and ordered
// containers may be iterated freely.
#include <map>
#include <unordered_map>

int fixture_clean_lookups(int key) {
  std::unordered_map<int, int> cache;  // lookups only: allowed
  cache[key] = key * 2;
  auto it = cache.find(key);
  int out = it != cache.end() ? it->second : 0;
  cache.erase(key);

  std::map<int, int> ordered;  // deterministic order: iteration allowed
  ordered[1] = 1;
  for (const auto& [k, v] : ordered) out += k + v;
  for (auto oit = ordered.begin(); oit != ordered.end(); ++oit) out += oit->first;
  return out;
}
