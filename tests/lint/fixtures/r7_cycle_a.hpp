// Fixture: R7 include-cycle half A (pairs with r7_cycle_b.hpp).
#pragma once
#include "lintfix/r7_cycle_b.hpp"

inline int fixture_cycle_a() { return 1; }
