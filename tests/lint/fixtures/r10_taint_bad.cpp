// Fixture: R10 determinism-taint positives. Linted under src/ with only
// R10 on: each tainted helper is reachable from `state_fingerprint`.
#include <chrono>
#include <cstdlib>
#include <unordered_map>

struct TaintMeter {
  std::unordered_map<int, int> table;
  unsigned long long sample_clock() {
    auto t = std::chrono::steady_clock::now();  // fires: wall-clock read
    return static_cast<unsigned long long>(t.time_since_epoch().count());
  }
  unsigned long long sample_rng() {
    return static_cast<unsigned long long>(rand());  // fires: ambient RNG
  }
  unsigned long long sample_iter() {
    unsigned long long acc = 0;
    for (const auto& [k, v] : table) acc += static_cast<unsigned long long>(k + v);  // fires
    return acc;
  }
};

struct TaintHasher {
  TaintMeter meter;
  unsigned long long state_fingerprint() {
    return meter.sample_clock() + meter.sample_rng() + meter.sample_iter();
  }
};
