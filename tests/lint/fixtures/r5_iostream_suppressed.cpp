// Fixture: R5 suppression.
#include <iostream>

void fixture_fatal_banner() {
  // fatih-lint: allow(no-iostream-in-hot-path) fixture: one-shot fatal diagnostics before abort
  std::cerr << "fatal: fixture\n";
}
