// Fixture: R10 suppression. The wall-clock read is reachable from the
// sink but carries a justified allow(determinism-taint).
#include <chrono>

struct SuppMeter {
  unsigned long long sample() {
    // fatih-lint: allow(determinism-taint) fixture: calibration constant folded at startup
    auto t = std::chrono::steady_clock::now();
    return static_cast<unsigned long long>(t.time_since_epoch().count());
  }
};

struct SuppHasher {
  SuppMeter m;
  unsigned long long state_fingerprint() { return m.sample(); }
};
