// Fixture: R8 suppression.

void fixture_vector_probe() {
  // fatih-lint: allow(simd-containment) fixture: probe scaffolding pending its move into crypto/
  __m128i probe;
  (void)probe;
}
