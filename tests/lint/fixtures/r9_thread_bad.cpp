// Fixture: R9 thread-containment positives (under a virtual src/ path
// outside src/sim/shard*). Never compiled — linted as text.
#include <cstdint>

void fixture_raw_threads() {
  std::mutex m;               // fires
  std::atomic<int> n{0};      // fires
  std::thread t;              // fires
  thread_local int slot = 0;  // fires
  (void)m;
  (void)n;
  (void)t;
  (void)slot;
}
