// Fixture: R7 layering violation — linted under a virtual src/sim/ path,
// where including detection/ headers inverts the module DAG.
#pragma once
#include "detection/chi.hpp"

inline int fixture_layering_bad() { return 3; }
