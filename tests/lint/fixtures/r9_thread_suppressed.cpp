// Fixture: R9 suppression.

void fixture_guard_probe() {
  // fatih-lint: allow(thread-containment) fixture: scaffolding pending its move into the shard runtime
  std::mutex probe;
  (void)probe;
}
