// Fixture: R11 suppression: the FP field carries a justified allow.
#include <cstdint>

struct SuppTraceEvent {
  std::uint64_t value = 0;
  // fatih-lint: allow(float-free-digest) fixture: output-only payload with fixed decimal formatting
  double real = 0.0;
};
