// Fixture: R2 suppression.
#include <random>

unsigned fixture_entropy_probe() {
  // fatih-lint: allow(no-ambient-rng) fixture: one-shot entropy probe outside any reproducible path
  std::random_device rd;
  return rd();
}
