// Fixture: R7 suppression on a layering violation.
#pragma once
// fatih-lint: allow(no-include-cycles) fixture: transitional include pending module split
#include "detection/chi.hpp"

inline int fixture_layering_suppressed() { return 5; }
