// Fixture: R7 negative — linted under a virtual src/detection/ path, where
// depending on sim/ and util/ follows the module DAG.
#pragma once
#include "sim/net.hpp"
#include "util/time.hpp"

inline int fixture_layering_clean() { return 4; }
