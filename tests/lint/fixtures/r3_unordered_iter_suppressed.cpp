// Fixture: R3 suppression.
#include <cstddef>
#include <unordered_map>

std::size_t fixture_commutative_sum() {
  std::unordered_map<int, int> counts;
  counts[1] = 2;
  std::size_t total = 0;
  // fatih-lint: allow(no-unordered-iteration) fixture: commutative sum, visit order cannot change the result
  for (const auto& [k, v] : counts) total += std::size_t(k + v);
  return total;
}
