// Fixture: R4 negatives — stable keys and field-based comparators.
#include <algorithm>
#include <map>
#include <vector>

struct FixtureThing {
  int id = 0;
};

int fixture_clean_order(std::vector<FixtureThing*>& things) {
  std::map<int, FixtureThing*> by_id;  // pointer *values* are fine; pointer *keys* are not
  std::sort(things.begin(), things.end(),
            [](const FixtureThing* a, const FixtureThing* b) { return a->id < b->id; });
  return by_id.empty() ? 0 : 1;
}
