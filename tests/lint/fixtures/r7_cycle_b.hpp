// Fixture: R7 include-cycle half B (pairs with r7_cycle_a.hpp).
#pragma once
#include "lintfix/r7_cycle_a.hpp"

inline int fixture_cycle_b() { return 2; }
