// Fixture: R11 negatives: FP stays in analysis-only helpers the digest
// never reaches; digest math is integral; event struct is fixed-point.
#include <cstdint>

double report_ratio(std::uint64_t a, std::uint64_t b) {
  return double(a) / double(b == 0 ? 1 : b);  // never reaches a sink
}

struct IntState {
  std::uint64_t state = 0;
  std::uint64_t make_digest() { return state * 1099511628211ull; }
};

struct CleanTraceEvent {
  std::uint64_t value_ppm = 0;  // fixed-point, not FP
};
