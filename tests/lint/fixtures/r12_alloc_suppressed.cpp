// Fixture: R12 suppression: a justified amortized-growth escape hatch.
#include <memory>

struct GrowNode {
  std::unique_ptr<int> slab;
  void forward_packet() {
    // fatih-lint: allow(hot-path-allocation) fixture: amortized growth, one allocation per epoch
    slab = std::make_unique<int>(3);
  }
};
