// Fixture: symgraph function pointers: calls through pointers have no
// visible callee identifier — conservatively ignored, never an edge.
int target() { return 1; }

int dispatch() {
  int (*fp)() = target;  // address taken, not a call
  return fp();           // pointer call: `fp` is not a known function
}
