// Fixture: R1 no-wallclock negatives — none of this is a wall-clock read.
#include <cstdint>

struct FixtureSimTime {
  std::int64_t ns = 0;
};

// A function *named* clock is a declaration, not a call.
struct FixtureClockApi {
  static std::int64_t clock() { return 0; }
  std::int64_t time_ns = 0;
};

std::int64_t fixture_deterministic_now(FixtureSimTime t) {
  // Qualified calls are someone else's deterministic API.
  return t.ns + FixtureClockApi::clock();
}
