// Fixture: R12 negatives: the hot path writes into preallocated slots;
// allocation lives only in setup code no hot-path root reaches.
#include <vector>

struct PoolNode {
  std::vector<int> slots;
  int cursor = 0;
  void setup() {
    slots.resize(1024);  // allocation path, but setup() is not a root
  }
  void forward_packet() {
    slots[static_cast<unsigned>(cursor) % 64] = cursor;
    ++cursor;
  }
};
