// Fixture: R5 negatives — string building and ostream objects that are not
// the process-global console streams.
#include <sstream>
#include <string>

std::string fixture_render(int x) {
  std::ostringstream os;
  os << "value: " << x;
  return os.str();
}
