// Fixture: R6 negatives for the *Spec / *Snapshot suffixes — fully
// initialized aggregates are clean, and bare suffix names (a struct
// literally called Spec or Snapshot) are not event-like.
#include <cstdint>
#include <string>

struct FixtureScenarioSpec {
  std::uint64_t seed = 1;
  std::string name{};
  int duration = 0;
};

FixtureScenarioSpec fixture_make_full() {
  return FixtureScenarioSpec{1, "clean", 2};  // all fields initialized
}

struct FixtureRunSnapshot {
  std::uint64_t digest = 0;
  std::string spec{};
};

// Bare suffix names have an empty prefix and are not covered.
struct Spec {
  int raw;
};

struct Snapshot {
  int raw;
};
