// Fixture: R2 negatives — explicitly seeded generators are reproducible.
#include <cstdint>
#include <random>

struct FixtureRng {
  explicit FixtureRng(std::uint64_t seed) : state(seed) {}
  std::uint64_t state;
  std::uint64_t next() { return state = state * 6364136223846793005ULL + 1442695040888963407ULL; }
};

std::uint64_t fixture_good_rng(std::uint64_t seed) {
  FixtureRng rng(seed);
  std::mt19937 seeded(static_cast<unsigned>(seed));  // explicit seed: allowed
  std::mt19937_64 seeded64{seed};                    // explicit seed: allowed
  return rng.next() + seeded() + seeded64();
}
