#include "routing/topologies.hpp"

#include <gtest/gtest.h>

#include <queue>

#include "routing/spf.hpp"

namespace fatih::routing {
namespace {

std::size_t connected_component_size(const Topology& t) {
  if (t.node_count() == 0) return 0;
  std::vector<bool> seen(t.node_count(), false);
  std::queue<util::NodeId> q;
  q.push(0);
  seen[0] = true;
  std::size_t count = 1;
  while (!q.empty()) {
    const auto n = q.front();
    q.pop();
    for (const auto& e : t.neighbors(n)) {
      if (!seen[e.to]) {
        seen[e.to] = true;
        ++count;
        q.push(e.to);
      }
    }
  }
  return count;
}

TEST(Abilene, ElevenPopsAndFourteenLinks) {
  const Topology t = abilene_topology();
  EXPECT_EQ(t.node_count(), 11U);
  EXPECT_EQ(t.edge_count(), 28U);  // 14 duplex links
  EXPECT_EQ(abilene_links().size(), 14U);
}

TEST(Abilene, Connected) {
  EXPECT_EQ(connected_component_size(abilene_topology()), 11U);
}

TEST(Abilene, HeadlinePathLatencies) {
  // Fig. 5.7: primary coast-to-coast path 25 ms one-way; southern
  // alternative 28 ms.
  const Topology t = abilene_topology();
  const RoutingTables tables(t);
  EXPECT_EQ(tables.to(kNewYork).dist[kSunnyvale], 25U);
  std::uint64_t southern = 0;
  const Path alt{kSunnyvale, kLosAngeles, kHouston, kAtlanta, kWashington, kNewYork};
  for (std::size_t i = 0; i + 1 < alt.size(); ++i) southern += t.metric(alt[i], alt[i + 1]);
  EXPECT_EQ(southern, 28U);
}

TEST(Abilene, NamesResolve) {
  EXPECT_EQ(abilene_name(kKansasCity), "KansasCity");
  EXPECT_EQ(abilene_name(kNewYork), "NewYork");
}

TEST(SyntheticIsp, MatchesSprintlinkProfile) {
  const auto profile = sprintlink_profile();
  const Topology t = synthetic_isp(profile, 42);
  EXPECT_EQ(t.node_count(), profile.routers);
  // Link count within 2% of the published 972.
  EXPECT_NEAR(static_cast<double>(t.edge_count()) / 2.0, static_cast<double>(profile.links),
              0.02 * static_cast<double>(profile.links));
  std::size_t max_deg = 0;
  for (util::NodeId n = 0; n < t.node_count(); ++n) max_deg = std::max(max_deg, t.degree(n));
  EXPECT_LE(max_deg, profile.max_degree);
  EXPECT_GE(max_deg, profile.max_degree / 3);  // hubs exist
  EXPECT_EQ(connected_component_size(t), profile.routers);
}

TEST(SyntheticIsp, MatchesEboneProfile) {
  const auto profile = ebone_profile();
  const Topology t = synthetic_isp(profile, 42);
  EXPECT_EQ(t.node_count(), profile.routers);
  EXPECT_NEAR(static_cast<double>(t.edge_count()) / 2.0, static_cast<double>(profile.links),
              0.05 * static_cast<double>(profile.links));
  EXPECT_EQ(connected_component_size(t), profile.routers);
}

TEST(SyntheticIsp, DeterministicPerSeed) {
  const auto profile = ebone_profile();
  const Topology a = synthetic_isp(profile, 7);
  const Topology b = synthetic_isp(profile, 7);
  const Topology c = synthetic_isp(profile, 8);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  bool any_difference = a.edge_count() != c.edge_count();
  for (util::NodeId n = 0; n < profile.routers; ++n) {
    ASSERT_EQ(a.degree(n), b.degree(n));
    if (a.degree(n) != c.degree(n)) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(SyntheticIsp, MeanDegreeApproximatesPublished) {
  // Sprintlink: 6.17 mean degree; EBONE: 3.70 (dissertation §5.1.1).
  const Topology sprint = synthetic_isp(sprintlink_profile(), 1);
  const double sprint_mean =
      static_cast<double>(sprint.edge_count()) / static_cast<double>(sprint.node_count());
  EXPECT_NEAR(sprint_mean, 6.17, 0.7);
  const Topology ebone = synthetic_isp(ebone_profile(), 1);
  const double ebone_mean =
      static_cast<double>(ebone.edge_count()) / static_cast<double>(ebone.node_count());
  EXPECT_NEAR(ebone_mean, 3.70, 0.5);
}

}  // namespace
}  // namespace fatih::routing
