#include "routing/graph.hpp"

#include <gtest/gtest.h>

#include "sim/network.hpp"

namespace fatih::routing {
namespace {

TEST(Topology, EmptyByDefault) {
  Topology t;
  EXPECT_EQ(t.node_count(), 0U);
  EXPECT_EQ(t.edge_count(), 0U);
}

TEST(Topology, AddEdgeCreatesNodes) {
  Topology t;
  t.add_edge(2, 5, 3);
  EXPECT_EQ(t.node_count(), 6U);
  EXPECT_TRUE(t.has_edge(2, 5));
  EXPECT_FALSE(t.has_edge(5, 2));
  EXPECT_EQ(t.metric(2, 5), 3U);
  EXPECT_EQ(t.metric(5, 2), 0U);
}

TEST(Topology, DuplexAddsBoth) {
  Topology t;
  t.add_duplex(0, 1, 7);
  EXPECT_TRUE(t.has_edge(0, 1));
  EXPECT_TRUE(t.has_edge(1, 0));
  EXPECT_EQ(t.edge_count(), 2U);
}

TEST(Topology, DuplicateEdgeIgnored) {
  Topology t;
  t.add_edge(0, 1, 2);
  t.add_edge(0, 1, 9);  // keeps the first metric
  EXPECT_EQ(t.edge_count(), 1U);
  EXPECT_EQ(t.metric(0, 1), 2U);
}

TEST(Topology, NeighborsSpan) {
  Topology t;
  t.add_edge(0, 1, 1);
  t.add_edge(0, 2, 1);
  t.add_edge(0, 3, 1);
  EXPECT_EQ(t.degree(0), 3U);
  EXPECT_EQ(t.degree(1), 0U);
  EXPECT_EQ(t.neighbors(0).size(), 3U);
  EXPECT_TRUE(t.neighbors(99).empty());
}

TEST(Topology, FromNetworkMirrorsAdjacencies) {
  sim::Network net(1);
  auto& a = net.add_router("a");
  auto& b = net.add_router("b");
  auto& c = net.add_router("c");
  sim::LinkConfig cfg;
  cfg.metric = 4;
  net.connect(a.id(), b.id(), cfg);
  cfg.metric = 2;
  net.connect(b.id(), c.id(), cfg);
  const Topology t = Topology::from_network(net);
  EXPECT_EQ(t.node_count(), 3U);
  EXPECT_EQ(t.edge_count(), 4U);
  EXPECT_EQ(t.metric(a.id(), b.id()), 4U);
  EXPECT_EQ(t.metric(c.id(), b.id()), 2U);
}

}  // namespace
}  // namespace fatih::routing
