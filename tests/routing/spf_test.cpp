#include "routing/spf.hpp"

#include <gtest/gtest.h>

#include <set>

#include "routing/topologies.hpp"
#include "util/rng.hpp"

namespace fatih::routing {
namespace {

Topology line(std::size_t n) {
  Topology t;
  for (util::NodeId i = 0; i + 1 < n; ++i) t.add_duplex(i, i + 1, 1);
  return t;
}

TEST(Spf, LinePaths) {
  const RoutingTables tables(line(5));
  EXPECT_EQ(tables.path(0, 4), (Path{0, 1, 2, 3, 4}));
  EXPECT_EQ(tables.path(4, 0), (Path{4, 3, 2, 1, 0}));
  EXPECT_EQ(tables.path(2, 2), (Path{2}));
}

TEST(Spf, UnreachableIsEmpty) {
  Topology t;
  t.add_duplex(0, 1, 1);
  t.ensure_node(3);
  const RoutingTables tables(t);
  EXPECT_TRUE(tables.path(0, 3).empty());
  EXPECT_EQ(tables.to(3).dist[0], kUnreachable);
}

TEST(Spf, PrefersLowerMetric) {
  // 0 -1- 1 -1- 3 (cost 2)  vs  0 -5- 2 -1- 3 (cost 6).
  Topology t;
  t.add_duplex(0, 1, 1);
  t.add_duplex(1, 3, 1);
  t.add_duplex(0, 2, 5);
  t.add_duplex(2, 3, 1);
  const RoutingTables tables(t);
  EXPECT_EQ(tables.path(0, 3), (Path{0, 1, 3}));
  EXPECT_EQ(tables.to(3).dist[0], 2U);
}

TEST(Spf, DeterministicTieBreakPicksSmallerNeighbor) {
  // Two equal-cost routes 0-1-3 and 0-2-3: must pick via 1.
  Topology t;
  t.add_duplex(0, 1, 1);
  t.add_duplex(0, 2, 1);
  t.add_duplex(1, 3, 1);
  t.add_duplex(2, 3, 1);
  const RoutingTables tables(t);
  EXPECT_EQ(tables.path(0, 3), (Path{0, 1, 3}));
}

TEST(Spf, SubpathConsistencyOnRandomGraphs) {
  // Hop-by-hop consistency: any suffix of a chosen path is itself the
  // chosen path of its own source — the property that makes segments
  // meaningful for monitoring.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Topology t = synthetic_isp(IspProfile{40, 80, 10, "test"}, seed);
    const RoutingTables tables(t);
    for (util::NodeId s = 0; s < 40; s += 7) {
      for (util::NodeId d = 0; d < 40; d += 5) {
        const Path p = tables.path(s, d);
        if (p.size() < 3) continue;
        const Path suffix(p.begin() + 1, p.end());
        EXPECT_EQ(tables.path(p[1], d), suffix) << "seed " << seed;
      }
    }
  }
}

TEST(Spf, AbileneCoastToCoast) {
  const RoutingTables tables(abilene_topology());
  const Path p = tables.path(kSunnyvale, kNewYork);
  EXPECT_EQ(p, (Path{kSunnyvale, kDenver, kKansasCity, kIndianapolis, kChicago, kNewYork}));
  EXPECT_EQ(tables.to(kNewYork).dist[kSunnyvale], 25U);  // ms, Fig. 5.7
}

TEST(Spf, AllPathsCoversOrderedPairs) {
  const RoutingTables tables(line(4));
  const auto paths = tables.all_paths({0, 1, 2, 3});
  EXPECT_EQ(paths.size(), 12U);  // 4*3 ordered pairs
}

// ------------------------------------------------------------ PolicyRoutes

TEST(PolicyRoutes, NoBansMatchesPlainSpf) {
  const Topology t = abilene_topology();
  const RoutingTables plain(t);
  const PolicyRoutes policy(t, {});
  for (util::NodeId s = 0; s < t.node_count(); ++s) {
    for (util::NodeId d = 0; d < t.node_count(); ++d) {
      if (s == d) continue;
      EXPECT_EQ(policy.path(s, d), plain.path(s, d)) << s << "->" << d;
    }
  }
}

TEST(PolicyRoutes, BannedLinkAvoided) {
  Topology t;
  t.add_duplex(0, 1, 1);
  t.add_duplex(1, 2, 1);
  t.add_duplex(0, 3, 1);
  t.add_duplex(3, 2, 1);
  const PolicyRoutes policy(t, {PathSegment{0, 1}});
  const Path p = policy.path(0, 2);
  EXPECT_EQ(p, (Path{0, 3, 2}));
}

TEST(PolicyRoutes, BannedTripleAvoidedExactly) {
  // Kansas City attack shape: ban <Denver, KansasCity, Indianapolis> on
  // Abilene; traffic from Sunnyvale to New York must reroute via the
  // southern path, and the new path must not contain the banned triple.
  const Topology t = abilene_topology();
  const PathSegment banned{kDenver, kKansasCity, kIndianapolis};
  const PolicyRoutes policy(t, {banned});
  const Path p = policy.path(kSunnyvale, kNewYork);
  ASSERT_FALSE(p.empty());
  EXPECT_FALSE(banned.within(p));
  // The southern path has cost 28 (Fig. 5.7's "new path").
  EXPECT_EQ(p, (Path{kSunnyvale, kLosAngeles, kHouston, kAtlanta, kWashington, kNewYork}));
}

TEST(PolicyRoutes, TrafficThroughMiddleOfTripleStillAllowed) {
  // Banning <a,b,c> must not remove b from the fabric: a path entering b
  // from elsewhere and leaving toward c is legal.
  const Topology t = abilene_topology();
  const PathSegment banned{kDenver, kKansasCity, kIndianapolis};
  const PolicyRoutes policy(t, {banned});
  // Houston -> KansasCity -> Indianapolis does not match the banned triple.
  const Path p = policy.path(kHouston, kIndianapolis);
  EXPECT_EQ(p, (Path{kHouston, kKansasCity, kIndianapolis}));
}

TEST(PolicyRoutes, NoCompliantRouteYieldsEmpty) {
  // Line 0-1-2: banning the middle transition cuts 0 off from 2.
  const Topology t = line(3);
  const PolicyRoutes policy(t, {PathSegment{0, 1, 2}});
  EXPECT_TRUE(policy.path(0, 2).empty());
  EXPECT_FALSE(policy.path(1, 2).empty());  // 1 itself can still reach 2
}

TEST(PolicyRoutes, LongBanDecomposesToTriples) {
  // A banned 4-segment bans each of its length-3 windows (conservative).
  const Topology t = line(5);
  const PolicyRoutes policy(t, {PathSegment{0, 1, 2, 3}});
  EXPECT_TRUE(policy.path(0, 4).empty());   // would need 0,1,2
  EXPECT_TRUE(policy.path(1, 4).empty());   // would need 1,2,3
  EXPECT_FALSE(policy.path(2, 4).empty());  // 2,3,4 unaffected
}

TEST(PolicyRoutes, PropertyBannedTriplesNeverAppear) {
  util::Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const Topology t = synthetic_isp(IspProfile{25, 60, 8, "test"}, 100 + trial);
    // Pick a random adjacent triple to ban.
    std::vector<PathSegment> bans;
    for (util::NodeId b = 0; b < 25 && bans.empty(); ++b) {
      const auto nbrs = t.neighbors(b);
      if (nbrs.size() >= 2) {
        bans.push_back(PathSegment{nbrs[0].to, b, nbrs[1].to});
      }
    }
    ASSERT_FALSE(bans.empty());
    const PolicyRoutes policy(t, bans);
    for (util::NodeId s = 0; s < 25; ++s) {
      for (util::NodeId d = 0; d < 25; ++d) {
        if (s == d) continue;
        const Path p = policy.path(s, d);
        if (p.empty()) continue;
        EXPECT_FALSE(bans[0].within(p)) << "trial " << trial;
        EXPECT_EQ(p.front(), s);
        EXPECT_EQ(p.back(), d);
        // Path must be simple within its length bound.
        EXPECT_LE(p.size(), 26U);
      }
    }
  }
}

}  // namespace
}  // namespace fatih::routing
