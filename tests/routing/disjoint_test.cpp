#include "routing/disjoint.hpp"

#include <gtest/gtest.h>

#include <set>

#include "routing/topologies.hpp"

namespace fatih::routing {
namespace {

// Two vertex-disjoint routes between 0 and 3: 0-1-3 and 0-2-3.
Topology diamond() {
  Topology t;
  t.add_duplex(0, 1, 1);
  t.add_duplex(0, 2, 1);
  t.add_duplex(1, 3, 1);
  t.add_duplex(2, 3, 1);
  return t;
}

bool internally_disjoint(const std::vector<Path>& paths) {
  std::set<util::NodeId> interior;
  for (const Path& p : paths) {
    for (std::size_t i = 1; i + 1 < p.size(); ++i) {
      if (!interior.insert(p[i]).second) return false;
    }
  }
  return true;
}

bool valid_path(const Topology& t, const Path& p, util::NodeId s, util::NodeId d) {
  if (p.empty() || p.front() != s || p.back() != d) return false;
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    if (!t.has_edge(p[i], p[i + 1])) return false;
  }
  return true;
}

TEST(DisjointPaths, DiamondYieldsTwo) {
  const Topology t = diamond();
  const auto paths = disjoint_paths(t, 0, 3, 4);
  ASSERT_EQ(paths.size(), 2U);
  EXPECT_TRUE(internally_disjoint(paths));
  for (const auto& p : paths) EXPECT_TRUE(valid_path(t, p, 0, 3));
  EXPECT_EQ(vertex_connectivity(t, 0, 3), 2U);
}

TEST(DisjointPaths, LineHasExactlyOne) {
  Topology t;
  t.add_duplex(0, 1, 1);
  t.add_duplex(1, 2, 1);
  const auto paths = disjoint_paths(t, 0, 2, 3);
  ASSERT_EQ(paths.size(), 1U);
  EXPECT_EQ(paths[0], (Path{0, 1, 2}));
  EXPECT_EQ(vertex_connectivity(t, 0, 2), 1U);
}

TEST(DisjointPaths, WantLimitsCount) {
  const Topology t = diamond();
  EXPECT_EQ(disjoint_paths(t, 0, 3, 1).size(), 1U);
  EXPECT_TRUE(disjoint_paths(t, 0, 3, 0).empty());
}

TEST(DisjointPaths, AdjacentNodesUseDirectLink) {
  const Topology t = diamond();
  const auto paths = disjoint_paths(t, 0, 1, 3);
  // 0-1 directly, plus 0-2-3-1 around: internal connectivity 2.
  EXPECT_EQ(paths.size(), 2U);
  EXPECT_TRUE(internally_disjoint(paths));
}

TEST(DisjointPaths, DisconnectedIsEmpty) {
  Topology t;
  t.add_duplex(0, 1, 1);
  t.ensure_node(3);
  EXPECT_TRUE(disjoint_paths(t, 0, 3, 2).empty());
  EXPECT_EQ(vertex_connectivity(t, 0, 3), 0U);
}

TEST(DisjointPaths, AbileneCoastToCoast) {
  const Topology t = abilene_topology();
  const auto paths = disjoint_paths(t, kSunnyvale, kNewYork, 5);
  // Abilene provides at least two internally disjoint coast-to-coast routes.
  ASSERT_GE(paths.size(), 2U);
  EXPECT_TRUE(internally_disjoint(paths));
  for (const auto& p : paths) EXPECT_TRUE(valid_path(t, p, kSunnyvale, kNewYork));
}

TEST(DisjointPaths, PropertyMengerOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Topology t = synthetic_isp(IspProfile{40, 90, 10, "test"}, seed);
    for (util::NodeId s = 0; s < 40; s += 9) {
      for (util::NodeId d = 3; d < 40; d += 11) {
        if (s == d) continue;
        const std::size_t kappa = vertex_connectivity(t, s, d);
        const auto paths = disjoint_paths(t, s, d, kappa + 2);
        EXPECT_EQ(paths.size(), kappa) << "seed " << seed << " " << s << "->" << d;
        EXPECT_TRUE(internally_disjoint(paths));
        for (const auto& p : paths) EXPECT_TRUE(valid_path(t, p, s, d));
      }
    }
  }
}

}  // namespace
}  // namespace fatih::routing
