#include "routing/segments.hpp"

#include <gtest/gtest.h>

#include <set>

namespace fatih::routing {
namespace {

TEST(PathSegment, BasicAccessors) {
  const PathSegment seg{1, 2, 3};
  EXPECT_EQ(seg.length(), 3U);
  EXPECT_EQ(seg.front(), 1U);
  EXPECT_EQ(seg.back(), 3U);
  EXPECT_TRUE(seg.contains(2));
  EXPECT_FALSE(seg.contains(4));
  EXPECT_TRUE(seg.is_end(1));
  EXPECT_TRUE(seg.is_end(3));
  EXPECT_FALSE(seg.is_end(2));
  EXPECT_EQ(seg.to_string(), "<r1,r2,r3>");
}

TEST(PathSegment, WithinRequiresContiguity) {
  // The dissertation's example (§4.1): in path <a,b,c,d>, <c,d> and <b,c>
  // are 2-path-segments but <a,c> is not.
  const Path path{0, 1, 2, 3};
  EXPECT_TRUE((PathSegment{2, 3}).within(path));
  EXPECT_TRUE((PathSegment{1, 2}).within(path));
  EXPECT_FALSE((PathSegment{0, 2}).within(path));
  EXPECT_TRUE((PathSegment{0, 1, 2, 3}).within(path));
  EXPECT_FALSE((PathSegment{1, 0}).within(path));  // direction matters
}

TEST(PathSegment, HashStableAndDiscriminating) {
  const PathSegmentHash h;
  EXPECT_EQ(h(PathSegment{1, 2, 3}), h(PathSegment{1, 2, 3}));
  EXPECT_NE(h(PathSegment{1, 2, 3}), h(PathSegment{3, 2, 1}));
}

TEST(Windows, EnumeratesAll) {
  const Path path{0, 1, 2, 3, 4};
  const auto w3 = windows(path, 3);
  ASSERT_EQ(w3.size(), 3U);
  EXPECT_EQ(w3[0], (PathSegment{0, 1, 2}));
  EXPECT_EQ(w3[2], (PathSegment{2, 3, 4}));
  EXPECT_TRUE(windows(path, 6).empty());
  EXPECT_EQ(windows(path, 5).size(), 1U);
}

TEST(SegmentIndex, Pi2MonitorsKPlus2Windows) {
  // One path of 6 routers, k=1: Pi2 segments are the 3-windows.
  const std::vector<Path> paths{{0, 1, 2, 3, 4, 5}};
  const SegmentIndex index(paths, 1);
  EXPECT_EQ(index.all_pi2_segments().size(), 4U);
  // Router 2 sits in windows starting at 0,1,2.
  EXPECT_EQ(index.pr_pi2(2).size(), 3U);
  // End router 0 is only in the first window.
  EXPECT_EQ(index.pr_pi2(0).size(), 1U);
}

TEST(SegmentIndex, Pik2MonitorsEndSegments) {
  const std::vector<Path> paths{{0, 1, 2, 3, 4, 5}};
  const SegmentIndex index(paths, 2);  // segments of length 3..4
  // Router 0: end of <0,1,2> and <0,1,2,3>.
  EXPECT_EQ(index.pr_pik2(0).size(), 2U);
  // Router 2: end of <0,1,2>, <2,3,4>, <2,3,4,5>, and of 4-windows ending
  // at 2: <... hmm enumerate: segments with 2 as an end:
  //   len3: <0,1,2>, <2,3,4>; len4: <2,3,4,5>.
  // Plus 4-windows ending at 2: none start early enough except... <0,1,2>
  // is len3; 4-window ending at 2 would be <-1,0,1,2>: doesn't exist.
  // 4-window <0,1,2,3> has ends 0 and 3. So 2 has: len3 x2 + len4 x1 = 3?
  // And 4-window ending at 2: does not exist. But <2,3,4,5> yes.
  EXPECT_EQ(index.pr_pik2(2).size(), 3U);
}

TEST(SegmentIndex, ShortPathsMonitoredWhole) {
  // A 3-router path with k=3 (target length 5): the whole path is the
  // only Pi2 segment.
  const std::vector<Path> paths{{0, 1, 2}};
  const SegmentIndex index(paths, 3);
  ASSERT_EQ(index.all_pi2_segments().size(), 1U);
  EXPECT_EQ(index.all_pi2_segments()[0], (PathSegment{0, 1, 2}));
}

TEST(SegmentIndex, TwoHopPathsIgnored) {
  const std::vector<Path> paths{{0, 1}};
  const SegmentIndex index(paths, 1);
  EXPECT_TRUE(index.all_pi2_segments().empty());
  EXPECT_TRUE(index.all_pik2_segments().empty());
}

TEST(SegmentIndex, DeduplicatesAcrossPaths) {
  // Two paths sharing the middle produce each shared window once.
  const std::vector<Path> paths{{0, 1, 2, 3}, {4, 1, 2, 3}};
  const SegmentIndex index(paths, 1);
  std::set<PathSegment> segs(index.all_pi2_segments().begin(),
                             index.all_pi2_segments().end());
  EXPECT_EQ(segs.size(), index.all_pi2_segments().size());
  EXPECT_TRUE(segs.contains(PathSegment{1, 2, 3}));
}

TEST(SegmentIndex, Pik2SubsetSizesGrowWithK) {
  const std::vector<Path> paths{{0, 1, 2, 3, 4, 5, 6, 7}};
  const SegmentIndex k1(paths, 1);
  const SegmentIndex k3(paths, 3);
  EXPECT_LT(k1.all_pik2_segments().size(), k3.all_pik2_segments().size());
}

}  // namespace
}  // namespace fatih::routing
