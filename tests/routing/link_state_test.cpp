#include "routing/link_state.hpp"

#include <gtest/gtest.h>

#include "routing/install.hpp"
#include "routing/spf.hpp"
#include "routing/topologies.hpp"

namespace fatih::routing {
namespace {

using util::Duration;
using util::SimTime;

struct AbileneNet {
  sim::Network net{11};
  crypto::KeyRegistry keys{2024};
  std::unique_ptr<LinkStateRouting> lsr;

  explicit AbileneNet(LinkStateConfig cfg = fast_config()) {
    for (util::NodeId n = 0; n <= kNewYork; ++n) net.add_router(abilene_name(n));
    for (const auto& l : abilene_links()) {
      sim::LinkConfig link;
      link.delay = Duration::millis(l.delay_ms);
      link.metric = l.delay_ms;
      net.connect(l.a, l.b, link);
    }
    lsr = std::make_unique<LinkStateRouting>(net, keys, cfg);
  }

  static LinkStateConfig fast_config() {
    LinkStateConfig cfg;
    cfg.hello_interval = Duration::seconds(1);
    cfg.spf_delay = Duration::millis(500);
    cfg.spf_hold = Duration::seconds(1);
    return cfg;
  }
};

TEST(LinkState, AllRoutersConverge) {
  AbileneNet a;
  a.lsr->start();
  a.net.sim().run_until(SimTime::from_seconds(30));
  for (util::NodeId n = 0; n <= kNewYork; ++n) {
    EXPECT_TRUE(a.lsr->converged(n)) << abilene_name(n);
  }
}

TEST(LinkState, ConvergedRoutesMatchCentralSpf) {
  AbileneNet a;
  a.lsr->start();
  a.net.sim().run_until(SimTime::from_seconds(30));
  const RoutingTables reference(abilene_topology());
  for (util::NodeId s = 0; s <= kNewYork; ++s) {
    for (util::NodeId d = 0; d <= kNewYork; ++d) {
      if (s == d) continue;
      const util::NodeId expected = reference.to(d).next_hop[s];
      const auto actual = a.net.router(s).lookup(s, d);
      ASSERT_TRUE(actual.has_value()) << s << "->" << d;
      EXPECT_EQ(a.net.router(s).interface(*actual).peer(), expected) << s << "->" << d;
    }
  }
}

TEST(LinkState, PacketsFlowAfterConvergence) {
  AbileneNet a;
  a.lsr->start();
  a.net.sim().run_until(SimTime::from_seconds(30));
  bool delivered = false;
  a.net.router(kNewYork).add_local_handler(
      [&](const sim::Packet&, util::NodeId, SimTime) { delivered = true; });
  sim::PacketHeader hdr;
  hdr.src = kSunnyvale;
  hdr.dst = kNewYork;
  const sim::Packet p = a.net.make_packet(hdr, 100);
  a.net.sim().schedule_at(SimTime::from_seconds(31), [&] { a.net.router(kSunnyvale).originate(p); });
  a.net.sim().run_until(SimTime::from_seconds(32));
  EXPECT_TRUE(delivered);
}

TEST(LinkState, AlertExcludesSegmentEverywhere) {
  AbileneNet a;
  a.lsr->start();
  a.net.sim().run_until(SimTime::from_seconds(30));
  const PathSegment seg{kDenver, kKansasCity, kIndianapolis};
  a.net.sim().schedule_at(SimTime::from_seconds(31), [&] {
    a.lsr->announce_suspicion(kDenver, seg, {SimTime::from_seconds(25),
                                             SimTime::from_seconds(30)});
  });
  a.net.sim().run_until(SimTime::from_seconds(40));
  for (util::NodeId n = 0; n <= kNewYork; ++n) {
    ASSERT_EQ(a.lsr->banned_segments(n).size(), 1U) << abilene_name(n);
    EXPECT_EQ(a.lsr->banned_segments(n)[0], seg);
  }
  // Traffic Sunnyvale -> New York now takes the southern path.
  std::vector<util::NodeId> visited;
  for (util::NodeId n = 0; n <= kNewYork; ++n) {
    a.net.router(n).add_receive_tap(
        [&visited, n](const sim::Packet& p, util::NodeId, SimTime) {
          if (p.hdr.flow_id == 777) visited.push_back(n);
        });
  }
  sim::PacketHeader hdr;
  hdr.src = kSunnyvale;
  hdr.dst = kNewYork;
  hdr.flow_id = 777;
  const sim::Packet p = a.net.make_packet(hdr, 100);
  a.net.sim().schedule_at(SimTime::from_seconds(41), [&] { a.net.router(kSunnyvale).originate(p); });
  a.net.sim().run_until(SimTime::from_seconds(42));
  const std::vector<util::NodeId> southern{kLosAngeles, kHouston, kAtlanta, kWashington,
                                           kNewYork};
  EXPECT_EQ(visited, southern);
}

TEST(LinkState, AlertFromNonMemberIgnored) {
  // Countermeasure rule: a reporter not in the segment cannot make others
  // exclude it (a faulty router cannot frame a distant segment).
  AbileneNet a;
  a.lsr->start();
  a.net.sim().run_until(SimTime::from_seconds(30));
  const PathSegment seg{kDenver, kKansasCity, kIndianapolis};
  a.net.sim().schedule_at(SimTime::from_seconds(31), [&] {
    a.lsr->announce_suspicion(kAtlanta, seg, {SimTime::origin(), SimTime::from_seconds(1)});
  });
  a.net.sim().run_until(SimTime::from_seconds(40));
  for (util::NodeId n = 0; n <= kNewYork; ++n) {
    EXPECT_TRUE(a.lsr->banned_segments(n).empty()) << abilene_name(n);
  }
}

TEST(LinkState, SpfDelayAndHoldPaceRecomputation) {
  AbileneNet a;
  a.lsr->start();
  a.net.sim().run_until(SimTime::from_seconds(30));
  const std::size_t before = a.lsr->spf_runs(kDenver);
  // One alert triggers exactly one more SPF run (after spf_delay), not a
  // run per received flood copy.
  a.net.sim().schedule_at(SimTime::from_seconds(31), [&] {
    a.lsr->announce_suspicion(kDenver, PathSegment{kDenver, kKansasCity},
                              {SimTime::origin(), SimTime::from_seconds(1)});
  });
  a.net.sim().run_until(SimTime::from_seconds(45));
  EXPECT_EQ(a.lsr->spf_runs(kDenver), before + 1);
}

TEST(LinkState, FloodingSurvivesSuppression) {
  // A protocol-faulty router refusing to re-flood cannot stop alerts from
  // reaching every correct router, because Abilene satisfies the
  // good-path condition around any single node (Perlman robust flooding).
  AbileneNet a;
  a.lsr->suppress_flooding_at(kKansasCity);
  a.lsr->start();
  a.net.sim().run_until(SimTime::from_seconds(30));
  // LSAs still converge everywhere (Kansas City's own LSA floods because
  // origination is exempt; everyone else's routes around it).
  for (util::NodeId n = 0; n <= kNewYork; ++n) {
    EXPECT_TRUE(a.lsr->converged(n)) << abilene_name(n);
  }
  // An alert from Denver reaches every router despite the black hole.
  const PathSegment seg{kDenver, kKansasCity, kIndianapolis};
  a.net.sim().schedule_at(SimTime::from_seconds(31), [&] {
    a.lsr->announce_suspicion(kDenver, seg,
                              {SimTime::from_seconds(25), SimTime::from_seconds(30)});
  });
  a.net.sim().run_until(SimTime::from_seconds(40));
  for (util::NodeId n = 0; n <= kNewYork; ++n) {
    EXPECT_EQ(a.lsr->banned_segments(n).size(), 1U) << abilene_name(n);
  }
}

TEST(LinkState, DeadIntervalWithdrawsFailedLinkAndReroutes) {
  auto cfg = AbileneNet::fast_config();
  cfg.dead_interval = Duration::seconds(3);
  AbileneNet a(cfg);
  a.lsr->start();
  a.net.sim().run_until(SimTime::from_seconds(30));
  ASSERT_TRUE(a.lsr->neighbors(kDenver).contains(kKansasCity));

  // Cut the Denver—Kansas City link (on the northern coast-to-coast
  // path). Hellos stop crossing; after dead_interval both ends withdraw
  // the adjacency, re-originate, and the fabric reconverges around it.
  a.net.sim().schedule_at(SimTime::from_seconds(31),
                          [&] { a.net.set_link_up(kDenver, kKansasCity, false); });
  a.net.sim().run_until(SimTime::from_seconds(45));
  EXPECT_FALSE(a.lsr->neighbors(kDenver).contains(kKansasCity));
  EXPECT_FALSE(a.lsr->neighbors(kKansasCity).contains(kDenver));
  EXPECT_GT(a.lsr->last_route_change(kSunnyvale), SimTime::from_seconds(31));
  EXPECT_GE(a.lsr->route_changes(kSunnyvale), 2U);  // initial + reconvergence

  // Traffic still crosses the country on the surviving path.
  bool delivered = false;
  a.net.router(kNewYork).add_local_handler(
      [&](const sim::Packet&, util::NodeId, SimTime) { delivered = true; });
  sim::PacketHeader hdr;
  hdr.src = kSunnyvale;
  hdr.dst = kNewYork;
  const sim::Packet p = a.net.make_packet(hdr, 100);
  a.net.sim().schedule_at(SimTime::from_seconds(46),
                          [&] { a.net.router(kSunnyvale).originate(p); });
  a.net.sim().run_until(SimTime::from_seconds(47));
  EXPECT_TRUE(delivered);
}

TEST(LinkState, RouterCrashRestartReconverges) {
  auto cfg = AbileneNet::fast_config();
  cfg.dead_interval = Duration::seconds(3);
  AbileneNet a(cfg);
  a.lsr->start();
  a.net.sim().run_until(SimTime::from_seconds(30));

  a.net.sim().schedule_at(SimTime::from_seconds(31), [&] { a.net.crash_router(kKansasCity); });
  a.net.sim().run_until(SimTime::from_seconds(45));
  // Peers declared it dead and routed around it.
  EXPECT_FALSE(a.lsr->neighbors(kDenver).contains(kKansasCity));

  a.net.sim().schedule_at(SimTime::from_seconds(45.5),
                          [&] { a.net.restart_router(kKansasCity); });
  a.net.sim().run_until(SimTime::from_seconds(75));
  // The restarted router rebuilt its soft state and everyone re-adopted it.
  EXPECT_TRUE(a.lsr->neighbors(kDenver).contains(kKansasCity));
  for (util::NodeId n = 0; n <= kNewYork; ++n) {
    EXPECT_TRUE(a.lsr->converged(n)) << abilene_name(n);
  }
  // Its routes work again end to end.
  bool delivered = false;
  a.net.router(kNewYork).add_local_handler(
      [&](const sim::Packet&, util::NodeId, SimTime) { delivered = true; });
  sim::PacketHeader hdr;
  hdr.src = kKansasCity;
  hdr.dst = kNewYork;
  const sim::Packet p = a.net.make_packet(hdr, 100);
  a.net.sim().schedule_at(SimTime::from_seconds(76),
                          [&] { a.net.router(kKansasCity).originate(p); });
  a.net.sim().run_until(SimTime::from_seconds(77));
  EXPECT_TRUE(delivered);
}

TEST(LinkState, HostsFormNoAdjacenciesButStayReachable) {
  // r0 - r1 - r2 with a host off r0 and one off r2. Hosts send no hellos
  // and appear in no neighbor set, yet routers reach them via the stub
  // links their gateways advertise.
  sim::Network net{17};
  crypto::KeyRegistry keys{2024};
  auto& r0 = net.add_router("r0");
  auto& r1 = net.add_router("r1");
  auto& r2 = net.add_router("r2");
  auto& h0 = net.add_host("h0");
  auto& h2 = net.add_host("h2");
  net.connect(r0.id(), r1.id(), {});
  net.connect(r1.id(), r2.id(), {});
  net.connect(h0.id(), r0.id(), {});
  net.connect(h2.id(), r2.id(), {});
  LinkStateRouting lsr(net, keys, AbileneNet::fast_config());
  lsr.start();
  net.sim().run_until(SimTime::from_seconds(20));

  EXPECT_FALSE(lsr.neighbors(r0.id()).contains(h0.id()));
  EXPECT_EQ(lsr.neighbors(r0.id()), std::set<util::NodeId>{r1.id()});
  bool delivered = false;
  h2.add_local_handler([&](const sim::Packet&, util::NodeId, SimTime) { delivered = true; });
  sim::PacketHeader hdr;
  hdr.src = h0.id();
  hdr.dst = h2.id();
  const sim::Packet p = net.make_packet(hdr, 100);
  net.sim().schedule_at(SimTime::from_seconds(21), [&] { h0.send(p); });
  net.sim().run_until(SimTime::from_seconds(22));
  EXPECT_TRUE(delivered);
}

TEST(LinkState, SeenAlertMemoryIsBounded) {
  auto cfg = AbileneNet::fast_config();
  cfg.alert_memory = Duration::seconds(5);
  AbileneNet a(cfg);
  a.lsr->start();
  a.net.sim().run_until(SimTime::from_seconds(30));

  // First alert's interval ends at 30; its suppression record is
  // evictable from 35 on. The second alert (arriving at 60) triggers the
  // sweep, so the memory holds only the fresh record.
  a.net.sim().schedule_at(SimTime::from_seconds(31), [&] {
    a.lsr->announce_suspicion(kDenver, PathSegment{kDenver, kKansasCity},
                              {SimTime::from_seconds(25), SimTime::from_seconds(30)});
  });
  a.net.sim().run_until(SimTime::from_seconds(40));
  EXPECT_EQ(a.lsr->seen_alert_count(kNewYork), 1U);
  a.net.sim().schedule_at(SimTime::from_seconds(60), [&] {
    a.lsr->announce_suspicion(kDenver, PathSegment{kDenver, kKansasCity, kIndianapolis},
                              {SimTime::from_seconds(55), SimTime::from_seconds(59)});
  });
  a.net.sim().run_until(SimTime::from_seconds(70));
  EXPECT_EQ(a.lsr->seen_alert_count(kNewYork), 1U);
}

TEST(LinkState, TopologyViewMatchesPhysical) {
  AbileneNet a;
  a.lsr->start();
  a.net.sim().run_until(SimTime::from_seconds(30));
  const Topology& view = a.lsr->topology_view(kSeattle);
  const Topology physical = abilene_topology();
  for (util::NodeId n = 0; n < physical.node_count(); ++n) {
    EXPECT_EQ(view.degree(n), physical.degree(n)) << abilene_name(n);
  }
}

}  // namespace
}  // namespace fatih::routing
