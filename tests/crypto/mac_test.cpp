#include "crypto/mac.hpp"

#include <gtest/gtest.h>

namespace fatih::crypto {
namespace {

std::vector<std::byte> bytes_of(std::string_view s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

TEST(Mac, Deterministic) {
  const SipKey k{1, 2};
  const auto m = bytes_of("hello world");
  EXPECT_EQ(compute_mac(k, m), compute_mac(k, m));
}

TEST(Mac, KeySeparation) {
  const auto m = bytes_of("hello world");
  EXPECT_NE(compute_mac(SipKey{1, 2}, m), compute_mac(SipKey{1, 3}, m));
}

TEST(SignedEnvelope, RoundTrip) {
  const KeyRegistry reg(7);
  const auto env = sign(reg, 4, bytes_of("detection announcement"));
  EXPECT_EQ(env.signer, 4U);
  EXPECT_TRUE(verify(reg, env));
}

TEST(SignedEnvelope, TamperedPayloadRejected) {
  const KeyRegistry reg(7);
  auto env = sign(reg, 4, bytes_of("original"));
  env.payload[0] = static_cast<std::byte>(0xFF);
  EXPECT_FALSE(verify(reg, env));
}

TEST(SignedEnvelope, ReattributionRejected) {
  // A faulty router cannot claim another router's envelope as its own.
  const KeyRegistry reg(7);
  auto env = sign(reg, 4, bytes_of("summary"));
  env.signer = 5;
  EXPECT_FALSE(verify(reg, env));
}

TEST(SignedEnvelope, ForgedTagRejected) {
  const KeyRegistry reg(7);
  auto env = sign(reg, 4, bytes_of("summary"));
  env.tag ^= 1;
  EXPECT_FALSE(verify(reg, env));
}

TEST(SignedEnvelope, InvalidSignerRejected) {
  const KeyRegistry reg(7);
  SignedEnvelope env;
  EXPECT_FALSE(verify(reg, env));
}

TEST(SignedEnvelope, EmptyPayloadSignable) {
  const KeyRegistry reg(7);
  const auto env = sign(reg, 0, {});
  EXPECT_TRUE(verify(reg, env));
}

TEST(ByteHelpers, AppendAndReadRoundTrip) {
  std::vector<std::byte> buf;
  append_bytes(buf, std::uint32_t{0xDEADBEEF});
  append_bytes(buf, std::int64_t{-42});
  std::size_t offset = 0;
  std::uint32_t a = 0;
  std::int64_t b = 0;
  EXPECT_TRUE(read_bytes(buf, offset, a));
  EXPECT_TRUE(read_bytes(buf, offset, b));
  EXPECT_EQ(a, 0xDEADBEEF);
  EXPECT_EQ(b, -42);
  std::uint8_t c = 0;
  EXPECT_FALSE(read_bytes(buf, offset, c));  // exhausted
}

}  // namespace
}  // namespace fatih::crypto
