// Differential tests for the SIMD-batched SipHash path: every dispatch
// level the CPU offers (and the forced-scalar fallback) must produce
// digests byte-identical to the scalar fixed-length path, for every fixed
// input length in use and for batch counts that exercise each kernel
// width plus its scalar tail.
#include "crypto/siphash.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace fatih::crypto {
namespace {

/// Scoped dispatch-level cap; restores the previous cap on exit so tests
/// never leak a narrowed level into each other.
class ScopedSimdCap {
 public:
  explicit ScopedSimdCap(SimdLevel cap) : old_(set_simd_level_cap(cap)) {}
  ~ScopedSimdCap() { set_simd_level_cap(old_); }
  ScopedSimdCap(const ScopedSimdCap&) = delete;
  ScopedSimdCap& operator=(const ScopedSimdCap&) = delete;

 private:
  SimdLevel old_;
};

constexpr SimdLevel kAllLevels[] = {SimdLevel::kScalar, SimdLevel::kSse2, SimdLevel::kAvx2,
                                    SimdLevel::kAvx512};

/// Batch sizes straddling every kernel width (4/8/16) and leaving scalar
/// tails of every residue class.
constexpr std::size_t kCounts[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 11, 12, 15, 16, 17,
                                   23, 31, 32, 33, 63, 64, 100, 255, 256, 257};

/// Deterministic non-trivial message bytes (xorshift-filled).
std::vector<std::uint8_t> make_messages(std::size_t total_bytes, std::uint64_t seed) {
  std::vector<std::uint8_t> buf(total_bytes);
  std::uint64_t x = seed | 1;
  for (auto& b : buf) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<std::uint8_t>(x);
  }
  return buf;
}

template <std::size_t N>
void check_all_levels_for_length() {
  const SipKey key{0x0706050403020100ULL, 0x0F0E0D0C0B0A0908ULL};
  const SipSchedule sched(key);
  for (const std::size_t count : kCounts) {
    const auto buf = make_messages(count * N, 0x9E3779B97F4A7C15ULL + N + count);
    // Scalar reference: the per-message fixed path, which the reference
    // vectors below pin to the general siphash24.
    std::vector<std::uint64_t> want(count);
    for (std::size_t i = 0; i < count; ++i) {
      want[i] = siphash24_fixed<N>(sched, buf.data() + i * N);
    }
    for (const SimdLevel cap : kAllLevels) {
      ScopedSimdCap guard(cap);
      std::vector<std::uint64_t> got(count, 0);
      siphash24_fixed_batch<N>(sched, buf.data(), count, got.data());
      EXPECT_EQ(got, want) << "N=" << N << " count=" << count
                           << " cap=" << static_cast<int>(cap)
                           << " effective=" << static_cast<int>(simd_level());
    }
  }
}

TEST(SipHashBatch, AllLevelsMatchScalarLen8) { check_all_levels_for_length<8>(); }
TEST(SipHashBatch, AllLevelsMatchScalarLen16) { check_all_levels_for_length<16>(); }

// 40 bytes is THE production length: sizeof(validation::PacketInvariant),
// the fingerprint hot path.
TEST(SipHashBatch, AllLevelsMatchScalarLen40) { check_all_levels_for_length<40>(); }

TEST(SipHashBatch, FixedPathMatchesGeneralHash) {
  // The cached-schedule fixed path (which the batch kernels mirror) must
  // agree with the one-shot keyed hash for the lengths in use.
  const SipKey key{0xDEADBEEFCAFEF00DULL, 0x0123456789ABCDEFULL};
  const SipSchedule sched(key);
  const auto buf = make_messages(40, 42);
  EXPECT_EQ(siphash24_fixed<8>(sched, buf.data()), siphash24(key, buf.data(), 8));
  EXPECT_EQ(siphash24_fixed<16>(sched, buf.data()), siphash24(key, buf.data(), 16));
  EXPECT_EQ(siphash24_fixed<40>(sched, buf.data()), siphash24(key, buf.data(), 40));
}

TEST(SipHashBatch, ForcedScalarFallback) {
  // Capping to kScalar must force the pure-integer path regardless of what
  // the CPU supports — this is the mode the SIMD-off CI build runs in.
  ScopedSimdCap guard(SimdLevel::kScalar);
  EXPECT_EQ(simd_level(), SimdLevel::kScalar);
  EXPECT_EQ(simd_batch_width(), 1u);
}

TEST(SipHashBatch, CapRestores) {
  const SimdLevel detected = simd_level();
  {
    ScopedSimdCap guard(SimdLevel::kScalar);
    EXPECT_EQ(simd_level(), SimdLevel::kScalar);
  }
  EXPECT_EQ(simd_level(), detected);
}

TEST(SipHashBatch, CapCannotExceedDetection) {
  // Raising the cap never widens past what CPUID reported.
  ScopedSimdCap guard(SimdLevel::kAvx512);
  EXPECT_LE(static_cast<int>(simd_level()), static_cast<int>(SimdLevel::kAvx512));
#if !FATIH_SIPHASH_SIMD
  EXPECT_EQ(simd_level(), SimdLevel::kScalar);  // SIMD compiled out entirely
#endif
}

TEST(SipHashBatch, BatchWidthMatchesLevel) {
  switch (simd_level()) {
    case SimdLevel::kScalar:
      EXPECT_EQ(simd_batch_width(), 1u);
      break;
    case SimdLevel::kSse2:
      EXPECT_EQ(simd_batch_width(), 4u);
      break;
    case SimdLevel::kAvx2:
      EXPECT_EQ(simd_batch_width(), 8u);
      break;
    case SimdLevel::kAvx512:
      EXPECT_EQ(simd_batch_width(), 16u);
      break;
  }
}

}  // namespace
}  // namespace fatih::crypto
