#include "crypto/siphash.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace fatih::crypto {
namespace {

// Reference test vectors from the SipHash reference implementation
// (Aumasson & Bernstein): key = 00 01 .. 0f, message = 00 01 .. (len-1),
// output interpreted little-endian.
constexpr SipKey reference_key() {
  // Bytes 00..07 and 08..0f as little-endian words.
  return SipKey{0x0706050403020100ULL, 0x0F0E0D0C0B0A0908ULL};
}

std::vector<std::byte> message(std::size_t len) {
  std::vector<std::byte> m(len);
  for (std::size_t i = 0; i < len; ++i) m[i] = static_cast<std::byte>(i);
  return m;
}

struct Vector {
  std::size_t len;
  std::uint64_t expected;
};

class SipHashVectors : public ::testing::TestWithParam<Vector> {};

TEST_P(SipHashVectors, MatchesReference) {
  const auto [len, expected] = GetParam();
  const auto msg = message(len);
  EXPECT_EQ(siphash24(reference_key(), msg), expected) << "len=" << len;
}

INSTANTIATE_TEST_SUITE_P(Reference, SipHashVectors,
                         ::testing::Values(Vector{0, 0x726fdb47dd0e0e31ULL},
                                           Vector{1, 0x74f839c593dc67fdULL},
                                           Vector{2, 0x0d6c8009d9a94f5aULL},
                                           Vector{3, 0x85676696d7fb7e2dULL},
                                           Vector{4, 0xcf2794e0277187b7ULL},
                                           Vector{5, 0x18765564cd99a68dULL},
                                           Vector{6, 0xcbc9466e58fee3ceULL},
                                           Vector{7, 0xab0200f58b01d137ULL},
                                           Vector{8, 0x93f5f5799a932462ULL}));

TEST(SipHash, KeyDependence) {
  const auto msg = message(16);
  const SipKey k1{1, 2};
  const SipKey k2{1, 3};
  EXPECT_NE(siphash24(k1, msg), siphash24(k2, msg));
}

TEST(SipHash, MessageSensitivity) {
  const SipKey k{42, 43};
  auto m1 = message(32);
  auto m2 = m1;
  m2[31] = static_cast<std::byte>(0xFF);
  EXPECT_NE(siphash24(k, m1), siphash24(k, m2));
}

TEST(SipHash, LengthSensitivity) {
  const SipKey k{42, 43};
  // A message and its zero-extended sibling must differ (length padding).
  std::vector<std::byte> a(8, std::byte{0});
  std::vector<std::byte> b(9, std::byte{0});
  EXPECT_NE(siphash24(k, a), siphash24(k, b));
}

TEST(SipHash, RawPointerOverloadAgrees) {
  const SipKey k{7, 9};
  const auto msg = message(23);
  EXPECT_EQ(siphash24(k, msg), siphash24(k, msg.data(), msg.size()));
}

}  // namespace
}  // namespace fatih::crypto
