#include "crypto/hash_chain.hpp"

#include <gtest/gtest.h>

namespace fatih::crypto {
namespace {

TEST(HashChain, AnchorVerifiesItself) {
  const HashChain chain(123, 10);
  EXPECT_TRUE(HashChain::verify(chain.anchor(), chain.anchor(), 0));
}

TEST(HashChain, EveryPositionVerifies) {
  const HashChain chain(456, 32);
  for (std::size_t i = 0; i <= chain.length(); ++i) {
    EXPECT_TRUE(HashChain::verify(chain.anchor(), chain.value_at(i), i)) << i;
  }
}

TEST(HashChain, WrongPositionFails) {
  const HashChain chain(456, 32);
  EXPECT_FALSE(HashChain::verify(chain.anchor(), chain.value_at(5), 6));
  EXPECT_FALSE(HashChain::verify(chain.anchor(), chain.value_at(5), 4));
}

TEST(HashChain, ForgedValueFails) {
  const HashChain chain(789, 16);
  EXPECT_FALSE(HashChain::verify(chain.anchor(), chain.value_at(3) ^ 1, 3));
}

TEST(HashChain, StepIsChainLink) {
  const HashChain chain(42, 8);
  for (std::size_t i = 1; i <= chain.length(); ++i) {
    EXPECT_EQ(HashChain::step(chain.value_at(i)), chain.value_at(i - 1));
  }
}

TEST(HashChain, DifferentSeedsDiverge) {
  const HashChain a(1, 4);
  const HashChain b(2, 4);
  EXPECT_NE(a.anchor(), b.anchor());
}

}  // namespace
}  // namespace fatih::crypto
