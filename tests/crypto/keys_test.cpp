#include "crypto/keys.hpp"

#include <gtest/gtest.h>

#include <set>

namespace fatih::crypto {
namespace {

TEST(KeyRegistry, PairwiseKeySymmetric) {
  const KeyRegistry reg(12345);
  EXPECT_EQ(reg.pairwise_key(3, 7), reg.pairwise_key(7, 3));
  EXPECT_EQ(reg.fingerprint_key(3, 7), reg.fingerprint_key(7, 3));
}

TEST(KeyRegistry, DistinctPairsGetDistinctKeys) {
  const KeyRegistry reg(12345);
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  for (util::NodeId a = 0; a < 10; ++a) {
    for (util::NodeId b = a + 1; b < 10; ++b) {
      const SipKey k = reg.pairwise_key(a, b);
      EXPECT_TRUE(seen.insert({k.k0, k.k1}).second) << a << "," << b;
    }
  }
}

TEST(KeyRegistry, SigningKeysDistinctPerRouter) {
  const KeyRegistry reg(999);
  std::set<std::uint64_t> seen;
  for (util::NodeId r = 0; r < 100; ++r) {
    EXPECT_TRUE(seen.insert(reg.signing_key(r).k0).second);
  }
}

TEST(KeyRegistry, KeyFamiliesAreSeparated) {
  const KeyRegistry reg(1);
  // The pairwise, signing and fingerprint families must never collide.
  EXPECT_NE(reg.pairwise_key(1, 2), reg.fingerprint_key(1, 2));
  const SipKey sign = reg.signing_key(1);
  const SipKey pair = reg.pairwise_key(1, 0);
  EXPECT_FALSE(sign.k0 == pair.k0 && sign.k1 == pair.k1);
}

TEST(KeyRegistry, DeterministicAcrossInstances) {
  const KeyRegistry a(42);
  const KeyRegistry b(42);
  EXPECT_EQ(a.pairwise_key(5, 9), b.pairwise_key(5, 9));
  EXPECT_EQ(a.signing_key(5), b.signing_key(5));
}

TEST(KeyRegistry, MasterSeedChangesEverything) {
  const KeyRegistry a(42);
  const KeyRegistry b(43);
  EXPECT_NE(a.pairwise_key(5, 9), b.pairwise_key(5, 9));
  EXPECT_NE(a.signing_key(5), b.signing_key(5));
}

}  // namespace
}  // namespace fatih::crypto
