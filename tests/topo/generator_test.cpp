// Property tests for the seeded topology generator (src/topo): seed
// stability (byte-identical graphs, pinned digests), degree-distribution
// shape against the pinned Rocketfuel histograms, connectivity, the
// structural guarantees the sharded engine leans on (core-only inter-PoP
// links, uniform backbone delay, the PoP-0 chi bottleneck), and the codec
// round-trip of generator parameters through ScenarioSpec.
#include "topo/generator.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "scenario/spec.hpp"

namespace fatih::topo {
namespace {

// Pinned structural digests: regenerate with the same params must be
// byte-identical forever (the sharded corpus depends on it).
constexpr std::uint64_t kSprintlinkDigest = 11037831699627619433ULL;
constexpr std::uint64_t kEboneDigest = 17675609933224398286ULL;

TEST(Generator, SeedStabilityByteIdentical) {
  const GeneratedTopology a = generate(sprintlink());
  const GeneratedTopology b = generate(sprintlink());
  ASSERT_EQ(a.pop_of, b.pop_of);
  ASSERT_EQ(a.links.size(), b.links.size());
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    EXPECT_EQ(a.links[i].a, b.links[i].a);
    EXPECT_EQ(a.links[i].b, b.links[i].b);
    EXPECT_EQ(a.links[i].inter, b.links[i].inter);
  }
  EXPECT_EQ(a.pop_hub, b.pop_hub);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.digest(), kSprintlinkDigest);
  EXPECT_EQ(generate(ebone()).digest(), kEboneDigest);
}

TEST(Generator, DifferentSeedDifferentGraph) {
  TopoParams p = sprintlink();
  p.seed += 1;
  EXPECT_NE(generate(p).digest(), kSprintlinkDigest);
}

TEST(Generator, SprintlinkShape) {
  const GeneratedTopology g = generate(sprintlink());
  EXPECT_EQ(g.routers(), 315u);
  EXPECT_EQ(g.pops(), 45u);
  EXPECT_EQ(g.links.size(), 972u);
  EXPECT_TRUE(g.connected());
  // Degree histogram (deg 1, 2, 3-4, 5-8, 9-16, 17+): the Rocketfuel-like
  // heavy middle with a hub tail, pinned exactly for seed stability.
  const std::array<std::uint32_t, 6> expected{1, 7, 62, 200, 43, 2};
  EXPECT_EQ(g.degree_histogram(), expected);
  for (std::uint32_t d : g.degrees()) EXPECT_LE(d, sprintlink().max_degree);
}

TEST(Generator, EboneShape) {
  const GeneratedTopology g = generate(ebone());
  EXPECT_EQ(g.routers(), 87u);
  EXPECT_EQ(g.pops(), 11u);
  EXPECT_EQ(g.links.size(), 161u);
  EXPECT_TRUE(g.connected());
  const std::array<std::uint32_t, 6> expected{11, 23, 31, 16, 6, 0};
  EXPECT_EQ(g.degree_histogram(), expected);
  for (std::uint32_t d : g.degrees()) EXPECT_LE(d, ebone().max_degree);
}

TEST(Generator, ScalesBeyondRocketfuel) {
  TopoParams p;
  p.routers = 600;
  p.links = 1500;
  p.pops = 24;
  p.max_degree = 32;
  p.seed = 2099;
  ASSERT_TRUE(validate(p));
  const GeneratedTopology g = generate(p);
  EXPECT_EQ(g.routers(), 600u);
  EXPECT_EQ(g.links.size(), 1500u);
  EXPECT_TRUE(g.connected());
}

TEST(Generator, PopsAreContiguousIdRanges) {
  const GeneratedTopology g = generate(ebone());
  // pop_of must be non-decreasing: PoP p occupies one contiguous id range.
  for (std::size_t i = 1; i < g.pop_of.size(); ++i) {
    EXPECT_LE(g.pop_of[i - 1], g.pop_of[i]);
    EXPECT_LE(g.pop_of[i] - g.pop_of[i - 1], 1u);
  }
  EXPECT_EQ(g.pop_of.back() + 1, g.pops());
}

TEST(Generator, InterPopLinksMarkedAndHubsInterior) {
  const GeneratedTopology g = generate(sprintlink());
  for (const GenLink& l : g.links) {
    EXPECT_EQ(l.inter, g.pop_of[l.a] != g.pop_of[l.b])
        << "link " << l.a << "-" << l.b;
  }
  // Every PoP hub is the first id of its (contiguous) PoP range.
  for (std::uint32_t pop = 0; pop < g.pops(); ++pop) {
    EXPECT_EQ(g.pop_of[g.pop_hub[pop]], pop);
    if (g.pop_hub[pop] > 0) {
      EXPECT_EQ(g.pop_of[g.pop_hub[pop] - 1] + 1, pop);
    }
  }
}

TEST(Generator, ChiBottleneckConfinedToPopZero) {
  for (const TopoParams& p : {sprintlink(), ebone()}) {
    const GeneratedTopology g = generate(p);
    EXPECT_EQ(g.pop_of[g.chi_owner], 0u);
    EXPECT_EQ(g.pop_of[g.chi_peer], 0u);
    EXPECT_EQ(g.pop_of[g.chi_feed], 0u);
    EXPECT_EQ(g.chi_peer, g.pop_hub[0]);
    // Every neighbor of the owner lives in PoP 0, so all of Protocol
    // chi's taps fire on a single shard; the feeder hangs off the owner
    // and the owner off the hub (the monitored queue).
    bool owner_hub = false;
    bool owner_feed = false;
    for (const GenLink& l : g.links) {
      if (l.a == g.chi_owner || l.b == g.chi_owner) {
        const util::NodeId peer = l.a == g.chi_owner ? l.b : l.a;
        EXPECT_EQ(g.pop_of[peer], 0u);
        owner_hub |= peer == g.chi_peer;
        owner_feed |= peer == g.chi_feed;
      }
    }
    EXPECT_TRUE(owner_hub);
    EXPECT_TRUE(owner_feed);
  }
}

TEST(Generator, ValidateRejectsDegenerateParams) {
  TopoParams p = ebone();
  EXPECT_TRUE(validate(p));
  p.pops = 1;
  EXPECT_FALSE(validate(p));
  p = ebone();
  p.routers = p.pops * 2;  // too few routers per PoP
  EXPECT_FALSE(validate(p));
  p = ebone();
  p.inter_delay_ns = p.intra_delay_ns;  // lookahead window would be trivial
  EXPECT_FALSE(validate(p));
  p = ebone();
  p.links = p.routers - 1;  // budget below the spanning structure
  EXPECT_FALSE(validate(p));
}

TEST(GeneratorCodec, TopoParamsRoundTripThroughScenarioSpec) {
  scenario::ScenarioSpec s;
  s.name = "roundtrip";
  s.topology = scenario::TopologyKind::kGenerated;
  s.topo.routers = 315;
  s.topo.links = 972;
  s.topo.pops = 45;
  s.topo.max_degree = 45;
  s.topo.seed = 1044;
  s.topo.intra_delay_ns = 250'000;
  s.topo.inter_delay_ns = 3'000'000;
  s.shards = 16;
  const std::string text = scenario::encode(s);
  scenario::ScenarioSpec out;
  std::string error;
  ASSERT_TRUE(scenario::decode(text, out, error)) << error;
  EXPECT_EQ(out.topology, scenario::TopologyKind::kGenerated);
  EXPECT_EQ(out.topo.routers, s.topo.routers);
  EXPECT_EQ(out.topo.links, s.topo.links);
  EXPECT_EQ(out.topo.pops, s.topo.pops);
  EXPECT_EQ(out.topo.max_degree, s.topo.max_degree);
  EXPECT_EQ(out.topo.seed, s.topo.seed);
  EXPECT_EQ(out.topo.intra_delay_ns, s.topo.intra_delay_ns);
  EXPECT_EQ(out.topo.inter_delay_ns, s.topo.inter_delay_ns);
  EXPECT_EQ(out.shards, s.shards);
  EXPECT_EQ(scenario::encode(out), text);
}

TEST(GeneratorCodec, ClassicSpecsOmitTopoAndEngineStatements) {
  scenario::ScenarioSpec s;
  s.name = "classic";
  const std::string text = scenario::encode(s);
  EXPECT_EQ(text.find("\ntopo "), std::string::npos);
  EXPECT_EQ(text.find("\nengine "), std::string::npos);
}

}  // namespace
}  // namespace fatih::topo
