#include "traffic/tcp.hpp"

#include <gtest/gtest.h>

#include "attacks/attacks.hpp"

namespace fatih::traffic {
namespace {

using util::Duration;
using util::NodeId;
using util::SimTime;

// host1 - r1 - r2 - host2 with a configurable bottleneck on r1->r2.
struct TcpNet {
  sim::Network net{20};
  NodeId h1;
  NodeId r1;
  NodeId r2;
  NodeId h2;

  explicit TcpNet(double bottleneck_bps = 1e7, std::size_t qlimit = 30000) {
    h1 = net.add_host("h1").id();
    r1 = net.add_router("r1").id();
    r2 = net.add_router("r2").id();
    h2 = net.add_host("h2").id();
    sim::LinkConfig edge;
    edge.bandwidth_bps = 1e9;
    edge.delay = Duration::millis(1);
    sim::LinkConfig core;
    core.bandwidth_bps = bottleneck_bps;
    core.delay = Duration::millis(10);
    core.queue_limit_bytes = qlimit;
    net.connect(h1, r1, edge);
    net.connect(r1, r2, core);
    net.connect(r2, h2, edge);
    auto& ra = net.router(r1);
    auto& rb = net.router(r2);
    ra.set_route(h2, ra.interface_to(r2)->index());
    ra.set_route(h1, ra.interface_to(h1)->index());
    ra.set_route(r2, ra.interface_to(r2)->index());
    rb.set_route(h1, rb.interface_to(r1)->index());
    rb.set_route(h2, rb.interface_to(h2)->index());
    rb.set_route(r1, rb.interface_to(r1)->index());
  }
};

TEST(Tcp, ConnectsQuicklyOnCleanNetwork) {
  TcpNet n;
  TcpFlow flow(n.net, n.h1, n.h2, 1, {});
  flow.start(SimTime::from_seconds(1));
  n.net.sim().run_until(SimTime::from_seconds(2));
  EXPECT_TRUE(flow.connected());
  // One RTT: ~2 * 12ms.
  EXPECT_LT(flow.connect_latency().to_seconds(), 0.05);
  EXPECT_EQ(flow.syn_retransmits(), 0U);
}

TEST(Tcp, TransfersRequestedBytes) {
  TcpNet n;
  TcpConfig cfg;
  cfg.packets_to_send = 200;
  TcpFlow flow(n.net, n.h1, n.h2, 1, cfg);
  flow.start(SimTime::from_seconds(0.5));
  n.net.sim().run_until(SimTime::from_seconds(20));
  EXPECT_TRUE(flow.completed());
  EXPECT_EQ(flow.packets_acked(), 200U);
}

TEST(Tcp, ReliableUnderCongestiveLoss) {
  // A tight bottleneck forces congestion drops; TCP must still deliver
  // everything via retransmission.
  TcpNet n(2e6, 8000);
  TcpConfig cfg;
  cfg.packets_to_send = 300;
  TcpFlow flow(n.net, n.h1, n.h2, 1, cfg);
  flow.start(SimTime::from_seconds(0.5));
  n.net.sim().run_until(SimTime::from_seconds(60));
  EXPECT_TRUE(flow.completed());
  EXPECT_GT(flow.data_retransmits(), 0U);
}

TEST(Tcp, CongestionReducesCwnd) {
  TcpNet n(2e6, 8000);
  TcpConfig cfg;
  cfg.packets_to_send = 0;  // run forever
  TcpFlow flow(n.net, n.h1, n.h2, 1, cfg);
  flow.start(SimTime::from_seconds(0.5));
  n.net.sim().run_until(SimTime::from_seconds(30));
  // cwnd must have been cut below the slow-start explosion value.
  EXPECT_LT(flow.current_cwnd(), 1000.0);
  EXPECT_GT(flow.packets_acked(), 100U);
}

TEST(Tcp, SynDropCostsSeconds) {
  // The dissertation's point (§6.1.1): losing a SYN costs a >= 3 s
  // retransmission timeout — a devastating but tiny attack.
  TcpNet n;
  attacks::FlowMatch match;
  match.syn_only = true;
  match.dst = n.h2;
  n.net.router(n.r1).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 1.0, SimTime::origin(), 1));
  // Disarm the attack after the first SYN so the retry connects.
  n.net.sim().schedule_at(SimTime::from_seconds(2), [&] {
    n.net.router(n.r1).set_forward_filter(nullptr);
  });
  TcpFlow flow(n.net, n.h1, n.h2, 1, {});
  flow.start(SimTime::from_seconds(1));
  n.net.sim().run_until(SimTime::from_seconds(10));
  EXPECT_TRUE(flow.connected());
  EXPECT_GE(flow.syn_retransmits(), 1U);
  EXPECT_GE(flow.connect_latency().to_seconds(), 3.0);
}

TEST(Tcp, PersistentSynDropPreventsConnection) {
  TcpNet n;
  attacks::FlowMatch match;
  match.syn_only = true;
  n.net.router(n.r1).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 1.0, SimTime::origin(), 1));
  TcpFlow flow(n.net, n.h1, n.h2, 1, {});
  flow.start(SimTime::from_seconds(1));
  n.net.sim().run_until(SimTime::from_seconds(30));
  EXPECT_FALSE(flow.connected());
  EXPECT_GE(flow.syn_retransmits(), 2U);
}

TEST(Tcp, RttEstimateTracksPathLatency) {
  TcpNet n;
  TcpConfig cfg;
  cfg.packets_to_send = 100;
  TcpFlow flow(n.net, n.h1, n.h2, 1, cfg);
  flow.start(SimTime::from_seconds(0.5));
  n.net.sim().run_until(SimTime::from_seconds(20));
  // Propagation RTT is ~24 ms plus queueing.
  EXPECT_GT(flow.srtt_seconds(), 0.02);
  EXPECT_LT(flow.srtt_seconds(), 0.2);
}

TEST(Tcp, MultipleFlowsShareBottleneck) {
  TcpNet n(5e6, 20000);
  std::vector<std::unique_ptr<TcpFlow>> flows;
  for (std::uint32_t i = 0; i < 4; ++i) {
    TcpConfig cfg;
    cfg.packets_to_send = 0;
    flows.push_back(std::make_unique<TcpFlow>(n.net, n.h1, n.h2, 10 + i, cfg));
    flows.back()->start(SimTime::from_seconds(0.1 * i));
  }
  n.net.sim().run_until(SimTime::from_seconds(30));
  std::uint64_t total = 0;
  for (const auto& f : flows) {
    EXPECT_TRUE(f->connected());
    EXPECT_GT(f->packets_acked(), 50U);
    total += f->packets_acked();
  }
  // Aggregate goodput bounded by the bottleneck: 5 Mbps for ~30 s is at
  // most ~18750 thousand-byte packets.
  EXPECT_LT(total, 19500U);
  EXPECT_GT(total, 5000U);
}

TEST(Tcp, GoodputPositiveAfterTransfer) {
  TcpNet n;
  TcpConfig cfg;
  cfg.packets_to_send = 50;
  TcpFlow flow(n.net, n.h1, n.h2, 1, cfg);
  flow.start(SimTime::from_seconds(0.5));
  n.net.sim().run_until(SimTime::from_seconds(10));
  EXPECT_GT(flow.goodput_pps(), 0.0);
}

TEST(Tcp, RetransmissionTimeoutBacksOff) {
  // Black-hole everything after connection: RTOs must fire repeatedly.
  TcpNet n;
  TcpConfig cfg;
  cfg.packets_to_send = 10;
  TcpFlow flow(n.net, n.h1, n.h2, 1, cfg);
  flow.start(SimTime::from_seconds(0.5));
  n.net.sim().schedule_at(SimTime::from_seconds(0.6), [&] {
    attacks::FlowMatch match;  // everything
    n.net.router(n.r1).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
        match, 1.0, SimTime::from_seconds(0.6), 1));
  });
  n.net.sim().run_until(SimTime::from_seconds(30));
  EXPECT_FALSE(flow.completed());
  EXPECT_GE(flow.timeouts(), 2U);
}

}  // namespace
}  // namespace fatih::traffic
