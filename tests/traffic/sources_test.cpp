#include "traffic/sources.hpp"

#include <gtest/gtest.h>

namespace fatih::traffic {
namespace {

using util::Duration;
using util::NodeId;
using util::SimTime;

struct TwoRouters {
  sim::Network net{10};
  NodeId a;
  NodeId b;

  TwoRouters() {
    a = net.add_router("a").id();
    b = net.add_router("b").id();
    sim::LinkConfig cfg;
    cfg.bandwidth_bps = 1e9;
    net.connect(a, b, cfg);
    net.router(a).set_route(b, 0);
    net.router(b).set_route(a, 0);
  }
};

TEST(CbrSource, SendsAtConfiguredRate) {
  TwoRouters tr;
  FlowSink sink(tr.net, tr.b);
  CbrSource::Config cfg;
  cfg.src = tr.a;
  cfg.dst = tr.b;
  cfg.flow_id = 1;
  cfg.rate_pps = 100;
  cfg.start = SimTime::from_seconds(1);
  cfg.stop = SimTime::from_seconds(3);
  CbrSource src(tr.net, cfg);
  tr.net.sim().run_until(SimTime::from_seconds(5));
  // 2 seconds at 100 pps.
  EXPECT_NEAR(static_cast<double>(sink.flow(1).packets), 200.0, 2.0);
  EXPECT_EQ(sink.flow(1).packets, src.packets_sent());
}

TEST(CbrSource, WireSizeIncludesHeader) {
  TwoRouters tr;
  FlowSink sink(tr.net, tr.b);
  CbrSource::Config cfg;
  cfg.src = tr.a;
  cfg.dst = tr.b;
  cfg.flow_id = 2;
  cfg.payload_bytes = 960;
  cfg.rate_pps = 10;
  cfg.start = SimTime::origin();
  cfg.stop = SimTime::from_seconds(1);
  CbrSource src(tr.net, cfg);
  tr.net.sim().run_until(SimTime::from_seconds(2));
  ASSERT_GT(sink.flow(2).packets, 0U);
  EXPECT_EQ(sink.flow(2).bytes / sink.flow(2).packets, 1000U);
}

TEST(PoissonSource, MeanRateApproximatelyHolds) {
  TwoRouters tr;
  FlowSink sink(tr.net, tr.b);
  PoissonSource::Config cfg;
  cfg.src = tr.a;
  cfg.dst = tr.b;
  cfg.flow_id = 3;
  cfg.mean_rate_pps = 500;
  cfg.start = SimTime::origin();
  cfg.stop = SimTime::from_seconds(10);
  PoissonSource src(tr.net, cfg);
  tr.net.sim().run_until(SimTime::from_seconds(11));
  EXPECT_NEAR(static_cast<double>(sink.flow(3).packets), 5000.0, 300.0);
}

TEST(OnOffSource, BurstsAndSilences) {
  TwoRouters tr;
  FlowSink sink(tr.net, tr.b);
  OnOffSource::Config cfg;
  cfg.src = tr.a;
  cfg.dst = tr.b;
  cfg.flow_id = 4;
  cfg.on_rate_pps = 1000;
  cfg.mean_on = Duration::millis(100);
  cfg.mean_off = Duration::millis(100);
  cfg.start = SimTime::origin();
  cfg.stop = SimTime::from_seconds(20);
  OnOffSource src(tr.net, cfg);
  tr.net.sim().run_until(SimTime::from_seconds(21));
  // Duty cycle ~50%: expect roughly 10k packets; allow wide tolerance.
  EXPECT_GT(sink.flow(4).packets, 5000U);
  EXPECT_LT(sink.flow(4).packets, 15000U);
}

TEST(FlowSink, SeparatesFlows) {
  TwoRouters tr;
  FlowSink sink(tr.net, tr.b);
  for (std::uint32_t flow = 1; flow <= 3; ++flow) {
    for (std::uint32_t seq = 0; seq < flow * 10; ++seq) {
      tr.net.sim().schedule_at(SimTime::from_seconds(0.001 * seq), [&tr, flow, seq] {
        send_datagram(tr.net, tr.a, tr.b, flow, seq, 100);
      });
    }
  }
  tr.net.sim().run();
  EXPECT_EQ(sink.flow(1).packets, 10U);
  EXPECT_EQ(sink.flow(2).packets, 20U);
  EXPECT_EQ(sink.flow(3).packets, 30U);
  EXPECT_EQ(sink.total_packets(), 60U);
  EXPECT_EQ(sink.flow(99).packets, 0U);
}

TEST(FlowSink, LatencyAccounting) {
  TwoRouters tr;
  FlowSink sink(tr.net, tr.b);
  tr.net.sim().schedule_at(SimTime::origin(),
                           [&] { send_datagram(tr.net, tr.a, tr.b, 7, 0, 100); });
  tr.net.sim().run();
  ASSERT_EQ(sink.flow(7).packets, 1U);
  EXPECT_GT(sink.flow(7).mean_latency_seconds(), 0.0);
  EXPECT_LT(sink.flow(7).mean_latency_seconds(), 0.01);
}

}  // namespace
}  // namespace fatih::traffic
