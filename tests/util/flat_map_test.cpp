#include "util/flat_map.hpp"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace fatih::util {
namespace {

TEST(FlatMap, SubscriptInsertsAndUpdates) {
  FlatMap<int, std::string> m;
  EXPECT_TRUE(m.empty());
  m[3] = "three";
  m[1] = "one";
  m[3] = "THREE";
  EXPECT_EQ(m.size(), 2U);
  EXPECT_EQ(m.at(3), "THREE");
  EXPECT_EQ(m.at(1), "one");
}

TEST(FlatMap, IterationIsSortedByKey) {
  FlatMap<int, int> m;
  for (int k : {5, 1, 4, 2, 3}) m[k] = k * 10;
  std::vector<int> keys;
  for (const auto& [k, v] : m) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(FlatMap, FindContainsCount) {
  FlatMap<int, int> m;
  m[2] = 20;
  EXPECT_NE(m.find(2), m.end());
  EXPECT_EQ(m.find(7), m.end());
  EXPECT_TRUE(m.contains(2));
  EXPECT_FALSE(m.contains(7));
  EXPECT_EQ(m.count(2), 1U);
  EXPECT_EQ(m.count(7), 0U);
}

TEST(FlatMap, AtThrowsOnMissingKey) {
  FlatMap<int, int> m;
  EXPECT_THROW((void)m.at(1), std::out_of_range);
}

TEST(FlatMap, InsertDoesNotOverwrite) {
  FlatMap<int, int> m;
  auto [it1, ok1] = m.insert({1, 10});
  EXPECT_TRUE(ok1);
  auto [it2, ok2] = m.insert({1, 99});
  EXPECT_FALSE(ok2);
  EXPECT_EQ(it2->second, 10);
  auto [it3, ok3] = m.emplace(2, 20);
  EXPECT_TRUE(ok3);
  EXPECT_EQ(m.size(), 2U);
}

TEST(FlatMap, EraseByKeyAndIterator) {
  FlatMap<int, int> m;
  for (int k : {1, 2, 3, 4}) m[k] = k;
  EXPECT_EQ(m.erase(2), 1U);
  EXPECT_EQ(m.erase(2), 0U);
  const auto next = m.erase(m.find(3));
  EXPECT_EQ(next->first, 4);
  EXPECT_EQ(m.size(), 2U);
}

TEST(FlatMap, EraseIfPreservesSurvivorOrder) {
  FlatMap<int, int> m;
  for (int k = 0; k < 10; ++k) m[k] = k;
  const std::size_t removed = erase_if(m, [](const auto& kv) { return kv.first % 2 == 0; });
  EXPECT_EQ(removed, 5U);
  std::vector<int> keys;
  for (const auto& [k, v] : m) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<int>{1, 3, 5, 7, 9}));
}

TEST(FlatMap, CompositeKeysOrderLikeStdMap) {
  // The detection stores key on pairs/tuples; lexicographic order must
  // match std::map's exactly (determinism of round walks depends on it).
  FlatMap<std::pair<unsigned, std::int64_t>, int> flat;
  std::map<std::pair<unsigned, std::int64_t>, int> ref;
  std::mt19937 rng(42);
  for (int i = 0; i < 200; ++i) {
    const std::pair<unsigned, std::int64_t> k{rng() % 8, static_cast<std::int64_t>(rng() % 16)};
    flat[k] = i;
    ref[k] = i;
  }
  ASSERT_EQ(flat.size(), ref.size());
  auto fit = flat.begin();
  for (const auto& [k, v] : ref) {
    EXPECT_EQ(fit->first, k);
    EXPECT_EQ(fit->second, v);
    ++fit;
  }
}

TEST(FlatMap, RandomOpsMatchStdMap) {
  // Differential test: a random interleaving of insert/update/erase must
  // leave the flat map byte-for-byte equal (keys, values, order) to a
  // std::map driven by the same ops.
  FlatMap<int, int> flat;
  std::map<int, int> ref;
  std::mt19937 rng(20260805);
  for (int i = 0; i < 5000; ++i) {
    const int k = static_cast<int>(rng() % 64);
    switch (rng() % 3) {
      case 0:
        flat[k] = i;
        ref[k] = i;
        break;
      case 1:
        flat.insert({k, -i});
        ref.insert({k, -i});
        break;
      default:
        EXPECT_EQ(flat.erase(k), ref.erase(k));
        break;
    }
  }
  ASSERT_EQ(flat.size(), ref.size());
  EXPECT_TRUE(std::equal(flat.begin(), flat.end(), ref.begin(), [](const auto& a, const auto& b) {
    return a.first == b.first && a.second == b.second;
  }));
}

TEST(FlatSet, InsertFindEraseOrdered) {
  FlatSet<int> s;
  EXPECT_TRUE(s.insert(3).second);
  EXPECT_TRUE(s.insert(1).second);
  EXPECT_FALSE(s.insert(3).second);  // duplicate
  EXPECT_EQ(s.size(), 2U);
  EXPECT_TRUE(s.contains(1));
  EXPECT_FALSE(s.contains(2));
  EXPECT_EQ(s.count(3), 1U);
  std::vector<int> vals(s.begin(), s.end());
  EXPECT_EQ(vals, (std::vector<int>{1, 3}));
  EXPECT_EQ(s.erase(1), 1U);
  EXPECT_EQ(s.erase(1), 0U);
  EXPECT_EQ(s.size(), 1U);
}

TEST(FlatSet, RandomOpsMatchStdSet) {
  FlatSet<int> flat;
  std::set<int> ref;
  std::mt19937 rng(7);
  for (int i = 0; i < 3000; ++i) {
    const int k = static_cast<int>(rng() % 48);
    if (rng() % 2 == 0) {
      EXPECT_EQ(flat.insert(k).second, ref.insert(k).second);
    } else {
      EXPECT_EQ(flat.erase(k), ref.erase(k));
    }
  }
  ASSERT_EQ(flat.size(), ref.size());
  EXPECT_TRUE(std::equal(flat.begin(), flat.end(), ref.begin()));
}

}  // namespace
}  // namespace fatih::util
