#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace fatih::util {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntInRangeAndCoversEndpoints) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5U);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double sum = 0;
  double sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ParetoExceedsScale) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(3.0, 1.5), 3.0);
  }
}

TEST(Rng, ForkStreamsIndependent) {
  Rng parent(31);
  Rng child = parent.fork();
  // The child stream should not replay the parent's stream.
  Rng parent_copy(31);
  parent_copy.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

class UniformRangeTest : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {};

TEST_P(UniformRangeTest, StaysWithinBounds) {
  const auto [lo, hi] = GetParam();
  Rng rng(static_cast<std::uint64_t>(lo * 31 + hi));
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, UniformRangeTest,
                         ::testing::Values(std::pair{-10LL, 10LL}, std::pair{0LL, 1LL},
                                           std::pair{-1000000LL, -999990LL},
                                           std::pair{0LL, 255LL},
                                           std::pair{1LL << 40, (1LL << 40) + 5}));

}  // namespace
}  // namespace fatih::util
