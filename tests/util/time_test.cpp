#include "util/time.hpp"

#include <gtest/gtest.h>

namespace fatih::util {
namespace {

TEST(Duration, FactoryUnits) {
  EXPECT_EQ(Duration::nanos(1).count_nanos(), 1);
  EXPECT_EQ(Duration::micros(1).count_nanos(), 1'000);
  EXPECT_EQ(Duration::millis(1).count_nanos(), 1'000'000);
  EXPECT_EQ(Duration::seconds(1).count_nanos(), 1'000'000'000);
}

TEST(Duration, FromSecondsFraction) {
  EXPECT_EQ(Duration::from_seconds(0.0035).count_nanos(), 3'500'000);
  EXPECT_DOUBLE_EQ(Duration::from_seconds(2.5).to_seconds(), 2.5);
}

TEST(Duration, Arithmetic) {
  const auto a = Duration::millis(3);
  const auto b = Duration::millis(2);
  EXPECT_EQ((a + b).count_nanos(), Duration::millis(5).count_nanos());
  EXPECT_EQ((a - b).count_nanos(), Duration::millis(1).count_nanos());
  EXPECT_EQ((a * 4).count_nanos(), Duration::millis(12).count_nanos());
  EXPECT_EQ((a / 3).count_nanos(), Duration::millis(1).count_nanos());
}

TEST(Duration, CompoundAssignment) {
  auto d = Duration::seconds(1);
  d += Duration::seconds(2);
  EXPECT_EQ(d, Duration::seconds(3));
  d -= Duration::seconds(1);
  EXPECT_EQ(d, Duration::seconds(2));
}

TEST(Duration, Ordering) {
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_GT(Duration::seconds(1), Duration::millis(999));
  EXPECT_EQ(Duration::micros(1000), Duration::millis(1));
}

TEST(Duration, Scaled) {
  EXPECT_EQ(Duration::seconds(10).scaled(0.5), Duration::seconds(5));
  EXPECT_EQ(Duration::millis(100).scaled(2.0), Duration::millis(200));
}

TEST(SimTime, OriginAndAdvance) {
  const auto t0 = SimTime::origin();
  EXPECT_EQ(t0.nanos(), 0);
  const auto t1 = t0 + Duration::seconds(2);
  EXPECT_DOUBLE_EQ(t1.seconds(), 2.0);
  EXPECT_EQ(t1 - t0, Duration::seconds(2));
}

TEST(SimTime, InfinityDominates) {
  EXPECT_GT(SimTime::infinity(), SimTime::from_seconds(1e9));
}

TEST(SimTime, FromSeconds) {
  EXPECT_EQ(SimTime::from_seconds(1.5).nanos(), 1'500'000'000);
}

TEST(TimeInterval, ContainsHalfOpen) {
  const TimeInterval tau{SimTime::from_seconds(1), SimTime::from_seconds(2)};
  EXPECT_TRUE(tau.contains(SimTime::from_seconds(1)));
  EXPECT_TRUE(tau.contains(SimTime::from_seconds(1.999)));
  EXPECT_FALSE(tau.contains(SimTime::from_seconds(2)));
  EXPECT_FALSE(tau.contains(SimTime::from_seconds(0.5)));
  EXPECT_EQ(tau.length(), Duration::seconds(1));
}

TEST(TimeFormatting, Renders) {
  EXPECT_EQ(to_string(SimTime::from_seconds(1.5)), "1.500000s");
  EXPECT_EQ(to_string(Duration::millis(250)), "0.250000s");
}

}  // namespace
}  // namespace fatih::util
