#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace fatih::util {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8U);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
}

TEST(RunningStats, MergeEqualsCombined) {
  Rng rng(5);
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(1.0, 3.0);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1U);
  b.merge(a);
  EXPECT_EQ(b.count(), 1U);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Ewma, FirstSampleInitializesDirectly) {
  Ewma e(0.1);
  EXPECT_EQ(e.count(), 0U);
  EXPECT_DOUBLE_EQ(e.value(), 0.0);
  e.add(5.0);
  // No zero-bias warmup: the first sample IS the average.
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  EXPECT_EQ(e.count(), 1U);
  EXPECT_DOUBLE_EQ(e.alpha(), 0.1);
}

TEST(Ewma, FollowsRecursion) {
  Ewma e(0.25);
  e.add(4.0);
  e.add(8.0);  // 0.75*4 + 0.25*8 = 5
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  e.add(5.0);  // already at 5: fixed point
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  EXPECT_EQ(e.count(), 3U);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e(0.2);
  e.add(0.0);
  for (int i = 0; i < 200; ++i) e.add(10.0);
  EXPECT_NEAR(e.value(), 10.0, 1e-9);
}

TEST(Ewma, AlphaOneTracksLastSample) {
  Ewma e(1.0);
  e.add(3.0);
  e.add(-7.5);
  EXPECT_DOUBLE_EQ(e.value(), -7.5);
}

TEST(NormalCdf, StandardValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.0), 0.1586553, 1e-6);
  EXPECT_NEAR(normal_cdf(1.96), 0.9750021, 1e-6);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501, 1e-6);
}

TEST(NormalCdf, Parameterized) {
  EXPECT_NEAR(normal_cdf(15.0, 10.0, 5.0), normal_cdf(1.0), 1e-12);
  EXPECT_NEAR(normal_cdf(10.0, 10.0, 2.0), 0.5, 1e-12);
}

TEST(ZScore, MatchesDefinition) {
  // mean 12, mu0 10, sigma 4, n 16 -> z = (12-10)/(4/4) = 2.
  EXPECT_NEAR(z_score(12.0, 10.0, 4.0, 16), 2.0, 1e-12);
}

TEST(Percentile, MedianOddEven) {
  EXPECT_DOUBLE_EQ(*median({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(*median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Percentile, Extremes) {
  std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(*percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(*percentile(xs, 100.0), 5.0);
}

TEST(Percentile, EmptyIsNull) { EXPECT_FALSE(percentile({}, 50.0).has_value()); }

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(-1.0);  // underflow -> bin 0
  h.add(42.0);  // overflow -> bin 9
  EXPECT_EQ(h.total(), 4U);
  EXPECT_EQ(h.bin_count(0), 2U);
  EXPECT_EQ(h.bin_count(9), 2U);
  EXPECT_EQ(h.underflow(), 1U);
  EXPECT_EQ(h.overflow(), 1U);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(9), 9.5);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  // Ranks at 0/25/50/75/100 for 5 sorted points; p=60 lands 0.4 of the
  // way between the 2nd and 3rd element (linear interpolation).
  std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(*percentile(xs, 25.0), 20.0);
  EXPECT_DOUBLE_EQ(*percentile(xs, 60.0), 34.0);
  EXPECT_DOUBLE_EQ(*percentile(xs, 90.0), 46.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(*percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(*percentile({7.0}, 50.0), 7.0);
  EXPECT_DOUBLE_EQ(*percentile({7.0}, 100.0), 7.0);
}

TEST(Histogram, BinEdgesAreHalfOpen) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.0);  // lo is inclusive -> bin 0
  h.add(1.0);  // exact edge -> bin 1
  h.add(4.0);  // hi is exclusive -> overflow, clamped to last bin
  EXPECT_EQ(h.bin_count(0), 1U);
  EXPECT_EQ(h.bin_count(1), 1U);
  EXPECT_EQ(h.bin_count(3), 1U);
  EXPECT_EQ(h.overflow(), 1U);
  EXPECT_EQ(h.underflow(), 0U);
  EXPECT_EQ(h.total(), 3U);
}

TEST(Histogram, SingleBinSwallowsEverything) {
  Histogram h(-1.0, 1.0, 1);
  h.add(-5.0);
  h.add(0.0);
  h.add(5.0);
  EXPECT_EQ(h.bins(), 1U);
  EXPECT_EQ(h.bin_count(0), 3U);
  EXPECT_EQ(h.underflow(), 1U);
  EXPECT_EQ(h.overflow(), 1U);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.0);
}

TEST(NormalFit, GaussianSampleFitsWell) {
  Rng rng(77);
  Histogram h(-4.0, 4.0, 40);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.normal(0.0, 1.0);
    h.add(x);
    s.add(x);
  }
  const double reduced = normal_fit_reduced_chi2(h, s.mean(), s.stddev());
  EXPECT_LT(reduced, 2.0);  // good fit
}

TEST(NormalFit, UniformSampleFitsBadly) {
  Rng rng(78);
  Histogram h(-4.0, 4.0, 40);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.uniform(-3.0, 3.0);
    h.add(x);
    s.add(x);
  }
  const double reduced = normal_fit_reduced_chi2(h, s.mean(), s.stddev());
  EXPECT_GT(reduced, 10.0);  // visibly non-normal
}

}  // namespace
}  // namespace fatih::util
