#include "validation/summary.hpp"

#include <gtest/gtest.h>

namespace fatih::validation {
namespace {

TEST(CounterSummary, Accumulates) {
  CounterSummary c;
  c.add(100);
  c.add(250);
  EXPECT_EQ(c.packets, 2U);
  EXPECT_EQ(c.bytes, 350U);
}

FingerprintSummary make_summary(std::initializer_list<Fingerprint> fps) {
  FingerprintSummary s;
  for (auto fp : fps) s.add(fp);
  return s;
}

TEST(FingerprintSummary, DifferenceBasic) {
  const auto a = make_summary({1, 2, 3, 4});
  const auto b = make_summary({2, 4, 5});
  EXPECT_EQ(a.difference(b), (std::vector<Fingerprint>{1, 3}));
  EXPECT_EQ(b.difference(a), (std::vector<Fingerprint>{5}));
}

TEST(FingerprintSummary, DifferenceRespectsMultiplicity) {
  const auto a = make_summary({7, 7, 7});
  const auto b = make_summary({7});
  EXPECT_EQ(a.difference(b).size(), 2U);
}

TEST(FingerprintSummary, SymmetricDifferenceSize) {
  const auto a = make_summary({1, 2, 3});
  const auto b = make_summary({3, 4});
  EXPECT_EQ(FingerprintSummary::symmetric_difference_size(a, b), 3U);
  EXPECT_EQ(FingerprintSummary::symmetric_difference_size(a, a), 0U);
  EXPECT_EQ(FingerprintSummary::symmetric_difference_size(a, {}), 3U);
}

OrderedSummary seq_of(std::initializer_list<Fingerprint> fps) {
  OrderedSummary s;
  for (auto fp : fps) s.add(fp);
  return s;
}

TEST(OrderedSummary, NoReorder) {
  const auto sent = seq_of({1, 2, 3, 4, 5});
  EXPECT_EQ(OrderedSummary::reorder_count(sent, sent), 0U);
}

TEST(OrderedSummary, SingleDisplacement) {
  const auto sent = seq_of({1, 2, 3, 4, 5});
  const auto recv = seq_of({2, 3, 4, 1, 5});  // 1 moved back
  EXPECT_EQ(OrderedSummary::reorder_count(sent, recv), 1U);
}

TEST(OrderedSummary, FullReversal) {
  const auto sent = seq_of({1, 2, 3, 4, 5});
  const auto recv = seq_of({5, 4, 3, 2, 1});
  EXPECT_EQ(OrderedSummary::reorder_count(sent, recv), 4U);
}

TEST(OrderedSummary, LossesExcludedFromMetric) {
  // §2.2.1: remove lost/fabricated packets from both streams first.
  const auto sent = seq_of({1, 2, 3, 4, 5});
  const auto recv = seq_of({1, 3, 5});  // 2 and 4 lost, order intact
  EXPECT_EQ(OrderedSummary::reorder_count(sent, recv), 0U);
}

TEST(OrderedSummary, FabricationsExcludedFromMetric) {
  const auto sent = seq_of({1, 2, 3});
  const auto recv = seq_of({1, 9, 2, 3});  // 9 fabricated
  EXPECT_EQ(OrderedSummary::reorder_count(sent, recv), 0U);
}

TEST(OrderedSummary, SwapAdjacent) {
  const auto sent = seq_of({1, 2, 3, 4});
  const auto recv = seq_of({1, 3, 2, 4});
  EXPECT_EQ(OrderedSummary::reorder_count(sent, recv), 1U);
}

TEST(OrderedSummary, EmptyStreams) {
  EXPECT_EQ(OrderedSummary::reorder_count({}, {}), 0U);
  EXPECT_EQ(OrderedSummary::reorder_count(seq_of({1, 2}), {}), 0U);
}

}  // namespace
}  // namespace fatih::validation
