#include "validation/fingerprint.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fatih::validation {
namespace {

sim::Packet sample_packet() {
  sim::Packet p;
  p.hdr.src = 1;
  p.hdr.dst = 9;
  p.hdr.flow_id = 3;
  p.hdr.seq = 17;
  p.hdr.proto = sim::Protocol::kTcp;
  p.hdr.ttl = 64;
  p.size_bytes = 1000;
  p.payload_tag = 0xABCDEF;
  return p;
}

constexpr crypto::SipKey kKey{11, 22};

TEST(Fingerprint, TtlInvariant) {
  // §7.4.2: mutable header fields must not affect the fingerprint, or
  // downstream routers could never match upstream records.
  auto p1 = sample_packet();
  auto p2 = sample_packet();
  p2.hdr.ttl = 3;
  EXPECT_EQ(packet_fingerprint(kKey, p1), packet_fingerprint(kKey, p2));
}

TEST(Fingerprint, UidAndTimestampInvariant) {
  auto p1 = sample_packet();
  auto p2 = sample_packet();
  p2.uid = 999;
  p2.created = util::SimTime::from_seconds(5);
  EXPECT_EQ(packet_fingerprint(kKey, p1), packet_fingerprint(kKey, p2));
}

TEST(Fingerprint, PayloadSensitive) {
  auto p1 = sample_packet();
  auto p2 = sample_packet();
  p2.payload_tag ^= 1;  // a modified packet
  EXPECT_NE(packet_fingerprint(kKey, p1), packet_fingerprint(kKey, p2));
}

TEST(Fingerprint, HeaderSensitive) {
  const auto base = packet_fingerprint(kKey, sample_packet());
  auto p = sample_packet();
  p.hdr.src = 2;
  EXPECT_NE(packet_fingerprint(kKey, p), base);
  p = sample_packet();
  p.hdr.dst = 2;
  EXPECT_NE(packet_fingerprint(kKey, p), base);
  p = sample_packet();
  p.hdr.seq = 18;
  EXPECT_NE(packet_fingerprint(kKey, p), base);
  p = sample_packet();
  p.size_bytes = 999;
  EXPECT_NE(packet_fingerprint(kKey, p), base);
  p = sample_packet();
  p.hdr.flags = sim::kFlagSyn;
  EXPECT_NE(packet_fingerprint(kKey, p), base);
}

TEST(Fingerprint, BatchMatchesPerPacketOnEveryDispatchLevel) {
  // hash_batch feeds the SIMD lanes; its digests must be byte-identical to
  // operator() per packet on every dispatch path, including the forced
  // scalar fallback and counts that leave lane tails.
  const FingerprintHasher hasher(kKey);
  for (const std::size_t count : {std::size_t{1}, std::size_t{5}, std::size_t{16},
                                  std::size_t{23}, std::size_t{64}}) {
    std::vector<sim::Packet> packets;
    std::vector<PacketInvariant> views;
    for (std::size_t i = 0; i < count; ++i) {
      auto p = sample_packet();
      p.hdr.seq = static_cast<std::uint32_t>(i);
      p.hdr.flow_id = static_cast<std::uint32_t>(i % 7);
      p.payload_tag = 0x1000 + i;
      views.push_back(PacketInvariant::from_packet(p));
      packets.push_back(p);
    }
    std::vector<Fingerprint> want(count);
    for (std::size_t i = 0; i < count; ++i) want[i] = hasher(packets[i]);
    for (const auto cap : {crypto::SimdLevel::kScalar, crypto::SimdLevel::kSse2,
                           crypto::SimdLevel::kAvx2, crypto::SimdLevel::kAvx512}) {
      const auto old = crypto::set_simd_level_cap(cap);
      std::vector<Fingerprint> got(count, 0);
      hasher.hash_batch(views.data(), count, got.data());
      crypto::set_simd_level_cap(old);
      EXPECT_EQ(got, want) << "count=" << count << " cap=" << static_cast<int>(cap);
    }
  }
}

TEST(Fingerprint, InvariantViewMatchesOneShot) {
  // The public PacketInvariant must reproduce the seed's 40-byte layout:
  // hashing it directly equals the packet fingerprint.
  const auto p = sample_packet();
  const PacketInvariant v = PacketInvariant::from_packet(p);
  const crypto::SipSchedule sched(kKey);
  EXPECT_EQ(crypto::siphash24_fixed<sizeof(v)>(sched, &v), packet_fingerprint(kKey, p));
}

TEST(Fingerprint, KeySeparation) {
  // Fingerprints under different segment keys are unlinkable, so interior
  // routers cannot predict another segment's sampling (§5.2.1).
  const auto p = sample_packet();
  EXPECT_NE(packet_fingerprint(crypto::SipKey{1, 2}, p),
            packet_fingerprint(crypto::SipKey{1, 3}, p));
}

}  // namespace
}  // namespace fatih::validation
