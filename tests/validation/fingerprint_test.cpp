#include "validation/fingerprint.hpp"

#include <gtest/gtest.h>

namespace fatih::validation {
namespace {

sim::Packet sample_packet() {
  sim::Packet p;
  p.hdr.src = 1;
  p.hdr.dst = 9;
  p.hdr.flow_id = 3;
  p.hdr.seq = 17;
  p.hdr.proto = sim::Protocol::kTcp;
  p.hdr.ttl = 64;
  p.size_bytes = 1000;
  p.payload_tag = 0xABCDEF;
  return p;
}

constexpr crypto::SipKey kKey{11, 22};

TEST(Fingerprint, TtlInvariant) {
  // §7.4.2: mutable header fields must not affect the fingerprint, or
  // downstream routers could never match upstream records.
  auto p1 = sample_packet();
  auto p2 = sample_packet();
  p2.hdr.ttl = 3;
  EXPECT_EQ(packet_fingerprint(kKey, p1), packet_fingerprint(kKey, p2));
}

TEST(Fingerprint, UidAndTimestampInvariant) {
  auto p1 = sample_packet();
  auto p2 = sample_packet();
  p2.uid = 999;
  p2.created = util::SimTime::from_seconds(5);
  EXPECT_EQ(packet_fingerprint(kKey, p1), packet_fingerprint(kKey, p2));
}

TEST(Fingerprint, PayloadSensitive) {
  auto p1 = sample_packet();
  auto p2 = sample_packet();
  p2.payload_tag ^= 1;  // a modified packet
  EXPECT_NE(packet_fingerprint(kKey, p1), packet_fingerprint(kKey, p2));
}

TEST(Fingerprint, HeaderSensitive) {
  const auto base = packet_fingerprint(kKey, sample_packet());
  auto p = sample_packet();
  p.hdr.src = 2;
  EXPECT_NE(packet_fingerprint(kKey, p), base);
  p = sample_packet();
  p.hdr.dst = 2;
  EXPECT_NE(packet_fingerprint(kKey, p), base);
  p = sample_packet();
  p.hdr.seq = 18;
  EXPECT_NE(packet_fingerprint(kKey, p), base);
  p = sample_packet();
  p.size_bytes = 999;
  EXPECT_NE(packet_fingerprint(kKey, p), base);
  p = sample_packet();
  p.hdr.flags = sim::kFlagSyn;
  EXPECT_NE(packet_fingerprint(kKey, p), base);
}

TEST(Fingerprint, KeySeparation) {
  // Fingerprints under different segment keys are unlinkable, so interior
  // routers cannot predict another segment's sampling (§5.2.1).
  const auto p = sample_packet();
  EXPECT_NE(packet_fingerprint(crypto::SipKey{1, 2}, p),
            packet_fingerprint(crypto::SipKey{1, 3}, p));
}

}  // namespace
}  // namespace fatih::validation
