#include "validation/bloom.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace fatih::validation {
namespace {

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter f(4096, 4);
  util::Rng rng(1);
  std::vector<Fingerprint> inserted;
  for (int i = 0; i < 200; ++i) {
    inserted.push_back(rng.next_u64());
    f.insert(inserted.back());
  }
  for (auto fp : inserted) EXPECT_TRUE(f.maybe_contains(fp));
}

TEST(BloomFilter, LowFalsePositiveRateWhenSized) {
  BloomFilter f(8192, 5);
  util::Rng rng(2);
  for (int i = 0; i < 500; ++i) f.insert(rng.next_u64());
  int fp_count = 0;
  for (int i = 0; i < 10000; ++i) {
    if (f.maybe_contains(rng.next_u64())) ++fp_count;
  }
  // ~0.7% expected at this load; allow generous slack.
  EXPECT_LT(fp_count, 300);
}

TEST(BloomFilter, PopulationGrowsWithInsertions) {
  BloomFilter f(4096, 4);
  EXPECT_EQ(f.population(), 0U);
  util::Rng rng(3);
  f.insert(rng.next_u64());
  const auto p1 = f.population();
  EXPECT_GT(p1, 0U);
  EXPECT_LE(p1, 4U);
  for (int i = 0; i < 100; ++i) f.insert(rng.next_u64());
  EXPECT_GT(f.population(), p1);
}

TEST(BloomFilter, IdenticalSetsHaveZeroXor) {
  util::Rng rng(4);
  BloomFilter a(4096, 4);
  BloomFilter b(4096, 4);
  for (int i = 0; i < 100; ++i) {
    const auto fp = rng.next_u64();
    a.insert(fp);
    b.insert(fp);
  }
  EXPECT_EQ(BloomFilter::xor_population(a, b), 0U);
  const auto est = BloomFilter::estimate_symmetric_difference(a, b);
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(*est, 0.0);
}

class BloomDiffEstimate : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BloomDiffEstimate, EstimatesWithinTwentyPercent) {
  const std::size_t diff = GetParam();
  util::Rng rng(5);
  BloomFilter a(1 << 16, 4);
  BloomFilter b(1 << 16, 4);
  // 2000 common fingerprints.
  for (int i = 0; i < 2000; ++i) {
    const auto fp = rng.next_u64();
    a.insert(fp);
    b.insert(fp);
  }
  // `diff` fingerprints split between the two sides.
  for (std::size_t i = 0; i < diff; ++i) {
    (i % 2 == 0 ? a : b).insert(rng.next_u64());
  }
  const auto est = BloomFilter::estimate_symmetric_difference(a, b);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(*est, static_cast<double>(diff),
              std::max(8.0, 0.2 * static_cast<double>(diff)));
}

INSTANTIATE_TEST_SUITE_P(DiffSizes, BloomDiffEstimate,
                         ::testing::Values(0U, 10U, 50U, 200U, 800U));

TEST(BloomFilter, SaturationReturnsNull) {
  BloomFilter a(64, 4);
  BloomFilter b(64, 4);
  util::Rng rng(6);
  for (int i = 0; i < 500; ++i) a.insert(rng.next_u64());
  // a is all-ones, b all-zeros: XOR population == bit count.
  EXPECT_FALSE(BloomFilter::estimate_symmetric_difference(a, b).has_value());
}

TEST(BloomFilter, ByteSizeReflectsBits) {
  EXPECT_EQ(BloomFilter(4096, 3).byte_size(), 512U);
  EXPECT_EQ(BloomFilter(100, 3).byte_size(), 16U);  // rounded to 128 bits
}

}  // namespace
}  // namespace fatih::validation
