#include "validation/reconcile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.hpp"

namespace fatih::validation {
namespace {

TEST(Gf, AddSubInverse) {
  EXPECT_EQ(gf::add(gf::kP - 1, 1), 0U);
  EXPECT_EQ(gf::sub(0, 1), gf::kP - 1);
  EXPECT_EQ(gf::add(5, 7), 12U);
  EXPECT_EQ(gf::sub(gf::add(123456789, 987654321), 987654321), 123456789U);
}

TEST(Gf, MulMatchesSmallCases) {
  EXPECT_EQ(gf::mul(3, 7), 21U);
  EXPECT_EQ(gf::mul(gf::kP - 1, gf::kP - 1), 1U);  // (-1)^2 = 1
  EXPECT_EQ(gf::mul(0, 12345), 0U);
}

TEST(Gf, PowAndFermat) {
  EXPECT_EQ(gf::pow(2, 10), 1024U);
  // Fermat's little theorem: a^(p-1) = 1.
  EXPECT_EQ(gf::pow(123456789, gf::kP - 1), 1U);
}

TEST(Gf, InverseIsInverse) {
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t a = gf::reduce(rng.next_u64());
    if (a == 0) continue;
    EXPECT_EQ(gf::mul(a, gf::inv(a)), 1U);
  }
}

TEST(EvaluationPoints, DeterministicAndDistinct) {
  const auto p1 = evaluation_points(64);
  const auto p2 = evaluation_points(64);
  EXPECT_EQ(p1, p2);
  std::set<std::uint64_t> unique(p1.begin(), p1.end());
  EXPECT_EQ(unique.size(), 64U);
}

TEST(CharPoly, RootsEvaluateToZero) {
  const std::vector<std::uint64_t> set{5, 17, 99};
  const auto evals = char_poly_evaluations(set, set);
  for (auto v : evals) EXPECT_EQ(v, 0U);
  const std::vector<std::uint64_t> points{1};
  // chi(1) = (1-5)(1-17)(1-99).
  const auto at1 = char_poly_evaluations(set, points)[0];
  EXPECT_EQ(at1, gf::mul(gf::mul(gf::sub(1, 5), gf::sub(1, 17)), gf::sub(1, 99)));
}

TEST(FindRoots, RecoversFactoredPolynomial) {
  // (x - 3)(x - 11)(x - 42) expanded.
  // x^3 - 56x^2 + (33+126+462)x - 1386 = x^3 - 56x^2 + 621x - 1386.
  std::vector<std::uint64_t> coeffs{gf::sub(0, 1386), 621, gf::sub(0, 56), 1};
  const auto roots = find_roots(coeffs, 7);
  EXPECT_EQ(roots, (std::vector<std::uint64_t>{3, 11, 42}));
}

TEST(FindRoots, LinearAndEmpty) {
  EXPECT_EQ(find_roots({gf::sub(0, 9), 1}, 1), (std::vector<std::uint64_t>{9}));
  EXPECT_TRUE(find_roots({1}, 1).empty());  // constant
}

struct ReconcileCase {
  std::size_t common;
  std::size_t only_a;
  std::size_t only_b;
};

class ReconcileTest : public ::testing::TestWithParam<ReconcileCase> {};

TEST_P(ReconcileTest, RecoversExactDifference) {
  const auto [common, only_a, only_b] = GetParam();
  util::Rng rng(common * 31 + only_a * 7 + only_b);
  std::set<std::uint64_t> a_set;
  std::set<std::uint64_t> b_set;
  std::set<std::uint64_t> expected_only_a;
  std::set<std::uint64_t> expected_only_b;
  while (a_set.size() + b_set.size() < 2 * common) {
    const auto v = to_field(rng.next_u64());
    a_set.insert(v);
    b_set.insert(v);
  }
  while (expected_only_a.size() < only_a) {
    const auto v = to_field(rng.next_u64());
    if (b_set.contains(v)) continue;
    if (expected_only_a.insert(v).second) a_set.insert(v);
  }
  while (expected_only_b.size() < only_b) {
    const auto v = to_field(rng.next_u64());
    if (a_set.contains(v)) continue;
    if (expected_only_b.insert(v).second) b_set.insert(v);
  }

  const std::size_t bound = only_a + only_b + 2;
  const auto points = evaluation_points(bound + 4);
  const std::vector<std::uint64_t> a_vec(a_set.begin(), a_set.end());
  const std::vector<std::uint64_t> b_vec(b_set.begin(), b_set.end());
  const auto a_evals = char_poly_evaluations(a_vec, points);

  const auto result = reconcile(b_vec, a_evals, a_vec.size(), points, bound);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(std::set<std::uint64_t>(result->only_remote.begin(), result->only_remote.end()),
            expected_only_a);
  EXPECT_EQ(std::set<std::uint64_t>(result->only_local.begin(), result->only_local.end()),
            expected_only_b);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ReconcileTest,
    ::testing::Values(ReconcileCase{100, 0, 0}, ReconcileCase{100, 1, 0},
                      ReconcileCase{100, 0, 1}, ReconcileCase{100, 3, 3},
                      ReconcileCase{500, 10, 0}, ReconcileCase{500, 0, 10},
                      ReconcileCase{1000, 8, 12}, ReconcileCase{50, 20, 20},
                      ReconcileCase{0, 5, 5}));

TEST(Reconcile, BoundExceededReturnsNull) {
  util::Rng rng(9);
  std::vector<std::uint64_t> a;
  std::vector<std::uint64_t> b;
  for (int i = 0; i < 100; ++i) {
    const auto v = to_field(rng.next_u64());
    a.push_back(v);
    b.push_back(v);
  }
  // 30 extra elements in a, but bound of 10.
  for (int i = 0; i < 30; ++i) a.push_back(to_field(rng.next_u64()));
  const auto points = evaluation_points(14);
  const auto a_evals = char_poly_evaluations(a, points);
  EXPECT_FALSE(reconcile(b, a_evals, a.size(), points, 10).has_value());
}

TEST(Reconcile, BandwidthIsBoundedByDifference) {
  // The whole point of Appendix A: shipping d+slack field elements,
  // independent of |A| (here |A| = 5000 but we only send 12 evals).
  util::Rng rng(10);
  std::vector<std::uint64_t> a;
  for (int i = 0; i < 5000; ++i) a.push_back(to_field(rng.next_u64()));
  std::vector<std::uint64_t> b = a;
  b.pop_back();
  b.pop_back();
  const auto points = evaluation_points(12);
  const auto a_evals = char_poly_evaluations(a, points);
  EXPECT_EQ(a_evals.size(), 12U);  // 96 bytes on the wire
  const auto result = reconcile(b, a_evals, a.size(), points, 8);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->only_remote.size(), 2U);
  EXPECT_TRUE(result->only_local.empty());
}

}  // namespace
}  // namespace fatih::validation
