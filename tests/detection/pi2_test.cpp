#include "detection/pi2.hpp"

#include <gtest/gtest.h>

#include "attacks/attacks.hpp"
#include "detection/spec.hpp"
#include "tests/detection/test_net.hpp"

namespace fatih::detection {
namespace {

using testing::LineNet;
using util::Duration;
using util::SimTime;

Pi2Config fast_config(std::int64_t rounds = 4, std::size_t k = 1) {
  Pi2Config cfg;
  cfg.clock = RoundClock{SimTime::origin(), Duration::seconds(1)};
  cfg.k = k;
  cfg.collect_settle = Duration::millis(150);
  cfg.evaluate_settle = Duration::millis(300);
  cfg.policy = TvPolicy::kContentOrder;
  cfg.rounds = rounds;
  return cfg;
}

// Runs a 5-router line with CBR 0->4 and 4->0 for `seconds`.
struct Pi2Fixture {
  LineNet line{5};
  std::unique_ptr<Pi2Engine> engine;

  explicit Pi2Fixture(Pi2Config cfg = fast_config()) {
    engine = std::make_unique<Pi2Engine>(line.net, line.keys, *line.paths, line.terminals(),
                                         cfg);
    line.add_cbr(0, 4, 1, 200, SimTime::from_seconds(0.05), SimTime::from_seconds(3.9));
    line.add_cbr(4, 0, 2, 150, SimTime::from_seconds(0.05), SimTime::from_seconds(3.9));
    engine->start();
  }

  void run(double seconds = 6.0) { line.net.sim().run_until(SimTime::from_seconds(seconds)); }
};

TEST(Pi2, NoAttackNoSuspicions) {
  Pi2Fixture f;
  f.run();
  EXPECT_TRUE(f.engine->suspicions().empty());
}

TEST(Pi2, MonitoredSetsMatchSegmentIndex) {
  Pi2Fixture f;
  // Interior router 2 of a 5-line with k=1 monitors the 3-windows
  // containing it, in both directions: {<0,1,2>,<1,2,3>,<2,3,4>} and the
  // three reverses.
  const auto segs = f.engine->monitored_by(2);
  EXPECT_EQ(segs.size(), 6U);
  // End router 0 is in <0,1,2> and <2,1,0>.
  EXPECT_EQ(f.engine->monitored_by(0).size(), 2U);
}

TEST(Pi2, DropperSuspectedWithPrecision2) {
  Pi2Fixture f;
  GroundTruth truth;
  truth.mark_traffic_faulty(2, SimTime::from_seconds(2));
  attacks::FlowMatch match;
  match.flow_ids = {1};
  f.line.net.router(2).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 1.0, SimTime::from_seconds(2), 99));
  f.run();
  const auto& suspicions = f.engine->suspicions();
  ASSERT_FALSE(suspicions.empty());
  const auto report = check_accuracy(suspicions, truth, 2);
  EXPECT_TRUE(report.accuracy_holds());
  EXPECT_TRUE(check_completeness_for(suspicions, 2));
}

TEST(Pi2, StrongCompletenessEveryCorrectRouterSuspects) {
  Pi2Fixture f;
  attacks::FlowMatch match;
  match.flow_ids = {1};
  f.line.net.router(2).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 1.0, SimTime::from_seconds(2), 99));
  f.run();
  // Every correct router that monitors a segment containing r2 must have
  // raised a suspicion containing r2 (strong completeness, §5.1).
  for (util::NodeId r : {0U, 1U, 3U, 4U}) {
    bool found = false;
    for (const auto& s : f.engine->suspicions()) {
      if (s.reporter == r && s.segment.contains(2)) found = true;
    }
    EXPECT_TRUE(found) << "router " << r;
  }
}

TEST(Pi2, ModificationDetected) {
  Pi2Fixture f;
  GroundTruth truth;
  truth.mark_traffic_faulty(1, SimTime::from_seconds(2));
  attacks::FlowMatch match;
  match.flow_ids = {1};
  f.line.net.router(1).set_forward_filter(std::make_shared<attacks::ModificationAttack>(
      match, 0.5, SimTime::from_seconds(2), 99));
  f.run();
  ASSERT_FALSE(f.engine->suspicions().empty());
  EXPECT_TRUE(check_accuracy(f.engine->suspicions(), truth, 2).accuracy_holds());
  EXPECT_TRUE(check_completeness_for(f.engine->suspicions(), 1));
}

TEST(Pi2, ReorderingDetected) {
  Pi2Fixture f;
  GroundTruth truth;
  truth.mark_traffic_faulty(3, SimTime::from_seconds(2));
  attacks::FlowMatch match;
  match.flow_ids = {1};
  // Hold back 30% of packets by 30 ms: reorders past ~6 packets at 200pps.
  f.line.net.router(3).set_forward_filter(std::make_shared<attacks::ReorderAttack>(
      match, 0.3, Duration::millis(30), SimTime::from_seconds(2), 99));
  f.run();
  ASSERT_FALSE(f.engine->suspicions().empty());
  EXPECT_TRUE(check_accuracy(f.engine->suspicions(), truth, 2).accuracy_holds());
  EXPECT_TRUE(check_completeness_for(f.engine->suspicions(), 3));
}

TEST(Pi2, FabricationDetected) {
  Pi2Fixture f;
  GroundTruth truth;
  truth.mark_traffic_faulty(2, SimTime::from_seconds(1));
  attacks::FabricationAttack::Config cfg;
  cfg.at = 2;
  cfg.forged_src = 0;
  cfg.dst = 4;
  cfg.flow_id = 1;
  cfg.rate_pps = 100;
  cfg.start = SimTime::from_seconds(1);
  cfg.stop = SimTime::from_seconds(3.5);
  attacks::FabricationAttack attack(f.line.net, cfg);
  f.run();
  ASSERT_FALSE(f.engine->suspicions().empty());
  EXPECT_TRUE(check_accuracy(f.engine->suspicions(), truth, 2).accuracy_holds());
  EXPECT_TRUE(check_completeness_for(f.engine->suspicions(), 2));
}

TEST(Pi2, MisroutingDetected) {
  // Misrouting is loss + fabrication (§2.2.1): the packet vanishes from
  // its nominal segment and appears where it does not belong.
  Pi2Fixture f;
  GroundTruth truth;
  truth.mark_traffic_faulty(2, SimTime::from_seconds(2));
  attacks::FlowMatch match;
  match.flow_ids = {1};
  // r2 diverts flow 1 back toward r1 instead of onward to r3.
  const std::size_t wrong = f.line.net.router(2).interface_to(1)->index();
  f.line.net.router(2).set_forward_filter(std::make_shared<attacks::MisrouteAttack>(
      match, 1.0, wrong, SimTime::from_seconds(2), 99));
  f.run();
  ASSERT_FALSE(f.engine->suspicions().empty());
  EXPECT_TRUE(check_accuracy(f.engine->suspicions(), truth, 2).accuracy_holds());
  EXPECT_TRUE(check_completeness_for(f.engine->suspicions(), 2));
}

TEST(Pi2, ProtocolFaultySilenceSuspected) {
  Pi2Fixture f;
  GroundTruth truth;
  truth.mark_protocol_faulty(2, SimTime::from_seconds(2));
  f.engine->set_report_mutator(2, [&f](SegmentSummary& s) {
    // Withhold everything from round 2 on.
    return s.round < 2;
  });
  f.run();
  ASSERT_FALSE(f.engine->suspicions().empty());
  EXPECT_TRUE(check_accuracy(f.engine->suspicions(), truth, 2).accuracy_holds());
  EXPECT_TRUE(check_completeness_for(f.engine->suspicions(), 2));
}

TEST(Pi2, LyingSummaryImplicatesLiarPair) {
  Pi2Fixture f;
  GroundTruth truth;
  truth.mark_protocol_faulty(1, SimTime::origin());
  f.engine->set_report_mutator(1, [](SegmentSummary& s) {
    // Claim one extra phantom packet everywhere.
    s.content.push_back(0xDEADBEEF);
    s.counters.add(1000);
    return true;
  });
  f.run();
  ASSERT_FALSE(f.engine->suspicions().empty());
  const auto report = check_accuracy(f.engine->suspicions(), truth, 2);
  EXPECT_TRUE(report.accuracy_holds());
  EXPECT_TRUE(check_completeness_for(f.engine->suspicions(), 1));
}

TEST(Pi2, ThresholdsAbsorbBenignLoss) {
  // With a congested link and a loss allowance, clean-but-lossy traffic
  // must not raise suspicions.
  sim::LinkConfig tight = testing::fast_link();
  tight.bandwidth_bps = 2e6;
  tight.queue_limit_bytes = 8000;
  LineNet line(5, tight);
  auto cfg = fast_config(4);
  cfg.thresholds.max_lost_fraction = 0.6;
  Pi2Engine engine(line.net, line.keys, *line.paths, line.terminals(), cfg);
  // 400 pps of 1000B = 3.2 Mbps through a 2 Mbps bottleneck: heavy loss.
  line.add_cbr(0, 4, 1, 400, SimTime::from_seconds(0.05), SimTime::from_seconds(3.9));
  engine.start();
  line.net.sim().run_until(SimTime::from_seconds(6));
  EXPECT_TRUE(engine.suspicions().empty());
}

}  // namespace
}  // namespace fatih::detection
