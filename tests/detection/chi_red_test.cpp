#include <gtest/gtest.h>

#include "attacks/attacks.hpp"
#include "detection/chi.hpp"
#include "routing/install.hpp"
#include "traffic/sources.hpp"
#include "traffic/tcp.hpp"

namespace fatih::detection {
namespace {

using util::Duration;
using util::NodeId;
using util::SimTime;

// Same shape as the drop-tail chi fixture, but the bottleneck queue runs
// RED (dissertation §6.5: non-deterministic queuing).
struct RedNet {
  sim::Network net;
  crypto::KeyRegistry keys{424242};
  std::shared_ptr<routing::RoutingTables> tables;
  std::unique_ptr<PathCache> paths;
  std::vector<std::unique_ptr<traffic::CbrSource>> cbr;
  std::vector<std::unique_ptr<traffic::OnOffSource>> onoff;
  NodeId s1, s2, r, rd;

  explicit RedNet(std::uint64_t seed = 11) : net(seed) {
    s1 = net.add_router("s1").id();
    s2 = net.add_router("s2").id();
    r = net.add_router("r").id();
    rd = net.add_router("rd").id();
    sim::LinkConfig edge;
    edge.bandwidth_bps = 1e8;
    edge.delay = Duration::millis(1);
    sim::LinkConfig core;
    core.bandwidth_bps = 1e7;
    core.delay = Duration::millis(2);
    core.queue = sim::QueueKind::kRed;
    core.red.weight = 0.002;
    core.red.min_threshold = 15000;
    core.red.max_threshold = 45000;
    core.red.max_probability = 0.1;
    core.red.gentle = true;
    core.red.byte_limit = 90000;
    core.red.mean_packet_size = 1000;
    core.red.drain_rate = 1e7 / 8;
    net.connect(s1, r, edge);
    net.connect(s2, r, edge);
    net.connect(r, rd, core);
    tables = std::make_shared<routing::RoutingTables>(routing::Topology::from_network(net));
    routing::install_static_routes(net, *tables);
    paths = std::make_unique<PathCache>(tables);
    for (NodeId n : {s1, s2, r, rd}) {
      net.router(n).set_processing_delay(Duration::micros(20), Duration::micros(50));
    }
  }

  void add_cbr(NodeId src, std::uint32_t flow, double pps, double start, double stop) {
    traffic::CbrSource::Config cfg;
    cfg.src = src;
    cfg.dst = rd;
    cfg.flow_id = flow;
    cfg.rate_pps = pps;
    cfg.start = SimTime::from_seconds(start);
    cfg.stop = SimTime::from_seconds(stop);
    cbr.push_back(std::make_unique<traffic::CbrSource>(net, cfg));
  }

  void add_onoff(NodeId src, std::uint32_t flow, double pps, double start, double stop) {
    traffic::OnOffSource::Config cfg;
    cfg.src = src;
    cfg.dst = rd;
    cfg.flow_id = flow;
    cfg.on_rate_pps = pps;
    cfg.mean_on = Duration::millis(200);
    cfg.mean_off = Duration::millis(200);
    cfg.start = SimTime::from_seconds(start);
    cfg.stop = SimTime::from_seconds(stop);
    onoff.push_back(std::make_unique<traffic::OnOffSource>(net, cfg));
  }
};

ChiConfig red_chi(std::int64_t rounds) {
  ChiConfig cfg;
  cfg.clock = RoundClock{SimTime::origin(), Duration::seconds(1)};
  cfg.settle = Duration::millis(400);
  cfg.grace = Duration::millis(200);
  cfg.learning_rounds = 3;
  cfg.rounds = rounds;
  return cfg;
}

TEST(ChiRed, ValidatorDetectsRedQueue) {
  RedNet n;
  QueueValidator v(n.net, n.keys, *n.paths, n.r, n.rd, red_chi(3));
  SUCCEED();  // construction must pick up the RED parameters
}

TEST(ChiRed, NoAttackNoAlarms) {
  // Fig. 6.11: RED early drops are legitimate; the validator's replayed
  // drop probabilities must explain them.
  RedNet n;
  n.add_cbr(n.s1, 1, 700, 0.05, 13.5);
  n.add_onoff(n.s2, 2, 900, 0.05, 13.5);
  QueueValidator v(n.net, n.keys, *n.paths, n.r, n.rd, red_chi(13));
  v.start();
  n.net.sim().run_until(SimTime::from_seconds(15));
  ASSERT_TRUE(v.learned());
  std::uint64_t drops = 0;
  for (const auto& rs : v.rounds()) drops += rs.drops;
  EXPECT_GT(drops, 10U);  // RED genuinely dropped traffic
  EXPECT_TRUE(v.suspicions().empty());
}

TEST(ChiRed, AvgQueueThresholdAttackDetected) {
  // Fig. 6.12/6.13: drop the victim whenever the RED average exceeds a
  // threshold — hiding inside RED's legitimate drop regime.
  RedNet n;
  n.add_cbr(n.s1, 1, 700, 0.05, 15.5);
  n.add_onoff(n.s2, 2, 900, 0.05, 15.5);
  QueueValidator v(n.net, n.keys, *n.paths, n.r, n.rd, red_chi(15));
  v.start();
  attacks::FlowMatch match;
  match.flow_ids = {1};
  n.net.router(n.r).set_forward_filter(std::make_shared<attacks::RedAvgThresholdDropAttack>(
      match, 20000.0, 1.0, SimTime::from_seconds(6), 3));
  n.net.sim().run_until(SimTime::from_seconds(17));
  ASSERT_FALSE(v.suspicions().empty());
  for (const auto& s : v.suspicions()) {
    EXPECT_GE(s.interval.begin, SimTime::from_seconds(5));
  }
}

TEST(ChiRed, PartialAvgQueueAttackDetected) {
  // Fig. 6.14: drop only 10% of the victim above the threshold.
  RedNet n;
  n.add_cbr(n.s1, 1, 700, 0.05, 19.5);
  n.add_onoff(n.s2, 2, 900, 0.05, 19.5);
  QueueValidator v(n.net, n.keys, *n.paths, n.r, n.rd, red_chi(19));
  v.start();
  attacks::FlowMatch match;
  match.flow_ids = {1};
  n.net.router(n.r).set_forward_filter(std::make_shared<attacks::RedAvgThresholdDropAttack>(
      match, 20000.0, 0.10, SimTime::from_seconds(6), 3));
  n.net.sim().run_until(SimTime::from_seconds(21));
  EXPECT_FALSE(v.suspicions().empty());
}

TEST(ChiRed, SynDropUnderRedDetected) {
  // Fig. 6.16: SYN-targeting while RED is active. With the average below
  // min_th the legitimate drop probability is zero, so the single-packet
  // test fires.
  RedNet n;
  n.add_cbr(n.s1, 1, 200, 0.05, 11.5);  // light load: avg < min_th
  QueueValidator v(n.net, n.keys, *n.paths, n.r, n.rd, red_chi(11));
  v.start();
  attacks::FlowMatch match;
  match.syn_only = true;
  n.net.router(n.r).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 1.0, SimTime::from_seconds(5), 3));
  traffic::TcpFlow tcp(n.net, n.s2, n.rd, 50, {});
  tcp.start(SimTime::from_seconds(6.2));
  n.net.sim().run_until(SimTime::from_seconds(13));
  EXPECT_FALSE(tcp.connected());
  bool single = false;
  for (const auto& s : v.suspicions()) {
    if (s.cause == "red-single-loss-test") single = true;
  }
  EXPECT_TRUE(single);
}

TEST(ChiRed, ExpectedDropAccountingPopulated) {
  RedNet n;
  n.add_cbr(n.s1, 1, 700, 0.05, 9.5);
  n.add_onoff(n.s2, 2, 900, 0.05, 9.5);
  QueueValidator v(n.net, n.keys, *n.paths, n.r, n.rd, red_chi(9));
  v.start();
  n.net.sim().run_until(SimTime::from_seconds(11));
  double total_expected = 0.0;
  for (const auto& rs : v.rounds()) total_expected += rs.red_expected_drops;
  EXPECT_GT(total_expected, 1.0);
}

}  // namespace
}  // namespace fatih::detection
