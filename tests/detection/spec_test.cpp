#include "detection/spec.hpp"

#include <gtest/gtest.h>

namespace fatih::detection {
namespace {

using util::SimTime;
using util::TimeInterval;

Suspicion make_suspicion(util::NodeId reporter, std::initializer_list<util::NodeId> seg,
                         double t0 = 0.0, double t1 = 10.0) {
  Suspicion s;
  s.reporter = reporter;
  s.segment = routing::PathSegment(seg);
  s.interval = TimeInterval{SimTime::from_seconds(t0), SimTime::from_seconds(t1)};
  return s;
}

TEST(GroundTruth, MarkingAndQuery) {
  GroundTruth truth;
  truth.mark_traffic_faulty(3, SimTime::from_seconds(5));
  EXPECT_TRUE(truth.is_faulty_ever(3));
  EXPECT_TRUE(truth.is_traffic_faulty_ever(3));
  EXPECT_FALSE(truth.is_faulty_ever(4));
  // Faulty during intervals overlapping [5, inf).
  EXPECT_TRUE(truth.is_faulty(3, {SimTime::from_seconds(6), SimTime::from_seconds(7)}));
  EXPECT_FALSE(truth.is_faulty(3, {SimTime::from_seconds(1), SimTime::from_seconds(4)}));
}

TEST(GroundTruth, ProtocolFaultCountsAsFaulty) {
  GroundTruth truth;
  truth.mark_protocol_faulty(2, SimTime::origin());
  EXPECT_TRUE(truth.is_faulty_ever(2));
  EXPECT_FALSE(truth.is_traffic_faulty_ever(2));
}

TEST(GroundTruth, FaultyRosterSorted) {
  GroundTruth truth;
  truth.mark_traffic_faulty(9, SimTime::origin());
  truth.mark_protocol_faulty(2, SimTime::origin());
  EXPECT_EQ(truth.faulty_routers(), (std::vector<util::NodeId>{2, 9}));
}

TEST(CheckAccuracy, AccurateSuspicionCounted) {
  GroundTruth truth;
  truth.mark_traffic_faulty(2, SimTime::origin());
  const auto report = check_accuracy({make_suspicion(0, {1, 2})}, truth, 2);
  EXPECT_EQ(report.suspicions, 1U);
  EXPECT_EQ(report.accurate, 1U);
  EXPECT_TRUE(report.accuracy_holds());
}

TEST(CheckAccuracy, ViolationWhenAllCorrect) {
  GroundTruth truth;
  truth.mark_traffic_faulty(9, SimTime::origin());
  const auto report = check_accuracy({make_suspicion(0, {1, 2})}, truth, 2);
  EXPECT_EQ(report.violations, 1U);
  EXPECT_FALSE(report.accuracy_holds());
}

TEST(CheckAccuracy, OversizedSegmentFlagged) {
  GroundTruth truth;
  truth.mark_traffic_faulty(2, SimTime::origin());
  const auto report = check_accuracy({make_suspicion(0, {1, 2, 3})}, truth, 2);
  EXPECT_EQ(report.oversized, 1U);
  EXPECT_FALSE(report.accuracy_holds());
}

TEST(CheckAccuracy, FaultyReportersIgnored) {
  // §4.2.2: faulty routers may suspect correct routers; only correct
  // reporters are held to the accuracy property.
  GroundTruth truth;
  truth.mark_traffic_faulty(5, SimTime::origin());
  const auto report = check_accuracy({make_suspicion(5, {1, 2})}, truth, 2);
  EXPECT_EQ(report.suspicions, 0U);
  EXPECT_TRUE(report.accuracy_holds());
}

TEST(CheckAccuracy, TimingMatters) {
  GroundTruth truth;
  truth.mark_traffic_faulty(2, SimTime::from_seconds(100));
  // Suspicion interval ends before the fault began: inaccurate.
  const auto report = check_accuracy({make_suspicion(0, {1, 2}, 0, 10)}, truth, 2);
  EXPECT_EQ(report.violations, 1U);
}

TEST(CheckCompleteness, FindsContainingSegment) {
  const std::vector<Suspicion> suspicions{make_suspicion(0, {1, 2}),
                                          make_suspicion(3, {4, 5})};
  EXPECT_TRUE(check_completeness_for(suspicions, 2));
  EXPECT_TRUE(check_completeness_for(suspicions, 4));
  EXPECT_FALSE(check_completeness_for(suspicions, 7));
  EXPECT_FALSE(check_completeness_for({}, 2));
}

TEST(RoundClock, RoundArithmetic) {
  RoundClock clock{SimTime::origin(), util::Duration::seconds(5)};
  EXPECT_EQ(clock.round_of(SimTime::from_seconds(0.1)), 0);
  EXPECT_EQ(clock.round_of(SimTime::from_seconds(4.999)), 0);
  EXPECT_EQ(clock.round_of(SimTime::from_seconds(5.0)), 1);
  EXPECT_EQ(clock.round_of(SimTime::from_seconds(17.0)), 3);
  const auto tau2 = clock.interval_of(2);
  EXPECT_EQ(tau2.begin, SimTime::from_seconds(10));
  EXPECT_EQ(tau2.end, SimTime::from_seconds(15));
}

TEST(Suspicion, RendersReadably) {
  const auto s = make_suspicion(0, {1, 2});
  const auto text = s.to_string();
  EXPECT_NE(text.find("r0"), std::string::npos);
  EXPECT_NE(text.find("<r1,r2>"), std::string::npos);
}

}  // namespace
}  // namespace fatih::detection
