// Container-order determinism regression for the structures migrated off
// unordered_* (fatih-lint R3): SegmentIndex (std::set builds its sorted
// segment universe), Router route tables (util::FlatMap), and PathCache
// (std::map memo with reference stability). Each test runs the same
// computation twice — or with permuted inputs — and requires identical
// observable output, the property hash-ordered iteration silently breaks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "detection/path_cache.hpp"
#include "routing/segments.hpp"
#include "routing/spf.hpp"
#include "routing/topologies.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"

namespace fatih {
namespace {

using routing::Path;
using routing::PathSegment;
using routing::SegmentIndex;
using util::NodeId;

std::vector<Path> abilene_paths() {
  const routing::Topology topo = routing::abilene_topology();
  const routing::RoutingTables tables(topo);
  std::vector<NodeId> terminals;
  for (NodeId n = 0; n < 11; ++n) terminals.push_back(n);
  return tables.all_paths(terminals);
}

TEST(OrderDeterminism, SegmentIndexIsInputOrderInvariant) {
  const std::vector<Path> paths = abilene_paths();
  std::vector<Path> reversed(paths.rbegin(), paths.rend());

  const SegmentIndex a(paths, 1);
  const SegmentIndex b(reversed, 1);

  EXPECT_EQ(a.all_pi2_segments(), b.all_pi2_segments());
  EXPECT_EQ(a.all_pik2_segments(), b.all_pik2_segments());
  for (NodeId r = 0; r < 11; ++r) {
    EXPECT_EQ(a.pr_pi2(r), b.pr_pi2(r)) << "pr_pi2 diverges at r" << r;
    EXPECT_EQ(a.pr_pik2(r), b.pr_pik2(r)) << "pr_pik2 diverges at r" << r;
  }
}

TEST(OrderDeterminism, SegmentIndexSegmentsAreSortedUnique) {
  const SegmentIndex idx(abilene_paths(), 1);
  const auto sorted_unique = [](const std::vector<PathSegment>& v) {
    return std::is_sorted(v.begin(), v.end()) &&
           std::adjacent_find(v.begin(), v.end()) == v.end();
  };
  EXPECT_TRUE(sorted_unique(idx.all_pi2_segments()));
  EXPECT_TRUE(sorted_unique(idx.all_pik2_segments()));
}

TEST(OrderDeterminism, RouterRoutesAreInsertionOrderInvariant) {
  sim::Network net{1};
  sim::Router& fwd = net.add_router("fwd");
  sim::Router& rev = net.add_router("rev");
  for (int i = 0; i < 3; ++i) {  // interfaces 0..2 on both routers
    sim::Router& peer = net.add_router("peer");
    net.connect(fwd.id(), peer.id(), {});
    net.connect(rev.id(), peer.id(), {});
  }

  // Same table, installed in opposite orders (FlatMap keeps both sorted).
  for (NodeId dst = 0; dst < 20; ++dst) fwd.set_route(dst, dst % 3);
  for (NodeId dst = 20; dst-- > 0;) rev.set_route(dst, dst % 3);
  for (NodeId prev = 0; prev < 5; ++prev) {
    fwd.set_policy_route(prev, prev + 1, 2);
    rev.set_policy_route(4 - prev, 5 - prev, 2);
  }

  for (NodeId prev = 0; prev < 6; ++prev) {
    for (NodeId dst = 0; dst < 21; ++dst) {
      EXPECT_EQ(fwd.lookup(prev, dst), rev.lookup(prev, dst))
          << "lookup(" << prev << ", " << dst << ") diverges";
    }
  }
}

TEST(OrderDeterminism, PathCacheIsQueryOrderInvariant) {
  auto tables =
      std::make_shared<const routing::RoutingTables>(routing::abilene_topology());
  detection::PathCache fwd(tables);
  detection::PathCache rev(tables);

  // Warm the two memos in opposite orders; answers must match pairwise.
  for (NodeId s = 0; s < 11; ++s)
    for (NodeId d = 0; d < 11; ++d) (void)fwd.path(s, d);
  for (NodeId s = 11; s-- > 0;)
    for (NodeId d = 11; d-- > 0;) (void)rev.path(s, d);

  for (NodeId s = 0; s < 11; ++s)
    for (NodeId d = 0; d < 11; ++d) EXPECT_EQ(fwd.path(s, d), rev.path(s, d));
}

TEST(OrderDeterminism, PathCacheReferencesSurviveLaterInserts) {
  auto tables =
      std::make_shared<const routing::RoutingTables>(routing::abilene_topology());
  detection::PathCache cache(tables);

  // path() documents reference stability for the cache's lifetime: the
  // memo must not rehash/relocate under later lookups (why it is a
  // std::map, not a FlatMap).
  const Path& early = cache.path(routing::kSeattle, routing::kNewYork);
  const Path snapshot = early;
  const Path* address = &early;

  for (NodeId s = 0; s < 11; ++s)
    for (NodeId d = 0; d < 11; ++d) (void)cache.path(s, d);

  EXPECT_EQ(&cache.path(routing::kSeattle, routing::kNewYork), address);
  EXPECT_EQ(early, snapshot);
}

}  // namespace
}  // namespace fatih
