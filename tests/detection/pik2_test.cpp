#include "detection/pik2.hpp"

#include <gtest/gtest.h>

#include "attacks/attacks.hpp"
#include "detection/spec.hpp"
#include "tests/detection/test_net.hpp"

namespace fatih::detection {
namespace {

using testing::LineNet;
using util::Duration;
using util::SimTime;

Pik2Config fast_config(std::int64_t rounds = 4, std::size_t k = 1) {
  Pik2Config cfg;
  cfg.clock = RoundClock{SimTime::origin(), Duration::seconds(1)};
  cfg.k = k;
  cfg.collect_settle = Duration::millis(150);
  cfg.exchange_timeout = Duration::millis(300);
  cfg.policy = TvPolicy::kContentOrder;
  cfg.rounds = rounds;
  return cfg;
}

struct Pik2Fixture {
  LineNet line{6};
  std::unique_ptr<Pik2Engine> engine;

  explicit Pik2Fixture(Pik2Config cfg = fast_config()) {
    engine = std::make_unique<Pik2Engine>(line.net, line.keys, *line.paths, line.terminals(),
                                          cfg);
    line.add_cbr(0, 5, 1, 200, SimTime::from_seconds(0.05), SimTime::from_seconds(3.9));
    line.add_cbr(5, 0, 2, 150, SimTime::from_seconds(0.05), SimTime::from_seconds(3.9));
    engine->start();
  }

  void run(double seconds = 6.0) { line.net.sim().run_until(SimTime::from_seconds(seconds)); }
};

TEST(Pik2, NoAttackNoSuspicions) {
  Pik2Fixture f;
  f.run();
  EXPECT_TRUE(f.engine->suspicions().empty());
}

TEST(Pik2, OnlyEndRoutersMonitor) {
  Pik2Fixture f;
  // k=1: every segment has length exactly 3. Router 2 on a 6-line is an
  // end of <0,1,2>, <2,3,4> and their reverses.
  for (const auto& seg : f.engine->monitored_by(2)) {
    EXPECT_TRUE(seg.is_end(2));
    EXPECT_EQ(seg.length(), 3U);
  }
  EXPECT_EQ(f.engine->monitored_by(2).size(), 4U);
}

TEST(Pik2, DropperSuspectedWithPrecisionKPlus2) {
  Pik2Fixture f;
  GroundTruth truth;
  truth.mark_traffic_faulty(3, SimTime::from_seconds(2));
  attacks::FlowMatch match;
  match.flow_ids = {1};
  f.line.net.router(3).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 1.0, SimTime::from_seconds(2), 99));
  f.run();
  const auto& suspicions = f.engine->suspicions();
  ASSERT_FALSE(suspicions.empty());
  EXPECT_TRUE(check_accuracy(suspicions, truth, 3).accuracy_holds());
  EXPECT_TRUE(check_completeness_for(suspicions, 3));
}

TEST(Pik2, SubtleDropperStillCaught) {
  // 10% drops of one flow only.
  Pik2Fixture f;
  GroundTruth truth;
  truth.mark_traffic_faulty(2, SimTime::from_seconds(1));
  attacks::FlowMatch match;
  match.flow_ids = {1};
  f.line.net.router(2).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 0.1, SimTime::from_seconds(1), 99));
  f.run();
  ASSERT_FALSE(f.engine->suspicions().empty());
  EXPECT_TRUE(check_accuracy(f.engine->suspicions(), truth, 3).accuracy_holds());
  EXPECT_TRUE(check_completeness_for(f.engine->suspicions(), 2));
}

TEST(Pik2, ModificationDetected) {
  Pik2Fixture f;
  GroundTruth truth;
  truth.mark_traffic_faulty(2, SimTime::from_seconds(2));
  attacks::FlowMatch match;
  f.line.net.router(2).set_forward_filter(std::make_shared<attacks::ModificationAttack>(
      match, 0.3, SimTime::from_seconds(2), 99));
  f.run();
  ASSERT_FALSE(f.engine->suspicions().empty());
  EXPECT_TRUE(check_accuracy(f.engine->suspicions(), truth, 3).accuracy_holds());
  EXPECT_TRUE(check_completeness_for(f.engine->suspicions(), 2));
}

TEST(Pik2, ControlDroppingInteriorCausesTimeoutSuspicion) {
  // A protocol-faulty interior router that discards the summary exchange
  // is caught by the timeout rule (§5.2: "if the exchange operation
  // fails within a pre-specified timeout interval mu").
  Pik2Fixture f;
  GroundTruth truth;
  // The filter activates at t=2 s, during round 1's exchange phase: the
  // first sabotaged suspicion is attributed to round 1's interval.
  truth.mark_protocol_faulty(2, SimTime::from_seconds(1));
  struct ControlDrop final : sim::ForwardFilter {
    util::SimTime from;
    explicit ControlDrop(util::SimTime t) : from(t) {}
    sim::ForwardDecision on_forward(const sim::Packet& p, util::NodeId, const sim::Interface&,
                                    sim::Router& router) override {
      if (router.sim().now() >= from && p.is_control()) return sim::ForwardDecision::drop();
      return sim::ForwardDecision::forward();
    }
  };
  f.line.net.router(2).set_forward_filter(
      std::make_shared<ControlDrop>(SimTime::from_seconds(2)));
  f.run();
  bool timeout_suspicion = false;
  for (const auto& s : f.engine->suspicions()) {
    if (s.cause == "exchange-timeout" && s.segment.contains(2)) timeout_suspicion = true;
  }
  EXPECT_TRUE(timeout_suspicion);
  EXPECT_TRUE(check_accuracy(f.engine->suspicions(), truth, 3).accuracy_holds());
}

TEST(Pik2, WithheldSummarySuspected) {
  Pik2Fixture f;
  GroundTruth truth;
  truth.mark_protocol_faulty(0, SimTime::from_seconds(2));
  f.engine->set_report_mutator(0, [](SegmentSummary& s) { return s.round < 2; });
  f.run();
  ASSERT_FALSE(f.engine->suspicions().empty());
  // The peer ends of r0's segments time out; suspected segments contain 0.
  bool found = false;
  for (const auto& s : f.engine->suspicions()) {
    if (s.segment.contains(0)) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(check_accuracy(f.engine->suspicions(), truth, 3).accuracy_holds());
}

TEST(Pik2, SamplingStillDetectsSustainedDropping) {
  auto cfg = fast_config(4);
  cfg.sample_keep_per_256 = 64;  // monitor ~25% of packets (§5.2.1)
  Pik2Fixture f(cfg);
  GroundTruth truth;
  truth.mark_traffic_faulty(3, SimTime::from_seconds(1));
  attacks::FlowMatch match;
  match.flow_ids = {1};
  f.line.net.router(3).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 0.5, SimTime::from_seconds(1), 99));
  f.run();
  ASSERT_FALSE(f.engine->suspicions().empty());
  EXPECT_TRUE(check_accuracy(f.engine->suspicions(), truth, 3).accuracy_holds());
  EXPECT_TRUE(check_completeness_for(f.engine->suspicions(), 3));
}

TEST(Pik2, LargerKGrowsPrecisionBound) {
  auto cfg = fast_config(4, /*k=*/2);
  Pik2Fixture f(cfg);
  GroundTruth truth;
  truth.mark_traffic_faulty(2, SimTime::from_seconds(2));
  attacks::FlowMatch match;
  match.flow_ids = {1};
  f.line.net.router(2).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 1.0, SimTime::from_seconds(2), 99));
  f.run();
  ASSERT_FALSE(f.engine->suspicions().empty());
  // Precision k+2 = 4.
  EXPECT_TRUE(check_accuracy(f.engine->suspicions(), truth, 4).accuracy_holds());
  EXPECT_TRUE(check_completeness_for(f.engine->suspicions(), 2));
}

TEST(Pik2, ReconciliationCompressionDetectsEquivalently) {
  // Appendix-A compressed exchange: same detections, far fewer bytes.
  auto cfg = fast_config(4);
  cfg.policy = TvPolicy::kContent;
  cfg.compression = SummaryCompression::kReconcile;
  cfg.reconcile_bound = 48;
  Pik2Fixture f(cfg);
  GroundTruth truth;
  truth.mark_traffic_faulty(3, SimTime::from_seconds(2));
  attacks::FlowMatch match;
  match.flow_ids = {1};
  f.line.net.router(3).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 0.1, SimTime::from_seconds(2), 99));
  f.run();
  ASSERT_FALSE(f.engine->suspicions().empty());
  EXPECT_TRUE(check_accuracy(f.engine->suspicions(), truth, 3).accuracy_holds());
  EXPECT_TRUE(check_completeness_for(f.engine->suspicions(), 3));
}

TEST(Pik2, ReconciliationCleanRunStaysQuiet) {
  auto cfg = fast_config(4);
  cfg.policy = TvPolicy::kContent;
  cfg.compression = SummaryCompression::kReconcile;
  cfg.reconcile_bound = 48;
  Pik2Fixture f(cfg);
  f.run();
  EXPECT_TRUE(f.engine->suspicions().empty());
}

TEST(Pik2, ReconciliationSlashesExchangeBandwidth) {
  auto full_cfg = fast_config(4);
  full_cfg.policy = TvPolicy::kContent;
  Pik2Fixture full(full_cfg);
  full.run();
  auto recon_cfg = fast_config(4);
  recon_cfg.policy = TvPolicy::kContent;
  recon_cfg.compression = SummaryCompression::kReconcile;
  recon_cfg.reconcile_bound = 16;
  Pik2Fixture recon(recon_cfg);
  recon.run();
  ASSERT_GT(full.engine->exchange_bytes(), 0U);
  ASSERT_GT(recon.engine->exchange_bytes(), 0U);
  // 200 pps of 8-byte fingerprints per segment vs ~20 field elements.
  EXPECT_LT(recon.engine->exchange_bytes() * 4, full.engine->exchange_bytes());
}

TEST(Pik2, BloomCompressionDetectsSustainedDropping) {
  auto cfg = fast_config(4);
  cfg.policy = TvPolicy::kContent;
  cfg.compression = SummaryCompression::kBloom;
  cfg.thresholds.max_lost_packets = 2;
  Pik2Fixture f(cfg);
  GroundTruth truth;
  truth.mark_traffic_faulty(3, SimTime::from_seconds(1));
  attacks::FlowMatch match;
  match.flow_ids = {1};
  f.line.net.router(3).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 0.3, SimTime::from_seconds(1), 99));
  f.run();
  ASSERT_FALSE(f.engine->suspicions().empty());
  EXPECT_TRUE(check_accuracy(f.engine->suspicions(), truth, 3).accuracy_holds());
  EXPECT_TRUE(check_completeness_for(f.engine->suspicions(), 3));
}

TEST(Pik2, BloomCompressionCleanRunStaysQuiet) {
  auto cfg = fast_config(4);
  cfg.policy = TvPolicy::kContent;
  cfg.compression = SummaryCompression::kBloom;
  cfg.thresholds.max_lost_packets = 2;
  Pik2Fixture f(cfg);
  f.run();
  EXPECT_TRUE(f.engine->suspicions().empty());
}

TEST(Pik2, OversizedDifferenceStillSuspected) {
  // A drop rate that blows past the reconciliation bound must not escape:
  // an unreconcilable difference is itself a detection.
  auto cfg = fast_config(4);
  cfg.policy = TvPolicy::kContent;
  cfg.compression = SummaryCompression::kReconcile;
  cfg.reconcile_bound = 8;  // tiny bound, 100% drop blows through it
  Pik2Fixture f(cfg);
  GroundTruth truth;
  truth.mark_traffic_faulty(2, SimTime::from_seconds(1));
  attacks::FlowMatch match;
  match.flow_ids = {1};
  f.line.net.router(2).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 1.0, SimTime::from_seconds(1), 99));
  f.run();
  ASSERT_FALSE(f.engine->suspicions().empty());
  EXPECT_TRUE(check_accuracy(f.engine->suspicions(), truth, 3).accuracy_holds());
  EXPECT_TRUE(check_completeness_for(f.engine->suspicions(), 2));
}

TEST(Pik2, AdjacentColludersRequireK2) {
  // §5.2's motivating scenario: with AdjacentFault(2), two ADJACENT faulty
  // routers must both be covered. A dropper whose downstream neighbor is
  // protocol-faulty (suppresses its own summaries to shield short
  // segments) is still caught because k=2 also monitors the 3- and
  // 4-segments anchored at correct routers.
  auto cfg = fast_config(4, /*k=*/2);
  Pik2Fixture f(cfg);
  GroundTruth truth;
  truth.mark_traffic_faulty(2, SimTime::from_seconds(1));
  truth.mark_protocol_faulty(3, SimTime::origin());  // suppresses from round 0
  attacks::FlowMatch match;
  match.flow_ids = {1};
  f.line.net.router(2).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 1.0, SimTime::from_seconds(1), 99));
  // r3 colludes: suppresses every summary it would send, so segments ending
  // at r3 yield only exchange-timeouts, never content evidence.
  f.engine->set_report_mutator(3, [](SegmentSummary&) { return false; });
  f.run();
  ASSERT_FALSE(f.engine->suspicions().empty());
  EXPECT_TRUE(check_accuracy(f.engine->suspicions(), truth, 4).accuracy_holds());
  EXPECT_TRUE(check_completeness_for(f.engine->suspicions(), 2));
  // Some CORRECT router must have raised evidence (not just the colluders'
  // neighbors timing out on r3): completeness from correct observers.
  bool correct_reporter = false;
  for (const auto& s : f.engine->suspicions()) {
    if (s.reporter != 2 && s.reporter != 3 && s.segment.contains(2)) correct_reporter = true;
  }
  EXPECT_TRUE(correct_reporter);
}

TEST(Pik2, BenignLossWithinThresholdTolerated) {
  sim::LinkConfig tight = testing::fast_link();
  tight.bandwidth_bps = 2e6;
  tight.queue_limit_bytes = 8000;
  LineNet line(5, tight);
  auto cfg = fast_config(4);
  cfg.thresholds.max_lost_fraction = 0.6;
  Pik2Engine engine(line.net, line.keys, *line.paths, line.terminals(), cfg);
  line.add_cbr(0, 4, 1, 400, SimTime::from_seconds(0.05), SimTime::from_seconds(3.9));
  engine.start();
  line.net.sim().run_until(SimTime::from_seconds(6));
  EXPECT_TRUE(engine.suspicions().empty());
}

}  // namespace
}  // namespace fatih::detection
