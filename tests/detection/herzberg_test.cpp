#include "detection/herzberg.hpp"

#include <gtest/gtest.h>

#include "attacks/attacks.hpp"
#include "detection/spec.hpp"
#include "tests/detection/test_net.hpp"

namespace fatih::detection {
namespace {

using testing::LineNet;
using util::Duration;
using util::SimTime;

HerzbergConfig config_of(HerzbergConfig::Mode mode, std::size_t spacing = 2) {
  HerzbergConfig cfg;
  cfg.mode = mode;
  cfg.per_hop_bound = Duration::millis(5);
  cfg.checkpoint_spacing = spacing;
  cfg.flow_id = 1;
  return cfg;
}

struct HerzbergFixture {
  LineNet line;
  routing::Path path;
  std::unique_ptr<HerzbergDetector> detector;

  explicit HerzbergFixture(HerzbergConfig cfg, std::size_t n = 6) : line(n) {
    for (util::NodeId i = 0; i < n; ++i) path.push_back(i);
    detector = std::make_unique<HerzbergDetector>(line.net, line.keys, path, cfg);
    line.add_cbr(0, static_cast<util::NodeId>(n - 1), 1, 100, SimTime::from_seconds(0.1),
                 SimTime::from_seconds(2.9));
  }

  void attack_at(util::NodeId r, double t) {
    attacks::FlowMatch match;
    match.flow_ids = {1};
    line.net.router(r).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
        match, 1.0, SimTime::from_seconds(t), 7));
  }

  void run(double seconds = 4.0) { line.net.sim().run_until(SimTime::from_seconds(seconds)); }
};

class HerzbergModes : public ::testing::TestWithParam<HerzbergConfig::Mode> {};

TEST_P(HerzbergModes, CleanPathNoSuspicions) {
  HerzbergFixture f(config_of(GetParam()));
  f.run();
  EXPECT_GT(f.detector->data_packets_seen(), 200U);
  EXPECT_TRUE(f.detector->suspicions().empty());
}

TEST_P(HerzbergModes, DropperDetectedAccurately) {
  HerzbergFixture f(config_of(GetParam()));
  GroundTruth truth;
  truth.mark_traffic_faulty(3, SimTime::from_seconds(1));
  f.attack_at(3, 1.0);
  f.run();
  ASSERT_FALSE(f.detector->suspicions().empty());
  const std::size_t precision =
      GetParam() == HerzbergConfig::Mode::kCheckpoint ? 3 : 2;
  EXPECT_TRUE(check_accuracy(f.detector->suspicions(), truth, precision).accuracy_holds());
  EXPECT_TRUE(check_completeness_for(f.detector->suspicions(), 3));
}

INSTANTIATE_TEST_SUITE_P(AllModes, HerzbergModes,
                         ::testing::Values(HerzbergConfig::Mode::kEndToEnd,
                                           HerzbergConfig::Mode::kHopByHop,
                                           HerzbergConfig::Mode::kCheckpoint));

TEST(Herzberg, MessageComplexityOrdering) {
  // §3.3's trade-off: e2e sends one ack per packet, checkpoints L/c,
  // hop-by-hop L-1 (plus the sink).
  HerzbergFixture e2e(config_of(HerzbergConfig::Mode::kEndToEnd));
  HerzbergFixture hop(config_of(HerzbergConfig::Mode::kHopByHop));
  HerzbergFixture cp(config_of(HerzbergConfig::Mode::kCheckpoint));
  e2e.run();
  hop.run();
  cp.run();
  const auto per_packet = [](const HerzbergFixture& f) {
    return static_cast<double>(f.detector->ack_messages_sent()) /
           static_cast<double>(f.detector->data_packets_seen());
  };
  EXPECT_NEAR(per_packet(e2e), 1.0, 0.1);
  EXPECT_NEAR(per_packet(hop), 5.0, 0.2);  // positions 1..5 each ack
  EXPECT_GT(per_packet(cp), per_packet(e2e));
  EXPECT_LT(per_packet(cp), per_packet(hop));
}

TEST(Herzberg, DetectionLatencyOrdering) {
  // Hop-by-hop and checkpoint localize faster than end-to-end, whose
  // timeout spans the whole remaining path.
  auto first_detection = [](HerzbergConfig::Mode mode) {
    HerzbergFixture f(config_of(mode));
    f.attack_at(3, 1.0);
    f.run();
    return f.detector->first_detection_time();
  };
  const auto t_cp = first_detection(HerzbergConfig::Mode::kCheckpoint);
  const auto t_e2e = first_detection(HerzbergConfig::Mode::kEndToEnd);
  ASSERT_LT(t_e2e, SimTime::infinity());
  ASSERT_LT(t_cp, SimTime::infinity());
  // The checkpoint just upstream of the fault waits ~2*spacing hops; the
  // end-to-end waiter just upstream waits ~2*(remaining path) hops.
  EXPECT_LE(t_cp, t_e2e);
}

TEST(Herzberg, EndToEndBlamesAdjacentPair) {
  HerzbergFixture f(config_of(HerzbergConfig::Mode::kEndToEnd));
  f.attack_at(4, 1.0);
  f.run();
  ASSERT_FALSE(f.detector->suspicions().empty());
  // The nearest upstream correct router (position 3) times out first and
  // announces <r3, r4>.
  const auto& s = f.detector->suspicions().front();
  EXPECT_EQ(s.segment, (routing::PathSegment{3, 4}));
}

TEST(Herzberg, CheckpointPrecisionIsSegmentWide) {
  HerzbergFixture f(config_of(HerzbergConfig::Mode::kCheckpoint, 2));
  f.attack_at(3, 1.0);  // interior of the checkpoint segment <2,3,4>
  f.run();
  ASSERT_FALSE(f.detector->suspicions().empty());
  const auto& s = f.detector->suspicions().front();
  EXPECT_EQ(s.segment, (routing::PathSegment{2, 3, 4}));
}

TEST(Herzberg, SingleAckPerPacketEvenUnderLoss) {
  // End-to-end ack accounting stays one-per-delivered-packet.
  HerzbergFixture f(config_of(HerzbergConfig::Mode::kEndToEnd));
  attacks::FlowMatch match;
  match.flow_ids = {1};
  f.line.net.router(2).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 0.5, SimTime::from_seconds(1), 7));
  f.run();
  EXPECT_LE(f.detector->ack_messages_sent(), f.detector->data_packets_seen());
}

}  // namespace
}  // namespace fatih::detection
