// Topology-churn resilience: the acceptance scenario for the churn-aware
// detection epochs. A link flap mid-experiment must never produce a false
// accusation — the straddling rounds are invalidated instead — and with a
// traffic-faulty router present, detection must resume once the paths
// re-stabilize.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "attacks/attacks.hpp"
#include "detection/chi.hpp"
#include "detection/path_cache.hpp"
#include "detection/pi2.hpp"
#include "detection/pik2.hpp"
#include "detection/spec.hpp"
#include "tests/detection/churn_net.hpp"

namespace fatih::detection {
namespace {

using util::Duration;
using util::NodeId;
using util::SimTime;

// ----------------------------------------------------------------------
// PathCache epoch unit tests (no simulation: two hand-built table sets).

std::shared_ptr<routing::RoutingTables> diamond_tables(bool with_primary) {
  sim::Network net(1);
  for (int i = 0; i < 4; ++i) net.add_router("r" + std::to_string(i));
  auto link = [&](NodeId a, NodeId b, std::uint32_t metric) {
    sim::LinkConfig cfg;
    cfg.bandwidth_bps = 1e8;
    cfg.delay = Duration::millis(1);
    cfg.metric = metric;
    net.connect(a, b, cfg);
  };
  link(0, 1, 1);
  if (with_primary) link(1, 2, 1);
  link(0, 3, 5);
  link(3, 2, 5);
  return std::make_shared<routing::RoutingTables>(routing::Topology::from_network(net));
}

TEST(PathCacheEpochs, AnswersAsOfTime) {
  PathCache cache(diamond_tables(true));
  // The r1—r2 cut becomes authoritative at 10 s; the underlying failure
  // may date back to 8 s (dead-interval blackhole).
  cache.push_epoch(diamond_tables(false), SimTime::from_seconds(10), SimTime::from_seconds(8));
  ASSERT_EQ(cache.epoch_count(), 2U);

  const routing::Path primary{0, 1, 2};
  const routing::Path detour{0, 3, 2};
  EXPECT_EQ(cache.path_at(0, 2, SimTime::from_seconds(5)), primary);
  EXPECT_EQ(cache.path_at(0, 2, SimTime::from_seconds(12)), detour);
  EXPECT_EQ(cache.path(0, 2), detour);  // un-suffixed = latest epoch
  EXPECT_EQ(cache.next_hop_after_at(0, 2, 0, SimTime::from_seconds(5)), 1U);
  EXPECT_EQ(cache.next_hop_after_at(0, 2, 0, SimTime::from_seconds(12)), 3U);
}

TEST(PathCacheEpochs, StabilityPredicates) {
  PathCache cache(diamond_tables(true));
  cache.push_epoch(diamond_tables(false), SimTime::from_seconds(10), SimTime::from_seconds(8));

  // Before / after the transition window [8, 10) the pair is stable.
  EXPECT_TRUE(cache.path_stable(0, 2, SimTime::from_seconds(2), SimTime::from_seconds(7)));
  EXPECT_TRUE(cache.path_stable(0, 2, SimTime::from_seconds(10.5), SimTime::from_seconds(12)));
  // Straddling it is not.
  EXPECT_FALSE(cache.path_stable(0, 2, SimTime::from_seconds(7), SimTime::from_seconds(9)));
  // A pair the reroute does not touch stays stable through the window.
  EXPECT_TRUE(cache.path_stable(0, 1, SimTime::from_seconds(7), SimTime::from_seconds(12)));

  EXPECT_FALSE(cache.changed_during(SimTime::from_seconds(2), SimTime::from_seconds(7)));
  EXPECT_TRUE(cache.changed_during(SimTime::from_seconds(7), SimTime::from_seconds(9)));
  EXPECT_FALSE(cache.changed_during(SimTime::from_seconds(10.5), SimTime::from_seconds(12)));

  // A straggler SPF at 11 s widens the window; the interval that looked
  // settled no longer is.
  cache.extend_transition(SimTime::from_seconds(11));
  EXPECT_FALSE(cache.path_stable(0, 2, SimTime::from_seconds(10.5), SimTime::from_seconds(12)));
  EXPECT_TRUE(cache.changed_during(SimTime::from_seconds(10.5), SimTime::from_seconds(12)));
}

// ----------------------------------------------------------------------
// The acceptance scenario: diamond under a live link-state fabric, with
// the r1—r2 link flapping down at 7.4 s and back at 9.4 s. All three
// protocols run simultaneously on the same network.

constexpr std::int64_t kRounds = 14;
constexpr double kFlapDownS = 7.4;
constexpr double kEndS = 18.0;
/// Paths are settled again (last SPF everywhere) well before here.
constexpr double kResumedS = 10.0;

struct Harness {
  testing::ChurnNet n;
  std::unique_ptr<Pi2Engine> pi2;
  std::unique_ptr<Pik2Engine> pik2;
  std::unique_ptr<QueueValidator> chi;
  GroundTruth truth;

  explicit Harness(bool with_attacker) {
    n.add_cbr(0, 2, /*flow=*/1, /*pps=*/400.0, /*start=*/2.05, /*stop=*/16.5);
    if (with_attacker) {
      attacks::FlowMatch match;
      match.flow_ids = {1};
      n.net.router(1).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
          match, 0.3, SimTime::from_seconds(5.5), 99));
      truth.mark_traffic_faulty(1, SimTime::from_seconds(5.5));
    }

    Pi2Config p2;
    p2.clock = testing::ChurnNet::clock();
    p2.k = 1;
    p2.collect_settle = Duration::millis(150);
    p2.evaluate_settle = Duration::millis(300);
    p2.policy = TvPolicy::kContentOrder;
    p2.rounds = kRounds;
    pi2 = std::make_unique<Pi2Engine>(n.net, n.keys, *n.paths,
                                      testing::ChurnNet::terminals(), p2);

    Pik2Config pk;
    pk.clock = testing::ChurnNet::clock();
    pk.k = 1;
    pk.collect_settle = Duration::millis(150);
    pk.exchange_timeout = Duration::millis(500);
    pk.policy = TvPolicy::kContentOrder;
    pk.rounds = kRounds;
    pik2 = std::make_unique<Pik2Engine>(n.net, n.keys, *n.paths,
                                        testing::ChurnNet::terminals(), pk);

    ChiConfig cc;
    cc.clock = testing::ChurnNet::clock();
    cc.settle = Duration::millis(400);
    cc.grace = Duration::millis(200);
    cc.learning_rounds = 3;
    cc.rounds = kRounds;
    chi = std::make_unique<QueueValidator>(n.net, n.keys, *n.paths, /*owner=*/1, /*peer=*/2, cc);

    const sim::ChurnSchedule churn = testing::ChurnNet::flap_schedule();
    churn.arm(n.net);
    for (const util::TimeInterval& w :
         churn.churn_intervals(Duration::millis(1600), SimTime::from_seconds(kEndS))) {
      truth.mark_churn(w);
    }

    pi2->start();
    pik2->start();
    chi->start();
  }

  void run() { n.net.sim().run_until(SimTime::from_seconds(kEndS)); }
};

bool detected_before(const std::vector<Suspicion>& suspicions, NodeId faulty, double before) {
  return std::any_of(suspicions.begin(), suspicions.end(), [&](const Suspicion& s) {
    return s.segment.contains(faulty) && s.interval.end <= SimTime::from_seconds(before);
  });
}

TEST(Churn, FlapWithoutAttackerRaisesNoSuspicions) {
  Harness h(/*with_attacker=*/false);
  h.run();

  // The flap really happened: routes changed at the ends and the oracle
  // grew an epoch per reconvergence (down + up).
  EXPECT_GE(h.n.lsr->route_changes(0), 2U);
  EXPECT_GE(h.n.paths->epoch_count(), 3U);

  // Zero suspicions from any protocol — reconvergence is not an attack.
  EXPECT_TRUE(h.pi2->suspicions().empty())
      << "pi2: " << h.pi2->suspicions().front().to_string();
  EXPECT_TRUE(h.pik2->suspicions().empty())
      << "pik2: " << h.pik2->suspicions().front().to_string();
  EXPECT_TRUE(h.chi->suspicions().empty())
      << "chi: " << h.chi->suspicions().front().to_string();

  // ... because the straddling rounds were invalidated, not judged.
  EXPECT_GT(h.pi2->rounds_invalidated(), 0U);
  EXPECT_GT(h.pik2->rounds_invalidated(), 0U);
  EXPECT_GT(h.chi->rounds_invalidated(), 0U);
  EXPECT_TRUE(h.chi->learned());

  // Spec check (vacuous counts, but through the real checker).
  for (const auto* suspicions :
       {&h.pi2->suspicions(), &h.pik2->suspicions(), &h.chi->suspicions()}) {
    const SpecReport rep = check_accuracy(*suspicions, h.truth, 3);
    EXPECT_EQ(rep.violations, 0U);
    EXPECT_EQ(rep.churn_violations, 0U);
  }
}

TEST(Churn, AttackerStillDetectedAcrossReconvergence) {
  Harness h(/*with_attacker=*/true);
  h.run();
  EXPECT_GE(h.n.paths->epoch_count(), 3U);

  // Accuracy holds throughout — churn never excuses a false accusation,
  // and none of the violations-from-reconvergence the invalidation
  // machinery exists to prevent occurred.
  const SpecReport pi2_rep = check_accuracy(h.pi2->suspicions(), h.truth, 2);
  const SpecReport pik2_rep = check_accuracy(h.pik2->suspicions(), h.truth, 3);
  const SpecReport chi_rep = check_accuracy(h.chi->suspicions(), h.truth, 2);
  for (const SpecReport* rep : {&pi2_rep, &pik2_rep, &chi_rep}) {
    EXPECT_TRUE(rep->accuracy_holds()) << "violations=" << rep->violations
                                       << " oversized=" << rep->oversized;
    EXPECT_EQ(rep->churn_violations, 0U);
    EXPECT_GT(rep->suspicions, 0U);
  }

  // Detected before the flap...
  EXPECT_TRUE(detected_before(h.pi2->suspicions(), 1, kFlapDownS));
  EXPECT_TRUE(detected_before(h.pik2->suspicions(), 1, kFlapDownS));
  EXPECT_TRUE(detected_before(h.chi->suspicions(), 1, kFlapDownS));

  // ... and again once the paths re-stabilized (completeness resumes on
  // rounds that START after the settle point; invalidated rounds never
  // satisfy this).
  const SimTime resumed = SimTime::from_seconds(kResumedS);
  EXPECT_TRUE(check_completeness_for_after(h.pi2->suspicions(), 1, resumed));
  EXPECT_TRUE(check_completeness_for_after(h.pik2->suspicions(), 1, resumed));
  EXPECT_TRUE(check_completeness_for_after(h.chi->suspicions(), 1, resumed));

  // The flap rounds themselves were invalidated rather than judged.
  EXPECT_GT(h.pi2->rounds_invalidated(), 0U);
  EXPECT_GT(h.pik2->rounds_invalidated(), 0U);
  EXPECT_GT(h.chi->rounds_invalidated(), 0U);
}

}  // namespace
}  // namespace fatih::detection
