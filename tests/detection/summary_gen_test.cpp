#include "detection/summary_gen.hpp"

#include <gtest/gtest.h>

#include "tests/detection/test_net.hpp"

namespace fatih::detection {
namespace {

using testing::LineNet;
using util::Duration;
using util::SimTime;

RoundClock one_second_rounds() { return RoundClock{SimTime::origin(), Duration::seconds(1)}; }

TEST(SummaryGenerator, InteriorRouterRecordsAlignedTraffic) {
  LineNet line(5);
  SummaryGenerator gen(line.net, line.keys, 2, one_second_rounds(), *line.paths);
  const routing::PathSegment seg{1, 2, 3};
  gen.monitor(seg, 1);
  line.add_cbr(0, 4, 1, 100, SimTime::from_seconds(0.1), SimTime::from_seconds(0.9));
  line.net.sim().run_until(SimTime::from_seconds(2));
  const auto summary = gen.take_summary(seg, 0);
  EXPECT_NEAR(static_cast<double>(summary.counters.packets), 80.0, 2.0);
  EXPECT_EQ(summary.content.size(), summary.counters.packets);
}

TEST(SummaryGenerator, SinkRecordsAtReceive) {
  LineNet line(5);
  SummaryGenerator gen(line.net, line.keys, 3, one_second_rounds(), *line.paths);
  const routing::PathSegment seg{1, 2, 3};
  gen.monitor(seg, 2);
  line.add_cbr(0, 4, 1, 50, SimTime::from_seconds(0.1), SimTime::from_seconds(0.9));
  line.net.sim().run_until(SimTime::from_seconds(2));
  const auto summary = gen.take_summary(seg, 0);
  EXPECT_NEAR(static_cast<double>(summary.counters.packets), 40.0, 2.0);
}

TEST(SummaryGenerator, UpstreamAndDownstreamAgreeOnCleanTraffic) {
  LineNet line(5);
  SummaryGenerator up(line.net, line.keys, 1, one_second_rounds(), *line.paths);
  SummaryGenerator down(line.net, line.keys, 3, one_second_rounds(), *line.paths);
  const routing::PathSegment seg{1, 2, 3};
  up.monitor(seg, 0);
  down.monitor(seg, 2);
  line.add_cbr(0, 4, 1, 200, SimTime::from_seconds(0.05), SimTime::from_seconds(0.95));
  line.net.sim().run_until(SimTime::from_seconds(2));
  const auto s_up = up.take_summary(seg, 0);
  const auto s_down = down.take_summary(seg, 0);
  ASSERT_GT(s_up.counters.packets, 0U);
  EXPECT_EQ(s_up.counters.packets, s_down.counters.packets);
  // Same fingerprints in the same order.
  EXPECT_EQ(s_up.content, s_down.content);
}

TEST(SummaryGenerator, OffSegmentTrafficNotRecorded) {
  // Traffic 3 -> 4 does not traverse <1,2,3>; the generator at 2 must not
  // charge it to that segment.
  LineNet line(5);
  SummaryGenerator gen(line.net, line.keys, 2, one_second_rounds(), *line.paths);
  const routing::PathSegment seg{1, 2, 3};
  gen.monitor(seg, 1);
  line.add_cbr(3, 4, 1, 100, SimTime::from_seconds(0.1), SimTime::from_seconds(0.9));
  line.net.sim().run_until(SimTime::from_seconds(2));
  EXPECT_EQ(gen.take_summary(seg, 0).counters.packets, 0U);
}

TEST(SummaryGenerator, ReverseDirectionNotRecorded) {
  // Traffic 4 -> 0 traverses the reverse segment <3,2,1>, not <1,2,3>.
  LineNet line(5);
  SummaryGenerator gen(line.net, line.keys, 2, one_second_rounds(), *line.paths);
  const routing::PathSegment seg{1, 2, 3};
  gen.monitor(seg, 1);
  line.add_cbr(4, 0, 1, 100, SimTime::from_seconds(0.1), SimTime::from_seconds(0.9));
  line.net.sim().run_until(SimTime::from_seconds(2));
  EXPECT_EQ(gen.take_summary(seg, 0).counters.packets, 0U);
}

TEST(SummaryGenerator, BucketsByOriginationRound) {
  LineNet line(5);
  SummaryGenerator gen(line.net, line.keys, 2, one_second_rounds(), *line.paths);
  const routing::PathSegment seg{1, 2, 3};
  gen.monitor(seg, 1);
  // 10 pps continuously across rounds 0..2.
  line.add_cbr(0, 4, 1, 10, SimTime::from_seconds(0.05), SimTime::from_seconds(2.95));
  line.net.sim().run_until(SimTime::from_seconds(4));
  const auto r0 = gen.take_summary(seg, 0);
  const auto r1 = gen.take_summary(seg, 1);
  const auto r2 = gen.take_summary(seg, 2);
  EXPECT_NEAR(static_cast<double>(r0.counters.packets), 10.0, 1.0);
  EXPECT_NEAR(static_cast<double>(r1.counters.packets), 10.0, 1.0);
  EXPECT_NEAR(static_cast<double>(r2.counters.packets), 10.0, 1.0);
}

TEST(SummaryGenerator, TakeSummaryConsumes) {
  LineNet line(5);
  SummaryGenerator gen(line.net, line.keys, 2, one_second_rounds(), *line.paths);
  const routing::PathSegment seg{1, 2, 3};
  gen.monitor(seg, 1);
  line.add_cbr(0, 4, 1, 100, SimTime::from_seconds(0.1), SimTime::from_seconds(0.5));
  line.net.sim().run_until(SimTime::from_seconds(2));
  EXPECT_GT(gen.take_summary(seg, 0).counters.packets, 0U);
  EXPECT_EQ(gen.take_summary(seg, 0).counters.packets, 0U);  // already taken
}

TEST(SummaryGenerator, SamplingKeepsSubset) {
  LineNet line(5);
  SummaryGenerator full(line.net, line.keys, 2, one_second_rounds(), *line.paths);
  SummaryGenerator sampled(line.net, line.keys, 2, one_second_rounds(), *line.paths);
  const routing::PathSegment seg{1, 2, 3};
  full.monitor(seg, 1, 256);
  sampled.monitor(seg, 1, 64);  // keep ~25%
  line.add_cbr(0, 4, 1, 1000, SimTime::from_seconds(0.05), SimTime::from_seconds(0.95));
  line.net.sim().run_until(SimTime::from_seconds(2));
  const auto all = full.take_summary(seg, 0);
  const auto some = sampled.take_summary(seg, 0);
  ASSERT_GT(all.counters.packets, 800U);
  const double keep_ratio = static_cast<double>(some.counters.packets) /
                            static_cast<double>(all.counters.packets);
  EXPECT_NEAR(keep_ratio, 0.25, 0.08);
}

TEST(SummaryGenerator, ControlTrafficExcluded) {
  LineNet line(5);
  SummaryGenerator gen(line.net, line.keys, 2, one_second_rounds(), *line.paths);
  const routing::PathSegment seg{1, 2, 3};
  gen.monitor(seg, 1);
  // Send a control packet along the segment.
  sim::PacketHeader hdr;
  hdr.src = 0;
  hdr.dst = 4;
  hdr.proto = sim::Protocol::kControl;
  const sim::Packet p = line.net.make_packet(hdr, 100);
  line.net.sim().schedule_at(SimTime::from_seconds(0.1),
                             [&] { line.net.router(0).originate(p); });
  line.net.sim().run_until(SimTime::from_seconds(1));
  EXPECT_EQ(gen.take_summary(seg, 0).counters.packets, 0U);
}

}  // namespace
}  // namespace fatih::detection
