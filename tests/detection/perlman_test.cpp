#include "detection/perlman.hpp"

#include <gtest/gtest.h>

#include "attacks/attacks.hpp"
#include "detection/spec.hpp"
#include "tests/detection/test_net.hpp"
#include "traffic/sources.hpp"

namespace fatih::detection {
namespace {

using testing::LineNet;
using util::Duration;
using util::NodeId;
using util::SimTime;

struct PerlmanFixture {
  LineNet line{6};  // a(0) b(1) c(2) d(3) e(4) f(5), matching Fig. 3.8
  routing::Path path{0, 1, 2, 3, 4, 5};
  std::unique_ptr<PerlmanDetector> detector;

  PerlmanFixture() {
    PerlmanConfig cfg;
    cfg.per_hop_bound = Duration::millis(5);
    cfg.flow_id = 1;
    detector = std::make_unique<PerlmanDetector>(line.net, line.keys, path, cfg);
    line.add_cbr(0, 5, 1, 100, SimTime::from_seconds(0.1), SimTime::from_seconds(2.9));
  }

  void run(double seconds = 4.0) { line.net.sim().run_until(SimTime::from_seconds(seconds)); }
};

TEST(Perlman, CleanPathNoSuspicions) {
  PerlmanFixture f;
  f.run();
  EXPECT_TRUE(f.detector->suspicions().empty());
  // Every intermediate + the sink ack every packet.
  EXPECT_GT(f.detector->ack_messages_sent(), 5 * 200U);
}

TEST(Perlman, SimpleDropperLocatedCorrectly) {
  PerlmanFixture f;
  GroundTruth truth;
  truth.mark_traffic_faulty(3, SimTime::from_seconds(1));
  attacks::FlowMatch match;
  match.flow_ids = {1};
  f.line.net.router(3).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 1.0, SimTime::from_seconds(1), 7));
  f.run();
  ASSERT_FALSE(f.detector->suspicions().empty());
  EXPECT_TRUE(check_accuracy(f.detector->suspicions(), truth, 2).accuracy_holds());
  EXPECT_TRUE(check_completeness_for(f.detector->suspicions(), 3));
}

// The Fig. 3.8 colluder: drops PERLMAN acks originating from a chosen
// position while leaving everything else alone.
struct AckFilter final : sim::ForwardFilter {
  std::uint32_t blocked_position;
  util::SimTime from;
  AckFilter(std::uint32_t pos, util::SimTime t) : blocked_position(pos), from(t) {}

  sim::ForwardDecision on_forward(const sim::Packet& p, util::NodeId, const sim::Interface&,
                                  sim::Router& router) override {
    if (router.sim().now() < from) return sim::ForwardDecision::forward();
    if (p.control != nullptr && p.control->kind() == kKindPerlmanAck) {
      // Colluders can read unencrypted ack headers and discriminate.
      const auto& ack = static_cast<const PerlmanAckPayload&>(*p.control);
      if (ack.from_position >= blocked_position) return sim::ForwardDecision::drop();
    }
    return sim::ForwardDecision::forward();
  }
};

TEST(Perlman, CollusionFramesCorrectRouters) {
  // Fig. 3.8: b (=1) and e (=4) are faulty. e drops the data before f;
  // b discriminatorily drops acks from d (=3) onward. The source receives
  // acks only from b and c, concludes "something is wrong past c", and
  // suspects <c, d> — two CORRECT routers. Accuracy is violated, which is
  // exactly why the dissertation rejects PERLMAN_d.
  PerlmanFixture f;
  GroundTruth truth;
  truth.mark_traffic_faulty(4, SimTime::from_seconds(1));
  truth.mark_protocol_faulty(1, SimTime::from_seconds(1));

  attacks::FlowMatch match;
  match.flow_ids = {1};
  f.line.net.router(4).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 1.0, SimTime::from_seconds(1), 7));
  f.line.net.router(1).set_forward_filter(
      std::make_shared<AckFilter>(3, SimTime::from_seconds(1)));
  f.run();

  ASSERT_FALSE(f.detector->suspicions().empty());
  bool framed_correct_pair = false;
  for (const auto& s : f.detector->suspicions()) {
    if (s.segment == (routing::PathSegment{2, 3})) framed_correct_pair = true;
  }
  EXPECT_TRUE(framed_correct_pair);
  // And the spec checker agrees: accuracy does NOT hold.
  EXPECT_FALSE(check_accuracy(f.detector->suspicions(), truth, 2).accuracy_holds());
}

TEST(RobustMultipath, DeliversDespiteFaultyRouters) {
  // Perlman's TotalFault(f) robustness: with f=1 and two disjoint paths,
  // one compromised interior router cannot stop delivery.
  sim::Network net(9);
  for (int i = 0; i < 4; ++i) net.add_router("r" + std::to_string(i));
  sim::LinkConfig cfg;
  cfg.bandwidth_bps = 1e8;
  cfg.delay = Duration::millis(1);
  net.connect(0, 1, cfg);
  net.connect(0, 2, cfg);
  net.connect(1, 3, cfg);
  net.connect(2, 3, cfg);
  const routing::Topology topo = routing::Topology::from_network(net);

  RobustMultipathSender sender(net, topo, 0, 3, /*f=*/1);
  ASSERT_EQ(sender.paths().size(), 2U);

  // Compromise router 1: drops everything.
  attacks::FlowMatch all;
  all.include_control = true;
  net.router(1).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      all, 1.0, SimTime::origin(), 7));

  std::set<std::uint32_t> delivered;
  std::uint64_t copies = 0;
  net.router(3).add_local_handler([&](const sim::Packet& p, NodeId, SimTime) {
    delivered.insert(p.hdr.seq);
    ++copies;
  });
  for (std::uint32_t seq = 0; seq < 50; ++seq) {
    net.sim().schedule_at(SimTime::from_seconds(0.01 * seq),
                          [&sender, seq] { sender.send(7, seq, 500); });
  }
  net.sim().run();
  EXPECT_EQ(delivered.size(), 50U);  // every datagram arrives
  EXPECT_EQ(copies, 50U);            // exactly one surviving copy each
}

TEST(RobustMultipath, ThrowsWithoutDiversity) {
  sim::Network net(10);
  net.add_router("a");
  net.add_router("b");
  net.add_router("c");
  sim::LinkConfig cfg;
  net.connect(0, 1, cfg);
  net.connect(1, 2, cfg);
  const routing::Topology topo = routing::Topology::from_network(net);
  EXPECT_THROW(RobustMultipathSender(net, topo, 0, 2, /*f=*/1), std::runtime_error);
}

TEST(RobustMultipath, DuplicatesShareFingerprint) {
  sim::Network net(11);
  for (int i = 0; i < 4; ++i) net.add_router("r" + std::to_string(i));
  sim::LinkConfig cfg;
  net.connect(0, 1, cfg);
  net.connect(0, 2, cfg);
  net.connect(1, 3, cfg);
  net.connect(2, 3, cfg);
  const routing::Topology topo = routing::Topology::from_network(net);
  RobustMultipathSender sender(net, topo, 0, 3, 1);
  std::set<std::uint64_t> tags;
  std::uint64_t copies = 0;
  net.router(3).add_local_handler([&](const sim::Packet& p, NodeId, SimTime) {
    tags.insert(p.payload_tag);
    ++copies;
  });
  net.sim().schedule_at(SimTime::origin(), [&] { sender.send(7, 0, 500); });
  net.sim().run();
  EXPECT_EQ(copies, 2U);
  EXPECT_EQ(tags.size(), 1U);  // same bytes on both paths -> deduplicable
}

}  // namespace
}  // namespace fatih::detection
