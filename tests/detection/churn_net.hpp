// Shared fixture for the topology-churn tests: a diamond running REAL
// link-state routing (not static routes), with the versioned path oracle
// wired to the route-change hook.
//
//        r1
//   1  /    \  1          primary r0-r1-r2 (cost 2)
//    r0      r2           detour  r0-r3-r2 (cost 10)
//   5  \    /  5
//        r3
//
// Flapping the r1—r2 link forces the r0->r2 traffic onto the detour and
// back; the epoch keeper turns each reconvergence into a PathCache epoch
// the detection engines use to invalidate the straddling rounds.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "crypto/keys.hpp"
#include "detection/path_cache.hpp"
#include "detection/route_epochs.hpp"
#include "detection/types.hpp"
#include "routing/link_state.hpp"
#include "routing/spf.hpp"
#include "sim/churn.hpp"
#include "sim/network.hpp"
#include "traffic/sources.hpp"

namespace fatih::detection::testing {

struct ChurnNet {
  sim::Network net;
  crypto::KeyRegistry keys{4242};
  std::shared_ptr<routing::RoutingTables> tables;
  std::unique_ptr<PathCache> paths;
  std::unique_ptr<routing::LinkStateRouting> lsr;
  std::unique_ptr<RouteEpochKeeper> keeper;
  std::vector<std::unique_ptr<traffic::CbrSource>> sources;

  explicit ChurnNet(std::uint64_t seed = 7) : net(seed) {
    for (int i = 0; i < 4; ++i) net.add_router("r" + std::to_string(i));
    connect(0, 1, 1);
    connect(1, 2, 1);
    connect(0, 3, 5);
    connect(3, 2, 5);
    for (util::NodeId i = 0; i < 4; ++i) {
      net.router(i).set_processing_delay(util::Duration::micros(20), util::Duration::micros(10));
    }
    // Epoch 0: the converged steady state (central SPF agrees with what
    // the daemons install once they converge, metrics being identical).
    tables = std::make_shared<routing::RoutingTables>(routing::Topology::from_network(net));
    paths = std::make_unique<PathCache>(tables);

    routing::LinkStateConfig rc;
    rc.hello_interval = util::Duration::millis(200);
    rc.dead_interval = util::Duration::millis(800);
    rc.spf_delay = util::Duration::millis(100);
    rc.spf_hold = util::Duration::millis(200);
    rc.lsa_min_interval = util::Duration::millis(50);
    lsr = std::make_unique<routing::LinkStateRouting>(net, keys, rc);
    // Lookback covers the blackhole between a physical failure and the
    // SPF that reacts: dead_interval + hello-scan granularity + spf_delay
    // + slack.
    keeper = std::make_unique<RouteEpochKeeper>(net, *lsr, *paths,
                                                util::Duration::millis(1300));
    lsr->start();
  }

  void connect(util::NodeId a, util::NodeId b, std::uint32_t metric) {
    sim::LinkConfig cfg;
    cfg.bandwidth_bps = 1e8;
    cfg.delay = util::Duration::millis(1);
    cfg.queue_limit_bytes = 64000;
    cfg.metric = metric;
    net.connect(a, b, cfg);
  }

  /// Round clock starting after the routing fabric has converged.
  [[nodiscard]] static RoundClock clock() {
    return RoundClock{util::SimTime::from_seconds(2), util::Duration::seconds(1)};
  }

  /// The terminals whose paths the engines monitor: the ends of the
  /// primary path.
  [[nodiscard]] static std::vector<util::NodeId> terminals() { return {0, 2}; }

  /// The standard flap: the primary's r1—r2 link fails at 7.4 s (mid
  /// detection round) and is repaired at 9.4 s.
  [[nodiscard]] static sim::ChurnSchedule flap_schedule() {
    sim::ChurnSchedule churn;
    churn.link_down(1, 2, util::SimTime::from_seconds(7.4));
    churn.link_up(1, 2, util::SimTime::from_seconds(9.4));
    return churn;
  }

  void add_cbr(util::NodeId src, util::NodeId dst, std::uint32_t flow, double pps,
               double start, double stop) {
    traffic::CbrSource::Config cfg;
    cfg.src = src;
    cfg.dst = dst;
    cfg.flow_id = flow;
    cfg.rate_pps = pps;
    cfg.start = util::SimTime::from_seconds(start);
    cfg.stop = util::SimTime::from_seconds(stop);
    sources.push_back(std::make_unique<traffic::CbrSource>(net, cfg));
  }
};

}  // namespace fatih::detection::testing
