// Byzantine control-plane hardening: the ControlGuard verdicts, the
// evidence-based conviction rules (single liar / colluding pair soundness,
// witness quorum, equivocation and forged-evidence proofs), and the
// per-protocol framing acceptance scenarios on a diamond topology.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "attacks/byzantine.hpp"
#include "detection/chi.hpp"
#include "detection/evidence.hpp"
#include "detection/pi2.hpp"
#include "detection/pik2.hpp"
#include "obs/trace.hpp"
#include "routing/install.hpp"
#include "routing/spf.hpp"
#include "tests/detection/test_net.hpp"

namespace fatih::detection {
namespace {

using testing::LineNet;
using util::Duration;
using util::NodeId;
using util::SimTime;

// ----------------------------------------------------------- ControlGuard

struct GuardHarness {
  sim::Network net{3};
  crypto::KeyRegistry keys{501};
  ControlGuard guard{net, keys, obs::TraceSource::kPi2, "test"};

  GuardHarness() {
    net.add_router("a");
    net.add_router("b");
  }

  SegmentSummary sample() const {
    SegmentSummary s;
    s.reporter = 0;
    s.segment = routing::PathSegment{0, 1};
    s.round = 3;
    s.counters.packets = 5;
    s.counters.bytes = 500;
    s.content = {11, 22, 33};
    return s;
  }
};

TEST(ControlGuard, AcceptsWellSignedSummary) {
  GuardHarness h;
  const SegmentSummary s = h.sample();
  const auto env = crypto::sign(h.keys, 0, s.to_bytes());
  std::optional<SegmentSummary> out;
  EXPECT_EQ(h.guard.check_summary(env, out), ControlVerdict::kOk);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->reporter, 0U);
  EXPECT_EQ(out->content, s.content);
}

TEST(ControlGuard, TamperedPayloadIsBadMac) {
  GuardHarness h;
  auto env = crypto::sign(h.keys, 0, h.sample().to_bytes());
  env.payload[env.payload.size() / 2] ^= std::byte{0x40};
  std::optional<SegmentSummary> out;
  EXPECT_EQ(h.guard.check_summary(env, out), ControlVerdict::kBadMac);
  EXPECT_FALSE(out.has_value());
}

TEST(ControlGuard, ForgedTagIsBadMac) {
  GuardHarness h;
  auto env = crypto::sign(h.keys, 0, h.sample().to_bytes());
  env.tag ^= 1;
  std::optional<SegmentSummary> out;
  EXPECT_EQ(h.guard.check_summary(env, out), ControlVerdict::kBadMac);
}

TEST(ControlGuard, WrongSignerIsSignerMismatch) {
  GuardHarness h;
  // Well-signed by router 1 — but the payload claims reporter 0. An
  // attacker can always sign with its OWN key; it must not be able to
  // speak for another router.
  const auto env = crypto::sign(h.keys, 1, h.sample().to_bytes());
  std::optional<SegmentSummary> out;
  EXPECT_EQ(h.guard.check_summary(env, out), ControlVerdict::kSignerMismatch);
  EXPECT_FALSE(out.has_value());
}

TEST(ControlGuard, GarbagePayloadIsMalformed) {
  GuardHarness h;
  const std::vector<std::byte> junk{std::byte{0xFF}, std::byte{0xEE}, std::byte{0x01}};
  const auto env = crypto::sign(h.keys, 0, junk);  // MAC verifies, decode cannot
  std::optional<SegmentSummary> out;
  EXPECT_EQ(h.guard.check_summary(env, out), ControlVerdict::kMalformed);
}

TEST(ControlGuard, RoundWindowRejectsStaleAndFuture) {
  GuardHarness h;
  std::int64_t margin = -1;
  EXPECT_EQ(h.guard.admit_round(5, 4, 5), ControlVerdict::kOk);
  EXPECT_EQ(h.guard.admit_round(6, 4, 5), ControlVerdict::kOk);  // next open round
  EXPECT_EQ(h.guard.admit_round(4, 4, 5, &margin), ControlVerdict::kStale);
  EXPECT_EQ(margin, 0);  // at the watermark: plausibly a late retransmit
  EXPECT_EQ(h.guard.admit_round(1, 4, 5, &margin), ControlVerdict::kStale);
  EXPECT_EQ(margin, 3);  // far below: warrants suspicion
  EXPECT_GE(margin, ControlGuard::kSuspectMargin);
  EXPECT_EQ(h.guard.admit_round(7, 4, 5), ControlVerdict::kFuture);
}

TEST(ControlGuard, RejectionsAreCountedPerVerdict) {
  GuardHarness h;
  h.guard.accept();
  h.guard.reject(0, 1, 3, ControlVerdict::kBadMac, "t");
  h.guard.reject(0, 1, 3, ControlVerdict::kBadMac, "t");
  h.guard.reject(0, util::kInvalidNode, 3, ControlVerdict::kStale, "t");
  h.guard.reject(0, 1, 3, ControlVerdict::kMalformed, "t");
  const ByzantineStats& s = h.guard.stats();
  EXPECT_EQ(s.accepted, 1U);
  EXPECT_EQ(s.rejected_bad_mac, 2U);
  EXPECT_EQ(s.rejected_stale, 1U);
  EXPECT_EQ(s.rejected_malformed, 1U);
  EXPECT_EQ(s.rejected(), 4U);
}

// ------------------------------------------------------- conviction rules

/// Diamond r0-(r1|r2)-r3: two disjoint two-hop paths, enough honest
/// routers for a quorum, and the shape of the sandwich-frame counterexample.
struct DiamondNet {
  sim::Network net{11};
  crypto::KeyRegistry keys{777};
  std::shared_ptr<routing::RoutingTables> tables;
  std::unique_ptr<PathCache> paths;
  std::unique_ptr<ConvictionEngine> conviction;
  std::vector<std::unique_ptr<traffic::CbrSource>> sources;

  explicit DiamondNet(ConvictionConfig ccfg = {}) {
    for (int i = 0; i < 4; ++i) net.add_router("r" + std::to_string(i));
    for (auto [a, b] : {std::pair<NodeId, NodeId>{0, 1}, {0, 2}, {1, 3}, {2, 3}}) {
      net.connect(a, b, testing::fast_link());
    }
    tables = std::make_shared<routing::RoutingTables>(routing::Topology::from_network(net));
    routing::install_static_routes(net, *tables);
    paths = std::make_unique<PathCache>(tables);
    for (NodeId i = 0; i < 4; ++i) {
      net.router(i).set_processing_delay(Duration::micros(20), Duration::micros(10));
    }
    conviction = std::make_unique<ConvictionEngine>(net, keys, ccfg);
  }

  /// Files an evidence-free accusation inside the simulation.
  void vote_at(double t, NodeId accuser, const routing::PathSegment& accused,
               std::int64_t round = 1) {
    net.sim().schedule_at(SimTime::from_seconds(t), [this, accuser, accused, round] {
      conviction->accuse(accuser, static_cast<std::uint8_t>(obs::TraceSource::kPi2), accused,
                         round, "test-vote");
    });
  }

  void run(double seconds = 2.0) { net.sim().run_until(SimTime::from_seconds(seconds)); }
};

TEST(ConvictionEngine, SingleLiarCannotConvict) {
  DiamondNet d;
  for (int i = 0; i < 5; ++i) d.vote_at(0.1 + 0.1 * i, 2, routing::PathSegment{1}, i);
  d.run();
  // Five rounds of lies are still ONE distinct witness.
  EXPECT_GT(d.conviction->accusations_accepted(), 0U);
  EXPECT_FALSE(d.conviction->convicted(1));
  EXPECT_TRUE(d.conviction->convictions().empty());
}

TEST(ConvictionEngine, ColludingPairCannotConvict) {
  DiamondNet d;
  for (int i = 0; i < 3; ++i) {
    d.vote_at(0.1 + 0.1 * i, 0, routing::PathSegment{3}, i);
    d.vote_at(0.12 + 0.1 * i, 2, routing::PathSegment{3}, i);
  }
  d.run();
  EXPECT_FALSE(d.conviction->convicted(3));
  EXPECT_TRUE(d.conviction->convictions().empty());
}

TEST(ConvictionEngine, SelfVoteDoesNotCountTowardQuorum) {
  DiamondNet d;
  d.vote_at(0.1, 0, routing::PathSegment{3});
  d.vote_at(0.2, 1, routing::PathSegment{3});
  d.vote_at(0.3, 3, routing::PathSegment{3});  // the accused "confessing" a vote
  d.run();
  // Two distinct third-party witnesses plus a self-vote: below quorum.
  EXPECT_FALSE(d.conviction->convicted(3));
}

TEST(ConvictionEngine, WitnessQuorumConvicts) {
  DiamondNet d;
  d.vote_at(0.1, 0, routing::PathSegment{3});
  d.vote_at(0.2, 1, routing::PathSegment{3});
  d.vote_at(0.3, 2, routing::PathSegment{3});
  d.run();
  ASSERT_TRUE(d.conviction->convicted(3));
  ASSERT_EQ(d.conviction->convictions().size(), 1U);
  const Conviction& c = d.conviction->convictions().front();
  EXPECT_EQ(c.basis, "witness-quorum");
  EXPECT_EQ(c.witnesses.size(), 3U);
}

TEST(ConvictionEngine, Precision2AccusationsNeverConvict) {
  // The sandwich frame: colluders r0 and r3 sandwich honest r1 and make
  // both adjacent pairs look faulty. Any rule intersecting pair
  // accusations would convict r1 — so pairs must carry zero conviction
  // weight no matter how many accusers repeat them.
  DiamondNet d;
  for (int i = 0; i < 4; ++i) {
    d.vote_at(0.1 + 0.1 * i, 0, routing::PathSegment{0, 1}, i);
    d.vote_at(0.12 + 0.1 * i, 3, routing::PathSegment{1, 3}, i);
    d.vote_at(0.14 + 0.1 * i, 2, routing::PathSegment{0, 1}, i);
  }
  d.run();
  EXPECT_GT(d.conviction->accusations_accepted(), 0U);
  EXPECT_TRUE(d.conviction->convictions().empty());
}

TEST(ConvictionEngine, EquivocationProofConvictsSigner) {
  DiamondNet d;
  // Two genuinely signed, conflicting statements for the same (reporter,
  // segment, round): only router 1's key can produce this pair, so it is
  // self-incriminating no matter who files it.
  SegmentSummary a;
  a.reporter = 1;
  a.segment = routing::PathSegment{0, 1, 3};
  a.round = 2;
  a.counters.packets = 10;
  SegmentSummary b = a;
  b.counters.packets = 99;
  std::vector<crypto::SignedEnvelope> proof{crypto::sign(d.keys, 1, a.to_bytes()),
                                            crypto::sign(d.keys, 1, b.to_bytes())};
  NodeId culprit = util::kInvalidNode;
  EXPECT_TRUE(valid_equivocation_proof(d.keys, proof, &culprit));
  EXPECT_EQ(culprit, 1U);
  d.net.sim().schedule_at(SimTime::from_seconds(0.1), [&d, proof] {
    d.conviction->accuse(0, static_cast<std::uint8_t>(obs::TraceSource::kPi2),
                         routing::PathSegment{1}, 2, "equivocation", proof);
  });
  d.run();
  ASSERT_TRUE(d.conviction->convicted(1));
  EXPECT_EQ(d.conviction->convictions().front().basis, "equivocation-proof");
}

TEST(ConvictionEngine, FabricatedProofConvictsTheAccuser) {
  DiamondNet d;
  // r2 ships an "equivocation proof" it cannot actually sign: envelopes
  // under r1's name with invented tags. The accusation itself is signed by
  // r2, so the bad proof convicts r2 — and never r1.
  std::vector<crypto::SignedEnvelope> fake(2);
  for (std::size_t i = 0; i < 2; ++i) {
    fake[i].signer = 1;
    fake[i].payload = {std::byte{static_cast<unsigned char>(i)}, std::byte{0xBA}};
    fake[i].tag = 0xFA4EFA4E;
  }
  NodeId culprit = util::kInvalidNode;
  EXPECT_FALSE(valid_equivocation_proof(d.keys, fake, &culprit));
  d.net.sim().schedule_at(SimTime::from_seconds(0.1), [&d, fake] {
    d.conviction->accuse(2, static_cast<std::uint8_t>(obs::TraceSource::kPi2),
                         routing::PathSegment{1}, 2, "framed", fake);
  });
  d.run();
  EXPECT_FALSE(d.conviction->convicted(1));
  ASSERT_TRUE(d.conviction->convicted(2));
  EXPECT_EQ(d.conviction->convictions().front().basis, "forged-evidence");
}

TEST(ConvictionEngine, UnsignedAccusationNeverEntersLedger) {
  DiamondNet d;
  d.net.sim().schedule_at(SimTime::from_seconds(0.1), [&d] {
    Accusation acc;
    acc.accuser = 2;
    acc.detector = static_cast<std::uint8_t>(obs::TraceSource::kPi2);
    acc.accused = routing::PathSegment{1};
    acc.round = 1;
    acc.cause = "forged";
    crypto::SignedEnvelope env;  // fabricated tag, never signed
    env.signer = 2;
    env.payload = acc.to_bytes();
    env.tag = 0xDEADC0DE;
    d.conviction->originate_raw(2, acc, std::move(env));
  });
  d.run();
  EXPECT_EQ(d.conviction->accusations_accepted(), 0U);
  EXPECT_GT(d.conviction->stats().rejected_bad_mac, 0U);
  EXPECT_TRUE(d.conviction->convictions().empty());
}

// ----------------------------------------------- framing acceptance suite

/// Diamond + Pi(k+2) with clean traffic and one liar r2 framing honest r1
/// with fabricated proofs. Returns a comparable run snapshot.
struct FramingSnapshot {
  std::vector<std::tuple<NodeId, std::int64_t, std::string>> convictions{};
  std::uint64_t accusations_accepted = 0;
  std::uint64_t filed = 0;
  std::size_t suspicions = 0;
  bool honest_convicted = false;

  bool operator==(const FramingSnapshot&) const = default;
};

FramingSnapshot run_pik2_framing() {
  DiamondNet d;
  Pik2Config cfg;
  cfg.clock = RoundClock{SimTime::from_seconds(1), Duration::seconds(1)};
  cfg.k = 1;
  cfg.collect_settle = Duration::millis(150);
  cfg.exchange_timeout = Duration::millis(400);
  cfg.policy = TvPolicy::kContentOrder;
  cfg.thresholds.max_lost_packets = 2;
  cfg.rounds = 4;
  Pik2Engine engine(d.net, d.keys, *d.paths, {0, 3}, cfg);
  engine.set_conviction_engine(d.conviction.get());
  engine.start();
  for (auto [src, dst, flow] :
       {std::tuple<NodeId, NodeId, std::uint32_t>{0, 3, 1}, {3, 0, 2}}) {
    traffic::CbrSource::Config c;
    c.src = src;
    c.dst = dst;
    c.flow_id = flow;
    c.rate_pps = 120;
    c.start = SimTime::from_seconds(1);
    c.stop = SimTime::from_seconds(4.8);
    d.sources.push_back(std::make_unique<traffic::CbrSource>(d.net, c));
  }
  attacks::FalseAccusationAttack::Config fc;
  fc.accusers = {2};
  fc.victim = 1;
  fc.detector = static_cast<std::uint8_t>(obs::TraceSource::kPik2);
  fc.clock = cfg.clock;
  fc.start = SimTime::from_seconds(2.1);
  fc.period = Duration::seconds(1);
  fc.shots = 2;
  fc.forge_evidence = true;
  attacks::FalseAccusationAttack framing(d.net, d.keys, *d.conviction, fc);
  d.run(6.5);

  FramingSnapshot snap;
  for (const Conviction& c : d.conviction->convictions()) {
    snap.convictions.emplace_back(c.accused, c.round, c.basis);
    snap.honest_convicted |= c.accused != 2;
  }
  snap.accusations_accepted = d.conviction->accusations_accepted();
  snap.filed = framing.filed();
  snap.suspicions = engine.suspicions().size();
  return snap;
}

TEST(FramingAcceptance, Pik2FramedHonestRouterNeverConvictedAttackerIs) {
  const FramingSnapshot snap = run_pik2_framing();
  EXPECT_EQ(snap.filed, 2U);
  EXPECT_FALSE(snap.honest_convicted);
  ASSERT_FALSE(snap.convictions.empty());
  EXPECT_EQ(std::get<0>(snap.convictions.front()), 2U);
  EXPECT_EQ(std::get<2>(snap.convictions.front()), "forged-evidence");
  // Clean traffic: the framing never leaks into the detector's own output.
  EXPECT_EQ(snap.suspicions, 0U);
}

TEST(FramingAcceptance, RunTwiceIsDeterministic) {
  EXPECT_EQ(run_pik2_framing(), run_pik2_framing());
}

TEST(FramingAcceptance, Pi2ForgedFloodConvictsForgerNotVictim) {
  // Diamond + Pi2: r2 floods summaries under honest r1's name with a
  // fabricated MAC. Every honest neighbor rejects the copy and votes
  // against the hop that delivered it; the claimed victim stays clean.
  DiamondNet d;
  Pi2Config cfg;
  cfg.clock = RoundClock{SimTime::from_seconds(1), Duration::seconds(1)};
  cfg.k = 1;
  cfg.collect_settle = Duration::millis(150);
  cfg.evaluate_settle = Duration::millis(400);
  cfg.policy = TvPolicy::kContentOrder;
  cfg.thresholds.max_lost_packets = 2;
  cfg.rounds = 4;
  Pi2Engine engine(d.net, d.keys, *d.paths, {0, 3}, cfg);
  engine.set_conviction_engine(d.conviction.get());
  engine.start();
  for (auto [src, dst, flow] :
       {std::tuple<NodeId, NodeId, std::uint32_t>{0, 3, 1}, {3, 0, 2}}) {
    traffic::CbrSource::Config c;
    c.src = src;
    c.dst = dst;
    c.flow_id = flow;
    c.rate_pps = 120;
    c.start = SimTime::from_seconds(1);
    c.stop = SimTime::from_seconds(4.8);
    d.sources.push_back(std::make_unique<traffic::CbrSource>(d.net, c));
  }
  attacks::ForgedControlInjector::Config fc;
  fc.at = 2;
  fc.victim = 1;
  fc.kind = kKindSummaryFlood;
  fc.segment = engine.monitored_by(1).empty() ? routing::PathSegment{0, 1, 3}
                                              : engine.monitored_by(1).front();
  fc.clock = cfg.clock;
  fc.start = SimTime::from_seconds(2.05);
  fc.period = Duration::seconds(1);
  fc.shots = 3;
  attacks::ForgedControlInjector inj(d.net, d.keys, fc);
  d.run(6.5);

  EXPECT_GT(inj.injected(), 0U);
  EXPECT_GT(engine.guard_stats().rejected_bad_mac, 0U);
  EXPECT_FALSE(d.conviction->convicted(1));  // the claimed victim
  for (const Conviction& c : d.conviction->convictions()) {
    EXPECT_EQ(c.accused, 2U) << c.basis;
  }
  // Every suspicion the rejects raised names the forger, precision 1.
  bool forger_named = false;
  for (const Suspicion& s : engine.suspicions()) {
    if (s.segment == routing::PathSegment{2}) forger_named = true;
    EXPECT_FALSE(s.segment.contains(1) && s.segment.length() == 1)
        << "victim suspected alone: " << s.to_string();
  }
  EXPECT_TRUE(forger_named);
}

TEST(FramingAcceptance, ChiLyingNeighborAttributedNotTheOwner) {
  // chi's framing defense: neighbor r0 pads its report with phantom
  // entries to pin "drops" on honest queue owner r1. Every unexplained
  // drop traces to r0's report alone, so suspicions name the {r0, r1}
  // pair — never r1 by itself — and a single witness cannot convict.
  LineNet line{3};
  std::unique_ptr<ConvictionEngine> conviction =
      std::make_unique<ConvictionEngine>(line.net, line.keys);
  ChiConfig cfg;
  cfg.clock = RoundClock{SimTime::origin(), Duration::seconds(1)};
  cfg.settle = Duration::millis(400);
  cfg.grace = Duration::millis(200);
  cfg.learning_rounds = 2;
  cfg.rounds = 6;
  ChiEngine engine(line.net, line.keys, *line.paths, cfg);
  QueueValidator& validator = engine.monitor_queue(1, 2);
  engine.set_conviction_engine(conviction.get());
  const RoundClock clock = cfg.clock;
  validator.set_report_mutator(0, [clock](ChiReport& r) {
    if (r.round < 3 || r.part != 0) return true;
    for (std::uint32_t i = 0; i < 20; ++i) {
      ChiRecord phantom;
      phantom.fp = 0xF00D0000ULL + i;
      phantom.size_bytes = 900;
      phantom.flow_id = 7;
      phantom.ts = clock.interval_of(r.round).begin + Duration::millis(5 * (i + 1));
      r.records.push_back(phantom);
    }
    return true;
  });
  line.add_cbr(0, 2, 1, 250, SimTime::from_seconds(0.05), SimTime::from_seconds(6.9));
  engine.start();
  line.net.sim().run_until(SimTime::from_seconds(8));

  const auto& suspicions = validator.suspicions();
  ASSERT_FALSE(suspicions.empty());
  for (const Suspicion& s : suspicions) {
    EXPECT_TRUE(s.segment.contains(0U)) << "liar not named: " << s.to_string();
  }
  EXPECT_FALSE(conviction->convicted(1));
  EXPECT_TRUE(conviction->convictions().empty());
}

}  // namespace
}  // namespace fatih::detection
