// Shared fixtures for the detection-protocol tests: small static-routed
// networks with deterministic traffic.
#pragma once

#include <memory>
#include <vector>

#include "crypto/keys.hpp"
#include "detection/path_cache.hpp"
#include "routing/install.hpp"
#include "routing/spf.hpp"
#include "sim/network.hpp"
#include "traffic/sources.hpp"

namespace fatih::detection::testing {

inline sim::LinkConfig fast_link() {
  sim::LinkConfig cfg;
  cfg.bandwidth_bps = 1e8;
  cfg.delay = util::Duration::millis(1);
  cfg.queue_limit_bytes = 64000;
  return cfg;
}

/// A line of `n` routers r0 - r1 - ... - r{n-1} with static routes.
struct LineNet {
  sim::Network net;
  crypto::KeyRegistry keys{777};
  std::shared_ptr<routing::RoutingTables> tables;
  std::unique_ptr<PathCache> paths;
  std::vector<std::unique_ptr<traffic::CbrSource>> sources;

  explicit LineNet(std::size_t n, sim::LinkConfig cfg = fast_link(), std::uint64_t seed = 1)
      : net(seed) {
    for (std::size_t i = 0; i < n; ++i) net.add_router("r" + std::to_string(i));
    for (util::NodeId i = 0; i + 1 < n; ++i) net.connect(i, static_cast<util::NodeId>(i + 1), cfg);
    tables = std::make_shared<routing::RoutingTables>(routing::Topology::from_network(net));
    routing::install_static_routes(net, *tables);
    paths = std::make_unique<PathCache>(tables);
    for (util::NodeId i = 0; i < n; ++i) {
      net.router(i).set_processing_delay(util::Duration::micros(20), util::Duration::micros(10));
    }
  }

  [[nodiscard]] std::vector<util::NodeId> terminals() const {
    std::vector<util::NodeId> out;
    for (util::NodeId i = 0; i < net.node_count(); ++i) out.push_back(i);
    return out;
  }

  void add_cbr(util::NodeId src, util::NodeId dst, std::uint32_t flow, double pps,
               util::SimTime start, util::SimTime stop) {
    traffic::CbrSource::Config cfg;
    cfg.src = src;
    cfg.dst = dst;
    cfg.flow_id = flow;
    cfg.rate_pps = pps;
    cfg.start = start;
    cfg.stop = stop;
    sources.push_back(std::make_unique<traffic::CbrSource>(net, cfg));
  }
};

}  // namespace fatih::detection::testing
