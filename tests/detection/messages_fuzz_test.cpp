// Fuzz-style robustness sweeps over the control-message decoders: every
// truncation prefix, every single-byte saturation (0xFF / 0x00), and
// trailing garbage. A malicious router controls these bytes end to end, so
// from_bytes must never crash, never allocate beyond what the input
// admits, and reject strictly — without a fuzzer engine, an exhaustive
// deterministic sweep over the interesting positions covers the same
// ground reproducibly.
#include <gtest/gtest.h>

#include <cstddef>
#include <span>
#include <vector>

#include "detection/messages.hpp"

namespace fatih::detection {
namespace {

SegmentSummary sample_summary() {
  SegmentSummary s;
  s.reporter = 3;
  s.segment = routing::PathSegment{1, 3, 5};
  s.round = 42;
  s.counters.packets = 7;
  s.counters.bytes = 7000;
  s.content = {0x1111, 0x2222, 0x3333, 0x4444};
  return s;
}

SegmentSummary sample_recon_summary() {
  SegmentSummary s = sample_summary();
  s.content.clear();
  s.recon_evals = {9, 8, 7};
  s.bloom_words = {0xAA55AA55, 0x12345678};
  s.bloom_hashes = 3;
  return s;
}

ChiReport sample_report() {
  ChiReport r;
  r.reporter = 0;
  r.queue_owner = 1;
  r.queue_peer = 2;
  r.round = 5;
  r.part = 1;
  r.parts = 3;
  for (std::uint32_t i = 0; i < 6; ++i) {
    ChiRecord rec;
    rec.fp = 0xBEEF00ULL + i;
    rec.size_bytes = 512 + i;
    rec.flow_id = i % 2;
    rec.control = (i == 4);
    rec.ts = util::SimTime::from_seconds(5.0) + util::Duration::millis(i);
    r.records.push_back(rec);
  }
  return r;
}

Accusation sample_accusation() {
  Accusation a;
  a.accuser = 2;
  a.detector = 4;
  a.accused = routing::PathSegment{1, 3};
  a.round = 9;
  a.cause = "equivocation";
  for (int i = 0; i < 2; ++i) {
    crypto::SignedEnvelope env;
    env.signer = 1;
    env.payload = {std::byte{0x01}, std::byte{static_cast<unsigned char>(i)}, std::byte{0x03}};
    env.tag = 0xC0FFEE00u + static_cast<std::uint64_t>(i);
    a.evidence.push_back(std::move(env));
  }
  return a;
}

/// Drives the three sweeps over one codec. Decode is allowed to succeed on
/// a mutated input (the flipped byte may land in a counter value); the
/// invariant is no crash, no unbounded allocation, and — when it does
/// succeed — a self-consistent value that re-encodes and re-decodes.
template <typename T, typename Decode>
void sweep(const T& value, Decode decode) {
  const std::vector<std::byte> wire = value.to_bytes();
  ASSERT_FALSE(wire.empty());

  // Canonical round-trip first: strict decode of the genuine bytes.
  {
    const auto out = decode(std::span<const std::byte>{wire});
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->to_bytes(), wire);
  }

  // 1. Every truncation prefix, including empty.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const auto out = decode(std::span<const std::byte>{wire.data(), len});
    if (out.has_value()) {
      // A shorter valid encoding is possible only if it round-trips.
      EXPECT_EQ(out->to_bytes().size(), len) << "loose decode at prefix " << len;
    }
  }

  // 2. Every byte saturated high and low — hits every length/count field,
  //    exercising the decoder caps against claimed-huge vectors.
  for (const std::byte poison : {std::byte{0xFF}, std::byte{0x00}}) {
    std::vector<std::byte> mutated = wire;
    for (std::size_t pos = 0; pos < mutated.size(); ++pos) {
      const std::byte saved = mutated[pos];
      mutated[pos] = poison;
      const auto out = decode(std::span<const std::byte>{mutated});
      if (out.has_value()) {
        const std::vector<std::byte> re = out->to_bytes();
        EXPECT_EQ(decode(std::span<const std::byte>{re}).has_value(), true)
            << "decoded value does not re-decode, pos " << pos;
      }
      mutated[pos] = saved;
    }
  }

  // 3. Trailing garbage: strict decoders reject oversized payloads.
  for (std::size_t extra : {std::size_t{1}, std::size_t{7}, std::size_t{256}}) {
    std::vector<std::byte> padded = wire;
    padded.insert(padded.end(), extra, std::byte{0xA5});
    EXPECT_FALSE(decode(std::span<const std::byte>{padded}).has_value())
        << "trailing " << extra << " bytes accepted";
  }
}

TEST(MessageFuzz, SegmentSummarySurvivesMutationSweep) {
  sweep(sample_summary(), [](std::span<const std::byte> in) {
    return SegmentSummary::from_bytes(in);
  });
}

TEST(MessageFuzz, ReconciledSummarySurvivesMutationSweep) {
  sweep(sample_recon_summary(), [](std::span<const std::byte> in) {
    return SegmentSummary::from_bytes(in);
  });
}

TEST(MessageFuzz, ChiReportSurvivesMutationSweep) {
  sweep(sample_report(), [](std::span<const std::byte> in) {
    return ChiReport::from_bytes(in);
  });
}

TEST(MessageFuzz, AccusationSurvivesMutationSweep) {
  sweep(sample_accusation(), [](std::span<const std::byte> in) {
    return Accusation::from_bytes(in);
  });
}

TEST(MessageFuzz, ClaimedHugeCountsNeverAllocate) {
  // Hand-build a summary whose element-count field claims 2^20 entries
  // against a few bytes of body; the decoder must bail on the length
  // check before any reserve. The count field position is located by
  // diffing encodings with 0 and 1 content elements.
  SegmentSummary none = sample_summary();
  none.content.clear();
  SegmentSummary one = none;
  one.content.push_back(0x77);
  const auto a = none.to_bytes();
  const auto b = one.to_bytes();
  std::size_t diverge = 0;
  while (diverge < a.size() && diverge < b.size() && a[diverge] == b[diverge]) ++diverge;
  ASSERT_LT(diverge, a.size());

  std::vector<std::byte> forged = a;
  for (std::size_t i = 0; i < 8 && diverge + i < forged.size(); ++i) {
    forged[diverge + i] = std::byte{0xFF};
  }
  EXPECT_FALSE(SegmentSummary::from_bytes(forged).has_value());
}

}  // namespace
}  // namespace fatih::detection
