#include "detection/flood.hpp"

#include <gtest/gtest.h>

#include <map>

#include "routing/topologies.hpp"

namespace fatih::detection {
namespace {

using util::Duration;
using util::NodeId;
using util::SimTime;

struct TestPayload final : sim::ControlPayload {
  std::uint64_t id = 0;
  [[nodiscard]] std::uint16_t kind() const override { return 0x2F01; }
};

struct FloodNet {
  sim::Network net{5};
  std::unique_ptr<FloodService> service;
  std::map<NodeId, std::size_t> deliveries;
  std::map<std::uint64_t, std::size_t> per_payload;

  FloodNet() {
    using namespace fatih::routing;
    for (NodeId n = 0; n <= kNewYork; ++n) net.add_router(abilene_name(n));
    for (const auto& l : abilene_links()) {
      sim::LinkConfig link;
      link.delay = Duration::millis(l.delay_ms);
      net.connect(l.a, l.b, link);
    }
    service = std::make_unique<FloodService>(net, 0x2F01);
    service->set_key_fn([](const sim::ControlPayload& p) {
      return static_cast<const TestPayload&>(p).id;
    });
    service->set_delivery_fn([this](NodeId at, const sim::ControlPayload& p, SimTime) {
      ++deliveries[at];
      ++per_payload[static_cast<const TestPayload&>(p).id];
    });
  }

  void originate(NodeId from, std::uint64_t id) {
    auto payload = std::make_shared<TestPayload>();
    payload->id = id;
    net.sim().schedule_at(net.sim().now(), [this, from, payload] {
      service->originate(from, payload, 64);
    });
  }
};

TEST(FloodService, ReachesEveryRouterExactlyOnce) {
  FloodNet f;
  f.originate(routing::kDenver, 1);
  f.net.sim().run_until(SimTime::from_seconds(1));
  EXPECT_EQ(f.deliveries.size(), 11U);
  for (const auto& [node, count] : f.deliveries) EXPECT_EQ(count, 1U) << node;
}

TEST(FloodService, DistinctPayloadsAllDelivered) {
  FloodNet f;
  f.originate(routing::kSeattle, 1);
  f.originate(routing::kAtlanta, 2);
  f.originate(routing::kAtlanta, 3);
  f.net.sim().run_until(SimTime::from_seconds(1));
  EXPECT_EQ(f.per_payload[1], 11U);
  EXPECT_EQ(f.per_payload[2], 11U);
  EXPECT_EQ(f.per_payload[3], 11U);
}

TEST(FloodService, DuplicateOriginationIgnored) {
  FloodNet f;
  f.originate(routing::kDenver, 7);
  f.originate(routing::kDenver, 7);
  f.net.sim().run_until(SimTime::from_seconds(1));
  EXPECT_EQ(f.per_payload[7], 11U);
}

TEST(FloodService, SurvivesSuppressionWithGoodPaths) {
  // A suppressed router receives but never re-floods; Abilene remains
  // connected around any single router, so everyone else still hears.
  FloodNet f;
  f.service->suppress_at(routing::kKansasCity);
  f.originate(routing::kDenver, 9);
  f.net.sim().run_until(SimTime::from_seconds(1));
  EXPECT_EQ(f.per_payload[9], 11U);
}

}  // namespace
}  // namespace fatih::detection
