#include "detection/flood.hpp"

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "attacks/attacks.hpp"
#include "crypto/keys.hpp"
#include "detection/reliable.hpp"
#include "routing/topologies.hpp"

namespace fatih::detection {
namespace {

using util::Duration;
using util::NodeId;
using util::SimTime;

struct TestPayload final : sim::ControlPayload {
  std::uint64_t id = 0;
  [[nodiscard]] std::uint16_t kind() const override { return 0x2F01; }
};

struct FloodNet {
  sim::Network net{5};
  crypto::KeyRegistry keys{777};
  std::unique_ptr<FloodService> service;
  std::map<NodeId, std::size_t> deliveries;
  std::map<std::uint64_t, std::size_t> per_payload;

  FloodNet() {
    using namespace fatih::routing;
    for (NodeId n = 0; n <= kNewYork; ++n) net.add_router(abilene_name(n));
    for (const auto& l : abilene_links()) {
      sim::LinkConfig link;
      link.delay = Duration::millis(l.delay_ms);
      net.connect(l.a, l.b, link);
    }
    service = std::make_unique<FloodService>(net, 0x2F01);
    service->set_key_fn([](const sim::ControlPayload& p) {
      return static_cast<const TestPayload&>(p).id;
    });
    service->set_delivery_fn([this](NodeId at, const sim::ControlPayload& p, SimTime) {
      ++deliveries[at];
      ++per_payload[static_cast<const TestPayload&>(p).id];
    });
  }

  void originate(NodeId from, std::uint64_t id) {
    auto payload = std::make_shared<TestPayload>();
    payload->id = id;
    net.sim().schedule_at(net.sim().now(), [this, from, payload] {
      service->originate(from, payload, 64);
    });
  }
};

TEST(FloodService, ReachesEveryRouterExactlyOnce) {
  FloodNet f;
  f.originate(routing::kDenver, 1);
  f.net.sim().run_until(SimTime::from_seconds(1));
  EXPECT_EQ(f.deliveries.size(), 11U);
  for (const auto& [node, count] : f.deliveries) EXPECT_EQ(count, 1U) << node;
}

TEST(FloodService, DistinctPayloadsAllDelivered) {
  FloodNet f;
  f.originate(routing::kSeattle, 1);
  f.originate(routing::kAtlanta, 2);
  f.originate(routing::kAtlanta, 3);
  f.net.sim().run_until(SimTime::from_seconds(1));
  EXPECT_EQ(f.per_payload[1], 11U);
  EXPECT_EQ(f.per_payload[2], 11U);
  EXPECT_EQ(f.per_payload[3], 11U);
}

TEST(FloodService, DuplicateOriginationIgnored) {
  FloodNet f;
  f.originate(routing::kDenver, 7);
  f.originate(routing::kDenver, 7);
  f.net.sim().run_until(SimTime::from_seconds(1));
  EXPECT_EQ(f.per_payload[7], 11U);
}

TEST(FloodService, SurvivesSuppressionWithGoodPaths) {
  // A suppressed router receives but never re-floods; Abilene remains
  // connected around any single router, so everyone else still hears.
  FloodNet f;
  f.service->suppress_at(routing::kKansasCity);
  f.originate(routing::kDenver, 9);
  f.net.sim().run_until(SimTime::from_seconds(1));
  EXPECT_EQ(f.per_payload[9], 11U);
}

// A 5-router line (no routes): r2 is a cut vertex, so suppression there
// partitions the flood — the contrast case to Abilene's good paths above.
struct LineFloodNet {
  sim::Network net{5};
  std::unique_ptr<FloodService> service;
  std::map<NodeId, std::size_t> deliveries;

  LineFloodNet() {
    for (int i = 0; i < 5; ++i) net.add_router("r" + std::to_string(i));
    for (NodeId i = 0; i + 1 < 5; ++i) {
      sim::LinkConfig link;
      link.delay = Duration::millis(1);
      net.connect(i, i + 1, link);
    }
    service = std::make_unique<FloodService>(net, 0x2F01);
    service->set_key_fn(
        [](const sim::ControlPayload& p) { return static_cast<const TestPayload&>(p).id; });
    service->set_delivery_fn(
        [this](NodeId at, const sim::ControlPayload&, SimTime) { ++deliveries[at]; });
  }

  void originate(NodeId from, std::uint64_t id) {
    auto payload = std::make_shared<TestPayload>();
    payload->id = id;
    net.sim().schedule_at(net.sim().now(), [this, from, payload] {
      service->originate(from, payload, 64);
    });
  }
};

TEST(FloodService, CutVertexSuppressionPartitionsFlood) {
  LineFloodNet f;
  f.service->suppress_at(2);
  f.originate(0, 1);
  f.net.sim().run_until(SimTime::from_seconds(1));
  // r2 hears (suppression is about re-flooding, not receiving) but r3/r4
  // sit behind the cut vertex and never do: no good path remains.
  EXPECT_EQ(f.deliveries.size(), 3U);
  for (NodeId n : {0U, 1U, 2U}) EXPECT_EQ(f.deliveries[n], 1U) << n;
  EXPECT_FALSE(f.deliveries.contains(3));
  EXPECT_FALSE(f.deliveries.contains(4));
}

TEST(FloodService, ExactlyOnceDeliveryOverReliableChannelUnderLoss) {
  // With hop copies riding the ack/retransmit channel, a 30%-lossy control
  // plane still yields exactly-once delivery at every router, and the
  // channel drains to quiescence.
  FloodNet f;
  ReliableConfig rcfg;
  rcfg.enabled = true;
  rcfg.initial_rto = Duration::millis(25);
  rcfg.min_rto = Duration::millis(10);
  rcfg.max_rto = Duration::millis(100);
  rcfg.max_retries = 7;
  ReliableChannel channel(f.net, f.keys, 0x2F01, rcfg);
  channel.set_key_fn(
      [](const sim::ControlPayload& p) { return static_cast<const TestPayload&>(p).id; });
  f.service->set_channel(&channel);
  attacks::ControlLinkFaults::Config loss;
  loss.drop_fraction = 0.3;
  loss.seed = 42;
  attacks::ControlLinkFaults faults(f.net, loss);
  f.originate(routing::kDenver, 1);
  f.originate(routing::kAtlanta, 2);
  f.originate(routing::kSeattle, 3);
  f.net.sim().run_until(SimTime::from_seconds(4));
  for (std::uint64_t id : {1U, 2U, 3U}) EXPECT_EQ(f.per_payload[id], 11U) << id;
  for (const auto& [node, count] : f.deliveries) EXPECT_EQ(count, 3U) << node;
  EXPECT_GT(channel.stats().retransmits, 0U);
  EXPECT_EQ(channel.stats().failures, 0U);
  EXPECT_EQ(channel.in_flight(), 0U);
}

TEST(FloodService, ReliableLossyFloodIsDeterministic) {
  auto run_once = [] {
    FloodNet f;
    ReliableConfig rcfg;
    rcfg.enabled = true;
    rcfg.max_retries = 7;
    ReliableChannel channel(f.net, f.keys, 0x2F01, rcfg);
    channel.set_key_fn(
        [](const sim::ControlPayload& p) { return static_cast<const TestPayload&>(p).id; });
    f.service->set_channel(&channel);
    attacks::ControlLinkFaults::Config loss;
    loss.drop_fraction = 0.3;
    loss.seed = 42;
    attacks::ControlLinkFaults faults(f.net, loss);
    f.originate(routing::kDenver, 1);
    f.originate(routing::kAtlanta, 2);
    f.net.sim().run_until(SimTime::from_seconds(4));
    const auto& s = channel.stats();
    return std::tuple{s.transmissions, s.retransmits, s.acks_sent, s.acks_received,
                      s.duplicates, f.deliveries};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace fatih::detection
