// Determinism regression: identical seeds must produce byte-identical
// runs. This is the invariant the perf work (pooled event engine, packet
// move-through, flat per-round stores) was required to preserve — tie-break
// order in the event heap and iteration order of every accounting walk are
// all load-bearing for it.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "attacks/attacks.hpp"
#include "crypto/siphash.hpp"
#include "detection/chi.hpp"
#include "detection/pi2.hpp"
#include "detection/pik2.hpp"
#include "tests/detection/churn_net.hpp"
#include "tests/detection/test_net.hpp"

namespace fatih::detection {
namespace {

using testing::ChurnNet;
using testing::LineNet;
using util::Duration;
using util::SimTime;

struct RunResult {
  std::uint64_t events_dispatched = 0;
  std::vector<std::string> suspicions;  // formatted, in raise order
  std::uint64_t rounds_invalidated = 0;
};

/// One full Π2 experiment: 5-router line, bidirectional CBR, a rate-drop
/// attacker at r2 from t=2s, four rounds. Everything seeded; no wall-clock
/// input anywhere.
RunResult run_pi2_fixture() {
  LineNet line{5};
  Pi2Config cfg;
  cfg.clock = RoundClock{SimTime::origin(), Duration::seconds(1)};
  cfg.k = 1;
  cfg.collect_settle = Duration::millis(150);
  cfg.evaluate_settle = Duration::millis(300);
  cfg.policy = TvPolicy::kContentOrder;
  cfg.rounds = 4;
  Pi2Engine engine(line.net, line.keys, *line.paths, line.terminals(), cfg);
  line.add_cbr(0, 4, 1, 200, SimTime::from_seconds(0.05), SimTime::from_seconds(3.9));
  line.add_cbr(4, 0, 2, 150, SimTime::from_seconds(0.05), SimTime::from_seconds(3.9));
  attacks::FlowMatch match;
  match.flow_ids = {1};
  line.net.router(2).set_forward_filter(
      std::make_shared<attacks::RateDropAttack>(match, 1.0, SimTime::from_seconds(2), 99));
  engine.start();
  line.net.sim().run_until(SimTime::from_seconds(6));

  RunResult out;
  out.events_dispatched = line.net.sim().events_dispatched();
  for (const auto& s : engine.suspicions()) out.suspicions.push_back(s.to_string());
  return out;
}

TEST(Determinism, Pi2FixtureTwiceIsByteIdentical) {
  const RunResult a = run_pi2_fixture();
  const RunResult b = run_pi2_fixture();
  // The comparison must not be vacuous: the attack raises suspicions and
  // the run dispatches real work.
  ASSERT_FALSE(a.suspicions.empty());
  ASSERT_GT(a.events_dispatched, 1000U);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  ASSERT_EQ(a.suspicions.size(), b.suspicions.size());
  EXPECT_EQ(a.suspicions, b.suspicions);
}

// The fingerprint pipeline batch-hashes through runtime-dispatched SIMD
// kernels; every tier must produce the same digests, so the dispatch
// level must be invisible to detection. Run the full Π2 experiment once
// per available tier and require byte-identical suspicion sets.
TEST(Determinism, Pi2SuspicionsIdenticalAcrossSimdDispatchLevels) {
  const RunResult baseline = run_pi2_fixture();  // widest tier the CPU has
  ASSERT_FALSE(baseline.suspicions.empty());
  for (const crypto::SimdLevel cap :
       {crypto::SimdLevel::kScalar, crypto::SimdLevel::kSse2, crypto::SimdLevel::kAvx2}) {
    const crypto::SimdLevel old = crypto::set_simd_level_cap(cap);
    if (crypto::simd_level() != cap) {  // tier not available on this CPU/build
      crypto::set_simd_level_cap(old);
      continue;
    }
    const RunResult r = run_pi2_fixture();
    crypto::set_simd_level_cap(old);
    EXPECT_EQ(r.events_dispatched, baseline.events_dispatched)
        << "dispatch level " << static_cast<int>(cap);
    EXPECT_EQ(r.suspicions, baseline.suspicions) << "dispatch level " << static_cast<int>(cap);
  }
}

/// The churn diamond with live link-state routing, a flapping link, and an
/// attacker — the most event-entangled fixture in the suite (hello timers,
/// LSA floods, SPF runs, epoch pushes, round invalidation all interleave
/// with data traffic). Shared by the Πk+2 and χ run-twice checks below.
struct ChurnHarness {
  ChurnNet n;
  ChurnHarness() {
    n.add_cbr(0, 2, 1, 400, 2.05, 13.5);
    attacks::FlowMatch match;
    match.flow_ids = {1};
    n.net.router(1).set_forward_filter(
        std::make_shared<attacks::RateDropAttack>(match, 0.3, SimTime::from_seconds(5.5), 99));
    ChurnNet::flap_schedule().arm(n.net);
  }
  void run() { n.net.sim().run_until(SimTime::from_seconds(14)); }
};

RunResult run_pik2_churn_fixture() {
  ChurnHarness h;
  Pik2Config cfg;
  cfg.clock = ChurnNet::clock();
  cfg.k = 1;
  cfg.collect_settle = Duration::millis(150);
  cfg.exchange_timeout = Duration::millis(500);
  cfg.policy = TvPolicy::kContentOrder;
  cfg.rounds = 10;
  Pik2Engine engine(h.n.net, h.n.keys, *h.n.paths, ChurnNet::terminals(), cfg);
  engine.start();
  h.run();

  RunResult out;
  out.events_dispatched = h.n.net.sim().events_dispatched();
  for (const auto& s : engine.suspicions()) out.suspicions.push_back(s.to_string());
  out.rounds_invalidated = engine.rounds_invalidated();
  return out;
}

RunResult run_chi_churn_fixture() {
  ChurnHarness h;
  ChiConfig cfg;
  cfg.clock = ChurnNet::clock();
  cfg.settle = Duration::millis(400);
  cfg.grace = Duration::millis(200);
  cfg.learning_rounds = 3;
  cfg.rounds = 10;
  QueueValidator v(h.n.net, h.n.keys, *h.n.paths, 1, 2, cfg);
  v.start();
  h.run();

  RunResult out;
  out.events_dispatched = h.n.net.sim().events_dispatched();
  for (const auto& s : v.suspicions()) out.suspicions.push_back(s.to_string());
  out.rounds_invalidated = v.rounds_invalidated();
  return out;
}

TEST(Determinism, Pik2ChurnFixtureTwiceIsByteIdentical) {
  const RunResult a = run_pik2_churn_fixture();
  const RunResult b = run_pik2_churn_fixture();
  // Non-vacuous: the attacker is caught AND the flap invalidated rounds.
  ASSERT_FALSE(a.suspicions.empty());
  ASSERT_GT(a.rounds_invalidated, 0U);
  ASSERT_GT(a.events_dispatched, 1000U);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.suspicions, b.suspicions);
  EXPECT_EQ(a.rounds_invalidated, b.rounds_invalidated);
}

TEST(Determinism, ChiChurnFixtureTwiceIsByteIdentical) {
  const RunResult a = run_chi_churn_fixture();
  const RunResult b = run_chi_churn_fixture();
  ASSERT_FALSE(a.suspicions.empty());
  ASSERT_GT(a.rounds_invalidated, 0U);
  ASSERT_GT(a.events_dispatched, 1000U);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.suspicions, b.suspicions);
  EXPECT_EQ(a.rounds_invalidated, b.rounds_invalidated);
}

}  // namespace
}  // namespace fatih::detection
