#include "detection/threshold.hpp"

#include <gtest/gtest.h>

#include "attacks/attacks.hpp"
#include "routing/install.hpp"
#include "traffic/sources.hpp"
#include "traffic/tcp.hpp"

namespace fatih::detection {
namespace {

using util::Duration;
using util::NodeId;
using util::SimTime;

struct ThreshNet {
  sim::Network net;
  crypto::KeyRegistry keys{555};
  std::shared_ptr<routing::RoutingTables> tables;
  std::unique_ptr<PathCache> paths;
  std::vector<std::unique_ptr<traffic::CbrSource>> cbr;
  std::vector<std::unique_ptr<traffic::OnOffSource>> onoff;
  NodeId s1, s2, r, rd;

  explicit ThreshNet(std::uint64_t seed = 21) : net(seed) {
    s1 = net.add_router("s1").id();
    s2 = net.add_router("s2").id();
    r = net.add_router("r").id();
    rd = net.add_router("rd").id();
    sim::LinkConfig edge;
    edge.bandwidth_bps = 1e8;
    edge.delay = Duration::millis(1);
    sim::LinkConfig core;
    core.bandwidth_bps = 1e7;
    core.delay = Duration::millis(2);
    core.queue_limit_bytes = 50000;
    net.connect(s1, r, edge);
    net.connect(s2, r, edge);
    net.connect(r, rd, core);
    tables = std::make_shared<routing::RoutingTables>(routing::Topology::from_network(net));
    routing::install_static_routes(net, *tables);
    paths = std::make_unique<PathCache>(tables);
  }
};

ThresholdConfig config_with(std::uint64_t threshold, std::int64_t rounds = 10) {
  ThresholdConfig cfg;
  cfg.clock = RoundClock{SimTime::origin(), Duration::seconds(1)};
  cfg.settle = Duration::millis(400);
  cfg.loss_threshold = threshold;
  cfg.rounds = rounds;
  return cfg;
}

void add_congestion(ThreshNet& n, double stop) {
  traffic::CbrSource::Config c;
  c.src = n.s1;
  c.dst = n.rd;
  c.flow_id = 1;
  c.rate_pps = 600;
  c.start = SimTime::from_seconds(0.05);
  c.stop = SimTime::from_seconds(stop);
  n.cbr.push_back(std::make_unique<traffic::CbrSource>(n.net, c));
  traffic::OnOffSource::Config o;
  o.src = n.s2;
  o.dst = n.rd;
  o.flow_id = 2;
  o.on_rate_pps = 1400;
  o.mean_on = Duration::millis(150);
  o.mean_off = Duration::millis(250);
  o.start = SimTime::from_seconds(0.05);
  o.stop = SimTime::from_seconds(stop);
  n.onoff.push_back(std::make_unique<traffic::OnOffSource>(n.net, o));
}

TEST(Threshold, CleanTrafficNoAlarm) {
  ThreshNet n;
  traffic::CbrSource::Config c;
  c.src = n.s1;
  c.dst = n.rd;
  c.flow_id = 1;
  c.rate_pps = 300;
  c.start = SimTime::from_seconds(0.05);
  c.stop = SimTime::from_seconds(9.5);
  n.cbr.push_back(std::make_unique<traffic::CbrSource>(n.net, c));
  ThresholdDetector det(n.net, n.keys, *n.paths, n.r, n.rd, config_with(10));
  det.start();
  n.net.sim().run_until(SimTime::from_seconds(12));
  EXPECT_TRUE(det.suspicions().empty());
}

TEST(Threshold, LowThresholdFalsePositivesUnderCongestion) {
  // §6.4.3 first horn: a threshold tight enough to catch subtle attacks
  // cries wolf under ordinary congestion.
  ThreshNet n;
  add_congestion(n, 9.5);
  ThresholdDetector det(n.net, n.keys, *n.paths, n.r, n.rd, config_with(10));
  det.start();
  n.net.sim().run_until(SimTime::from_seconds(12));
  EXPECT_FALSE(det.suspicions().empty());  // false positives, nothing is malicious
}

TEST(Threshold, HighThresholdSilentUnderCongestion) {
  ThreshNet n;
  add_congestion(n, 9.5);
  ThresholdDetector det(n.net, n.keys, *n.paths, n.r, n.rd, config_with(500));
  det.start();
  n.net.sim().run_until(SimTime::from_seconds(12));
  EXPECT_TRUE(det.suspicions().empty());
}

TEST(Threshold, HighThresholdMissesSynAttack) {
  // §6.4.3 second horn: the congestion-safe threshold waves the focused
  // attack straight through.
  ThreshNet n;
  add_congestion(n, 11.5);
  ThresholdDetector det(n.net, n.keys, *n.paths, n.r, n.rd, config_with(500, 11));
  det.start();
  attacks::FlowMatch match;
  match.syn_only = true;
  n.net.router(n.r).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 1.0, SimTime::from_seconds(4), 9));
  traffic::TcpFlow tcp(n.net, n.s2, n.rd, 50, {});
  tcp.start(SimTime::from_seconds(5.0));
  n.net.sim().run_until(SimTime::from_seconds(13));
  EXPECT_FALSE(tcp.connected());          // the attack succeeded...
  EXPECT_TRUE(det.suspicions().empty());  // ...and went undetected
}

TEST(Threshold, DetectsBulkDropper) {
  ThreshNet n;
  traffic::CbrSource::Config c;
  c.src = n.s1;
  c.dst = n.rd;
  c.flow_id = 1;
  c.rate_pps = 300;
  c.start = SimTime::from_seconds(0.05);
  c.stop = SimTime::from_seconds(9.5);
  n.cbr.push_back(std::make_unique<traffic::CbrSource>(n.net, c));
  ThresholdDetector det(n.net, n.keys, *n.paths, n.r, n.rd, config_with(50));
  det.start();
  attacks::FlowMatch match;
  match.flow_ids = {1};
  n.net.router(n.r).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 0.5, SimTime::from_seconds(4), 9));
  n.net.sim().run_until(SimTime::from_seconds(12));
  EXPECT_FALSE(det.suspicions().empty());
}

TEST(Threshold, RoundStatsTrackLosses) {
  ThreshNet n;
  add_congestion(n, 7.5);
  ThresholdDetector det(n.net, n.keys, *n.paths, n.r, n.rd, config_with(100000, 7));
  det.start();
  n.net.sim().run_until(SimTime::from_seconds(9));
  ASSERT_GE(det.rounds().size(), 7U);
  std::uint64_t total_lost = 0;
  for (const auto& rs : det.rounds()) total_lost += rs.lost;
  EXPECT_GT(total_lost, 0U);
}

}  // namespace
}  // namespace fatih::detection
