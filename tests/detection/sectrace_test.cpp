#include "detection/sectrace.hpp"

#include <gtest/gtest.h>

#include "attacks/attacks.hpp"
#include "detection/spec.hpp"
#include "tests/detection/test_net.hpp"

namespace fatih::detection {
namespace {

using testing::LineNet;
using util::Duration;
using util::SimTime;

struct SecTraceFixture {
  LineNet line{5};  // a(0) b(1) c(2) d(3) e(4), matching Fig. 3.7
  routing::Path path{0, 1, 2, 3, 4};
  std::unique_ptr<SecTraceDetector> detector;

  SecTraceFixture() {
    SecTraceConfig cfg;
    cfg.clock = RoundClock{SimTime::origin(), Duration::seconds(1)};
    cfg.collect_settle = Duration::millis(150);
    cfg.reply_timeout = Duration::millis(300);
    cfg.flow_id = 1;
    detector = std::make_unique<SecTraceDetector>(line.net, line.keys, *line.paths, path, cfg);
    line.add_cbr(0, 4, 1, 200, SimTime::from_seconds(0.05), SimTime::from_seconds(14.9));
    detector->start();
  }

  void run(double seconds) { line.net.sim().run_until(SimTime::from_seconds(seconds)); }
};

TEST(SecTrace, CleanPathValidatesToTheEnd) {
  SecTraceFixture f;
  f.run(8.0);
  EXPECT_TRUE(f.detector->suspicions().empty());
  EXPECT_TRUE(f.detector->completed_pass());
}

TEST(SecTrace, AdvancesOneHopPerRound) {
  SecTraceFixture f;
  f.run(2.5);  // rounds 0 and 1 evaluated
  EXPECT_EQ(f.detector->current_target(), 3U);
}

TEST(SecTrace, PersistentDropperLocated) {
  // A dropper active from the start fails validation at the first hop
  // whose prefix covers it.
  SecTraceFixture f;
  GroundTruth truth;
  truth.mark_traffic_faulty(2, SimTime::origin());
  attacks::FlowMatch match;
  match.flow_ids = {1};
  f.line.net.router(2).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 0.5, SimTime::origin(), 7));
  f.run(6.0);
  ASSERT_FALSE(f.detector->suspicions().empty());
  // Validation of prefix <a,b,c> succeeds (c still receives everything);
  // prefix <a,b,c,d> fails -> suspect <c,d>, which contains... only
  // correct d and c? No: c is faulty and IS in <c,d>. Accurate here.
  EXPECT_TRUE(check_accuracy(f.detector->suspicions(), truth, 2).accuracy_holds());
  EXPECT_TRUE(check_completeness_for(f.detector->suspicions(), 2));
}

TEST(SecTrace, WellTimedAttackerFramesDownstreamPair) {
  // Fig. 3.7: b (=1) behaves while the source validates up to c, then
  // starts dropping once the probe target moves to d. The source's
  // attribution rule blames <c, d> — two correct routers. The
  // dissertation: "this approach violates the accuracy property."
  SecTraceFixture f;
  GroundTruth truth;
  truth.mark_traffic_faulty(1, SimTime::from_seconds(2));

  // Round 0 validates b (target 1), round 1 validates c (target 2),
  // round 2 validates d (target 3). b attacks from t=2s (during round 2).
  attacks::FlowMatch match;
  match.flow_ids = {1};
  f.line.net.router(1).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 0.6, SimTime::from_seconds(2), 7));
  f.run(4.0);

  ASSERT_FALSE(f.detector->suspicions().empty());
  bool framed = false;
  for (const auto& s : f.detector->suspicions()) {
    if (s.segment == (routing::PathSegment{2, 3})) framed = true;
  }
  EXPECT_TRUE(framed);
  EXPECT_FALSE(check_accuracy(f.detector->suspicions(), truth, 2).accuracy_holds());
}

TEST(SecTrace, MissingReplySuspected) {
  // An intermediate that swallows the probe reply is itself implicated.
  SecTraceFixture f;
  struct ReplyDrop final : sim::ForwardFilter {
    sim::ForwardDecision on_forward(const sim::Packet& p, util::NodeId, const sim::Interface&,
                                    sim::Router&) override {
      if (p.control != nullptr && p.control->kind() == kKindSecTraceSummary) {
        return sim::ForwardDecision::drop();
      }
      return sim::ForwardDecision::forward();
    }
  };
  f.line.net.router(1).set_forward_filter(std::make_shared<ReplyDrop>());
  f.run(3.0);
  ASSERT_FALSE(f.detector->suspicions().empty());
  EXPECT_EQ(f.detector->suspicions().front().cause, "sectrace-no-reply");
}

TEST(SecTrace, RestartsSweepAfterSuspicion) {
  SecTraceFixture f;
  attacks::FlowMatch match;
  match.flow_ids = {1};
  f.line.net.router(2).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 1.0, SimTime::origin(), 7));
  f.run(9.0);
  // After each detection the sweep restarts at hop 1 and re-detects: the
  // cycle is validate b, validate c (the drop happens after c receives),
  // fail at d. Over 9 rounds that is at least two detections.
  EXPECT_GE(f.detector->suspicions().size(), 2U);
  EXPECT_LE(f.detector->current_target(), 3U);
  EXPECT_FALSE(f.detector->completed_pass());
}

}  // namespace
}  // namespace fatih::detection
