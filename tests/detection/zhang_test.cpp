#include "detection/zhang.hpp"

#include <gtest/gtest.h>

#include "attacks/attacks.hpp"
#include "routing/install.hpp"
#include "traffic/sources.hpp"

namespace fatih::detection {
namespace {

using util::Duration;
using util::NodeId;
using util::SimTime;

struct ZhangNet {
  sim::Network net{33};
  crypto::KeyRegistry keys{12};
  std::shared_ptr<routing::RoutingTables> tables;
  std::unique_ptr<PathCache> paths;
  std::vector<std::unique_ptr<traffic::PoissonSource>> poisson;
  std::vector<std::unique_ptr<traffic::OnOffSource>> onoff;
  NodeId s1, s2, r, rd;

  ZhangNet() {
    s1 = net.add_router("s1").id();
    s2 = net.add_router("s2").id();
    r = net.add_router("r").id();
    rd = net.add_router("rd").id();
    sim::LinkConfig edge;
    edge.bandwidth_bps = 1e8;
    edge.delay = Duration::millis(1);
    sim::LinkConfig core;
    core.bandwidth_bps = 1e7;
    core.delay = Duration::millis(2);
    core.queue_limit_bytes = 50000;
    net.connect(s1, r, edge);
    net.connect(s2, r, edge);
    net.connect(r, rd, core);
    tables = std::make_shared<routing::RoutingTables>(routing::Topology::from_network(net));
    routing::install_static_routes(net, *tables);
    paths = std::make_unique<PathCache>(tables);
  }

  void add_poisson(NodeId src, std::uint32_t flow, double pps, double stop) {
    traffic::PoissonSource::Config c;
    c.src = src;
    c.dst = rd;
    c.flow_id = flow;
    c.mean_rate_pps = pps;
    c.start = SimTime::from_seconds(0.05);
    c.stop = SimTime::from_seconds(stop);
    poisson.push_back(std::make_unique<traffic::PoissonSource>(net, c));
  }

  void add_onoff(NodeId src, std::uint32_t flow, double pps, double stop) {
    traffic::OnOffSource::Config c;
    c.src = src;
    c.dst = rd;
    c.flow_id = flow;
    c.on_rate_pps = pps;
    c.mean_on = Duration::millis(150);
    c.mean_off = Duration::millis(250);
    c.start = SimTime::from_seconds(0.05);
    c.stop = SimTime::from_seconds(stop);
    onoff.push_back(std::make_unique<traffic::OnOffSource>(net, c));
  }
};

ZhangConfig zhang_config(std::int64_t rounds) {
  ZhangConfig cfg;
  cfg.clock = RoundClock{SimTime::origin(), Duration::seconds(1)};
  cfg.rounds = rounds;
  return cfg;
}

TEST(Zhang, CleanPoissonTrafficNoAlarms) {
  // When the traffic really is Poisson, the model holds and stays quiet.
  ZhangNet n;
  n.add_poisson(n.s1, 1, 500, 11.5);
  n.add_poisson(n.s2, 2, 400, 11.5);
  ZhangDetector det(n.net, n.keys, *n.paths, n.r, n.rd, zhang_config(11));
  det.start();
  n.net.sim().run_until(SimTime::from_seconds(13));
  EXPECT_GT(det.fitted_rate(), 700.0);
  EXPECT_TRUE(det.suspicions().empty());
}

TEST(Zhang, DetectsBlatantDropper) {
  ZhangNet n;
  n.add_poisson(n.s1, 1, 500, 11.5);
  ZhangDetector det(n.net, n.keys, *n.paths, n.r, n.rd, zhang_config(11));
  det.start();
  attacks::FlowMatch match;
  match.flow_ids = {1};
  n.net.router(n.r).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 0.3, SimTime::from_seconds(5), 8));
  n.net.sim().run_until(SimTime::from_seconds(13));
  EXPECT_FALSE(det.suspicions().empty());
}

TEST(Zhang, FalsePositivesUnderBurstyTraffic) {
  // The dissertation's critique of model-based prediction (§6.1.2): bursty
  // arrivals overflow the queue far beyond what a Poisson fit of the same
  // mean predicts — ZHANG cries wolf where Protocol chi stays silent
  // (chi_test.cpp's NoAttackNoAlarmsDespiteCongestion).
  ZhangNet n;
  n.add_poisson(n.s1, 1, 400, 15.5);
  n.add_onoff(n.s2, 2, 1600, 15.5);
  ZhangDetector det(n.net, n.keys, *n.paths, n.r, n.rd, zhang_config(15));
  det.start();
  n.net.sim().run_until(SimTime::from_seconds(17));
  // No attack anywhere, yet the Poisson threshold alarms.
  EXPECT_FALSE(det.suspicions().empty());
}

TEST(Zhang, PredictionScalesWithLoad) {
  ZhangNet n;
  n.add_poisson(n.s1, 1, 1150, 9.5);  // rho ~ 0.92: visible blocking
  ZhangDetector det(n.net, n.keys, *n.paths, n.r, n.rd, zhang_config(9));
  det.start();
  n.net.sim().run_until(SimTime::from_seconds(11));
  bool some_prediction = false;
  for (const auto& rs : det.rounds()) {
    if (rs.predicted_loss > 0.01) some_prediction = true;
  }
  EXPECT_TRUE(some_prediction);
}

}  // namespace
}  // namespace fatih::detection
