#include "detection/reliable.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "attacks/attacks.hpp"
#include "detection/chi.hpp"
#include "detection/pi2.hpp"
#include "detection/pik2.hpp"
#include "detection/spec.hpp"
#include "obs/metrics.hpp"
#include "tests/detection/test_net.hpp"

namespace fatih::detection {
namespace {

using testing::LineNet;
using util::Duration;
using util::NodeId;
using util::SimTime;

constexpr std::uint16_t kTestKind = 0x2F10;

struct MsgPayload final : sim::ControlPayload {
  std::uint64_t id = 0;
  [[nodiscard]] std::uint16_t kind() const override { return kTestKind; }
};

ReliableConfig fast_reliable() {
  ReliableConfig cfg;
  cfg.enabled = true;
  cfg.initial_rto = Duration::millis(25);
  cfg.min_rto = Duration::millis(10);
  cfg.max_rto = Duration::millis(100);
  cfg.max_retries = 7;
  return cfg;
}

attacks::ControlLinkFaults::Config uniform_control_loss(double fraction,
                                                        std::uint64_t seed = 42) {
  attacks::ControlLinkFaults::Config cfg;
  cfg.drop_fraction = fraction;
  cfg.seed = seed;
  return cfg;
}

/// A 3-router line with static routes and one channel for kTestKind.
struct ChannelHarness {
  LineNet line{3};
  std::unique_ptr<ReliableChannel> channel;
  std::map<std::pair<NodeId, std::uint64_t>, int> delivered;
  std::vector<std::uint64_t> failed;

  explicit ChannelHarness(ReliableConfig cfg = fast_reliable()) {
    channel = std::make_unique<ReliableChannel>(line.net, line.keys, kTestKind, cfg);
    channel->set_key_fn(
        [](const sim::ControlPayload& p) { return static_cast<const MsgPayload&>(p).id; });
    channel->set_delivery_fn([this](NodeId at, const sim::ControlPayload& p, SimTime) {
      ++delivered[{at, static_cast<const MsgPayload&>(p).id}];
    });
    channel->set_failure_fn([this](NodeId, NodeId, const sim::ControlPayload& p, SimTime) {
      failed.push_back(static_cast<const MsgPayload&>(p).id);
    });
  }

  void send_at(double t, NodeId from, NodeId to, std::uint64_t id) {
    line.net.sim().schedule_at(SimTime::from_seconds(t), [this, from, to, id] {
      auto payload = std::make_shared<MsgPayload>();
      payload->id = id;
      channel->send(from, to, payload, 64);
    });
  }

  void run(double seconds = 5.0) {
    line.net.sim().run_until(SimTime::from_seconds(seconds));
  }
};

TEST(ReliableChannel, CleanDeliveryNeedsNoRetransmit) {
  ChannelHarness h;
  for (std::uint64_t i = 0; i < 5; ++i) h.send_at(0.1 * (1.0 + i), 0, 2, i);
  h.run();
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ((h.delivered[{2, i}]), 1) << i;
  EXPECT_EQ(h.channel->stats().messages, 5U);
  EXPECT_EQ(h.channel->stats().transmissions, 5U);
  EXPECT_EQ(h.channel->stats().retransmits, 0U);
  EXPECT_EQ(h.channel->stats().failures, 0U);
  EXPECT_EQ(h.channel->stats().acks_received, 5U);
  EXPECT_EQ(h.channel->in_flight(), 0U);
  EXPECT_TRUE(h.failed.empty());
}

TEST(ReliableChannel, RetransmitsThroughHeavyLoss) {
  ChannelHarness h;
  attacks::ControlLinkFaults faults(h.line.net, uniform_control_loss(0.4));
  for (std::uint64_t i = 0; i < 20; ++i) h.send_at(0.1 + 0.05 * i, 0, 1, i);
  h.run(6.0);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ((h.delivered[{1, i}]), 1) << i;
  EXPECT_GT(h.channel->stats().retransmits, 0U);
  EXPECT_EQ(h.channel->in_flight(), 0U);
}

TEST(ReliableChannel, RetryBudgetExhaustionReportsFailure) {
  ChannelHarness h;
  attacks::ControlLinkFaults faults(h.line.net, uniform_control_loss(1.0));
  h.send_at(0.1, 0, 1, 77);
  h.run(4.0);
  EXPECT_TRUE(h.delivered.empty());
  ASSERT_EQ(h.failed.size(), 1U);
  EXPECT_EQ(h.failed[0], 77U);
  // One first send plus the full retry budget, then the channel gave up.
  EXPECT_EQ(h.channel->stats().transmissions, 1U + h.channel->config().max_retries);
  EXPECT_EQ(h.channel->stats().failures, 1U);
  EXPECT_EQ(h.channel->in_flight(), 0U);
}

TEST(ReliableChannel, AckOnlyLossDeliversExactlyOnce) {
  // The adversary suppresses only the acknowledgements: retransmissions
  // keep arriving, but receiver-side dedup must deliver each id once, and
  // acking every copy must eventually settle the sender.
  ChannelHarness h;
  auto loss = uniform_control_loss(0.5);
  loss.match.kinds = {kKindControlAck};
  attacks::ControlLinkFaults faults(h.line.net, loss);
  for (std::uint64_t i = 0; i < 10; ++i) h.send_at(0.1 + 0.05 * i, 0, 1, i);
  h.run(6.0);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ((h.delivered[{1, i}]), 1) << i;
  EXPECT_GT(h.channel->stats().duplicates, 0U);
  EXPECT_EQ(h.channel->stats().failures, 0U);
  EXPECT_EQ(h.channel->in_flight(), 0U);
}

TEST(ReliableChannel, AckArrivingAfterRetryExhaustionIsStale) {
  // Acks crawl: every ack is held back 2 s, far beyond the whole retry
  // schedule. The sender exhausts its budget and reports a failure even
  // though every copy was DELIVERED — the documented ambiguity of a
  // one-way failure report. When the crawling acks finally land, the
  // pending entry is long gone: they must hit the stale-ack early return,
  // not resurrect state or double-count.
  ReliableConfig cfg = fast_reliable();
  cfg.jitter = 0.0;
  cfg.max_retries = 2;
  ChannelHarness h(cfg);
  auto faults = uniform_control_loss(0.0);
  faults.match.kinds = {kKindControlAck};
  faults.delay_fraction = 1.0;
  faults.delay = Duration::seconds(2);
  attacks::ControlLinkFaults injector(h.line.net, faults);
  h.send_at(0.1, 0, 1, 9);
  h.run(5.0);  // well past the delayed-ack arrivals
  EXPECT_EQ((h.delivered[{1, 9}]), 1);  // payload got through, once
  ASSERT_EQ(h.failed.size(), 1U);       // ... but the sender gave up first
  const auto& s = h.channel->stats();
  EXPECT_EQ(s.transmissions, 1U + cfg.max_retries);
  EXPECT_EQ(s.failures, 1U);
  EXPECT_GE(s.acks_sent, 1U);
  // The late acks found nothing pending: none settled a send.
  EXPECT_EQ(s.acks_received, 0U);
  EXPECT_EQ(h.channel->in_flight(), 0U);
}

TEST(ReliableChannel, BackoffCapsAtMaxRto) {
  // Total loss, zero jitter: the retransmit times are exactly the backoff
  // schedule, and the exponential doubling must clamp at max_rto.
  ReliableConfig cfg = fast_reliable();  // rto 25 ms, cap 100 ms
  cfg.jitter = 0.0;
  ChannelHarness h(cfg);
  attacks::ControlLinkFaults injector(h.line.net, uniform_control_loss(1.0));
  std::vector<SimTime> sends;
  h.line.net.router(0).interface_to(1)->add_transmit_tap(
      [&](const sim::Packet& p, SimTime at) {
        if (p.control != nullptr && p.control->kind() == kTestKind) sends.push_back(at);
      });
  h.send_at(0.1, 0, 1, 4);
  h.run(3.0);
  ASSERT_EQ(sends.size(), 1U + cfg.max_retries);
  // Gaps: 25, 50, then pinned to the 100 ms cap.
  EXPECT_EQ(sends[1] - sends[0], Duration::millis(25));
  EXPECT_EQ(sends[2] - sends[1], Duration::millis(50));
  for (std::size_t i = 3; i < sends.size(); ++i) {
    EXPECT_EQ(sends[i] - sends[i - 1], cfg.max_rto) << "gap " << i;
  }
}

TEST(ReliableChannel, DuplicateAckSettlesOnceThenIgnored) {
  // Acks are delayed to 30 ms while the RTO is 25 ms: the sender
  // retransmits once, the receiver dedups the copy but (by design) acks
  // it anyway, so TWO acks for the same key come home. The first settles
  // the send; the second must take the stale-ack path.
  ReliableConfig cfg = fast_reliable();
  cfg.jitter = 0.0;
  ChannelHarness h(cfg);
  auto faults = uniform_control_loss(0.0);
  faults.match.kinds = {kKindControlAck};
  faults.delay_fraction = 1.0;
  faults.delay = Duration::millis(30);
  attacks::ControlLinkFaults injector(h.line.net, faults);
  h.send_at(0.1, 0, 1, 6);
  h.run(2.0);
  EXPECT_EQ((h.delivered[{1, 6}]), 1);
  const auto& s = h.channel->stats();
  EXPECT_EQ(s.retransmits, 1U);
  EXPECT_EQ(s.duplicates, 1U);
  EXPECT_EQ(s.acks_sent, 2U);
  EXPECT_EQ(s.acks_received, 1U);  // only the first ack settled anything
  EXPECT_EQ(s.failures, 0U);
  EXPECT_EQ(h.channel->in_flight(), 0U);
}

TEST(ReliableChannel, SpoofedAckCannotSettleExchange) {
  // The payload path 0 -> 2 is fully blocked, so ONLY an ack could make the
  // exchange look delivered. A malicious r1 spoofs acks claiming r2
  // received the message — one with a garbage tag, one MAC'd under r1's
  // own pairwise key. Neither verifies under (acker=2, addressee=0): the
  // sender must keep retransmitting to budget exhaustion and report the
  // failure, never a phantom delivery.
  ChannelHarness h;
  auto loss = uniform_control_loss(1.0);
  loss.match.kinds = {kTestKind};
  attacks::ControlLinkFaults faults(h.line.net, loss);
  h.send_at(0.1, 0, 2, 5);
  for (double t : {0.15, 0.3, 0.6}) {
    h.line.net.sim().schedule_at(SimTime::from_seconds(t), [&h] {
      const auto forge = [&h](crypto::MacTag tag) {
        auto ack = std::make_shared<ControlAckPayload>();
        ack->acked_kind = kTestKind;
        ack->msg_key = 5;
        ack->acker = 2;
        ack->tag = tag;
        sim::PacketHeader hdr;
        hdr.src = 2;  // spoofed source address, to match the claimed acker
        hdr.dst = 0;
        hdr.proto = sim::Protocol::kControl;
        sim::Packet p = h.line.net.make_packet(hdr, 48);
        p.control = std::move(ack);
        h.line.net.router(1).interface_to(0)->send(p);
      };
      forge(0xBADC0DE);
      forge(ack_tag(h.line.keys, kTestKind, 5, 1, 0));  // r1's own key, wrong identity
    });
  }
  h.run(4.0);
  const auto& s = h.channel->stats();
  EXPECT_TRUE(h.delivered.empty());
  EXPECT_EQ(s.acks_rejected, 6U);  // every forged ack counted and dropped
  EXPECT_EQ(s.acks_received, 0U);  // none settled the pending send
  EXPECT_EQ(s.failures, 1U);
  EXPECT_EQ(s.transmissions, 1U + h.channel->config().max_retries);
  EXPECT_EQ(h.channel->in_flight(), 0U);
}

TEST(ReliableChannel, GenuineAckSettlesDespiteSpoofingNoise) {
  // Same spoofing, healthy network: the genuine receiver's MAC-valid ack
  // settles the exchange exactly once while the forgeries only bump the
  // reject counter.
  ChannelHarness h;
  h.send_at(0.1, 0, 2, 9);
  h.line.net.sim().schedule_at(SimTime::from_seconds(0.11), [&h] {
    auto ack = std::make_shared<ControlAckPayload>();
    ack->acked_kind = kTestKind;
    ack->msg_key = 9;
    ack->acker = 2;
    ack->tag = 0xFEEDFACE;
    sim::PacketHeader hdr;
    hdr.src = 2;
    hdr.dst = 0;
    hdr.proto = sim::Protocol::kControl;
    sim::Packet p = h.line.net.make_packet(hdr, 48);
    p.control = std::move(ack);
    h.line.net.router(1).interface_to(0)->send(p);
  });
  h.run(2.0);
  const auto& s = h.channel->stats();
  EXPECT_EQ((h.delivered[{2, 9}]), 1);
  EXPECT_EQ(s.acks_rejected, 1U);
  EXPECT_EQ(s.acks_received, 1U);
  EXPECT_EQ(s.failures, 0U);
  EXPECT_EQ(h.channel->in_flight(), 0U);
}

#if FATIH_TRACE
TEST(ReliableChannel, RegistryCountersMirrorChannelStats) {
  // The observability layer counts what the channel counts: after a lossy
  // run, every reliable.* registry counter equals the Stats field the
  // channel kept itself.
  ChannelHarness h;
  obs::MetricsRegistry metrics;
  h.line.net.attach_observability(nullptr, &metrics);
  attacks::ControlLinkFaults faults(h.line.net, uniform_control_loss(0.4));
  for (std::uint64_t i = 0; i < 20; ++i) h.send_at(0.1 + 0.05 * i, 0, 2, i);
  h.run(6.0);
  const auto& s = h.channel->stats();
  EXPECT_GT(s.retransmits, 0U);  // the fault script really bit
  EXPECT_EQ(metrics.counter_value("reliable.messages"), s.messages);
  EXPECT_EQ(metrics.counter_value("reliable.transmissions"), s.transmissions);
  EXPECT_EQ(metrics.counter_value("reliable.retransmits"), s.retransmits);
  EXPECT_EQ(metrics.counter_value("reliable.failures"), s.failures);
  EXPECT_EQ(metrics.counter_value("reliable.acks_sent"), s.acks_sent);
  EXPECT_EQ(metrics.counter_value("reliable.acks_received"), s.acks_received);
  EXPECT_EQ(metrics.counter_value("reliable.duplicates"), s.duplicates);
}
#endif  // FATIH_TRACE

TEST(ReliableChannel, RtoAdaptsDownOnFastLinks) {
  ChannelHarness h;
  EXPECT_EQ(h.channel->current_rto(0, 1), h.channel->config().initial_rto);
  for (std::uint64_t i = 0; i < 10; ++i) h.send_at(0.1 + 0.05 * i, 0, 1, i);
  h.run(2.0);
  // RTT on a 1 ms link is ~2 ms; Jacobson's estimate must pull the RTO
  // well below the 25 ms prior, floored by min_rto.
  EXPECT_LT(h.channel->current_rto(0, 1), h.channel->config().initial_rto);
  EXPECT_GE(h.channel->current_rto(0, 1), h.channel->config().min_rto);
}

TEST(ReliableChannel, DuplicateInFlightSendSuppressed) {
  ChannelHarness h;
  h.send_at(0.1, 0, 2, 5);
  h.send_at(0.1, 0, 2, 5);
  h.run();
  EXPECT_EQ(h.channel->stats().messages, 1U);
  EXPECT_EQ((h.delivered[{2, 5}]), 1);
}

TEST(ReliableChannel, DirectModeNeedsNoRoutes) {
  // Flood hop copies ride Via::kDirect between adjacent routers in
  // networks that never installed routes; the ack finds its way back via
  // the direct-interface fallback.
  sim::Network net{9};
  net.add_router("a");
  net.add_router("b");
  net.connect(0, 1, testing::fast_link());
  crypto::KeyRegistry keys{777};
  ReliableChannel channel(net, keys, kTestKind, fast_reliable());
  channel.set_key_fn(
      [](const sim::ControlPayload& p) { return static_cast<const MsgPayload&>(p).id; });
  int delivered = 0;
  channel.set_delivery_fn(
      [&delivered](NodeId at, const sim::ControlPayload&, SimTime) { delivered += at == 1; });
  net.sim().schedule_at(SimTime::from_seconds(0.1), [&net, &channel] {
    auto payload = std::make_shared<MsgPayload>();
    payload->id = 1;
    channel.send(0, 1, payload, 64, ReliableChannel::Via::kDirect);
  });
  net.sim().run_until(SimTime::from_seconds(1));
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(channel.stats().acks_received, 1U);
  EXPECT_EQ(channel.in_flight(), 0U);
}

TEST(ReliableChannel, LossyRunsAreDeterministic) {
  auto run_once = [] {
    ChannelHarness h;
    attacks::ControlLinkFaults faults(h.line.net, uniform_control_loss(0.4));
    for (std::uint64_t i = 0; i < 20; ++i) h.send_at(0.1 + 0.05 * i, 0, 2, i);
    h.run(6.0);
    const auto& s = h.channel->stats();
    return std::tuple{s.transmissions, s.retransmits, s.failures, s.acks_sent,
                      s.acks_received, s.duplicates, h.delivered, h.failed};
  };
  EXPECT_EQ(run_once(), run_once());
}

// ----------------------------------------------------------- integration

Pi2Config lossy_pi2_config() {
  Pi2Config cfg;
  cfg.clock = RoundClock{SimTime::origin(), Duration::seconds(1)};
  cfg.collect_settle = Duration::millis(150);
  cfg.evaluate_settle = Duration::millis(500);
  cfg.policy = TvPolicy::kContentOrder;
  cfg.rounds = 4;
  cfg.reliable = fast_reliable();
  return cfg;
}

std::vector<std::string> run_pi2_under_loss(double control_loss) {
  LineNet line{5};
  Pi2Engine engine(line.net, line.keys, *line.paths, line.terminals(), lossy_pi2_config());
  line.add_cbr(0, 4, 1, 200, SimTime::from_seconds(0.05), SimTime::from_seconds(3.9));
  line.add_cbr(4, 0, 2, 150, SimTime::from_seconds(0.05), SimTime::from_seconds(3.9));
  engine.start();
  attacks::ControlLinkFaults faults(line.net, uniform_control_loss(control_loss));
  attacks::FlowMatch match;
  match.flow_ids = {1};
  line.net.router(2).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 0.2, SimTime::from_seconds(1), 99));
  line.net.sim().run_until(SimTime::from_seconds(6.5));
  std::vector<std::string> out;
  for (const auto& s : engine.suspicions()) out.push_back(s.to_string());
  return out;
}

TEST(ReliableIntegration, Pi2DetectsDropperUnder20PctControlLoss) {
  // Acceptance scenario: 20% uniform control-plane loss on every link must
  // not stop Pi2 from catching a 20%-drop data-plane attacker at r2 within
  // the 4 configured rounds. (No accuracy check: environmental control
  // loss may add withheld-summary suspicions, which is the documented
  // degradation, not a detection failure.)
  LineNet line{5};
  Pi2Engine engine(line.net, line.keys, *line.paths, line.terminals(), lossy_pi2_config());
  line.add_cbr(0, 4, 1, 200, SimTime::from_seconds(0.05), SimTime::from_seconds(3.9));
  line.add_cbr(4, 0, 2, 150, SimTime::from_seconds(0.05), SimTime::from_seconds(3.9));
  engine.start();
  attacks::ControlLinkFaults faults(line.net, uniform_control_loss(0.2));
  attacks::FlowMatch match;
  match.flow_ids = {1};
  line.net.router(2).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 0.2, SimTime::from_seconds(1), 99));
  line.net.sim().run_until(SimTime::from_seconds(6.5));
  bool attacker_caught = false;
  for (const auto& s : engine.suspicions()) {
    if (std::string(s.cause) == "tv-failed" && s.segment.contains(2)) attacker_caught = true;
  }
  EXPECT_TRUE(attacker_caught);
}

TEST(ReliableIntegration, Pi2LossyRunsAreDeterministic) {
  EXPECT_EQ(run_pi2_under_loss(0.2), run_pi2_under_loss(0.2));
}

TEST(ReliableIntegration, Pi2CleanUnderReliableTransport) {
  // Reliability on, no loss, no attack: the channel must be transparent.
  LineNet line{5};
  Pi2Engine engine(line.net, line.keys, *line.paths, line.terminals(), lossy_pi2_config());
  line.add_cbr(0, 4, 1, 200, SimTime::from_seconds(0.05), SimTime::from_seconds(3.9));
  line.add_cbr(4, 0, 2, 150, SimTime::from_seconds(0.05), SimTime::from_seconds(3.9));
  engine.start();
  line.net.sim().run_until(SimTime::from_seconds(6.5));
  EXPECT_TRUE(engine.suspicions().empty());
}

TEST(ReliableIntegration, Pi2WithholdingRouterSuspectedRoundsTerminate) {
  // A protocol-faulty router that withholds every summary: each round
  // still terminates (partial verdict), and the withholder lands in the
  // suspected set with a precision-1 singleton segment.
  LineNet line{5};
  Pi2Engine engine(line.net, line.keys, *line.paths, line.terminals(), lossy_pi2_config());
  line.add_cbr(0, 4, 1, 200, SimTime::from_seconds(0.05), SimTime::from_seconds(3.9));
  line.add_cbr(4, 0, 2, 150, SimTime::from_seconds(0.05), SimTime::from_seconds(3.9));
  engine.set_report_mutator(2, [](SegmentSummary& s) { return s.round < 1; });
  engine.start();
  line.net.sim().run_until(SimTime::from_seconds(6.5));
  GroundTruth truth;
  truth.mark_protocol_faulty(2, SimTime::from_seconds(1));
  ASSERT_FALSE(engine.suspicions().empty());
  bool withheld_named = false;
  for (const auto& s : engine.suspicions()) {
    if (std::string(s.cause) == "withheld-summary") {
      EXPECT_EQ(s.segment, routing::PathSegment{2});
      withheld_named = true;
    }
  }
  EXPECT_TRUE(withheld_named);
  EXPECT_TRUE(check_accuracy(engine.suspicions(), truth, 2).accuracy_holds());
  // Strong completeness survives the degradation: every correct router
  // reported the withholder.
  for (NodeId r : {0U, 1U, 3U, 4U}) {
    bool found = false;
    for (const auto& s : engine.suspicions()) {
      if (s.reporter == r && s.segment.contains(2)) found = true;
    }
    EXPECT_TRUE(found) << "router " << r;
  }
}

Pik2Config lossy_pik2_config() {
  Pik2Config cfg;
  cfg.clock = RoundClock{SimTime::origin(), Duration::seconds(1)};
  cfg.collect_settle = Duration::millis(150);
  cfg.exchange_timeout = Duration::millis(450);
  cfg.policy = TvPolicy::kContentOrder;
  cfg.rounds = 4;
  cfg.reliable = fast_reliable();
  return cfg;
}

std::vector<std::string> run_pik2_under_loss() {
  LineNet line{6};
  Pik2Engine engine(line.net, line.keys, *line.paths, line.terminals(), lossy_pik2_config());
  line.add_cbr(0, 5, 1, 200, SimTime::from_seconds(0.05), SimTime::from_seconds(3.9));
  line.add_cbr(5, 0, 2, 150, SimTime::from_seconds(0.05), SimTime::from_seconds(3.9));
  engine.start();
  attacks::ControlLinkFaults faults(line.net, uniform_control_loss(0.2));
  attacks::FlowMatch match;
  match.flow_ids = {1};
  line.net.router(3).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 0.2, SimTime::from_seconds(1), 99));
  line.net.sim().run_until(SimTime::from_seconds(6.5));
  std::vector<std::string> out;
  for (const auto& s : engine.suspicions()) out.push_back(s.to_string());
  return out;
}

TEST(ReliableIntegration, Pik2DetectsDropperUnder20PctControlLoss) {
  LineNet line{6};
  Pik2Engine engine(line.net, line.keys, *line.paths, line.terminals(), lossy_pik2_config());
  line.add_cbr(0, 5, 1, 200, SimTime::from_seconds(0.05), SimTime::from_seconds(3.9));
  line.add_cbr(5, 0, 2, 150, SimTime::from_seconds(0.05), SimTime::from_seconds(3.9));
  engine.start();
  attacks::ControlLinkFaults faults(line.net, uniform_control_loss(0.2));
  attacks::FlowMatch match;
  match.flow_ids = {1};
  line.net.router(3).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 0.2, SimTime::from_seconds(1), 99));
  line.net.sim().run_until(SimTime::from_seconds(6.5));
  bool attacker_caught = false;
  for (const auto& s : engine.suspicions()) {
    if (std::string(s.cause) == "tv-failed" && s.segment.contains(3)) attacker_caught = true;
  }
  EXPECT_TRUE(attacker_caught);
}

TEST(ReliableIntegration, Pik2LossyRunsAreDeterministic) {
  EXPECT_EQ(run_pik2_under_loss(), run_pik2_under_loss());
}

TEST(ReliableIntegration, ChiReportsSurviveAckLoss) {
  // Ack-only loss forces chi's report shipping into retransmissions (the
  // acks travel the reverse direction, so the monitored queue itself stays
  // clean): every report still completes, duplicates are absorbed by the
  // part bookkeeping, and no missing-report or loss-test alarm fires.
  // (Uniform loss on the monitored link is deliberately NOT tested here:
  // chi correctly attributes drops on its own queue to the queue owner,
  // whatever their cause.)
  LineNet line{3};
  ChiConfig cfg;
  cfg.clock = RoundClock{SimTime::origin(), Duration::seconds(1)};
  cfg.settle = Duration::millis(500);
  cfg.learning_rounds = 2;
  cfg.rounds = 5;
  cfg.reliable = fast_reliable();
  ChiEngine engine(line.net, line.keys, *line.paths, cfg);
  engine.monitor_queue(1, 2);
  line.add_cbr(0, 2, 1, 100, SimTime::from_seconds(0.05), SimTime::from_seconds(4.9));
  engine.start();
  auto loss = uniform_control_loss(0.3);
  loss.match.kinds = {kKindControlAck};
  attacks::ControlLinkFaults faults(line.net, loss);
  line.net.sim().run_until(SimTime::from_seconds(7));
  EXPECT_TRUE(engine.all_suspicions().empty());
}

}  // namespace
}  // namespace fatih::detection
