#include "detection/chi.hpp"

#include <gtest/gtest.h>

#include "attacks/attacks.hpp"
#include "detection/spec.hpp"
#include "routing/install.hpp"
#include "traffic/sources.hpp"
#include "traffic/tcp.hpp"

namespace fatih::detection {
namespace {

using util::Duration;
using util::NodeId;
using util::SimTime;

// Fig. 6.4's "simple topology": two source routers feeding r, whose output
// queue toward rd is the bottleneck being validated.
//
//   s1(0) \.
//           r(2) ---bottleneck--- rd(3)
//   s2(1) /
struct ChiNet {
  sim::Network net;
  crypto::KeyRegistry keys{31337};
  std::shared_ptr<routing::RoutingTables> tables;
  std::unique_ptr<PathCache> paths;
  std::vector<std::unique_ptr<traffic::CbrSource>> cbr;
  std::vector<std::unique_ptr<traffic::OnOffSource>> onoff;
  NodeId s1, s2, r, rd;

  explicit ChiNet(std::uint64_t seed = 5, double bottleneck_bps = 1e7,
                  std::size_t qlimit = 50000)
      : net(seed) {
    s1 = net.add_router("s1").id();
    s2 = net.add_router("s2").id();
    r = net.add_router("r").id();
    rd = net.add_router("rd").id();
    sim::LinkConfig edge;
    edge.bandwidth_bps = 1e8;
    edge.delay = Duration::millis(1);
    sim::LinkConfig core;
    core.bandwidth_bps = bottleneck_bps;
    core.delay = Duration::millis(2);
    core.queue_limit_bytes = qlimit;
    net.connect(s1, r, edge);
    net.connect(s2, r, edge);
    net.connect(r, rd, core);
    tables = std::make_shared<routing::RoutingTables>(routing::Topology::from_network(net));
    routing::install_static_routes(net, *tables);
    paths = std::make_unique<PathCache>(tables);
    for (NodeId n : {s1, s2, r, rd}) {
      net.router(n).set_processing_delay(Duration::micros(20), Duration::micros(50));
    }
  }

  void add_cbr(NodeId src, std::uint32_t flow, double pps, double start, double stop) {
    traffic::CbrSource::Config cfg;
    cfg.src = src;
    cfg.dst = rd;
    cfg.flow_id = flow;
    cfg.rate_pps = pps;
    cfg.start = SimTime::from_seconds(start);
    cfg.stop = SimTime::from_seconds(stop);
    cbr.push_back(std::make_unique<traffic::CbrSource>(net, cfg));
  }

  void add_onoff(NodeId src, std::uint32_t flow, double pps, double start, double stop) {
    traffic::OnOffSource::Config cfg;
    cfg.src = src;
    cfg.dst = rd;
    cfg.flow_id = flow;
    cfg.on_rate_pps = pps;
    cfg.mean_on = Duration::millis(150);
    cfg.mean_off = Duration::millis(250);
    cfg.start = SimTime::from_seconds(start);
    cfg.stop = SimTime::from_seconds(stop);
    onoff.push_back(std::make_unique<traffic::OnOffSource>(net, cfg));
  }
};

ChiConfig fast_chi(std::int64_t rounds = 10) {
  ChiConfig cfg;
  cfg.clock = RoundClock{SimTime::origin(), Duration::seconds(1)};
  cfg.settle = Duration::millis(400);
  cfg.grace = Duration::millis(200);
  cfg.learning_rounds = 3;
  cfg.rounds = rounds;
  return cfg;
}

TEST(Chi, CalibrationLearnsErrorModel) {
  ChiNet n;
  n.add_cbr(n.s1, 1, 500, 0.05, 9.5);
  n.add_onoff(n.s2, 2, 1500, 0.05, 9.5);
  QueueValidator v(n.net, n.keys, *n.paths, n.r, n.rd, fast_chi());
  v.start();
  n.net.sim().run_until(SimTime::from_seconds(12));
  EXPECT_TRUE(v.learned());
  EXPECT_GT(v.error_stats().count(), 500U);
  // Jitter-induced noise is small relative to a packet.
  EXPECT_LT(v.sigma(), 2000.0);
}

TEST(Chi, PredictionExactWithoutJitter) {
  ChiNet n;
  for (NodeId node : {n.s1, n.s2, n.r, n.rd}) {
    n.net.router(node).set_processing_delay(Duration::micros(20), {});
  }
  n.add_cbr(n.s1, 1, 500, 0.05, 9.5);
  n.add_cbr(n.s2, 2, 300, 0.05, 9.5);
  QueueValidator v(n.net, n.keys, *n.paths, n.r, n.rd, fast_chi());
  v.start();
  n.net.sim().run_until(SimTime::from_seconds(12));
  ASSERT_TRUE(v.learned());
  ASSERT_GT(v.error_stats().count(), 100U);
  // With deterministic processing the queue replay is essentially exact;
  // the only residual noise comes from unresolvable event-ordering ties
  // (a departure and an unrelated arrival at the same instant, including
  // the validator's own paced report fragments). Well under one packet.
  EXPECT_NEAR(v.error_stats().mean(), 0.0, 30.0);
  EXPECT_LT(v.error_stats().stddev(), 250.0);
}

TEST(Chi, NoAttackNoAlarmsDespiteCongestion) {
  // The headline property (Fig. 6.5): genuine congestive losses must not
  // raise alarms once the congestion ambiguity is resolved.
  ChiNet n;
  n.add_cbr(n.s1, 1, 600, 0.05, 11.5);
  n.add_onoff(n.s2, 2, 1400, 0.05, 11.5);  // bursts overflow the bottleneck
  QueueValidator v(n.net, n.keys, *n.paths, n.r, n.rd, fast_chi(11));
  v.start();
  n.net.sim().run_until(SimTime::from_seconds(13));
  ASSERT_TRUE(v.learned());
  // Congestion genuinely happened...
  std::uint64_t drops = 0;
  for (const auto& rs : v.rounds()) drops += rs.drops;
  EXPECT_GT(drops, 20U);
  // ...yet no round alarmed.
  EXPECT_TRUE(v.suspicions().empty());
}

TEST(Chi, Drop20PercentOfVictimDetected) {
  // Attack 1 (Fig. 6.6): drop 20% of the selected flow.
  ChiNet n;
  n.add_cbr(n.s1, 1, 400, 0.05, 11.5);
  n.add_cbr(n.s2, 2, 300, 0.05, 11.5);
  QueueValidator v(n.net, n.keys, *n.paths, n.r, n.rd, fast_chi(11));
  v.start();
  attacks::FlowMatch match;
  match.flow_ids = {1};
  n.net.router(n.r).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 0.2, SimTime::from_seconds(6), 77));
  n.net.sim().run_until(SimTime::from_seconds(13));
  ASSERT_FALSE(v.suspicions().empty());
  for (const auto& s : v.suspicions()) {
    EXPECT_TRUE(s.segment.contains(n.r));
    EXPECT_GE(s.interval.begin, SimTime::from_seconds(5));
  }
}

TEST(Chi, QueueNinetyPercentAttackDetected) {
  // Attack 2 (Fig. 6.7): drop the victim only when the queue is 90% full
  // — crafted to masquerade as congestion; chi's per-packet prediction
  // still sees ~10% headroom and flags it.
  ChiNet n;
  n.add_cbr(n.s1, 1, 500, 0.05, 13.5);
  n.add_onoff(n.s2, 2, 1300, 0.05, 13.5);
  QueueValidator v(n.net, n.keys, *n.paths, n.r, n.rd, fast_chi(13));
  v.start();
  attacks::FlowMatch match;
  match.flow_ids = {1};
  n.net.router(n.r).set_forward_filter(std::make_shared<attacks::QueueThresholdDropAttack>(
      match, 0.9, 1.0, SimTime::from_seconds(6), 77));
  n.net.sim().run_until(SimTime::from_seconds(15));
  EXPECT_FALSE(v.suspicions().empty());
}

TEST(Chi, QueueNinetyFivePercentAttackDetected) {
  // Attack 3 (Fig. 6.8): same with a 95% trigger; finer margin.
  ChiNet n;
  n.add_cbr(n.s1, 1, 500, 0.05, 13.5);
  n.add_onoff(n.s2, 2, 1300, 0.05, 13.5);
  auto cfg = fast_chi(13);
  QueueValidator v(n.net, n.keys, *n.paths, n.r, n.rd, cfg);
  v.start();
  attacks::FlowMatch match;
  match.flow_ids = {1};
  n.net.router(n.r).set_forward_filter(std::make_shared<attacks::QueueThresholdDropAttack>(
      match, 0.95, 1.0, SimTime::from_seconds(6), 77));
  n.net.sim().run_until(SimTime::from_seconds(15));
  EXPECT_FALSE(v.suspicions().empty());
}

TEST(Chi, SynDropDetectedDespiteTinyVolume) {
  // Attack 4 (Fig. 6.9): kill connection attempts by dropping SYNs. The
  // volume is negligible — single-packet precision is what catches it.
  ChiNet n;
  n.add_cbr(n.s1, 1, 200, 0.05, 11.5);  // light background, no congestion
  QueueValidator v(n.net, n.keys, *n.paths, n.r, n.rd, fast_chi(11));
  v.start();
  attacks::FlowMatch match;
  match.syn_only = true;
  n.net.router(n.r).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 1.0, SimTime::from_seconds(5), 77));
  traffic::TcpFlow tcp(n.net, n.s2, n.rd, 50, {});
  tcp.start(SimTime::from_seconds(6.2));
  n.net.sim().run_until(SimTime::from_seconds(13));
  EXPECT_FALSE(tcp.connected());
  ASSERT_FALSE(v.suspicions().empty());
  bool single = false;
  for (const auto& s : v.suspicions()) {
    if (s.cause == "single-loss-test") single = true;
  }
  EXPECT_TRUE(single);
}

TEST(Chi, MissingSelfReportSuspected) {
  ChiNet n;
  n.add_cbr(n.s1, 1, 300, 0.05, 9.5);
  QueueValidator v(n.net, n.keys, *n.paths, n.r, n.rd, fast_chi(9));
  v.set_self_report_mutator([&n](ChiReport& rep) {
    return n.net.sim().now() < SimTime::from_seconds(6) || rep.round < 5;
  });
  v.start();
  n.net.sim().run_until(SimTime::from_seconds(11));
  bool missing = false;
  for (const auto& s : v.suspicions()) {
    if (s.cause == "missing-report") missing = true;
  }
  EXPECT_TRUE(missing);
}

TEST(Chi, PhantomSelfReportImplicatesLiar) {
  // A protocol-faulty r pads its self-report with packets it never sent,
  // trying to inflate qpred; the phantoms never exit, so they register as
  // drops with ample headroom and trip the single-packet test.
  ChiNet n;
  n.add_cbr(n.s1, 1, 300, 0.05, 9.5);
  QueueValidator v(n.net, n.keys, *n.paths, n.r, n.rd, fast_chi(9));
  util::Rng rng(4242);
  v.set_self_report_mutator([&](ChiReport& rep) {
    if (rep.round >= 5) {
      for (int i = 0; i < 20; ++i) {
        ChiRecord fake;
        fake.fp = rng.next_u64();
        fake.size_bytes = 1000;
        fake.flow_id = 1;
        fake.ts = SimTime::from_seconds(static_cast<double>(rep.round) + 0.05 * i);
        rep.records.push_back(fake);
      }
    }
    return true;
  });
  v.start();
  n.net.sim().run_until(SimTime::from_seconds(11));
  EXPECT_FALSE(v.suspicions().empty());
}

TEST(Chi, RoundStatsAccounting) {
  ChiNet n;
  n.add_cbr(n.s1, 1, 500, 0.05, 7.5);
  QueueValidator v(n.net, n.keys, *n.paths, n.r, n.rd, fast_chi(7));
  v.start();
  n.net.sim().run_until(SimTime::from_seconds(9));
  ASSERT_GE(v.rounds().size(), 7U);
  for (const auto& rs : v.rounds()) {
    // Clean network: every entry eventually exits.
    EXPECT_EQ(rs.drops, 0U) << "round " << rs.round;
    if (rs.round >= 1 && rs.round < 7) {
      EXPECT_NEAR(rs.entries, 500.0, 30.0);
    }
  }
}

TEST(Chi, MaliciousDelayDetected) {
  // Conservation of timeliness (§2.4.1): the adversary holds victim
  // packets for 100 ms before forwarding — no loss at all, so every
  // loss-based test stays silent, but the sojourn bound cannot be met.
  ChiNet n;
  n.add_cbr(n.s1, 1, 300, 0.05, 11.5);
  QueueValidator v(n.net, n.keys, *n.paths, n.r, n.rd, fast_chi(11));
  v.start();
  attacks::FlowMatch match;
  match.flow_ids = {1};
  n.net.router(n.r).set_forward_filter(std::make_shared<attacks::ReorderAttack>(
      match, 0.2, Duration::millis(100), SimTime::from_seconds(6), 77));
  n.net.sim().run_until(SimTime::from_seconds(13));
  bool delay_alarm = false;
  for (const auto& s : v.suspicions()) {
    if (s.cause == "delay-test") delay_alarm = true;
  }
  EXPECT_TRUE(delay_alarm);
}

TEST(Chi, QueueingDelayNotMistakenForAttack) {
  // Genuine congestion queues packets up to the full drain time; the
  // timeliness test must not fire on that.
  ChiNet n;
  n.add_cbr(n.s1, 1, 600, 0.05, 11.5);
  n.add_onoff(n.s2, 2, 1400, 0.05, 11.5);
  QueueValidator v(n.net, n.keys, *n.paths, n.r, n.rd, fast_chi(11));
  v.start();
  n.net.sim().run_until(SimTime::from_seconds(13));
  for (const auto& s : v.suspicions()) {
    EXPECT_NE(s.cause, "delay-test");
  }
  std::uint64_t delayed = 0;
  for (const auto& rs : v.rounds()) delayed += rs.delayed;
  EXPECT_EQ(delayed, 0U);
}

TEST(Chi, HostNeighborsReportToo) {
  // An end host directly attached to r participates as a reporter for the
  // traffic it feeds into the monitored queue.
  sim::Network net(99);
  crypto::KeyRegistry keys{31337};
  const NodeId h = net.add_host("h").id();
  const NodeId r = net.add_router("r").id();
  const NodeId rd = net.add_router("rd").id();
  sim::LinkConfig edge;
  edge.bandwidth_bps = 1e8;
  edge.delay = Duration::millis(1);
  sim::LinkConfig core;
  core.bandwidth_bps = 1e7;
  core.delay = Duration::millis(2);
  core.queue_limit_bytes = 50000;
  net.connect(h, r, edge);
  net.connect(r, rd, core);
  auto tables = std::make_shared<routing::RoutingTables>(routing::Topology::from_network(net));
  routing::install_static_routes(net, *tables);
  PathCache paths(tables);
  net.router(r).set_processing_delay(Duration::micros(20), Duration::micros(50));

  traffic::CbrSource::Config c;
  c.src = h;
  c.dst = rd;
  c.flow_id = 1;
  c.rate_pps = 300;
  c.start = SimTime::from_seconds(0.05);
  c.stop = SimTime::from_seconds(9.5);
  traffic::CbrSource src(net, c);

  QueueValidator v(net, keys, paths, r, rd, fast_chi(9));
  v.start();
  attacks::FlowMatch match;
  match.flow_ids = {1};
  net.router(r).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 0.3, SimTime::from_seconds(5), 77));
  net.sim().run_until(SimTime::from_seconds(11));
  ASSERT_TRUE(v.learned());
  EXPECT_FALSE(v.suspicions().empty());
}

TEST(ChiEngine, MonitorsAllRouterQueues) {
  ChiNet n;
  n.add_cbr(n.s1, 1, 200, 0.05, 6.5);
  ChiEngine engine(n.net, n.keys, *n.paths, fast_chi(6));
  engine.monitor_all();
  engine.start();
  n.net.sim().run_until(SimTime::from_seconds(8));
  // 3 duplex links = 6 simplex router-router queues.
  EXPECT_EQ(engine.validators().size(), 6U);
  EXPECT_TRUE(engine.all_suspicions().empty());
}

}  // namespace
}  // namespace fatih::detection
