#include "detection/watchers.hpp"

#include <gtest/gtest.h>

#include "attacks/attacks.hpp"
#include "detection/spec.hpp"
#include "tests/detection/test_net.hpp"

namespace fatih::detection {
namespace {

using testing::LineNet;
using util::Duration;
using util::SimTime;

WatchersConfig fast_watchers(bool fixed, std::int64_t rounds = 4) {
  WatchersConfig cfg;
  cfg.clock = RoundClock{SimTime::origin(), Duration::seconds(1)};
  cfg.settle = Duration::millis(300);
  cfg.flow_threshold = 5;
  cfg.fixed = fixed;
  cfg.rounds = rounds;
  return cfg;
}

// The dissertation's consorting scenario (Fig. 3.3): path a-b-c-d-e with
// c and d colluding. Node ids 0..4.
struct WatchersFixture {
  LineNet line{5};
  std::unique_ptr<WatchersEngine> engine;

  explicit WatchersFixture(bool fixed) {
    engine = std::make_unique<WatchersEngine>(line.net, *line.paths, fast_watchers(fixed));
    line.add_cbr(0, 4, 1, 200, SimTime::from_seconds(0.05), SimTime::from_seconds(3.9));
    engine->start();
  }

  void run(double seconds = 6.0) { line.net.sim().run_until(SimTime::from_seconds(seconds)); }
};

TEST(Watchers, BenignTrafficNoDetection) {
  WatchersFixture f(false);
  f.run();
  EXPECT_TRUE(f.engine->suspicions().empty());
}

TEST(Watchers, SimpleDropperCaughtByConservationOfFlow) {
  WatchersFixture f(false);
  GroundTruth truth;
  truth.mark_traffic_faulty(2, SimTime::from_seconds(1));
  attacks::FlowMatch match;
  f.line.net.router(2).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 0.5, SimTime::from_seconds(1), 7));
  f.run();
  ASSERT_FALSE(f.engine->suspicions().empty());
  EXPECT_TRUE(check_accuracy(f.engine->suspicions(), truth, 2).accuracy_holds());
  EXPECT_TRUE(check_completeness_for(f.engine->suspicions(), 2));
}

TEST(Watchers, HonestCountersMismatchImplicatesLink) {
  // A router lying about its own link counters is caught in validation
  // phase 1 by its honest neighbor.
  WatchersFixture f(false);
  GroundTruth truth;
  truth.mark_protocol_faulty(1, SimTime::origin());
  f.engine->set_snapshot_mutator(1, [](WatchersSnapshot& snap) {
    for (auto& [key, count] : snap.send) count += 25;
  });
  f.run();
  ASSERT_FALSE(f.engine->suspicions().empty());
  EXPECT_TRUE(check_accuracy(f.engine->suspicions(), truth, 2).accuracy_holds());
  EXPECT_TRUE(check_completeness_for(f.engine->suspicions(), 1));
}

// Installs the consorting attack of §3.1: c (=2) drops transit traffic
// and inflates its transit counter toward d (=3); d stays silent and
// keeps honest receive counters, so the (c,d) link looks like "their
// problem" to b and e — who, in the flawed protocol, skip it.
void install_consorting(WatchersFixture& f) {
  attacks::FlowMatch match;
  f.line.net.router(2).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 1.0, SimTime::from_seconds(1), 7));
  f.engine->set_snapshot_mutator(2, [&f](WatchersSnapshot& snap) {
    // Claim the dropped transit packets were sent to d: c's send counters
    // toward 3 are restored to what b's counters imply.
    const auto& b_snap_unavailable = snap;  // c can only alter its own snapshot
    (void)b_snap_unavailable;
    // Inflate T_{c,d} per destination by the dropped amount: copy what c
    // received from b (its own recv counters from 1) into its send
    // counters toward 3.
    for (const auto& [key, count] : snap.recv) {
      if (std::get<0>(key) != 1) continue;
      const auto cls = std::get<1>(key);
      const auto dst = std::get<2>(key);
      if (dst == 2) continue;  // traffic for c itself is consumed
      const auto out_cls =
          cls == WatchersClass::kSourced ? WatchersClass::kTransit : cls;
      auto skey = std::make_tuple(util::NodeId{3}, out_cls, dst);
      if (dst == 3) skey = std::make_tuple(util::NodeId{3}, WatchersClass::kDestined, dst);
      snap.send[skey] = count;
    }
  });
  f.engine->set_silent(2);
  f.engine->set_silent(3);
}

TEST(Watchers, ConsortingRoutersEvadeFlawedProtocol) {
  // The flaw: d's honest counters disagree with c's inflated ones, so b
  // and e skip the CoF test for both; being faulty, d never announces.
  WatchersFixture f(false);
  install_consorting(f);
  f.run();
  // No CORRECT router ever suspects c or d: completeness is violated.
  bool caught = false;
  for (const auto& s : f.engine->suspicions()) {
    if (s.reporter != 2 && s.reporter != 3 && (s.segment.contains(2) || s.segment.contains(3))) {
      caught = true;
    }
  }
  EXPECT_FALSE(caught);
}

TEST(Watchers, FixRestoresCompleteness) {
  // The dissertation's fix: b and e expect an announcement about <c,d>;
  // silence implicates the adjacent neighbor.
  WatchersFixture f(true);
  GroundTruth truth;
  truth.mark_traffic_faulty(2, SimTime::from_seconds(1));
  truth.mark_protocol_faulty(3, SimTime::from_seconds(1));
  install_consorting(f);
  f.run();
  bool caught = false;
  for (const auto& s : f.engine->suspicions()) {
    if (s.reporter != 2 && s.reporter != 3 && (s.segment.contains(2) || s.segment.contains(3))) {
      caught = true;
    }
  }
  EXPECT_TRUE(caught);
  EXPECT_TRUE(check_accuracy(f.engine->suspicions(), truth, 2).accuracy_holds());
}

TEST(Watchers, MisrouteCounterFires) {
  WatchersFixture f(false);
  GroundTruth truth;
  truth.mark_traffic_faulty(2, SimTime::from_seconds(1));
  // Misroute flow 1 back toward node 1 instead of 3.
  attacks::FlowMatch match;
  match.flow_ids = {1};
  const std::size_t wrong =
      f.line.net.router(2).interface_to(1)->index();
  f.line.net.router(2).set_forward_filter(std::make_shared<attacks::MisrouteAttack>(
      match, 1.0, wrong, SimTime::from_seconds(1), 7));
  f.run();
  ASSERT_FALSE(f.engine->suspicions().empty());
  EXPECT_TRUE(check_completeness_for(f.engine->suspicions(), 2));
}

TEST(Watchers, CounterFootprintGrowsWithTraffic) {
  // The §5.1.1 comparison point: WATCHERS state is per (neighbor,
  // destination) pair.
  WatchersFixture f(false);
  f.line.add_cbr(0, 3, 5, 100, SimTime::from_seconds(0.05), SimTime::from_seconds(0.9));
  f.line.net.sim().run_until(SimTime::from_seconds(0.95));
  EXPECT_GT(f.engine->counters_at(2), 2U);
}

TEST(Watchers, ModificationInvisibleToConservationOfFlow) {
  // WATCHERS' fundamental limitation (§3.1): content tampering preserves
  // flow counts and sails through.
  WatchersFixture f(false);
  attacks::FlowMatch match;
  f.line.net.router(2).set_forward_filter(std::make_shared<attacks::ModificationAttack>(
      match, 1.0, SimTime::from_seconds(1), 7));
  f.run();
  EXPECT_TRUE(f.engine->suspicions().empty());
}

}  // namespace
}  // namespace fatih::detection
