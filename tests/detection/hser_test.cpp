#include "detection/hser.hpp"

#include <gtest/gtest.h>

#include "attacks/attacks.hpp"
#include "detection/spec.hpp"
#include "tests/detection/test_net.hpp"

namespace fatih::detection {
namespace {

using testing::LineNet;
using util::Duration;
using util::NodeId;
using util::SimTime;

struct HserFixture {
  LineNet line{6};
  routing::Path path{0, 1, 2, 3, 4, 5};
  std::unique_ptr<HserDetector> detector;

  HserFixture() {
    HserConfig cfg;
    cfg.per_hop_bound = Duration::millis(5);
    cfg.flow_id = 1;
    detector = std::make_unique<HserDetector>(line.net, line.keys, path, cfg);
  }

  void blast(int packets, double start, double spacing = 0.01) {
    for (int i = 0; i < packets; ++i) {
      line.net.sim().schedule_at(SimTime::from_seconds(start + spacing * i), [this, i] {
        detector->send(static_cast<std::uint32_t>(i), 500);
      });
    }
  }

  void run(double seconds = 4.0) { line.net.sim().run_until(SimTime::from_seconds(seconds)); }
};

TEST(Hser, CleanPathDeliversAndStaysQuiet) {
  HserFixture f;
  f.blast(100, 0.1);
  f.run();
  EXPECT_EQ(f.detector->delivered(), 100U);
  EXPECT_EQ(f.detector->auth_failures(), 0U);
  EXPECT_TRUE(f.detector->suspicions().empty());
}

TEST(Hser, DropperLocatedWithPrecision2) {
  HserFixture f;
  GroundTruth truth;
  truth.mark_traffic_faulty(3, SimTime::from_seconds(1));
  attacks::FlowMatch match;
  match.flow_ids = {1};
  f.line.net.router(3).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 1.0, SimTime::from_seconds(1), 7));
  f.blast(200, 0.1);
  f.run();
  ASSERT_FALSE(f.detector->suspicions().empty());
  EXPECT_TRUE(check_accuracy(f.detector->suspicions(), truth, 2).accuracy_holds());
  EXPECT_TRUE(check_completeness_for(f.detector->suspicions(), 3));
}

TEST(Hser, ModificationCaughtByHopAuthentication) {
  // HSER's distinguishing capability among the ack protocols: a tampered
  // packet fails MAC verification at the NEXT hop, which names the
  // upstream link immediately — no ack timeout needed.
  HserFixture f;
  GroundTruth truth;
  truth.mark_traffic_faulty(2, SimTime::from_seconds(1));
  attacks::FlowMatch match;
  match.flow_ids = {1};
  f.line.net.router(2).set_forward_filter(std::make_shared<attacks::ModificationAttack>(
      match, 1.0, SimTime::from_seconds(1), 7));
  f.blast(100, 0.1);
  f.run();
  EXPECT_GT(f.detector->auth_failures(), 0U);
  ASSERT_FALSE(f.detector->suspicions().empty());
  bool auth_cause = false;
  for (const auto& s : f.detector->suspicions()) {
    if (s.cause == "hser-auth-failure") auth_cause = true;
  }
  EXPECT_TRUE(auth_cause);
  EXPECT_TRUE(check_accuracy(f.detector->suspicions(), truth, 2).accuracy_holds());
  EXPECT_TRUE(check_completeness_for(f.detector->suspicions(), 2));
}

TEST(Hser, PartialDropStillCaught) {
  HserFixture f;
  GroundTruth truth;
  truth.mark_traffic_faulty(4, SimTime::from_seconds(1));
  attacks::FlowMatch match;
  match.flow_ids = {1};
  f.line.net.router(4).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 0.2, SimTime::from_seconds(1), 7));
  f.blast(200, 0.1);
  f.run();
  ASSERT_FALSE(f.detector->suspicions().empty());
  EXPECT_TRUE(check_completeness_for(f.detector->suspicions(), 4));
  // Deliveries continue for the surviving 80%.
  EXPECT_GT(f.detector->delivered(), 120U);
}

TEST(Hser, AnnouncementNamesNearestPair) {
  HserFixture f;
  attacks::FlowMatch match;
  match.flow_ids = {1};
  f.line.net.router(3).set_forward_filter(std::make_shared<attacks::RateDropAttack>(
      match, 1.0, SimTime::from_seconds(1), 7));
  f.blast(50, 1.1);
  f.run();
  ASSERT_FALSE(f.detector->suspicions().empty());
  // The hop just upstream of the dropper times out first: <r2, r3>... or
  // the source's own end-to-end timer names <r3, r4> via hop 3's silence.
  for (const auto& s : f.detector->suspicions()) {
    EXPECT_TRUE(s.segment.contains(3)) << s.to_string();
  }
}

}  // namespace
}  // namespace fatih::detection
