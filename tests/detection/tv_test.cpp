#include "detection/tv.hpp"

#include <gtest/gtest.h>

namespace fatih::detection {
namespace {

SegmentSummary summary_of(std::initializer_list<validation::Fingerprint> fps) {
  SegmentSummary s;
  for (auto fp : fps) {
    s.content.push_back(fp);
    s.counters.add(1000);
  }
  return s;
}

TEST(Tv, CleanTrafficPasses) {
  const auto up = summary_of({1, 2, 3});
  const auto outcome = evaluate_tv(TvPolicy::kContent, {}, up, up);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.lost, 0U);
  EXPECT_EQ(outcome.fabricated, 0U);
}

TEST(Tv, LossDetectedUnderContent) {
  const auto up = summary_of({1, 2, 3, 4});
  const auto down = summary_of({1, 3});
  const auto outcome = evaluate_tv(TvPolicy::kContent, {}, up, down);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.lost, 2U);
}

TEST(Tv, ModificationShowsAsLossPlusFabrication) {
  const auto up = summary_of({1, 2, 3});
  const auto down = summary_of({1, 2, 99});  // 3 modified into 99
  const auto outcome = evaluate_tv(TvPolicy::kContent, {}, up, down);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.lost, 1U);
  EXPECT_EQ(outcome.fabricated, 1U);
}

TEST(Tv, FlowPolicyMissesModification) {
  // Conservation of flow only counts volume — the WATCHERS weakness.
  const auto up = summary_of({1, 2, 3});
  const auto down = summary_of({1, 2, 99});
  const auto outcome = evaluate_tv(TvPolicy::kFlow, {}, up, down);
  EXPECT_TRUE(outcome.ok);
}

TEST(Tv, FlowPolicyCatchesLoss) {
  const auto up = summary_of({1, 2, 3});
  const auto down = summary_of({1});
  const auto outcome = evaluate_tv(TvPolicy::kFlow, {}, up, down);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.lost, 2U);
}

TEST(Tv, AbsoluteLossAllowance) {
  TvThresholds th;
  th.max_lost_packets = 2;
  const auto up = summary_of({1, 2, 3, 4});
  EXPECT_TRUE(evaluate_tv(TvPolicy::kContent, th, up, summary_of({1, 2})).ok);
  EXPECT_FALSE(evaluate_tv(TvPolicy::kContent, th, up, summary_of({1})).ok);
}

TEST(Tv, FractionalLossAllowance) {
  TvThresholds th;
  th.max_lost_fraction = 0.5;
  const auto up = summary_of({1, 2, 3, 4});
  EXPECT_TRUE(evaluate_tv(TvPolicy::kContent, th, up, summary_of({1, 2})).ok);
  EXPECT_FALSE(evaluate_tv(TvPolicy::kContent, th, up, summary_of({1})).ok);
}

TEST(Tv, FabricationNeverTolerated) {
  TvThresholds th;
  th.max_lost_packets = 100;
  const auto up = summary_of({1});
  const auto down = summary_of({1, 2});
  EXPECT_FALSE(evaluate_tv(TvPolicy::kContent, th, up, down).ok);
}

TEST(Tv, ReorderDetectedUnderOrderPolicy) {
  SegmentSummary up = summary_of({1, 2, 3, 4});
  SegmentSummary down;
  for (auto fp : {4U, 1U, 2U, 3U}) {
    down.content.push_back(fp);
    down.counters.add(1000);
  }
  const auto plain = evaluate_tv(TvPolicy::kContent, {}, up, down);
  EXPECT_TRUE(plain.ok);  // content alone is conserved
  const auto ordered = evaluate_tv(TvPolicy::kContentOrder, {}, up, down);
  EXPECT_FALSE(ordered.ok);
  EXPECT_EQ(ordered.reordered, 1U);
}

TEST(Tv, ReorderAllowance) {
  TvThresholds th;
  th.max_reordered = 1;
  SegmentSummary up = summary_of({1, 2, 3, 4});
  SegmentSummary down;
  for (auto fp : {4U, 1U, 2U, 3U}) down.content.push_back(fp);
  down.counters = up.counters;
  EXPECT_TRUE(evaluate_tv(TvPolicy::kContentOrder, th, up, down).ok);
}

TEST(Tv, EmptySummariesPass) {
  const SegmentSummary empty;
  EXPECT_TRUE(evaluate_tv(TvPolicy::kContentOrder, {}, empty, empty).ok);
}

}  // namespace
}  // namespace fatih::detection
