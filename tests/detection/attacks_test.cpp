#include "attacks/attacks.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "traffic/sources.hpp"

namespace fatih::attacks {
namespace {

using util::Duration;
using util::NodeId;
using util::SimTime;

sim::Packet udp_packet(NodeId src, NodeId dst, std::uint32_t flow) {
  sim::Packet p;
  p.hdr.src = src;
  p.hdr.dst = dst;
  p.hdr.flow_id = flow;
  p.hdr.proto = sim::Protocol::kUdp;
  p.size_bytes = 100;
  return p;
}

TEST(FlowMatch, EmptyMatchesAnyData) {
  const FlowMatch match;
  EXPECT_TRUE(match.matches(udp_packet(1, 2, 7)));
  sim::Packet control = udp_packet(1, 2, 7);
  control.hdr.proto = sim::Protocol::kControl;
  EXPECT_FALSE(match.matches(control));
}

TEST(FlowMatch, ControlOptIn) {
  FlowMatch match;
  match.include_control = true;
  sim::Packet control = udp_packet(1, 2, 7);
  control.hdr.proto = sim::Protocol::kControl;
  EXPECT_TRUE(match.matches(control));
}

TEST(FlowMatch, FlowIdsFilter) {
  FlowMatch match;
  match.flow_ids = {3, 5};
  EXPECT_TRUE(match.matches(udp_packet(1, 2, 3)));
  EXPECT_TRUE(match.matches(udp_packet(1, 2, 5)));
  EXPECT_FALSE(match.matches(udp_packet(1, 2, 4)));
}

TEST(FlowMatch, SrcDstFilters) {
  FlowMatch match;
  match.src = 1;
  match.dst = 9;
  EXPECT_TRUE(match.matches(udp_packet(1, 9, 0)));
  EXPECT_FALSE(match.matches(udp_packet(2, 9, 0)));
  EXPECT_FALSE(match.matches(udp_packet(1, 8, 0)));
}

struct ProbePayload final : sim::ControlPayload {
  std::uint16_t tag = 0x2F20;
  [[nodiscard]] std::uint16_t kind() const override { return tag; }
};

sim::Packet control_packet(NodeId src, NodeId dst, std::uint16_t kind) {
  sim::Packet p = udp_packet(src, dst, 0);
  p.hdr.proto = sim::Protocol::kControl;
  auto payload = std::make_shared<ProbePayload>();
  payload->tag = kind;
  p.control = std::move(payload);
  return p;
}

TEST(ControlMatch, OnlyControlPacketsMatch) {
  const ControlMatch match;
  EXPECT_FALSE(match.matches(udp_packet(1, 2, 7)));
  EXPECT_TRUE(match.matches(control_packet(1, 2, 0x2F20)));
}

TEST(ControlMatch, KindFilter) {
  ControlMatch match;
  match.kinds = {0x2F20, 0x2F22};
  EXPECT_TRUE(match.matches(control_packet(1, 2, 0x2F20)));
  EXPECT_TRUE(match.matches(control_packet(1, 2, 0x2F22)));
  EXPECT_FALSE(match.matches(control_packet(1, 2, 0x2F21)));
}

TEST(ControlMatch, SrcDstFilters) {
  ControlMatch match;
  match.src = 1;
  match.dst = 9;
  EXPECT_TRUE(match.matches(control_packet(1, 9, 0x2F20)));
  EXPECT_FALSE(match.matches(control_packet(2, 9, 0x2F20)));
  EXPECT_FALSE(match.matches(control_packet(1, 8, 0x2F20)));
}

TEST(FlowMatch, SynOnlyMatchesPureSyn) {
  FlowMatch match;
  match.syn_only = true;
  sim::Packet p = udp_packet(1, 2, 0);
  EXPECT_FALSE(match.matches(p));  // not TCP
  p.hdr.proto = sim::Protocol::kTcp;
  EXPECT_FALSE(match.matches(p));  // no SYN flag
  p.hdr.flags = sim::kFlagSyn;
  EXPECT_TRUE(match.matches(p));
  p.hdr.flags = sim::kFlagSyn | sim::kFlagAck;
  EXPECT_FALSE(match.matches(p));  // SYN-ACK is the victim's reply, not target
}

struct AttackHarness {
  sim::Network net{3};
  NodeId a;
  NodeId b;
  std::size_t delivered = 0;

  AttackHarness() {
    a = net.add_router("a").id();
    b = net.add_router("b").id();
    sim::LinkConfig cfg;
    net.connect(a, b, cfg);
    net.router(a).set_route(b, 0);
    net.router(b).add_local_handler(
        [this](const sim::Packet&, NodeId, SimTime) { ++delivered; });
  }

  void blast(int n) {
    for (int i = 0; i < n; ++i) {
      net.sim().schedule_at(SimTime::from_seconds(0.01 * i), [this, i] {
        sim::PacketHeader hdr;
        hdr.src = a;
        hdr.dst = b;
        hdr.flow_id = 1;
        hdr.seq = static_cast<std::uint32_t>(i);
        net.router(a).originate(net.make_packet(hdr, 100));
      });
    }
  }
};

TEST(RateDropAttack, InertBeforeActivation) {
  AttackHarness h;
  FlowMatch match;
  h.net.router(h.a).set_forward_filter(std::make_shared<RateDropAttack>(
      match, 1.0, SimTime::from_seconds(0.5), 7));
  h.blast(100);  // packets at 0.00 .. 0.99s
  h.net.sim().run();
  // Roughly the first half survive.
  EXPECT_NEAR(static_cast<double>(h.delivered), 50.0, 2.0);
  EXPECT_NEAR(static_cast<double>(h.net.router(h.a).malicious_drops()), 50.0, 2.0);
}

TEST(RateDropAttack, FractionRespected) {
  AttackHarness h;
  FlowMatch match;
  h.net.router(h.a).set_forward_filter(std::make_shared<RateDropAttack>(
      match, 0.25, SimTime::origin(), 7));
  h.blast(1000);
  h.net.sim().run();
  EXPECT_NEAR(static_cast<double>(h.delivered), 750.0, 50.0);
}

TEST(ModificationAttack, PreservesDeliveryAltersBytes) {
  AttackHarness h;
  std::set<std::uint64_t> tags;
  h.net.router(h.b).add_local_handler(
      [&tags](const sim::Packet& p, NodeId, SimTime) { tags.insert(p.payload_tag); });
  FlowMatch match;
  h.net.router(h.a).set_forward_filter(std::make_shared<ModificationAttack>(
      match, 1.0, SimTime::origin(), 7));
  h.blast(50);
  h.net.sim().run();
  EXPECT_EQ(h.delivered, 50U);      // nothing lost
  EXPECT_EQ(tags.size(), 50U);      // but every payload replaced uniquely
}

TEST(ReorderAttack, DelayedPacketsArriveLate) {
  AttackHarness h;
  std::vector<std::uint32_t> order;
  h.net.router(h.b).add_local_handler(
      [&order](const sim::Packet& p, NodeId, SimTime) { order.push_back(p.hdr.seq); });
  FlowMatch match;
  h.net.router(h.a).set_forward_filter(std::make_shared<ReorderAttack>(
      match, 0.5, Duration::millis(50), SimTime::origin(), 7));
  h.blast(40);
  h.net.sim().run();
  EXPECT_EQ(order.size(), 40U);
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));
}

// Three routers a - b - c with the filter under test installed at the
// transit router b: the shape every control-plane drop scenario has.
struct TransitHarness {
  sim::Network net{5};
  NodeId a;
  NodeId b;
  NodeId c;
  std::size_t data_delivered = 0;
  std::map<std::uint16_t, std::size_t> control_delivered;
  std::vector<SimTime> control_times;

  TransitHarness() {
    a = net.add_router("a").id();
    b = net.add_router("b").id();
    c = net.add_router("c").id();
    sim::LinkConfig cfg;
    net.connect(a, b, cfg);
    net.connect(b, c, cfg);
    net.router(a).set_route(c, net.router(a).interface_to(b)->index());
    net.router(b).set_route(c, net.router(b).interface_to(c)->index());
    net.router(c).add_local_handler(
        [this](const sim::Packet&, NodeId, SimTime) { ++data_delivered; });
    net.router(c).add_control_sink([this](const sim::Packet& p, NodeId, SimTime now) {
      ++control_delivered[p.control != nullptr ? p.control->kind() : 0];
      control_times.push_back(now);
    });
  }

  void send_data(double t, std::uint32_t flow) {
    net.sim().schedule_at(SimTime::from_seconds(t), [this, flow] {
      sim::PacketHeader hdr;
      hdr.src = a;
      hdr.dst = c;
      hdr.flow_id = flow;
      net.router(a).originate(net.make_packet(hdr, 100));
    });
  }

  void send_control(double t, std::uint16_t kind) {
    net.sim().schedule_at(SimTime::from_seconds(t), [this, kind] {
      sim::PacketHeader hdr;
      hdr.src = a;
      hdr.dst = c;
      hdr.proto = sim::Protocol::kControl;
      sim::Packet p = net.make_packet(hdr, 64);
      auto payload = std::make_shared<ProbePayload>();
      payload->tag = kind;
      p.control = std::move(payload);
      net.router(a).originate(p);
    });
  }

  void run() { net.sim().run_until(SimTime::from_seconds(2)); }
};

TEST(RateDropAttack, ControlOnlyTargetedWhenOptedIn) {
  {
    // include_control defaults to false: a full-rate data dropper must let
    // transit control traffic (summaries, acks) pass untouched.
    TransitHarness h;
    const FlowMatch match;
    h.net.router(h.b).set_forward_filter(std::make_shared<RateDropAttack>(
        match, 1.0, SimTime::origin(), 7));
    for (int i = 0; i < 10; ++i) h.send_data(0.01 * i, 1);
    for (int i = 0; i < 10; ++i) h.send_control(0.01 * i, 0x2F20);
    h.run();
    EXPECT_EQ(h.data_delivered, 0U);
    EXPECT_EQ(h.control_delivered[0x2F20], 10U);
  }
  {
    TransitHarness h;
    FlowMatch match;
    match.include_control = true;
    h.net.router(h.b).set_forward_filter(std::make_shared<RateDropAttack>(
        match, 1.0, SimTime::origin(), 7));
    for (int i = 0; i < 10; ++i) h.send_data(0.01 * i, 1);
    for (int i = 0; i < 10; ++i) h.send_control(0.01 * i, 0x2F20);
    h.run();
    EXPECT_EQ(h.data_delivered, 0U);
    EXPECT_EQ(h.control_delivered[0x2F20], 0U);
  }
}

TEST(ControlDropAttack, DropsOnlyMatchingKinds) {
  TransitHarness h;
  ControlDropAttack::Config cfg;
  cfg.match.kinds = {0x2F20};
  cfg.seed = 8;
  h.net.router(h.b).set_forward_filter(std::make_shared<ControlDropAttack>(cfg));
  for (int i = 0; i < 10; ++i) h.send_data(0.01 * i, 1);
  for (int i = 0; i < 10; ++i) h.send_control(0.01 * i, 0x2F20);
  for (int i = 0; i < 10; ++i) h.send_control(0.01 * i, 0x2F21);
  h.run();
  EXPECT_EQ(h.data_delivered, 10U);  // data plane untouched
  EXPECT_EQ(h.control_delivered[0x2F20], 0U);
  EXPECT_EQ(h.control_delivered[0x2F21], 10U);
}

TEST(ControlDropAttack, DelayVariantHoldsControlBack) {
  TransitHarness h;
  ControlDropAttack::Config cfg;
  cfg.drop_fraction = 0.0;
  cfg.delay_fraction = 1.0;
  cfg.delay = Duration::millis(50);
  cfg.seed = 8;
  h.net.router(h.b).set_forward_filter(std::make_shared<ControlDropAttack>(cfg));
  h.send_control(0.1, 0x2F20);
  h.run();
  ASSERT_EQ(h.control_delivered[0x2F20], 1U);
  EXPECT_GE(h.control_times.front(), SimTime::from_seconds(0.15));
}

TEST(FilterChain, ComposesDataAndControlAdversaries) {
  // One compromised router running a data-plane dropper AND a
  // control-plane dropper: each filter hits its own traffic class.
  TransitHarness h;
  auto chain = std::make_shared<FilterChain>();
  FlowMatch data_match;
  data_match.flow_ids = {1};
  chain->append(std::make_shared<RateDropAttack>(data_match, 1.0, SimTime::origin(), 7));
  ControlDropAttack::Config control_cfg;
  control_cfg.match.kinds = {0x2F20};
  control_cfg.seed = 8;
  chain->append(std::make_shared<ControlDropAttack>(control_cfg));
  h.net.router(h.b).set_forward_filter(chain);
  for (int i = 0; i < 10; ++i) h.send_data(0.01 * i, 1);  // targeted flow
  for (int i = 0; i < 10; ++i) h.send_data(0.01 * i, 2);  // bystander flow
  for (int i = 0; i < 10; ++i) h.send_control(0.01 * i, 0x2F20);
  for (int i = 0; i < 10; ++i) h.send_control(0.01 * i, 0x2F21);
  h.run();
  EXPECT_EQ(h.data_delivered, 10U);  // flow 2 survives, flow 1 gone
  EXPECT_EQ(h.control_delivered[0x2F20], 0U);
  EXPECT_EQ(h.control_delivered[0x2F21], 10U);
}

TEST(FabricationAttack, InjectsAtConfiguredRate) {
  AttackHarness h;
  FabricationAttack::Config cfg;
  cfg.at = h.a;
  cfg.forged_src = 9;  // a node that does not even exist
  cfg.dst = h.b;
  cfg.flow_id = 66;
  cfg.rate_pps = 100;
  cfg.start = SimTime::origin();
  cfg.stop = SimTime::from_seconds(1);
  std::size_t forged = 0;
  h.net.router(h.b).add_local_handler([&forged](const sim::Packet& p, NodeId, SimTime) {
    if (p.hdr.flow_id == 66) ++forged;
  });
  FabricationAttack attack(h.net, cfg);
  h.net.sim().run_until(SimTime::from_seconds(2));
  EXPECT_NEAR(static_cast<double>(forged), 100.0, 2.0);
}

}  // namespace
}  // namespace fatih::attacks
