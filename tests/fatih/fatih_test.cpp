#include "fatih/fatih.hpp"

#include <gtest/gtest.h>

#include "attacks/attacks.hpp"
#include "detection/spec.hpp"
#include "routing/topologies.hpp"
#include "traffic/sources.hpp"

namespace fatih::system {
namespace {

using util::Duration;
using util::NodeId;
using util::SimTime;

// The Fig. 5.6/5.7 environment: Abilene, link-state routing, Fatih with
// k=1 and accelerated timers so tests stay fast.
struct AbileneFatih {
  sim::Network net{77};
  crypto::KeyRegistry keys{2025};
  std::unique_ptr<routing::LinkStateRouting> lsr;
  std::unique_ptr<FatihSystem> fatih;
  std::vector<std::unique_ptr<traffic::CbrSource>> sources;

  AbileneFatih() {
    using namespace fatih::routing;
    for (NodeId n = 0; n <= kNewYork; ++n) net.add_router(abilene_name(n));
    for (const auto& l : abilene_links()) {
      sim::LinkConfig link;
      link.delay = Duration::millis(l.delay_ms);
      link.metric = l.delay_ms;
      link.bandwidth_bps = 1e8;
      net.connect(l.a, l.b, link);
    }
    LinkStateConfig lcfg;
    lcfg.hello_interval = Duration::seconds(1);
    lcfg.spf_delay = Duration::millis(500);
    lcfg.spf_hold = Duration::seconds(1);
    lsr = std::make_unique<routing::LinkStateRouting>(net, keys, lcfg);

    FatihConfig fcfg;
    fcfg.detection.clock = detection::RoundClock{SimTime::from_seconds(10),
                                                 Duration::seconds(1)};
    fcfg.detection.k = 1;
    fcfg.detection.collect_settle = Duration::millis(200);
    fcfg.detection.exchange_timeout = Duration::millis(400);
    fcfg.detection.thresholds.max_lost_packets = 2;
    fatih = std::make_unique<FatihSystem>(net, keys, *lsr, fcfg);
  }

  void start() {
    lsr->start();
    // Commission once routing is converged (t=10 s, the round epoch).
    net.sim().schedule_at(SimTime::from_seconds(10), [this] {
      auto tables = std::make_shared<routing::RoutingTables>(
          routing::abilene_topology());
      std::vector<NodeId> terminals;
      for (NodeId n = 0; n <= routing::kNewYork; ++n) terminals.push_back(n);
      fatih->commission(tables, terminals);
    });
  }

  void add_cbr(NodeId src, NodeId dst, std::uint32_t flow, double pps, double start,
               double stop) {
    traffic::CbrSource::Config cfg;
    cfg.src = src;
    cfg.dst = dst;
    cfg.flow_id = flow;
    cfg.rate_pps = pps;
    cfg.start = SimTime::from_seconds(start);
    cfg.stop = SimTime::from_seconds(stop);
    sources.push_back(std::make_unique<traffic::CbrSource>(net, cfg));
  }
};

TEST(Fatih, CleanNetworkStaysQuiet) {
  AbileneFatih a;
  a.start();
  a.add_cbr(routing::kNewYork, routing::kSunnyvale, 1, 100, 11, 18);
  a.add_cbr(routing::kSunnyvale, routing::kNewYork, 2, 100, 11, 18);
  a.net.sim().run_until(SimTime::from_seconds(20));
  EXPECT_TRUE(a.fatih->suspicions().empty());
  for (NodeId n = 0; n <= routing::kNewYork; ++n) {
    EXPECT_TRUE(a.lsr->banned_segments(n).empty());
  }
}

TEST(Fatih, KansasCityAttackDetectedAndRoutedAround) {
  // The Fig. 5.7 storyline, compressed: traffic between the coasts, the
  // Kansas City router compromised to drop 20% of transit traffic;
  // detection, alert flooding, and rerouting onto the southern path.
  AbileneFatih a;
  a.start();
  a.add_cbr(routing::kSunnyvale, routing::kNewYork, 1, 200, 11, 30);
  a.add_cbr(routing::kNewYork, routing::kSunnyvale, 2, 200, 11, 30);

  detection::GroundTruth truth;
  truth.mark_traffic_faulty(routing::kKansasCity, SimTime::from_seconds(14));
  attacks::FlowMatch match;  // all transit data traffic
  a.net.router(routing::kKansasCity)
      .set_forward_filter(std::make_shared<attacks::RateDropAttack>(
          match, 0.2, SimTime::from_seconds(14), 5));

  a.net.sim().run_until(SimTime::from_seconds(30));

  // (1) Detection happened and was accurate (precision k+2 = 3).
  ASSERT_FALSE(a.fatih->suspicions().empty());
  EXPECT_TRUE(detection::check_accuracy(a.fatih->suspicions(), truth, 3).accuracy_holds());
  EXPECT_TRUE(detection::check_completeness_for(a.fatih->suspicions(),
                                                routing::kKansasCity));

  // (2) The alert propagated: every router banned at least one segment.
  for (NodeId n = 0; n <= routing::kNewYork; ++n) {
    EXPECT_FALSE(a.lsr->banned_segments(n).empty()) << routing::abilene_name(n);
  }

  // (3) Traffic no longer crosses the suspected segment: send a probe and
  // record its path.
  std::vector<NodeId> visited;
  for (NodeId n = 0; n <= routing::kNewYork; ++n) {
    a.net.router(n).add_receive_tap(
        [&visited, n](const sim::Packet& p, NodeId, SimTime) {
          if (p.hdr.flow_id == 777) visited.push_back(n);
        });
  }
  sim::PacketHeader hdr;
  hdr.src = routing::kSunnyvale;
  hdr.dst = routing::kNewYork;
  hdr.flow_id = 777;
  const sim::Packet probe = a.net.make_packet(hdr, 100);
  a.net.sim().schedule_at(SimTime::from_seconds(30.5), [&] {
    a.net.router(routing::kSunnyvale).originate(probe);
  });
  a.net.sim().run_until(SimTime::from_seconds(31));
  ASSERT_FALSE(visited.empty());
  EXPECT_EQ(visited.back(), routing::kNewYork);
  // The new path must avoid at least the banned middle.
  for (const auto& banned : a.lsr->banned_segments(routing::kSunnyvale)) {
    routing::Path p = visited;
    p.insert(p.begin(), routing::kSunnyvale);
    EXPECT_FALSE(banned.within(p)) << banned.to_string();
  }
}

TEST(Fatih, RecommissionRetiresOldEngine) {
  // After a response reroutes traffic, commissioning again swaps in a new
  // monitoring set; the retired engine stops raising suspicions.
  AbileneFatih a;
  a.start();
  a.add_cbr(routing::kSunnyvale, routing::kNewYork, 1, 150, 11, 28);

  attacks::FlowMatch match;
  a.net.router(routing::kKansasCity)
      .set_forward_filter(std::make_shared<attacks::RateDropAttack>(
          match, 0.2, SimTime::from_seconds(14), 5));
  a.net.sim().run_until(SimTime::from_seconds(18));
  const auto* first_engine = &a.fatih->engine();
  ASSERT_FALSE(a.fatih->suspicions().empty());

  // Cure the attacker and recommission at t=18 (fresh monitoring set).
  a.net.router(routing::kKansasCity).set_forward_filter(nullptr);
  a.net.sim().schedule_at(SimTime::from_seconds(18), [&] {
    auto tables = std::make_shared<routing::RoutingTables>(routing::abilene_topology());
    std::vector<NodeId> terminals;
    for (NodeId n = 0; n <= routing::kNewYork; ++n) terminals.push_back(n);
    a.fatih->commission(tables, terminals);
  });
  a.net.sim().run_until(SimTime::from_seconds(30));
  EXPECT_NE(&a.fatih->engine(), first_engine);
  // The new engine sees only clean traffic: no suspicions.
  EXPECT_TRUE(a.fatih->suspicions().empty());
}

TEST(Fatih, RttProbeMeasuresPathLatency) {
  AbileneFatih a;
  a.start();
  RttProbe probe(a.net, routing::kNewYork, routing::kSunnyvale, 900,
                 Duration::millis(500));
  probe.start(SimTime::from_seconds(11));
  a.net.sim().run_until(SimTime::from_seconds(15));
  ASSERT_GE(probe.samples().size(), 5U);
  // One-way 25 ms -> RTT ~50 ms.
  for (const auto& s : probe.samples()) {
    EXPECT_NEAR(s.rtt_seconds, 0.050, 0.005);
  }
}

}  // namespace
}  // namespace fatih::system
