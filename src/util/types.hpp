// Shared primitive identifier types.
//
// Kept in util so that low-level libraries (crypto, validation) can talk
// about routers without depending on the simulator or routing layers.
#pragma once

#include <cstdint>
#include <string>

namespace fatih::util {

/// Identifies a node (router or end host) in the simulated network.
/// Dense small integers; assigned by the topology builder.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Renders a node id as "r<id>" for logs. Built by append rather than
/// operator+ — GCC 12's -Wrestrict false-positives on the char*+string&&
/// overload when fully inlined at -O3, and the tree builds with -Werror.
[[nodiscard]] inline std::string node_name(NodeId id) {
  std::string out("r");
  out += std::to_string(id);
  return out;
}

}  // namespace fatih::util
