// Minimal leveled logger.
//
// The simulator and protocol engines log noteworthy events (detections,
// route recomputations, attack activations) through this sink so that the
// examples can narrate what is happening while tests and benches run quiet.
#pragma once

#include <string>
#include <string_view>

namespace fatih::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level; messages below it are discarded.
/// Defaults to kWarn so tests stay quiet.
void set_log_level(LogLevel level);

[[nodiscard]] LogLevel log_level();

/// printf-style formatting into a std::string.
[[nodiscard]] std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Writes one formatted line to stderr if `level` passes the global filter.
void log_line(LogLevel level, std::string_view component, std::string_view message);

/// printf-style convenience wrapper:
///   log(LogLevel::kInfo, "fatih", "detected segment %s", seg.c_str());
template <typename... Args>
void log(LogLevel level, std::string_view component, const char* fmt, Args&&... args) {
  if (level < log_level()) return;
  if constexpr (sizeof...(Args) == 0) {
    log_line(level, component, fmt);
  } else {
    log_line(level, component, strfmt(fmt, std::forward<Args>(args)...));
  }
}

}  // namespace fatih::util
