// Sorted-vector flat map/set.
//
// Drop-in replacements for the std::map / std::set subset the per-round
// accounting structures use (Π2 received-summary slots, Πk+2 own/peer
// stores, Protocol χ queue records, summary buckets). Keys live
// contiguously in one sorted vector: lookups binary-search a cache-dense
// array instead of chasing red-black tree nodes, and iteration is a linear
// scan in strictly increasing key order — the SAME order std::map yields,
// which is load-bearing: identical seeds must produce byte-identical
// suspicion sets, so swapping the container must not reorder any walk.
//
// Inserts shift the tail (O(n)); the accounting maps are small and
// short-lived (per round, per queue), where contiguity wins over
// asymptotics. Not a general replacement: iterators invalidate on insert
// and erase, like a vector's.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace fatih::util {

/// std::map-compatible subset over a key-sorted vector of pairs.
template <typename Key, typename T, typename Compare = std::less<Key>>
class FlatMap {
 public:
  using key_type = Key;
  using mapped_type = T;
  using value_type = std::pair<Key, T>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  [[nodiscard]] iterator begin() { return v_.begin(); }
  [[nodiscard]] iterator end() { return v_.end(); }
  [[nodiscard]] const_iterator begin() const { return v_.begin(); }
  [[nodiscard]] const_iterator end() const { return v_.end(); }
  [[nodiscard]] std::size_t size() const { return v_.size(); }
  [[nodiscard]] bool empty() const { return v_.empty(); }
  void clear() { v_.clear(); }

  [[nodiscard]] iterator lower_bound(const Key& k) {
    return std::lower_bound(v_.begin(), v_.end(), k, KeyLess{});
  }
  [[nodiscard]] const_iterator lower_bound(const Key& k) const {
    return std::lower_bound(v_.begin(), v_.end(), k, KeyLess{});
  }

  [[nodiscard]] iterator find(const Key& k) {
    auto it = lower_bound(k);
    return it != v_.end() && !Compare{}(k, it->first) ? it : v_.end();
  }
  [[nodiscard]] const_iterator find(const Key& k) const {
    auto it = lower_bound(k);
    return it != v_.end() && !Compare{}(k, it->first) ? it : v_.end();
  }
  [[nodiscard]] bool contains(const Key& k) const { return find(k) != v_.end(); }
  [[nodiscard]] std::size_t count(const Key& k) const { return contains(k) ? 1 : 0; }

  [[nodiscard]] T& at(const Key& k) {
    auto it = find(k);
    if (it == v_.end()) throw std::out_of_range("FlatMap::at");
    return it->second;
  }
  [[nodiscard]] const T& at(const Key& k) const {
    auto it = find(k);
    if (it == v_.end()) throw std::out_of_range("FlatMap::at");
    return it->second;
  }

  T& operator[](const Key& k) {
    auto it = lower_bound(k);
    if (it == v_.end() || Compare{}(k, it->first)) {
      it = v_.insert(it, value_type(k, T{}));
    }
    return it->second;
  }

  std::pair<iterator, bool> insert(value_type kv) {
    auto it = lower_bound(kv.first);
    if (it != v_.end() && !Compare{}(kv.first, it->first)) return {it, false};
    return {v_.insert(it, std::move(kv)), true};
  }

  template <typename... Args>
  std::pair<iterator, bool> emplace(Args&&... args) {
    return insert(value_type(std::forward<Args>(args)...));
  }

  iterator erase(iterator it) { return v_.erase(it); }
  iterator erase(const_iterator it) { return v_.erase(it); }
  std::size_t erase(const Key& k) {
    auto it = find(k);
    if (it == v_.end()) return 0;
    v_.erase(it);
    return 1;
  }

  /// Bulk removal in one pass; surviving order (and hence iteration order)
  /// is preserved.
  template <typename Pred>
  std::size_t erase_if(Pred pred) {
    return std::erase_if(v_, pred);
  }

 private:
  struct KeyLess {
    bool operator()(const value_type& a, const Key& b) const { return Compare{}(a.first, b); }
    bool operator()(const Key& a, const value_type& b) const { return Compare{}(a, b.first); }
  };
  std::vector<value_type> v_;
};

/// std::set-compatible subset over a sorted vector.
template <typename Key, typename Compare = std::less<Key>>
class FlatSet {
 public:
  using key_type = Key;
  using value_type = Key;
  using iterator = typename std::vector<Key>::const_iterator;
  using const_iterator = iterator;

  [[nodiscard]] const_iterator begin() const { return v_.begin(); }
  [[nodiscard]] const_iterator end() const { return v_.end(); }
  [[nodiscard]] std::size_t size() const { return v_.size(); }
  [[nodiscard]] bool empty() const { return v_.empty(); }
  void clear() { v_.clear(); }

  [[nodiscard]] const_iterator find(const Key& k) const {
    auto it = std::lower_bound(v_.begin(), v_.end(), k, Compare{});
    return it != v_.end() && !Compare{}(k, *it) ? const_iterator(it) : end();
  }
  [[nodiscard]] bool contains(const Key& k) const { return find(k) != end(); }
  [[nodiscard]] std::size_t count(const Key& k) const { return contains(k) ? 1 : 0; }

  std::pair<const_iterator, bool> insert(Key k) {
    auto it = std::lower_bound(v_.begin(), v_.end(), k, Compare{});
    if (it != v_.end() && !Compare{}(k, *it)) return {const_iterator(it), false};
    return {const_iterator(v_.insert(it, std::move(k))), true};
  }

  std::size_t erase(const Key& k) {
    auto it = std::lower_bound(v_.begin(), v_.end(), k, Compare{});
    if (it == v_.end() || Compare{}(k, *it)) return 0;
    v_.erase(it);
    return 1;
  }

  /// Bulk removal in one pass; surviving order is preserved.
  template <typename Pred>
  std::size_t erase_if(Pred pred) {
    return std::erase_if(v_, pred);
  }

 private:
  std::vector<Key> v_;
};

/// std::erase_if analogue (found by ADL); one linear pass, order of
/// surviving elements preserved.
template <typename Key, typename T, typename Compare, typename Pred>
std::size_t erase_if(FlatMap<Key, T, Compare>& m, Pred pred) {
  return m.erase_if(pred);
}

}  // namespace fatih::util
