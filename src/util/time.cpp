#include "util/time.hpp"

#include <cstdio>

namespace fatih::util {

std::string to_string(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6fs", t.seconds());
  return buf;
}

std::string to_string(Duration d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6fs", d.to_seconds());
  return buf;
}

}  // namespace fatih::util
