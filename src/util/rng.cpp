#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <cstring>

#include "util/hash.hpp"

namespace fatih::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& word : s_) word = splitmix64(seed);
  // Avoid the all-zero state, which is a fixed point of xoshiro.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = next_double();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (have_gauss_) {
    have_gauss_ = false;
    return mean + stddev * gauss_;
  }
  // Box-Muller transform.
  double u1 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  gauss_ = r * std::sin(theta);
  have_gauss_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::pareto(double xm, double alpha) {
  assert(xm > 0.0 && alpha > 0.0);
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return xm / std::pow(u, 1.0 / alpha);
}

Rng Rng::fork() { return Rng(next_u64()); }

std::uint64_t Rng::state_hash() const {
  std::uint64_t h = kFnvOffsetBasis;
  for (const std::uint64_t word : s_) h = fnv1a64_word(h, word);
  h = fnv1a64_word(h, have_gauss_ ? 1 : 0);
  std::uint64_t bits = 0;
  std::memcpy(&bits, &gauss_, sizeof(bits));
  return fnv1a64_word(h, bits);
}

}  // namespace fatih::util
