// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulator (traffic inter-arrivals,
// processing jitter, attack sampling, topology generation) draws from an
// explicitly seeded Rng so that experiments are reproducible. The core
// generator is xoshiro256** (Blackman & Vigna), implemented from scratch.
#pragma once

#include <array>
#include <cstdint>

namespace fatih::util {

/// xoshiro256** PRNG with distribution helpers.
///
/// Not cryptographically secure; crypto-grade randomness is not needed
/// anywhere in the simulator (keys are also deterministic per-seed).
class Rng {
 public:
  /// Seeds the state via splitmix64 so that nearby seeds give uncorrelated
  /// streams.
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Normally distributed value (Box-Muller).
  double normal(double mean, double stddev);

  /// Pareto-distributed value with scale xm and shape alpha; used for
  /// heavy-tailed flow sizes.
  double pareto(double xm, double alpha);

  /// Derives an independent child generator; handy for giving each flow or
  /// router its own stream.
  Rng fork();

  /// FNV-1a fingerprint of the full generator state — the xoshiro words
  /// plus the Box-Muller carry — so a checkpoint digest can pin the exact
  /// stream position, not just the seed.
  [[nodiscard]] std::uint64_t state_hash() const;

 private:
  std::array<std::uint64_t, 4> s_{};
  bool have_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace fatih::util
