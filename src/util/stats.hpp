// Statistical primitives used by the detection protocols and the benches.
//
// Protocol chi (dissertation ch. 6) attributes packet losses to malice with
// a confidence value computed from the normal CDF of the queue-prediction
// error, and a combined Z-test over a round's losses. Those computations
// live here, together with generic accumulators used for reporting.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace fatih::util {

/// Welford online accumulator for mean / variance / extrema.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponentially-weighted moving average: v <- (1-alpha)*v + alpha*x.
/// The first sample initializes the average directly (no zero-bias warmup).
/// Used by the metrics registry for smoothed gauges (queue fill, RTT).
class Ewma {
 public:
  /// Requires alpha in (0, 1].
  explicit Ewma(double alpha);

  void add(double x);

  /// 0 before the first sample; see count() to distinguish.
  [[nodiscard]] double value() const { return v_; }
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double alpha() const { return alpha_; }

 private:
  double alpha_;
  double v_ = 0.0;
  std::size_t n_ = 0;
};

/// Standard normal cumulative distribution function Phi(z).
[[nodiscard]] double normal_cdf(double z);

/// Phi((x - mean) / stddev); stddev must be > 0.
[[nodiscard]] double normal_cdf(double x, double mean, double stddev);

/// One-sided Z-test score for "sample mean exceeds mu0":
///   z = (sample_mean - mu0) / (sigma / sqrt(n)).
[[nodiscard]] double z_score(double sample_mean, double mu0, double sigma, std::size_t n);

/// p-th percentile (0..100) by linear interpolation. Sorts a copy.
/// Returns nullopt for an empty sample.
[[nodiscard]] std::optional<double> percentile(std::vector<double> xs, double p);

/// Median convenience wrapper over percentile(xs, 50).
[[nodiscard]] std::optional<double> median(std::vector<double> xs);

/// Fixed-width histogram over [lo, hi) used for the queue-error
/// distribution plots (Fig. 6.3 reproduction).
class Histogram {
 public:
  /// Requires lo < hi and bins >= 1. Out-of-range samples clamp into the
  /// first/last bin and are counted separately.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_[i]; }
  /// Center of bin i.
  [[nodiscard]] double bin_center(std::size_t i) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

/// Chi-squared goodness-of-fit statistic of a histogram against a normal
/// distribution with the given parameters. Used by tests to check that the
/// queue prediction error is approximately normal (dissertation §6.2.1).
/// Returns the reduced statistic (chi^2 / degrees-of-freedom); values near
/// 1 indicate a good fit. Bins with expected count < 5 are pooled.
[[nodiscard]] double normal_fit_reduced_chi2(const Histogram& h, double mean, double stddev);

}  // namespace fatih::util
