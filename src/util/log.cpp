#include "util/log.hpp"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace fatih::util {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

std::string strfmt(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (n <= 0) {
    va_end(args2);
    return {};
  }
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

void log_line(LogLevel level, std::string_view component, std::string_view message) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace fatih::util
