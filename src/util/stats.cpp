#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fatih::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Ewma::Ewma(double alpha) : alpha_(alpha) { assert(alpha > 0.0 && alpha <= 1.0); }

void Ewma::add(double x) {
  if (n_ == 0) {
    v_ = x;
  } else {
    v_ += alpha_ * (x - v_);
  }
  ++n_;
}

double normal_cdf(double z) { return 0.5 * (1.0 + std::erf(z / std::sqrt(2.0))); }

double normal_cdf(double x, double mean, double stddev) {
  assert(stddev > 0.0);
  return normal_cdf((x - mean) / stddev);
}

double z_score(double sample_mean, double mu0, double sigma, std::size_t n) {
  assert(sigma > 0.0 && n > 0);
  return (sample_mean - mu0) / (sigma / std::sqrt(static_cast<double>(n)));
}

std::optional<double> percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return std::nullopt;
  std::sort(xs.begin(), xs.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

std::optional<double> median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(lo < hi && bins >= 1);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    ++counts_.front();
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    ++counts_.back();
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::size_t>((x - lo_) / width);
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

double Histogram::bin_center(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * width;
}

double normal_fit_reduced_chi2(const Histogram& h, double mean, double stddev) {
  assert(stddev > 0.0);
  const auto total = static_cast<double>(h.total());
  if (total == 0.0) return 0.0;
  const std::size_t n = h.bins();
  // Bin edges from centers: center +/- half width.
  const double width = (h.bin_center(1) - h.bin_center(0));
  double chi2 = 0.0;
  std::size_t dof = 0;
  double pooled_obs = 0.0;
  double pooled_exp = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double left = h.bin_center(i) - width / 2;
    const double right = h.bin_center(i) + width / 2;
    const double expected =
        total * (normal_cdf(right, mean, stddev) - normal_cdf(left, mean, stddev));
    pooled_obs += static_cast<double>(h.bin_count(i));
    pooled_exp += expected;
    if (pooled_exp >= 5.0) {  // pool small-expectation bins
      const double d = pooled_obs - pooled_exp;
      chi2 += d * d / pooled_exp;
      ++dof;
      pooled_obs = 0.0;
      pooled_exp = 0.0;
    }
  }
  if (pooled_exp > 0.0) {
    const double d = pooled_obs - pooled_exp;
    chi2 += d * d / pooled_exp;
    ++dof;
  }
  // Two parameters were estimated from the data.
  const std::size_t adjusted = dof > 3 ? dof - 3 : 1;
  return chi2 / static_cast<double>(adjusted);
}

}  // namespace fatih::util
