// FNV-1a 64-bit hashing.
//
// The deterministic fingerprints that cross process or PR boundaries —
// scenario spec hashes, snapshot checksums, simulator/detector state
// digests — all fold through this one implementation so the constants can
// never drift between writers and readers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace fatih::util {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// FNV-1a 64 over `n` raw bytes, continuing from `seed`.
[[nodiscard]] inline std::uint64_t fnv1a64(const void* data, std::size_t n,
                                           std::uint64_t seed = kFnvOffsetBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Folds one 64-bit word (as its 8 little-endian bytes) into an FNV-1a
/// accumulator.
[[nodiscard]] inline std::uint64_t fnv1a64_word(std::uint64_t acc, std::uint64_t word) {
  unsigned char bytes[8];
  std::memcpy(bytes, &word, 8);
  return fnv1a64(bytes, 8, acc);
}

}  // namespace fatih::util
