// Simulated time for the discrete-event network simulator.
//
// All libraries in this project are driven exclusively by simulated time:
// there is no wall-clock dependency anywhere, which keeps every experiment
// bit-for-bit reproducible. Time is an integer count of nanoseconds since
// the start of the simulation.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace fatih::util {

/// A span of simulated time in integer nanoseconds.
///
/// Value type with full ordering and arithmetic. Use the factory functions
/// (`Duration::seconds(5)`, `Duration::micros(250)`, ...) rather than raw
/// nanosecond counts in application code.
class Duration {
 public:
  constexpr Duration() = default;

  /// Constructs from a raw nanosecond count.
  static constexpr Duration nanos(std::int64_t ns) { return Duration(ns); }
  static constexpr Duration micros(std::int64_t us) { return Duration(us * 1000); }
  static constexpr Duration millis(std::int64_t ms) { return Duration(ms * 1'000'000); }
  static constexpr Duration seconds(std::int64_t s) { return Duration(s * 1'000'000'000); }

  /// Constructs from a fractional second count (e.g. 0.0035 -> 3.5 ms).
  static constexpr Duration from_seconds(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e9));
  }

  [[nodiscard]] constexpr std::int64_t count_nanos() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  [[nodiscard]] constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
  constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
  constexpr Duration operator*(std::int64_t k) const { return Duration(ns_ * k); }
  constexpr Duration operator/(std::int64_t k) const { return Duration(ns_ / k); }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

  /// Scales by a real factor, rounding toward zero.
  [[nodiscard]] constexpr Duration scaled(double f) const {
    return Duration(static_cast<std::int64_t>(static_cast<double>(ns_) * f));
  }

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// An instant of simulated time (nanoseconds since simulation start).
class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime origin() { return SimTime(0); }
  static constexpr SimTime from_nanos(std::int64_t ns) { return SimTime(ns); }
  static constexpr SimTime from_seconds(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e9));
  }
  /// A time later than every time the simulator will ever reach.
  static constexpr SimTime infinity() {
    return SimTime(std::numeric_limits<std::int64_t>::max());
  }

  [[nodiscard]] constexpr std::int64_t nanos() const { return ns_; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(Duration d) const { return SimTime(ns_ + d.count_nanos()); }
  constexpr SimTime operator-(Duration d) const { return SimTime(ns_ - d.count_nanos()); }
  constexpr Duration operator-(SimTime o) const { return Duration::nanos(ns_ - o.ns_); }
  constexpr SimTime& operator+=(Duration d) { ns_ += d.count_nanos(); return *this; }

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// A half-open interval [begin, end) of simulated time; the measurement
/// window tau over which traffic information is collected (dissertation §4.1).
struct TimeInterval {
  SimTime begin;
  SimTime end;

  [[nodiscard]] constexpr bool contains(SimTime t) const { return begin <= t && t < end; }
  [[nodiscard]] constexpr Duration length() const { return end - begin; }
  constexpr bool operator==(const TimeInterval&) const = default;
};

/// Renders a time as "12.345s" for logs and bench tables.
[[nodiscard]] std::string to_string(SimTime t);
[[nodiscard]] std::string to_string(Duration d);

}  // namespace fatih::util
