#include "validation/reconcile.hpp"

#include <algorithm>
#include <cassert>

#include "crypto/siphash.hpp"
#include "util/rng.hpp"

namespace fatih::validation {

namespace gf {

std::uint64_t reduce(std::uint64_t x) {
  // p = 2^61 - 1: fold the top bits.
  x = (x & kP) + (x >> 61);
  if (x >= kP) x -= kP;
  return x;
}

std::uint64_t add(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a + b;
  if (s >= kP) s -= kP;
  return s;
}

std::uint64_t sub(std::uint64_t a, std::uint64_t b) { return a >= b ? a - b : a + kP - b; }

std::uint64_t mul(std::uint64_t a, std::uint64_t b) {
  const unsigned __int128 prod = static_cast<unsigned __int128>(a) * b;
  const std::uint64_t lo = static_cast<std::uint64_t>(prod & kP);
  const std::uint64_t hi = static_cast<std::uint64_t>(prod >> 61);
  std::uint64_t s = lo + hi;
  if (s >= kP) s -= kP;
  return s;
}

std::uint64_t pow(std::uint64_t base, std::uint64_t exp) {
  std::uint64_t result = 1;
  std::uint64_t b = reduce(base);
  while (exp > 0) {
    if (exp & 1) result = mul(result, b);
    b = mul(b, b);
    exp >>= 1;
  }
  return result;
}

std::uint64_t inv(std::uint64_t a) {
  assert(a % kP != 0);
  return pow(a, kP - 2);  // Fermat
}

}  // namespace gf

namespace {

// Polynomials are coefficient vectors, lowest degree first, over GF(p).
using Poly = std::vector<std::uint64_t>;

void trim(Poly& p) {
  while (!p.empty() && p.back() == 0) p.pop_back();
}

[[nodiscard]] std::uint64_t eval(const Poly& p, std::uint64_t x) {
  std::uint64_t acc = 0;
  for (auto it = p.rbegin(); it != p.rend(); ++it) acc = gf::add(gf::mul(acc, x), *it);
  return acc;
}

[[nodiscard]] Poly mul(const Poly& a, const Poly& b) {
  if (a.empty() || b.empty()) return {};
  Poly out(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] = gf::add(out[i + j], gf::mul(a[i], b[j]));
    }
  }
  return out;
}

// Remainder of a mod m (m non-zero).
[[nodiscard]] Poly mod(Poly a, const Poly& m) {
  trim(a);
  const std::size_t dm = m.size() - 1;
  const std::uint64_t lead_inv = gf::inv(m.back());
  while (a.size() > dm) {
    const std::uint64_t coef = gf::mul(a.back(), lead_inv);
    const std::size_t shift = a.size() - 1 - dm;
    for (std::size_t i = 0; i < m.size(); ++i) {
      a[shift + i] = gf::sub(a[shift + i], gf::mul(coef, m[i]));
    }
    trim(a);
    if (a.empty()) break;
  }
  return a;
}

[[nodiscard]] Poly gcd(Poly a, Poly b) {
  trim(a);
  trim(b);
  while (!b.empty()) {
    Poly r = mod(a, b);
    a = std::move(b);
    b = std::move(r);
  }
  // Normalize monic.
  if (!a.empty()) {
    const std::uint64_t li = gf::inv(a.back());
    for (auto& c : a) c = gf::mul(c, li);
  }
  return a;
}

// (x + shift)^exp mod m, via square-and-multiply on polynomials.
[[nodiscard]] Poly pow_linear_mod(std::uint64_t shift, std::uint64_t exp, const Poly& m) {
  Poly result{1};
  Poly base{shift, 1};
  base = mod(base, m);
  while (exp > 0) {
    if (exp & 1) result = mod(mul(result, base), m);
    base = mod(mul(base, base), m);
    exp >>= 1;
  }
  return result;
}

void find_roots_rec(const Poly& p, util::Rng& rng, std::vector<std::uint64_t>& out, int depth) {
  Poly f = p;
  trim(f);
  if (f.size() <= 1) return;
  if (f.size() == 2) {
    // c0 + c1 x = 0  =>  x = -c0 / c1.
    out.push_back(gf::mul(gf::sub(0, f[0]), gf::inv(f[1])));
    return;
  }
  if (depth > 128) return;  // defensive: should never trigger for split polys
  // Equal-degree splitting for linear factors: gcd((x+a)^((p-1)/2) - 1, f).
  const std::uint64_t a = gf::reduce(rng.next_u64());
  Poly h = pow_linear_mod(a, (gf::kP - 1) / 2, f);
  if (h.empty()) {
    h = Poly{gf::kP - 1};  // 0 - 1
  } else {
    h[0] = gf::sub(h[0], 1);
  }
  Poly g = gcd(h, f);
  if (g.size() <= 1 || g.size() == f.size()) {
    find_roots_rec(f, rng, out, depth + 1);  // unlucky split; retry
    return;
  }
  // f = g * (f / g): compute the cofactor by long division.
  Poly cof;
  {
    Poly rem = f;
    const std::size_t dg = g.size() - 1;
    const std::uint64_t li = gf::inv(g.back());
    cof.assign(rem.size() - dg, 0);
    while (rem.size() > dg) {
      const std::uint64_t coef = gf::mul(rem.back(), li);
      const std::size_t shift = rem.size() - 1 - dg;
      cof[shift] = coef;
      for (std::size_t i = 0; i < g.size(); ++i) {
        rem[shift + i] = gf::sub(rem[shift + i], gf::mul(coef, g[i]));
      }
      trim(rem);
      if (rem.empty()) break;
    }
  }
  find_roots_rec(g, rng, out, depth + 1);
  find_roots_rec(cof, rng, out, depth + 1);
}

}  // namespace

std::vector<std::uint64_t> evaluation_points(std::size_t count) {
  constexpr crypto::SipKey kPointKey{0x5245434F4E504F49ULL, 0x4E54534B45593031ULL};
  std::vector<std::uint64_t> points;
  points.reserve(count);
  std::uint64_t i = 0;
  while (points.size() < count) {
    const std::uint64_t v = gf::reduce(crypto::siphash24(kPointKey, &i, sizeof(i)));
    ++i;
    points.push_back(v);
  }
  return points;
}

std::vector<std::uint64_t> char_poly_evaluations(std::span<const std::uint64_t> set_elements,
                                                 std::span<const std::uint64_t> points) {
  std::vector<std::uint64_t> out;
  out.reserve(points.size());
  for (std::uint64_t z : points) {
    std::uint64_t acc = 1;
    for (std::uint64_t s : set_elements) acc = gf::mul(acc, gf::sub(z, s));
    out.push_back(acc);
  }
  return out;
}

std::vector<std::uint64_t> find_roots(std::vector<std::uint64_t> monic_coeffs,
                                      std::uint64_t rng_seed) {
  util::Rng rng(rng_seed);
  std::vector<std::uint64_t> roots;
  find_roots_rec(monic_coeffs, rng, roots, 0);
  std::sort(roots.begin(), roots.end());
  return roots;
}

std::optional<ReconcileResult> reconcile(std::span<const std::uint64_t> local,
                                         std::span<const std::uint64_t> remote_evals,
                                         std::size_t remote_count,
                                         std::span<const std::uint64_t> points,
                                         std::size_t d_bound) {
  assert(remote_evals.size() == points.size());
  const auto local_evals = char_poly_evaluations(local, points);

  // f_i = chi_A(z_i) / chi_B(z_i); skip points colliding with an element.
  std::vector<std::uint64_t> zs;
  std::vector<std::uint64_t> fs;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (local_evals[i] == 0 || remote_evals[i] == 0) continue;
    zs.push_back(points[i]);
    fs.push_back(gf::mul(remote_evals[i], gf::inv(local_evals[i])));
  }

  const std::int64_t delta =
      static_cast<std::int64_t>(remote_count) - static_cast<std::int64_t>(local.size());
  const auto abs_delta = static_cast<std::size_t>(delta < 0 ? -delta : delta);

  for (std::size_t d = abs_delta; d <= d_bound; d += 2) {
    // deg P - deg Q = delta, deg P + deg Q = d.
    const std::int64_t dp2 = static_cast<std::int64_t>(d) + delta;
    const std::int64_t dq2 = static_cast<std::int64_t>(d) - delta;
    if (dp2 < 0 || dq2 < 0 || dp2 % 2 != 0) continue;
    const auto dp = static_cast<std::size_t>(dp2) / 2;
    const auto dq = static_cast<std::size_t>(dq2) / 2;
    const std::size_t unknowns = dp + dq;
    if (zs.size() < unknowns + 2) return std::nullopt;  // not enough points

    // Build the linear system over the first `unknowns` usable points:
    //   sum_j p_j z^j - f * sum_j q_j z^j = f * z^dq - z^dp
    // with columns [p_0..p_{dp-1}, q_0..q_{dq-1}].
    const std::size_t n = unknowns;
    std::vector<std::vector<std::uint64_t>> aug(n, std::vector<std::uint64_t>(n + 1, 0));
    for (std::size_t r = 0; r < n; ++r) {
      const std::uint64_t z = zs[r];
      const std::uint64_t f = fs[r];
      std::uint64_t zp = 1;
      for (std::size_t j = 0; j < dp; ++j) {
        aug[r][j] = zp;
        zp = gf::mul(zp, z);
      }
      // zp == z^dp now.
      std::uint64_t zq = 1;
      for (std::size_t j = 0; j < dq; ++j) {
        aug[r][dp + j] = gf::sub(0, gf::mul(f, zq));
        zq = gf::mul(zq, z);
      }
      // zq == z^dq now.
      aug[r][n] = gf::sub(gf::mul(f, zq), zp);
    }

    // Gaussian elimination mod p.
    bool singular = false;
    for (std::size_t col = 0; col < n && !singular; ++col) {
      std::size_t pivot = col;
      while (pivot < n && aug[pivot][col] == 0) ++pivot;
      if (pivot == n) {
        singular = true;
        break;
      }
      std::swap(aug[col], aug[pivot]);
      const std::uint64_t piv_inv = gf::inv(aug[col][col]);
      for (std::size_t j = col; j <= n; ++j) aug[col][j] = gf::mul(aug[col][j], piv_inv);
      for (std::size_t r = 0; r < n; ++r) {
        if (r == col || aug[r][col] == 0) continue;
        const std::uint64_t factor = aug[r][col];
        for (std::size_t j = col; j <= n; ++j) {
          aug[r][j] = gf::sub(aug[r][j], gf::mul(factor, aug[col][j]));
        }
      }
    }
    if (singular) continue;  // try a larger d

    Poly P(dp + 1, 0);
    Poly Q(dq + 1, 0);
    for (std::size_t j = 0; j < dp; ++j) P[j] = aug[j][n];
    P[dp] = 1;
    for (std::size_t j = 0; j < dq; ++j) Q[j] = aug[dp + j][n];
    Q[dq] = 1;

    // Verify on the spare points.
    bool ok = true;
    for (std::size_t r = unknowns; r < zs.size() && r < unknowns + 2; ++r) {
      const std::uint64_t lhs = eval(P, zs[r]);
      const std::uint64_t rhs = gf::mul(fs[r], eval(Q, zs[r]));
      if (lhs != rhs) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;

    ReconcileResult result;
    // roots(Q) subset of local: test our own elements.
    for (std::uint64_t b : local) {
      if (eval(Q, b) == 0) result.only_local.push_back(b);
    }
    if (result.only_local.size() != dq) continue;  // inconsistent fit
    // roots(P): unknown to us; factor.
    result.only_remote = find_roots(P, /*rng_seed=*/0x52454Cull ^ remote_count);
    if (result.only_remote.size() != dp) continue;
    std::sort(result.only_local.begin(), result.only_local.end());
    return result;
  }
  return std::nullopt;
}

std::optional<ReconcileResult> reconcile([[maybe_unused]] obs::MetricsRegistry* metrics,
                                         std::span<const std::uint64_t> local,
                                         std::span<const std::uint64_t> remote_evals,
                                         std::size_t remote_count,
                                         std::span<const std::uint64_t> points,
                                         std::size_t d_bound) {
  auto result = reconcile(local, remote_evals, remote_count, points, d_bound);
  FATIH_METRIC_REG(metrics, counter("reconcile.calls").inc());
  if (!result.has_value()) {
    FATIH_METRIC_REG(metrics, counter("reconcile.beyond_bound").inc());
  } else {
    FATIH_METRIC_REG(metrics, counter("reconcile.diff_elements")
                                  .inc(result->only_local.size() + result->only_remote.size()));
  }
  return result;
}

}  // namespace fatih::validation
