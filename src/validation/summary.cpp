#include "validation/summary.hpp"

#include <algorithm>

namespace fatih::validation {

void FingerprintSummary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(fps_.begin(), fps_.end());
    sorted_ = true;
  }
}

std::vector<Fingerprint> FingerprintSummary::difference(const FingerprintSummary& other) const {
  ensure_sorted();
  other.ensure_sorted();
  std::vector<Fingerprint> out;
  std::set_difference(fps_.begin(), fps_.end(), other.fps_.begin(), other.fps_.end(),
                      std::back_inserter(out));
  return out;
}

std::size_t FingerprintSummary::symmetric_difference_size(const FingerprintSummary& a,
                                                          const FingerprintSummary& b) {
  a.ensure_sorted();
  b.ensure_sorted();
  std::size_t count = 0;
  auto ia = a.fps_.begin();
  auto ib = b.fps_.begin();
  while (ia != a.fps_.end() && ib != b.fps_.end()) {
    if (*ia < *ib) {
      ++count;
      ++ia;
    } else if (*ib < *ia) {
      ++count;
      ++ib;
    } else {
      ++ia;
      ++ib;
    }
  }
  count += static_cast<std::size_t>(a.fps_.end() - ia);
  count += static_cast<std::size_t>(b.fps_.end() - ib);
  return count;
}

std::size_t multiset_difference_size(std::span<const Fingerprint> sorted_a,
                                     std::span<const Fingerprint> sorted_b) {
  std::size_t ia = 0;
  std::size_t ib = 0;
  std::size_t count = 0;
  while (ia < sorted_a.size() && ib < sorted_b.size()) {
    if (sorted_a[ia] < sorted_b[ib]) {
      ++count;
      ++ia;
    } else if (sorted_b[ib] < sorted_a[ia]) {
      ++ib;
    } else {
      ++ia;
      ++ib;
    }
  }
  return count + (sorted_a.size() - ia);
}

std::size_t reorder_count(std::span<const Fingerprint> sent,
                          std::span<const Fingerprint> received) {
  // Restrict both streams to their common multiset.
  // Positions of each fingerprint in the received stream, consumed FIFO so
  // duplicate fingerprints pair up in order. One sorted (fp, position)
  // array with contiguous per-fingerprint groups replaces the node-based
  // fp -> positions map; the stable sort keeps positions ascending within
  // a group, exactly as the map's push_back order did.
  std::vector<std::pair<Fingerprint, std::size_t>> pos;
  pos.reserve(received.size());
  for (std::size_t i = 0; i < received.size(); ++i) pos.emplace_back(received[i], i);
  std::stable_sort(pos.begin(), pos.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  struct Group {
    Fingerprint fp;
    std::size_t begin, end;  ///< half-open range into `pos`
    std::size_t used = 0;    ///< sent copies already paired (the FIFO cursor)
  };
  std::vector<Group> groups;
  for (std::size_t i = 0; i < pos.size();) {
    std::size_t j = i;
    while (j < pos.size() && pos[j].first == pos[i].first) ++j;
    groups.push_back({pos[i].first, i, j, 0});
    i = j;
  }
  // Map the sent stream to received positions (Hunt-Szymanski: duplicate
  // positions listed in DECREASING order so the LIS uses each at most once).
  std::vector<std::vector<std::size_t>> per_sent;
  std::size_t common = 0;
  for (Fingerprint fp : sent) {
    auto it = std::lower_bound(groups.begin(), groups.end(), fp,
                               [](const Group& g, Fingerprint f) { return g.fp < f; });
    if (it == groups.end() || it->fp != fp) continue;
    if (it->used >= it->end - it->begin) continue;  // more sent copies than received
    ++it->used;
    ++common;
    // All candidate positions, decreasing.
    std::vector<std::size_t> cands;
    cands.reserve(it->end - it->begin);
    for (std::size_t k = it->end; k-- > it->begin;) cands.push_back(pos[k].second);
    per_sent.push_back(std::move(cands));
  }
  // Longest strictly-increasing subsequence over the concatenated
  // candidate lists = LCS length.
  std::vector<std::size_t> tails;  // patience piles
  for (const auto& cands : per_sent) {
    for (std::size_t pos : cands) {
      auto it = std::lower_bound(tails.begin(), tails.end(), pos);
      if (it == tails.end()) {
        tails.push_back(pos);
      } else {
        *it = pos;
      }
    }
  }
  return common - tails.size();
}

}  // namespace fatih::validation
