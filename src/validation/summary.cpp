#include "validation/summary.hpp"

#include <algorithm>
#include <map>

namespace fatih::validation {

void FingerprintSummary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(fps_.begin(), fps_.end());
    sorted_ = true;
  }
}

std::vector<Fingerprint> FingerprintSummary::difference(const FingerprintSummary& other) const {
  ensure_sorted();
  other.ensure_sorted();
  std::vector<Fingerprint> out;
  std::set_difference(fps_.begin(), fps_.end(), other.fps_.begin(), other.fps_.end(),
                      std::back_inserter(out));
  return out;
}

std::size_t FingerprintSummary::symmetric_difference_size(const FingerprintSummary& a,
                                                          const FingerprintSummary& b) {
  a.ensure_sorted();
  b.ensure_sorted();
  std::size_t count = 0;
  auto ia = a.fps_.begin();
  auto ib = b.fps_.begin();
  while (ia != a.fps_.end() && ib != b.fps_.end()) {
    if (*ia < *ib) {
      ++count;
      ++ia;
    } else if (*ib < *ia) {
      ++count;
      ++ib;
    } else {
      ++ia;
      ++ib;
    }
  }
  count += static_cast<std::size_t>(a.fps_.end() - ia);
  count += static_cast<std::size_t>(b.fps_.end() - ib);
  return count;
}

std::size_t OrderedSummary::reorder_count(const OrderedSummary& sent,
                                          const OrderedSummary& received) {
  // Restrict both streams to their common multiset.
  // Positions of each fingerprint in the received stream, consumed FIFO so
  // duplicate fingerprints pair up in order.
  std::map<Fingerprint, std::vector<std::size_t>> positions;
  for (std::size_t i = 0; i < received.fps_.size(); ++i) {
    positions[received.fps_[i]].push_back(i);
  }
  // Map the sent stream to received positions (Hunt-Szymanski: duplicate
  // positions listed in DECREASING order so the LIS uses each at most once).
  std::map<Fingerprint, std::size_t> consumed;
  std::vector<std::vector<std::size_t>> per_sent;
  std::size_t common = 0;
  for (Fingerprint fp : sent.fps_) {
    auto it = positions.find(fp);
    if (it == positions.end()) continue;
    auto& used = consumed[fp];
    if (used >= it->second.size()) continue;  // more sent copies than received
    ++used;
    ++common;
    // All candidate positions, decreasing.
    std::vector<std::size_t> cands(it->second.rbegin(), it->second.rend());
    per_sent.push_back(std::move(cands));
  }
  // Longest strictly-increasing subsequence over the concatenated
  // candidate lists = LCS length.
  std::vector<std::size_t> tails;  // patience piles
  for (const auto& cands : per_sent) {
    for (std::size_t pos : cands) {
      auto it = std::lower_bound(tails.begin(), tails.end(), pos);
      if (it == tails.end()) {
        tails.push_back(pos);
      } else {
        *it = pos;
      }
    }
  }
  return common - tails.size();
}

}  // namespace fatih::validation
