// Traffic summaries: the info(r, pi, tau) objects of the specification
// (dissertation §4.2.1), one representation per conservation-of-traffic
// policy (§2.4.1):
//
//   * CounterSummary       — conservation of flow (WATCHERS-style counters)
//   * FingerprintSummary   — conservation of content (multiset of
//                            fingerprints; detects loss, modification,
//                            fabrication, misrouting)
//   * OrderedSummary       — conservation of order (fingerprints in
//                            forwarding order; reorder metric |S| - |LCS|,
//                            §2.2.1 following Piratla et al.)
//   * TimedSummary         — conservation of timeliness, and the
//                            timestamped stream Protocol chi replays
//                            (§6.2.1: fingerprint, size, entry/exit time)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/time.hpp"
#include "validation/fingerprint.hpp"

namespace fatih::validation {

/// |A \ B| over two SORTED fingerprint multisets (respecting
/// multiplicity): the count std::set_difference would output. Span-based
/// so the detection engines can run it straight over their round stores.
[[nodiscard]] std::size_t multiset_difference_size(std::span<const Fingerprint> sorted_a,
                                                   std::span<const Fingerprint> sorted_b);

/// Reordering metric between a sent stream S and received stream F
/// (§2.2.1): drop from both streams everything lost/fabricated/modified,
/// then return |S'| - |LCS(S', F')|. 0 means order preserved. Streams are
/// in forwarding order; span-based core of OrderedSummary::reorder_count.
[[nodiscard]] std::size_t reorder_count(std::span<const Fingerprint> sent,
                                        std::span<const Fingerprint> received);

/// Conservation-of-flow summary: cheap counters.
struct CounterSummary {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;

  void add(std::uint32_t size_bytes) {
    ++packets;
    bytes += size_bytes;
  }
  bool operator==(const CounterSummary&) const = default;
};

/// Conservation-of-content summary: multiset of packet fingerprints.
class FingerprintSummary {
 public:
  void add(Fingerprint fp) {
    fps_.push_back(fp);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t size() const { return fps_.size(); }
  [[nodiscard]] const std::vector<Fingerprint>& fingerprints() const { return fps_; }

  /// Multiset A \ B: fingerprints present here but not in `other`
  /// (respecting multiplicity). Both summaries are sorted lazily.
  [[nodiscard]] std::vector<Fingerprint> difference(const FingerprintSummary& other) const;

  /// |A \ B| + |B \ A|.
  [[nodiscard]] static std::size_t symmetric_difference_size(const FingerprintSummary& a,
                                                             const FingerprintSummary& b);

 private:
  void ensure_sorted() const;
  mutable std::vector<Fingerprint> fps_;
  mutable bool sorted_ = true;
};

/// Conservation-of-order summary: fingerprints in forwarding order.
class OrderedSummary {
 public:
  void add(Fingerprint fp) { fps_.push_back(fp); }
  [[nodiscard]] std::size_t size() const { return fps_.size(); }
  [[nodiscard]] const std::vector<Fingerprint>& sequence() const { return fps_; }

  /// Reordering metric between this summary (sent) and `received`; see the
  /// free-function reorder_count above, which this delegates to.
  [[nodiscard]] static std::size_t reorder_count(const OrderedSummary& sent,
                                                 const OrderedSummary& received) {
    return validation::reorder_count(sent.fps_, received.fps_);
  }

 private:
  std::vector<Fingerprint> fps_;
};

/// One record of the timestamped stream used by Protocol chi.
struct TimedRecord {
  Fingerprint fp = 0;
  std::uint32_t size_bytes = 0;
  util::SimTime ts;  ///< predicted queue-entry time or observed exit time

  bool operator==(const TimedRecord&) const = default;
};

/// Conservation-of-timeliness / queue-replay summary.
using TimedSummary = std::vector<TimedRecord>;

}  // namespace fatih::validation
