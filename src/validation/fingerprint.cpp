#include "validation/fingerprint.hpp"

namespace fatih::validation {

Fingerprint packet_fingerprint(crypto::SipKey key, const sim::Packet& p) {
  return FingerprintHasher(key)(p);
}

}  // namespace fatih::validation
