#include "validation/fingerprint.hpp"

#include <array>
#include <cstring>

namespace fatih::validation {

Fingerprint packet_fingerprint(crypto::SipKey key, const sim::Packet& p) {
  // Fixed-layout invariant view of the packet; TTL deliberately omitted.
  struct InvariantView {
    std::uint32_t src;
    std::uint32_t dst;
    std::uint32_t flow_id;
    std::uint32_t seq;
    std::uint32_t ack;
    std::uint8_t proto;
    std::uint8_t flags;
    std::uint16_t pad;
    std::uint32_t size_bytes;
    std::uint64_t payload_tag;
  };
  InvariantView v{};
  v.src = p.hdr.src;
  v.dst = p.hdr.dst;
  v.flow_id = p.hdr.flow_id;
  v.seq = p.hdr.seq;
  v.ack = p.hdr.ack;
  v.proto = static_cast<std::uint8_t>(p.hdr.proto);
  v.flags = p.hdr.flags;
  v.pad = 0;
  v.size_bytes = p.size_bytes;
  v.payload_tag = p.payload_tag;
  return crypto::siphash24(key, &v, sizeof(v));
}

}  // namespace fatih::validation
