#include "validation/bloom.hpp"

#include <bit>
#include <cassert>
#include <cmath>

namespace fatih::validation {

namespace {
// Kirsch-Mitzenmacher double hashing: g_i(x) = h1(x) + i * h2(x).
constexpr crypto::SipKey kH1{0x424C4F4F4D483121ULL, 0x66696C7465723131ULL};
constexpr crypto::SipKey kH2{0x424C4F4F4D483221ULL, 0x66696C7465723232ULL};
}  // namespace

BloomFilter::BloomFilter(std::size_t bits, std::size_t hashes)
    : bits_((bits + 63) / 64 * 64), hashes_(hashes), words_(bits_ / 64, 0) {
  assert(hashes_ >= 1 && bits_ >= 64);
}

void BloomFilter::insert(Fingerprint fp) {
  const std::uint64_t h1 = crypto::siphash24(kH1, &fp, sizeof(fp));
  const std::uint64_t h2 = crypto::siphash24(kH2, &fp, sizeof(fp)) | 1;  // odd stride
  for (std::size_t i = 0; i < hashes_; ++i) {
    const std::uint64_t bit = (h1 + i * h2) % bits_;
    words_[bit / 64] |= (1ULL << (bit % 64));
  }
}

bool BloomFilter::maybe_contains(Fingerprint fp) const {
  const std::uint64_t h1 = crypto::siphash24(kH1, &fp, sizeof(fp));
  const std::uint64_t h2 = crypto::siphash24(kH2, &fp, sizeof(fp)) | 1;
  for (std::size_t i = 0; i < hashes_; ++i) {
    const std::uint64_t bit = (h1 + i * h2) % bits_;
    if ((words_[bit / 64] & (1ULL << (bit % 64))) == 0) return false;
  }
  return true;
}

BloomFilter BloomFilter::from_words(std::vector<std::uint64_t> words, std::size_t hashes) {
  BloomFilter f(words.size() * 64, hashes);
  f.words_ = std::move(words);
  return f;
}

std::size_t BloomFilter::population() const {
  std::size_t pop = 0;
  for (std::uint64_t w : words_) pop += static_cast<std::size_t>(std::popcount(w));
  return pop;
}

std::size_t BloomFilter::xor_population(const BloomFilter& a, const BloomFilter& b) {
  assert(a.bits_ == b.bits_ && a.hashes_ == b.hashes_);
  std::size_t pop = 0;
  for (std::size_t i = 0; i < a.words_.size(); ++i) {
    pop += static_cast<std::size_t>(std::popcount(a.words_[i] ^ b.words_[i]));
  }
  return pop;
}

std::optional<double> BloomFilter::estimate_symmetric_difference(const BloomFilter& a,
                                                                 const BloomFilter& b) {
  // A fingerprint in exactly one of the two sets flips ~k bits of the XOR
  // image; collisions shrink that. Inverting the standard fill-rate model:
  //   E[xor_pop] ~= m * (1 - (1 - 1/m)^(k*d))  =>
  //   d ~= ln(1 - xor_pop/m) / (k * ln(1 - 1/m)).
  const auto m = static_cast<double>(a.bits_);
  const auto k = static_cast<double>(a.hashes_);
  const auto pop = static_cast<double>(xor_population(a, b));
  if (pop >= m) return std::nullopt;  // saturated
  return std::log(1.0 - pop / m) / (k * std::log(1.0 - 1.0 / m));
}

}  // namespace fatih::validation
