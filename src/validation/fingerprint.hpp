// Packet fingerprints.
//
// Traffic validation identifies packets by a keyed one-way hash of their
// path-invariant contents (dissertation §2.1.5). Mutable header fields
// (TTL, and in real IP the checksum) are excluded — §7.4.2 — so that a
// correct downstream router computes the same fingerprint as the upstream
// one.
//
// The invariant view is a fixed 40-byte layout (header fields + size +
// payload tag batched into one message), so the hash runs on the
// compile-time-unrolled SipHash path. FingerprintHasher additionally
// caches the key schedule; per-packet callers (summary generators,
// Protocol χ queue accounting) should hold one instead of re-deriving the
// schedule from the key on every packet. Callers that see packets in
// bursts should buffer PacketInvariant views and use hash_batch, which
// feeds the SIMD-batched SipHash lanes (4/8/16 packets per kernel call
// depending on the CPU) — digests are bit-identical to operator().
#pragma once

#include <cstddef>
#include <cstdint>

#include "crypto/siphash.hpp"
#include "sim/packet.hpp"

namespace fatih::validation {

/// 64-bit packet fingerprint.
using Fingerprint = std::uint64_t;

/// Fixed-layout invariant view of a packet: exactly the bytes the
/// fingerprint hashes, TTL deliberately omitted. The 2 alignment-pad
/// bytes are zeroed by from_packet so the message is stable (and
/// identical to the seed's). Batch callers store these contiguously —
/// hash_batch requires stride sizeof(PacketInvariant).
struct PacketInvariant {
  std::uint32_t src;
  std::uint32_t dst;
  std::uint32_t flow_id;
  std::uint32_t seq;
  std::uint32_t ack;
  std::uint8_t proto;
  std::uint8_t flags;
  std::uint16_t pad;
  std::uint32_t size_bytes;
  std::uint64_t payload_tag;

  [[nodiscard]] static PacketInvariant from_packet(const sim::Packet& p) {
    PacketInvariant v{};
    v.src = p.hdr.src;
    v.dst = p.hdr.dst;
    v.flow_id = p.hdr.flow_id;
    v.seq = p.hdr.seq;
    v.ack = p.hdr.ack;
    v.proto = static_cast<std::uint8_t>(p.hdr.proto);
    v.flags = p.hdr.flags;
    v.pad = 0;
    v.size_bytes = p.size_bytes;
    v.payload_tag = p.payload_tag;
    return v;
  }
};
static_assert(sizeof(PacketInvariant) == 40);

/// Computes fingerprints under one key with the SipHash schedule cached.
class FingerprintHasher {
 public:
  constexpr explicit FingerprintHasher(crypto::SipKey key) : sched_(key) {}

  [[nodiscard]] Fingerprint operator()(const sim::Packet& p) const {
    const PacketInvariant v = PacketInvariant::from_packet(p);
    return crypto::siphash24_fixed<sizeof(v)>(sched_, &v);
  }

  /// Hashes a contiguous run of invariant views (the batch the summary
  /// generators accumulate per role), writing one fingerprint per view to
  /// `out`. Dispatches to the widest SIMD kernel the CPU offers; the
  /// digests are bit-identical to calling operator() per packet.
  void hash_batch(const PacketInvariant* views, std::size_t count, Fingerprint* out) const {
    crypto::siphash24_fixed_batch<sizeof(PacketInvariant)>(sched_, views, count, out);
  }

 private:
  crypto::SipSchedule sched_;
};

/// Computes the keyed fingerprint of a packet over its invariant fields:
/// src, dst, flow, seq, ack, proto, flags, payload identity, and size.
/// One-shot convenience; hot paths should reuse a FingerprintHasher.
[[nodiscard]] Fingerprint packet_fingerprint(crypto::SipKey key, const sim::Packet& p);

}  // namespace fatih::validation
