// Packet fingerprints.
//
// Traffic validation identifies packets by a keyed one-way hash of their
// path-invariant contents (dissertation §2.1.5). Mutable header fields
// (TTL, and in real IP the checksum) are excluded — §7.4.2 — so that a
// correct downstream router computes the same fingerprint as the upstream
// one.
#pragma once

#include <cstdint>

#include "crypto/siphash.hpp"
#include "sim/packet.hpp"

namespace fatih::validation {

/// 64-bit packet fingerprint.
using Fingerprint = std::uint64_t;

/// Computes the keyed fingerprint of a packet over its invariant fields:
/// src, dst, flow, seq, ack, proto, flags, payload identity, and size.
[[nodiscard]] Fingerprint packet_fingerprint(crypto::SipKey key, const sim::Packet& p);

}  // namespace fatih::validation
