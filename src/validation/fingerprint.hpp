// Packet fingerprints.
//
// Traffic validation identifies packets by a keyed one-way hash of their
// path-invariant contents (dissertation §2.1.5). Mutable header fields
// (TTL, and in real IP the checksum) are excluded — §7.4.2 — so that a
// correct downstream router computes the same fingerprint as the upstream
// one.
//
// The invariant view is a fixed 40-byte layout (header fields + size +
// payload tag batched into one message), so the hash runs on the
// compile-time-unrolled SipHash path. FingerprintHasher additionally
// caches the key schedule; per-packet callers (summary generators,
// Protocol χ queue accounting) should hold one instead of re-deriving the
// schedule from the key on every packet.
#pragma once

#include <cstdint>

#include "crypto/siphash.hpp"
#include "sim/packet.hpp"

namespace fatih::validation {

/// 64-bit packet fingerprint.
using Fingerprint = std::uint64_t;

/// Computes fingerprints under one key with the SipHash schedule cached.
class FingerprintHasher {
 public:
  constexpr explicit FingerprintHasher(crypto::SipKey key) : sched_(key) {}

  [[nodiscard]] Fingerprint operator()(const sim::Packet& p) const {
    // Fixed-layout invariant view of the packet; TTL deliberately omitted.
    struct InvariantView {
      std::uint32_t src;
      std::uint32_t dst;
      std::uint32_t flow_id;
      std::uint32_t seq;
      std::uint32_t ack;
      std::uint8_t proto;
      std::uint8_t flags;
      std::uint16_t pad;
      std::uint32_t size_bytes;
      std::uint64_t payload_tag;
    };
    // 40 bytes: 4 alignment-pad bytes precede payload_tag, value-initialized
    // to zero so the hashed message is stable (and identical to the seed's).
    static_assert(sizeof(InvariantView) == 40);
    InvariantView v{};
    v.src = p.hdr.src;
    v.dst = p.hdr.dst;
    v.flow_id = p.hdr.flow_id;
    v.seq = p.hdr.seq;
    v.ack = p.hdr.ack;
    v.proto = static_cast<std::uint8_t>(p.hdr.proto);
    v.flags = p.hdr.flags;
    v.pad = 0;
    v.size_bytes = p.size_bytes;
    v.payload_tag = p.payload_tag;
    return crypto::siphash24_fixed<sizeof(v)>(sched_, &v);
  }

 private:
  crypto::SipSchedule sched_;
};

/// Computes the keyed fingerprint of a packet over its invariant fields:
/// src, dst, flow, seq, ack, proto, flags, payload identity, and size.
/// One-shot convenience; hot paths should reuse a FingerprintHasher.
[[nodiscard]] Fingerprint packet_fingerprint(crypto::SipKey key, const sim::Packet& p);

}  // namespace fatih::validation
