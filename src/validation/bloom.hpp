// Bloom-filter fingerprint digests (dissertation §2.4.1, "conservation of
// content"): a compact alternative to shipping every fingerprint, at some
// cost in accuracy. The symmetric-difference size between two same-shaped
// filters is estimated from the population of their bitwise XOR.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "validation/fingerprint.hpp"

namespace fatih::validation {

/// Fixed-shape Bloom filter over 64-bit fingerprints.
class BloomFilter {
 public:
  /// `bits` is rounded up to a multiple of 64; `hashes` >= 1.
  BloomFilter(std::size_t bits, std::size_t hashes);

  void insert(Fingerprint fp);
  [[nodiscard]] bool maybe_contains(Fingerprint fp) const;

  [[nodiscard]] std::size_t bit_count() const { return bits_; }
  [[nodiscard]] std::size_t hash_count() const { return hashes_; }
  [[nodiscard]] std::size_t population() const;
  /// Wire size of the filter in bytes.
  [[nodiscard]] std::size_t byte_size() const { return words_.size() * 8; }
  /// Raw bit words (for serialization into summaries).
  [[nodiscard]] const std::vector<std::uint64_t>& words() const { return words_; }
  /// Reconstructs a filter from shipped words.
  static BloomFilter from_words(std::vector<std::uint64_t> words, std::size_t hashes);

  /// Population of the XOR of two same-shaped filters.
  [[nodiscard]] static std::size_t xor_population(const BloomFilter& a, const BloomFilter& b);

  /// Estimates |A symdiff B| from the XOR population (nullopt if the
  /// filters are too saturated for the estimate to be meaningful).
  [[nodiscard]] static std::optional<double> estimate_symmetric_difference(const BloomFilter& a,
                                                                           const BloomFilter& b);

 private:
  std::size_t bits_;
  std::size_t hashes_;
  std::vector<std::uint64_t> words_;
};

}  // namespace fatih::validation
