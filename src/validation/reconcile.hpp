// Characteristic-polynomial set reconciliation (dissertation Appendix A;
// Minsky, Trachtenberg & Zippel). Bandwidth-optimal difference discovery:
// to find a symmetric difference of size d, the parties exchange only
// O(d) field elements regardless of set size.
//
// Sets are multiset-free collections of 64-bit fingerprints mapped into
// GF(p), p = 2^61 - 1. Party A sends |A| and the evaluations of its
// characteristic polynomial chi_A(z) = prod (z - a) at agreed sample
// points; party B interpolates the rational function chi_A/chi_B as P/Q
// with deg P - deg Q = |A| - |B|, then extracts
//   roots(P) = A \ B   (via Cantor-Zassenhaus root finding) and
//   roots(Q) = B \ A   (by testing its own elements).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "obs/metrics.hpp"

namespace fatih::validation {

/// Arithmetic in GF(p), p = 2^61 - 1.
namespace gf {
inline constexpr std::uint64_t kP = (1ULL << 61) - 1;

[[nodiscard]] std::uint64_t reduce(std::uint64_t x);
[[nodiscard]] std::uint64_t add(std::uint64_t a, std::uint64_t b);
[[nodiscard]] std::uint64_t sub(std::uint64_t a, std::uint64_t b);
[[nodiscard]] std::uint64_t mul(std::uint64_t a, std::uint64_t b);
[[nodiscard]] std::uint64_t pow(std::uint64_t base, std::uint64_t exp);
[[nodiscard]] std::uint64_t inv(std::uint64_t a);
}  // namespace gf

/// Maps a fingerprint into the field.
[[nodiscard]] inline std::uint64_t to_field(std::uint64_t fp) { return fp % gf::kP; }

/// Deterministic shared evaluation points (domain-separated hashes).
[[nodiscard]] std::vector<std::uint64_t> evaluation_points(std::size_t count);

/// Evaluates chi_S(z) = prod_{s in S} (z - s) at each point.
[[nodiscard]] std::vector<std::uint64_t> char_poly_evaluations(
    std::span<const std::uint64_t> set_elements, std::span<const std::uint64_t> points);

/// What one party learns from reconciliation.
struct ReconcileResult {
  std::vector<std::uint64_t> only_remote;  ///< elements the remote set has, we lack
  std::vector<std::uint64_t> only_local;   ///< elements we have, the remote lacks
};

/// Runs B's side of reconciliation.
///
/// `local`        — our set (field elements, distinct).
/// `remote_evals` — chi_A evaluated at `points` (same order).
/// `remote_count` — |A|.
/// `points`       — the agreed evaluation points (>= d_bound + 2 of them;
///                  the two spares verify the interpolated fit).
/// `d_bound`      — upper bound on |A symdiff B|.
///
/// Returns nullopt when the difference exceeds the bound (caller should
/// retry with more points, as Appendix A prescribes).
[[nodiscard]] std::optional<ReconcileResult> reconcile(std::span<const std::uint64_t> local,
                                                       std::span<const std::uint64_t> remote_evals,
                                                       std::size_t remote_count,
                                                       std::span<const std::uint64_t> points,
                                                       std::size_t d_bound);

/// Instrumented form: same computation, but counts outcomes into `metrics`
/// when one is attached ("reconcile.calls", "reconcile.beyond_bound",
/// "reconcile.diff_elements"). Null registry = plain call.
[[nodiscard]] std::optional<ReconcileResult> reconcile(
    obs::MetricsRegistry* metrics, std::span<const std::uint64_t> local,
    std::span<const std::uint64_t> remote_evals, std::size_t remote_count,
    std::span<const std::uint64_t> points, std::size_t d_bound);

/// All roots (in GF(p)) of a polynomial given by coefficients
/// [c0, c1, ..., 1] (monic, degree = coeffs.size() - 1), provided it
/// splits into distinct linear factors; best-effort otherwise.
[[nodiscard]] std::vector<std::uint64_t> find_roots(std::vector<std::uint64_t> monic_coeffs,
                                                    std::uint64_t rng_seed);

}  // namespace fatih::validation
