// Byzantine control-plane adversary library (PR 6 threat coverage).
//
// Where attacks.hpp models the DATA-plane threat classes, these attacks go
// after the detectors themselves — the control messages (summaries,
// reports, accusations) through which Pi2 / Pi(k+2) / chi agree on who
// misbehaved:
//   * ControlTamperAttack: mutates signed detection payloads in transit at
//     a compromised forwarding hop (the MAC no longer verifies);
//   * ForgedControlInjector: emits summaries claiming a victim reporter's
//     identity — either with a fabricated MAC (kBadMac at every honest
//     receiver) or signed under the attacker's own key (kSignerMismatch);
//   * StaleReplayAttack: captures genuine signed control packets passing
//     its compromised router and re-emits them rounds later, probing the
//     anti-replay watermark;
//   * FalseAccusationAttack: one liar (or a colluding pair) floods signed
//     evidence-free accusations against an honest victim every round —
//     and optionally attaches fabricated "equivocation proofs", which the
//     evidence layer turns against the accuser.
//
// None of these can convict an honest router: tampered/forged envelopes
// die at verification, replays die at the round watermark, and the
// conviction rules (detection/evidence.hpp) need a witness quorum or a
// self-incriminating proof no attacker can fabricate for another's key.
#pragma once

#include <cstdint>
#include <vector>

#include "attacks/attacks.hpp"
#include "crypto/keys.hpp"
#include "detection/messages.hpp"
#include "detection/types.hpp"
#include "routing/segments.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace fatih::detection {
class ConvictionEngine;
}

namespace fatih::attacks {

/// Mutates the signed envelope of matching detection payloads the
/// compromised router is asked to FORWARD (routed Pi(k+2) exchanges and
/// chi reports transit interior hops; Pi2 flood copies are neighbor-direct
/// and never cross a forwarding hop — forge those with
/// ForgedControlInjector instead). The flipped byte invalidates the MAC,
/// so every honest receiver rejects the copy.
class ControlTamperAttack final : public sim::ForwardFilter {
 public:
  struct Config {
    /// Payload kinds to corrupt; empty = every signed detection kind.
    std::vector<std::uint16_t> kinds;
    double fraction = 1.0;
    util::SimTime active_from;
    std::uint64_t seed = 1;
  };

  explicit ControlTamperAttack(Config config);
  sim::ForwardDecision on_forward(const sim::Packet& p, util::NodeId prev,
                                  const sim::Interface& out, sim::Router& router) override;

  [[nodiscard]] std::uint64_t tampered() const { return tampered_; }

 private:
  Config config_;
  util::Rng rng_;
  std::uint64_t tampered_ = 0;
};

/// Fabricates control messages under a victim's claimed identity and emits
/// them from the compromised router — to all router neighbors (flood
/// kinds) or routed to `dst`. With `sign_with_own_key` the envelope
/// verifies but the signer contradicts the claimed reporter
/// (kSignerMismatch); without it the MAC is garbage (kBadMac).
class ForgedControlInjector {
 public:
  struct Config {
    util::NodeId at = util::kInvalidNode;      ///< compromised emitter
    util::NodeId victim = util::kInvalidNode;  ///< claimed reporter
    std::uint16_t kind = detection::kKindSummaryFlood;
    /// Routed target (Pi(k+2)/chi); kInvalidNode = all router neighbors.
    util::NodeId dst = util::kInvalidNode;
    routing::PathSegment segment;  ///< claimed segment of the forgery
    detection::RoundClock clock;
    util::SimTime start;
    util::Duration period;  ///< zero = single shot
    std::int64_t shots = 1;
    bool sign_with_own_key = false;
  };

  ForgedControlInjector(sim::Network& net, const crypto::KeyRegistry& keys, Config config);

  [[nodiscard]] std::uint64_t injected() const { return injected_; }

 private:
  void fire();
  void emit(const sim::Packet& p, util::NodeId to) const;

  sim::Network& net_;
  const crypto::KeyRegistry& keys_;
  Config config_;
  std::uint64_t injected_ = 0;
};

/// Captures genuine signed control packets arriving at the compromised
/// router and re-emits byte-identical copies `delay` later (several rounds
/// downstream, e.g. 3*tau). Flood-kind captures are replayed to every
/// router neighbor; routed kinds are re-originated toward their original
/// destination. The engines' round watermark classifies each replayed
/// copy as stale.
class StaleReplayAttack {
 public:
  struct Config {
    util::NodeId at = util::kInvalidNode;  ///< compromised capture point
    std::vector<std::uint16_t> kinds;      ///< empty = all detection kinds
    util::Duration delay;                  ///< capture-to-replay lag
    util::SimTime active_from;
    std::size_t max_captures = 64;  ///< replay budget (and memory bound)
  };

  StaleReplayAttack(sim::Network& net, Config config);

  [[nodiscard]] std::uint64_t captured() const { return captured_; }
  [[nodiscard]] std::uint64_t replayed() const { return replayed_; }

 private:
  void replay(sim::Packet p);

  sim::Network& net_;
  Config config_;
  std::uint64_t captured_ = 0;
  std::uint64_t replayed_ = 0;
};

/// One liar — or a colluding set — repeatedly files signed accusations
/// against an honest victim through the conviction layer. Evidence-free
/// accusations are legitimate witness votes: below the quorum they can
/// never convict. With `forge_evidence` each accusation ships a fabricated
/// "equivocation proof" under the victim's name; the evidence layer
/// detects the invalid proof and convicts the ACCUSER instead.
class FalseAccusationAttack {
 public:
  struct Config {
    std::vector<util::NodeId> accusers;  ///< 1 = single liar, 2 = colluding pair
    util::NodeId victim = util::kInvalidNode;
    std::uint8_t detector = 0;  ///< obs::TraceSource byte to claim
    detection::RoundClock clock;
    util::SimTime start;
    util::Duration period;  ///< zero = single volley
    std::int64_t shots = 1;
    bool forge_evidence = false;
  };

  FalseAccusationAttack(sim::Network& net, const crypto::KeyRegistry& keys,
                        detection::ConvictionEngine& conviction, Config config);

  [[nodiscard]] std::uint64_t filed() const { return filed_; }

 private:
  void fire();

  sim::Network& net_;
  const crypto::KeyRegistry& keys_;
  detection::ConvictionEngine& conviction_;
  Config config_;
  std::uint64_t filed_ = 0;
};

}  // namespace fatih::attacks
