// Adversary library (dissertation §2.2.1 threat model).
//
// Attacks install as ForwardFilters on compromised routers and implement
// the five data-plane threat classes — packet loss, fabrication,
// modification, reordering, delay — plus misrouting, in the flavors the
// evaluation chapters use:
//   * unconditional / probabilistic drops of selected flows (Fig. 6.6),
//   * drops gated on instantaneous queue occupancy (Figs. 6.7/6.8),
//   * drops gated on the RED average queue size (Figs. 6.12-6.15),
//   * SYN-targeted connection-killing drops (Figs. 6.9/6.16),
//   * payload modification, reordering-by-delay, misrouting, and
//     fabrication (Pi2/Pi(k+2) threat coverage),
//   * control-plane attacks: dropping or delaying the detectors' own
//     summaries/reports/acks, either at a compromised router
//     (ControlDropAttack) or as link-level loss on chosen links
//     (ControlLinkFaults) — the faults the reliable control transport
//     must ride out, and the withholding behaviour §2.2.1 classifies as
//     protocol-faulty.
// All attacks are inert before `active_from`, so experiments can establish
// clean baselines and calibration periods first. FilterChain composes
// several ForwardFilters on one router, so a data-plane dropper and a
// control-plane dropper can share a compromised node.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sim/network.hpp"
#include "sim/red.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace fatih::attacks {

/// Which packets an attack targets.
struct FlowMatch {
  /// Empty = any flow id.
  std::vector<std::uint32_t> flow_ids;
  std::optional<util::NodeId> src;
  std::optional<util::NodeId> dst;
  bool syn_only = false;       ///< TCP SYN packets only
  bool include_control = false;  ///< also target protocol control traffic

  [[nodiscard]] bool matches(const sim::Packet& p) const;
};

/// Which control-plane packets a control-plane adversary targets.
struct ControlMatch {
  /// Control payload kinds to hit (raw kind tags, e.g. the summary-flood
  /// or ack kind). Empty = every control packet, acks included.
  std::vector<std::uint16_t> kinds;
  std::optional<util::NodeId> src;
  std::optional<util::NodeId> dst;

  [[nodiscard]] bool matches(const sim::Packet& p) const;
};

/// Control-plane adversary at a compromised router: drops a fraction of
/// matching control packets it is asked to forward, and/or holds them back
/// by `delay`. Ack-only loss (kinds = {ack kind}) lets the transport
/// deliver while suppressing the acknowledgements — the retransmit path's
/// worst case, exercised by the duplicate-suppression tests.
class ControlDropAttack final : public sim::ForwardFilter {
 public:
  struct Config {
    ControlMatch match;
    double drop_fraction = 1.0;
    double delay_fraction = 0.0;
    util::Duration delay;
    util::SimTime active_from;
    std::uint64_t seed = 1;
  };

  explicit ControlDropAttack(Config config);
  sim::ForwardDecision on_forward(const sim::Packet& p, util::NodeId prev,
                                  const sim::Interface& out, sim::Router& router) override;

 private:
  Config config_;
  util::Rng rng_;
};

/// Composes several ForwardFilters on one compromised router (a router can
/// be both data-plane and control-plane faulty). The first drop wins;
/// replacements chain through subsequent filters; extra delays accumulate;
/// the last interface override wins.
class FilterChain final : public sim::ForwardFilter {
 public:
  void append(std::shared_ptr<sim::ForwardFilter> f) { filters_.push_back(std::move(f)); }

  sim::ForwardDecision on_forward(const sim::Packet& p, util::NodeId prev,
                                  const sim::Interface& out, sim::Router& router) override;

 private:
  std::vector<std::shared_ptr<sim::ForwardFilter>> filters_;
};

/// Link-level control-plane fault injection: installs a fault injector on
/// every interface of every node, dropping/delaying matching control
/// packets after serialization (so flood hop copies and acks are hit too,
/// which no ForwardFilter ever sees). Each interface gets its own rng
/// stream, so runs are deterministic per seed and independent per link.
class ControlLinkFaults {
 public:
  struct Config {
    ControlMatch match;
    double drop_fraction = 0.0;
    double delay_fraction = 0.0;
    util::Duration delay;
    util::SimTime active_from;
    std::uint64_t seed = 1;
  };

  ControlLinkFaults(sim::Network& net, Config config);
};

/// Drops a fraction of matching packets (Fig. 6.6: "drop 20% of the
/// selected flows"; fraction 1.0 = drop all).
class RateDropAttack final : public sim::ForwardFilter {
 public:
  RateDropAttack(FlowMatch match, double fraction, util::SimTime active_from,
                 std::uint64_t seed);
  sim::ForwardDecision on_forward(const sim::Packet& p, util::NodeId prev,
                                  const sim::Interface& out, sim::Router& router) override;

 private:
  FlowMatch match_;
  double fraction_;
  util::SimTime active_from_;
  util::Rng rng_;
};

/// Drops matching packets only while the output queue is at least
/// `fill_threshold` full (Figs. 6.7/6.8: blend malicious drops into
/// moments when congestion is plausible).
class QueueThresholdDropAttack final : public sim::ForwardFilter {
 public:
  QueueThresholdDropAttack(FlowMatch match, double fill_threshold, double fraction,
                           util::SimTime active_from, std::uint64_t seed);
  sim::ForwardDecision on_forward(const sim::Packet& p, util::NodeId prev,
                                  const sim::Interface& out, sim::Router& router) override;

 private:
  FlowMatch match_;
  double fill_threshold_;
  double fraction_;
  util::SimTime active_from_;
  util::Rng rng_;
};

/// Drops matching packets while the RED average queue size exceeds
/// `avg_threshold_bytes` (Figs. 6.12-6.15). Requires the output queue to
/// be a RedQueue.
class RedAvgThresholdDropAttack final : public sim::ForwardFilter {
 public:
  RedAvgThresholdDropAttack(FlowMatch match, double avg_threshold_bytes, double fraction,
                            util::SimTime active_from, std::uint64_t seed);
  sim::ForwardDecision on_forward(const sim::Packet& p, util::NodeId prev,
                                  const sim::Interface& out, sim::Router& router) override;

 private:
  FlowMatch match_;
  double avg_threshold_bytes_;
  double fraction_;
  util::SimTime active_from_;
  util::Rng rng_;
};

/// Replaces the payload of a fraction of matching packets (content
/// modification; detected by conservation-of-content TV).
class ModificationAttack final : public sim::ForwardFilter {
 public:
  ModificationAttack(FlowMatch match, double fraction, util::SimTime active_from,
                     std::uint64_t seed);
  sim::ForwardDecision on_forward(const sim::Packet& p, util::NodeId prev,
                                  const sim::Interface& out, sim::Router& router) override;

 private:
  FlowMatch match_;
  double fraction_;
  util::SimTime active_from_;
  util::Rng rng_;
};

/// Holds back a fraction of matching packets by `delay`, reordering them
/// past later traffic (conservation-of-order threat).
class ReorderAttack final : public sim::ForwardFilter {
 public:
  ReorderAttack(FlowMatch match, double fraction, util::Duration delay,
                util::SimTime active_from, std::uint64_t seed);
  sim::ForwardDecision on_forward(const sim::Packet& p, util::NodeId prev,
                                  const sim::Interface& out, sim::Router& router) override;

 private:
  FlowMatch match_;
  double fraction_;
  util::Duration delay_;
  util::SimTime active_from_;
  util::Rng rng_;
};

/// Diverts a fraction of matching packets out a wrong interface.
class MisrouteAttack final : public sim::ForwardFilter {
 public:
  MisrouteAttack(FlowMatch match, double fraction, std::size_t wrong_iface,
                 util::SimTime active_from, std::uint64_t seed);
  sim::ForwardDecision on_forward(const sim::Packet& p, util::NodeId prev,
                                  const sim::Interface& out, sim::Router& router) override;

 private:
  FlowMatch match_;
  double fraction_;
  std::size_t wrong_iface_;
  util::SimTime active_from_;
  util::Rng rng_;
};

/// Active injector: fabricates packets claiming a forged source so they
/// masquerade as transit traffic (packet-fabrication threat).
class FabricationAttack {
 public:
  struct Config {
    util::NodeId at = util::kInvalidNode;       ///< compromised router
    util::NodeId forged_src = util::kInvalidNode;
    util::NodeId dst = util::kInvalidNode;
    std::uint32_t flow_id = 9999;
    std::uint32_t payload_bytes = 960;
    double rate_pps = 50.0;
    util::SimTime start;
    util::SimTime stop = util::SimTime::infinity();
  };

  FabricationAttack(sim::Network& net, Config config);

 private:
  void tick();

  sim::Network& net_;
  Config config_;
  std::uint32_t seq_ = 1'000'000;  ///< clearly out-of-band sequence space
};

}  // namespace fatih::attacks
