#include "attacks/attacks.hpp"

#include <algorithm>

namespace fatih::attacks {

bool FlowMatch::matches(const sim::Packet& p) const {
  if (!include_control && p.is_control()) return false;
  if (src && p.hdr.src != *src) return false;
  if (dst && p.hdr.dst != *dst) return false;
  if (syn_only) {
    if (p.hdr.proto != sim::Protocol::kTcp) return false;
    if ((p.hdr.flags & sim::kFlagSyn) == 0 || (p.hdr.flags & sim::kFlagAck) != 0) return false;
  }
  if (!flow_ids.empty() &&
      std::find(flow_ids.begin(), flow_ids.end(), p.hdr.flow_id) == flow_ids.end()) {
    return false;
  }
  return true;
}

bool ControlMatch::matches(const sim::Packet& p) const {
  if (!p.is_control()) return false;
  if (src && p.hdr.src != *src) return false;
  if (dst && p.hdr.dst != *dst) return false;
  if (!kinds.empty()) {
    const std::uint16_t kind = p.control != nullptr ? p.control->kind() : 0;
    if (std::find(kinds.begin(), kinds.end(), kind) == kinds.end()) return false;
  }
  return true;
}

// ---------------------------------------------------------- ControlDrop

ControlDropAttack::ControlDropAttack(Config config)
    : config_(std::move(config)), rng_(config_.seed) {}

sim::ForwardDecision ControlDropAttack::on_forward(const sim::Packet& p, util::NodeId /*prev*/,
                                                   const sim::Interface& /*out*/,
                                                   sim::Router& router) {
  if (router.sim().now() < config_.active_from) return sim::ForwardDecision::forward();
  if (!config_.match.matches(p)) return sim::ForwardDecision::forward();
  if (config_.drop_fraction > 0.0 && rng_.bernoulli(config_.drop_fraction)) {
    return sim::ForwardDecision::drop();
  }
  if (config_.delay_fraction > 0.0 && rng_.bernoulli(config_.delay_fraction)) {
    sim::ForwardDecision d;
    d.extra_delay = config_.delay;
    return d;
  }
  return sim::ForwardDecision::forward();
}

// ---------------------------------------------------------- FilterChain

sim::ForwardDecision FilterChain::on_forward(const sim::Packet& p, util::NodeId prev,
                                             const sim::Interface& out, sim::Router& router) {
  sim::ForwardDecision combined;
  sim::Packet current = p;
  bool replaced = false;
  for (const auto& f : filters_) {
    auto d = f->on_forward(current, prev, out, router);
    if (d.action == sim::ForwardDecision::Action::kDrop) return sim::ForwardDecision::drop();
    if (d.replacement) {
      current = *d.replacement;
      replaced = true;
    }
    if (d.iface_override) combined.iface_override = d.iface_override;
    combined.extra_delay = combined.extra_delay + d.extra_delay;
  }
  if (replaced) combined.replacement = std::move(current);
  return combined;
}

// ----------------------------------------------------- ControlLinkFaults

ControlLinkFaults::ControlLinkFaults(sim::Network& net, Config config) {
  for (util::NodeId n = 0; n < net.node_count(); ++n) {
    auto& node = net.node(n);
    for (std::size_t i = 0; i < node.interface_count(); ++i) {
      // Splitmix-style per-interface stream: deterministic per seed, and
      // one link's draw count never perturbs another's.
      const std::uint64_t stream = config.seed ^
                                   (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(n) + 1)) ^
                                   (0xBF58476D1CE4E5B9ULL * (static_cast<std::uint64_t>(i) + 1));
      util::Rng rng(stream);
      node.interface(i).set_fault_injector(
          [config, rng](const sim::Packet& p, util::SimTime now) mutable {
            sim::LinkFault fault;
            if (now < config.active_from) return fault;
            if (!config.match.matches(p)) return fault;
            if (config.drop_fraction > 0.0 && rng.bernoulli(config.drop_fraction)) {
              fault.drop = true;
              return fault;
            }
            if (config.delay_fraction > 0.0 && rng.bernoulli(config.delay_fraction)) {
              fault.extra_delay = config.delay;
            }
            return fault;
          });
    }
  }
}

// ------------------------------------------------------------ RateDrop

RateDropAttack::RateDropAttack(FlowMatch match, double fraction, util::SimTime active_from,
                               std::uint64_t seed)
    : match_(std::move(match)), fraction_(fraction), active_from_(active_from), rng_(seed) {}

sim::ForwardDecision RateDropAttack::on_forward(const sim::Packet& p, util::NodeId /*prev*/,
                                                const sim::Interface& /*out*/,
                                                sim::Router& router) {
  if (router.sim().now() < active_from_) return sim::ForwardDecision::forward();
  if (match_.matches(p) && rng_.bernoulli(fraction_)) return sim::ForwardDecision::drop();
  return sim::ForwardDecision::forward();
}

// --------------------------------------------------- QueueThresholdDrop

QueueThresholdDropAttack::QueueThresholdDropAttack(FlowMatch match, double fill_threshold,
                                                   double fraction, util::SimTime active_from,
                                                   std::uint64_t seed)
    : match_(std::move(match)),
      fill_threshold_(fill_threshold),
      fraction_(fraction),
      active_from_(active_from),
      rng_(seed) {}

sim::ForwardDecision QueueThresholdDropAttack::on_forward(const sim::Packet& p,
                                                          util::NodeId /*prev*/,
                                                          const sim::Interface& out,
                                                          sim::Router& router) {
  if (router.sim().now() < active_from_) return sim::ForwardDecision::forward();
  if (out.fill_fraction() < fill_threshold_) return sim::ForwardDecision::forward();
  if (match_.matches(p) && rng_.bernoulli(fraction_)) return sim::ForwardDecision::drop();
  return sim::ForwardDecision::forward();
}

// ------------------------------------------------ RedAvgThresholdDrop

RedAvgThresholdDropAttack::RedAvgThresholdDropAttack(FlowMatch match, double avg_threshold_bytes,
                                                     double fraction, util::SimTime active_from,
                                                     std::uint64_t seed)
    : match_(std::move(match)),
      avg_threshold_bytes_(avg_threshold_bytes),
      fraction_(fraction),
      active_from_(active_from),
      rng_(seed) {}

sim::ForwardDecision RedAvgThresholdDropAttack::on_forward(const sim::Packet& p,
                                                           util::NodeId /*prev*/,
                                                           const sim::Interface& out,
                                                           sim::Router& router) {
  if (router.sim().now() < active_from_) return sim::ForwardDecision::forward();
  const auto* red = dynamic_cast<const sim::RedQueue*>(&out.queue());
  if (red == nullptr || red->average_queue() < avg_threshold_bytes_) {
    return sim::ForwardDecision::forward();
  }
  if (match_.matches(p) && rng_.bernoulli(fraction_)) return sim::ForwardDecision::drop();
  return sim::ForwardDecision::forward();
}

// --------------------------------------------------------- Modification

ModificationAttack::ModificationAttack(FlowMatch match, double fraction,
                                       util::SimTime active_from, std::uint64_t seed)
    : match_(std::move(match)), fraction_(fraction), active_from_(active_from), rng_(seed) {}

sim::ForwardDecision ModificationAttack::on_forward(const sim::Packet& p, util::NodeId /*prev*/,
                                                    const sim::Interface& /*out*/,
                                                    sim::Router& router) {
  if (router.sim().now() < active_from_) return sim::ForwardDecision::forward();
  if (!match_.matches(p) || !rng_.bernoulli(fraction_)) return sim::ForwardDecision::forward();
  sim::ForwardDecision d;
  sim::Packet tampered = p;
  tampered.payload_tag = rng_.next_u64();  // different bytes on the wire
  d.replacement = tampered;
  return d;
}

// -------------------------------------------------------------- Reorder

ReorderAttack::ReorderAttack(FlowMatch match, double fraction, util::Duration delay,
                             util::SimTime active_from, std::uint64_t seed)
    : match_(std::move(match)),
      fraction_(fraction),
      delay_(delay),
      active_from_(active_from),
      rng_(seed) {}

sim::ForwardDecision ReorderAttack::on_forward(const sim::Packet& p, util::NodeId /*prev*/,
                                               const sim::Interface& /*out*/,
                                               sim::Router& router) {
  if (router.sim().now() < active_from_) return sim::ForwardDecision::forward();
  if (!match_.matches(p) || !rng_.bernoulli(fraction_)) return sim::ForwardDecision::forward();
  sim::ForwardDecision d;
  d.extra_delay = delay_;
  return d;
}

// ------------------------------------------------------------- Misroute

MisrouteAttack::MisrouteAttack(FlowMatch match, double fraction, std::size_t wrong_iface,
                               util::SimTime active_from, std::uint64_t seed)
    : match_(std::move(match)),
      fraction_(fraction),
      wrong_iface_(wrong_iface),
      active_from_(active_from),
      rng_(seed) {}

sim::ForwardDecision MisrouteAttack::on_forward(const sim::Packet& p, util::NodeId /*prev*/,
                                                const sim::Interface& out, sim::Router& router) {
  if (router.sim().now() < active_from_) return sim::ForwardDecision::forward();
  if (!match_.matches(p) || !rng_.bernoulli(fraction_)) return sim::ForwardDecision::forward();
  if (out.index() == wrong_iface_) return sim::ForwardDecision::forward();
  sim::ForwardDecision d;
  d.iface_override = wrong_iface_;
  return d;
}

// ---------------------------------------------------------- Fabrication

FabricationAttack::FabricationAttack(sim::Network& net, Config config)
    : net_(net), config_(config) {
  net_.sim().schedule_at(config_.start, [this] { tick(); });
}

void FabricationAttack::tick() {
  if (net_.sim().now() >= config_.stop) return;
  sim::PacketHeader hdr;
  hdr.src = config_.forged_src;
  hdr.dst = config_.dst;
  hdr.flow_id = config_.flow_id;
  hdr.seq = seq_++;
  hdr.proto = sim::Protocol::kUdp;
  sim::Packet p = net_.make_packet(hdr, config_.payload_bytes);
  net_.router(config_.at).originate(p);
  net_.sim().schedule_in(util::Duration::from_seconds(1.0 / config_.rate_pps),
                         [this] { tick(); });
}

}  // namespace fatih::attacks
