#include "attacks/byzantine.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "crypto/mac.hpp"
#include "detection/evidence.hpp"

namespace fatih::attacks {

namespace {

/// The signed detection payload kinds an empty kind filter targets.
constexpr std::uint16_t kSignedKinds[] = {
    detection::kKindSegmentSummary,
    detection::kKindSummaryFlood,
    detection::kKindChiReport,
    detection::kKindAccusation,
};

bool kind_matches(const std::vector<std::uint16_t>& kinds, std::uint16_t kind) {
  if (kinds.empty()) {
    return std::find(std::begin(kSignedKinds), std::end(kSignedKinds), kind) !=
           std::end(kSignedKinds);
  }
  return std::find(kinds.begin(), kinds.end(), kind) != kinds.end();
}

/// Flips one payload byte (or the tag, for an empty payload) so the
/// envelope's MAC no longer verifies.
void corrupt(crypto::SignedEnvelope& env) {
  if (env.payload.empty()) {
    env.tag ^= 1;
    return;
  }
  env.payload[env.payload.size() / 2] ^= std::byte{0x40};
}

/// Deep-copies a signed detection payload with its envelope corrupted;
/// null for kinds without a signed envelope.
std::shared_ptr<const sim::ControlPayload> corrupted_clone(const sim::ControlPayload& c) {
  switch (c.kind()) {
    case detection::kKindSegmentSummary:
    case detection::kKindSummaryFlood: {
      auto out = std::make_shared<detection::SegmentSummaryPayload>(
          static_cast<const detection::SegmentSummaryPayload&>(c));
      corrupt(out->envelope);
      return out;
    }
    case detection::kKindChiReport: {
      auto out = std::make_shared<detection::ChiReportPayload>(
          static_cast<const detection::ChiReportPayload&>(c));
      corrupt(out->envelope);
      return out;
    }
    case detection::kKindAccusation: {
      auto out = std::make_shared<detection::AccusationPayload>(
          static_cast<const detection::AccusationPayload&>(c));
      corrupt(out->envelope);
      return out;
    }
    default:
      return nullptr;
  }
}

}  // namespace

// --------------------------------------------------------- ControlTamper

ControlTamperAttack::ControlTamperAttack(Config config)
    : config_(std::move(config)), rng_(config_.seed) {}

sim::ForwardDecision ControlTamperAttack::on_forward(const sim::Packet& p,
                                                     util::NodeId /*prev*/,
                                                     const sim::Interface& /*out*/,
                                                     sim::Router& router) {
  if (router.sim().now() < config_.active_from) return sim::ForwardDecision::forward();
  if (!p.is_control() || p.control == nullptr) return sim::ForwardDecision::forward();
  if (!kind_matches(config_.kinds, p.control->kind())) return sim::ForwardDecision::forward();
  if (!rng_.bernoulli(config_.fraction)) return sim::ForwardDecision::forward();
  auto clone = corrupted_clone(*p.control);
  if (clone == nullptr) return sim::ForwardDecision::forward();
  ++tampered_;
  sim::ForwardDecision d;
  sim::Packet tampered = p;
  tampered.control = std::move(clone);
  tampered.payload_tag ^= 0x9E3779B97F4A7C15ULL;  // different bytes on the wire
  d.replacement = std::move(tampered);
  return d;
}

// --------------------------------------------------- ForgedControlInjector

ForgedControlInjector::ForgedControlInjector(sim::Network& net, const crypto::KeyRegistry& keys,
                                             Config config)
    : net_(net), keys_(keys), config_(std::move(config)) {
  net_.sim().schedule_at(config_.start, [this] { fire(); });
}

void ForgedControlInjector::fire() {
  const std::int64_t round = config_.clock.round_of(net_.sim().now());
  std::shared_ptr<sim::ControlPayload> payload;
  std::vector<std::byte> bytes;
  std::uint32_t wire = 0;
  if (config_.kind == detection::kKindChiReport) {
    detection::ChiReport rep;
    rep.reporter = config_.victim;
    rep.queue_owner = config_.segment.empty() ? config_.victim : config_.segment.front();
    rep.queue_peer = config_.segment.empty() ? config_.dst : config_.segment.back();
    rep.round = round;
    bytes = rep.to_bytes();
    wire = rep.wire_bytes();
    auto p = std::make_shared<detection::ChiReportPayload>();
    p->report = std::move(rep);
    payload = std::move(p);
  } else {
    detection::SegmentSummary summary;
    summary.reporter = config_.victim;
    summary.segment = config_.segment;
    summary.round = round;
    bytes = summary.to_bytes();
    wire = summary.wire_bytes();
    auto p = std::make_shared<detection::SegmentSummaryPayload>();
    p->kind_tag = config_.kind;
    p->summary = std::move(summary);
    payload = std::move(p);
  }
  crypto::SignedEnvelope env;
  if (config_.sign_with_own_key) {
    // Verifies fine — but the signer contradicts the claimed reporter.
    env = crypto::sign(keys_, config_.at, std::move(bytes));
  } else {
    env.signer = config_.victim;
    env.payload = std::move(bytes);
    env.tag = 0xDEADC0DEDEADC0DEULL;  // fabricated; cannot verify
  }
  if (auto* p = dynamic_cast<detection::SegmentSummaryPayload*>(payload.get())) {
    p->envelope = std::move(env);
  } else if (auto* p = dynamic_cast<detection::ChiReportPayload*>(payload.get())) {
    p->envelope = std::move(env);
  }

  sim::PacketHeader hdr;
  hdr.src = config_.at;
  hdr.proto = sim::Protocol::kControl;
  if (config_.dst != util::kInvalidNode) {
    hdr.dst = config_.dst;
    sim::Packet p = net_.make_packet(hdr, wire);
    p.control = payload;
    emit(p, config_.dst);
  } else {
    auto& node = net_.router(config_.at);
    for (std::size_t i = 0; i < node.interface_count(); ++i) {
      const util::NodeId peer = node.interface(i).peer();
      if (!net_.is_router(peer)) continue;
      hdr.dst = peer;
      sim::Packet p = net_.make_packet(hdr, wire);
      p.control = payload;
      emit(p, peer);
    }
  }
  ++injected_;

  if (--config_.shots > 0 && config_.period.count_nanos() > 0) {
    net_.sim().schedule_in(config_.period, [this] { fire(); });
  }
}

void ForgedControlInjector::emit(const sim::Packet& p, util::NodeId to) const {
  auto& node = net_.router(config_.at);
  // Prefer the direct interface (flood hop copies are neighbor-direct);
  // fall back to routed origination for distant targets.
  if (auto* iface = node.interface_to(to); iface != nullptr) {
    iface->send(p);
    return;
  }
  node.originate(p);
}

// ------------------------------------------------------- StaleReplayAttack

StaleReplayAttack::StaleReplayAttack(sim::Network& net, Config config)
    : net_(net), config_(std::move(config)) {
  net_.node(config_.at).add_receive_tap(
      [this](const sim::Packet& p, util::NodeId /*prev*/, util::SimTime now) {
        if (now < config_.active_from) return;
        if (!p.is_control() || p.control == nullptr) return;
        if (!kind_matches(config_.kinds, p.control->kind())) return;
        if (captured_ >= config_.max_captures) return;
        ++captured_;
        sim::Packet copy = p;
        net_.sim().schedule_at(now + config_.delay,
                               [this, copy = std::move(copy)] { replay(copy); });
      });
}

void StaleReplayAttack::replay(sim::Packet p) {
  auto& node = net_.router(config_.at);
  if (p.hdr.dst == config_.at) {
    // A hop copy addressed to the attacker (flooded kinds): re-emit the
    // captured bytes to every router neighbor as if freshly flooded.
    for (std::size_t i = 0; i < node.interface_count(); ++i) {
      const util::NodeId peer = node.interface(i).peer();
      if (!net_.is_router(peer)) continue;
      sim::PacketHeader hdr = p.hdr;
      hdr.src = config_.at;
      hdr.dst = peer;
      sim::Packet copy = net_.make_packet(hdr, p.size_bytes);
      copy.control = p.control;
      node.interface(i).send(copy);
      ++replayed_;
    }
    return;
  }
  // A routed exchange/report captured in transit: re-originate it toward
  // its original destination, original claimed source intact.
  sim::Packet copy = net_.make_packet(p.hdr, p.size_bytes);
  copy.control = p.control;
  node.originate(copy);
  ++replayed_;
}

// --------------------------------------------------- FalseAccusationAttack

FalseAccusationAttack::FalseAccusationAttack(sim::Network& net, const crypto::KeyRegistry& keys,
                                             detection::ConvictionEngine& conviction,
                                             Config config)
    : net_(net), keys_(keys), conviction_(conviction), config_(std::move(config)) {
  net_.sim().schedule_at(config_.start, [this] { fire(); });
}

void FalseAccusationAttack::fire() {
  const std::int64_t round = config_.clock.round_of(net_.sim().now());
  for (util::NodeId accuser : config_.accusers) {
    detection::Accusation acc;
    acc.accuser = accuser;
    acc.detector = config_.detector;
    acc.accused = routing::PathSegment{config_.victim};
    acc.round = round;
    acc.cause = "framed";
    if (config_.forge_evidence) {
      // A fabricated "equivocation proof": two envelopes under the
      // victim's name that the attacker cannot actually sign. The
      // evidence layer spots the invalid proof and convicts the accuser.
      for (std::byte b : {std::byte{0x01}, std::byte{0x02}}) {
        crypto::SignedEnvelope fake;
        fake.signer = config_.victim;
        fake.payload = {b, std::byte{0xBA}, std::byte{0xD0}};
        fake.tag = 0xFA4EFA4EFA4EFA4EULL;
        acc.evidence.push_back(std::move(fake));
      }
    }
    // The accusation itself is signed under the accuser's OWN key — it
    // must pass admission for its lie to enter the ledger at all.
    crypto::SignedEnvelope env = crypto::sign(keys_, accuser, acc.to_bytes());
    conviction_.originate_raw(accuser, acc, std::move(env));
    ++filed_;
  }
  if (--config_.shots > 0 && config_.period.count_nanos() > 0) {
    net_.sim().schedule_in(config_.period, [this] { fire(); });
  }
}

}  // namespace fatih::attacks
