// Declarative scenario descriptions for the fleet runner.
//
// A ScenarioSpec is the complete, self-contained recipe for one
// experiment: topology, traffic matrix, attack family, churn schedule,
// detector configuration and seed. Everything the bench binaries used to
// hard-code in C++ becomes data, so a scenario can be hashed, swept over
// worker processes, embedded in a snapshot, and replayed bit-identically
// by any future build.
//
// The codec is a deterministic line-oriented text format (one `key value`
// or `section key=value ...` statement per line). encode() produces a
// canonical form — fixed statement order, fixed key order, integers for
// every quantity (durations in nanoseconds, rates in milli-pps) — so
// spec_hash() is stable across platforms and the encoded text is both the
// fleet's on-disk spec format and the snapshot's embedded recipe.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"
#include "util/types.hpp"

namespace fatih::scenario {

/// Which reference fabric the scenario runs on. Each kind fully determines
/// routers, links, static routes and processing delays (see runner.cpp).
enum class TopologyKind : std::uint8_t {
  kLine4,          ///< r0-r1-r2-r3 line, 100 Mb/s, 1 ms links
  kAbilene,        ///< the 11-PoP Internet2 backbone (Fig. 5.6)
  kChiBottleneck,  ///< Fig. 6.4: s1,s2 -> r -> rd with the monitored queue
  kGenerated,      ///< seeded PoP-clustered graph from src/topo (see TopoSpec)
};

/// Parameters of a generated topology (topology == kGenerated). Mirrors
/// topo::TopoParams, minus the non-spec knobs (bandwidth and queue limits
/// stay at the generator defaults so the canonical form stays integral).
/// The `topo` statement is emitted only for generated topologies, so the
/// encoding of every pre-existing spec is unchanged.
struct TopoSpec {
  std::uint32_t routers = 87;
  std::uint32_t links = 161;
  std::uint32_t pops = 11;
  std::uint32_t max_degree = 24;
  std::uint64_t seed = 1;
  std::int64_t intra_delay_ns = 200'000;    ///< intra-PoP propagation delay
  std::int64_t inter_delay_ns = 2'000'000;  ///< inter-PoP delay = shard lookahead
};

/// Which detection protocol the scenario commissions.
enum class DetectorKind : std::uint8_t {
  kPi2,   ///< Protocol Pi2 (precision 2, flooding dissemination)
  kPik2,  ///< Protocol Pi(k+2) (end-to-end exchange)
  kChi,   ///< Protocol chi (queue replay at the Fig. 6.4 bottleneck)
};

/// Traffic source families (src/traffic).
enum class FlowKind : std::uint8_t { kCbr, kOnOff, kTcp };

/// Data-plane attack families (src/attacks) expressible in a spec.
enum class AttackKind : std::uint8_t {
  kRateDrop,       ///< drop a fraction of matching packets
  kQueueGateDrop,  ///< drop only while the queue is >= threshold full
  kRedGateDrop,    ///< drop while the RED average exceeds threshold bytes
  kModify,         ///< replace payloads (conservation-of-content threat)
  kReorder,        ///< hold packets back by delay_ns
};

/// One traffic source. Times are absolute sim nanoseconds; rates are in
/// milli-packets-per-second so the canonical form stays integral.
struct FlowSpec {
  FlowKind kind = FlowKind::kCbr;
  util::NodeId src = 0;
  util::NodeId dst = 0;
  std::uint32_t flow_id = 0;
  std::int64_t rate_mpps = 0;  ///< milli-packets/s (CBR and OnOff on-rate)
  std::uint32_t payload_bytes = 960;
  std::int64_t start_ns = 0;
  std::int64_t stop_ns = 0;
  std::int64_t mean_on_ns = 0;   ///< OnOff burst mean
  std::int64_t mean_off_ns = 0;  ///< OnOff gap mean
};

/// One compromised router running one attack filter. Multiple attacks on
/// one router compose through a FilterChain in spec order.
struct AttackSpec {
  AttackKind kind = AttackKind::kRateDrop;
  util::NodeId at = 0;                   ///< the compromised router
  std::vector<std::uint32_t> flow_ids{};  ///< empty = every flow
  std::int64_t fraction_ppm = 1'000'000;  ///< drop/modify fraction, parts/million
  std::int64_t threshold_ppm = 0;  ///< queue-fill gate, ppm of full (kQueueGateDrop)
  std::int64_t threshold_bytes = 0;  ///< RED average gate (kRedGateDrop)
  std::int64_t delay_ns = 0;         ///< reorder hold-back
  std::int64_t active_from_ns = 0;
  std::uint64_t seed = 1;
};

/// One scripted churn event (mirrors sim::ChurnEvent).
struct ChurnSpec {
  enum class Kind : std::uint8_t { kLinkDown, kLinkUp, kRouterCrash, kRouterRestart };
  Kind kind = Kind::kLinkDown;
  std::int64_t at_ns = 0;
  util::NodeId a = 0;
  util::NodeId b = 0;  ///< unused for router events
};

/// Detector commissioning parameters. Only the fields relevant to `kind`
/// are consumed; the rest stay at defaults so the canonical form is total.
struct DetectorSpec {
  DetectorKind kind = DetectorKind::kPik2;
  std::int64_t epoch_ns = 0;              ///< round-clock epoch
  std::int64_t tau_ns = 1'000'000'000;    ///< round length
  std::int64_t rounds = 5;                ///< 0 = run until simulation ends
  std::uint32_t k = 1;                    ///< Pi2 / Pi(k+2) precision parameter
  std::int64_t learning_rounds = 3;       ///< chi calibration rounds
  bool reliable = false;                  ///< ack/retransmit control transport
  bool red = false;                       ///< chi: RED bottleneck discipline
  std::vector<util::NodeId> terminals{};  ///< Pi2/Pik2 monitored path ends
};

/// The complete scenario recipe.
struct ScenarioSpec {
  std::string name{};
  TopologyKind topology = TopologyKind::kLine4;
  std::uint64_t seed = 1;
  std::int64_t duration_ns = 0;  ///< traffic horizon; run ends 2 s later
  TopoSpec topo{};               ///< generated-topology knobs (kGenerated only)
  /// 0 = classic single-simulator engine. > 0 selects the sharded engine
  /// (one simulator per PoP) and is the default worker-thread count; runs
  /// may override the thread count without changing the digest, which is
  /// shard-count- and thread-count-invariant by construction. Encoded as
  /// `engine shards=N` only when non-zero, so existing specs keep their
  /// byte-identical canonical form.
  std::uint32_t shards = 0;
  DetectorSpec detector{};
  std::vector<FlowSpec> flows{};
  std::vector<AttackSpec> attacks{};
  std::vector<ChurnSpec> churn{};
};

/// Canonical text form (see file header). decode(encode(s)) == s.
[[nodiscard]] std::string encode(const ScenarioSpec& spec);

/// Parses a spec. Returns false and sets `error` (with a line number) on
/// malformed input: unknown sections/keys, bad integers, missing header.
[[nodiscard]] bool decode(const std::string& text, ScenarioSpec& out, std::string& error);

/// FNV-1a 64 (util/hash.hpp) over the canonical encoding: the corpus key
/// for the scenario.
[[nodiscard]] std::uint64_t spec_hash(const ScenarioSpec& spec);

[[nodiscard]] const char* topology_name(TopologyKind k);
[[nodiscard]] const char* detector_name(DetectorKind k);
[[nodiscard]] const char* flow_name(FlowKind k);
[[nodiscard]] const char* attack_name(AttackKind k);
[[nodiscard]] const char* churn_name(ChurnSpec::Kind k);

}  // namespace fatih::scenario
