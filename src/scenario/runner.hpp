// Materializes a ScenarioSpec into a live experiment and drives it.
//
// A ScenarioRun owns the network, routes, traffic agents, attack filters,
// churn schedule and detection engine a spec describes, and can advance
// simulated time incrementally (run_to) while capturing StateDigests — the
// checkpoint/restore and drift-bisection primitives. Every run of the same
// spec is bit-identical: construction order, seeds and event scheduling
// are all functions of the spec alone.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace fatih::scenario {

/// Everything a checkpoint pins about an in-flight run: counters plus FNV
/// fingerprints of the RNG stream position, the live pending event queue,
/// the detector's round state and the suspicion set. Two runs of one spec
/// agree on the digest at every instant or they have diverged.
struct StateDigest {
  std::int64_t t_ns = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t delivered = 0;
  std::uint64_t rng_hash = 0;
  std::uint64_t pending_hash = 0;
  std::uint64_t detector_hash = 0;
  std::uint64_t suspicion_hash = 0;
  std::uint64_t suspicion_count = 0;

  /// One word folding every field, the value stored in checkpoints.
  [[nodiscard]] std::uint64_t hash() const;
  bool operator==(const StateDigest&) const = default;
};

/// A (time, digest) pair captured at a detection-round boundary.
struct Checkpoint {
  std::int64_t t_ns = 0;
  std::uint64_t digest = 0;

  bool operator==(const Checkpoint&) const = default;
};

/// What one completed run contributes to the corpus.
struct ScenarioResult {
  std::string name{};
  std::uint64_t spec_hash = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t final_digest = 0;
  std::vector<std::string> suspicions{};
  std::vector<Checkpoint> checkpoints{};
};

class ScenarioRun {
 public:
  explicit ScenarioRun(const ScenarioSpec& spec);
  /// Overrides the worker-thread count for sharded specs (spec.shards > 0);
  /// 0 means "use spec.shards". The digest is thread-count-invariant, so
  /// any value reproduces the same run — this knob exists for the
  /// differential tests and the shard bench. Ignored for classic specs.
  ScenarioRun(const ScenarioSpec& spec, unsigned threads);
  ~ScenarioRun();
  ScenarioRun(const ScenarioRun&) = delete;
  ScenarioRun& operator=(const ScenarioRun&) = delete;

  /// Advances simulated time to `t_ns` (clamped to end_time_ns()),
  /// capturing a checkpoint at every round boundary crossed.
  void run_to(std::int64_t t_ns);

  /// Runs to the end and assembles the corpus record.
  [[nodiscard]] ScenarioResult finish();

  /// Absolute horizon: duration_ns plus the drain window.
  [[nodiscard]] std::int64_t end_time_ns() const;

  /// Digest of the current state (current sim time).
  [[nodiscard]] StateDigest digest() const;

  /// Suspicions raised so far, rendered in raise order.
  [[nodiscard]] std::vector<std::string> suspicion_strings() const;

  /// Checkpoints captured so far (round boundaries passed by run_to).
  [[nodiscard]] const std::vector<Checkpoint>& checkpoints() const;

  [[nodiscard]] const ScenarioSpec& spec() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience: straight run of `spec`, start to finish.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec);
/// Same, with a worker-thread override for sharded specs (0 = spec.shards).
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec, unsigned threads);

}  // namespace fatih::scenario
