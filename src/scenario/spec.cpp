#include "scenario/spec.hpp"

#include <charconv>

#include "util/hash.hpp"

namespace fatih::scenario {

namespace {

constexpr std::string_view kHeader = "scenario v1";

void append_kv(std::string& out, const char* key, std::int64_t v) {
  out += ' ';
  out += key;
  out += '=';
  out += std::to_string(v);
}

void append_kv_u(std::string& out, const char* key, std::uint64_t v) {
  out += ' ';
  out += key;
  out += '=';
  out += std::to_string(v);
}

void append_list(std::string& out, const char* key, const std::vector<std::uint32_t>& xs) {
  out += ' ';
  out += key;
  out += '=';
  if (xs.empty()) {
    out += '-';
    return;
  }
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(xs[i]);
  }
}

/// One `key=value` token out of a statement line.
struct Token {
  std::string_view key;
  std::string_view value;
};

bool split_tokens(std::string_view rest, std::vector<Token>& out, std::string& error) {
  out.clear();
  std::size_t pos = 0;
  while (pos < rest.size()) {
    while (pos < rest.size() && rest[pos] == ' ') ++pos;
    if (pos >= rest.size()) break;
    const std::size_t end = rest.find(' ', pos);
    const std::string_view tok =
        rest.substr(pos, end == std::string_view::npos ? rest.size() - pos : end - pos);
    const std::size_t eq = tok.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      error = "expected key=value, got '" + std::string(tok) + "'";
      return false;
    }
    out.push_back(Token{tok.substr(0, eq), tok.substr(eq + 1)});
    pos = end == std::string_view::npos ? rest.size() : end;
  }
  return true;
}

bool parse_i64(std::string_view s, std::int64_t& out) {
  if (s.empty()) return false;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto res = std::from_chars(first, last, out);
  return res.ec == std::errc{} && res.ptr == last;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty() || s[0] == '-') return false;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto res = std::from_chars(first, last, out);
  return res.ec == std::errc{} && res.ptr == last;
}

bool parse_u32(std::string_view s, std::uint32_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, v) || v > 0xFFFFFFFFull) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

bool parse_list(std::string_view s, std::vector<std::uint32_t>& out) {
  out.clear();
  if (s == "-") return true;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string_view item =
        s.substr(pos, comma == std::string_view::npos ? s.size() - pos : comma - pos);
    std::uint32_t v = 0;
    if (!parse_u32(item, v)) return false;
    out.push_back(v);
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return true;
}

bool parse_bool(std::string_view s, bool& out) {
  if (s == "0") { out = false; return true; }
  if (s == "1") { out = true; return true; }
  return false;
}

template <typename E>
bool parse_enum(std::string_view s, E& out, const char* (*name)(E), E last) {
  for (std::uint8_t i = 0; i <= static_cast<std::uint8_t>(last); ++i) {
    const E e = static_cast<E>(i);
    if (s == name(e)) {
      out = e;
      return true;
    }
  }
  return false;
}

}  // namespace

const char* topology_name(TopologyKind k) {
  switch (k) {
    case TopologyKind::kLine4: return "line4";
    case TopologyKind::kAbilene: return "abilene";
    case TopologyKind::kChiBottleneck: return "chi_bottleneck";
    case TopologyKind::kGenerated: return "generated";
  }
  return "?";
}

const char* detector_name(DetectorKind k) {
  switch (k) {
    case DetectorKind::kPi2: return "pi2";
    case DetectorKind::kPik2: return "pik2";
    case DetectorKind::kChi: return "chi";
  }
  return "?";
}

const char* flow_name(FlowKind k) {
  switch (k) {
    case FlowKind::kCbr: return "cbr";
    case FlowKind::kOnOff: return "onoff";
    case FlowKind::kTcp: return "tcp";
  }
  return "?";
}

const char* attack_name(AttackKind k) {
  switch (k) {
    case AttackKind::kRateDrop: return "rate_drop";
    case AttackKind::kQueueGateDrop: return "queue_gate_drop";
    case AttackKind::kRedGateDrop: return "red_gate_drop";
    case AttackKind::kModify: return "modify";
    case AttackKind::kReorder: return "reorder";
  }
  return "?";
}

const char* churn_name(ChurnSpec::Kind k) {
  switch (k) {
    case ChurnSpec::Kind::kLinkDown: return "link_down";
    case ChurnSpec::Kind::kLinkUp: return "link_up";
    case ChurnSpec::Kind::kRouterCrash: return "router_crash";
    case ChurnSpec::Kind::kRouterRestart: return "router_restart";
  }
  return "?";
}

std::string encode(const ScenarioSpec& spec) {
  std::string out(kHeader);
  out += '\n';
  out += "name ";
  out += spec.name;
  out += '\n';
  out += "topology ";
  out += topology_name(spec.topology);
  out += '\n';
  out += "seed " + std::to_string(spec.seed) + '\n';
  out += "duration_ns " + std::to_string(spec.duration_ns) + '\n';

  // Both statements are new in codec terms and emitted only when they
  // carry non-default content, so pre-existing specs encode byte-for-byte
  // as before (stable spec_hash across the corpus).
  if (spec.topology == TopologyKind::kGenerated) {
    const TopoSpec& t = spec.topo;
    out += "topo";
    append_kv_u(out, "routers", t.routers);
    append_kv_u(out, "links", t.links);
    append_kv_u(out, "pops", t.pops);
    append_kv_u(out, "max_degree", t.max_degree);
    append_kv_u(out, "seed", t.seed);
    append_kv(out, "intra_delay_ns", t.intra_delay_ns);
    append_kv(out, "inter_delay_ns", t.inter_delay_ns);
    out += '\n';
  }
  if (spec.shards > 0) {
    out += "engine";
    append_kv_u(out, "shards", spec.shards);
    out += '\n';
  }

  const DetectorSpec& d = spec.detector;
  out += "detector ";
  out += detector_name(d.kind);
  append_kv(out, "epoch_ns", d.epoch_ns);
  append_kv(out, "tau_ns", d.tau_ns);
  append_kv(out, "rounds", d.rounds);
  append_kv_u(out, "k", d.k);
  append_kv(out, "learning_rounds", d.learning_rounds);
  append_kv(out, "reliable", d.reliable ? 1 : 0);
  append_kv(out, "red", d.red ? 1 : 0);
  append_list(out, "terminals", d.terminals);
  out += '\n';

  for (const FlowSpec& f : spec.flows) {
    out += "flow ";
    out += flow_name(f.kind);
    append_kv_u(out, "src", f.src);
    append_kv_u(out, "dst", f.dst);
    append_kv_u(out, "flow_id", f.flow_id);
    append_kv(out, "rate_mpps", f.rate_mpps);
    append_kv_u(out, "payload_bytes", f.payload_bytes);
    append_kv(out, "start_ns", f.start_ns);
    append_kv(out, "stop_ns", f.stop_ns);
    append_kv(out, "mean_on_ns", f.mean_on_ns);
    append_kv(out, "mean_off_ns", f.mean_off_ns);
    out += '\n';
  }
  for (const AttackSpec& a : spec.attacks) {
    out += "attack ";
    out += attack_name(a.kind);
    append_kv_u(out, "at", a.at);
    append_list(out, "flow_ids", a.flow_ids);
    append_kv(out, "fraction_ppm", a.fraction_ppm);
    append_kv(out, "threshold_ppm", a.threshold_ppm);
    append_kv(out, "threshold_bytes", a.threshold_bytes);
    append_kv(out, "delay_ns", a.delay_ns);
    append_kv(out, "active_from_ns", a.active_from_ns);
    append_kv_u(out, "seed", a.seed);
    out += '\n';
  }
  for (const ChurnSpec& c : spec.churn) {
    out += "churn ";
    out += churn_name(c.kind);
    append_kv(out, "at_ns", c.at_ns);
    append_kv_u(out, "a", c.a);
    append_kv_u(out, "b", c.b);
    out += '\n';
  }
  return out;
}

bool decode(const std::string& text, ScenarioSpec& out, std::string& error) {
  out = ScenarioSpec{};
  error.clear();
  std::size_t line_no = 0;
  std::size_t pos = 0;
  bool saw_header = false;
  std::vector<Token> toks;

  auto fail = [&](const std::string& why) {
    error = "line " + std::to_string(line_no) + ": " + why;
    return false;
  };

  while (pos <= text.size()) {
    if (pos == text.size()) break;
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line(text.data() + pos,
                                (eol == std::string::npos ? text.size() : eol) - pos);
    pos = eol == std::string::npos ? text.size() : eol + 1;
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    if (!saw_header) {
      if (line != kHeader) return fail("expected '" + std::string(kHeader) + "' header");
      saw_header = true;
      continue;
    }
    const std::size_t sp = line.find(' ');
    const std::string_view stmt = line.substr(0, sp);
    const std::string_view rest = sp == std::string_view::npos ? std::string_view{}
                                                               : line.substr(sp + 1);
    if (stmt == "name") {
      out.name = std::string(rest);
    } else if (stmt == "topology") {
      if (!parse_enum(rest, out.topology, topology_name, TopologyKind::kGenerated))
        return fail("unknown topology '" + std::string(rest) + "'");
    } else if (stmt == "seed") {
      if (!parse_u64(rest, out.seed)) return fail("bad seed");
    } else if (stmt == "duration_ns") {
      if (!parse_i64(rest, out.duration_ns)) return fail("bad duration_ns");
    } else if (stmt == "topo") {
      TopoSpec& t = out.topo;
      if (!split_tokens(rest, toks, error)) return fail(error);
      for (const Token& tk : toks) {
        bool ok = true;
        if (tk.key == "routers") ok = parse_u32(tk.value, t.routers);
        else if (tk.key == "links") ok = parse_u32(tk.value, t.links);
        else if (tk.key == "pops") ok = parse_u32(tk.value, t.pops);
        else if (tk.key == "max_degree") ok = parse_u32(tk.value, t.max_degree);
        else if (tk.key == "seed") ok = parse_u64(tk.value, t.seed);
        else if (tk.key == "intra_delay_ns") ok = parse_i64(tk.value, t.intra_delay_ns);
        else if (tk.key == "inter_delay_ns") ok = parse_i64(tk.value, t.inter_delay_ns);
        else return fail("unknown topo key '" + std::string(tk.key) + "'");
        if (!ok) return fail("bad topo value for '" + std::string(tk.key) + "'");
      }
    } else if (stmt == "engine") {
      if (!split_tokens(rest, toks, error)) return fail(error);
      for (const Token& tk : toks) {
        bool ok = true;
        if (tk.key == "shards") ok = parse_u32(tk.value, out.shards);
        else return fail("unknown engine key '" + std::string(tk.key) + "'");
        if (!ok) return fail("bad engine value for '" + std::string(tk.key) + "'");
      }
    } else if (stmt == "detector") {
      const std::size_t sp2 = rest.find(' ');
      const std::string_view kind = rest.substr(0, sp2);
      DetectorSpec& d = out.detector;
      if (!parse_enum(kind, d.kind, detector_name, DetectorKind::kChi))
        return fail("unknown detector '" + std::string(kind) + "'");
      if (!split_tokens(sp2 == std::string_view::npos ? std::string_view{} : rest.substr(sp2 + 1),
                        toks, error))
        return fail(error);
      for (const Token& t : toks) {
        bool ok = true;
        if (t.key == "epoch_ns") ok = parse_i64(t.value, d.epoch_ns);
        else if (t.key == "tau_ns") ok = parse_i64(t.value, d.tau_ns);
        else if (t.key == "rounds") ok = parse_i64(t.value, d.rounds);
        else if (t.key == "k") ok = parse_u32(t.value, d.k);
        else if (t.key == "learning_rounds") ok = parse_i64(t.value, d.learning_rounds);
        else if (t.key == "reliable") ok = parse_bool(t.value, d.reliable);
        else if (t.key == "red") ok = parse_bool(t.value, d.red);
        else if (t.key == "terminals") ok = parse_list(t.value, d.terminals);
        else return fail("unknown detector key '" + std::string(t.key) + "'");
        if (!ok) return fail("bad detector value for '" + std::string(t.key) + "'");
      }
    } else if (stmt == "flow") {
      const std::size_t sp2 = rest.find(' ');
      FlowSpec f;
      if (!parse_enum(rest.substr(0, sp2), f.kind, flow_name, FlowKind::kTcp))
        return fail("unknown flow kind");
      if (!split_tokens(sp2 == std::string_view::npos ? std::string_view{} : rest.substr(sp2 + 1),
                        toks, error))
        return fail(error);
      for (const Token& t : toks) {
        bool ok = true;
        if (t.key == "src") ok = parse_u32(t.value, f.src);
        else if (t.key == "dst") ok = parse_u32(t.value, f.dst);
        else if (t.key == "flow_id") ok = parse_u32(t.value, f.flow_id);
        else if (t.key == "rate_mpps") ok = parse_i64(t.value, f.rate_mpps);
        else if (t.key == "payload_bytes") ok = parse_u32(t.value, f.payload_bytes);
        else if (t.key == "start_ns") ok = parse_i64(t.value, f.start_ns);
        else if (t.key == "stop_ns") ok = parse_i64(t.value, f.stop_ns);
        else if (t.key == "mean_on_ns") ok = parse_i64(t.value, f.mean_on_ns);
        else if (t.key == "mean_off_ns") ok = parse_i64(t.value, f.mean_off_ns);
        else return fail("unknown flow key '" + std::string(t.key) + "'");
        if (!ok) return fail("bad flow value for '" + std::string(t.key) + "'");
      }
      out.flows.push_back(f);
    } else if (stmt == "attack") {
      const std::size_t sp2 = rest.find(' ');
      AttackSpec a;
      if (!parse_enum(rest.substr(0, sp2), a.kind, attack_name, AttackKind::kReorder))
        return fail("unknown attack kind");
      if (!split_tokens(sp2 == std::string_view::npos ? std::string_view{} : rest.substr(sp2 + 1),
                        toks, error))
        return fail(error);
      for (const Token& t : toks) {
        bool ok = true;
        if (t.key == "at") ok = parse_u32(t.value, a.at);
        else if (t.key == "flow_ids") ok = parse_list(t.value, a.flow_ids);
        else if (t.key == "fraction_ppm") ok = parse_i64(t.value, a.fraction_ppm);
        else if (t.key == "threshold_ppm") ok = parse_i64(t.value, a.threshold_ppm);
        else if (t.key == "threshold_bytes") ok = parse_i64(t.value, a.threshold_bytes);
        else if (t.key == "delay_ns") ok = parse_i64(t.value, a.delay_ns);
        else if (t.key == "active_from_ns") ok = parse_i64(t.value, a.active_from_ns);
        else if (t.key == "seed") ok = parse_u64(t.value, a.seed);
        else return fail("unknown attack key '" + std::string(t.key) + "'");
        if (!ok) return fail("bad attack value for '" + std::string(t.key) + "'");
      }
      out.attacks.push_back(a);
    } else if (stmt == "churn") {
      const std::size_t sp2 = rest.find(' ');
      ChurnSpec c;
      if (!parse_enum(rest.substr(0, sp2), c.kind, churn_name, ChurnSpec::Kind::kRouterRestart))
        return fail("unknown churn kind");
      if (!split_tokens(sp2 == std::string_view::npos ? std::string_view{} : rest.substr(sp2 + 1),
                        toks, error))
        return fail(error);
      for (const Token& t : toks) {
        bool ok = true;
        if (t.key == "at_ns") ok = parse_i64(t.value, c.at_ns);
        else if (t.key == "a") ok = parse_u32(t.value, c.a);
        else if (t.key == "b") ok = parse_u32(t.value, c.b);
        else return fail("unknown churn key '" + std::string(t.key) + "'");
        if (!ok) return fail("bad churn value for '" + std::string(t.key) + "'");
      }
      out.churn.push_back(c);
    } else {
      return fail("unknown statement '" + std::string(stmt) + "'");
    }
  }
  if (!saw_header) {
    error = "empty input: missing '" + std::string(kHeader) + "' header";
    return false;
  }
  if (out.name.empty()) {
    error = "spec has no name";
    return false;
  }
  return true;
}

std::uint64_t spec_hash(const ScenarioSpec& spec) {
  const std::string text = encode(spec);
  return util::fnv1a64(text.data(), text.size());
}

}  // namespace fatih::scenario
