// The fleet's machine-readable result corpus.
//
// One CorpusRecord pins everything a scenario run is expected to
// reproduce: counters, the final digest, the suspicion strings, and the
// per-round checkpoint digests the drift bisection searches over. A
// Corpus is the deterministic aggregate the fleet writes (records sorted
// by name, canonical JSON) and the golden file the drift comparison reads
// (BENCH_fleet_corpus.json at the repo root).
//
// Failed workers are corpus citizens too: a record with status "crash" or
// "timeout" keeps the failure visible in the aggregate instead of
// silently shrinking it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/runner.hpp"

namespace fatih::scenario {

/// One scenario's outcome. `status` is "ok", "crash" or "timeout";
/// non-ok records carry zeroed results but a real attempt count.
struct CorpusRecord {
  std::string name{};
  std::uint64_t spec_hash = 0;
  std::string status = "ok";
  std::uint32_t attempts = 1;
  std::uint64_t forwarded = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t final_digest = 0;
  std::vector<std::string> suspicions{};
  std::vector<Checkpoint> checkpoints{};

  bool operator==(const CorpusRecord&) const = default;
};

struct Corpus {
  std::uint32_t version = 1;
  std::vector<CorpusRecord> records{};

  /// Inserts keeping records sorted by name (replaces an existing record
  /// of the same name).
  void upsert(CorpusRecord rec);

  [[nodiscard]] const CorpusRecord* find(const std::string& name) const;
};

/// Converts a completed run's result into an "ok" record.
[[nodiscard]] CorpusRecord to_record(const ScenarioResult& result);

/// Canonical JSON: records sorted by name, fixed key order, 64-bit hashes
/// as hex strings. Byte-identical across platforms for identical results.
[[nodiscard]] std::string to_json(const Corpus& corpus);

/// Parses JSON produced by to_json (plus whitespace tolerance). Returns
/// false and sets `error` on malformed input.
[[nodiscard]] bool from_json(const std::string& text, Corpus& out, std::string& error);

}  // namespace fatih::scenario
