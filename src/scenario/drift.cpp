#include "scenario/drift.hpp"

#include <algorithm>

namespace fatih::scenario {

namespace {

/// First field-level mismatch between two ok records, empty when equal.
std::string mismatch_reason(const CorpusRecord& golden, const CorpusRecord& fresh) {
  const auto num = [](const char* field, std::uint64_t g, std::uint64_t f) {
    return std::string(field) + ": golden " + std::to_string(g) + " vs fresh " +
           std::to_string(f);
  };
  if (golden.spec_hash != fresh.spec_hash)
    return num("spec_hash", golden.spec_hash, fresh.spec_hash);
  if (golden.forwarded != fresh.forwarded)
    return num("forwarded", golden.forwarded, fresh.forwarded);
  if (golden.delivered != fresh.delivered)
    return num("delivered", golden.delivered, fresh.delivered);
  if (golden.dispatched != fresh.dispatched)
    return num("dispatched", golden.dispatched, fresh.dispatched);
  if (golden.suspicions != fresh.suspicions) {
    if (golden.suspicions.size() != fresh.suspicions.size())
      return num("suspicion count", golden.suspicions.size(), fresh.suspicions.size());
    for (std::size_t i = 0; i < golden.suspicions.size(); ++i) {
      if (golden.suspicions[i] != fresh.suspicions[i]) {
        return "suspicion " + std::to_string(i) + ": golden \"" + golden.suspicions[i] +
               "\" vs fresh \"" + fresh.suspicions[i] + "\"";
      }
    }
  }
  if (golden.final_digest != fresh.final_digest)
    return num("final_digest", golden.final_digest, fresh.final_digest);
  return {};
}

}  // namespace

DivergenceWindow first_divergent_window(const std::vector<Checkpoint>& golden,
                                        const std::vector<Checkpoint>& fresh) {
  DivergenceWindow w;
  const std::size_t n = std::min(golden.size(), fresh.size());
  // agrees(i) is monotone in i (deterministic replay: once diverged,
  // never re-converged), so binary-search the first disagreement.
  const auto agrees = [&](std::size_t i) { return golden[i] == fresh[i]; };
  std::size_t lo = 0;
  std::size_t hi = n;  // invariant: every i < lo agrees; first mismatch < hi
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (agrees(mid)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == n) {
    // Shared prefixes agree; trails of different length still localize
    // the divergence to the first checkpoint only one trail has.
    if (golden.size() != fresh.size()) {
      const auto& longer = golden.size() > fresh.size() ? golden : fresh;
      w.found = true;
      w.from_ns = n == 0 ? 0 : longer[n - 1].t_ns;
      w.to_ns = longer[n].t_ns;
      return w;
    }
    // A replay can't re-converge after diverging, but a corrupted corpus
    // file can disagree non-monotonically and fool the binary search;
    // fall back to a linear scan so a differing trail always gets a window.
    for (std::size_t i = 0; i < n; ++i) {
      if (!agrees(i)) {
        lo = i;
        break;
      }
    }
    if (lo == n) return w;
  }
  w.found = true;
  w.from_ns = lo == 0 ? 0 : golden[lo - 1].t_ns;
  w.to_ns = golden[lo].t_ns;
  return w;
}

DriftReport compare_corpus(const Corpus& golden, const Corpus& fresh) {
  DriftReport report;
  for (const CorpusRecord& g : golden.records) {
    ++report.compared;
    Divergence d;
    d.name = g.name;
    const CorpusRecord* f = fresh.find(g.name);
    if (f == nullptr) {
      d.reason = "missing from fresh corpus";
      report.divergences.push_back(std::move(d));
      continue;
    }
    if (g.status != "ok") {
      // A golden failure record pins only that the scenario is expected
      // to fail the same way (used by the injected-fault probes).
      if (f->status != g.status) {
        d.reason = "status: golden " + g.status + " vs fresh " + f->status;
        report.divergences.push_back(std::move(d));
      }
      continue;
    }
    if (f->status != "ok") {
      d.reason = "fresh run failed: " + f->status;
      report.divergences.push_back(std::move(d));
      continue;
    }
    d.reason = mismatch_reason(g, *f);
    if (d.reason.empty() && g.checkpoints != f->checkpoints) {
      d.reason = "checkpoint trail mismatch";
    }
    if (!d.reason.empty()) {
      d.window = first_divergent_window(g.checkpoints, f->checkpoints);
      report.divergences.push_back(std::move(d));
    }
  }
  return report;
}

std::string describe(const DriftReport& report) {
  std::string out;
  if (report.clean()) {
    out = "drift: clean (" + std::to_string(report.compared) + " records compared)\n";
    return out;
  }
  for (const Divergence& d : report.divergences) {
    out += "drift: " + d.name + ": " + d.reason;
    if (d.window.found) {
      out += " (first divergent window " + std::to_string(d.window.from_ns) + " .. " +
             std::to_string(d.window.to_ns) + " ns)";
    }
    out += "\n";
  }
  return out;
}

}  // namespace fatih::scenario
