#include "scenario/snapshot.hpp"

#include <cstring>

#include "util/hash.hpp"

namespace fatih::scenario {

namespace {

constexpr char kMagic[4] = {'F', 'S', 'N', 'P'};

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounded little-endian reader; any out-of-range read latches `ok` false.
struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;
  bool ok = true;

  [[nodiscard]] bool take(std::size_t n) {
    if (!ok || size - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }

  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
    pos += 4;
    return v;
  }

  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
    pos += 8;
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  std::string str() {
    const std::uint32_t n = u32();
    if (!take(n)) return {};
    std::string s(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return s;
  }
};

}  // namespace

const char* snapshot_error_name(SnapshotError e) {
  switch (e) {
    case SnapshotError::kNone: return "none";
    case SnapshotError::kTruncated: return "truncated";
    case SnapshotError::kBadMagic: return "bad-magic";
    case SnapshotError::kChecksumMismatch: return "checksum-mismatch";
    case SnapshotError::kBadVersion: return "bad-version";
    case SnapshotError::kBadSpec: return "bad-spec";
    case SnapshotError::kStateDiverged: return "state-diverged";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_snapshot(const ScenarioSnapshot& snap) {
  std::vector<std::uint8_t> out;
  out.reserve(128 + snap.spec_text.size());
  for (const char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  put_u32(out, snap.version);
  put_str(out, snap.spec_text);
  const StateDigest& d = snap.digest;
  put_i64(out, d.t_ns);
  put_u64(out, d.dispatched);
  put_u64(out, d.forwarded);
  put_u64(out, d.delivered);
  put_u64(out, d.rng_hash);
  put_u64(out, d.pending_hash);
  put_u64(out, d.detector_hash);
  put_u64(out, d.suspicion_hash);
  put_u64(out, d.suspicion_count);
  put_u32(out, static_cast<std::uint32_t>(snap.suspicions.size()));
  for (const std::string& s : snap.suspicions) put_str(out, s);
  put_u64(out, util::fnv1a64(out.data(), out.size()));
  return out;
}

bool decode_snapshot(const std::vector<std::uint8_t>& bytes, ScenarioSnapshot& out,
                     SnapshotError& error) {
  // Framing first: the fixed prelude plus the trailing checksum.
  if (bytes.size() < 4 + 4 + 4 + 8 + 9 * 8 + 4 + 8) {
    error = SnapshotError::kTruncated;
    return false;
  }
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
    error = SnapshotError::kBadMagic;
    return false;
  }
  // Checksum next, so corruption never masquerades as a version mismatch
  // or a parse error.
  const std::size_t body = bytes.size() - 8;
  Reader tail{bytes.data(), bytes.size(), body, true};
  if (tail.u64() != util::fnv1a64(bytes.data(), body)) {
    error = SnapshotError::kChecksumMismatch;
    return false;
  }
  Reader r{bytes.data(), body, 4, true};
  out.version = r.u32();
  if (out.version != kSnapshotVersion) {
    error = SnapshotError::kBadVersion;
    return false;
  }
  out.spec_text = r.str();
  out.digest.t_ns = r.i64();
  out.digest.dispatched = r.u64();
  out.digest.forwarded = r.u64();
  out.digest.delivered = r.u64();
  out.digest.rng_hash = r.u64();
  out.digest.pending_hash = r.u64();
  out.digest.detector_hash = r.u64();
  out.digest.suspicion_hash = r.u64();
  out.digest.suspicion_count = r.u64();
  const std::uint32_t n = r.u32();
  out.suspicions.clear();
  for (std::uint32_t i = 0; i < n && r.ok; ++i) out.suspicions.push_back(r.str());
  if (!r.ok || r.pos != body) {
    error = SnapshotError::kTruncated;
    return false;
  }
  error = SnapshotError::kNone;
  return true;
}

ScenarioSnapshot take_snapshot(ScenarioRun& run) {
  ScenarioSnapshot snap;
  snap.spec_text = encode(run.spec());
  snap.digest = run.digest();
  snap.suspicions = run.suspicion_strings();
  return snap;
}

bool restore_run(const ScenarioSnapshot& snap, std::unique_ptr<ScenarioRun>& out,
                 SnapshotError& error) {
  out.reset();
  ScenarioSpec spec;
  std::string spec_error;
  if (!decode(snap.spec_text, spec, spec_error)) {
    error = SnapshotError::kBadSpec;
    return false;
  }
  auto run = std::make_unique<ScenarioRun>(spec);
  run->run_to(snap.digest.t_ns);
  if (run->digest() != snap.digest) {
    error = SnapshotError::kStateDiverged;
    return false;
  }
  out = std::move(run);
  error = SnapshotError::kNone;
  return true;
}

}  // namespace fatih::scenario
