// Versioned checkpoint snapshots with integrity checking.
//
// The event slab holds arbitrary closures, so a running simulation cannot
// be serialized directly. Snapshots instead use deterministic replay: the
// snapshot embeds the complete scenario recipe (canonical spec text), the
// capture time T, and the StateDigest at T. restore_run() rebuilds the
// run from the spec, replays to T, and verifies the digest byte-for-byte
// — a mismatch means the build no longer reproduces the snapshot's
// history and restore is refused (kStateDiverged) rather than silently
// resuming from a different state. A successful restore is therefore
// guaranteed to continue exactly the run that was snapshotted:
// run-to-T-then-restore and a straight run are indistinguishable.
//
// Wire format (little-endian, fixed field order):
//   magic "FSNP" | u32 version | u32 spec_len | spec text
//   | i64 t_ns | StateDigest fields | u32 n_suspicions
//   | (u32 len | bytes)* suspicions | u64 fnv1a64 of everything above
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "scenario/runner.hpp"

namespace fatih::scenario {

inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Why a snapshot was rejected. Ordered by check: truncation and framing
/// first, checksum before any field is trusted, then version, then the
/// embedded spec, then replay verification.
enum class SnapshotError : std::uint8_t {
  kNone,
  kTruncated,         ///< fewer bytes than the framing promises
  kBadMagic,          ///< not a snapshot at all
  kChecksumMismatch,  ///< bytes corrupted in flight or on disk
  kBadVersion,        ///< produced by an incompatible writer
  kBadSpec,           ///< embedded spec text fails to decode
  kStateDiverged,     ///< replay to t_ns did not reproduce the digest
};

[[nodiscard]] const char* snapshot_error_name(SnapshotError e);

/// The replay recipe a checkpoint pins: spec, capture time, expected
/// digest, and the suspicions raised so far (carried for inspection —
/// replay regenerates them and the digest cross-checks the set).
struct ScenarioSnapshot {
  std::uint32_t version = kSnapshotVersion;
  std::string spec_text{};
  StateDigest digest{};
  std::vector<std::string> suspicions{};
};

/// Serializes to the wire format above.
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(const ScenarioSnapshot& snap);

/// Parses and integrity-checks a snapshot. On failure returns false and
/// sets `error`; `out` is unspecified. Does not replay anything.
[[nodiscard]] bool decode_snapshot(const std::vector<std::uint8_t>& bytes,
                                   ScenarioSnapshot& out, SnapshotError& error);

/// Captures the run's current state as a snapshot.
[[nodiscard]] ScenarioSnapshot take_snapshot(ScenarioRun& run);

/// Rebuilds a run from the snapshot: decodes the embedded spec, replays
/// to the capture time and verifies the digest. On success `out` is a
/// live run positioned exactly at the snapshot instant; on failure
/// (kBadSpec / kStateDiverged) `out` is reset and `error` says why.
[[nodiscard]] bool restore_run(const ScenarioSnapshot& snap,
                               std::unique_ptr<ScenarioRun>& out, SnapshotError& error);

}  // namespace fatih::scenario
