#include "scenario/corpus.hpp"

#include <algorithm>
#include <cctype>

namespace fatih::scenario {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  out += '"';
}

void append_hex(std::string& out, std::uint64_t v) {
  static const char* kHex = "0123456789abcdef";
  out += "\"0x";
  for (int shift = 60; shift >= 0; shift -= 4) out += kHex[(v >> shift) & 0xF];
  out += '"';
}

/// Minimal recursive-descent parser for the subset to_json emits.
struct Parser {
  const char* p;
  const char* end;
  std::string error;

  void skip_ws() {
    while (p != end && (*p == ' ' || *p == '\n' || *p == '\t' || *p == '\r')) ++p;
  }

  bool fail(const std::string& what) {
    if (error.empty()) error = what;
    return false;
  }

  bool expect(char c) {
    skip_ws();
    if (p == end || *p != c) return fail(std::string("expected '") + c + "'");
    ++p;
    return true;
  }

  [[nodiscard]] bool peek(char c) {
    skip_ws();
    return p != end && *p == c;
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (p != end && *p != '"') {
      char c = *p++;
      if (c == '\\') {
        if (p == end) return fail("dangling escape");
        const char e = *p++;
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: return fail("unknown escape");
        }
      }
      out += c;
    }
    if (p == end) return fail("unterminated string");
    ++p;
    return true;
  }

  bool parse_u64(std::uint64_t& out) {
    skip_ws();
    // Hex-in-string or bare decimal.
    if (p != end && *p == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      if (s.size() < 3 || s[0] != '0' || s[1] != 'x') return fail("bad hex literal");
      out = 0;
      for (std::size_t i = 2; i < s.size(); ++i) {
        const char c = s[i];
        std::uint64_t digit = 0;
        if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f') digit = static_cast<std::uint64_t>(c - 'a' + 10);
        else return fail("bad hex digit");
        out = (out << 4) | digit;
      }
      return true;
    }
    if (p == end || std::isdigit(static_cast<unsigned char>(*p)) == 0)
      return fail("expected number");
    out = 0;
    while (p != end && std::isdigit(static_cast<unsigned char>(*p)) != 0) {
      out = out * 10 + static_cast<std::uint64_t>(*p - '0');
      ++p;
    }
    return true;
  }

  bool parse_i64(std::int64_t& out) {
    skip_ws();
    bool neg = false;
    if (p != end && *p == '-') {
      neg = true;
      ++p;
    }
    std::uint64_t mag = 0;
    if (!parse_u64(mag)) return false;
    out = neg ? -static_cast<std::int64_t>(mag) : static_cast<std::int64_t>(mag);
    return true;
  }

  bool parse_key(std::string& key) {
    if (!parse_string(key)) return false;
    return expect(':');
  }

  bool parse_checkpoint(Checkpoint& cp) {
    if (!expect('{')) return false;
    bool first = true;
    while (!peek('}')) {
      if (!first && !expect(',')) return false;
      first = false;
      std::string key;
      if (!parse_key(key)) return false;
      if (key == "t_ns") {
        if (!parse_i64(cp.t_ns)) return false;
      } else if (key == "digest") {
        if (!parse_u64(cp.digest)) return false;
      } else {
        return fail("unknown checkpoint key: " + key);
      }
    }
    return expect('}');
  }

  bool parse_record(CorpusRecord& rec) {
    if (!expect('{')) return false;
    bool first = true;
    while (!peek('}')) {
      if (!first && !expect(',')) return false;
      first = false;
      std::string key;
      if (!parse_key(key)) return false;
      if (key == "name") {
        if (!parse_string(rec.name)) return false;
      } else if (key == "spec_hash") {
        if (!parse_u64(rec.spec_hash)) return false;
      } else if (key == "status") {
        if (!parse_string(rec.status)) return false;
      } else if (key == "attempts") {
        std::uint64_t v = 0;
        if (!parse_u64(v)) return false;
        rec.attempts = static_cast<std::uint32_t>(v);
      } else if (key == "forwarded") {
        if (!parse_u64(rec.forwarded)) return false;
      } else if (key == "delivered") {
        if (!parse_u64(rec.delivered)) return false;
      } else if (key == "dispatched") {
        if (!parse_u64(rec.dispatched)) return false;
      } else if (key == "final_digest") {
        if (!parse_u64(rec.final_digest)) return false;
      } else if (key == "suspicions") {
        if (!expect('[')) return false;
        while (!peek(']')) {
          if (!rec.suspicions.empty() && !expect(',')) return false;
          std::string s;
          if (!parse_string(s)) return false;
          rec.suspicions.push_back(std::move(s));
        }
        if (!expect(']')) return false;
      } else if (key == "checkpoints") {
        if (!expect('[')) return false;
        while (!peek(']')) {
          if (!rec.checkpoints.empty() && !expect(',')) return false;
          Checkpoint cp;
          if (!parse_checkpoint(cp)) return false;
          rec.checkpoints.push_back(cp);
        }
        if (!expect(']')) return false;
      } else {
        return fail("unknown record key: " + key);
      }
    }
    return expect('}');
  }

  bool parse_corpus(Corpus& out) {
    if (!expect('{')) return false;
    bool first = true;
    while (!peek('}')) {
      if (!first && !expect(',')) return false;
      first = false;
      std::string key;
      if (!parse_key(key)) return false;
      if (key == "version") {
        std::uint64_t v = 0;
        if (!parse_u64(v)) return false;
        out.version = static_cast<std::uint32_t>(v);
      } else if (key == "records") {
        if (!expect('[')) return false;
        while (!peek(']')) {
          if (!out.records.empty() && !expect(',')) return false;
          CorpusRecord rec;
          if (!parse_record(rec)) return false;
          out.records.push_back(std::move(rec));
        }
        if (!expect(']')) return false;
      } else {
        return fail("unknown corpus key: " + key);
      }
    }
    if (!expect('}')) return false;
    skip_ws();
    if (p != end) return fail("trailing bytes after corpus");
    return true;
  }
};

}  // namespace

void Corpus::upsert(CorpusRecord rec) {
  const auto it = std::lower_bound(
      records.begin(), records.end(), rec,
      [](const CorpusRecord& a, const CorpusRecord& b) { return a.name < b.name; });
  if (it != records.end() && it->name == rec.name) {
    *it = std::move(rec);
  } else {
    records.insert(it, std::move(rec));
  }
}

const CorpusRecord* Corpus::find(const std::string& name) const {
  for (const CorpusRecord& r : records) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

CorpusRecord to_record(const ScenarioResult& result) {
  CorpusRecord rec;
  rec.name = result.name;
  rec.spec_hash = result.spec_hash;
  rec.status = "ok";
  rec.forwarded = result.forwarded;
  rec.delivered = result.delivered;
  rec.dispatched = result.dispatched;
  rec.final_digest = result.final_digest;
  rec.suspicions = result.suspicions;
  rec.checkpoints = result.checkpoints;
  return rec;
}

std::string to_json(const Corpus& corpus) {
  std::vector<const CorpusRecord*> sorted;
  sorted.reserve(corpus.records.size());
  for (const CorpusRecord& r : corpus.records) sorted.push_back(&r);
  std::sort(sorted.begin(), sorted.end(),
            [](const CorpusRecord* a, const CorpusRecord* b) { return a->name < b->name; });

  std::string out;
  out += "{\n  \"version\": " + std::to_string(corpus.version) + ",\n  \"records\": [";
  bool first_rec = true;
  for (const CorpusRecord* rp : sorted) {
    const CorpusRecord& r = *rp;
    out += first_rec ? "\n" : ",\n";
    first_rec = false;
    out += "    {\n      \"name\": ";
    append_escaped(out, r.name);
    out += ",\n      \"spec_hash\": ";
    append_hex(out, r.spec_hash);
    out += ",\n      \"status\": ";
    append_escaped(out, r.status);
    out += ",\n      \"attempts\": " + std::to_string(r.attempts);
    out += ",\n      \"forwarded\": " + std::to_string(r.forwarded);
    out += ",\n      \"delivered\": " + std::to_string(r.delivered);
    out += ",\n      \"dispatched\": " + std::to_string(r.dispatched);
    out += ",\n      \"final_digest\": ";
    append_hex(out, r.final_digest);
    out += ",\n      \"suspicions\": [";
    bool first = true;
    for (const std::string& s : r.suspicions) {
      out += first ? "\n        " : ",\n        ";
      first = false;
      append_escaped(out, s);
    }
    out += first ? "]" : "\n      ]";
    out += ",\n      \"checkpoints\": [";
    first = true;
    for (const Checkpoint& cp : r.checkpoints) {
      out += first ? "\n        " : ",\n        ";
      first = false;
      out += "{\"t_ns\": " + std::to_string(cp.t_ns) + ", \"digest\": ";
      append_hex(out, cp.digest);
      out += "}";
    }
    out += first ? "]" : "\n      ]";
    out += "\n    }";
  }
  out += first_rec ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

bool from_json(const std::string& text, Corpus& out, std::string& error) {
  out = Corpus{};
  out.records.clear();
  Parser parser{text.data(), text.data() + text.size(), {}};
  if (!parser.parse_corpus(out)) {
    error = parser.error.empty() ? "malformed corpus" : parser.error;
    return false;
  }
  error.clear();
  return true;
}

}  // namespace fatih::scenario
