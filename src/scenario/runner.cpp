#include "scenario/runner.hpp"

#include <numeric>
#include <stdexcept>

#include "attacks/attacks.hpp"
#include "crypto/keys.hpp"
#include "detection/chi.hpp"
#include "detection/path_cache.hpp"
#include "detection/pi2.hpp"
#include "detection/pik2.hpp"
#include "routing/install.hpp"
#include "routing/spf.hpp"
#include "routing/topologies.hpp"
#include "sim/churn.hpp"
#include "sim/network.hpp"
#include "sim/shard.hpp"
#include "topo/generator.hpp"
#include "traffic/sources.hpp"
#include "traffic/tcp.hpp"
#include "util/hash.hpp"

namespace fatih::scenario {

namespace {

using util::Duration;
using util::SimTime;

/// Keys are per-run deterministic but independent of the traffic seed.
constexpr std::uint64_t kKeySeedSalt = 98765;

/// Drain window after the traffic horizon, matching the bench harnesses.
constexpr std::int64_t kDrainNs = 2'000'000'000;

topo::TopoParams topo_params(const TopoSpec& t) {
  topo::TopoParams p;
  p.routers = t.routers;
  p.links = t.links;
  p.pops = t.pops;
  p.max_degree = t.max_degree;
  p.seed = t.seed;
  p.intra_delay_ns = t.intra_delay_ns;
  p.inter_delay_ns = t.inter_delay_ns;
  return p;
}

std::unique_ptr<topo::GeneratedTopology> make_generated(const ScenarioSpec& s) {
  if (s.topology != TopologyKind::kGenerated) return nullptr;
  if (!topo::validate(topo_params(s.topo))) {
    throw std::invalid_argument("scenario '" + s.name + "': bad topo parameters");
  }
  return std::make_unique<topo::GeneratedTopology>(topo::generate(topo_params(s.topo)));
}

/// The subset of specs the sharded engine accepts. Everything rejected
/// here touches cross-PoP shared state outside the lane/barrier protocol
/// (churn mutates interfaces from the control plane, TCP acks schedule on
/// both endpoints, kModify draws payload tags from the global rng,
/// reliable transport re-arms per-destination timers from sink context).
void check_shardable(const ScenarioSpec& s) {
  if (s.shards == 0) return;
  auto reject = [&](const char* why) {
    throw std::invalid_argument("scenario '" + s.name + "' cannot shard: " + why);
  };
  if (s.topology != TopologyKind::kGenerated) reject("topology must be generated");
  if (!s.churn.empty()) reject("churn is not supported");
  if (s.detector.reliable) reject("reliable control transport is not supported");
  for (const FlowSpec& f : s.flows) {
    if (f.kind == FlowKind::kTcp) reject("tcp flows are not supported");
  }
  for (const AttackSpec& a : s.attacks) {
    if (a.kind == AttackKind::kModify) reject("modify attacks are not supported");
  }
  if (s.detector.kind != DetectorKind::kChi && s.detector.terminals.empty()) {
    reject("pi2/pik2 need an explicit terminal set");
  }
}

sim::ShardPlan shard_plan(const topo::GeneratedTopology* gen, std::uint32_t shards) {
  sim::ShardPlan plan;
  if (gen == nullptr || shards == 0) return plan;
  plan.pop_of = gen->pop_of;
  plan.pops = gen->pops();
  plan.lookahead = gen->min_inter_pop_delay();
  return plan;
}

}  // namespace

std::uint64_t StateDigest::hash() const {
  std::uint64_t h = util::kFnvOffsetBasis;
  h = util::fnv1a64_word(h, static_cast<std::uint64_t>(t_ns));
  h = util::fnv1a64_word(h, dispatched);
  h = util::fnv1a64_word(h, forwarded);
  h = util::fnv1a64_word(h, delivered);
  h = util::fnv1a64_word(h, rng_hash);
  h = util::fnv1a64_word(h, pending_hash);
  h = util::fnv1a64_word(h, detector_hash);
  h = util::fnv1a64_word(h, suspicion_hash);
  h = util::fnv1a64_word(h, suspicion_count);
  return h;
}

struct ScenarioRun::Impl {
  ScenarioSpec spec;
  // Declaration order is construction order: the generated topology (and
  // the shard plan derived from it) must exist before the Network.
  std::unique_ptr<topo::GeneratedTopology> gen;
  sim::Network net;
  crypto::KeyRegistry keys;
  std::shared_ptr<routing::RoutingTables> tables{};
  std::unique_ptr<detection::PathCache> paths{};

  std::vector<std::unique_ptr<traffic::CbrSource>> cbr{};
  std::vector<std::unique_ptr<traffic::OnOffSource>> onoff{};
  std::vector<std::unique_ptr<traffic::TcpFlow>> tcp{};
  std::vector<std::shared_ptr<attacks::FilterChain>> chains{};
  sim::ChurnSchedule churn{};

  std::unique_ptr<detection::Pi2Engine> pi2{};
  std::unique_ptr<detection::Pik2Engine> pik2{};
  std::unique_ptr<detection::QueueValidator> chi{};

  /// Per-node forwarded/delivered counters: each slot is written only by
  /// the node's own simulator (one PoP = one worker under the sharded
  /// engine), so the taps stay race-free without atomics, and the summed
  /// totals are identical to the old shared counters.
  std::vector<std::uint64_t> forwarded_by_node{};
  std::vector<std::uint64_t> delivered_by_node{};

  std::unique_ptr<sim::ShardEngine> engine{};

  std::vector<std::int64_t> checkpoint_times{};
  std::size_t next_checkpoint = 0;
  std::vector<Checkpoint> checkpoints{};

  explicit Impl(const ScenarioSpec& s, unsigned threads)
      : spec((check_shardable(s), s)),
        gen(make_generated(s)),
        net(s.seed, shard_plan(gen.get(), s.shards)),
        keys(s.seed + kKeySeedSalt) {
    build_topology();
    install_counters();
    build_traffic();
    build_attacks();
    build_churn();
    build_detector();
    warm_path_cache();
    plan_checkpoints();
    if (spec.shards > 0) {
      engine = std::make_unique<sim::ShardEngine>(net, threads > 0 ? threads : spec.shards);
    }
  }

  [[nodiscard]] std::uint64_t forwarded() const {
    return std::accumulate(forwarded_by_node.begin(), forwarded_by_node.end(),
                           std::uint64_t{0});
  }
  [[nodiscard]] std::uint64_t delivered() const {
    return std::accumulate(delivered_by_node.begin(), delivered_by_node.end(),
                           std::uint64_t{0});
  }

  [[nodiscard]] std::int64_t end_ns() const { return spec.duration_ns + kDrainNs; }

  void build_topology() {
    switch (spec.topology) {
      case TopologyKind::kLine4: {
        for (int i = 0; i < 4; ++i) net.add_router("r" + std::to_string(i));
        sim::LinkConfig cfg;
        cfg.bandwidth_bps = 1e8;
        cfg.delay = Duration::millis(1);
        cfg.queue_limit_bytes = 64000;
        for (util::NodeId i = 0; i + 1 < 4; ++i) {
          net.connect(i, static_cast<util::NodeId>(i + 1), cfg);
        }
        finish_routes(Duration::micros(20), Duration::micros(10));
        break;
      }
      case TopologyKind::kAbilene: {
        for (util::NodeId n = 0; n <= routing::kNewYork; ++n) {
          net.add_router(routing::abilene_name(n));
        }
        for (const auto& l : routing::abilene_links()) {
          sim::LinkConfig link;
          link.delay = Duration::millis(l.delay_ms);
          link.metric = l.delay_ms;
          link.bandwidth_bps = 1e9;
          link.queue_limit_bytes = 256000;
          net.connect(l.a, l.b, link);
        }
        finish_routes(Duration::micros(20), Duration::micros(10));
        break;
      }
      case TopologyKind::kChiBottleneck: {
        // Fig. 6.4: s1,s2 feed r; the r -> rd queue is the bottleneck.
        net.add_router("s1");
        net.add_router("s2");
        net.add_router("r");
        net.add_router("rd");
        sim::LinkConfig edge;
        edge.bandwidth_bps = 1e8;
        edge.delay = Duration::millis(1);
        sim::LinkConfig core;
        core.bandwidth_bps = 1e7;
        core.delay = Duration::millis(2);
        core.queue_limit_bytes = 50000;
        if (spec.detector.red) {
          core.queue = sim::QueueKind::kRed;
          core.red.weight = 0.002;
          core.red.min_threshold = 15000;
          core.red.max_threshold = 45000;
          core.red.max_probability = 0.1;
          core.red.gentle = true;
          core.red.byte_limit = 90000;
          core.red.mean_packet_size = 1000;
          core.red.drain_rate = 1e7 / 8;
        }
        net.connect(0, 2, edge);
        net.connect(1, 2, edge);
        net.connect(2, 3, core);
        finish_routes(Duration::micros(20), Duration::micros(50));
        break;
      }
      case TopologyKind::kGenerated: {
        const topo::GeneratedTopology& g = *gen;
        for (std::uint32_t n = 0; n < g.routers(); ++n) {
          net.add_router("g" + std::to_string(n));
        }
        for (const topo::GenLink& l : g.links) {
          sim::LinkConfig cfg;
          cfg.bandwidth_bps = g.params.bandwidth_bps;
          cfg.queue_limit_bytes = g.params.queue_limit_bytes;
          cfg.delay = Duration::nanos(l.inter ? g.params.inter_delay_ns
                                              : g.params.intra_delay_ns);
          // Backbone links cost more so shortest paths hug the PoP
          // structure (climb to the local core, cross, descend).
          cfg.metric = l.inter ? 10 : 1;
          net.connect(l.a, l.b, cfg);
        }
        finish_routes(Duration::micros(20), Duration::micros(10));
        break;
      }
    }
  }

  void finish_routes(Duration proc_base, Duration proc_jitter) {
    tables = std::make_shared<routing::RoutingTables>(routing::Topology::from_network(net));
    routing::install_static_routes(net, *tables);
    paths = std::make_unique<detection::PathCache>(tables);
    for (util::NodeId n = 0; n < net.node_count(); ++n) {
      net.router(n).set_processing_delay(proc_base, proc_jitter);
    }
  }

  void install_counters() {
    forwarded_by_node.assign(net.node_count(), 0);
    delivered_by_node.assign(net.node_count(), 0);
    for (util::NodeId n = 0; n < net.node_count(); ++n) {
      std::uint64_t& fwd = forwarded_by_node[n];
      net.router(n).add_forward_tap(
          [&fwd](const sim::Packet&, util::NodeId, std::size_t, SimTime) { ++fwd; });
      std::uint64_t& del = delivered_by_node[n];
      net.node(n).add_local_handler(
          [&del](const sim::Packet&, util::NodeId, SimTime) { ++del; });
    }
  }

  void build_traffic() {
    for (const FlowSpec& f : spec.flows) {
      const auto start = SimTime::from_nanos(f.start_ns);
      const auto stop =
          f.stop_ns > 0 ? SimTime::from_nanos(f.stop_ns) : SimTime::infinity();
      switch (f.kind) {
        case FlowKind::kCbr: {
          traffic::CbrSource::Config c;
          c.src = f.src;
          c.dst = f.dst;
          c.flow_id = f.flow_id;
          c.payload_bytes = f.payload_bytes;
          c.rate_pps = static_cast<double>(f.rate_mpps) / 1000.0;
          c.start = start;
          c.stop = stop;
          cbr.push_back(std::make_unique<traffic::CbrSource>(net, c));
          break;
        }
        case FlowKind::kOnOff: {
          traffic::OnOffSource::Config c;
          c.src = f.src;
          c.dst = f.dst;
          c.flow_id = f.flow_id;
          c.payload_bytes = f.payload_bytes;
          c.on_rate_pps = static_cast<double>(f.rate_mpps) / 1000.0;
          c.mean_on = Duration::nanos(f.mean_on_ns);
          c.mean_off = Duration::nanos(f.mean_off_ns);
          c.start = start;
          c.stop = stop;
          onoff.push_back(std::make_unique<traffic::OnOffSource>(net, c));
          break;
        }
        case FlowKind::kTcp: {
          traffic::TcpConfig c;
          c.mss_bytes = f.payload_bytes;
          tcp.push_back(
              std::make_unique<traffic::TcpFlow>(net, f.src, f.dst, f.flow_id, c));
          tcp.back()->start(start);
          break;
        }
      }
    }
  }

  void build_attacks() {
    // One FilterChain per compromised router, attacks composing in spec
    // order (the order a hand-written bench would install them).
    for (const AttackSpec& a : spec.attacks) {
      attacks::FlowMatch match;
      match.flow_ids = a.flow_ids;
      const double fraction = static_cast<double>(a.fraction_ppm) / 1e6;
      const auto from = SimTime::from_nanos(a.active_from_ns);
      std::shared_ptr<sim::ForwardFilter> filter;
      switch (a.kind) {
        case AttackKind::kRateDrop:
          filter = std::make_shared<attacks::RateDropAttack>(match, fraction, from, a.seed);
          break;
        case AttackKind::kQueueGateDrop:
          filter = std::make_shared<attacks::QueueThresholdDropAttack>(
              match, static_cast<double>(a.threshold_ppm) / 1e6, fraction, from, a.seed);
          break;
        case AttackKind::kRedGateDrop:
          filter = std::make_shared<attacks::RedAvgThresholdDropAttack>(
              match, static_cast<double>(a.threshold_bytes), fraction, from, a.seed);
          break;
        case AttackKind::kModify:
          filter =
              std::make_shared<attacks::ModificationAttack>(match, fraction, from, a.seed);
          break;
        case AttackKind::kReorder:
          filter = std::make_shared<attacks::ReorderAttack>(
              match, fraction, Duration::nanos(a.delay_ns), from, a.seed);
          break;
      }
      auto existing = net.router(a.at).forward_filter();
      auto chain = std::dynamic_pointer_cast<attacks::FilterChain>(existing);
      if (chain == nullptr) {
        chain = std::make_shared<attacks::FilterChain>();
        chains.push_back(chain);
        net.router(a.at).set_forward_filter(chain);
      }
      chain->append(std::move(filter));
    }
  }

  void build_churn() {
    for (const ChurnSpec& c : spec.churn) {
      const auto at = SimTime::from_nanos(c.at_ns);
      switch (c.kind) {
        case ChurnSpec::Kind::kLinkDown:
          churn.link_down(c.a, c.b, at);
          break;
        case ChurnSpec::Kind::kLinkUp:
          churn.link_up(c.a, c.b, at);
          break;
        case ChurnSpec::Kind::kRouterCrash:
          churn.router_crash(c.a, at);
          break;
        case ChurnSpec::Kind::kRouterRestart:
          churn.router_restart(c.a, at);
          break;
      }
    }
    if (!spec.churn.empty()) churn.arm(net);
  }

  [[nodiscard]] std::vector<util::NodeId> terminals() const {
    if (!spec.detector.terminals.empty()) return spec.detector.terminals;
    std::vector<util::NodeId> all;
    for (util::NodeId n = 0; n < net.node_count(); ++n) all.push_back(n);
    return all;
  }

  void build_detector() {
    const detection::RoundClock clock{SimTime::from_nanos(spec.detector.epoch_ns),
                                      Duration::nanos(spec.detector.tau_ns)};
    switch (spec.detector.kind) {
      case DetectorKind::kPi2: {
        detection::Pi2Config cfg;
        cfg.clock = clock;
        cfg.k = spec.detector.k;
        cfg.rounds = spec.detector.rounds;
        cfg.reliable.enabled = spec.detector.reliable;
        pi2 = std::make_unique<detection::Pi2Engine>(net, keys, *paths, terminals(), cfg);
        pi2->start();
        break;
      }
      case DetectorKind::kPik2: {
        detection::Pik2Config cfg;
        cfg.clock = clock;
        cfg.k = spec.detector.k;
        cfg.rounds = spec.detector.rounds;
        cfg.reliable.enabled = spec.detector.reliable;
        pik2 = std::make_unique<detection::Pik2Engine>(net, keys, *paths, terminals(), cfg);
        pik2->start();
        break;
      }
      case DetectorKind::kChi: {
        detection::ChiConfig cfg;
        cfg.clock = clock;
        cfg.learning_rounds = spec.detector.learning_rounds;
        cfg.rounds = spec.detector.rounds;
        cfg.reliable.enabled = spec.detector.reliable;
        // The monitored queue is between the last two routers (r -> rd on
        // the Fig. 6.4 fabric, the line's tail link elsewhere) — except on
        // generated graphs, which designate a bottleneck pair confined to
        // PoP 0 so every chi tap fires on one shard.
        const auto owner = gen != nullptr
                               ? gen->chi_owner
                               : static_cast<util::NodeId>(net.node_count() - 2);
        const auto peer = gen != nullptr
                              ? gen->chi_peer
                              : static_cast<util::NodeId>(net.node_count() - 1);
        chi = std::make_unique<detection::QueueValidator>(net, keys, *paths, owner, peer, cfg);
        chi->start();
        break;
      }
    }
  }

  void warm_path_cache() {
    if (!net.sharded()) return;
    // The PathCache memoizes lazily through a shared map. Under the
    // sharded engine the per-packet summary taps query it from every PoP
    // worker, so resolve every pair they can ask for — data-flow pairs,
    // the monitored terminal matrix, and the chi bottleneck endpoints —
    // while construction is still single-threaded.
    auto warm = [this](util::NodeId a, util::NodeId b) {
      if (a == b) return;
      (void)paths->path(a, b);
      (void)paths->path(b, a);
    };
    for (const FlowSpec& f : spec.flows) warm(f.src, f.dst);
    if (spec.detector.kind != DetectorKind::kChi) {
      const std::vector<util::NodeId> ts = terminals();
      for (util::NodeId a : ts) {
        for (util::NodeId b : ts) {
          if (a != b) (void)paths->path(a, b);
        }
      }
    }
    if (gen != nullptr) {
      warm(gen->chi_owner, gen->chi_peer);
      warm(gen->chi_feed, gen->chi_peer);
    }
  }

  void plan_checkpoints() {
    // One checkpoint per detection-round boundary: epoch + k*tau. These
    // are the bisection grid — restore targets and drift windows both
    // land on them.
    const std::int64_t tau = spec.detector.tau_ns;
    if (tau <= 0) return;
    for (std::int64_t t = spec.detector.epoch_ns + tau; t <= end_ns(); t += tau) {
      checkpoint_times.push_back(t);
    }
  }

  [[nodiscard]] std::uint64_t detector_fingerprint() const {
    if (pi2 != nullptr) return pi2->state_fingerprint();
    if (pik2 != nullptr) return pik2->state_fingerprint();
    if (chi != nullptr) return chi->state_fingerprint();
    return 0;
  }

  [[nodiscard]] const std::vector<detection::Suspicion>& suspicions() const {
    static const std::vector<detection::Suspicion> kNone;
    if (pi2 != nullptr) return pi2->suspicions();
    if (pik2 != nullptr) return pik2->suspicions();
    if (chi != nullptr) return chi->suspicions();
    return kNone;
  }

  [[nodiscard]] StateDigest make_digest() {
    StateDigest d;
    d.t_ns = net.sim().now().nanos();
    // Sharded runs fold over the control + per-PoP simulators and the
    // per-node rng streams; each ingredient is worker-count-invariant, so
    // the digest depends on the spec (incl. shard count) alone. Classic
    // runs keep their original single-simulator digest byte-for-byte.
    d.dispatched =
        engine != nullptr ? engine->total_dispatched() : net.sim().events_dispatched();
    d.forwarded = forwarded();
    d.delivered = delivered();
    d.rng_hash = net.sharded() ? net.rng_fingerprint() : net.rng().state_hash();
    d.pending_hash =
        engine != nullptr ? engine->pending_fingerprint() : net.sim().pending_fingerprint();
    d.detector_hash = detector_fingerprint();
    std::uint64_t sh = util::kFnvOffsetBasis;
    for (const auto& s : suspicions()) {
      const std::string text = s.to_string();
      sh = util::fnv1a64(text.data(), text.size(), sh);
    }
    d.suspicion_hash = sh;
    d.suspicion_count = suspicions().size();
    return d;
  }

  void advance(std::int64_t t_ns) {
    if (engine != nullptr) {
      engine->run_until(SimTime::from_nanos(t_ns));
    } else {
      net.sim().run_until(SimTime::from_nanos(t_ns));
    }
  }

  void run_to(std::int64_t t_ns) {
    if (t_ns > end_ns()) t_ns = end_ns();
    while (next_checkpoint < checkpoint_times.size() &&
           checkpoint_times[next_checkpoint] <= t_ns) {
      const std::int64_t at = checkpoint_times[next_checkpoint];
      advance(at);
      checkpoints.push_back(Checkpoint{at, make_digest().hash()});
      ++next_checkpoint;
    }
    advance(t_ns);
  }
};

ScenarioRun::ScenarioRun(const ScenarioSpec& spec)
    : impl_(std::make_unique<Impl>(spec, 0)) {}

ScenarioRun::ScenarioRun(const ScenarioSpec& spec, unsigned threads)
    : impl_(std::make_unique<Impl>(spec, threads)) {}

ScenarioRun::~ScenarioRun() = default;

void ScenarioRun::run_to(std::int64_t t_ns) { impl_->run_to(t_ns); }

std::int64_t ScenarioRun::end_time_ns() const { return impl_->end_ns(); }

StateDigest ScenarioRun::digest() const { return impl_->make_digest(); }

std::vector<std::string> ScenarioRun::suspicion_strings() const {
  std::vector<std::string> out;
  for (const auto& s : impl_->suspicions()) out.push_back(s.to_string());
  return out;
}

const std::vector<Checkpoint>& ScenarioRun::checkpoints() const { return impl_->checkpoints; }

const ScenarioSpec& ScenarioRun::spec() const { return impl_->spec; }

ScenarioResult ScenarioRun::finish() {
  impl_->run_to(impl_->end_ns());
  ScenarioResult r;
  r.name = impl_->spec.name;
  r.spec_hash = spec_hash(impl_->spec);
  r.forwarded = impl_->forwarded();
  r.delivered = impl_->delivered();
  r.dispatched = impl_->engine != nullptr ? impl_->engine->total_dispatched()
                                          : impl_->net.sim().events_dispatched();
  r.final_digest = impl_->make_digest().hash();
  r.suspicions = suspicion_strings();
  r.checkpoints = impl_->checkpoints;
  return r;
}

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  ScenarioRun run(spec);
  return run.finish();
}

ScenarioResult run_scenario(const ScenarioSpec& spec, unsigned threads) {
  ScenarioRun run(spec, threads);
  return run.finish();
}

}  // namespace fatih::scenario
