// The builtin scenario corpus.
//
// Re-expresses the scenarios the bench binaries hard-code — the line
// networks of the detection tests, the Abilene no-attack macro
// (bench/perf_scenarios.hpp), and the Fig. 6.4 chi bottleneck with its
// drop-tail / RED attack variants (bench/chi_fixture.hpp, the fig6_*
// setups) — as declarative ScenarioSpecs. These are the seeds of the
// golden regression corpus (BENCH_fleet_corpus.json): every spec here is
// run by tools/fatih-fleet and its suspicion set and counters are pinned.
#pragma once

#include <string_view>
#include <vector>

#include "scenario/spec.hpp"

namespace fatih::scenario {

/// All builtin scenarios, sorted by name.
[[nodiscard]] const std::vector<ScenarioSpec>& builtin_scenarios();

/// Looks up a builtin by name; nullptr when unknown.
[[nodiscard]] const ScenarioSpec* find_scenario(std::string_view name);

}  // namespace fatih::scenario
