// Golden-corpus drift detection and first-divergence bisection.
//
// compare_corpus() checks a freshly generated corpus against the
// committed golden one: for every record the golden file pins, the fresh
// run must exist, have succeeded, and agree on spec hash, counters,
// digest and suspicion set. Fresh-only records (new scenarios, injected
// fleet-failure probes) are ignored — the golden file is the contract.
//
// When a record drifts, first_divergent_window() binary-searches the
// per-round checkpoint digests: agreement at a round boundary is
// monotone (a deterministic run that matches at T matches at every
// t <= T), so the first mismatching checkpoint brackets the first
// divergent event window without replaying anything.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/corpus.hpp"

namespace fatih::scenario {

/// The round window [from_ns, to_ns) in which two runs of one scenario
/// first disagree, per their checkpoint digest trails.
struct DivergenceWindow {
  std::int64_t from_ns = 0;  ///< last agreeing checkpoint (0 = construction)
  std::int64_t to_ns = 0;    ///< first disagreeing checkpoint
  bool found = false;        ///< false: trails agree entirely (tail drift)
};

/// One drifted record and why.
struct Divergence {
  std::string name{};
  std::string reason{};  ///< human-readable field-level mismatch
  DivergenceWindow window{};
};

struct DriftReport {
  std::vector<Divergence> divergences{};
  std::size_t compared = 0;  ///< golden records checked

  [[nodiscard]] bool clean() const { return divergences.empty(); }
};

/// Compares `fresh` against `golden` (see file header for the policy).
[[nodiscard]] DriftReport compare_corpus(const Corpus& golden, const Corpus& fresh);

/// Binary search over two checkpoint trails for the first disagreement.
[[nodiscard]] DivergenceWindow first_divergent_window(const std::vector<Checkpoint>& golden,
                                                      const std::vector<Checkpoint>& fresh);

/// Renders a report for logs: one line per divergence.
[[nodiscard]] std::string describe(const DriftReport& report);

}  // namespace fatih::scenario
