#include "scenario/registry.hpp"

#include <algorithm>

#include "routing/topologies.hpp"
#include "topo/generator.hpp"

namespace fatih::scenario {

namespace {

constexpr std::int64_t kSecond = 1'000'000'000;
constexpr std::int64_t kMilli = 1'000'000;

FlowSpec cbr(util::NodeId src, util::NodeId dst, std::uint32_t flow, std::int64_t rate_pps,
             std::int64_t start_ns, std::int64_t stop_ns) {
  FlowSpec f;
  f.kind = FlowKind::kCbr;
  f.src = src;
  f.dst = dst;
  f.flow_id = flow;
  f.rate_mpps = rate_pps * 1000;
  f.start_ns = start_ns;
  f.stop_ns = stop_ns;
  return f;
}

FlowSpec tcp(util::NodeId src, util::NodeId dst, std::uint32_t flow, std::int64_t start_ns) {
  FlowSpec f;
  f.kind = FlowKind::kTcp;
  f.src = src;
  f.dst = dst;
  f.flow_id = flow;
  f.start_ns = start_ns;
  return f;
}

FlowSpec onoff(util::NodeId src, util::NodeId dst, std::uint32_t flow, std::int64_t rate_pps,
               std::int64_t start_ns, std::int64_t stop_ns) {
  FlowSpec f;
  f.kind = FlowKind::kOnOff;
  f.src = src;
  f.dst = dst;
  f.flow_id = flow;
  f.rate_mpps = rate_pps * 1000;
  f.start_ns = start_ns;
  f.stop_ns = stop_ns;
  f.mean_on_ns = 200 * kMilli;
  f.mean_off_ns = 200 * kMilli;
  return f;
}

/// r0-r1-r2-r3 line base: 4 s of traffic, Pi(k+2) or Pi2 end-to-end rounds.
ScenarioSpec line4(const char* name, DetectorKind detector, std::uint64_t seed) {
  ScenarioSpec s;
  s.name = name;
  s.topology = TopologyKind::kLine4;
  s.seed = seed;
  s.duration_ns = 4 * kSecond;
  s.detector.kind = detector;
  s.detector.tau_ns = kSecond;
  s.detector.rounds = 4;
  s.detector.terminals = {0, 3};
  s.flows.push_back(cbr(0, 3, 1, 200, 50 * kMilli, 4 * kSecond));
  s.flows.push_back(cbr(3, 0, 2, 150, 80 * kMilli, 4 * kSecond));
  return s;
}

AttackSpec drop_at(util::NodeId at, std::uint32_t flow, std::int64_t fraction_ppm,
                   std::int64_t from_ns) {
  AttackSpec a;
  a.kind = AttackKind::kRateDrop;
  a.at = at;
  a.flow_ids = {flow};
  a.fraction_ppm = fraction_ppm;
  a.active_from_ns = from_ns;
  a.seed = 404;
  return a;
}

/// Fig. 6.4 bottleneck base: the ChiExperiment standard traffic mix.
ScenarioSpec chi_base(const char* name, bool red, std::uint64_t seed) {
  constexpr util::NodeId kS1 = 0, kS2 = 1, kRd = 3;
  ScenarioSpec s;
  s.name = name;
  s.topology = TopologyKind::kChiBottleneck;
  s.seed = seed;
  s.duration_ns = 8 * kSecond;
  s.detector.kind = DetectorKind::kChi;
  s.detector.tau_ns = kSecond;
  s.detector.rounds = 8;
  s.detector.learning_rounds = 3;
  s.detector.red = red;
  s.flows.push_back(cbr(kS1, kRd, 1, 300, 50 * kMilli, 7'500 * kMilli));
  s.flows.push_back(tcp(kS1, kRd, 10, 200 * kMilli));
  s.flows.push_back(tcp(kS2, kRd, 11, 400 * kMilli));
  s.flows.push_back(onoff(kS2, kRd, 2, 1100, 50 * kMilli, 7'500 * kMilli));
  return s;
}

// ------------------------------------------------- generated topologies

TopoSpec ebone_topo() {
  TopoSpec t;
  const topo::TopoParams p = topo::ebone();
  t.routers = p.routers;
  t.links = p.links;
  t.pops = p.pops;
  t.max_degree = p.max_degree;
  t.seed = p.seed;
  t.intra_delay_ns = p.intra_delay_ns;
  t.inter_delay_ns = p.inter_delay_ns;
  return t;
}

TopoSpec sprintlink_topo() {
  TopoSpec t;
  const topo::TopoParams p = topo::sprintlink();
  t.routers = p.routers;
  t.links = p.links;
  t.pops = p.pops;
  t.max_degree = p.max_degree;
  t.seed = p.seed;
  t.intra_delay_ns = p.intra_delay_ns;
  t.inter_delay_ns = p.inter_delay_ns;
  return t;
}

topo::TopoParams params_of(const TopoSpec& t) {
  topo::TopoParams p;
  p.routers = t.routers;
  p.links = t.links;
  p.pops = t.pops;
  p.max_degree = t.max_degree;
  p.seed = t.seed;
  p.intra_delay_ns = t.intra_delay_ns;
  p.inter_delay_ns = t.inter_delay_ns;
  return p;
}

/// Generated-topology base: sharded engine (4 shards by default), Pi2 or
/// Pi(k+2) between PoP hub routers. The hub ids come from running the
/// (deterministic) generator, so the spec stays plain data.
ScenarioSpec gen_base(const char* name, const TopoSpec& t, DetectorKind detector,
                      const topo::GeneratedTopology& g, std::uint64_t seed,
                      std::int64_t duration_ns) {
  ScenarioSpec s;
  s.name = name;
  s.topology = TopologyKind::kGenerated;
  s.topo = t;
  s.shards = 4;
  s.seed = seed;
  s.duration_ns = duration_ns;
  s.detector.kind = detector;
  s.detector.tau_ns = kSecond;
  s.detector.rounds = duration_ns / kSecond;
  // Flow 1 sources at the PoP-0 feeder, whose only route out is the
  // structurally forced feeder -> chi_owner -> hub chain — so the drop
  // scenarios can compromise chi_owner and be certain it forwards (not
  // originates) the victim flow.
  s.detector.terminals = {g.chi_feed, g.pop_hub[2], g.pop_hub[4], g.pop_hub[6]};
  s.flows.push_back(cbr(g.chi_feed, g.pop_hub[4], 1, 200, 50 * kMilli, duration_ns));
  s.flows.push_back(cbr(g.pop_hub[4], g.chi_feed, 2, 150, 80 * kMilli, duration_ns));
  s.flows.push_back(cbr(g.pop_hub[2], g.pop_hub[6], 3, 120, 110 * kMilli, duration_ns));
  return s;
}

void add_generated(std::vector<ScenarioSpec>& all) {
  const TopoSpec ebone = ebone_topo();
  const TopoSpec sprint = sprintlink_topo();
  const topo::GeneratedTopology ge = topo::generate(params_of(ebone));
  const topo::GeneratedTopology gs = topo::generate(params_of(sprint));

  all.push_back(gen_base("gen_ebone_pik2_clean", ebone, DetectorKind::kPik2, ge, 31,
                         3 * kSecond));

  {
    ScenarioSpec s = gen_base("gen_ebone_pi2_drop", ebone, DetectorKind::kPi2, ge, 32,
                              3 * kSecond);
    // chi_owner is flow 1's forced second hop: the drop is on-path and
    // downstream of the sender's accounting regardless of the route the
    // backbone takes beyond the hub.
    s.attacks.push_back(drop_at(ge.chi_owner, 1, 400'000, 1'200 * kMilli));
    all.push_back(s);
  }

  all.push_back(gen_base("gen_sprintlink_pik2_clean", sprint, DetectorKind::kPik2, gs, 33,
                         2 * kSecond));

  {
    ScenarioSpec s = gen_base("gen_sprintlink_pik2_drop", sprint, DetectorKind::kPik2, gs,
                              34, 2 * kSecond);
    s.attacks.push_back(drop_at(gs.chi_owner, 1, 400'000, 900 * kMilli));
    all.push_back(s);
  }

  {
    // Protocol chi on the designated PoP-0 bottleneck of the generated
    // Sprintlink graph: traffic funnels feeder -> owner -> hub, and the
    // owner starts dropping after calibration (chi_droptail_drop20 at
    // Rocketfuel scale).
    ScenarioSpec s;
    s.name = "gen_sprintlink_chi_drop";
    s.topology = TopologyKind::kGenerated;
    s.topo = sprint;
    s.shards = 4;
    s.seed = 35;
    s.duration_ns = 5 * kSecond;
    s.detector.kind = DetectorKind::kChi;
    s.detector.tau_ns = kSecond;
    s.detector.rounds = 5;
    s.detector.learning_rounds = 2;
    s.flows.push_back(cbr(gs.chi_feed, gs.chi_peer, 1, 300, 50 * kMilli, 4'500 * kMilli));
    s.flows.push_back(onoff(gs.chi_feed, gs.chi_peer, 2, 900, 50 * kMilli, 4'500 * kMilli));
    s.attacks.push_back(drop_at(gs.chi_owner, 1, 200'000, 3'500 * kMilli));
    all.push_back(s);
  }

  {
    // Synthetic beyond-Rocketfuel scale: ~600 routers across 24 PoPs.
    TopoSpec wide;
    wide.routers = 600;
    wide.links = 1500;
    wide.pops = 24;
    wide.max_degree = 32;
    wide.seed = 2099;
    const topo::GeneratedTopology gw = topo::generate(params_of(wide));
    ScenarioSpec s = gen_base("gen_wide_pik2_clean", wide, DetectorKind::kPik2, gw, 36,
                              2 * kSecond);
    s.shards = 8;
    all.push_back(s);
  }
}

std::vector<ScenarioSpec> build_all() {
  std::vector<ScenarioSpec> all;

  add_generated(all);

  all.push_back(line4("line4_pik2_clean", DetectorKind::kPik2, 11));

  {
    ScenarioSpec s = line4("line4_pik2_drop", DetectorKind::kPik2, 12);
    s.attacks.push_back(drop_at(2, 1, 500'000, 1'500 * kMilli));
    all.push_back(s);
  }

  all.push_back(line4("line4_pi2_clean", DetectorKind::kPi2, 13));

  {
    ScenarioSpec s = line4("line4_pi2_drop", DetectorKind::kPi2, 14);
    s.attacks.push_back(drop_at(1, 1, 500'000, 1'500 * kMilli));
    all.push_back(s);
  }

  {
    ScenarioSpec s = line4("line4_pik2_modify", DetectorKind::kPik2, 15);
    AttackSpec a;
    a.kind = AttackKind::kModify;
    a.at = 2;
    a.flow_ids = {1};
    a.fraction_ppm = 300'000;
    a.active_from_ns = 1'500 * kMilli;
    a.seed = 405;
    s.attacks.push_back(a);
    all.push_back(s);
  }

  {
    ScenarioSpec s = line4("line4_pik2_reorder", DetectorKind::kPik2, 16);
    AttackSpec a;
    a.kind = AttackKind::kReorder;
    a.at = 1;
    a.flow_ids = {1};
    a.fraction_ppm = 200'000;
    a.delay_ns = 60 * kMilli;
    a.active_from_ns = 1'500 * kMilli;
    a.seed = 406;
    s.attacks.push_back(a);
    all.push_back(s);
  }

  {
    // Blackhole window: the r1-r2 link drops for a second mid-run. Static
    // routes (no reconvergence), so the detector sees — and must keep
    // seeing, deterministically — the exchange failures it induces.
    ScenarioSpec s = line4("line4_pik2_churn", DetectorKind::kPik2, 17);
    ChurnSpec down;
    down.kind = ChurnSpec::Kind::kLinkDown;
    down.at_ns = 1'700 * kMilli;
    down.a = 1;
    down.b = 2;
    s.churn.push_back(down);
    ChurnSpec up;
    up.kind = ChurnSpec::Kind::kLinkUp;
    up.at_ns = 2'600 * kMilli;
    up.a = 1;
    up.b = 2;
    s.churn.push_back(up);
    all.push_back(s);
  }

  {
    ScenarioSpec s = line4("line4_pik2_reliable", DetectorKind::kPik2, 18);
    s.detector.reliable = true;
    all.push_back(s);
  }

  {
    // The Abilene forwarding substrate (bench/perf_scenarios.hpp) with a
    // Pi(k+2) overlay on two coast-to-coast pairs.
    ScenarioSpec s;
    s.name = "abilene_pik2_clean";
    s.topology = TopologyKind::kAbilene;
    s.seed = 21;
    s.duration_ns = 3 * kSecond;
    s.detector.kind = DetectorKind::kPik2;
    s.detector.tau_ns = kSecond;
    s.detector.rounds = 3;
    s.detector.terminals = {routing::kSeattle, routing::kNewYork, routing::kLosAngeles,
                            routing::kAtlanta};
    s.flows.push_back(cbr(routing::kSeattle, routing::kNewYork, 1, 400, 10 * kMilli,
                          3 * kSecond));
    s.flows.push_back(cbr(routing::kNewYork, routing::kSeattle, 2, 400, 10 * kMilli,
                          3 * kSecond));
    s.flows.push_back(cbr(routing::kLosAngeles, routing::kAtlanta, 3, 250, 20 * kMilli,
                          3 * kSecond));
    all.push_back(s);
    ScenarioSpec d = s;
    d.name = "abilene_pik2_drop";
    d.seed = 22;
    d.attacks.push_back(drop_at(routing::kKansasCity, 1, 400'000, 1'200 * kMilli));
    all.push_back(d);
  }

  all.push_back(chi_base("chi_droptail_clean", false, 607));

  {
    // Fig. 6.6: drop 20% of the victim flow after calibration.
    ScenarioSpec s = chi_base("chi_droptail_drop20", false, 608);
    s.attacks.push_back(drop_at(2, 1, 200'000, 4 * kSecond));
    all.push_back(s);
  }

  all.push_back(chi_base("chi_red_clean", true, 609));

  {
    // Figs. 6.12-6.15: drops gated on the RED average so they masquerade
    // as early drops.
    ScenarioSpec s = chi_base("chi_red_gate", true, 610);
    AttackSpec a;
    a.kind = AttackKind::kRedGateDrop;
    a.at = 2;
    a.flow_ids = {1};
    a.fraction_ppm = 500'000;
    a.threshold_bytes = 20'000;
    a.active_from_ns = 4 * kSecond;
    a.seed = 407;
    s.attacks.push_back(a);
    all.push_back(s);
  }

  std::sort(all.begin(), all.end(),
            [](const ScenarioSpec& a, const ScenarioSpec& b) { return a.name < b.name; });
  return all;
}

}  // namespace

const std::vector<ScenarioSpec>& builtin_scenarios() {
  static const std::vector<ScenarioSpec> all = build_all();
  return all;
}

const ScenarioSpec* find_scenario(std::string_view name) {
  for (const ScenarioSpec& s : builtin_scenarios()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace fatih::scenario
