// Fatih: the prototype system (dissertation §5.3, Fig. 5.5).
//
// Wires the pieces the real prototype wired on a Linux/Zebra router:
//   * Coordinator: decides the monitored path-segments from the (stable)
//     topology with k = 1 by default, schedules validation rounds;
//   * Traffic Validators + Summary Generator: the Pi(k+2) engine;
//   * Routing integration: suspicions are flooded as signed alerts through
//     the link-state daemon, which recomputes routes around the suspected
//     path-segment after its SPF delay/hold timers (the dynamics of
//     Fig. 5.7);
//   * Time synchronization is inherited from the simulator's global clock
//     (the prototype used NTP, §5.3.1).
#pragma once

#include <memory>
#include <vector>

#include "detection/pik2.hpp"
#include "routing/link_state.hpp"

namespace fatih::system {

struct FatihConfig {
  /// tau = 5 s rounds, k = 1 by default. Setting detection.reliable.enabled
  /// runs the summary exchange over the ack/retransmit control transport
  /// (lossy control links tolerated; undeliverable summaries degrade to
  /// "exchange-undeliverable" suspicions instead of stalling rounds).
  detection::Pik2Config detection;
};

class FatihSystem {
 public:
  FatihSystem(sim::Network& net, const crypto::KeyRegistry& keys,
              routing::LinkStateRouting& routing, FatihConfig config);

  /// Commissions detection over the stable routing state: builds the
  /// Pi(k+2) engine for the in-use paths among `terminals` and starts the
  /// validation rounds. Call once routing has converged. Calling it again
  /// (e.g. after a response rerouted traffic) retires the previous
  /// monitoring set and builds a fresh one from the new tables — the
  /// "recompute Pr on routing change" behaviour of the real prototype.
  void commission(std::shared_ptr<const routing::RoutingTables> tables,
                  const std::vector<util::NodeId>& terminals);

  [[nodiscard]] detection::Pik2Engine& engine() { return *engine_; }
  [[nodiscard]] const std::vector<detection::Suspicion>& suspicions() const {
    return engine_->suspicions();
  }

  /// Extra observer invoked on every suspicion (benches/timelines).
  void set_suspicion_observer(detection::SuspicionHandler h) { observer_ = std::move(h); }

 private:
  sim::Network& net_;
  const crypto::KeyRegistry& keys_;
  routing::LinkStateRouting& routing_;
  FatihConfig config_;
  std::unique_ptr<detection::PathCache> paths_;
  std::unique_ptr<detection::Pik2Engine> engine_;
  // Retired engines are parked (their taps remain registered on routers).
  std::vector<std::unique_ptr<detection::Pik2Engine>> retired_;
  std::vector<std::unique_ptr<detection::PathCache>> retired_paths_;
  detection::SuspicionHandler observer_;
};

/// Round-trip-time prober between two routers (the latency trace plotted
/// in Fig. 5.7): `a` sends a probe to `b` every `interval`; `b` echoes;
/// `a` records the RTT.
class RttProbe {
 public:
  RttProbe(sim::Network& net, util::NodeId a, util::NodeId b, std::uint32_t flow_id,
           util::Duration interval);

  void start(util::SimTime at);

  struct Sample {
    util::SimTime when;
    double rtt_seconds;
  };
  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  /// Probes sent but never answered (count at the end of the run).
  [[nodiscard]] std::uint32_t outstanding() const;

 private:
  void tick();

  sim::Network& net_;
  util::NodeId a_;
  util::NodeId b_;
  std::uint32_t flow_id_;
  util::Duration interval_;
  std::uint32_t next_seq_ = 0;
  std::map<std::uint32_t, util::SimTime> in_flight_;
  std::vector<Sample> samples_;
};

}  // namespace fatih::system
