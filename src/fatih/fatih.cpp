#include "fatih/fatih.hpp"

#include "util/log.hpp"

namespace fatih::system {

FatihSystem::FatihSystem(sim::Network& net, const crypto::KeyRegistry& keys,
                         routing::LinkStateRouting& routing, FatihConfig config)
    : net_(net), keys_(keys), routing_(routing), config_(config) {}

void FatihSystem::commission(std::shared_ptr<const routing::RoutingTables> tables,
                             const std::vector<util::NodeId>& terminals) {
  if (engine_ != nullptr) {
    engine_->stop();
    retired_.push_back(std::move(engine_));
    retired_paths_.push_back(std::move(paths_));
  }
  paths_ = std::make_unique<detection::PathCache>(std::move(tables));
  engine_ = std::make_unique<detection::Pik2Engine>(net_, keys_, *paths_, terminals,
                                                    config_.detection);
  engine_->set_suspicion_handler([this](const detection::Suspicion& s) {
    // Response (§2.4.3): flood the signed alert; every correct router
    // excludes the suspected path-segment from its routing fabric.
    routing_.announce_suspicion(s.reporter, s.segment, s.interval);
    if (observer_) observer_(s);
  });
  engine_->start();
  util::log(util::LogLevel::kInfo, "fatih", "commissioned: tau=%s k=%zu",
            util::to_string(config_.detection.clock.tau).c_str(), config_.detection.k);
}

// ------------------------------------------------------------------ RttProbe

RttProbe::RttProbe(sim::Network& net, util::NodeId a, util::NodeId b, std::uint32_t flow_id,
                   util::Duration interval)
    : net_(net), a_(a), b_(b), flow_id_(flow_id), interval_(interval) {
  // Echo responder at b.
  net_.node(b_).add_local_handler(
      [this](const sim::Packet& p, util::NodeId, util::SimTime) {
        if (p.hdr.flow_id != flow_id_ || p.hdr.src != a_) return;
        sim::PacketHeader hdr;
        hdr.src = b_;
        hdr.dst = a_;
        hdr.flow_id = flow_id_;
        hdr.seq = p.hdr.seq;
        hdr.proto = sim::Protocol::kUdp;
        sim::Packet echo = net_.make_packet(hdr, 24);
        net_.router(b_).originate(echo);
      });
  // Echo receiver at a.
  net_.node(a_).add_local_handler(
      [this](const sim::Packet& p, util::NodeId, util::SimTime now) {
        if (p.hdr.flow_id != flow_id_ || p.hdr.src != b_) return;
        auto it = in_flight_.find(p.hdr.seq);
        if (it == in_flight_.end()) return;
        samples_.push_back(Sample{now, (now - it->second).to_seconds()});
        in_flight_.erase(it);
      });
}

void RttProbe::start(util::SimTime at) {
  net_.sim().schedule_at(at, [this] { tick(); });
}

std::uint32_t RttProbe::outstanding() const {
  return static_cast<std::uint32_t>(in_flight_.size());
}

void RttProbe::tick() {
  sim::PacketHeader hdr;
  hdr.src = a_;
  hdr.dst = b_;
  hdr.flow_id = flow_id_;
  hdr.seq = next_seq_;
  hdr.proto = sim::Protocol::kUdp;
  sim::Packet probe = net_.make_packet(hdr, 24);
  in_flight_[next_seq_] = net_.sim().now();
  ++next_seq_;
  net_.router(a_).originate(probe);
  net_.sim().schedule_in(interval_, [this] { tick(); });
}

}  // namespace fatih::system
