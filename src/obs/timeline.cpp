#include "obs/timeline.hpp"

#include "util/log.hpp"

namespace fatih::obs {

Timeline::Timeline(const TraceSink& sink, NameFn names)
    : events_(sink.events()), names_(std::move(names)) {}

Timeline::Timeline(std::vector<TraceEvent> events, NameFn names)
    : events_(std::move(events)), names_(std::move(names)) {}

std::string Timeline::name(util::NodeId n) const {
  if (n == util::kInvalidNode) return "-";
  return names_ ? names_(n) : util::node_name(n);
}

std::vector<TraceEvent> Timeline::select(TraceCategory cat,
                                         std::optional<TraceCode> code) const {
  std::vector<TraceEvent> out;
  for (const auto& ev : events_) {
    if (ev.category != cat) continue;
    if (code.has_value() && ev.code != *code) continue;
    out.push_back(ev);
  }
  return out;
}

std::optional<TraceEvent> Timeline::first(TraceCategory cat,
                                          std::optional<TraceCode> code) const {
  for (const auto& ev : events_) {
    if (ev.category == cat && (!code.has_value() || ev.code == *code)) return ev;
  }
  return std::nullopt;
}

std::optional<TraceEvent> Timeline::last(TraceCategory cat,
                                         std::optional<TraceCode> code) const {
  std::optional<TraceEvent> out;
  for (const auto& ev : events_) {
    if (ev.category == cat && (!code.has_value() || ev.code == *code)) out = ev;
  }
  return out;
}

std::string Timeline::describe(const TraceEvent& ev) const {
  switch (ev.category) {
    case TraceCategory::kSuspicion: {
      const auto seg_back = static_cast<util::NodeId>(ev.value & 0xFFFFFFFFu);
      const auto seg_len = static_cast<std::size_t>(ev.value >> 32);
      if (seg_len <= 1) {
        return util::strfmt("DETECT  %s suspects [%s] (%s, conf=%.2f)", name(ev.a).c_str(),
                            name(ev.b).c_str(), ev.note_c_str(), ev.real);
      }
      return util::strfmt("DETECT  %s suspects [%s..%s] (len %zu, %s, conf=%.2f)",
                          name(ev.a).c_str(), name(ev.b).c_str(), name(seg_back).c_str(),
                          seg_len, ev.note_c_str(), ev.real);
    }
    case TraceCategory::kRoute:
      switch (ev.code) {
        case TraceCode::kRouteChange:
          return util::strfmt("REROUTE %s installed new tables", name(ev.a).c_str());
        case TraceCode::kAlertAccepted:
          return util::strfmt("ALERT   accepted at %s (reporter %s)", name(ev.a).c_str(),
                              name(ev.b).c_str());
        case TraceCode::kSpfRun:
          return util::strfmt("SPF     run #%llu at %s",
                              static_cast<unsigned long long>(ev.value), name(ev.a).c_str());
        case TraceCode::kSpfScheduled:
          return util::strfmt("SPF     scheduled at %s", name(ev.a).c_str());
        case TraceCode::kLinkUp:
        case TraceCode::kLinkDown:
          return util::strfmt("LINK    %s—%s %s", name(ev.a).c_str(), name(ev.b).c_str(),
                              ev.code == TraceCode::kLinkUp ? "up" : "down");
        case TraceCode::kNodeUp:
        case TraceCode::kNodeDown:
          return util::strfmt("NODE    %s %s", name(ev.a).c_str(),
                              ev.code == TraceCode::kNodeUp ? "restarted" : "crashed");
        default: break;
      }
      break;
    case TraceCategory::kRound:
      return util::strfmt("ROUND   %s %s round %lld", to_string(ev.source),
                          to_string(ev.code), static_cast<long long>(ev.round));
    case TraceCategory::kExchange:
      return util::strfmt("EXCHG   %s %s %s -> %s round %lld", to_string(ev.source),
                          to_string(ev.code), name(ev.a).c_str(), name(ev.b).c_str(),
                          static_cast<long long>(ev.round));
    case TraceCategory::kDrop:
      return util::strfmt("DROP    %s at %s -> %s", to_string(ev.code), name(ev.a).c_str(),
                          name(ev.b).c_str());
    case TraceCategory::kQueue:
      return util::strfmt("QUEUE   %s -> %s %llu B (%.0f%%)", name(ev.a).c_str(),
                          name(ev.b).c_str(), static_cast<unsigned long long>(ev.value),
                          ev.real * 100.0);
    case TraceCategory::kAnnotation:
      return ev.note_c_str();
    case TraceCategory::kByzantine:
      return util::strfmt("BYZNT   %s %s %s -> %s round %lld (%s)", to_string(ev.source),
                          to_string(ev.code), name(ev.a).c_str(), name(ev.b).c_str(),
                          static_cast<long long>(ev.round), ev.note_c_str());
  }
  return util::strfmt("%s/%s", to_string(ev.category), to_string(ev.code));
}

std::vector<Timeline::Entry> Timeline::entries(std::initializer_list<TraceCategory> cats) const {
  std::vector<Entry> out;
  for (const auto& ev : events_) {
    for (const TraceCategory c : cats) {
      if (ev.category == c) {
        out.push_back({ev.at, describe(ev)});
        break;
      }
    }
  }
  return out;
}

std::string Timeline::to_json(const std::vector<Entry>& entries) {
  std::string out = "[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out += util::strfmt("%s\n  {\"t\": %.6f, \"event\": \"%s\"}", i == 0 ? "" : ",",
                        entries[i].at.seconds(), entries[i].label.c_str());
  }
  out += entries.empty() ? "]" : "\n]";
  return out;
}

}  // namespace fatih::obs
