// Deterministic structured trace sink.
//
// Every layer of the system (sim, routing, detection, validation) emits
// small POD trace events into a ring-buffered TraceSink attached to the
// Simulator. Because the engine is single-threaded and simulated time
// never moves backward, emit order IS (sim-time, sequence) order: two runs
// with the same seed produce byte-identical serialized traces, which is
// what makes the layer testable (tests/obs/trace_determinism_test.cpp) and
// lets benches replay a sink instead of installing bespoke hooks.
//
// Cost model:
//   * compiled out (FATIH_TRACE=0): the FATIH_TRACE_EMIT macro expands to
//     nothing — call arguments are never evaluated, zero overhead;
//   * compiled in, no sink attached: one pointer load and branch;
//   * attached but category disabled: one array-indexed flag test;
//   * recording: a struct copy into a preallocated ring slot (events are
//     overwritten oldest-first past capacity, with the loss counted).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"
#include "util/types.hpp"

// Compile-time gate for all trace/metrics instrumentation in the hot
// paths. Defaults on; configure with -DFATIH_TRACE=0 (CMake option
// FATIH_TRACE) to compile every touch-point out entirely.
#ifndef FATIH_TRACE
#define FATIH_TRACE 1
#endif

#if FATIH_TRACE
/// Emits through `sink` (an obs::TraceSink*) iff it is attached:
///   FATIH_TRACE_EMIT(sim.trace(), drop(now, code, a, b, uid));
#define FATIH_TRACE_EMIT(sink, call)                                      \
  do {                                                                    \
    if (auto* fatih_trace_sink_ = (sink); fatih_trace_sink_ != nullptr) { \
      fatih_trace_sink_->call;                                            \
    }                                                                     \
  } while (0)
#else
#define FATIH_TRACE_EMIT(sink, call) \
  do {                               \
  } while (0)
#endif

namespace fatih::obs {

/// Event taxonomy. One category per kind of question a timeline answers;
/// runtime enable/sampling is per category (TraceConfig).
enum class TraceCategory : std::uint8_t {
  kDrop = 0,    ///< a packet died, with its ground-truth reason
  kQueue,       ///< queue depth sample at enqueue
  kRoute,       ///< SPF firings, route changes, link/node status, alerts
  kRound,       ///< detection round open / close / invalidate
  kExchange,    ///< summary exchange send / ack / timeout / failure
  kSuspicion,   ///< a detector raised a suspicion
  kAnnotation,  ///< free-form experiment markers (attack on, commission)
  kByzantine,   ///< control-plane verification: rejects, proofs, convictions
};
inline constexpr std::size_t kTraceCategoryCount = 8;
[[nodiscard]] const char* to_string(TraceCategory c);

/// Category-specific event codes (one flat enum so a code renders the same
/// name everywhere). The kDrop block mirrors sim::DropReason in order; the
/// sim layer maps between them with an exhaustive switch.
enum class TraceCode : std::uint16_t {
  kNone = 0,
  // kDrop
  kDropCongestion,
  kDropRedEarly,
  kDropMalicious,
  kDropTtlExpired,
  kDropNoRoute,
  kDropLinkFault,
  kDropLinkDown,
  kDropNodeDown,
  // kQueue
  kQueueDepth,
  // kRoute
  kSpfScheduled,
  kSpfRun,
  kRouteChange,
  kAlertAccepted,
  kLinkUp,
  kLinkDown,
  kNodeUp,
  kNodeDown,
  // kRound
  kRoundOpen,
  kRoundClose,
  kRoundInvalidated,
  // kExchange
  kExchangeSend,
  kExchangeRetransmit,
  kExchangeAck,
  kExchangeTimeout,
  kExchangeFailed,
  // kSuspicion
  kSuspicionRaised,
  // kAnnotation
  kAnnotation,
  // kByzantine
  kControlRejected,     ///< a control message failed verification (note = reason)
  kEquivocationProven,  ///< two conflicting signed statements for one key
  kAccusation,          ///< a signed accusation was accepted into the ledger
  kConviction,          ///< the evidence layer convicted a router
};
[[nodiscard]] const char* to_string(TraceCode c);

/// Which subsystem emitted the event (distinguishes e.g. a pik2 logical
/// exchange send from the reliable transport's per-attempt sends).
enum class TraceSource : std::uint8_t {
  kNone = 0,
  kSim,
  kRouting,
  kPi2,
  kPik2,
  kChi,
  kReliable,
  kValidation,
  kBench,
  kConviction,  ///< the evidence-based conviction layer
};
[[nodiscard]] const char* to_string(TraceSource s);

/// One trace record. Fixed-size POD so the ring buffer never allocates;
/// `note` carries a short tag (suspicion cause, annotation text) truncated
/// to fit.
struct TraceEvent {
  util::SimTime at{};
  std::uint64_t seq = 0;  ///< emit order; the deterministic tiebreak
  TraceCategory category = TraceCategory::kAnnotation;
  TraceCode code = TraceCode::kNone;
  TraceSource source = TraceSource::kNone;
  util::NodeId a = util::kInvalidNode;  ///< primary actor (node, reporter)
  util::NodeId b = util::kInvalidNode;  ///< secondary actor (peer, target)
  std::int64_t round = -1;              ///< detection round, -1 = n/a
  std::uint64_t value = 0;              ///< payload (bytes, count, msg key)
  // fatih-lint: allow(float-free-digest) output-only payload: JSONL formatting rounds it to fixed decimals and it never feeds a state digest
  double real = 0.0;                    ///< payload (fill fraction, confidence)
  std::array<char, 40> note{};          ///< NUL-terminated short tag

  void set_note(const char* s);
  [[nodiscard]] const char* note_c_str() const { return note.data(); }
};

/// Runtime switchboard: which categories record, and 1-in-N sampling per
/// category (sampling keeps the first of every N offered events).
struct TraceConfig {
  std::size_t capacity = 1 << 15;  ///< ring slots; oldest overwritten
  std::array<bool, kTraceCategoryCount> enabled;
  std::array<std::uint32_t, kTraceCategoryCount> sample_every;

  TraceConfig() {
    enabled.fill(true);
    sample_every.fill(1);
  }
};

/// The ring-buffered event recorder. Single-threaded, like the simulator.
class TraceSink {
 public:
  explicit TraceSink(TraceConfig config = {});

  [[nodiscard]] const TraceConfig& config() const { return config_; }
  [[nodiscard]] bool enabled(TraceCategory cat) const {
    return config_.enabled[static_cast<std::size_t>(cat)];
  }

  /// Records `ev` if its category is enabled and passes sampling; stamps
  /// the sequence number. `ev.at` must be the current simulated time
  /// (callers pass sim.now()); emit order is the determinism tiebreak.
  void emit(TraceEvent ev);

  // Typed emitters for the instrumented layers (each fills one event and
  // calls emit()). Kept as single calls so FATIH_TRACE_EMIT wraps them.
  void drop(util::SimTime at, TraceCode reason, util::NodeId node, util::NodeId peer,
            std::uint64_t packet_uid);
  void queue_depth(util::SimTime at, util::NodeId node, util::NodeId peer, std::uint64_t bytes,
                   double fill);
  void route(util::SimTime at, TraceCode code, util::NodeId a,
             util::NodeId b = util::kInvalidNode, std::uint64_t value = 0);
  void round_event(util::SimTime at, TraceSource src, TraceCode code, std::int64_t round,
                   std::uint64_t value = 0);
  void exchange(util::SimTime at, TraceSource src, TraceCode code, util::NodeId from,
                util::NodeId to, std::int64_t round, std::uint64_t value = 0);
  void suspicion(util::SimTime at, TraceSource src, util::NodeId reporter,
                 util::NodeId segment_front, util::NodeId segment_back,
                 std::size_t segment_len, std::int64_t round, double confidence,
                 const char* cause);
  void annotate(util::SimTime at, const char* label);
  void byzantine(util::SimTime at, TraceSource src, TraceCode code, util::NodeId a,
                 util::NodeId b, std::int64_t round, std::uint64_t value, const char* note);

  /// Events offered to emit() (enabled categories only).
  [[nodiscard]] std::uint64_t offered() const { return offered_; }
  /// Events that passed sampling and were written to the ring.
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  /// Recorded events already overwritten by newer ones.
  [[nodiscard]] std::uint64_t overwritten() const {
    return recorded_ - static_cast<std::uint64_t>(size());
  }
  [[nodiscard]] std::size_t size() const { return ring_.size(); }

  /// The retained events, oldest first (ascending seq).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Resets the ring and all counters (config stays).
  void clear();

  /// Deterministic serialization: one JSON object per line, oldest first.
  /// Identical seeds => byte-identical output.
  [[nodiscard]] std::string to_jsonl() const;
  [[nodiscard]] static std::string to_json(const TraceEvent& ev);

 private:
  TraceConfig config_;
  std::vector<TraceEvent> ring_;  ///< grows to capacity, then wraps
  std::size_t head_ = 0;          ///< next write position once full
  std::uint64_t next_seq_ = 0;
  std::uint64_t offered_ = 0;
  std::uint64_t recorded_ = 0;
  std::array<std::uint32_t, kTraceCategoryCount> sample_counter_{};
};

}  // namespace fatih::obs
