// Timeline exporter: replays a TraceSink into the time-ordered,
// human-readable event timeline (and JSON) the figure benches emit.
//
// The benches used to install bespoke hooks and build ad-hoc event
// vectors; with the trace sink as the single recorder they become thin
// consumers: select the categories of interest, filter, describe. Bench
// storyline markers (attack activation, commissioning) enter the same
// stream via TraceSink::annotate, so one sorted record holds the whole
// experiment.
#pragma once

#include <functional>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace fatih::obs {

/// Read-only view over a sink's retained events with query and rendering
/// helpers. Copies the events out once; the sink may keep recording.
class Timeline {
 public:
  /// Resolves node ids to display names; defaults to util::node_name.
  using NameFn = std::function<std::string(util::NodeId)>;

  explicit Timeline(const TraceSink& sink, NameFn names = {});
  explicit Timeline(std::vector<TraceEvent> events, NameFn names = {});

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }

  /// Events of one category (optionally one code), in time order.
  [[nodiscard]] std::vector<TraceEvent> select(TraceCategory cat,
                                               std::optional<TraceCode> code = {}) const;
  [[nodiscard]] std::optional<TraceEvent> first(TraceCategory cat,
                                                std::optional<TraceCode> code = {}) const;
  [[nodiscard]] std::optional<TraceEvent> last(TraceCategory cat,
                                               std::optional<TraceCode> code = {}) const;

  /// One rendered timeline line.
  struct Entry {
    util::SimTime at;
    std::string label;
  };

  /// Human-readable label for one event ("DETECT r5 suspects [r2..r4] ...").
  [[nodiscard]] std::string describe(const TraceEvent& ev) const;

  /// Renders the selected categories into one merged, time-ordered list.
  [[nodiscard]] std::vector<Entry> entries(std::initializer_list<TraceCategory> cats) const;

  /// JSON array in the shape the figure benches emit:
  ///   [{"t": 117.000, "event": "ATTACK ..."}, ...]
  [[nodiscard]] static std::string to_json(const std::vector<Entry>& entries);

 private:
  [[nodiscard]] std::string name(util::NodeId n) const;

  std::vector<TraceEvent> events_;
  NameFn names_;
};

}  // namespace fatih::obs
