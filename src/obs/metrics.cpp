#include "obs/metrics.hpp"

#include "util/log.hpp"

namespace fatih::obs {

namespace {

template <typename Store, typename Make>
auto& get_or_make(Store& store, std::string_view name, Make make) {
  auto it = store.find(name);
  if (it == store.end()) {
    it = store.emplace(std::string(name), make()).first;
  }
  return *it->second;
}

template <typename Store>
auto* find_in(const Store& store, std::string_view name) {
  const auto it = store.find(name);
  return it == store.end() ? nullptr : it->second.get();
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  return get_or_make(counters_, name, [] { return std::make_unique<Counter>(); });
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return get_or_make(gauges_, name, [] { return std::make_unique<Gauge>(); });
}

util::Ewma& MetricsRegistry::ewma(std::string_view name, double alpha) {
  return get_or_make(ewmas_, name, [alpha] { return std::make_unique<util::Ewma>(alpha); });
}

util::Histogram& MetricsRegistry::histogram(std::string_view name, double lo, double hi,
                                            std::size_t bins) {
  return get_or_make(histograms_, name,
                     [&] { return std::make_unique<util::Histogram>(lo, hi, bins); });
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  return find_in(counters_, name);
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  return find_in(gauges_, name);
}

const util::Ewma* MetricsRegistry::find_ewma(std::string_view name) const {
  return find_in(ewmas_, name);
}

const util::Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  return find_in(histograms_, name);
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const auto* c = find_counter(name);
  return c == nullptr ? 0 : c->value();
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += util::strfmt("%s\n    \"%s\": %llu", first ? "" : ",", name.c_str(),
                        static_cast<unsigned long long>(c->value()));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += util::strfmt("%s\n    \"%s\": %.9g", first ? "" : ",", name.c_str(), g->value());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"ewmas\": {";
  first = true;
  for (const auto& [name, e] : ewmas_) {
    out += util::strfmt("%s\n    \"%s\": {\"value\": %.9g, \"count\": %llu, \"alpha\": %.9g}",
                        first ? "" : ",", name.c_str(), e->value(),
                        static_cast<unsigned long long>(e->count()), e->alpha());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += util::strfmt("%s\n    \"%s\": {\"total\": %llu, \"underflow\": %llu, "
                        "\"overflow\": %llu, \"bins\": [",
                        first ? "" : ",", name.c_str(),
                        static_cast<unsigned long long>(h->total()),
                        static_cast<unsigned long long>(h->underflow()),
                        static_cast<unsigned long long>(h->overflow()));
    for (std::size_t i = 0; i < h->bins(); ++i) {
      out += util::strfmt("%s%llu", i == 0 ? "" : ", ",
                          static_cast<unsigned long long>(h->bin_count(i)));
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace fatih::obs
