// Named metrics registry: counters, gauges, EWMAs and fixed-bucket
// histograms (built on util/stats), snapshot-to-JSON.
//
// Handles are created on first use (`registry.counter("pi2.suspicions")`)
// and have stable addresses for the lifetime of the registry, so hot paths
// resolve a handle once and increment through the pointer afterwards
// (sim's per-packet counters are pre-resolved into PacketCounters by
// Network::attach_observability). Snapshots iterate names in sorted order
// and format deterministically: identical runs produce byte-identical
// JSON, which the determinism suite asserts.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "obs/trace.hpp"  // FATIH_TRACE gate
#include "util/stats.hpp"

#if FATIH_TRACE
/// Calls through a metric handle pointer iff it is resolved:
///   FATIH_METRIC(pc.enqueued, inc());
#define FATIH_METRIC(handle, call)                                       \
  do {                                                                   \
    if (auto* fatih_metric_h_ = (handle); fatih_metric_h_ != nullptr) {  \
      fatih_metric_h_->call;                                             \
    }                                                                    \
  } while (0)
/// Calls through an obs::MetricsRegistry* iff one is attached — the cold-
/// path form (per-call name lookup):
///   FATIH_METRIC_REG(sim.metrics(), counter("routing.spf_runs").inc());
#define FATIH_METRIC_REG(registry, call)                                      \
  do {                                                                        \
    if (auto* fatih_metric_reg_ = (registry); fatih_metric_reg_ != nullptr) { \
      fatih_metric_reg_->call;                                                \
    }                                                                         \
  } while (0)
#else
#define FATIH_METRIC(handle, call) \
  do {                             \
  } while (0)
#define FATIH_METRIC_REG(registry, call) \
  do {                                   \
  } while (0)
#endif

namespace fatih::obs {

/// Monotonic unsigned counter.
class Counter {
 public:
  void inc(std::uint64_t d = 1) { v_ += d; }
  [[nodiscard]] std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

/// Last-write-wins real value.
class Gauge {
 public:
  void set(double v) { v_ = v; }
  void add(double d) { v_ += d; }
  [[nodiscard]] double value() const { return v_; }

 private:
  double v_ = 0.0;
};

/// The registry. Single-threaded, like everything else in the simulator.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Handle factories: create on first use, return the existing handle
  /// afterwards (histogram/ewma shape parameters are fixed by the first
  /// call). References stay valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  util::Ewma& ewma(std::string_view name, double alpha = 0.2);
  util::Histogram& histogram(std::string_view name, double lo, double hi, std::size_t bins);

  /// Lookups without creation (tests, exporters); null when absent.
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const util::Ewma* find_ewma(std::string_view name) const;
  [[nodiscard]] const util::Histogram* find_histogram(std::string_view name) const;

  /// Convenience: the counter's value, or 0 when it was never created.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  /// Deterministic snapshot: names sorted, fixed float formatting.
  [[nodiscard]] std::string to_json() const;

 private:
  template <typename T>
  using Store = std::map<std::string, std::unique_ptr<T>, std::less<>>;

  Store<Counter> counters_;
  Store<Gauge> gauges_;
  Store<util::Ewma> ewmas_;
  Store<util::Histogram> histograms_;
};

/// Pre-resolved counter handles for the sim layer's per-packet hot paths
/// (a map lookup per packet would dominate). Lives on the Simulator;
/// populated by Network::attach_observability, all-null when metrics are
/// detached (each use is a pointer test).
struct PacketCounters {
  static constexpr std::size_t kDropKinds = 8;  ///< == #sim::DropReason values
  Counter* drops[kDropKinds] = {};
  Counter* enqueued = nullptr;
  Counter* transmitted = nullptr;
  Counter* forwarded = nullptr;
  util::Ewma* queue_fill = nullptr;
};

}  // namespace fatih::obs
