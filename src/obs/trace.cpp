#include "obs/trace.hpp"

#include <cstring>

#include "util/log.hpp"

namespace fatih::obs {

const char* to_string(TraceCategory c) {
  switch (c) {
    case TraceCategory::kDrop: return "drop";
    case TraceCategory::kQueue: return "queue";
    case TraceCategory::kRoute: return "route";
    case TraceCategory::kRound: return "round";
    case TraceCategory::kExchange: return "exchange";
    case TraceCategory::kSuspicion: return "suspicion";
    case TraceCategory::kAnnotation: return "annotation";
    case TraceCategory::kByzantine: return "byzantine";
  }
  return "?";
}

const char* to_string(TraceCode c) {
  switch (c) {
    case TraceCode::kNone: return "none";
    case TraceCode::kDropCongestion: return "congestion";
    case TraceCode::kDropRedEarly: return "red-early";
    case TraceCode::kDropMalicious: return "malicious";
    case TraceCode::kDropTtlExpired: return "ttl-expired";
    case TraceCode::kDropNoRoute: return "no-route";
    case TraceCode::kDropLinkFault: return "link-fault";
    case TraceCode::kDropLinkDown: return "link-down";
    case TraceCode::kDropNodeDown: return "node-down";
    case TraceCode::kQueueDepth: return "queue-depth";
    case TraceCode::kSpfScheduled: return "spf-scheduled";
    case TraceCode::kSpfRun: return "spf-run";
    case TraceCode::kRouteChange: return "route-change";
    case TraceCode::kAlertAccepted: return "alert-accepted";
    case TraceCode::kLinkUp: return "link-up";
    case TraceCode::kLinkDown: return "link-down-admin";
    case TraceCode::kNodeUp: return "node-up";
    case TraceCode::kNodeDown: return "node-down-admin";
    case TraceCode::kRoundOpen: return "round-open";
    case TraceCode::kRoundClose: return "round-close";
    case TraceCode::kRoundInvalidated: return "round-invalidated";
    case TraceCode::kExchangeSend: return "exchange-send";
    case TraceCode::kExchangeRetransmit: return "exchange-retransmit";
    case TraceCode::kExchangeAck: return "exchange-ack";
    case TraceCode::kExchangeTimeout: return "exchange-timeout";
    case TraceCode::kExchangeFailed: return "exchange-failed";
    case TraceCode::kSuspicionRaised: return "suspicion-raised";
    case TraceCode::kAnnotation: return "annotation";
    case TraceCode::kControlRejected: return "control-rejected";
    case TraceCode::kEquivocationProven: return "equivocation-proven";
    case TraceCode::kAccusation: return "accusation";
    case TraceCode::kConviction: return "conviction";
  }
  return "?";
}

const char* to_string(TraceSource s) {
  switch (s) {
    case TraceSource::kNone: return "-";
    case TraceSource::kSim: return "sim";
    case TraceSource::kRouting: return "routing";
    case TraceSource::kPi2: return "pi2";
    case TraceSource::kPik2: return "pik2";
    case TraceSource::kChi: return "chi";
    case TraceSource::kReliable: return "reliable";
    case TraceSource::kValidation: return "validation";
    case TraceSource::kBench: return "bench";
    case TraceSource::kConviction: return "conviction";
  }
  return "?";
}

void TraceEvent::set_note(const char* s) {
  if (s == nullptr) {
    note[0] = '\0';
    return;
  }
  std::strncpy(note.data(), s, note.size() - 1);
  note[note.size() - 1] = '\0';
}

TraceSink::TraceSink(TraceConfig config) : config_(config) {
  if (config_.capacity == 0) config_.capacity = 1;
  ring_.reserve(config_.capacity < 4096 ? config_.capacity : 4096);
}

void TraceSink::emit(TraceEvent ev) {
  const auto cat = static_cast<std::size_t>(ev.category);
  if (!config_.enabled[cat]) return;
  ++offered_;
  const std::uint32_t n = config_.sample_every[cat];
  if (n > 1 && (sample_counter_[cat]++ % n) != 0) return;
  ev.seq = next_seq_++;
  ++recorded_;
  if (ring_.size() < config_.capacity) {
    ring_.push_back(ev);
    return;
  }
  ring_[head_] = ev;
  head_ = (head_ + 1) % config_.capacity;
}

void TraceSink::drop(util::SimTime at, TraceCode reason, util::NodeId node, util::NodeId peer,
                     std::uint64_t packet_uid) {
  TraceEvent ev;
  ev.at = at;
  ev.category = TraceCategory::kDrop;
  ev.code = reason;
  ev.source = TraceSource::kSim;
  ev.a = node;
  ev.b = peer;
  ev.value = packet_uid;
  emit(ev);
}

void TraceSink::queue_depth(util::SimTime at, util::NodeId node, util::NodeId peer,
                            std::uint64_t bytes, double fill) {
  TraceEvent ev;
  ev.at = at;
  ev.category = TraceCategory::kQueue;
  ev.code = TraceCode::kQueueDepth;
  ev.source = TraceSource::kSim;
  ev.a = node;
  ev.b = peer;
  ev.value = bytes;
  ev.real = fill;
  emit(ev);
}

void TraceSink::route(util::SimTime at, TraceCode code, util::NodeId a, util::NodeId b,
                      std::uint64_t value) {
  TraceEvent ev;
  ev.at = at;
  ev.category = TraceCategory::kRoute;
  ev.code = code;
  ev.source = TraceSource::kRouting;
  ev.a = a;
  ev.b = b;
  ev.value = value;
  emit(ev);
}

void TraceSink::round_event(util::SimTime at, TraceSource src, TraceCode code,
                            std::int64_t round, std::uint64_t value) {
  TraceEvent ev;
  ev.at = at;
  ev.category = TraceCategory::kRound;
  ev.code = code;
  ev.source = src;
  ev.round = round;
  ev.value = value;
  emit(ev);
}

void TraceSink::exchange(util::SimTime at, TraceSource src, TraceCode code, util::NodeId from,
                         util::NodeId to, std::int64_t round, std::uint64_t value) {
  TraceEvent ev;
  ev.at = at;
  ev.category = TraceCategory::kExchange;
  ev.code = code;
  ev.source = src;
  ev.a = from;
  ev.b = to;
  ev.round = round;
  ev.value = value;
  emit(ev);
}

void TraceSink::suspicion(util::SimTime at, TraceSource src, util::NodeId reporter,
                          util::NodeId segment_front, util::NodeId segment_back,
                          std::size_t segment_len, std::int64_t round, double confidence,
                          const char* cause) {
  TraceEvent ev;
  ev.at = at;
  ev.category = TraceCategory::kSuspicion;
  ev.code = TraceCode::kSuspicionRaised;
  ev.source = src;
  ev.a = reporter;
  ev.b = segment_front;
  // value packs (segment length << 32 | segment back) so a two-node view
  // of the segment survives the fixed-size record.
  ev.value = (static_cast<std::uint64_t>(segment_len) << 32) |
             static_cast<std::uint64_t>(segment_back);
  ev.round = round;
  ev.real = confidence;
  ev.set_note(cause);
  emit(ev);
}

void TraceSink::annotate(util::SimTime at, const char* label) {
  TraceEvent ev;
  ev.at = at;
  ev.category = TraceCategory::kAnnotation;
  ev.code = TraceCode::kAnnotation;
  ev.source = TraceSource::kBench;
  ev.set_note(label);
  emit(ev);
}

void TraceSink::byzantine(util::SimTime at, TraceSource src, TraceCode code, util::NodeId a,
                          util::NodeId b, std::int64_t round, std::uint64_t value,
                          const char* note) {
  TraceEvent ev;
  ev.at = at;
  ev.category = TraceCategory::kByzantine;
  ev.code = code;
  ev.source = src;
  ev.a = a;
  ev.b = b;
  ev.round = round;
  ev.value = value;
  ev.set_note(note);
  emit(ev);
}

std::vector<TraceEvent> TraceSink::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < config_.capacity) {
    out = ring_;
    return out;
  }
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

void TraceSink::clear() {
  ring_.clear();
  head_ = 0;
  next_seq_ = 0;
  offered_ = 0;
  recorded_ = 0;
  sample_counter_.fill(0);
}

std::string TraceSink::to_json(const TraceEvent& ev) {
  const auto node = [](util::NodeId n) -> long long {
    return n == util::kInvalidNode ? -1 : static_cast<long long>(n);
  };
  std::string out = util::strfmt(
      "{\"t_ns\":%lld,\"seq\":%llu,\"cat\":\"%s\",\"code\":\"%s\",\"src\":\"%s\","
      "\"a\":%lld,\"b\":%lld,\"round\":%lld,\"value\":%llu,\"real\":%.9g",
      static_cast<long long>(ev.at.nanos()), static_cast<unsigned long long>(ev.seq),
      to_string(ev.category), to_string(ev.code), to_string(ev.source), node(ev.a), node(ev.b),
      static_cast<long long>(ev.round), static_cast<unsigned long long>(ev.value), ev.real);
  if (ev.note[0] != '\0') {
    out += util::strfmt(",\"note\":\"%s\"", ev.note_c_str());
  }
  out += "}";
  return out;
}

std::string TraceSink::to_jsonl() const {
  std::string out;
  for (const auto& ev : events()) {
    out += to_json(ev);
    out += '\n';
  }
  return out;
}

}  // namespace fatih::obs
