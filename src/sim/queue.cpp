#include "sim/queue.hpp"

namespace fatih::sim {

EnqueueResult DropTailQueue::enqueue(const Packet& p, util::SimTime /*now*/) {
  // Control-plane traffic is prioritized past the data byte limit, the way
  // deployed routers protect routing-protocol traffic (the Fatih prototype
  // ran validator exchanges over TCP for the same reason, §5.3.1). A
  // malicious router can still discard control traffic deliberately.
  if (!p.is_control() && bytes_ + p.size_bytes > limit_) return EnqueueResult::kDroppedFull;
  bytes_ += p.size_bytes;
  q_.push_back(p);
  return EnqueueResult::kAccepted;
}

std::optional<Packet> DropTailQueue::dequeue(util::SimTime /*now*/) {
  if (q_.empty()) return std::nullopt;
  Packet p = std::move(q_.front());
  q_.pop_front();
  bytes_ -= p.size_bytes;
  return p;
}

}  // namespace fatih::sim
